// Multi-stage filtering: the paper's headline extension over [1].
//
// Generates a reference-edge PE with two chained filter stages and uses it
// to run a RANGE_SCAN (lo <= dst < hi) over a synthetic edge set — the
// use case §V calls out for 2-staged accelerators — then verifies the
// hardware result against a software evaluation and shows that the extra
// stage costs almost no additional cycles (elastic pipeline).
#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "ndp/predicate.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace {

constexpr const char* kSpecTemplate = R"spec(
/* @autogen define parser EdgeRange with
   chunksize = 32, input = Edge, output = Edge, filters = %u */
typedef struct { uint64_t src; uint64_t dst; } Edge;
)spec";

std::string spec_with_stages(unsigned stages) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), kSpecTemplate, stages);
  return buffer;
}

}  // namespace

int main() {
  using namespace ndpgen;
  core::Framework framework;

  // Build the edge set once.
  constexpr std::uint64_t kEdges = 1024;
  support::Xoshiro256 rng(42);
  std::vector<std::uint8_t> edges;
  for (std::uint64_t i = 0; i < kEdges; ++i) {
    support::put_u64(edges, rng.below(1000));   // src
    support::put_u64(edges, rng.below(1000));   // dst
  }
  constexpr std::uint64_t kLo = 250, kHi = 500;

  // Software reference count.
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < kEdges; ++i) {
    const std::uint64_t dst = support::get_u64(edges, i * 16 + 8);
    if (dst >= kLo && dst < kHi) ++expected;
  }

  std::printf("== multistage RANGE_SCAN(dst in [%llu, %llu)) over %llu edges "
              "==\n",
              static_cast<unsigned long long>(kLo),
              static_cast<unsigned long long>(kHi),
              static_cast<unsigned long long>(kEdges));

  std::uint64_t one_stage_cycles = 0;
  for (unsigned stages = 1; stages <= 5; ++stages) {
    const auto compiled = framework.compile(spec_with_stages(stages));
    const auto& artifacts = compiled.get("EdgeRange");
    hwsim::PETestBench bench(artifacts.design);
    bench.memory().write_bytes(0, edges);

    // Stage 0: dst >= lo. Stage 1: dst < hi. Stages 2+: nop.
    std::vector<ndp::FilterPredicate> predicates = {
        {"dst", "ge", kLo}};
    if (stages >= 2) predicates.push_back({"dst", "lt", kHi});
    const auto bound = ndp::bind_conjunction(
        artifacts.analyzed.input, artifacts.design.operators, predicates,
        stages);
    for (unsigned stage = 0; stage < stages; ++stage) {
      bench.set_filter(stage, bound[stage].field_select,
                       bound[stage].op_encoding, bound[stage].compare_value);
    }

    const auto stats =
        bench.run_chunk(0, 64 * 1024, static_cast<std::uint32_t>(edges.size()));
    if (stages == 1) one_stage_cycles = stats.cycles;
    const std::uint64_t matched = stats.tuples_out;
    std::printf(
        "  %u stage(s): %5llu cycles (+%4.1f%% vs 1 stage), %4llu matched "
        "(%s)\n",
        stages, static_cast<unsigned long long>(stats.cycles),
        100.0 * (static_cast<double>(stats.cycles) -
                 static_cast<double>(one_stage_cycles)) /
            static_cast<double>(one_stage_cycles),
        static_cast<unsigned long long>(matched),
        stages == 1 ? "range needs 2 stages -> over-matches as expected"
                    : (matched == expected ? "matches software" : "MISMATCH"));
    if (stages >= 2 && matched != expected) return 1;
  }
  std::printf("additional stages add only marginal latency (elastic "
              "pipeline, 1 tuple/cycle/stage).\n");
  return 0;
}
