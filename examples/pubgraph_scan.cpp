// Publication-graph scan: the paper's motivating workload end to end.
//
// Builds a scaled publication reference graph in the nKV store (records
// placed on physical flash pages), generates the Paper PE from the format
// specification, and runs the hardware-accelerated hybrid SCAN
// (year-range predicate) against the software baseline, printing both
// virtual runtimes.
#include <cstdio>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "workload/pubgraph.hpp"

int main() {
  using namespace ndpgen;

  platform::CosmosPlatform platform;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());

  // Load a 1/1024-scale publication graph (papers only, for brevity).
  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 1024});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(platform, db_config);
  const auto loaded = workload::load_papers(db, generator);
  std::printf("loaded %llu papers into %zu SSTs (%llu data bytes)\n",
              static_cast<unsigned long long>(loaded),
              db.version().total_ssts(),
              static_cast<unsigned long long>(
                  db.version().total_data_bytes()));

  // SCAN(year < 1990): hardware vs software.
  const std::vector<ndp::FilterPredicate> predicate = {
      {"year", "lt", 1990}};
  const auto& artifacts = compiled.get("PaperScan");

  const std::size_t pe = framework.instantiate(compiled, "PaperScan", platform);
  ndp::ExecutorConfig hw_config;
  hw_config.mode = ndp::ExecMode::kHardware;
  hw_config.pe_indices = {pe};
  hw_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor hw(db, artifacts.analyzed, artifacts.design.operators,
                         hw_config);
  const auto hw_stats = hw.scan(predicate);

  ndp::ExecutorConfig sw_config;
  sw_config.mode = ndp::ExecMode::kSoftware;
  sw_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor sw(db, artifacts.analyzed, artifacts.design.operators,
                         sw_config);
  const auto sw_stats = sw.scan(predicate);

  const double selectivity = generator.year_selectivity(1990);
  std::printf("expected selectivity %.3f; matched %llu of %llu tuples\n",
              selectivity,
              static_cast<unsigned long long>(hw_stats.results),
              static_cast<unsigned long long>(hw_stats.tuples_scanned));
  std::printf("SCAN(year<1990)  HW: %.3f ms   SW: %.3f ms  (virtual time, "
              "1/1024 scale)\n",
              static_cast<double>(hw_stats.elapsed) / 1e6,
              static_cast<double>(sw_stats.elapsed) / 1e6);
  std::printf("results agree: %s\n",
              hw_stats.results == sw_stats.results ? "yes" : "NO");
  return hw_stats.results == sw_stats.results ? 0 : 1;
}
