// Analytics on the smart SSD: range scans and on-device aggregation.
//
// Shows the query-level API the framework enables on top of nKV:
//   * RANGE_SCAN with a value predicate (2-stage filtering + index
//     pruning),
//   * COUNT/SUM/MIN/MAX pushed all the way into the generated hardware
//     (only two registers cross the NVMe link).
#include <cstdio>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "workload/pubgraph.hpp"

int main() {
  using namespace ndpgen;

  platform::CosmosPlatform platform;
  core::FrameworkOptions options;
  options.hw.enable_aggregation = true;
  core::Framework framework(options);
  const auto compiled = framework.compile(workload::pubgraph_spec_source());

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 2048});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(platform, db_config);
  const auto loaded = workload::load_papers(db, generator);
  std::printf("== smart-SSD analytics over %llu papers ==\n\n",
              static_cast<unsigned long long>(loaded));

  const std::size_t pe = framework.instantiate(compiled, "PaperScan", platform);
  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig config;
  config.mode = ndp::ExecMode::kHardware;
  config.pe_indices = {pe};
  config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, config);

  // Query 1: SELECT * WHERE 1000 <= id <= 1200 AND year < 1990.
  std::vector<std::vector<std::uint8_t>> results;
  const auto range = executor.range_scan(kv::Key{1000, 0}, kv::Key{1200, 0},
                                         {{"year", "lt", 1990}}, &results);
  std::printf("RANGE_SCAN(id in [1000,1200], year<1990): %llu rows, "
              "%llu of %zu blocks touched, %.3f ms\n",
              static_cast<unsigned long long>(range.results),
              static_cast<unsigned long long>(range.blocks),
              db.version().total_data_bytes() / kv::kDataBlockBytes,
              static_cast<double>(range.elapsed) / 1e6);

  // Query 2: SELECT COUNT(*) WHERE year < 1990 — folded on-device.
  const auto count =
      executor.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount,
                         "year");
  std::printf("COUNT(year<1990): %llu  (%.3f ms, %llu bytes over NVMe)\n",
              static_cast<unsigned long long>(count.raw_result),
              static_cast<double>(count.elapsed) / 1e6,
              static_cast<unsigned long long>(count.result_bytes));

  // Query 3: SELECT MAX(n_cited).
  const auto max_cited =
      executor.aggregate({}, hwgen::AggOp::kMax, "n_cited");
  std::printf("MAX(n_cited): %llu\n",
              static_cast<unsigned long long>(max_cited.raw_result));

  // Query 4: SELECT SUM(n_refs) for one venue.
  const std::uint32_t venue = generator.paper(0).venue_id;
  const auto sum = executor.aggregate({{"venue_id", "eq", venue}},
                                      hwgen::AggOp::kSum, "n_refs");
  std::printf("SUM(n_refs) for venue %u: %llu over %llu papers\n", venue,
              static_cast<unsigned long long>(sum.raw_result),
              static_cast<unsigned long long>(sum.folded));

  // Cross-check query 2 against the software path.
  ndp::ExecutorConfig sw_config;
  sw_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor sw(db, artifacts.analyzed, artifacts.design.operators,
                         sw_config);
  const auto sw_count =
      sw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount, "year");
  std::printf("\nhardware and software agree on COUNT: %s\n",
              count.raw_result == sw_count.raw_result ? "yes" : "NO");
  return count.raw_result == sw_count.raw_result ? 0 : 1;
}
