// Codegen explorer: prints the generated artifacts for a specification.
//
// Reads a format specification from a file (argv[1]) or uses the built-in
// publication-graph spec, and writes the generated Verilog and C software
// interface next to it (or to stdout with --print). This is the
// "toolflow" view of the framework: spec in, hardware + HW/SW interface
// out, no FPGA expertise required.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/framework.hpp"
#include "workload/pubgraph.hpp"

int main(int argc, char** argv) {
  using namespace ndpgen;

  std::string source;
  std::string stem = "pubgraph";
  bool print_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print") == 0) {
      print_only = true;
    } else {
      std::ifstream file(argv[i]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      source = buffer.str();
      stem = argv[i];
      if (const auto dot = stem.rfind('.'); dot != std::string::npos) {
        stem = stem.substr(0, dot);
      }
    }
  }
  if (source.empty()) source = workload::pubgraph_spec_source();

  core::Framework framework;
  const auto compiled = framework.compile(source);
  for (const auto& warning : compiled.warnings) {
    std::fprintf(stderr, "%s\n", warning.to_string().c_str());
  }

  for (const auto& artifacts : compiled.parsers) {
    std::printf("parser %-14s in=%4u bits  out=%4u bits  stages=%u  "
                "slices(ooc)=%6.0f  bram=%.0f\n",
                artifacts.analyzed.name.c_str(),
                artifacts.analyzed.input.storage_bits,
                artifacts.analyzed.output.storage_bits,
                artifacts.design.filter_stage_count(),
                artifacts.resources_out_of_context.total.slices,
                artifacts.resources_out_of_context.total.bram36);
    if (print_only) {
      std::printf("---- %s.v ----\n%s\n", artifacts.analyzed.name.c_str(),
                  artifacts.verilog.c_str());
      std::printf("---- %s_ndp.h ----\n%s\n", artifacts.analyzed.name.c_str(),
                  artifacts.software_interface.c_str());
    } else {
      const std::string vname = stem + "_" + artifacts.analyzed.name + ".v";
      const std::string hname =
          stem + "_" + artifacts.analyzed.name + "_ndp.h";
      std::ofstream(vname) << artifacts.verilog;
      std::ofstream(hname) << artifacts.software_interface;
      std::printf("  wrote %s (%zu bytes), %s (%zu bytes)\n", vname.c_str(),
                  artifacts.verilog.size(), hname.c_str(),
                  artifacts.software_interface.size());
    }
  }
  return 0;
}
