// Custom compare operators (paper §IV-B: "the set of operators can be
// easily extended in our toolflow ... the framework supports interfacing
// to Verilog and VHDL, which in turn allows addition of custom
// compare-operations").
//
// Registers a `mask` operator ((element & value) == value — a bitset
// containment test no standard comparator provides), generates a PE whose
// Compare Unit includes it, and runs it on the cycle-level simulator.
#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "support/bytes.hpp"

namespace {

constexpr const char* kSpec = R"spec(
/* @autogen define parser EventFilter with
   chunksize = 32, input = Event, output = Event */
typedef struct {
  uint64_t timestamp;
  uint32_t flags;
  uint32_t source;
} Event;
)spec";

}  // namespace

int main() {
  using namespace ndpgen;

  // Extend the standard operator set with a custom operation. In the real
  // toolflow this would reference a user-supplied Verilog function; here
  // the semantics are given as a C++ lambda that both the simulator and
  // the software path execute.
  const hwgen::OperatorSet operators =
      hwgen::OperatorSet::standard().with_custom(
          "mask", [](hwgen::CompareOperand lhs, hwgen::CompareOperand rhs) {
            return (lhs.raw & rhs.raw) == rhs.raw;
          });

  core::FrameworkOptions options;
  options.hw.operators = operators;
  options.hw.use_spec_operators = false;  // Use the extended set.
  core::Framework framework(options);
  const auto compiled = framework.compile(kSpec);
  const auto& artifacts = compiled.get("EventFilter");

  std::printf("== custom compare operator ==\n");
  std::printf("operator set:");
  for (const auto& op : artifacts.design.operators.ops()) {
    std::printf(" %s(%u)%s", op.name.c_str(), op.encoding,
                op.custom ? "*" : "");
  }
  std::printf("   (* = custom)\n");

  // The generated Verilog references the external operator function.
  const bool hook_present =
      artifacts.verilog.find("EventFilter_op_mask") != std::string::npos;
  std::printf("Verilog hook for the custom operator present: %s\n",
              hook_present ? "yes" : "NO");

  // Run it: keep events whose flags contain 0b0110.
  hwsim::PETestBench bench(artifacts.design);
  std::vector<std::uint8_t> events;
  const std::uint32_t patterns[] = {0b0110, 0b1110, 0b0100,
                                    0b0010, 0b1111, 0b0000};
  for (std::uint32_t i = 0; i < 6; ++i) {
    support::put_u64(events, 1000 + i);
    support::put_u32(events, patterns[i]);
    support::put_u32(events, i);
  }
  bench.memory().write_bytes(0, events);

  const auto* mask_op = artifacts.design.operators.find("mask");
  bench.set_filter(0, 1 /* flags */, mask_op->encoding, 0b0110);
  const auto stats = bench.run_chunk(
      0, 4096, static_cast<std::uint32_t>(events.size()));
  std::printf("events with flags containing 0b0110: %llu of %llu\n",
              static_cast<unsigned long long>(stats.tuples_out),
              static_cast<unsigned long long>(stats.tuples_in));
  // 0b0110 and 0b1110 and 0b1111 contain the mask -> 3 survivors.
  return stats.tuples_out == 3 && hook_present ? 0 : 1;
}
