// Quickstart: the Fig. 4 example end to end.
//
// Compiles the Point3D -> Point2D parser specification, prints the
// generated artifacts, instantiates the PE on a simulated Cosmos+ and
// filters/transforms a handful of points through the actual cycle-level
// hardware model.
#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "ndp/predicate.hpp"
#include "support/bytes.hpp"

namespace {

constexpr const char* kSpec = R"spec(
/* @autogen define parser Point3DTo2D with
   chunksize = 32, input = Point3D, output = Point2D,
   mapping = { output.x = input.y, output.y = input.z } */
typedef struct { uint32_t x, y, z; } Point3D;
typedef struct { uint32_t x, y; } Point2D;
)spec";

}  // namespace

int main() {
  using namespace ndpgen;

  // 1. Compile the specification (parse -> contextual analysis ->
  //    template elaboration -> code generation).
  core::Framework framework;
  const core::CompileResult compiled = framework.compile(kSpec);
  const core::ParserArtifacts& pe = compiled.get("Point3DTo2D");

  std::printf("== ndpgen quickstart ==\n");
  std::printf("input layout:\n%s", pe.analyzed.input.dump().c_str());
  std::printf("output layout:\n%s", pe.analyzed.output.dump().c_str());
  std::printf("estimated resources (in-context): %.0f slices, %.1f BRAM\n",
              pe.resources_in_context.total.slices,
              pe.resources_in_context.total.bram36);
  std::printf("generated Verilog: %zu bytes, software interface: %zu bytes\n",
              pe.verilog.size(), pe.software_interface.size());

  // 2. Execute the generated PE on the cycle-level simulator: filter
  //    points with z > 100 and project them to 2-D.
  hwsim::PETestBench bench(pe.design);
  const std::uint32_t in_bytes = pe.analyzed.input.storage_bytes();
  const std::uint32_t out_bytes = pe.analyzed.output.storage_bytes();

  std::vector<std::uint8_t> points;
  for (std::uint32_t i = 0; i < 8; ++i) {
    support::put_u32(points, i);            // x
    support::put_u32(points, 10 * i);       // y
    support::put_u32(points, 50 * i);       // z: 0,50,100,...,350
  }
  bench.memory().write_bytes(0, points);

  const auto bound = ndp::bind_predicate(
      pe.analyzed.input, pe.design.operators,
      ndp::FilterPredicate{"z", "gt", 100});
  bench.set_filter(0, bound.field_select, bound.op_encoding,
                   bound.compare_value);

  const std::uint64_t dst = 16 * 1024;
  const auto stats = bench.run_chunk(0, dst, 8 * in_bytes);
  std::printf("PE processed %llu tuples in %llu cycles; %llu matched\n",
              static_cast<unsigned long long>(stats.tuples_in),
              static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(stats.tuples_out));

  for (std::uint64_t i = 0; i < stats.tuples_out; ++i) {
    const auto record =
        bench.memory().read_bytes(dst + i * out_bytes, out_bytes);
    std::printf("  Point2D{ x=%u y=%u }\n", support::get_u32(record, 0),
                support::get_u32(record, 4));
  }
  std::printf("done.\n");
  return 0;
}
