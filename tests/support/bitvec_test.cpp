#include "support/bitvec.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace ndpgen::support {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector bits;
  EXPECT_EQ(bits.width(), 0u);
  EXPECT_TRUE(bits.empty());
}

TEST(BitVector, ConstructedZeroed) {
  BitVector bits(130);
  EXPECT_EQ(bits.width(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.bit(i));
}

TEST(BitVector, SetAndGetBits) {
  BitVector bits(100);
  bits.set_bit(0, true);
  bits.set_bit(63, true);
  bits.set_bit(64, true);
  bits.set_bit(99, true);
  EXPECT_TRUE(bits.bit(0));
  EXPECT_TRUE(bits.bit(63));
  EXPECT_TRUE(bits.bit(64));
  EXPECT_TRUE(bits.bit(99));
  EXPECT_FALSE(bits.bit(1));
  bits.set_bit(63, false);
  EXPECT_FALSE(bits.bit(63));
}

TEST(BitVector, BitIndexOutOfRangeThrows) {
  BitVector bits(8);
  EXPECT_THROW(bits.bit(8), Error);
  EXPECT_THROW(bits.set_bit(8, true), Error);
}

TEST(BitVector, FromU64RoundTrip) {
  const auto bits = BitVector::from_u64(0xdeadbeefcafef00dULL, 64);
  EXPECT_EQ(bits.extract_u64(0, 64), 0xdeadbeefcafef00dULL);
}

TEST(BitVector, FromU64Masks) {
  const auto bits = BitVector::from_u64(0xff, 4);
  EXPECT_EQ(bits.extract_u64(0, 4), 0xfu);
}

TEST(BitVector, ExtractAcrossWordBoundary) {
  BitVector bits(128);
  bits.deposit_u64(60, 8, 0xab);
  EXPECT_EQ(bits.extract_u64(60, 8), 0xabu);
  EXPECT_EQ(bits.extract_u64(56, 16), 0xabu << 4);
}

TEST(BitVector, DepositExtractExhaustiveOffsets) {
  for (std::size_t offset = 0; offset < 70; ++offset) {
    BitVector bits(192);
    bits.deposit_u64(offset, 13, 0x1a5b & 0x1fff);
    EXPECT_EQ(bits.extract_u64(offset, 13), 0x1a5bu & 0x1fff) << offset;
    // Neighbours untouched.
    if (offset > 0) EXPECT_FALSE(bits.bit(offset - 1)) << offset;
    EXPECT_FALSE(bits.bit(offset + 13)) << offset;
  }
}

TEST(BitVector, DepositDoesNotClobber) {
  BitVector bits(64);
  bits.deposit_u64(0, 64, ~0ULL);
  bits.deposit_u64(8, 8, 0);
  EXPECT_EQ(bits.extract_u64(0, 8), 0xffu);
  EXPECT_EQ(bits.extract_u64(8, 8), 0u);
  EXPECT_EQ(bits.extract_u64(16, 48), (~0ULL) >> 16);
}

TEST(BitVector, SliceAndDeposit) {
  BitVector bits(96);
  bits.deposit_u64(10, 20, 0xabcde & 0xfffff);
  const BitVector slice = bits.slice(10, 20);
  EXPECT_EQ(slice.width(), 20u);
  EXPECT_EQ(slice.extract_u64(0, 20), 0xabcdeu & 0xfffff);

  BitVector other(40);
  other.deposit(5, slice);
  EXPECT_EQ(other.extract_u64(5, 20), 0xabcdeu & 0xfffff);
}

TEST(BitVector, SliceOutOfBoundsThrows) {
  BitVector bits(32);
  EXPECT_THROW(bits.slice(20, 20), Error);
}

TEST(BitVector, AppendGrows) {
  BitVector bits = BitVector::from_u64(0x5, 3);
  bits.append(BitVector::from_u64(0x3, 2));
  EXPECT_EQ(bits.width(), 5u);
  EXPECT_EQ(bits.extract_u64(0, 5), 0x5u | (0x3u << 3));
}

TEST(BitVector, AppendManyAcrossWords) {
  BitVector bits;
  for (int i = 0; i < 10; ++i) {
    bits.append(BitVector::from_u64(static_cast<std::uint64_t>(i), 20));
  }
  EXPECT_EQ(bits.width(), 200u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bits.extract_u64(static_cast<std::size_t>(i) * 20, 20),
              static_cast<std::uint64_t>(i));
  }
}

TEST(BitVector, ResizeTruncatesAndMasks) {
  BitVector bits = BitVector::from_u64(~0ULL, 64);
  bits.resize(10);
  EXPECT_EQ(bits.width(), 10u);
  EXPECT_EQ(bits.extract_u64(0, 10), 0x3ffu);
  bits.resize(20);
  EXPECT_EQ(bits.extract_u64(0, 20), 0x3ffu);  // Upper bits zero-filled.
}

TEST(BitVector, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x80, 0xff, 0x00, 0x5a};
  const auto bits = BitVector::from_bytes(bytes);
  EXPECT_EQ(bits.width(), 40u);
  EXPECT_EQ(bits.to_bytes(), bytes);
}

TEST(BitVector, ToBytesPartialByte) {
  const auto bits = BitVector::from_u64(0x1ff, 9);
  const auto bytes = bits.to_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xff);
  EXPECT_EQ(bytes[1], 0x01);
}

TEST(BitVector, ToStringMsbFirst) {
  const auto bits = BitVector::from_u64(0b1010, 4);
  EXPECT_EQ(bits.to_string(), "0b1010");
}

TEST(BitVector, Equality) {
  EXPECT_EQ(BitVector::from_u64(0x12, 8), BitVector::from_u64(0x12, 8));
  EXPECT_FALSE(BitVector::from_u64(0x12, 8) == BitVector::from_u64(0x12, 9));
  EXPECT_FALSE(BitVector::from_u64(0x12, 8) == BitVector::from_u64(0x13, 8));
}

TEST(BitVector, RandomizedSliceDepositRoundTrip) {
  Xoshiro256 rng(7);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::size_t total = 64 + rng.below(512);
    BitVector bits(total);
    const std::size_t width = 1 + rng.below(64);
    const std::size_t offset = rng.below(total - width);
    const std::uint64_t value =
        rng() & (width == 64 ? ~0ULL : ((1ULL << width) - 1));
    bits.deposit_u64(offset, width, value);
    EXPECT_EQ(bits.extract_u64(offset, width), value);
    const BitVector copy = bits.slice(0, total);
    EXPECT_EQ(copy, bits);
  }
}

}  // namespace
}  // namespace ndpgen::support
