#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ndpgen::support {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowOneIsZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto value = rng.range(3, 5);
    EXPECT_GE(value, 3u);
    EXPECT_LE(value, 5u);
    saw_lo |= value == 3;
    saw_hi |= value == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, Uniform01InUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Xoshiro256, ProducesDistinctValues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro256, BelowRoughlyUniform) {
  Xoshiro256 rng(17);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

}  // namespace
}  // namespace ndpgen::support
