#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ndpgen::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Many more tasks than threads: every one must still run before the
  // pool is destroyed (futures resolved afterwards).
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, TaskExceptionPoisonsOnlyItsFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survived the throwing task; the pool still executes work.
  EXPECT_EQ(good.get(), 7);
  EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForResultIndependentOfThreadCount) {
  // Each job writes only its own slot, so any thread count produces the
  // same output — the property the sharded scan engine relies on.
  std::vector<std::uint64_t> one(32), many(32);
  {
    ThreadPool pool(1);
    parallel_for(pool, one.size(),
                 [&one](std::size_t i) { one[i] = i * i + 1; });
  }
  {
    ThreadPool pool(8);
    parallel_for(pool, many.size(),
                 [&many](std::size_t i) { many[i] = i * i + 1; });
  }
  EXPECT_EQ(one, many);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      parallel_for(pool, 16, [](std::size_t i) {
        if (i == 3 || i == 11) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& error) {
      // Deterministic: always the lowest failing index, regardless of
      // which thread finished first.
      EXPECT_STREQ(error.what(), "job 3");
    }
  }
}

TEST(ThreadPool, ParallelForSurvivesExceptionAndPoolRemainsUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 8,
                   [](std::size_t) { throw std::runtime_error("all fail"); }),
      std::runtime_error);
  std::atomic<int> ran{0};
  parallel_for(pool, 8, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, DefaultThreadsNeverZeroNeverMoreThanJobs) {
  EXPECT_EQ(ThreadPool::default_threads(0), 1u);
  EXPECT_EQ(ThreadPool::default_threads(1), 1u);
  EXPECT_LE(ThreadPool::default_threads(2), 2u);
  EXPECT_GE(ThreadPool::default_threads(1024), 1u);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::support
