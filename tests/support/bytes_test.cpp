#include "support/bytes.hpp"

#include <gtest/gtest.h>

namespace ndpgen::support {
namespace {

TEST(Bytes, U16RoundTrip) {
  std::vector<std::uint8_t> buffer;
  put_u16(buffer, 0xbeef);
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer[0], 0xef);  // Little-endian.
  EXPECT_EQ(get_u16(buffer, 0), 0xbeef);
}

TEST(Bytes, U32RoundTrip) {
  std::vector<std::uint8_t> buffer;
  put_u32(buffer, 0x12345678);
  EXPECT_EQ(get_u32(buffer, 0), 0x12345678u);
}

TEST(Bytes, U64RoundTrip) {
  std::vector<std::uint8_t> buffer;
  put_u64(buffer, 0x0123456789abcdefULL);
  EXPECT_EQ(get_u64(buffer, 0), 0x0123456789abcdefULL);
}

TEST(Bytes, OffsetReads) {
  std::vector<std::uint8_t> buffer;
  put_u32(buffer, 1);
  put_u32(buffer, 2);
  EXPECT_EQ(get_u32(buffer, 4), 2u);
}

TEST(Bytes, OutOfBoundsThrows) {
  std::vector<std::uint8_t> buffer = {1, 2};
  EXPECT_THROW(get_u32(buffer, 0), Error);
  EXPECT_THROW(get_u16(buffer, 1), Error);
}

TEST(Varint, SmallValues) {
  std::vector<std::uint8_t> buffer;
  put_varint(buffer, 0);
  put_varint(buffer, 127);
  ASSERT_EQ(buffer.size(), 2u);
  std::size_t offset = 0;
  EXPECT_EQ(get_varint(buffer, offset), 0u);
  EXPECT_EQ(get_varint(buffer, offset), 127u);
  EXPECT_EQ(offset, 2u);
}

TEST(Varint, MultiByteValues) {
  std::vector<std::uint8_t> buffer;
  put_varint(buffer, 128);
  put_varint(buffer, 300);
  put_varint(buffer, ~0ULL);
  std::size_t offset = 0;
  EXPECT_EQ(get_varint(buffer, offset), 128u);
  EXPECT_EQ(get_varint(buffer, offset), 300u);
  EXPECT_EQ(get_varint(buffer, offset), ~0ULL);
  EXPECT_EQ(offset, buffer.size());
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::uint8_t> buffer = {0x80};
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buffer, offset), Error);
}

}  // namespace
}  // namespace ndpgen::support
