#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace ndpgen::support {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Split, BasicSplitting) {
  const auto pieces = split("a, b , c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Split, KeepsEmptyPieces) {
  const auto pieces = split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(Split, NoSeparator) {
  const auto pieces = split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_FALSE(starts_with("barfoo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ToMacroCase, ConvertsStyles) {
  EXPECT_EQ(to_macro_case("fooBar"), "FOO_BAR");
  EXPECT_EQ(to_macro_case("foo_bar"), "FOO_BAR");
  EXPECT_EQ(to_macro_case("foo.bar"), "FOO_BAR");
  EXPECT_EQ(to_macro_case("Point3DTo2D"), "POINT3DTO2D");
  EXPECT_EQ(to_macro_case("title_prefix"), "TITLE_PREFIX");
  EXPECT_EQ(to_macro_case("pos.elem_0"), "POS_ELEM_0");
}

TEST(Indent, IndentsNonEmptyLines) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");
  EXPECT_EQ(indent("", 2), "");
}

TEST(IsCIdentifier, Accepts) {
  EXPECT_TRUE(is_c_identifier("foo"));
  EXPECT_TRUE(is_c_identifier("_bar9"));
  EXPECT_TRUE(is_c_identifier("Point3D"));
}

TEST(IsCIdentifier, Rejects) {
  EXPECT_FALSE(is_c_identifier(""));
  EXPECT_FALSE(is_c_identifier("9foo"));
  EXPECT_FALSE(is_c_identifier("foo-bar"));
  EXPECT_FALSE(is_c_identifier("foo.bar"));
}

}  // namespace
}  // namespace ndpgen::support
