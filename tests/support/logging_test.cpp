#include "support/logging.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultLevelIsWarn) {
  // (Other tests must not have tampered without restoring.)
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kWarn));
}

TEST(Logging, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST(Logging, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "test", "should be suppressed");
  NDPGEN_LOG_ERROR("test") << "also suppressed " << 42;
}

TEST(Logging, StreamStyleFormatsLazily) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "value";
  };
  // The macro's if-guard prevents evaluation when the level is disabled.
  NDPGEN_LOG_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

class ComponentLevelGuard {
 public:
  ComponentLevelGuard() = default;
  ~ComponentLevelGuard() { clear_component_levels(); }
};

TEST(Logging, ComponentOverrideWinsOverGlobal) {
  LogLevelGuard guard;
  ComponentLevelGuard components;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "hwsim"));

  set_component_level("hwsim", LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug, "hwsim"));
  // Other components still follow the global level.
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "platform"));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn, "platform"));

  // Overrides also quiet a component below the global level.
  set_component_level("platform", LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError, "platform"));
}

TEST(Logging, ClearComponentLevelRestoresGlobal) {
  LogLevelGuard guard;
  ComponentLevelGuard components;
  set_log_level(LogLevel::kWarn);
  set_component_level("kv", LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace, "kv"));

  clear_component_level("kv");
  EXPECT_FALSE(log_enabled(LogLevel::kTrace, "kv"));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn, "kv"));

  set_component_level("a", LogLevel::kDebug);
  set_component_level("b", LogLevel::kDebug);
  clear_component_levels();
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "a"));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "b"));
}

TEST(Logging, SetComponentLevelReplacesExistingOverride) {
  LogLevelGuard guard;
  ComponentLevelGuard components;
  set_log_level(LogLevel::kWarn);
  set_component_level("ndp", LogLevel::kDebug);
  set_component_level("ndp", LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "ndp"));
  EXPECT_TRUE(log_enabled(LogLevel::kError, "ndp"));
}

struct StreamProbe {
  int* insertions;
};

std::ostream& operator<<(std::ostream& out, const StreamProbe& probe) {
  ++*probe.insertions;
  return out << "probe";
}

TEST(Logging, DisabledLogLineSkipsStreamInsertion) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int insertions = 0;
  // Construct the LogLine directly (bypassing the macro's if-guard) to
  // verify the line itself short-circuits operator<< when disabled.
  detail::LogLine(LogLevel::kDebug, "test") << StreamProbe{&insertions};
  EXPECT_EQ(insertions, 0);

  set_log_level(LogLevel::kError);
  detail::LogLine(LogLevel::kError, "test") << StreamProbe{&insertions};
  EXPECT_EQ(insertions, 1);
}

TEST(Logging, MacroRespectsComponentOverride) {
  LogLevelGuard guard;
  ComponentLevelGuard components;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "value";
  };
  NDPGEN_LOG_DEBUG("quiet") << expensive();
  EXPECT_EQ(evaluations, 0);

  set_component_level("loud", LogLevel::kDebug);
  NDPGEN_LOG_DEBUG("loud") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Error, KindNamesAndMessageComposition) {
  const Error error(ErrorKind::kStorage, "disk on fire");
  EXPECT_EQ(error.kind(), ErrorKind::kStorage);
  EXPECT_STREQ(error.what(), "storage: disk on fire");
  EXPECT_EQ(to_string(ErrorKind::kParse), "parse");
  EXPECT_EQ(to_string(ErrorKind::kInvalidArg), "invalid-argument");
}

TEST(Error, CheckMacrosThrowWithContext) {
  try {
    NDPGEN_CHECK_ARG(1 == 2, "math is broken");
    FAIL();
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kInvalidArg);
    EXPECT_NE(std::string(error.what()).find("math is broken"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
  }
  try {
    NDPGEN_CHECK(false, "invariant");
    FAIL();
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kInternal);
  }
}

}  // namespace
}  // namespace ndpgen::support
