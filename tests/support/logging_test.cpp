#include "support/logging.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultLevelIsWarn) {
  // (Other tests must not have tampered without restoring.)
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kWarn));
}

TEST(Logging, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST(Logging, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "test", "should be suppressed");
  NDPGEN_LOG_ERROR("test") << "also suppressed " << 42;
}

TEST(Logging, StreamStyleFormatsLazily) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "value";
  };
  // The macro's if-guard prevents evaluation when the level is disabled.
  NDPGEN_LOG_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Error, KindNamesAndMessageComposition) {
  const Error error(ErrorKind::kStorage, "disk on fire");
  EXPECT_EQ(error.kind(), ErrorKind::kStorage);
  EXPECT_STREQ(error.what(), "storage: disk on fire");
  EXPECT_EQ(to_string(ErrorKind::kParse), "parse");
  EXPECT_EQ(to_string(ErrorKind::kInvalidArg), "invalid-argument");
}

TEST(Error, CheckMacrosThrowWithContext) {
  try {
    NDPGEN_CHECK_ARG(1 == 2, "math is broken");
    FAIL();
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kInvalidArg);
    EXPECT_NE(std::string(error.what()).find("math is broken"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
  }
  try {
    NDPGEN_CHECK(false, "invariant");
    FAIL();
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kInternal);
  }
}

}  // namespace
}  // namespace ndpgen::support
