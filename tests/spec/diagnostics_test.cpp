#include "spec/diagnostics.hpp"

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::spec {
namespace {

TEST(Diagnostics, LocatedErrorCarriesLineAndColumn) {
  try {
    fail_at(ErrorKind::kParse, SourceLoc{3, 14}, "expected ';'");
    FAIL() << "fail_at must throw";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kParse);
    EXPECT_TRUE(error.has_location());
    EXPECT_EQ(error.line(), 3u);
    EXPECT_EQ(error.column(), 14u);
    // what() renders the location; message() stays raw for Status capture.
    EXPECT_NE(std::string(error.what()).find("at 3:14"), std::string::npos);
    EXPECT_EQ(error.message(), "expected ';'");
  }
}

TEST(Diagnostics, StatusFromErrorPreservesLocation) {
  try {
    fail_at(ErrorKind::kSemantic, SourceLoc{7, 2}, "unknown type 'Foo'");
    FAIL() << "fail_at must throw";
  } catch (const Error& error) {
    const Status status = Status::from(error);
    EXPECT_EQ(status.kind, ErrorKind::kSemantic);
    EXPECT_EQ(status.line, 7u);
    EXPECT_EQ(status.column, 2u);
    EXPECT_EQ(status.message, "unknown type 'Foo'");
    // No double "kind:" prefix and exactly one location suffix.
    EXPECT_EQ(status.to_string(), "semantic: unknown type 'Foo' at 7:2");
  }
}

TEST(Diagnostics, ParseSpecCheckedReturnsLocatedStatus) {
  // Missing semicolon after the field: the parser fails mid-struct with a
  // Result instead of a throw.
  const auto result = parse_spec_checked(
      "typedef struct {\n  uint32_t x\n} Point;\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kParse);
  EXPECT_TRUE(result.status().has_location());
  EXPECT_GE(result.status().line, 2u);
}

TEST(Diagnostics, ParseSpecCheckedOkOnValidSource) {
  const auto result = parse_spec_checked(
      "/* @autogen define parser P with chunksize = 32, input = A, "
      "output = A */\n"
      "typedef struct { uint32_t x; } A;\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().parsers.size(), 1u);
}

TEST(Diagnostics, LexErrorIsLocated) {
  const auto result = parse_spec_checked("typedef ` struct");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kLex);
  EXPECT_EQ(result.status().line, 1u);
  EXPECT_EQ(result.status().column, 9u);
}

TEST(Diagnostics, RenderCaretPointsAtColumn) {
  const std::string source = "line one\nfilter year betwen 2000;\n";
  const Status status{ErrorKind::kPlanInvalid, "unknown operator 'betwen'",
                      2, 13};
  const std::string rendered = render_caret(status, source);
  EXPECT_NE(rendered.find("plan-invalid: unknown operator 'betwen' at 2:13"),
            std::string::npos);
  EXPECT_NE(rendered.find("filter year betwen 2000;"), std::string::npos);
  // The caret sits under column 13 (12 spaces of padding).
  EXPECT_NE(rendered.find("\n  " + std::string(12, ' ') + "^"),
            std::string::npos);
}

TEST(Diagnostics, RenderCaretFallsBackWithoutLocation) {
  const Status status{ErrorKind::kPlanInvalid, "plan is empty"};
  EXPECT_EQ(render_caret(status, "whatever"), status.to_string());
}

TEST(Diagnostics, PlanInvalidExitCodeIsStable) {
  EXPECT_EQ(exit_code(ErrorKind::kPlanInvalid), 21);
  EXPECT_EQ(to_string(ErrorKind::kPlanInvalid), "plan-invalid");
}

}  // namespace
}  // namespace ndpgen::spec
