#include "spec/parser.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "hwgen/template_builder.hpp"
#include "support/error.hpp"

namespace ndpgen::spec {
namespace {

constexpr const char* kFig4 = R"spec(
/* @autogen define parser Point3DTo2D with
   chunksize = 32, input = Point3D, output = Point2D,
   mapping = { output.x = input.y, output.y = input.z } */
typedef struct { uint32_t x, y, z; } Point3D;
typedef struct { uint32_t x, y; } Point2D;
)spec";

TEST(Parser, Fig4Example) {
  const SpecModule module = parse_spec(kFig4);
  ASSERT_EQ(module.structs.size(), 2u);
  ASSERT_EQ(module.parsers.size(), 1u);

  const StructDecl* point3d = module.find_struct("Point3D");
  ASSERT_NE(point3d, nullptr);
  ASSERT_EQ(point3d->fields.size(), 3u);
  EXPECT_EQ(point3d->fields[0].name, "x");
  EXPECT_EQ(point3d->fields[2].name, "z");
  EXPECT_EQ(point3d->fields[0].type.kind, TypeRef::Kind::kPrimitive);
  EXPECT_EQ(point3d->fields[0].type.primitive, PrimitiveKind::kU32);

  const ParserSpec* parser = module.find_parser("Point3DTo2D");
  ASSERT_NE(parser, nullptr);
  EXPECT_EQ(parser->chunk_size_kb, 32u);
  EXPECT_EQ(parser->input_type, "Point3D");
  EXPECT_EQ(parser->output_type, "Point2D");
  EXPECT_EQ(parser->filter_stages, 1u);
  ASSERT_EQ(parser->mapping.size(), 2u);
  EXPECT_EQ(parser->mapping[0].output_path, std::vector<std::string>{"x"});
  EXPECT_EQ(parser->mapping[0].input_path, std::vector<std::string>{"y"});
  EXPECT_EQ(parser->mapping[1].output_path, std::vector<std::string>{"y"});
  EXPECT_EQ(parser->mapping[1].input_path, std::vector<std::string>{"z"});
}

TEST(Parser, AllPrimitiveTypes) {
  const SpecModule module = parse_spec(R"(
typedef struct {
  uint8_t a; uint16_t b; uint32_t c; uint64_t d;
  int8_t e; int16_t f; int32_t g; int64_t h;
  float i; double j; char k; int l;
} All;
/* @autogen define parser P with input = All, output = All */
)");
  const StructDecl* all = module.find_struct("All");
  ASSERT_NE(all, nullptr);
  ASSERT_EQ(all->fields.size(), 12u);
  EXPECT_EQ(all->fields[8].type.primitive, PrimitiveKind::kF32);
  EXPECT_EQ(all->fields[9].type.primitive, PrimitiveKind::kF64);
  EXPECT_EQ(all->fields[10].type.primitive, PrimitiveKind::kU8);   // char
  EXPECT_EQ(all->fields[11].type.primitive, PrimitiveKind::kI32);  // int
}

TEST(Parser, MultiDimensionalArrays) {
  const SpecModule module = parse_spec(
      "typedef struct { uint32_t m[2][3]; } M;"
      "/* @autogen define parser P with input = M, output = M */");
  const auto& field = module.find_struct("M")->fields[0];
  ASSERT_EQ(field.array_dims.size(), 2u);
  EXPECT_EQ(field.array_dims[0], 2u);
  EXPECT_EQ(field.array_dims[1], 3u);
}

TEST(Parser, NestedNamedStruct) {
  const SpecModule module = parse_spec(R"(
typedef struct { uint32_t x, y; } Inner;
typedef struct { uint64_t id; struct Inner pos; } Outer;
/* @autogen define parser P with input = Outer, output = Outer */
)");
  const auto& field = module.find_struct("Outer")->fields[1];
  EXPECT_EQ(field.type.kind, TypeRef::Kind::kNamed);
  EXPECT_EQ(field.type.name, "Inner");
}

TEST(Parser, NamedTypeWithoutStructKeyword) {
  const SpecModule module = parse_spec(R"(
typedef struct { uint32_t x; } Inner;
typedef struct { Inner pos; } Outer;
/* @autogen define parser P with input = Outer, output = Outer */
)");
  EXPECT_EQ(module.find_struct("Outer")->fields[0].type.name, "Inner");
}

TEST(Parser, AnonymousInlineStruct) {
  const SpecModule module = parse_spec(R"(
typedef struct {
  struct { uint32_t lat; uint32_t lon; } gps;
} Outer;
/* @autogen define parser P with input = Outer, output = Outer */
)");
  const auto& field = module.find_struct("Outer")->fields[0];
  EXPECT_EQ(field.type.kind, TypeRef::Kind::kInlineStruct);
  ASSERT_NE(field.type.inline_struct, nullptr);
  EXPECT_EQ(field.type.inline_struct->fields.size(), 2u);
}

TEST(Parser, StringAnnotationAttachesToField) {
  const SpecModule module = parse_spec(R"(
typedef struct {
  uint64_t id;
  /* @string prefix = 4 */
  char name[32];
} Rec;
/* @autogen define parser P with input = Rec, output = Rec */
)");
  const auto& field = module.find_struct("Rec")->fields[1];
  ASSERT_TRUE(field.string_annotation.has_value());
  EXPECT_EQ(field.string_annotation->prefix_bytes, 4u);
}

TEST(Parser, StringAnnotationOnNonByteArrayFails) {
  EXPECT_THROW(parse_spec(R"(
typedef struct {
  /* @string prefix = 4 */
  uint32_t name[32];
} Rec;
)"),
               ndpgen::Error);
}

TEST(Parser, StringPrefixMustBeShorterThanArray) {
  EXPECT_THROW(parse_spec(R"(
typedef struct {
  /* @string prefix = 4 */
  char name[4];
} Rec;
)"),
               ndpgen::Error);
}

TEST(Parser, StringPrefixRange) {
  EXPECT_THROW(parse_spec("typedef struct { /* @string prefix = 0 */ char s[8]; } R;"),
               ndpgen::Error);
  EXPECT_THROW(parse_spec("typedef struct { /* @string prefix = 9 */ char s[32]; } R;"),
               ndpgen::Error);
}

TEST(Parser, FiltersProperty) {
  const SpecModule module = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, filters = 5 */");
  EXPECT_EQ(module.find_parser("P")->filter_stages, 5u);
}

TEST(Parser, FiltersOutOfRangeFails) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, filters = 0 */"),
      ndpgen::Error);
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, filters = 17 */"),
      ndpgen::Error);
}

TEST(Parser, AggregateProperty) {
  const SpecModule with_true = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "aggregate = true */");
  EXPECT_TRUE(with_true.find_parser("P")->aggregate);
  const SpecModule with_one = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "aggregate = 1 */");
  EXPECT_TRUE(with_one.find_parser("P")->aggregate);
  const SpecModule with_false = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "aggregate = false */");
  EXPECT_FALSE(with_false.find_parser("P")->aggregate);
  EXPECT_THROW(parse_spec("typedef struct { uint64_t a; } T;"
                          "/* @autogen define parser P with input = T, "
                          "output = T, aggregate = maybe */"),
               ndpgen::Error);
}

TEST(Parser, AggregatePropertyFlowsToDesign) {
  const auto module = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "aggregate = true */");
  const auto analyzed = analysis::analyze_parser(module, "P");
  EXPECT_TRUE(analyzed.aggregate);
  const auto design = hwgen::build_pe_design(analyzed);
  EXPECT_EQ(design.modules_of_kind(hwgen::ModuleKind::kAggregateUnit).size(),
            1u);
  // Dump round-trips the property.
  const auto reparsed = parse_spec(module.dump());
  EXPECT_TRUE(reparsed.find_parser("P")->aggregate);
}

TEST(Parser, OperatorsProperty) {
  const SpecModule module = parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "operators = { eq, lt, nop } */");
  const auto& ops = module.find_parser("P")->operators;
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], "eq");
  EXPECT_EQ(ops[2], "nop");
}

TEST(Parser, UnknownInputTypeFails) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = Missing, output = T */"),
      ndpgen::Error);
}

TEST(Parser, MissingInputPropertyFails) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with output = T */"),
      ndpgen::Error);
}

TEST(Parser, DuplicatePropertyFails) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, input = T, output = T */"),
      ndpgen::Error);
}

TEST(Parser, DuplicateStructFails) {
  EXPECT_THROW(parse_spec("typedef struct { uint32_t a; } T;"
                          "typedef struct { uint32_t b; } T;"),
               ndpgen::Error);
}

TEST(Parser, DuplicateFieldFails) {
  EXPECT_THROW(parse_spec("typedef struct { uint32_t a; uint32_t a; } T;"),
               ndpgen::Error);
}

TEST(Parser, DuplicateParserFails) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T */"
      "/* @autogen define parser P with input = T, output = T */"),
      ndpgen::Error);
}

TEST(Parser, MappingMustStartWithOutputAndInput) {
  EXPECT_THROW(parse_spec(
      "typedef struct { uint32_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "mapping = { a = input.a } */"),
      ndpgen::Error);
  EXPECT_THROW(parse_spec(
      "typedef struct { uint32_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "mapping = { output.a = a } */"),
      ndpgen::Error);
}

TEST(Parser, MappingSemicolonSeparators) {
  const SpecModule module = parse_spec(
      "typedef struct { uint32_t a; uint32_t b; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "mapping = { output.a = input.b; output.b = input.a } */");
  EXPECT_EQ(module.find_parser("P")->mapping.size(), 2u);
}

TEST(Parser, StructKeywordVariant) {
  const SpecModule module = parse_spec("struct Foo { uint32_t a; };");
  EXPECT_NE(module.find_struct("Foo"), nullptr);
}

TEST(Parser, ArrayDimensionZeroFails) {
  EXPECT_THROW(parse_spec("typedef struct { uint32_t a[0]; } T;"),
               ndpgen::Error);
}

TEST(Parser, SyntaxErrorsCarryLocation) {
  try {
    parse_spec("typedef struct { uint32_t ; } T;");
    FAIL() << "expected parse error";
  } catch (const ndpgen::Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kParse);
    EXPECT_NE(std::string(error.what()).find("1:"), std::string::npos);
  }
}

TEST(Parser, WarnsAboutUnusedStructs) {
  DiagnosticSink sink;
  parse_spec(
      "typedef struct { uint32_t a; } Used;"
      "typedef struct { uint32_t b; } Unused;"
      "/* @autogen define parser P with input = Used, output = Used */",
      &sink);
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("Unused"), std::string::npos);
}

TEST(Parser, NoWarningWithoutParsers) {
  DiagnosticSink sink;
  parse_spec("typedef struct { uint32_t a; } Lonely;", &sink);
  EXPECT_TRUE(sink.empty());
}

TEST(Parser, DumpRoundTripsStructure) {
  const SpecModule module = parse_spec(kFig4);
  const std::string dumped = module.dump();
  const SpecModule reparsed = parse_spec(dumped);
  EXPECT_EQ(reparsed.structs.size(), module.structs.size());
  EXPECT_EQ(reparsed.parsers.size(), module.parsers.size());
  EXPECT_EQ(reparsed.find_parser("Point3DTo2D")->mapping.size(), 2u);
}

}  // namespace
}  // namespace ndpgen::spec
