#include "spec/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::spec {
namespace {

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).tokenize();
}

TEST(Lexer, EmptyInput) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(Lexer, Keywords) {
  const auto tokens = lex("typedef struct");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwTypedef);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwStruct);
}

TEST(Lexer, IdentifiersAndPunctuation) {
  const auto tokens = lex("uint32_t x, y;");
  ASSERT_EQ(tokens.size(), 6u);  // uint32_t x , y ; EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "uint32_t");
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[3].text, "y");
  EXPECT_EQ(tokens[4].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[5].kind, TokenKind::kEof);
}

TEST(Lexer, DecimalAndHexIntegers) {
  const auto tokens = lex("42 0x2A");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42u);
  EXPECT_EQ(tokens[1].int_value, 42u);
}

TEST(Lexer, IntegerWithSuffixFails) {
  EXPECT_THROW(lex("42abc"), ndpgen::Error);
}

TEST(Lexer, LineCommentsSkipped) {
  const auto tokens = lex("// comment\nfoo");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[0].loc.line, 2u);
}

TEST(Lexer, PlainBlockCommentsSkipped) {
  const auto tokens = lex("/* not an annotation */ foo");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "foo");
}

TEST(Lexer, AnnotationCommentBecomesToken) {
  const auto tokens = lex("/* @string prefix = 4 */ foo");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kAnnotation);
  EXPECT_NE(tokens[0].text.find("@string"), std::string::npos);
  EXPECT_EQ(tokens[1].text, "foo");
}

TEST(Lexer, StarDecoratedAnnotationRecognized) {
  const auto tokens = lex("/*\n * @autogen define parser P with input = A, output = A\n */");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kAnnotation);
}

TEST(Lexer, UnterminatedBlockCommentFails) {
  EXPECT_THROW(lex("/* unterminated"), ndpgen::Error);
}

TEST(Lexer, UnexpectedCharacterFails) {
  EXPECT_THROW(lex("$"), ndpgen::Error);
  EXPECT_THROW(lex("a @ b"), ndpgen::Error);  // '@' only in annotations.
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(Lexer, AnnotationBodyTokenization) {
  const auto tokens = Lexer::tokenize_annotation(
      "@autogen define parser P with chunksize = 32", SourceLoc{5, 1});
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kAt);
  EXPECT_EQ(tokens[1].text, "autogen");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
  EXPECT_EQ(tokens[0].loc.line, 5u);
}

TEST(Lexer, AnnotationBodyMappingTokens) {
  const auto tokens = Lexer::tokenize_annotation(
      "@autogen mapping = { output.x = input.y }", SourceLoc{});
  bool saw_dot = false, saw_brace = false;
  for (const auto& token : tokens) {
    saw_dot |= token.kind == TokenKind::kDot;
    saw_brace |= token.kind == TokenKind::kLBrace;
  }
  EXPECT_TRUE(saw_dot);
  EXPECT_TRUE(saw_brace);
}

TEST(Lexer, ArrayBrackets) {
  const auto tokens = lex("char title[104];");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[3].int_value, 104u);
  EXPECT_EQ(tokens[4].kind, TokenKind::kRBracket);
}

}  // namespace
}  // namespace ndpgen::spec
