// Multiple PEs sharing the AXI interconnect: concurrent cycle-accurate
// execution with real memory contention (the balance §IV of the paper
// discusses between flash and compute parallelism).
#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include "hwsim/pe_sim.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"

namespace ndpgen::hwsim {
namespace {

namespace hw = ndpgen::hwgen;

hw::PEDesign edge_design(const std::string& name) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t src; uint64_t dst; } Edge;"
      "/* @autogen define parser " + name +
      " with input = Edge, output = Edge */");
  return hw::build_pe_design(analysis::analyze_parser(module, name));
}

class MultiPeFixture : public ::testing::Test {
 protected:
  MultiPeFixture() : memory_(1 << 22) {
    interconnect_ = std::make_unique<AxiInterconnect>(
        memory_, AxiInterconnect::Config{2, 20, 64});
    kernel_.add_module(interconnect_.get());
  }

  SimulatedPE& add_pe(const std::string& name) {
    pes_.push_back(std::make_unique<SimulatedPE>(edge_design(name), kernel_,
                                                 *interconnect_));
    return *pes_.back();
  }

  void start_pe(SimulatedPE& pe, std::uint64_t src, std::uint64_t dst,
                std::uint32_t bytes) {
    const auto& map = pe.regmap();
    pe.mmio_write(map.offset_of(hw::reg::kInAddrLo),
                  static_cast<std::uint32_t>(src));
    pe.mmio_write(map.offset_of(hw::reg::kOutAddrLo),
                  static_cast<std::uint32_t>(dst));
    pe.mmio_write(map.offset_of(hw::reg::kInSize), bytes);
    // nop filter.
    pe.mmio_write(map.offset_of(hw::reg::filter_op(0)), 6);
    pe.mmio_write(map.offset_of(hw::reg::kStart), 1);
  }

  SimMemory memory_;
  SimKernel kernel_;
  std::unique_ptr<AxiInterconnect> interconnect_;
  std::vector<std::unique_ptr<SimulatedPE>> pes_;
};

TEST_F(MultiPeFixture, ConcurrentPesProduceCorrectResults) {
  auto& pe_a = add_pe("A");
  auto& pe_b = add_pe("B");
  std::vector<std::uint8_t> edges_a, edges_b;
  for (std::uint64_t i = 0; i < 128; ++i) {
    support::put_u64(edges_a, i);
    support::put_u64(edges_a, i + 1);
    support::put_u64(edges_b, 1000 + i);
    support::put_u64(edges_b, 1000 + i + 1);
  }
  memory_.write_bytes(0, edges_a);
  memory_.write_bytes(0x100000, edges_b);

  start_pe(pe_a, 0, 0x200000, static_cast<std::uint32_t>(edges_a.size()));
  start_pe(pe_b, 0x100000, 0x300000,
           static_cast<std::uint32_t>(edges_b.size()));
  kernel_.run_until([&] { return !pe_a.busy() && !pe_b.busy(); });

  EXPECT_EQ(pe_a.last_stats().tuples_out, 128u);
  EXPECT_EQ(pe_b.last_stats().tuples_out, 128u);
  // Each PE's results are intact despite interleaved memory traffic.
  EXPECT_EQ(memory_.read_u64(0x200000), 0u);
  EXPECT_EQ(memory_.read_u64(0x200000 + 8), 1u);
  EXPECT_EQ(memory_.read_u64(0x300000), 1000u);
  EXPECT_EQ(memory_.read_u64(0x300000 + 127 * 16 + 8), 1000u + 128);
}

TEST_F(MultiPeFixture, ContentionSlowsConcurrentRuns) {
  // One PE alone vs two PEs sharing 2 beats/cycle: per-PE cycles rise.
  std::vector<std::uint8_t> edges;
  for (std::uint64_t i = 0; i < 512; ++i) {
    support::put_u64(edges, i);
    support::put_u64(edges, i * 2);
  }

  auto& pe_solo = add_pe("Solo");
  memory_.write_bytes(0, edges);
  start_pe(pe_solo, 0, 0x200000, static_cast<std::uint32_t>(edges.size()));
  kernel_.run_until([&] { return !pe_solo.busy(); });
  const auto solo_cycles = pe_solo.last_stats().cycles;

  auto& pe_x = add_pe("X");
  auto& pe_y = add_pe("Y");
  memory_.write_bytes(0x100000, edges);
  start_pe(pe_x, 0, 0x200000, static_cast<std::uint32_t>(edges.size()));
  start_pe(pe_y, 0x100000, 0x300000,
           static_cast<std::uint32_t>(edges.size()));
  kernel_.run_until([&] { return !pe_x.busy() && !pe_y.busy(); });

  // Two PEs need read+write bandwidth of ~2+2 beats/cycle against a cap
  // of 2: each must take noticeably longer than the solo run.
  EXPECT_GT(pe_x.last_stats().cycles, solo_cycles + solo_cycles / 4);
  EXPECT_GT(pe_y.last_stats().cycles, solo_cycles + solo_cycles / 4);
  EXPECT_GT(interconnect_->contended_cycles(), 0u);
  // But both still complete correctly.
  EXPECT_EQ(pe_x.last_stats().tuples_out, 512u);
  EXPECT_EQ(pe_y.last_stats().tuples_out, 512u);
}

TEST_F(MultiPeFixture, EightRefPEsLikeThePaperDesign) {
  // The Table I design point: many small PEs attached to one fabric.
  std::vector<SimulatedPE*> pes;
  std::vector<std::uint8_t> edges;
  for (std::uint64_t i = 0; i < 64; ++i) {
    support::put_u64(edges, i);
    support::put_u64(edges, i);
  }
  for (int p = 0; p < 8; ++p) {
    pes.push_back(&add_pe("Ref" + std::to_string(p)));
    const std::uint64_t base = 0x10000ull * static_cast<std::uint64_t>(p);
    memory_.write_bytes(base, edges);
  }
  for (int p = 0; p < 8; ++p) {
    start_pe(*pes[p], 0x10000ull * p, 0x200000 + 0x10000ull * p,
             static_cast<std::uint32_t>(edges.size()));
  }
  kernel_.run_until([&] {
    for (auto* pe : pes) {
      if (pe->busy()) return false;
    }
    return true;
  });
  for (auto* pe : pes) {
    EXPECT_EQ(pe->last_stats().tuples_in, 64u);
    EXPECT_EQ(pe->last_stats().tuples_out, 64u);
  }
}

}  // namespace
}  // namespace ndpgen::hwsim
