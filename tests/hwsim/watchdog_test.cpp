#include "hwsim/kernel.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hwsim/stream.hpp"
#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

class ProducerModule final : public Module {
 public:
  ProducerModule(Stream<int>* out, int limit)
      : Module("producer"), out_(out), limit_(limit) {}
  void cycle(std::uint64_t) override {
    if (next_ < limit_ && out_->can_push()) out_->push(next_++);
  }
  void reset() override { next_ = 0; }
  [[nodiscard]] bool idle() const noexcept override { return next_ == limit_; }

 private:
  Stream<int>* out_;
  int limit_;
  int next_ = 0;
};

class SinkModule final : public Module {
 public:
  explicit SinkModule(Stream<int>* in) : Module("sink"), in_(in) {}
  void cycle(std::uint64_t) override {
    if (in_->can_pop()) {
      (void)in_->pop();
      ++popped;
    }
  }
  int popped = 0;

 private:
  Stream<int>* in_;
};

/// A PE stage that stalls forever: never pushes, never pops — the injected
/// "hung kernel" the firmware watchdog must catch.
class StuckModule final : public Module {
 public:
  StuckModule() : Module("stuck") {}
  void cycle(std::uint64_t) override {}
  void reset() override {}
  [[nodiscard]] bool idle() const noexcept override { return false; }
};

TEST(Watchdog, DisabledByDefault) {
  SimKernel kernel;
  EXPECT_EQ(kernel.watchdog_cycles(), 0u);
}

TEST(Watchdog, StreamsCountCommittedTransfers) {
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 2);
  ProducerModule producer(stream, 10);
  SinkModule sink(stream);
  kernel.add_module(&producer);
  kernel.add_module(&sink);
  kernel.run_until([&] { return sink.popped == 10; }, 1000);
  EXPECT_EQ(stream->transfers(), 10u);
  EXPECT_EQ(kernel.total_transfers(), 10u);
  kernel.reset();
  EXPECT_EQ(stream->transfers(), 0u);
}

TEST(Watchdog, FiresOnStuckKernel) {
  SimKernel kernel;
  (void)kernel.make_stream<int>("pipe", 2);
  StuckModule stuck;
  kernel.add_module(&stuck);
  kernel.set_watchdog(50);
  EXPECT_EQ(kernel.watchdog_cycles(), 50u);
  try {
    kernel.run_until([] { return false; }, 100'000);
    FAIL() << "watchdog did not fire";
  } catch (const ndpgen::Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kSimulation);
    EXPECT_NE(std::string(error.what()).find("watchdog"), std::string::npos);
  }
  // Fired at the stall horizon, far before the run_until deadline.
  EXPECT_LT(kernel.now(), 1000u);
}

TEST(Watchdog, QuietWhileProgressing) {
  // Steady ready/valid traffic keeps the stall counter at zero even with a
  // tight watchdog horizon.
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 2);
  ProducerModule producer(stream, 200);
  SinkModule sink(stream);
  kernel.add_module(&producer);
  kernel.add_module(&sink);
  kernel.set_watchdog(10);
  kernel.run_until([&] { return sink.popped == 200; }, 10'000);
  EXPECT_EQ(sink.popped, 200);
}

TEST(Watchdog, DeadlineErrorIsNotAWatchdogError) {
  // With the watchdog disabled a stuck kernel still hits the run_until
  // deadline; the message must not claim a watchdog detection.
  SimKernel kernel;
  StuckModule stuck;
  kernel.add_module(&stuck);
  try {
    kernel.run_until([] { return false; }, 100);
    FAIL() << "deadline did not fire";
  } catch (const ndpgen::Error& error) {
    EXPECT_EQ(std::string(error.what()).find("watchdog"), std::string::npos);
  }
}

TEST(Watchdog, FiresWhenPipelineDrainsToDeadlock) {
  // Progress first, then deadlock: producer fills the stream, nobody
  // drains it. The watchdog must measure the *last* transfer, not just
  // start-of-run activity.
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 4);
  ProducerModule producer(stream, 100);  // Blocks once the stream is full.
  kernel.add_module(&producer);
  kernel.set_watchdog(50);
  try {
    kernel.run_until([] { return false; }, 100'000);
    FAIL() << "watchdog did not fire";
  } catch (const ndpgen::Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kSimulation);
    EXPECT_NE(std::string(error.what()).find("watchdog"), std::string::npos);
  }
  EXPECT_EQ(stream->transfers(), 4u);  // Capacity-limited, then stalled.
}

}  // namespace
}  // namespace ndpgen::hwsim
