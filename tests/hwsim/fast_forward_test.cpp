// Fast-forward kernel tests: the event-driven mode must produce exactly
// the state the tick-by-tick loop produces — same virtual time, same
// cycle classification, same stats, same memory — only faster.
#include "hwsim/kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hwgen/register_map.hpp"
#include "hwgen/template_builder.hpp"
#include "hwsim/pe_sim.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

namespace hw = ndpgen::hwgen;

/// Sleeps until a fixed virtual cycle, then emits one token. Declares its
/// wake time through next_activity so fast mode can jump the gap.
class TimerModule final : public Module {
 public:
  TimerModule(Stream<int>* out, std::uint64_t wake_at)
      : Module("timer"), out_(out), wake_at_(wake_at) {}
  void cycle(std::uint64_t now) override {
    if (!fired_ && now >= wake_at_ && out_->can_push()) {
      out_->push(1);
      fired_ = true;
    }
  }
  [[nodiscard]] bool idle() const noexcept override { return fired_; }
  [[nodiscard]] std::uint64_t next_activity(
      std::uint64_t now) const noexcept override {
    if (fired_) return kNeverActive;
    return wake_at_ > now ? wake_at_ : now + 1;
  }

 private:
  Stream<int>* out_;
  std::uint64_t wake_at_;
  bool fired_ = false;
};

/// Consumes tokens and records the idle credit it was granted.
class CreditSink final : public Module {
 public:
  explicit CreditSink(Stream<int>* in) : Module("sink"), in_(in) {}
  void cycle(std::uint64_t) override {
    if (in_->can_pop()) {
      (void)in_->pop();
      ++popped;
    }
  }
  [[nodiscard]] std::uint64_t next_activity(
      std::uint64_t) const noexcept override {
    return kNeverActive;  // Purely reactive: the stream wakes the kernel.
  }
  void credit_idle_cycles(std::uint64_t cycles) noexcept override {
    credited += cycles;
  }
  int popped = 0;
  std::uint64_t credited = 0;

 private:
  Stream<int>* in_;
};

struct GapRun {
  std::uint64_t now;
  CycleStats stats;
  std::uint64_t credited;
};

GapRun run_gap(SimMode mode, std::uint64_t wake_at) {
  SimKernel kernel;
  kernel.set_mode(mode);
  auto* stream = kernel.make_stream<int>("wire");
  TimerModule timer(stream, wake_at);
  CreditSink sink(stream);
  kernel.add_module(&timer);
  kernel.add_module(&sink);
  kernel.run_until([&] { return sink.popped == 1; });
  return {kernel.now(), kernel.cycle_stats(), sink.credited};
}

TEST(FastForward, IdleGapCollapsesToArithmeticCredit) {
  const auto exact = run_gap(SimMode::kExact, 100'000);
  const auto fast = run_gap(SimMode::kFast, 100'000);
  EXPECT_EQ(exact.now, fast.now);
  EXPECT_EQ(exact.stats.useful, fast.stats.useful);
  EXPECT_EQ(exact.stats.stalled, fast.stats.stalled);
  EXPECT_EQ(exact.stats.idle, fast.stats.idle);
  // Both partitions account for every tick...
  EXPECT_EQ(fast.stats.total(), fast.now);
  // ...and fast mode covered (almost) the whole gap with arithmetic
  // credit rather than ticks, while exact mode never credits.
  EXPECT_EQ(exact.credited, 0u);
  EXPECT_GE(fast.credited, 99'000u);
}

TEST(FastForward, WatchdogTripsAtSameVirtualCycleUnderJumps) {
  auto trip_cycle = [](SimMode mode) {
    SimKernel kernel;
    kernel.set_mode(mode);
    auto* stream = kernel.make_stream<int>("wire");
    TimerModule timer(stream, 10'000);  // Far beyond the watchdog horizon.
    CreditSink sink(stream);
    kernel.add_module(&timer);
    kernel.add_module(&sink);
    kernel.set_watchdog(137);
    EXPECT_THROW(kernel.run_until([&] { return sink.popped == 1; }),
                 Error);
    return kernel.now();
  };
  EXPECT_EQ(trip_cycle(SimMode::kExact), trip_cycle(SimMode::kFast));
}

TEST(FastForward, DeadlockTimeoutAtSameVirtualCycle) {
  auto timeout_cycle = [](SimMode mode) {
    SimKernel kernel;
    kernel.set_mode(mode);
    auto* stream = kernel.make_stream<int>("wire");
    TimerModule timer(stream, 50'000);
    CreditSink sink(stream);
    kernel.add_module(&timer);
    kernel.add_module(&sink);
    EXPECT_THROW(
        kernel.run_until([&] { return sink.popped == 1; }, 1'000),
        Error);
    return kernel.now();
  };
  EXPECT_EQ(timeout_cycle(SimMode::kExact), timeout_cycle(SimMode::kFast));
}

// ---- Fused chunk replay vs exact ticking ------------------------------

hw::PEDesign design_for(const std::string& source, const std::string& name,
                        hw::DesignFlavor flavor = hw::DesignFlavor::kGenerated,
                        bool aggregation = false) {
  const auto module = spec::parse_spec(source);
  hw::TemplateOptions options;
  options.flavor = flavor;
  options.enable_aggregation = aggregation;
  return hw::build_pe_design(analysis::analyze_parser(module, name), options);
}

const std::string kPointSpec =
    "/* @autogen define parser P with chunksize = 32, input = Point3D, "
    "output = Point2D, mapping = { output.x = input.y, output.y = input.z } "
    "*/"
    "typedef struct { uint32_t x, y, z; } Point3D;"
    "typedef struct { uint32_t x, y; } Point2D;";

std::vector<std::uint8_t> make_points(std::uint32_t count) {
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < count; ++i) {
    support::put_u32(data, i);
    support::put_u32(data, 100 + i);
    support::put_u32(data, 1000 + i);
  }
  return data;
}

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> bytes) {
  return {bytes.begin(), bytes.end()};
}

void expect_chunk_eq(const ChunkStats& a, const ChunkStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.tuples_in, b.tuples_in);
  EXPECT_EQ(a.tuples_out, b.tuples_out);
  EXPECT_EQ(a.payload_bytes_in, b.payload_bytes_in);
  EXPECT_EQ(a.payload_bytes_out, b.payload_bytes_out);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.cycles_useful, b.cycles_useful);
  EXPECT_EQ(a.cycles_stalled, b.cycles_stalled);
  EXPECT_EQ(a.cycles_idle, b.cycles_idle);
  EXPECT_EQ(a.stage_pass_counts, b.stage_pass_counts);
  EXPECT_EQ(a.stage_stall_in, b.stage_stall_in);
  EXPECT_EQ(a.stage_stall_out, b.stage_stall_out);
  EXPECT_EQ(a.agg_result, b.agg_result);
  EXPECT_EQ(a.agg_folded, b.agg_folded);
}

PEBenchConfig bench_config(SimMode mode) {
  PEBenchConfig config;
  config.sim_mode = mode;
  return config;
}

TEST(FastForward, FusedChunkMatchesExactTickingByteForByte) {
  const auto design = design_for(kPointSpec, "P");
  const auto points = make_points(32);
  auto run = [&](SimMode mode) {
    PETestBench bench(design, bench_config(mode));
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 3 /* ge */, 8);
    const ChunkStats stats = bench.run_chunk(0, 8192, points.size());
    return std::tuple{stats, to_vec(bench.memory().read_bytes(8192, 24 * 8)),
                      bench.observability().metrics.dump_json(),
                      bench.kernel().now(), bench.kernel().cycle_stats()};
  };
  const auto [se, me, je, ne, ce] = run(SimMode::kExact);
  const auto [sf, mf, jf, nf, cf] = run(SimMode::kFast);
  expect_chunk_eq(se, sf);
  EXPECT_EQ(me, mf);  // Output DRAM image.
  EXPECT_EQ(je, jf);  // Published metrics.
  EXPECT_EQ(ne, nf);  // Virtual clock.
  EXPECT_EQ(ce.useful, cf.useful);
  EXPECT_EQ(ce.stalled, cf.stalled);
  EXPECT_EQ(ce.idle, cf.idle);
}

TEST(FastForward, MultiChunkKeepsCumulativeStateIdentical) {
  const auto design = design_for(kPointSpec, "P");
  const auto points = make_points(32);
  auto run = [&](SimMode mode) {
    PETestBench bench(design, bench_config(mode));
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 4 /* lt */, 20);
    ChunkStats last;
    for (int i = 0; i < 3; ++i) {
      last = bench.run_chunk(0, 8192 + i * 4096, points.size());
    }
    return std::tuple{last, bench.kernel().now(),
                      bench.observability().metrics.dump_json()};
  };
  const auto [se, ne, je] = run(SimMode::kExact);
  const auto [sf, nf, jf] = run(SimMode::kFast);
  expect_chunk_eq(se, sf);
  EXPECT_EQ(ne, nf);
  EXPECT_EQ(je, jf);
}

TEST(FastForward, AggregateChunkMatchesExact) {
  const std::string spec =
      "typedef struct { uint64_t id; int32_t temp; float reading; } Sensor;"
      "/* @autogen define parser S with input = Sensor, output = Sensor */";
  const auto design =
      design_for(spec, "S", hw::DesignFlavor::kGenerated, true);
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < 24; ++i) {
    support::put_u64(data, i);
    support::put_u32(data, static_cast<std::uint32_t>(-40 + 7 * i));
    support::put_u32(data, 0x3F800000u + i);  // float bits
  }
  auto run = [&](SimMode mode) {
    PETestBench bench(design, bench_config(mode));
    bench.memory().write_bytes(0, data);
    const auto& map = bench.pe().regmap();
    bench.pe().mmio_write(map.offset_of(hw::reg::kAggOp),
                          static_cast<std::uint32_t>(hw::AggOp::kSum));
    bench.pe().mmio_write(map.offset_of(hw::reg::kAggField), 1 /* temp */);
    bench.set_filter(0, 0, 6 /* nop */, 0);
    return bench.run_chunk(0, 8192, static_cast<std::uint32_t>(data.size()));
  };
  const ChunkStats exact = run(SimMode::kExact);
  const ChunkStats fast = run(SimMode::kFast);
  expect_chunk_eq(exact, fast);
  EXPECT_EQ(exact.agg_folded, 24u);
}

TEST(FastForward, StaticBaselinePaddingMatchesExact) {
  const auto design = design_for(kPointSpec, "P",
                                 hw::DesignFlavor::kHandcraftedBaseline);
  const auto points = make_points(2);  // 24 of 32 chunk bytes.
  auto run = [&](SimMode mode) {
    PETestBench bench(design, bench_config(mode));
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 6 /* nop */, 0);
    const ChunkStats stats =
        bench.run_chunk(0, 8192, static_cast<std::uint32_t>(points.size()));
    return std::pair{stats, to_vec(bench.memory().read_bytes(8192, 32768))};
  };
  const auto [se, me] = run(SimMode::kExact);
  const auto [sf, mf] = run(SimMode::kFast);
  expect_chunk_eq(se, sf);
  EXPECT_EQ(me, mf);
  // The hand-crafted baseline always writes the full 32 KiB chunk,
  // zero-padding past the two real tuples.
  EXPECT_EQ(se.bytes_written, 32768u);
}

TEST(FastForward, WatchdogMidChunkFallsBackToIdenticalRaise) {
  const auto design = design_for(kPointSpec, "P");
  const auto points = make_points(32);
  auto raise_cycle = [&](SimMode mode) {
    PETestBench bench(design, bench_config(mode));
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 6 /* nop */, 0);
    // Shorter than the AXI read latency: trips during the initial
    // response ramp, mid-fast-forward. The fused engine must detect the
    // horizon and drop back to exact replay, raising at the same cycle.
    bench.kernel().set_watchdog(3);
    std::string message;
    try {
      (void)bench.run_chunk(0, 8192, points.size());
    } catch (const Error& e) {
      message = e.what();
    }
    EXPECT_FALSE(message.empty());
    return std::pair{bench.kernel().now(), message};
  };
  EXPECT_EQ(raise_cycle(SimMode::kExact), raise_cycle(SimMode::kFast));
}

TEST(FastForward, ForeignModuleForcesExactFallbackWithSameResults) {
  // An unknown module type in the kernel is a structural boundary: the
  // fused engine must refuse and the exact path must still produce the
  // canonical results.
  class OpaqueModule final : public Module {
   public:
    OpaqueModule() : Module("opaque") {}
    void cycle(std::uint64_t) override {}
  };
  const auto design = design_for(kPointSpec, "P");
  const auto points = make_points(16);
  auto run = [&](SimMode mode, bool add_foreign) {
    PETestBench bench(design, bench_config(mode));
    OpaqueModule opaque;
    if (add_foreign) bench.kernel().add_module(&opaque);
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 3 /* ge */, 4);
    const ChunkStats stats = bench.run_chunk(0, 4096, points.size());
    return std::pair{stats, to_vec(bench.memory().read_bytes(4096, 12 * 8))};
  };
  const auto [se, me] = run(SimMode::kExact, false);
  const auto [sf, mf] = run(SimMode::kFast, true);
  expect_chunk_eq(se, sf);
  EXPECT_EQ(me, mf);
}

}  // namespace
}  // namespace ndpgen::hwsim
