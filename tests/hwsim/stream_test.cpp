#include "hwsim/stream.hpp"

#include <gtest/gtest.h>

#include "hwsim/kernel.hpp"
#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

TEST(Stream, TwoPhaseVisibility) {
  Stream<int> stream("s", 4);
  EXPECT_TRUE(stream.can_push());
  EXPECT_FALSE(stream.can_pop());
  stream.push(42);
  // Not visible until commit (registered output).
  EXPECT_FALSE(stream.can_pop());
  stream.commit();
  ASSERT_TRUE(stream.can_pop());
  EXPECT_EQ(stream.front(), 42);
  EXPECT_EQ(stream.pop(), 42);
  EXPECT_FALSE(stream.can_pop());
}

TEST(Stream, CapacityCountsStaged) {
  Stream<int> stream("s", 2);
  stream.push(1);
  stream.push(2);
  EXPECT_FALSE(stream.can_push());
  EXPECT_THROW(stream.push(3), ndpgen::Error);
  stream.commit();
  EXPECT_FALSE(stream.can_push());
  (void)stream.pop();
  EXPECT_TRUE(stream.can_push());
}

TEST(Stream, FifoOrder) {
  Stream<int> stream("s", 8);
  for (int i = 0; i < 5; ++i) stream.push(i);
  stream.commit();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(stream.pop(), i);
}

TEST(Stream, PopEmptyThrows) {
  Stream<int> stream("s", 2);
  EXPECT_THROW(stream.pop(), ndpgen::Error);
  EXPECT_THROW(stream.front(), ndpgen::Error);
}

TEST(Stream, ResetClearsBoth) {
  Stream<int> stream("s", 4);
  stream.push(1);
  stream.commit();
  stream.push(2);
  EXPECT_FALSE(stream.empty());
  stream.reset();
  EXPECT_TRUE(stream.empty());
  EXPECT_EQ(stream.occupancy(), 0u);
}

TEST(Stream, OccupancyTracksBoth) {
  Stream<int> stream("s", 4);
  stream.push(1);
  EXPECT_EQ(stream.occupancy(), 1u);
  stream.commit();
  stream.push(2);
  EXPECT_EQ(stream.occupancy(), 2u);
}

// --- Kernel ----------------------------------------------------------

class CounterModule final : public Module {
 public:
  CounterModule(Stream<int>* out, int limit)
      : Module("counter"), out_(out), limit_(limit) {}
  void cycle(std::uint64_t) override {
    if (next_ < limit_ && out_->can_push()) out_->push(next_++);
  }
  void reset() override { next_ = 0; }
  [[nodiscard]] bool idle() const noexcept override { return next_ == limit_; }

 private:
  Stream<int>* out_;
  int limit_;
  int next_ = 0;
};

class SinkModule final : public Module {
 public:
  explicit SinkModule(Stream<int>* in) : Module("sink"), in_(in) {}
  void cycle(std::uint64_t) override {
    if (in_->can_pop()) values.push_back(in_->pop());
  }
  std::vector<int> values;

 private:
  Stream<int>* in_;
};

TEST(Kernel, PipelineMovesData) {
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 2);
  CounterModule producer(stream, 10);
  SinkModule consumer(stream);
  kernel.add_module(&producer);
  kernel.add_module(&consumer);
  const auto cycles = kernel.run_until(
      [&] { return consumer.values.size() == 10 && kernel.streams_empty(); },
      1000);
  EXPECT_GT(cycles, 10u);  // At least one cycle of pipeline latency.
  ASSERT_EQ(consumer.values.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(consumer.values[i], i);
}

TEST(Kernel, RunUntilTimesOut) {
  SimKernel kernel;
  EXPECT_THROW(kernel.run_until([] { return false; }, 100), ndpgen::Error);
  EXPECT_EQ(kernel.now(), 100u);
}

TEST(Kernel, ResetRestoresInitialState) {
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 2);
  CounterModule producer(stream, 3);
  kernel.add_module(&producer);
  kernel.tick();
  kernel.tick();
  EXPECT_GT(kernel.now(), 0u);
  kernel.reset();
  EXPECT_EQ(kernel.now(), 0u);
  EXPECT_TRUE(kernel.streams_empty());
}

TEST(Kernel, OneItemPerCycleThroughput) {
  // An elastic stage sustains one item per cycle once primed.
  SimKernel kernel;
  auto* stream = kernel.make_stream<int>("pipe", 2);
  CounterModule producer(stream, 100);
  SinkModule consumer(stream);
  kernel.add_module(&producer);
  kernel.add_module(&consumer);
  const auto cycles = kernel.run_until(
      [&] { return consumer.values.size() == 100; }, 10'000);
  EXPECT_LE(cycles, 105u);
}

}  // namespace
}  // namespace ndpgen::hwsim
