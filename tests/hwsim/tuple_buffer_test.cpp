// Direct unit tests of the tuple buffers (word regrouping, padding,
// non-word-aligned tuple widths, slack handling).
#include "hwsim/tuple_buffer.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "hwsim/kernel.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"

namespace ndpgen::hwsim {
namespace {

analysis::TupleLayout layout_for(const std::string& source) {
  const auto module = spec::parse_spec(source);
  return analysis::analyze_parser(module, "P").input;
}

class BufferFixture : public ::testing::Test {
 protected:
  void build(const std::string& source) {
    layout_ = layout_for(source);
    words_in_ = kernel_.make_stream<std::uint64_t>("win", 8);
    tuples_ = kernel_.make_stream<Tuple>("t", 4);
    words_out_ = kernel_.make_stream<std::uint64_t>("wout", 8);
    in_buffer_ = std::make_unique<SimTupleInputBuffer>("in", layout_,
                                                       words_in_, tuples_);
    out_buffer_ = std::make_unique<SimTupleOutputBuffer>(
        "out", layout_, tuples_, words_out_);
    kernel_.add_module(in_buffer_.get());
    kernel_.add_module(out_buffer_.get());
  }

  /// Streams `bytes` through input buffer -> tuple stream -> output
  /// buffer and returns the re-packed bytes.
  std::vector<std::uint8_t> round_trip(std::span<const std::uint8_t> bytes) {
    in_buffer_->start(bytes.size() * 8);
    out_buffer_->start();
    std::size_t offset = 0;
    std::vector<std::uint8_t> out;
    for (int cycle = 0; cycle < 10'000; ++cycle) {
      if (offset < bytes.size() && words_in_->can_push()) {
        std::uint64_t word = 0;
        for (int i = 0; i < 8 && offset + static_cast<std::size_t>(i) <
                                     bytes.size();
             ++i) {
          word |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
        }
        words_in_->push(word);
        offset += 8;
      }
      out_buffer_->set_upstream_done(offset >= bytes.size() &&
                                     in_buffer_->idle() &&
                                     words_in_->empty() && tuples_->empty());
      kernel_.tick();
      while (words_out_->can_pop()) {
        const std::uint64_t word = words_out_->pop();
        for (int i = 0; i < 8; ++i) {
          out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
        }
      }
      if (out.size() >= bytes.size() && out_buffer_->idle()) break;
    }
    return out;
  }

  analysis::TupleLayout layout_;
  SimKernel kernel_;
  Stream<std::uint64_t>* words_in_ = nullptr;
  Stream<Tuple>* tuples_ = nullptr;
  Stream<std::uint64_t>* words_out_ = nullptr;
  std::unique_ptr<SimTupleInputBuffer> in_buffer_;
  std::unique_ptr<SimTupleOutputBuffer> out_buffer_;
};

TEST_F(BufferFixture, WordAlignedTuples) {
  build("typedef struct { uint64_t a; uint64_t b; } T;"
        "/* @autogen define parser P with input = T, output = T */");
  std::vector<std::uint8_t> data;
  for (std::uint64_t i = 0; i < 10; ++i) {
    support::put_u64(data, i);
    support::put_u64(data, ~i);
  }
  const auto out = round_trip(data);
  ASSERT_GE(out.size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), out.begin()));
  EXPECT_EQ(in_buffer_->tuples_produced(), 10u);
  EXPECT_EQ(out_buffer_->tuples_consumed(), 10u);
}

TEST_F(BufferFixture, TuplesStraddlingWords) {
  // 96-bit tuples: every second tuple straddles a 64-bit word boundary.
  build("typedef struct { uint32_t x, y, z; } T;"
        "/* @autogen define parser P with input = T, output = T */");
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < 16; ++i) {
    support::put_u32(data, i);
    support::put_u32(data, i + 100);
    support::put_u32(data, i + 200);
  }
  const auto out = round_trip(data);
  ASSERT_GE(out.size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), out.begin()));
  EXPECT_EQ(in_buffer_->tuples_produced(), 16u);
}

TEST_F(BufferFixture, OddTupleWidthWithStringPostfix) {
  // 24-byte tuple = 192 bits, mixed field widths + postfix.
  build("typedef struct { uint64_t id; /* @string prefix = 2 */ "
        "char s[12]; uint32_t v; } T;"
        "/* @autogen define parser P with input = T, output = T */");
  std::vector<std::uint8_t> data;
  for (std::uint8_t i = 0; i < 6; ++i) {
    support::put_u64(data, i);
    for (int c = 0; c < 12; ++c) {
      data.push_back(static_cast<std::uint8_t>('a' + i + c));
    }
    support::put_u32(data, 7u * i);
  }
  const auto out = round_trip(data);
  ASSERT_GE(out.size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), out.begin()));
}

TEST_F(BufferFixture, PadTupleSignMattersNot) {
  // pad/unpad treat fields as raw bits — signed values survive verbatim.
  build("typedef struct { int16_t a; int64_t b; } T;"
        "/* @autogen define parser P with input = T, output = T */");
  support::BitVector storage(layout_.storage_bits);
  storage.deposit_u64(0, 16, 0x8001);  // Negative 16-bit value.
  storage.deposit_u64(16, 64, 0xfffffffffffffff0ULL);
  const auto padded = pad_tuple(layout_, storage);
  // The padded slot is comparator width (64); upper bits zero-filled.
  EXPECT_EQ(padded.extract_u64(0, 64), 0x8001u);
  EXPECT_EQ(unpad_tuple(layout_, padded), storage);
}

TEST_F(BufferFixture, InputBufferDiscardsSlackOnlyAfterPayload) {
  build("typedef struct { uint64_t a; } T;"
        "/* @autogen define parser P with input = T, output = T */");
  // Payload of 3 tuples, then 2 slack words must be consumed silently.
  in_buffer_->start(3 * 64);
  for (int w = 0; w < 5; ++w) {
    words_in_->push(static_cast<std::uint64_t>(w));
    for (int c = 0; c < 4; ++c) kernel_.tick();
    while (tuples_->can_pop()) (void)tuples_->pop();
  }
  for (int c = 0; c < 8; ++c) {
    kernel_.tick();
    while (tuples_->can_pop()) (void)tuples_->pop();
  }
  EXPECT_EQ(in_buffer_->tuples_produced(), 3u);
  EXPECT_TRUE(words_in_->empty());
  EXPECT_TRUE(in_buffer_->idle());
}

}  // namespace
}  // namespace ndpgen::hwsim
