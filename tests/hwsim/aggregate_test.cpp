#include "hwsim/aggregate_unit.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "hwgen/resource_model.hpp"
#include "hwgen/swif_generator.hpp"
#include "hwgen/template_builder.hpp"
#include "hwgen/verilog_emitter.hpp"
#include "hwsim/pe_sim.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

namespace hw = ndpgen::hwgen;

hw::PEDesign agg_design(const std::string& source, const std::string& name) {
  const auto module = spec::parse_spec(source);
  hw::TemplateOptions options;
  options.enable_aggregation = true;
  return hw::build_pe_design(analysis::analyze_parser(module, name), options);
}

const std::string kSensorSpec =
    "typedef struct { uint64_t id; int32_t temp; float reading; } Sensor;"
    "/* @autogen define parser S with input = Sensor, output = Sensor */";

class AggFixture : public ::testing::Test {
 protected:
  AggFixture() : bench_(agg_design(kSensorSpec, "S")) {}

  void load(std::initializer_list<std::pair<std::int32_t, float>> samples) {
    std::vector<std::uint8_t> data;
    std::uint64_t id = 1;
    for (const auto& [temp, reading] : samples) {
      support::put_u64(data, id++);
      support::put_u32(data, static_cast<std::uint32_t>(temp));
      support::put_u32(data, std::bit_cast<std::uint32_t>(reading));
    }
    bench_.memory().write_bytes(0, data);
    bytes_ = static_cast<std::uint32_t>(data.size());
  }

  ChunkStats run(hw::AggOp op, std::uint32_t field) {
    auto& pe = bench_.pe();
    const auto& map = pe.regmap();
    pe.mmio_write(map.offset_of(hw::reg::kAggOp),
                  static_cast<std::uint32_t>(op));
    pe.mmio_write(map.offset_of(hw::reg::kAggField), field);
    bench_.set_filter(0, 0, 6 /* nop */, 0);
    return bench_.run_chunk(0, 8192, bytes_);
  }

  PETestBench bench_;
  std::uint32_t bytes_ = 0;
};

TEST_F(AggFixture, RegistersPresent) {
  const auto& map = bench_.pe().regmap();
  EXPECT_NE(map.find(hw::reg::kAggOp), nullptr);
  EXPECT_NE(map.find(hw::reg::kAggResultLo), nullptr);
  EXPECT_NE(map.find(hw::reg::kAggCount), nullptr);
}

TEST_F(AggFixture, PassThroughWhenNone) {
  load({{1, 1.0f}, {2, 2.0f}, {3, 3.0f}});
  const auto stats = run(hw::AggOp::kNone, 0);
  EXPECT_EQ(stats.tuples_out, 3u);
  EXPECT_EQ(stats.agg_folded, 0u);
  EXPECT_GT(stats.payload_bytes_out, 0u);
}

TEST_F(AggFixture, CountConsumesTuples) {
  load({{1, 0.f}, {2, 0.f}, {3, 0.f}, {4, 0.f}});
  const auto stats = run(hw::AggOp::kCount, 0);
  EXPECT_EQ(stats.agg_result, 4u);
  EXPECT_EQ(stats.agg_folded, 4u);
  // Nothing flows to the store: the result lives in registers.
  EXPECT_EQ(stats.tuples_out, 0u);
  EXPECT_EQ(stats.payload_bytes_out, 0u);
  const auto& map = bench_.pe().regmap();
  EXPECT_EQ(bench_.pe().mmio_read(map.offset_of(hw::reg::kAggResultLo)), 4u);
  EXPECT_EQ(bench_.pe().mmio_read(map.offset_of(hw::reg::kAggCount)), 4u);
}

TEST_F(AggFixture, SumUnsigned) {
  load({{10, 0.f}, {20, 0.f}, {30, 0.f}});
  const auto stats = run(hw::AggOp::kSum, 0);  // Field 0 = id: 1+2+3.
  EXPECT_EQ(stats.agg_result, 6u);
}

TEST_F(AggFixture, SumSignedHandlesNegatives) {
  load({{-10, 0.f}, {25, 0.f}, {-5, 0.f}});
  const auto stats = run(hw::AggOp::kSum, 1);  // temp.
  EXPECT_EQ(static_cast<std::int64_t>(stats.agg_result), 10);
}

TEST_F(AggFixture, MinMaxSigned) {
  load({{-10, 0.f}, {25, 0.f}, {-5, 0.f}});
  EXPECT_EQ(static_cast<std::int64_t>(run(hw::AggOp::kMin, 1).agg_result),
            -10);
  EXPECT_EQ(static_cast<std::int64_t>(run(hw::AggOp::kMax, 1).agg_result),
            25);
}

TEST_F(AggFixture, MinMaxFloat) {
  load({{0, 2.5f}, {0, -1.25f}, {0, 7.75f}});
  const auto min_stats = run(hw::AggOp::kMin, 2);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(min_stats.agg_result), -1.25);
  const auto max_stats = run(hw::AggOp::kMax, 2);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(max_stats.agg_result), 7.75);
}

TEST_F(AggFixture, SumFloat) {
  load({{0, 1.5f}, {0, 2.25f}});
  const auto stats = run(hw::AggOp::kSum, 2);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(stats.agg_result), 3.75);
}

TEST_F(AggFixture, FilterAppliesBeforeAggregation) {
  load({{1, 0.f}, {2, 0.f}, {3, 0.f}, {4, 0.f}});
  auto& pe = bench_.pe();
  const auto& map = pe.regmap();
  pe.mmio_write(map.offset_of(hw::reg::kAggOp),
                static_cast<std::uint32_t>(hw::AggOp::kCount));
  pe.mmio_write(map.offset_of(hw::reg::kAggField), 0);
  bench_.set_filter(0, 1 /* temp */, 2 /* gt */, 2);
  const auto stats = bench_.run_chunk(0, 8192, bytes_);
  EXPECT_EQ(stats.agg_result, 2u);  // temps 3 and 4.
}

TEST_F(AggFixture, RunsAreIndependent) {
  load({{1, 0.f}, {2, 0.f}});
  EXPECT_EQ(run(hw::AggOp::kCount, 0).agg_result, 2u);
  EXPECT_EQ(run(hw::AggOp::kCount, 0).agg_result, 2u);  // Not 4.
}

TEST_F(AggFixture, InvalidOpRejected) {
  load({{1, 0.f}});
  auto& pe = bench_.pe();
  const auto& map = pe.regmap();
  pe.mmio_write(map.offset_of(hw::reg::kAggOp), 99);
  pe.mmio_write(map.offset_of(hw::reg::kStart), 1);
  EXPECT_THROW(bench_.kernel().run_until([&] { return !pe.busy(); }),
               ndpgen::Error);
}

TEST(Aggregate, BaselineFlavorNeverGetsAggregation) {
  const auto module = spec::parse_spec(kSensorSpec);
  hw::TemplateOptions options;
  options.enable_aggregation = true;
  options.flavor = hw::DesignFlavor::kHandcraftedBaseline;
  const auto design =
      hw::build_pe_design(analysis::analyze_parser(module, "S"), options);
  EXPECT_EQ(design.regmap.find(hw::reg::kAggOp), nullptr);
  EXPECT_TRUE(design.modules_of_kind(hw::ModuleKind::kAggregateUnit).empty());
}

TEST(Aggregate, ArtifactsIncludeAggregateUnit) {
  const auto module = spec::parse_spec(kSensorSpec);
  hw::TemplateOptions options;
  options.enable_aggregation = true;
  const auto design =
      hw::build_pe_design(analysis::analyze_parser(module, "S"), options);
  ASSERT_EQ(design.modules_of_kind(hw::ModuleKind::kAggregateUnit).size(), 1u);
  const std::string verilog = hw::emit_verilog(design);
  EXPECT_NE(verilog.find("module S_aggregate_unit"), std::string::npos);
  EXPECT_NE(verilog.find("agg_result"), std::string::npos);
  const std::string header = hw::generate_software_interface(design);
  EXPECT_NE(header.find("s_aggregate_sync"), std::string::npos);
  EXPECT_NE(header.find("S_AGGOP_SUM 2"), std::string::npos);
  // The unit costs area.
  const auto with = hw::estimate_pe(design, hw::SynthesisMode::kInContext);
  hw::TemplateOptions plain;
  const auto without = hw::estimate_pe(
      hw::build_pe_design(analysis::analyze_parser(module, "S"), plain),
      hw::SynthesisMode::kInContext);
  EXPECT_GT(with.total.slices, without.total.slices);
}

}  // namespace
}  // namespace ndpgen::hwsim
