#include "hwsim/memport.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

TEST(SimMemory, ReadWriteU64) {
  SimMemory memory(1024);
  memory.write_u64(8, 0x1122334455667788ULL);
  EXPECT_EQ(memory.read_u64(8), 0x1122334455667788ULL);
  // Little-endian byte order.
  EXPECT_EQ(memory.read_bytes(8, 1)[0], 0x88);
}

TEST(SimMemory, BytesRoundTrip) {
  SimMemory memory(64);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  memory.write_bytes(10, data);
  const auto view = memory.read_bytes(10, 5);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), view.begin()));
}

TEST(SimMemory, OutOfBoundsThrows) {
  SimMemory memory(16);
  EXPECT_THROW(memory.read_u64(9), ndpgen::Error);
  EXPECT_THROW(memory.write_u64(16, 1), ndpgen::Error);
}

class InterconnectFixture : public ::testing::Test {
 protected:
  InterconnectFixture()
      : memory_(1 << 16),
        interconnect_(memory_, AxiInterconnect::Config{2, 10, 64}) {
    kernel_.add_module(&interconnect_);
  }

  void run_cycles(int n) {
    for (int i = 0; i < n; ++i) kernel_.tick();
  }

  SimMemory memory_;
  AxiInterconnect interconnect_;
  SimKernel kernel_;
};

TEST_F(InterconnectFixture, ReadReturnsAfterLatency) {
  memory_.write_u64(0x100, 0xabcd);
  AxiPort* port = interconnect_.create_port("p0");
  port->request_read(0x100, 1);
  run_cycles(1);  // Grant.
  EXPECT_FALSE(port->read_data_available(kernel_.now()));
  run_cycles(10);  // Latency.
  ASSERT_TRUE(port->read_data_available(kernel_.now()));
  EXPECT_EQ(port->pop_read_data(kernel_.now()), 0xabcdu);
  EXPECT_TRUE(port->idle());
}

TEST_F(InterconnectFixture, WritesLandInMemory) {
  AxiPort* port = interconnect_.create_port("p0");
  port->request_write(0x200, 42);
  run_cycles(1);
  EXPECT_EQ(memory_.read_u64(0x200), 42u);
  EXPECT_EQ(port->write_beats(), 1u);
}

TEST_F(InterconnectFixture, BandwidthCapSharedAcrossPorts) {
  AxiPort* a = interconnect_.create_port("a");
  AxiPort* b = interconnect_.create_port("b");
  a->request_read(0, 20);
  b->request_read(0, 20);
  // 2 beats/cycle total: 40 beats need 20 cycles to grant.
  run_cycles(19);
  EXPECT_GT(a->pending_requests() + b->pending_requests(), 0u);
  run_cycles(2);
  EXPECT_EQ(a->pending_requests() + b->pending_requests(), 0u);
  EXPECT_EQ(interconnect_.total_beats(), 40u);
  EXPECT_GT(interconnect_.contended_cycles(), 0u);
}

TEST_F(InterconnectFixture, RoundRobinIsFair) {
  AxiPort* a = interconnect_.create_port("a");
  AxiPort* b = interconnect_.create_port("b");
  a->request_read(0, 10);
  b->request_read(0, 10);
  run_cycles(5);
  // Both ports progress at the same rate under contention.
  EXPECT_EQ(a->read_beats(), b->read_beats());
}

TEST_F(InterconnectFixture, ResponsesAreOrdered) {
  memory_.write_u64(0, 1);
  memory_.write_u64(8, 2);
  memory_.write_u64(16, 3);
  AxiPort* port = interconnect_.create_port("p");
  port->request_read(0, 3);
  run_cycles(30);
  EXPECT_EQ(port->pop_read_data(kernel_.now()), 1u);
  EXPECT_EQ(port->pop_read_data(kernel_.now()), 2u);
  EXPECT_EQ(port->pop_read_data(kernel_.now()), 3u);
}

TEST_F(InterconnectFixture, MaxOutstandingThrottles) {
  AxiPort* port = interconnect_.create_port("p");
  port->request_read(0, 100);
  run_cycles(40);
  // 64 outstanding responses max; the rest remain queued until consumed.
  EXPECT_GT(port->pending_requests(), 0u);
  while (port->read_data_available(kernel_.now())) {
    (void)port->pop_read_data(kernel_.now());
  }
  run_cycles(60);
  while (port->read_data_available(kernel_.now())) {
    (void)port->pop_read_data(kernel_.now());
  }
  EXPECT_EQ(port->pending_requests(), 0u);
}

TEST_F(InterconnectFixture, ResetClearsState) {
  AxiPort* port = interconnect_.create_port("p");
  port->request_read(0, 5);
  run_cycles(2);
  interconnect_.reset();
  EXPECT_TRUE(port->idle());
  EXPECT_EQ(interconnect_.total_beats(), 0u);
}

TEST_F(InterconnectFixture, PopWithoutDataThrows) {
  AxiPort* port = interconnect_.create_port("p");
  EXPECT_THROW((void)port->pop_read_data(kernel_.now()), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::hwsim
