#include "hwsim/pe_sim.hpp"

#include <gtest/gtest.h>

#include <array>

#include "hwgen/template_builder.hpp"
#include "ndp/predicate.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::hwsim {
namespace {

namespace hw = ndpgen::hwgen;

hw::PEDesign design_for(const std::string& source, const std::string& name,
                        hw::DesignFlavor flavor = hw::DesignFlavor::kGenerated,
                        std::uint32_t static_payload = 0) {
  const auto module = spec::parse_spec(source);
  hw::TemplateOptions options;
  options.flavor = flavor;
  options.static_payload_bytes = static_payload;
  return hw::build_pe_design(analysis::analyze_parser(module, name), options);
}

const std::string kPointSpec =
    "/* @autogen define parser P with chunksize = 32, input = Point3D, "
    "output = Point2D, mapping = { output.x = input.y, output.y = input.z } "
    "*/"
    "typedef struct { uint32_t x, y, z; } Point3D;"
    "typedef struct { uint32_t x, y; } Point2D;";

std::vector<std::uint8_t> make_points(std::uint32_t count) {
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < count; ++i) {
    support::put_u32(data, i);
    support::put_u32(data, 100 + i);
    support::put_u32(data, 1000 + i);
  }
  return data;
}

TEST(PESim, PassThroughNopFilter) {
  PETestBench bench(design_for(kPointSpec, "P"));
  const auto points = make_points(16);
  bench.memory().write_bytes(0, points);
  bench.set_filter(0, 0, 6 /* nop */, 0);
  const auto stats = bench.run_chunk(0, 4096, points.size());
  EXPECT_EQ(stats.tuples_in, 16u);
  EXPECT_EQ(stats.tuples_out, 16u);
  EXPECT_EQ(stats.payload_bytes_out, 16u * 8);
  // Verify the transform: Point2D{x=y_in, y=z_in}.
  for (std::uint32_t i = 0; i < 16; ++i) {
    const auto record = bench.memory().read_bytes(4096 + i * 8, 8);
    EXPECT_EQ(support::get_u32(record, 0), 100 + i);
    EXPECT_EQ(support::get_u32(record, 4), 1000 + i);
  }
}

TEST(PESim, FilterDropsNonMatching) {
  PETestBench bench(design_for(kPointSpec, "P"));
  const auto points = make_points(32);
  bench.memory().write_bytes(0, points);
  // x >= 16 (field 0 is x).
  bench.set_filter(0, 0, 3 /* ge */, 16);
  const auto stats = bench.run_chunk(0, 8192, points.size());
  EXPECT_EQ(stats.tuples_in, 32u);
  EXPECT_EQ(stats.tuples_out, 16u);
  ASSERT_EQ(stats.stage_pass_counts.size(), 1u);
  EXPECT_EQ(stats.stage_pass_counts[0], 16u);
  const auto first = bench.memory().read_bytes(8192, 4);
  EXPECT_EQ(support::get_u32(first, 0), 100 + 16);
}

TEST(PESim, CycleClassificationAccountsForEveryTick) {
  PETestBench bench(design_for(kPointSpec, "P"));
  const auto points = make_points(32);
  bench.memory().write_bytes(0, points);
  bench.set_filter(0, 0, 6 /* nop */, 0);
  const auto stats = bench.run_chunk(0, 8192, points.size());
  // Per-chunk classes partition the chunk's cycles...
  EXPECT_EQ(stats.cycles_useful + stats.cycles_stalled + stats.cycles_idle,
            stats.cycles);
  EXPECT_GT(stats.cycles_useful, 0u);
  // ...and the kernel-lifetime classes partition the kernel clock.
  const CycleStats& classes = bench.kernel().cycle_stats();
  EXPECT_EQ(classes.total(), bench.kernel().now());
  EXPECT_GE(classes.total(), stats.cycles);
}

TEST(PESim, CycleClassificationIsDeterministic) {
  auto classify = [] {
    PETestBench bench(design_for(kPointSpec, "P"));
    const auto points = make_points(16);
    bench.memory().write_bytes(0, points);
    bench.set_filter(0, 0, 3 /* ge */, 8);
    const auto stats = bench.run_chunk(0, 4096, points.size());
    return std::array<std::uint64_t, 3>{stats.cycles_useful,
                                        stats.cycles_stalled,
                                        stats.cycles_idle};
  };
  EXPECT_EQ(classify(), classify());
}

TEST(PESim, RegistersReflectRun) {
  PETestBench bench(design_for(kPointSpec, "P"));
  const auto points = make_points(8);
  bench.memory().write_bytes(0, points);
  bench.set_filter(0, 2 /* z */, 2 /* gt */, 1003);
  (void)bench.run_chunk(0, 4096, points.size());
  auto& pe = bench.pe();
  const auto& map = pe.regmap();
  EXPECT_EQ(pe.mmio_read(map.offset_of(hw::reg::kBusy)), 0u);
  EXPECT_EQ(pe.mmio_read(map.offset_of(hw::reg::kTupleCount)), 4u);
  EXPECT_EQ(pe.mmio_read(map.offset_of(hw::reg::kFilterCounter)), 4u);
  EXPECT_EQ(pe.mmio_read(map.offset_of(hw::reg::kOutSize)), 4u * 8);
  EXPECT_GT(pe.mmio_read(map.offset_of(hw::reg::kCycleCounter)), 0u);
}

TEST(PESim, ReadOnlyRegistersIgnoreWrites) {
  PETestBench bench(design_for(kPointSpec, "P"));
  auto& pe = bench.pe();
  const auto offset = pe.regmap().offset_of(hw::reg::kTupleCount);
  pe.mmio_write(offset, 999);
  EXPECT_EQ(pe.mmio_read(offset), 0u);
}

TEST(PESim, UnmappedMmioReadReturnsSentinel) {
  PETestBench bench(design_for(kPointSpec, "P"));
  EXPECT_EQ(bench.pe().mmio_read(0xf00), 0xdeadbeefu);
}

TEST(PESim, UnmappedMmioWriteThrows) {
  PETestBench bench(design_for(kPointSpec, "P"));
  EXPECT_THROW(bench.pe().mmio_write(0xf00, 1), ndpgen::Error);
}

TEST(PESim, PartialTrailingTupleDiscarded) {
  PETestBench bench(design_for(kPointSpec, "P"));
  auto points = make_points(4);
  points.resize(points.size() + 5, 0xee);  // 5 trailing garbage bytes.
  bench.memory().write_bytes(0, points);
  bench.set_filter(0, 0, 6, 0);
  const auto stats =
      bench.run_chunk(0, 4096, static_cast<std::uint32_t>(points.size()));
  EXPECT_EQ(stats.tuples_in, 4u);
  EXPECT_EQ(stats.tuples_out, 4u);
}

TEST(PESim, MultiStageConjunction) {
  const std::string spec =
      "typedef struct { uint64_t src; uint64_t dst; } Edge;"
      "/* @autogen define parser E with input = Edge, output = Edge, "
      "filters = 2 */";
  PETestBench bench(design_for(spec, "E"));
  std::vector<std::uint8_t> edges;
  for (std::uint64_t i = 0; i < 64; ++i) {
    support::put_u64(edges, i);
    support::put_u64(edges, i * 3);
  }
  bench.memory().write_bytes(0, edges);
  bench.set_filter(0, 1 /* dst */, 3 /* ge */, 30);   // dst >= 30
  bench.set_filter(1, 1 /* dst */, 4 /* lt */, 90);   // dst < 90
  const auto stats =
      bench.run_chunk(0, 8192, static_cast<std::uint32_t>(edges.size()));
  // dst = 3i in [30, 90) -> i in [10, 30): 20 edges.
  EXPECT_EQ(stats.tuples_out, 20u);
  ASSERT_EQ(stats.stage_pass_counts.size(), 2u);
  EXPECT_EQ(stats.stage_pass_counts[0], 54u);  // i >= 10.
  EXPECT_EQ(stats.stage_pass_counts[1], 20u);
}

TEST(PESim, ElasticPipelineStageLatencyIsMarginal) {
  // §V: "additional filtering stages will only add very small increases
  // to the overall execution times" (1 tuple/cycle/stage).
  const std::string base =
      "typedef struct { uint64_t a; uint64_t b; uint64_t c; uint64_t d; } T;";
  std::vector<std::uint64_t> cycles;
  for (std::uint32_t stages : {1u, 5u}) {
    const std::string spec =
        base +
        "/* @autogen define parser P with input = T, output = T, filters = " +
        std::to_string(stages) + " */";
    PETestBench bench(design_for(spec, "P"));
    std::vector<std::uint8_t> data(256 * 32, 0x5a);
    bench.memory().write_bytes(0, data);
    for (std::uint32_t s = 0; s < stages; ++s) {
      bench.set_filter(s, 0, 6 /* nop */, 0);
    }
    const auto stats =
        bench.run_chunk(0, 16384, static_cast<std::uint32_t>(data.size()));
    EXPECT_EQ(stats.tuples_out, 256u);
    cycles.push_back(stats.cycles);
  }
  // 4 extra stages on 256 tuples: only pipeline-fill latency extra.
  EXPECT_LT(cycles[1], cycles[0] + 64);
}

TEST(PESim, BaselineStaticTransfersFullChunk) {
  const std::string spec =
      "typedef struct { uint64_t a; uint64_t b; } T;"
      "/* @autogen define parser B with chunksize = 32, input = T, "
      "output = T */";
  // Static payload geometry: 2047 tuples * 16 B.
  const auto design = design_for(spec, "B",
                                 hw::DesignFlavor::kHandcraftedBaseline,
                                 2047 * 16);
  PEBenchConfig config;
  config.dram_bytes = 1 << 20;
  PETestBench bench(design, config);
  std::vector<std::uint8_t> data(2047 * 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, 0, 6, 0);
  const auto stats = bench.run_chunk(0, 128 * 1024, 0 /* ignored */);
  EXPECT_EQ(stats.tuples_in, 2047u);
  EXPECT_EQ(stats.tuples_out, 2047u);
  // Static units always move complete 32 KB blocks in AND out.
  EXPECT_EQ(stats.bytes_read, 32u * 1024);
  EXPECT_EQ(stats.bytes_written, 32u * 1024);
  EXPECT_EQ(stats.payload_bytes_out, 2047u * 16);
}

TEST(PESim, ConfigurablePartialBlockSavesBandwidth) {
  const std::string spec =
      "typedef struct { uint64_t a; uint64_t b; } T;"
      "/* @autogen define parser G with chunksize = 32, input = T, "
      "output = T */";
  PETestBench bench(design_for(spec, "G"));
  std::vector<std::uint8_t> data(100 * 16, 0x11);
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, 0, 6, 0);
  const auto stats =
      bench.run_chunk(0, 65536, static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(stats.tuples_in, 100u);
  // Only the payload crosses the memory interface (plus word rounding).
  EXPECT_LE(stats.bytes_read, data.size() + 8);
  EXPECT_LE(stats.bytes_written, data.size() + 8);
}

TEST(PESim, StartWhileBusyThrows) {
  PETestBench bench(design_for(kPointSpec, "P"));
  const auto points = make_points(512);
  bench.memory().write_bytes(0, points);
  auto& pe = bench.pe();
  const auto& map = pe.regmap();
  pe.mmio_write(map.offset_of(hw::reg::kInSize),
                static_cast<std::uint32_t>(points.size()));
  pe.mmio_write(map.offset_of(hw::reg::kStart), 1);
  bench.kernel().tick();  // PE accepts the start.
  EXPECT_TRUE(pe.busy());
  EXPECT_THROW(pe.mmio_write(map.offset_of(hw::reg::kStart), 1),
               ndpgen::Error);
}

TEST(PESim, SignedFieldComparison) {
  const std::string spec =
      "typedef struct { int32_t temp; uint32_t pad; } T;"
      "/* @autogen define parser S with input = T, output = T */";
  PETestBench bench(design_for(spec, "S"));
  std::vector<std::uint8_t> data;
  for (int t : {-20, -5, 0, 5, 20}) {
    support::put_u32(data, static_cast<std::uint32_t>(t));
    support::put_u32(data, 0);
  }
  bench.memory().write_bytes(0, data);
  // temp < 0 (signed comparison).
  bench.set_filter(0, 0, 4 /* lt */, 0);
  const auto stats =
      bench.run_chunk(0, 4096, static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(stats.tuples_out, 2u);
}

TEST(PESim, StringPostfixCarriedVerbatim) {
  const std::string spec =
      "typedef struct { uint32_t id; /* @string prefix = 4 */ char s[12]; } "
      "T;"
      "/* @autogen define parser S with input = T, output = T */";
  PETestBench bench(design_for(spec, "S"));
  std::vector<std::uint8_t> data;
  support::put_u32(data, 7);
  for (char c : {'p', 'r', 'e', 'f', 'p', 'o', 's', 't', 'f', 'i', 'x', '!'}) {
    data.push_back(static_cast<std::uint8_t>(c));
  }
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, 0, 6, 0);
  const auto stats =
      bench.run_chunk(0, 4096, static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(stats.tuples_out, 1u);
  const auto out = bench.memory().read_bytes(4096, 16);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), out.begin()));
}

}  // namespace
}  // namespace ndpgen::hwsim
