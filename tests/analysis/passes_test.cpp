#include "analysis/passes.hpp"

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::analysis {
namespace {

TypeNodePtr tree_for(std::string_view source, const std::string& name) {
  const auto module = spec::parse_spec(source);
  return build_type_tree(module, name);
}

TEST(ResolveStrings, SplitsPrefixAndPostfix) {
  auto tree = tree_for(
      "typedef struct { /* @string prefix = 4 */ char s[16]; } S;", "S");
  resolve_strings(*tree);
  // Spliced flat into the enclosing struct: prefix field then postfix.
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0]->name, "s_prefix");
  EXPECT_EQ(tree->children[0]->kind, TypeNode::Kind::kPrimitive);
  EXPECT_EQ(spec::width_bits(tree->children[0]->primitive), 32u);
  EXPECT_EQ(tree->children[1]->name, "s_postfix");
  EXPECT_EQ(tree->children[1]->kind, TypeNode::Kind::kStringPostfix);
  EXPECT_EQ(tree->children[1]->postfix_bytes, 12u);
  // Total width unchanged.
  EXPECT_EQ(tree->storage_width_bits(), 128u);
}

TEST(ResolveStrings, NonPowerOfTwoPrefixBecomesByteArray) {
  auto tree = tree_for(
      "typedef struct { /* @string prefix = 3 */ char s[8]; } S;", "S");
  resolve_strings(*tree);
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0]->kind, TypeNode::Kind::kArray);
  EXPECT_EQ(tree->children[0]->count, 3u);
  EXPECT_EQ(tree->storage_width_bits(), 64u);
}

TEST(ResolveStrings, UntouchedWithoutAnnotation) {
  auto tree = tree_for("typedef struct { char s[16]; } S;", "S");
  resolve_strings(*tree);
  EXPECT_EQ(tree->children[0]->kind, TypeNode::Kind::kArray);
}

TEST(ScalarizeArrays, ExpandsToElementFields) {
  auto tree = tree_for("typedef struct { uint32_t v[3]; } A;", "A");
  scalarize_arrays(*tree);
  const auto& field = tree->children[0];
  EXPECT_EQ(field->kind, TypeNode::Kind::kStruct);
  ASSERT_EQ(field->children.size(), 3u);
  EXPECT_EQ(field->children[0]->name, "elem_0");
  EXPECT_EQ(field->children[2]->name, "elem_2");
  EXPECT_EQ(tree->storage_width_bits(), 96u);
}

TEST(ScalarizeArrays, HandlesNestedArrays) {
  auto tree = tree_for("typedef struct { uint8_t m[2][2]; } M;", "M");
  scalarize_arrays(*tree);
  const auto& outer = tree->children[0];
  ASSERT_EQ(outer->children.size(), 2u);
  EXPECT_EQ(outer->children[0]->kind, TypeNode::Kind::kStruct);
  EXPECT_EQ(outer->children[0]->children.size(), 2u);
  EXPECT_EQ(tree->primitive_leaf_count(), 4u);
}

TEST(ScalarizeArrays, ArraysOfStructs) {
  auto tree = tree_for(
      "typedef struct { uint16_t a; uint16_t b; } Inner;"
      "typedef struct { Inner pts[2]; } Outer;",
      "Outer");
  scalarize_arrays(*tree);
  const auto& pts = tree->children[0];
  ASSERT_EQ(pts->children.size(), 2u);
  EXPECT_EQ(pts->children[0]->kind, TypeNode::Kind::kStruct);
  EXPECT_EQ(pts->children[0]->children.size(), 2u);
  EXPECT_EQ(tree->storage_width_bits(), 64u);
}

TEST(RunAllPasses, OrderMattersStringsFirst) {
  // An annotated string inside an array-of-structs: strings must resolve
  // before scalarization duplicates them.
  auto tree = tree_for(
      "typedef struct { /* @string prefix = 2 */ char tag[4]; } Inner;"
      "typedef struct { Inner items[2]; } Outer;",
      "Outer");
  run_all_passes(*tree);
  // items -> struct{elem_0, elem_1}; each elem is an Inner whose string
  // field was spliced into {tag_prefix, tag_postfix}.
  const auto& items = tree->children[0];
  ASSERT_EQ(items->children.size(), 2u);
  const auto& elem = items->children[0];
  ASSERT_EQ(elem->children.size(), 2u);
  EXPECT_EQ(elem->children[0]->name, "tag_prefix");
  EXPECT_EQ(elem->children[0]->kind, TypeNode::Kind::kPrimitive);
  EXPECT_EQ(elem->children[1]->kind, TypeNode::Kind::kStringPostfix);
  check_normalized(*tree);
}

TEST(RunAllPasses, PreservesTotalWidth) {
  const char* source =
      "typedef struct { uint64_t id; uint32_t v[5]; "
      "/* @string prefix = 8 */ char title[104]; uint8_t pad[4]; } T;";
  auto before = tree_for(source, "T");
  const auto width = before->storage_width_bits();
  run_all_passes(*before);
  EXPECT_EQ(before->storage_width_bits(), width);
}

TEST(RunAllPasses, AllStringsFails) {
  // A struct whose every field is opaque postfix data cannot be filtered.
  // (Impossible via the parser since a prefix is always generated, so
  // build such a tree manually.)
  auto tree = std::make_unique<TypeNode>();
  tree->kind = TypeNode::Kind::kStruct;
  tree->name = "S";
  auto postfix = std::make_unique<TypeNode>();
  postfix->kind = TypeNode::Kind::kStringPostfix;
  postfix->name = "blob";
  postfix->postfix_bytes = 8;
  tree->children.push_back(std::move(postfix));
  EXPECT_THROW(check_normalized(*tree), ndpgen::Error);
}

TEST(CheckNormalized, RejectsSurvivingArrays) {
  auto tree = tree_for("typedef struct { uint32_t v[2]; } A;", "A");
  EXPECT_THROW(check_normalized(*tree), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::analysis
