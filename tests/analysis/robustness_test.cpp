// Robustness corners of the front-end + analysis: deep nesting, large
// arrays, mappings through arrays, extreme-but-legal geometries.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "core/framework.hpp"
#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::analysis {
namespace {

TEST(Robustness, DeeplyNestedStructs) {
  std::string source;
  // 12 levels of nesting.
  source += "typedef struct { uint32_t x; } L0;";
  for (int level = 1; level <= 12; ++level) {
    source += "typedef struct { L" + std::to_string(level - 1) +
              " inner; uint8_t tag; } L" + std::to_string(level) + ";";
  }
  source += "/* @autogen define parser P with input = L12, output = L12 */";
  const auto module = spec::parse_spec(source);
  const auto analyzed = analyze_parser(module, "P");
  // 1 u32 + 12 tags.
  EXPECT_EQ(analyzed.input.relevant_count(), 13u);
  EXPECT_EQ(analyzed.input.storage_bits, 32u + 12 * 8);
  // Deepest leaf path chains all the inner names.
  EXPECT_TRUE(analyzed.input
                  .find_field("inner.inner.inner.inner.inner.inner.inner."
                              "inner.inner.inner.inner.inner.x")
                  .has_value());
}

TEST(Robustness, LargeArrayScalarizes) {
  const auto module = spec::parse_spec(
      "typedef struct { uint32_t v[1024]; } Big;"
      "/* @autogen define parser P with chunksize = 32, input = Big, "
      "output = Big */");
  const auto analyzed = analyze_parser(module, "P");
  EXPECT_EQ(analyzed.input.relevant_count(), 1024u);
  EXPECT_EQ(analyzed.input.storage_bytes(), 4096u);
  EXPECT_EQ(analyzed.tuples_per_chunk(), 8u);
}

TEST(Robustness, MappingThroughArrays) {
  const auto module = spec::parse_spec(
      "typedef struct { uint16_t rows[2][3]; uint16_t extra; } In;"
      "typedef struct { uint16_t cols[3]; } Out;"
      "/* @autogen define parser P with input = In, output = Out,"
      " mapping = { output.cols = input.rows.elem_1 } */");
  const auto analyzed = analyze_parser(module, "P");
  // Out.cols.elem_i <- In.rows.elem_1.elem_i (second row).
  ASSERT_EQ(analyzed.mapping.wires.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(analyzed.mapping.wires[i].input_field,
              *analyzed.input.find_field("rows.elem_1.elem_" +
                                         std::to_string(i)));
  }
}

TEST(Robustness, MultipleStringsPerStruct) {
  const auto module = spec::parse_spec(
      "typedef struct {"
      "  /* @string prefix = 2 */ char a[6];"
      "  uint64_t mid;"
      "  /* @string prefix = 8 */ char b[24];"
      "} T;"
      "/* @autogen define parser P with input = T, output = T */");
  const auto analyzed = analyze_parser(module, "P");
  EXPECT_EQ(analyzed.input.relevant_count(), 3u);  // a_prefix, mid, b_prefix.
  EXPECT_EQ(analyzed.input.fields.size(), 5u);     // + two postfixes.
  EXPECT_EQ(analyzed.input.storage_bytes(), 6u + 8 + 24);
  EXPECT_EQ(analyzed.input.comparator_width_bits, 64u);
}

TEST(Robustness, MaxFilterStagesWithWideTuple) {
  core::Framework framework;
  std::string source = "typedef struct { ";
  for (int field = 0; field < 16; ++field) {
    source += "uint64_t f" + std::to_string(field) + "; ";
  }
  source +=
      "} Wide; /* @autogen define parser P with input = Wide, "
      "output = Wide, filters = 16 */";
  const auto compiled = framework.compile(source);
  EXPECT_EQ(compiled.get("P").design.filter_stage_count(), 16u);
  // The register map holds 16 stage blocks without collisions.
  const auto& map = compiled.get("P").design.regmap;
  EXPECT_NE(map.find("FILTER_OP_15"), nullptr);
  EXPECT_LT(map.span_bytes(), 0x1000u);  // Fits one MMIO window page.
}

TEST(Robustness, SingleByteTuple) {
  const auto module = spec::parse_spec(
      "typedef struct { uint8_t flag; } Tiny;"
      "/* @autogen define parser P with input = Tiny, output = Tiny */");
  const auto analyzed = analyze_parser(module, "P");
  EXPECT_EQ(analyzed.input.storage_bits, 8u);
  EXPECT_EQ(analyzed.input.comparator_width_bits, 8u);
  EXPECT_EQ(analyzed.tuples_per_chunk(), 32u * 1024);
}

TEST(Robustness, WholeToolchainOnMaximalSpec) {
  // A gnarly but legal spec through the entire pipeline.
  core::Framework framework;
  const auto compiled = framework.compile(R"(
typedef struct { int16_t q[3]; float w; } Cell;
typedef struct {
  uint64_t id;
  Cell grid[2][2];
  /* @string prefix = 4 */ char label[20];
  double score;
} Dense;
typedef struct {
  uint64_t id;
  double score;
  float first_w;
} Sparse;
/* @autogen define parser DenseToSparse with
   chunksize = 64, input = Dense, output = Sparse, filters = 4,
   mapping = { output.first_w = input.grid.elem_0.elem_0.w } */
)");
  const auto& artifacts = compiled.get("DenseToSparse");
  EXPECT_EQ(artifacts.analyzed.chunk_size_bytes, 64u * 1024);
  EXPECT_EQ(artifacts.design.filter_stage_count(), 4u);
  EXPECT_GT(artifacts.verilog.size(), 1000u);
  EXPECT_GT(artifacts.resources_in_context.total.slices, 0.0);
  // Output: id, score, first_w -> 8 + 8 + 4 bytes.
  EXPECT_EQ(artifacts.analyzed.output.storage_bytes(), 20u);
}

TEST(Robustness, ErrorsOnAbsurdInput) {
  EXPECT_THROW(spec::parse_spec(std::string(100000, '{')), ndpgen::Error);
  // Empty annotation body.
  EXPECT_THROW(spec::parse_spec("/* @autogen */ typedef struct { int a; } T;"),
               ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::analysis
