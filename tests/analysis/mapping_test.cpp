#include "analysis/mapping.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::analysis {
namespace {

AnalyzedParser analyze(std::string_view source,
                       std::string_view parser = "P") {
  const auto module = spec::parse_spec(source);
  return analyze_parser(module, parser);
}

TEST(Mapping, Case1IdentityPassThrough) {
  const auto parsed = analyze(
      "typedef struct { uint32_t a, b; } T;"
      "/* @autogen define parser P with input = T, output = T */");
  EXPECT_TRUE(parsed.mapping.identity);
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[0].input_field, 0u);
  EXPECT_EQ(parsed.mapping.wires[1].input_field, 1u);
}

TEST(Mapping, Case2AutomaticByPath) {
  const auto parsed = analyze(
      "typedef struct { uint64_t id; uint32_t year; uint32_t extra; } In;"
      "typedef struct { uint64_t id; uint32_t year; } Out;"
      "/* @autogen define parser P with input = In, output = Out */");
  EXPECT_FALSE(parsed.mapping.identity);
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[0].input_field,
            *parsed.input.find_field("id"));
  EXPECT_EQ(parsed.mapping.wires[1].input_field,
            *parsed.input.find_field("year"));
}

TEST(Mapping, Case3UserMapping) {
  // Fig. 4: project (y, z) of Point3D into (x, y) of Point2D.
  const auto parsed = analyze(
      "/* @autogen define parser P with input = Point3D, output = Point2D,"
      " mapping = { output.x = input.y, output.y = input.z } */"
      "typedef struct { uint32_t x, y, z; } Point3D;"
      "typedef struct { uint32_t x, y; } Point2D;");
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[0].input_field,
            *parsed.input.find_field("y"));
  EXPECT_EQ(parsed.mapping.wires[1].input_field,
            *parsed.input.find_field("z"));
}

TEST(Mapping, Case3WithoutMappingDefaultsToPathMatch) {
  // "Without a mapping, the toolflow would default to the second case and
  // use x and y for the projection" — identical paths map automatically.
  const auto parsed = analyze(
      "/* @autogen define parser P with input = Point3D, output = Point2D */"
      "typedef struct { uint32_t x, y, z; } Point3D;"
      "typedef struct { uint32_t x, y; } Point2D;");
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[0].input_field,
            *parsed.input.find_field("x"));
  EXPECT_EQ(parsed.mapping.wires[1].input_field,
            *parsed.input.find_field("y"));
}

TEST(Mapping, MissingOutputFieldWithoutMappingFails) {
  EXPECT_THROW(
      analyze("/* @autogen define parser P with input = In, output = Out */"
              "typedef struct { uint32_t a; } In;"
              "typedef struct { uint32_t a; uint32_t fresh; } Out;"),
      ndpgen::Error);
}

TEST(Mapping, ExplicitEntrySatisfiesMissingField) {
  const auto parsed = analyze(
      "/* @autogen define parser P with input = In, output = Out,"
      " mapping = { output.fresh = input.a } */"
      "typedef struct { uint32_t a; } In;"
      "typedef struct { uint32_t a; uint32_t fresh; } Out;");
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[1].input_field,
            *parsed.input.find_field("a"));
}

TEST(Mapping, NestedPrefixMapsAllLeaves) {
  const auto parsed = analyze(
      "typedef struct { uint32_t a, b; } Pair;"
      "typedef struct { Pair from; Pair to; } In;"
      "typedef struct { Pair first; } Out;"
      "/* @autogen define parser P with input = In, output = Out,"
      " mapping = { output.first = input.to } */");
  ASSERT_EQ(parsed.mapping.wires.size(), 2u);
  EXPECT_EQ(parsed.mapping.wires[0].input_field,
            *parsed.input.find_field("to.a"));
  EXPECT_EQ(parsed.mapping.wires[1].input_field,
            *parsed.input.find_field("to.b"));
}

TEST(Mapping, WidthMismatchFails) {
  EXPECT_THROW(
      analyze("/* @autogen define parser P with input = In, output = Out,"
              " mapping = { output.v = input.w } */"
              "typedef struct { uint64_t w; } In;"
              "typedef struct { uint32_t v; } Out;"),
      ndpgen::Error);
}

TEST(Mapping, FloatIntegerMismatchFails) {
  EXPECT_THROW(
      analyze("/* @autogen define parser P with input = In, output = Out,"
              " mapping = { output.v = input.w } */"
              "typedef struct { float w; } In;"
              "typedef struct { uint32_t v; } Out;"),
      ndpgen::Error);
}

TEST(Mapping, DoubleMappingSameOutputFails) {
  EXPECT_THROW(
      analyze("/* @autogen define parser P with input = In, output = Out,"
              " mapping = { output.v = input.a, output.v = input.b } */"
              "typedef struct { uint32_t a, b; } In;"
              "typedef struct { uint32_t v; } Out;"),
      ndpgen::Error);
}

TEST(Mapping, UnknownSourceFieldFails) {
  EXPECT_THROW(
      analyze("/* @autogen define parser P with input = In, output = Out,"
              " mapping = { output.v = input.nope } */"
              "typedef struct { uint32_t a; } In;"
              "typedef struct { uint32_t v; } Out;"),
      ndpgen::Error);
}

TEST(Mapping, CardinalityMismatchFails) {
  EXPECT_THROW(
      analyze("typedef struct { uint32_t a, b; } Pair;"
              "typedef struct { Pair p; } In;"
              "typedef struct { uint32_t v; } Out;"
              "/* @autogen define parser P with input = In, output = Out,"
              " mapping = { output.v = input.p } */"),
      ndpgen::Error);
}

TEST(Mapping, StringPostfixCarriedByIdentity) {
  const auto parsed = analyze(
      "typedef struct { uint64_t id; /* @string prefix = 4 */ char s[12]; } "
      "T;"
      "/* @autogen define parser P with input = T, output = T */");
  EXPECT_TRUE(parsed.mapping.identity);
  // id, s_prefix, s_postfix all wired.
  EXPECT_EQ(parsed.mapping.wires.size(), 3u);
}

TEST(Analyzer, RejectsTupleLargerThanChunk) {
  std::string big = "typedef struct { ";
  // 1024 * 64-byte fields = 64 KiB > 32 KiB chunk... tuple limit is
  // 64 KiB; use 600 u64 arrays? Simpler: an array of 5000 uint64 = 40000
  // bytes > 32 KiB chunk but < 64 KiB tuple cap.
  big = "typedef struct { uint64_t v[5000]; } Big;"
        "/* @autogen define parser P with input = Big, output = Big */";
  EXPECT_THROW(analyze(big), ndpgen::Error);
}

TEST(Analyzer, TuplesPerChunk) {
  const auto parsed = analyze(
      "typedef struct { uint64_t a; uint64_t b; } T;"
      "/* @autogen define parser P with input = T, output = T */");
  EXPECT_EQ(parsed.tuples_per_chunk(), 32u * 1024 / 16);
}

TEST(Analyzer, AnalyzeAllProcessesEveryParser) {
  const auto module = spec::parse_spec(
      "typedef struct { uint32_t a; } A;"
      "typedef struct { uint64_t b; } B;"
      "/* @autogen define parser PA with input = A, output = A */"
      "/* @autogen define parser PB with input = B, output = B */");
  const auto all = analyze_all(module);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "PA");
  EXPECT_EQ(all[1].name, "PB");
}

TEST(Analyzer, UnknownParserNameFails) {
  const auto module = spec::parse_spec(
      "typedef struct { uint32_t a; } A;"
      "/* @autogen define parser PA with input = A, output = A */");
  EXPECT_THROW(analyze_parser(module, "Nope"), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::analysis
