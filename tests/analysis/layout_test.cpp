#include "analysis/layout.hpp"

#include <gtest/gtest.h>

#include "analysis/passes.hpp"
#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::analysis {
namespace {

TupleLayout layout_for(std::string_view source, const std::string& name) {
  const auto module = spec::parse_spec(source);
  auto tree = build_type_tree(module, name);
  run_all_passes(*tree);
  return compute_layout(*tree);
}

TEST(Layout, FlatStructOffsets) {
  const auto layout =
      layout_for("typedef struct { uint32_t x, y, z; } P;", "P");
  EXPECT_EQ(layout.storage_bits, 96u);
  EXPECT_EQ(layout.comparator_width_bits, 32u);
  EXPECT_EQ(layout.padded_bits, 96u);
  ASSERT_EQ(layout.fields.size(), 3u);
  EXPECT_EQ(layout.fields[0].path, "x");
  EXPECT_EQ(layout.fields[0].storage_offset_bits, 0u);
  EXPECT_EQ(layout.fields[1].storage_offset_bits, 32u);
  EXPECT_EQ(layout.fields[2].storage_offset_bits, 64u);
}

TEST(Layout, MixedWidthsPadToLargest) {
  const auto layout = layout_for(
      "typedef struct { uint64_t id; uint8_t flag; uint32_t v; } T;", "T");
  EXPECT_EQ(layout.storage_bits, 64u + 8 + 32);
  EXPECT_EQ(layout.comparator_width_bits, 64u);
  // All 3 relevant fields padded to 64 bits.
  EXPECT_EQ(layout.padded_bits, 3u * 64);
  EXPECT_EQ(layout.fields[1].padded_width_bits, 64u);
  EXPECT_EQ(layout.fields[1].padded_offset_bits, 64u);
}

TEST(Layout, StringPostfixNotPadded) {
  const auto layout = layout_for(
      "typedef struct { uint64_t id; /* @string prefix = 4 */ char s[20]; } "
      "T;",
      "T");
  // Fields: id (u64), s_prefix (u32 padded to 64), s_postfix (128 bits).
  ASSERT_EQ(layout.fields.size(), 3u);
  EXPECT_EQ(layout.comparator_width_bits, 64u);
  EXPECT_EQ(layout.padded_bits, 64u + 64 + 128);
  const auto& postfix = layout.fields[2];
  EXPECT_FALSE(postfix.relevant);
  EXPECT_EQ(postfix.storage_width_bits, 128u);
  EXPECT_EQ(postfix.padded_width_bits, 128u);
  // Postfixes sit after the padded relevant fields.
  EXPECT_EQ(postfix.padded_offset_bits, 128u);
}

TEST(Layout, NestedPathsAreDotted) {
  const auto layout = layout_for(
      "typedef struct { uint32_t a, b; } Inner;"
      "typedef struct { Inner pos; uint32_t w[2]; } Outer;",
      "Outer");
  ASSERT_EQ(layout.fields.size(), 4u);
  EXPECT_EQ(layout.fields[0].path, "pos.a");
  EXPECT_EQ(layout.fields[1].path, "pos.b");
  EXPECT_EQ(layout.fields[2].path, "w.elem_0");
  EXPECT_EQ(layout.fields[3].path, "w.elem_1");
}

TEST(Layout, FindFieldAndRelevantIndices) {
  const auto layout = layout_for(
      "typedef struct { uint64_t id; /* @string prefix = 4 */ char s[8]; } "
      "T;",
      "T");
  EXPECT_TRUE(layout.find_field("id").has_value());
  EXPECT_TRUE(layout.find_field("s_prefix").has_value());
  EXPECT_FALSE(layout.find_field("nope").has_value());
  EXPECT_EQ(layout.relevant_count(), 2u);
  const auto relevant = layout.relevant_indices();
  ASSERT_EQ(relevant.size(), 2u);
  EXPECT_EQ(layout.fields[relevant[0]].path, "id");
}

TEST(Layout, StorageBytesRoundsUp) {
  const auto layout =
      layout_for("typedef struct { uint8_t a; uint16_t b; } T;", "T");
  EXPECT_EQ(layout.storage_bits, 24u);
  EXPECT_EQ(layout.storage_bytes(), 3u);
}

TEST(Layout, SignedAndFloatKindsPreserved) {
  const auto layout = layout_for(
      "typedef struct { int32_t temperature; double reading; } T;", "T");
  EXPECT_TRUE(spec::is_signed(layout.fields[0].primitive));
  EXPECT_TRUE(spec::is_float(layout.fields[1].primitive));
}

TEST(Layout, PaperRecordGeometry) {
  // The evaluation's Paper record: 128 bytes, comparator 64 bit.
  const auto layout = layout_for(R"(
typedef struct {
  uint64_t id;
  uint32_t year; uint32_t venue_id; uint32_t n_refs; uint32_t n_cited;
  /* @string prefix = 8 */
  char title[104];
} Paper;
)",
                                 "Paper");
  EXPECT_EQ(layout.storage_bytes(), 128u);
  EXPECT_EQ(layout.comparator_width_bits, 64u);
  EXPECT_EQ(layout.relevant_count(), 6u);  // id, 4 stats, title_prefix.
  EXPECT_EQ(layout.padded_bits, 6u * 64 + 96u * 8);
}

TEST(Layout, DumpContainsFieldPaths) {
  const auto layout =
      layout_for("typedef struct { uint32_t x; } P;", "P");
  EXPECT_NE(layout.dump().find("x"), std::string::npos);
}

}  // namespace
}  // namespace ndpgen::analysis
