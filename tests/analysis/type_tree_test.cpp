#include "analysis/type_tree.hpp"

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::analysis {
namespace {

spec::SpecModule parse(std::string_view source) {
  return spec::parse_spec(source);
}

TEST(TypeTree, FlatStruct) {
  const auto module = parse("typedef struct { uint32_t x, y, z; } P;");
  const auto tree = build_type_tree(module, "P");
  EXPECT_EQ(tree->kind, TypeNode::Kind::kStruct);
  EXPECT_EQ(tree->name, "P");
  ASSERT_EQ(tree->children.size(), 3u);
  EXPECT_EQ(tree->children[0]->kind, TypeNode::Kind::kPrimitive);
  EXPECT_EQ(tree->children[0]->name, "x");
  EXPECT_EQ(tree->storage_width_bits(), 96u);
  EXPECT_EQ(tree->primitive_leaf_count(), 3u);
}

TEST(TypeTree, NestedStructResolved) {
  const auto module = parse(
      "typedef struct { uint32_t a; uint32_t b; } Inner;"
      "typedef struct { uint64_t id; Inner pos; } Outer;");
  const auto tree = build_type_tree(module, "Outer");
  ASSERT_EQ(tree->children.size(), 2u);
  const auto& pos = tree->children[1];
  EXPECT_EQ(pos->kind, TypeNode::Kind::kStruct);
  EXPECT_EQ(pos->name, "pos");
  EXPECT_EQ(pos->children.size(), 2u);
  EXPECT_EQ(tree->storage_width_bits(), 64u + 64u);
}

TEST(TypeTree, ArraysWrapElements) {
  const auto module = parse("typedef struct { uint16_t v[4]; } A;");
  const auto tree = build_type_tree(module, "A");
  const auto& field = tree->children[0];
  EXPECT_EQ(field->kind, TypeNode::Kind::kArray);
  EXPECT_EQ(field->count, 4u);
  EXPECT_EQ(field->element->kind, TypeNode::Kind::kPrimitive);
  EXPECT_EQ(tree->storage_width_bits(), 64u);
  EXPECT_EQ(tree->primitive_leaf_count(), 4u);
}

TEST(TypeTree, MultiDimArrayNesting) {
  const auto module = parse("typedef struct { uint8_t m[2][3]; } M;");
  const auto tree = build_type_tree(module, "M");
  const auto& outer = tree->children[0];
  EXPECT_EQ(outer->kind, TypeNode::Kind::kArray);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_EQ(outer->element->kind, TypeNode::Kind::kArray);
  EXPECT_EQ(outer->element->count, 3u);
  EXPECT_EQ(tree->storage_width_bits(), 48u);
}

TEST(TypeTree, StringAnnotationRecorded) {
  const auto module = parse(
      "typedef struct { /* @string prefix = 4 */ char s[16]; } S;");
  const auto tree = build_type_tree(module, "S");
  EXPECT_EQ(tree->children[0]->string_prefix_bytes, 4u);
}

TEST(TypeTree, UnknownTypeFails) {
  const auto module = parse("typedef struct { uint32_t a; } T;");
  EXPECT_THROW(build_type_tree(module, "Missing"), ndpgen::Error);
}

TEST(TypeTree, UnknownFieldTypeFails) {
  const auto module = parse("typedef struct { Missing a; } T;");
  EXPECT_THROW(build_type_tree(module, "T"), ndpgen::Error);
}

TEST(TypeTree, RecursiveStructFails) {
  const auto module = parse("typedef struct { T inner; } T;");
  EXPECT_THROW(build_type_tree(module, "T"), ndpgen::Error);
}

TEST(TypeTree, EmptyStructFails) {
  // The parser itself allows empty bodies syntactically? It does not
  // (field groups are required), so construct via mutual reference.
  const auto module = parse("typedef struct { uint32_t a; } T;");
  spec::SpecModule copy = module;
  copy.structs[0].fields.clear();
  EXPECT_THROW(build_type_tree(copy, "T"), ndpgen::Error);
}

TEST(TypeTree, CloneIsDeepAndEqual) {
  const auto module = parse(
      "typedef struct { uint32_t a[2]; /* @string prefix = 2 */ char s[8]; } "
      "T;");
  const auto tree = build_type_tree(module, "T");
  const auto copy = tree->clone();
  EXPECT_TRUE(tree->equals(*copy));
  copy->children[0]->count = 3;
  EXPECT_FALSE(tree->equals(*copy));
}

TEST(TypeTree, DumpMentionsStructure) {
  const auto module = parse("typedef struct { uint32_t x; char s[4]; } T;");
  const auto tree = build_type_tree(module, "T");
  const std::string dump = tree->dump();
  EXPECT_NE(dump.find("uint32_t"), std::string::npos);
  EXPECT_NE(dump.find("array[4]"), std::string::npos);
}

}  // namespace
}  // namespace ndpgen::analysis
