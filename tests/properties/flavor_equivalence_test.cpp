// Property sweep: the generated template and the hand-crafted baseline
// model must produce IDENTICAL results on fully-packed blocks for every
// standard operator — the precondition for the paper's apples-to-apples
// performance comparison.
#include <gtest/gtest.h>

#include <tuple>

#include "core/framework.hpp"
#include "hwgen/template_builder.hpp"
#include "hwsim/pe_sim.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace ndpgen::hwgen {
namespace {

using Param = std::tuple<const char* /*op*/, std::uint32_t /*stages*/>;

class FlavorEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(FlavorEquivalence, BaselineMatchesGenerated) {
  const auto [op_name, spec_stages] = GetParam();
  core::Framework framework;
  const auto compiled = framework.compile(
      "typedef struct { uint64_t key; uint32_t a; uint32_t b; } Row;"
      "/* @autogen define parser Rows with input = Row, output = Row, "
      "filters = " +
      std::to_string(spec_stages) + " */");
  const auto& artifacts = compiled.get("Rows");

  constexpr std::uint64_t kTuples = 256;
  support::Xoshiro256 rng(77);
  std::vector<std::uint8_t> data;
  for (std::uint64_t i = 0; i < kTuples; ++i) {
    support::put_u64(data, rng.below(1000));
    support::put_u32(data, static_cast<std::uint32_t>(rng.below(100)));
    support::put_u32(data, static_cast<std::uint32_t>(rng.below(100)));
  }

  const auto* op = artifacts.design.operators.find(op_name);
  ASSERT_NE(op, nullptr);

  auto run = [&](DesignFlavor flavor) {
    TemplateOptions options;
    options.flavor = flavor;
    if (flavor == DesignFlavor::kHandcraftedBaseline) {
      options.static_payload_bytes =
          static_cast<std::uint32_t>(data.size());
    }
    const auto design = build_pe_design(artifacts.analyzed, options);
    hwsim::PETestBench bench(design);
    bench.memory().write_bytes(0, data);
    // Stage 0 carries the predicate (a <op> 50); extra generated stages
    // are nop'd — the baseline only ever has one stage.
    bench.set_filter(0, 1 /* a */, op->encoding, 50);
    for (std::uint32_t s = 1; s < design.filter_stage_count(); ++s) {
      bench.set_filter(s, 0, *design.operators.nop_encoding(), 0);
    }
    const auto stats = bench.run_chunk(
        0, 256 * 1024, static_cast<std::uint32_t>(data.size()));
    std::vector<std::uint8_t> out(
        bench.memory()
            .read_bytes(256 * 1024, stats.payload_bytes_out)
            .begin(),
        bench.memory()
            .read_bytes(256 * 1024, stats.payload_bytes_out)
            .end());
    return std::make_pair(stats.tuples_out, out);
  };

  const auto [generated_count, generated_bytes] =
      run(DesignFlavor::kGenerated);
  const auto [baseline_count, baseline_bytes] =
      run(DesignFlavor::kHandcraftedBaseline);
  EXPECT_EQ(generated_count, baseline_count) << op_name;
  EXPECT_EQ(generated_bytes, baseline_bytes) << op_name;
}

INSTANTIATE_TEST_SUITE_P(
    OperatorsAndStages, FlavorEquivalence,
    ::testing::Combine(::testing::Values("ne", "eq", "gt", "ge", "lt", "le",
                                         "nop"),
                       ::testing::Values(1u, 3u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_stages" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ndpgen::hwgen
