// Property tests: contextual-analysis invariants over randomly generated
// specifications (fuzz-style, seeded and deterministic).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/analyzer.hpp"
#include "core/framework.hpp"
#include "spec/parser.hpp"
#include "support/rng.hpp"

namespace ndpgen::analysis {
namespace {

/// Generates a random (but valid) struct spec: primitives, arrays, nested
/// structs and string fields.
std::string random_spec(support::Xoshiro256& rng, std::uint32_t max_fields) {
  static const char* kPrimitives[] = {"uint8_t",  "uint16_t", "uint32_t",
                                      "uint64_t", "int8_t",   "int16_t",
                                      "int32_t",  "int64_t",  "float",
                                      "double"};
  std::ostringstream out;
  const bool nested = rng.below(2) == 1;
  if (nested) {
    out << "typedef struct { uint32_t a; uint16_t b[2]; } Inner;\n";
  }
  out << "typedef struct {\n";
  const std::uint32_t fields =
      1 + static_cast<std::uint32_t>(rng.below(max_fields));
  bool any_primitive = false;
  for (std::uint32_t f = 0; f < fields; ++f) {
    const auto choice = rng.below(nested ? 4 : 3);
    if (choice == 0) {
      out << "  " << kPrimitives[rng.below(10)] << " f" << f << ";\n";
      any_primitive = true;
    } else if (choice == 1) {
      out << "  " << kPrimitives[rng.below(10)] << " f" << f << "["
          << 1 + rng.below(4) << "];\n";
      any_primitive = true;
    } else if (choice == 2) {
      const std::uint32_t prefix = 1 + rng.below(8);
      const std::uint32_t length = prefix + 1 + rng.below(24);
      out << "  /* @string prefix = " << prefix << " */ char f" << f << "["
          << length << "];\n";
      any_primitive = true;  // Prefix is filterable.
    } else {
      out << "  Inner f" << f << ";\n";
      any_primitive = true;
    }
  }
  if (!any_primitive) out << "  uint32_t fallback;\n";
  out << "} T;\n";
  out << "/* @autogen define parser P with input = T, output = T */\n";
  return out.str();
}

class RandomSpecProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomSpecProperties, AnalysisInvariantsHold) {
  support::Xoshiro256 rng(GetParam());
  for (int iteration = 0; iteration < 20; ++iteration) {
    const std::string source = random_spec(rng, 8);
    SCOPED_TRACE(source);
    const auto module = spec::parse_spec(source);
    const auto analyzed = analyze_parser(module, "P");
    const auto& layout = analyzed.input;

    // 1. Field widths sum to the tuple width and offsets are contiguous.
    std::uint64_t offset = 0;
    for (const auto& field : layout.fields) {
      EXPECT_EQ(field.storage_offset_bits, offset);
      offset += field.storage_width_bits;
    }
    EXPECT_EQ(offset, layout.storage_bits);

    // 2. Comparator width is the max relevant width; every relevant field
    //    is padded exactly to it.
    std::uint32_t widest = 0;
    for (const auto& field : layout.fields) {
      if (field.relevant) {
        widest = std::max(widest, field.storage_width_bits);
      }
    }
    EXPECT_EQ(layout.comparator_width_bits, widest);
    for (const auto& field : layout.fields) {
      if (field.relevant) {
        EXPECT_EQ(field.padded_width_bits, widest);
      } else {
        EXPECT_EQ(field.padded_width_bits, field.storage_width_bits);
      }
    }

    // 3. Padded representation is at least as wide as storage and padded
    //    offsets don't overlap.
    EXPECT_GE(layout.padded_bits, layout.storage_bits);
    std::uint64_t padded_total = 0;
    for (const auto& field : layout.fields) {
      padded_total += field.padded_width_bits;
    }
    EXPECT_EQ(padded_total, layout.padded_bits);

    // 4. Identity mapping wires every leaf.
    EXPECT_TRUE(analyzed.mapping.identity);
    EXPECT_EQ(analyzed.mapping.wires.size(), layout.fields.size());

    // 5. At least one filterable field exists.
    EXPECT_GT(layout.relevant_count(), 0u);
  }
}

TEST_P(RandomSpecProperties, FullPipelineArtifactsGenerate) {
  support::Xoshiro256 rng(GetParam() ^ 0xabcdef);
  core::Framework framework;
  for (int iteration = 0; iteration < 6; ++iteration) {
    const std::string source = random_spec(rng, 6);
    SCOPED_TRACE(source);
    const auto compiled = framework.compile(source);
    const auto& artifacts = compiled.get("P");
    // Verilog and C header are non-trivial and reference the PE name.
    EXPECT_NE(artifacts.verilog.find("module P_filter_stage_0"),
              std::string::npos);
    EXPECT_NE(artifacts.software_interface.find("p_filter_sync"),
              std::string::npos);
    // Resource estimate is positive and below the device size.
    EXPECT_GT(artifacts.resources_in_context.total.slices, 0.0);
    EXPECT_LT(artifacts.resources_in_context.total.slices,
              hwgen::xc7z045().total_slices);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ndpgen::analysis
