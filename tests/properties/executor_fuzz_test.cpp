// Randomized end-to-end consistency: a stream of puts/deletes/flushes/
// compactions, then GET and SCAN through every execution mode, checked
// against an in-memory reference model. Seeded and deterministic.
#include <gtest/gtest.h>

#include <map>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace ndpgen::ndp {
namespace {

// 24-byte record: key u64 | value u64 | tag u32 | pad u32.
std::vector<std::uint8_t> make_record(std::uint64_t key, std::uint64_t value,
                                      std::uint32_t tag) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, value);
  support::put_u32(record, tag);
  support::put_u32(record, 0);
  return record;
}

kv::Key extract(std::span<const std::uint8_t> record) {
  return kv::Key{support::get_u64(record, 0), 0};
}

constexpr const char* kSpec =
    "typedef struct { uint64_t key; uint64_t value; uint32_t tag; "
    "uint32_t pad; } Row;"
    "/* @autogen define parser RowScan with input = Row, output = Row, "
    "filters = 2 */";

class ExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorFuzz, AllModesMatchReferenceModel) {
  support::Xoshiro256 rng(GetParam());

  platform::CosmosPlatform cosmos;
  core::Framework framework;
  const auto compiled = framework.compile(kSpec);
  const auto& artifacts = compiled.get("RowScan");

  kv::DBConfig config;
  config.record_bytes = 24;
  config.extractor = extract;
  config.memtable_bytes = 8 * 1024;  // Frequent flushes.
  config.compaction.l1_trigger = 3;
  config.compaction.output_sst_blocks = 2;
  kv::NKV db(cosmos, config);

  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint32_t>> reference;
  const std::uint64_t key_space = 300 + rng.below(700);
  for (int operation = 0; operation < 2500; ++operation) {
    const std::uint64_t key = rng.below(key_space);
    const auto kind = rng.below(10);
    if (kind == 0) {
      db.del(kv::Key{key, 0});
      reference.erase(key);
    } else if (kind == 1) {
      db.flush();
    } else {
      const std::uint64_t value = rng();
      const std::uint32_t tag = static_cast<std::uint32_t>(rng.below(16));
      db.put(make_record(key, value, tag));
      reference[key] = {value, tag};
    }
  }
  db.flush();
  db.compact();

  cosmos.attach_pe(artifacts.design);
  auto make_executor = [&](ExecMode mode) {
    ExecutorConfig exec_config;
    exec_config.mode = mode;
    if (mode == ExecMode::kHardware) exec_config.pe_indices = {0};
    exec_config.result_key_extractor = extract;
    return HybridExecutor(db, artifacts.analyzed, artifacts.design.operators,
                          exec_config);
  };

  // Reference answer for SCAN(tag < 8).
  std::uint64_t expected_matches = 0;
  for (const auto& [key, entry] : reference) {
    expected_matches += entry.second < 8 ? 1 : 0;
  }

  for (const ExecMode mode :
       {ExecMode::kSoftware, ExecMode::kHardware, ExecMode::kHostClassic}) {
    auto executor = make_executor(mode);
    SCOPED_TRACE(static_cast<int>(mode));

    std::vector<std::vector<std::uint8_t>> results;
    const auto stats = executor.scan({{"tag", "lt", 8}}, &results);
    EXPECT_EQ(stats.results, expected_matches);
    // Every result is the LATEST version of its key.
    for (const auto& record : results) {
      const std::uint64_t key = support::get_u64(record, 0);
      const auto it = reference.find(key);
      ASSERT_NE(it, reference.end()) << key;
      EXPECT_EQ(support::get_u64(record, 8), it->second.first) << key;
      EXPECT_EQ(support::get_u32(record, 16), it->second.second) << key;
    }

    // Spot-check GETs: live, deleted and never-written keys.
    for (int probe = 0; probe < 30; ++probe) {
      const std::uint64_t key = rng.below(key_space + 50);
      const auto get_stats = executor.get(kv::Key{key, 0});
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(get_stats.found) << key;
      } else {
        ASSERT_TRUE(get_stats.found) << key;
        EXPECT_EQ(support::get_u64(get_stats.record, 8), it->second.first);
      }
    }
  }

  // Range scans agree with the reference on random sub-ranges.
  auto sw = make_executor(ExecMode::kSoftware);
  for (int round = 0; round < 5; ++round) {
    const std::uint64_t lo = rng.below(key_space);
    const std::uint64_t hi = lo + rng.below(key_space - lo + 1);
    std::uint64_t expected = 0;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      ++expected;
    }
    const auto stats =
        sw.range_scan(kv::Key{lo, 0}, kv::Key{hi, 0}, {});
    EXPECT_EQ(stats.results, expected) << lo << ".." << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace ndpgen::ndp
