// Property tests: the simulated hardware and the software NDP path must
// agree bit-for-bit on every (format, predicate, data) combination — the
// framework's core correctness contract. Parameterized sweeps cover the
// paper's tuple-size range, Full/Half variants and all operators.
#include <gtest/gtest.h>

#include <tuple>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "ndp/predicate.hpp"
#include "ndp/software_ndp.hpp"
#include "kv/block_format.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "workload/synth.hpp"

namespace ndpgen {
namespace {

// --- Sweep 1: format space (bits x half) ---------------------------------

using FormatParam = std::tuple<std::uint32_t /*bits*/, bool /*half*/>;

class FormatEquivalence : public ::testing::TestWithParam<FormatParam> {};

TEST_P(FormatEquivalence, HardwareMatchesSoftwareOnRandomData) {
  const auto [bits, half] = GetParam();
  core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(bits, half));
  const auto& artifacts = compiled.get("Synth");
  const auto& layout = artifacts.analyzed.input;

  const std::uint64_t tuples = std::min<std::uint64_t>(
      256, 30'000 / layout.storage_bytes());
  const auto data =
      workload::synth_tuples(bits, tuples, 0xfeed + bits + (half ? 1 : 0));

  support::Xoshiro256 rng(bits * 31 + (half ? 7 : 0));
  const auto relevant = layout.relevant_indices();

  hwsim::PETestBench bench(artifacts.design);
  bench.memory().write_bytes(0, data);

  for (int round = 0; round < 8; ++round) {
    // Random predicate: field, operator, value drawn from the data so
    // selectivity is non-trivial.
    const std::uint32_t field_sel =
        static_cast<std::uint32_t>(rng.below(relevant.size()));
    const auto& field = layout.fields[relevant[field_sel]];
    const auto& op =
        artifacts.design.operators.ops()[rng.below(
            artifacts.design.operators.size())];
    const std::uint64_t sample_tuple = rng.below(tuples);
    const auto sample = support::BitVector::from_bytes(
        std::span<const std::uint8_t>(data).subspan(
            sample_tuple * layout.storage_bytes(), layout.storage_bytes()));
    const std::uint64_t value = sample.extract_u64(
        field.storage_offset_bits,
        std::min<std::uint32_t>(field.storage_width_bits, 64));

    // Hardware run.
    bench.set_filter(0, field_sel, op.encoding, value);
    const auto stats = bench.run_chunk(
        0, 64 * 1024, static_cast<std::uint32_t>(data.size()));

    // Software reference over the same bytes.
    const ndp::BoundPredicate predicate{field_sel, op.encoding, value};
    std::uint64_t expected = 0;
    for (std::uint64_t t = 0; t < tuples; ++t) {
      const auto record = std::span<const std::uint8_t>(data).subspan(
          t * layout.storage_bytes(), layout.storage_bytes());
      if (ndp::eval_predicate_sw(layout, artifacts.design.operators, record,
                                 predicate)) {
        ++expected;
      }
    }
    EXPECT_EQ(stats.tuples_out, expected)
        << "bits=" << bits << " half=" << half << " op=" << op.name
        << " field=" << field.path;
    EXPECT_EQ(stats.tuples_in, tuples);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSweep, FormatEquivalence,
    ::testing::Combine(::testing::Values(64u, 128u, 256u, 512u, 1024u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FormatParam>& info) {
      return "bits" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Half" : "Full");
    });

// --- Sweep 2: operator semantics against a scalar oracle -----------------

class OperatorOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(OperatorOracle, MatchesScalarSemanticsOnSignedField) {
  const std::string op_name = GetParam();
  core::Framework framework;
  const auto compiled = framework.compile(
      "typedef struct { int32_t v; uint32_t pad; } T;"
      "/* @autogen define parser P with input = T, output = T */");
  const auto& artifacts = compiled.get("P");
  const auto* op = artifacts.design.operators.find(op_name);
  ASSERT_NE(op, nullptr);

  const std::int32_t values[] = {-100, -1, 0, 1, 7, 100};
  std::vector<std::uint8_t> data;
  for (const std::int32_t v : values) {
    support::put_u32(data, static_cast<std::uint32_t>(v));
    support::put_u32(data, 0);
  }

  hwsim::PETestBench bench(artifacts.design);
  bench.memory().write_bytes(0, data);
  const std::int32_t reference = 1;
  bench.set_filter(0, 0, op->encoding,
                   static_cast<std::uint32_t>(reference));
  const auto stats = bench.run_chunk(
      0, 4096, static_cast<std::uint32_t>(data.size()));

  std::uint64_t expected = 0;
  for (const std::int32_t v : values) {
    bool pass;
    if (op_name == "ne") pass = v != reference;
    else if (op_name == "eq") pass = v == reference;
    else if (op_name == "gt") pass = v > reference;
    else if (op_name == "ge") pass = v >= reference;
    else if (op_name == "lt") pass = v < reference;
    else if (op_name == "le") pass = v <= reference;
    else pass = true;  // nop
    expected += pass ? 1 : 0;
  }
  EXPECT_EQ(stats.tuples_out, expected);
}

INSTANTIATE_TEST_SUITE_P(AllOperators, OperatorOracle,
                         ::testing::Values("ne", "eq", "gt", "ge", "lt",
                                           "le", "nop"));

// --- Sweep 3: pad/unpad round trip over the format space -----------------

class PadRoundTrip : public ::testing::TestWithParam<FormatParam> {};

TEST_P(PadRoundTrip, StorageSurvivesPadUnpad) {
  const auto [bits, half] = GetParam();
  core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(bits, half));
  const auto& layout = compiled.get("Synth").analyzed.input;
  support::Xoshiro256 rng(bits + (half ? 100 : 0));
  for (int i = 0; i < 50; ++i) {
    support::BitVector storage(layout.storage_bits);
    for (std::size_t w = 0; w < layout.storage_bits; w += 64) {
      storage.deposit_u64(w, std::min<std::size_t>(64, layout.storage_bits - w),
                          rng());
    }
    const auto padded = hwsim::pad_tuple(layout, storage);
    EXPECT_EQ(padded.width(), layout.padded_bits);
    EXPECT_EQ(hwsim::unpad_tuple(layout, padded), storage);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSweep, PadRoundTrip,
    ::testing::Combine(::testing::Values(64u, 128u, 256u, 512u, 1024u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FormatParam>& info) {
      return "bits" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Half" : "Full");
    });

}  // namespace
}  // namespace ndpgen
