#include "hwgen/register_map.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::hwgen {
namespace {

TEST(RegisterMap, SequentialOffsets) {
  RegisterMap map;
  EXPECT_EQ(map.add("A", RegAccess::kReadWrite, ""), 0u);
  EXPECT_EQ(map.add("B", RegAccess::kReadOnly, ""), 4u);
  EXPECT_EQ(map.add("C", RegAccess::kReadWrite, ""), 8u);
  EXPECT_EQ(map.span_bytes(), 12u);
}

TEST(RegisterMap, DuplicateNameFails) {
  RegisterMap map;
  map.add("A", RegAccess::kReadWrite, "");
  EXPECT_THROW(map.add("A", RegAccess::kReadWrite, ""), ndpgen::Error);
}

TEST(RegisterMap, Lookup) {
  RegisterMap map;
  map.add("A", RegAccess::kReadWrite, "first");
  map.add("B", RegAccess::kReadOnly, "second");
  EXPECT_EQ(map.offset_of("B"), 4u);
  EXPECT_EQ(map.find("B")->access, RegAccess::kReadOnly);
  EXPECT_EQ(map.find("Z"), nullptr);
  EXPECT_THROW(map.offset_of("Z"), ndpgen::Error);
  EXPECT_EQ(map.at_offset(4)->name, "B");
  EXPECT_EQ(map.at_offset(2), nullptr);
}

TEST(StandardMap, SingleStageLayout) {
  const RegisterMap map = build_standard_register_map(1, true);
  EXPECT_EQ(map.offset_of(reg::kStart), 0u);
  EXPECT_EQ(map.offset_of(reg::kBusy), 4u);
  EXPECT_NE(map.find(reg::kInSize), nullptr);
  EXPECT_NE(map.find("FILTER_FIELD_0"), nullptr);
  EXPECT_NE(map.find("FILTER_OP_0"), nullptr);
  EXPECT_NE(map.find(reg::kFilterCounter), nullptr);
  EXPECT_EQ(map.find("FILTER_FIELD_1"), nullptr);
}

TEST(StandardMap, BaselineHasNoInSize) {
  const RegisterMap map = build_standard_register_map(1, false);
  EXPECT_EQ(map.find(reg::kInSize), nullptr);
}

TEST(StandardMap, PerStageStrideIs16Bytes) {
  // The generated <pe>_set_filter relies on a fixed 16-byte stride.
  const RegisterMap map = build_standard_register_map(4, true);
  const std::uint32_t base = map.offset_of("FILTER_FIELD_0");
  for (std::uint32_t stage = 0; stage < 4; ++stage) {
    EXPECT_EQ(map.offset_of(reg::filter_field(stage)), base + stage * 16);
    EXPECT_EQ(map.offset_of(reg::filter_value_lo(stage)),
              base + stage * 16 + 4);
    EXPECT_EQ(map.offset_of(reg::filter_value_hi(stage)),
              base + stage * 16 + 8);
    EXPECT_EQ(map.offset_of(reg::filter_op(stage)), base + stage * 16 + 12);
  }
}

TEST(StandardMap, RegisterCountGrowsWithStages) {
  const RegisterMap one = build_standard_register_map(1, true);
  const RegisterMap five = build_standard_register_map(5, true);
  EXPECT_EQ(five.size() - one.size(), 4u * 4u);
}

TEST(StandardMap, AccessKinds) {
  const RegisterMap map = build_standard_register_map(1, true);
  EXPECT_EQ(map.find(reg::kStart)->access, RegAccess::kReadWrite);
  EXPECT_EQ(map.find(reg::kBusy)->access, RegAccess::kReadOnly);
  EXPECT_EQ(map.find(reg::kOutSize)->access, RegAccess::kReadOnly);
  EXPECT_EQ(map.find(reg::kTupleCount)->access, RegAccess::kReadOnly);
  EXPECT_EQ(map.find(reg::kCycleCounter)->access, RegAccess::kReadOnly);
}

TEST(StandardMap, ZeroStagesRejected) {
  EXPECT_THROW(build_standard_register_map(0, true), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::hwgen
