#include "hwgen/resource_model.hpp"

#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include "kv/block_format.hpp"
#include "spec/parser.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::hwgen {
namespace {

PEDesign design_for(std::string_view source, std::string_view parser,
                    DesignFlavor flavor,
                    std::uint32_t static_payload = 0) {
  const auto module = spec::parse_spec(source);
  const auto analyzed = analysis::analyze_parser(module, parser);
  TemplateOptions options;
  options.flavor = flavor;
  options.static_payload_bytes = static_payload;
  return build_pe_design(analyzed, options);
}

PEDesign pubgraph_design(std::string_view parser, DesignFlavor flavor) {
  // Table I PEs provide "the same filtering and transformation
  // functionality as [1]": single-stage variants of the pubgraph parsers.
  std::string source = workload::pubgraph_spec_source();
  // RefScan declares filters = 2 for the range-scan extension; Table I
  // compares the single-stage equivalent.
  const auto pos = source.find("filters = 2");
  if (pos != std::string::npos) source.replace(pos, 11, "filters = 1");
  return design_for(source, parser, flavor);
}

// --- Table I anchors (paper §V) -------------------------------------

TEST(Calibration, GeneratedPaperPE) {
  const auto report = estimate_pe(pubgraph_design("PaperScan",
                                                  DesignFlavor::kGenerated),
                                  SynthesisMode::kInContext);
  EXPECT_NEAR(report.total.slices, 14348.0, 14348.0 * 0.015);
  EXPECT_DOUBLE_EQ(report.total.bram36, 1.0);  // "a single BRAM slice".
}

TEST(Calibration, GeneratedRefPE) {
  const auto report = estimate_pe(pubgraph_design("RefScan",
                                                  DesignFlavor::kGenerated),
                                  SynthesisMode::kInContext);
  EXPECT_NEAR(report.total.slices, 1446.0, 1446.0 * 0.015);
  EXPECT_DOUBLE_EQ(report.total.bram36, 1.0);
}

TEST(Calibration, BaselinePaperPE) {
  const auto report = estimate_pe(
      pubgraph_design("PaperScan", DesignFlavor::kHandcraftedBaseline),
      SynthesisMode::kInContext);
  EXPECT_NEAR(report.total.slices, 9480.0, 9480.0 * 0.015);
  EXPECT_DOUBLE_EQ(report.total.bram36, 0.0);  // [1] used no BRAM.
}

TEST(Calibration, BaselineRefPE) {
  const auto report = estimate_pe(
      pubgraph_design("RefScan", DesignFlavor::kHandcraftedBaseline),
      SynthesisMode::kInContext);
  EXPECT_NEAR(report.total.slices, 1277.0, 1277.0 * 0.015);
}

TEST(Calibration, OverallDesignTotals) {
  // Overall = base platform + 1 paper-PE + 7 ref-PEs (Table I).
  const double ours =
      platform_base_slices(DesignFlavor::kGenerated, 8) +
      estimate_pe(pubgraph_design("PaperScan", DesignFlavor::kGenerated),
                  SynthesisMode::kInContext)
          .total.slices +
      7 * estimate_pe(pubgraph_design("RefScan", DesignFlavor::kGenerated),
                      SynthesisMode::kInContext)
              .total.slices;
  const double theirs =
      platform_base_slices(DesignFlavor::kHandcraftedBaseline, 8) +
      estimate_pe(
          pubgraph_design("PaperScan", DesignFlavor::kHandcraftedBaseline),
          SynthesisMode::kInContext)
          .total.slices +
      7 * estimate_pe(
              pubgraph_design("RefScan", DesignFlavor::kHandcraftedBaseline),
              SynthesisMode::kInContext)
              .total.slices;
  EXPECT_NEAR(ours, 41934.0, 41934.0 * 0.02);
  EXPECT_NEAR(theirs, 40821.0, 40821.0 * 0.02);
  // Shape: ours is larger, but both fit the XC7Z045, and the overall
  // increase is less than the sum of the per-PE increases (interconnect).
  EXPECT_GT(ours, theirs);
  EXPECT_LT(ours, xc7z045().total_slices);
  const double pe_increase = (14348.0 - 9480.0) + 7 * (1446.0 - 1277.0);
  EXPECT_LT(ours - theirs, pe_increase);
}

// --- Trend properties -------------------------------------------------

TEST(Trends, OutOfContextIsLooser) {
  const auto design = pubgraph_design("RefScan", DesignFlavor::kGenerated);
  const auto in_ctx = estimate_pe(design, SynthesisMode::kInContext);
  const auto ooc = estimate_pe(design, SynthesisMode::kOutOfContext);
  EXPECT_GT(ooc.total.slices, in_ctx.total.slices);
}

TEST(Trends, SlicesGrowWithTupleSize) {
  double previous = 0;
  for (std::uint32_t bits : {64u, 128u, 256u, 512u, 1024u}) {
    std::string source = "typedef struct { ";
    for (std::uint32_t i = 0; i < bits / 32; ++i) {
      source += "uint32_t f" + std::to_string(i) + "; ";
    }
    source += "} T; /* @autogen define parser P with input = T, output = T */";
    const auto report =
        estimate_pe(design_for(source, "P", DesignFlavor::kGenerated),
                    SynthesisMode::kOutOfContext);
    EXPECT_GT(report.total.slices, previous) << bits;
    previous = report.total.slices;
  }
}

TEST(Trends, StageIncrementIsLinearAndSmall) {
  // Fig. 9: linear growth, small slope relative to the fixed template.
  std::vector<double> totals;
  for (std::uint32_t stages = 1; stages <= 5; ++stages) {
    std::string source =
        "typedef struct { uint32_t a,b,c,d,e,f,g,h; } T;"
        "/* @autogen define parser P with input = T, output = T, filters = " +
        std::to_string(stages) + " */";
    totals.push_back(
        estimate_pe(design_for(source, "P", DesignFlavor::kGenerated),
                    SynthesisMode::kOutOfContext)
            .total.slices);
  }
  const double first_step = totals[1] - totals[0];
  for (std::size_t i = 2; i < totals.size(); ++i) {
    const double step = totals[i] - totals[i - 1];
    EXPECT_NEAR(step, first_step, first_step * 0.2) << i;
  }
  // Per-stage increase is small vs the fixed part (load/store/buffers).
  EXPECT_LT(first_step, totals[0] * 0.25);
}

TEST(Trends, PerModuleBreakdownSumsToTotal) {
  const auto report = estimate_pe(
      pubgraph_design("PaperScan", DesignFlavor::kGenerated),
      SynthesisMode::kInContext);
  double sum = 0;
  for (const auto& [name, estimate] : report.per_module) sum += estimate.slices;
  EXPECT_NEAR(sum, report.total.slices, 0.5);
  EXPECT_FALSE(report.dump().empty());
}

TEST(Trends, SlicePercentAgainstDevice) {
  const auto report = estimate_pe(
      pubgraph_design("RefScan", DesignFlavor::kGenerated),
      SynthesisMode::kInContext);
  EXPECT_NEAR(report.slice_percent(), 100.0 * 1446 / 54650, 0.5);
}

TEST(Device, XC7Z045Geometry) {
  const DeviceInfo& device = xc7z045();
  EXPECT_EQ(device.total_slices, 54650u);
  EXPECT_EQ(device.name, "XC7Z045");
}

}  // namespace
}  // namespace ndpgen::hwgen
