// The generated software interface must be genuine, compilable C — it is
// shipped to a database engineer's firmware build (Fig. 6). This test
// writes the header plus a minimal consumer to a temp directory and runs
// the system C compiler over it (skipped when no compiler is available).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "hwgen/swif_generator.hpp"
#include "hwgen/template_builder.hpp"
#include "spec/parser.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::hwgen {
namespace {

bool have_compiler() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

int compile_as_c(const std::string& header, const std::string& consumer,
                 const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / ("ndpgen_swif_" + tag);
  fs::create_directories(dir);
  std::ofstream(dir / "pe_ndp.h") << header;
  std::ofstream(dir / "main.c") << consumer;
  const std::string command =
      "cc -std=c99 -Wall -Werror -fsyntax-only -I" + dir.string() + " " +
      (dir / "main.c").string() + " > /dev/null 2>&1";
  return std::system(command.c_str());
}

PEDesign design_for(const std::string& source, const std::string& name,
                    bool aggregation = false) {
  const auto module = spec::parse_spec(source);
  TemplateOptions options;
  options.enable_aggregation = aggregation;
  return build_pe_design(analysis::analyze_parser(module, name), options);
}

TEST(SwifCompile, GeneratedHeaderIsValidC99) {
  if (!have_compiler()) GTEST_SKIP() << "no system C compiler";
  const auto design = design_for(
      "typedef struct { uint64_t id; int32_t delta; double score; "
      "/* @string prefix = 4 */ char tag[12]; } Rec;"
      "/* @autogen define parser Filt with input = Rec, output = Rec, "
      "filters = 3 */",
      "Filt");
  const std::string header = generate_software_interface(design);
  const std::string consumer = R"c(
#include "pe_ndp.h"
int main(void) {
  /* Exercise the macro layer without touching real MMIO. */
  unsigned offsets = FILT_START + FILT_BUSY + FILT_FILTER_OP_0 +
                     FILT_FILTER_COUNTER + FILT_OP_EQ + FILT_FIELD_ID;
  Filt_in_t in = {0};
  Filt_out_t out = {0};
  (void)in; (void)out;
  return (int)(offsets * 0);
}
)c";
  EXPECT_EQ(compile_as_c(header, consumer, "basic"), 0);
}

TEST(SwifCompile, PubgraphHeadersAreValidC99) {
  if (!have_compiler()) GTEST_SKIP() << "no system C compiler";
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  for (const char* name : {"PaperScan", "RefScan"}) {
    const auto design =
        build_pe_design(analysis::analyze_parser(module, name));
    const std::string header = generate_software_interface(design);
    const std::string consumer = "#include \"pe_ndp.h\"\nint main(void){return 0;}\n";
    EXPECT_EQ(compile_as_c(header, consumer, name), 0) << name;
  }
}

TEST(SwifCompile, AggregationHeaderIsValidC99) {
  if (!have_compiler()) GTEST_SKIP() << "no system C compiler";
  const auto design = design_for(
      "typedef struct { uint64_t a; uint32_t b; uint32_t c; } T;"
      "/* @autogen define parser Agg with input = T, output = T */",
      "Agg", /*aggregation=*/true);
  const std::string header = generate_software_interface(design);
  const std::string consumer = R"c(
#include "pe_ndp.h"
int main(void) {
  return (int)(AGG_AGGOP_SUM * 0);
}
)c";
  EXPECT_EQ(compile_as_c(header, consumer, "agg"), 0);
}

}  // namespace
}  // namespace ndpgen::hwgen
