#include "hwgen/testbench_emitter.hpp"

#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include <cctype>

#include "hwsim/pe_sim.hpp"
#include "hwsim/tuple_buffer.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::hwgen {
namespace {

PEDesign point_design() {
  const auto module = spec::parse_spec(
      "typedef struct { uint32_t x, y, z; } P;"
      "/* @autogen define parser Pt with input = P, output = P, "
      "filters = 2 */");
  return build_pe_design(analysis::analyze_parser(module, "Pt"));
}

FilterTestbenchSpec sample_spec(const PEDesign& design) {
  FilterTestbenchSpec spec;
  spec.stage = 0;
  spec.field_select = 2;                                 // z.
  spec.operator_select = design.operators.find("gt")->encoding;
  spec.compare_value = 10;
  for (std::uint32_t i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> storage;
    support::put_u32(storage, i);
    support::put_u32(storage, i * 2);
    support::put_u32(storage, i * 3);  // z = 0,3,...,21; z > 10 -> 4 pass.
    spec.tuples.push_back(hwsim::pad_tuple(
        design.parser.input, support::BitVector::from_bytes(storage)));
  }
  spec.expected_pass_count = 4;
  return spec;
}

TEST(TestbenchEmitter, StructureAndSelfCheck) {
  const PEDesign design = point_design();
  const std::string tb = emit_filter_testbench(design, sample_spec(design));
  EXPECT_NE(tb.find("module Pt_filter_stage_0_tb;"), std::string::npos);
  EXPECT_NE(tb.find("Pt_filter_stage_0 dut"), std::string::npos);
  EXPECT_NE(tb.find(".field_select(32'd2)"), std::string::npos);
  EXPECT_NE(tb.find("compare_value(64'ha)"), std::string::npos);
  EXPECT_NE(tb.find("32'd4"), std::string::npos);  // Expected count.
  EXPECT_NE(tb.find("$fatal"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // One offer() call per stimulus tuple.
  std::size_t offers = 0, pos = 0;
  while ((pos = tb.find("    offer(", pos)) != std::string::npos) {
    ++offers;
    pos += 10;
  }
  EXPECT_EQ(offers, 8u);
}

TEST(TestbenchEmitter, HexLiteralsCarryFullTuple) {
  const PEDesign design = point_design();
  FilterTestbenchSpec spec = sample_spec(design);
  spec.tuples.resize(1);
  const std::string tb = emit_filter_testbench(design, spec);
  // Padded width is 96 bits -> 24 hex nibbles after "96'h".
  const auto pos = tb.find("offer(96'h");
  ASSERT_NE(pos, std::string::npos);
  const std::string digits = tb.substr(pos + 10, 24);
  for (const char c : digits) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << digits;
  }
}

TEST(TestbenchEmitter, RejectsBadInputs) {
  const PEDesign design = point_design();
  FilterTestbenchSpec spec = sample_spec(design);
  spec.stage = 7;
  EXPECT_THROW(emit_filter_testbench(design, spec), ndpgen::Error);
  spec = sample_spec(design);
  spec.tuples.push_back(support::BitVector(8));  // Wrong width.
  EXPECT_THROW(emit_filter_testbench(design, spec), ndpgen::Error);
}

TEST(TestbenchEmitter, ExpectedCountMatchesSimulator) {
  // The emitted expectation and the cycle simulator agree by
  // construction: run the same stimulus through hwsim.
  const PEDesign design = point_design();
  const FilterTestbenchSpec spec = sample_spec(design);
  hwsim::PETestBench bench(design);
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < 8; ++i) {
    support::put_u32(data, i);
    support::put_u32(data, i * 2);
    support::put_u32(data, i * 3);
  }
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, spec.field_select, spec.operator_select,
                   spec.compare_value);
  bench.set_filter(1, 0, *design.operators.nop_encoding(), 0);
  const auto stats =
      bench.run_chunk(0, 4096, static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(stats.stage_pass_counts[0], spec.expected_pass_count);
}

}  // namespace
}  // namespace ndpgen::hwgen
