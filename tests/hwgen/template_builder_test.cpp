#include "hwgen/template_builder.hpp"

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::hwgen {
namespace {

analysis::AnalyzedParser analyzed(std::string_view source,
                                  std::string_view name = "P") {
  const auto module = spec::parse_spec(source);
  return analysis::analyze_parser(module, name);
}

const char* kEdgeSpec =
    "typedef struct { uint64_t src; uint64_t dst; } Edge;"
    "/* @autogen define parser P with input = Edge, output = Edge, "
    "filters = 3 */";

TEST(TemplateBuilder, BuildsAllTemplateComponents) {
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  EXPECT_EQ(design.name, "P");
  EXPECT_EQ(design.flavor, DesignFlavor::kGenerated);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kControlRegs).size(), 1u);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kLoadUnit).size(), 1u);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kStoreUnit).size(), 1u);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kTupleInputBuffer).size(), 1u);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kTupleOutputBuffer).size(), 1u);
  EXPECT_EQ(design.modules_of_kind(ModuleKind::kTransformUnit).size(), 1u);
  EXPECT_EQ(design.filter_stage_count(), 3u);
}

TEST(TemplateBuilder, PipelineIsLinear) {
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  // load -> tuple_in -> f0 -> f1 -> f2 -> transform -> tuple_out -> store.
  const ModuleInstance* cursor = design.find_module("load_unit");
  std::vector<std::string> chain;
  while (cursor != nullptr) {
    chain.push_back(cursor->name);
    cursor = design.successor(cursor->name);
  }
  const std::vector<std::string> expected = {
      "load_unit",      "tuple_in",      "filter_stage_0", "filter_stage_1",
      "filter_stage_2", "transform_unit", "tuple_out",      "store_unit"};
  EXPECT_EQ(chain, expected);
}

TEST(TemplateBuilder, RegisterMapMatchesStageCount) {
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  EXPECT_NE(design.regmap.find("FILTER_OP_2"), nullptr);
  EXPECT_EQ(design.regmap.find("FILTER_OP_3"), nullptr);
  EXPECT_NE(design.regmap.find(reg::kInSize), nullptr);
}

TEST(TemplateBuilder, ParametersReflectLayout) {
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  const ModuleInstance* in_buffer = design.find_module("tuple_in");
  ASSERT_NE(in_buffer, nullptr);
  EXPECT_EQ(in_buffer->param("storage_bits"), 128u);
  EXPECT_EQ(in_buffer->param("comparator_width"), 64u);
  EXPECT_EQ(in_buffer->param("relevant_fields"), 2u);
  const ModuleInstance* stage = design.find_module("filter_stage_0");
  EXPECT_EQ(stage->param("num_operators"), 7u);
}

TEST(TemplateBuilder, BaselineIsSingleStageStatic) {
  TemplateOptions options;
  options.flavor = DesignFlavor::kHandcraftedBaseline;
  options.static_payload_bytes = 32752;
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec), options);
  // [1]'s architecture was not chainable: one stage regardless of spec.
  EXPECT_EQ(design.filter_stage_count(), 1u);
  EXPECT_EQ(design.regmap.find(reg::kInSize), nullptr);
  EXPECT_EQ(design.static_payload_bytes, 32752u);
  const ModuleInstance* load = design.find_module("load_unit");
  EXPECT_EQ(load->param("configurable"), 0u);
}

TEST(TemplateBuilder, GeneratedIgnoresStaticPayload) {
  TemplateOptions options;
  options.static_payload_bytes = 1234;
  const PEDesign design = build_pe_design(analyzed(kEdgeSpec), options);
  EXPECT_EQ(design.static_payload_bytes, 0u);
}

TEST(TemplateBuilder, SpecOperatorSubset) {
  const PEDesign design = build_pe_design(analyzed(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T, "
      "operators = { eq, nop } */"));
  EXPECT_EQ(design.operators.size(), 2u);
  EXPECT_NE(design.operators.find("eq"), nullptr);
  EXPECT_EQ(design.operators.find("lt"), nullptr);
}

TEST(TemplateBuilder, InvalidOptionsRejected) {
  TemplateOptions options;
  options.data_width_bits = 48;
  EXPECT_THROW(build_pe_design(analyzed(kEdgeSpec), options), ndpgen::Error);
  options = TemplateOptions{};
  options.fifo_depth = 1;
  EXPECT_THROW(build_pe_design(analyzed(kEdgeSpec), options), ndpgen::Error);
}

TEST(TemplateBuilder, ValidateCatchesBrokenPipelines) {
  PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  design.connections.pop_back();  // Sever tuple_out -> store_unit.
  EXPECT_THROW(design.validate(), ndpgen::Error);
}

TEST(TemplateBuilder, ValidateCatchesDuplicateNames) {
  PEDesign design = build_pe_design(analyzed(kEdgeSpec));
  design.modules.push_back(design.modules.back());
  EXPECT_THROW(design.validate(), ndpgen::Error);
}

TEST(TemplateBuilder, TransformIdentityFlag) {
  const PEDesign identity = build_pe_design(analyzed(
      "typedef struct { uint32_t a; } T;"
      "/* @autogen define parser P with input = T, output = T */"));
  EXPECT_EQ(identity.find_module("transform_unit")->param("identity"), 1u);

  const PEDesign projecting = build_pe_design(analyzed(
      "typedef struct { uint32_t a, b; } In;"
      "typedef struct { uint32_t a; } Out;"
      "/* @autogen define parser P with input = In, output = Out */"));
  EXPECT_EQ(projecting.find_module("transform_unit")->param("identity"), 0u);
}

}  // namespace
}  // namespace ndpgen::hwgen
