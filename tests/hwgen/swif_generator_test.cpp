#include "hwgen/swif_generator.hpp"

#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include "spec/parser.hpp"

namespace ndpgen::hwgen {
namespace {

PEDesign sample_design(std::uint32_t stages = 1) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t id; int32_t delta; double score; } Rec;"
      "/* @autogen define parser Filt with input = Rec, output = Rec, "
      "filters = " +
      std::to_string(stages) + " */");
  return build_pe_design(analysis::analyze_parser(module, "Filt"));
}

TEST(SwifGenerator, Fig6Shape) {
  // Fig. 6: control-register address macros, then generated functions
  // including filter_sync, filter_async and wait_until_done.
  const std::string header = generate_software_interface(sample_design());
  EXPECT_NE(header.find("Control Register Addresses"), std::string::npos);
  EXPECT_NE(header.find("#define FILT_START 0"), std::string::npos);
  EXPECT_NE(header.find("#define FILT_BUSY 4"), std::string::npos);
  EXPECT_NE(header.find("FILT_FILTER_OP_0"), std::string::npos);
  EXPECT_NE(header.find("FILT_FILTER_COUNTER"), std::string::npos);
  EXPECT_NE(header.find("filt_filter_sync"), std::string::npos);
  EXPECT_NE(header.find("filt_filter_async"), std::string::npos);
  EXPECT_NE(header.find("filt_wait_until_done"), std::string::npos);
}

TEST(SwifGenerator, MacrosMatchRegisterMap) {
  const PEDesign design = sample_design(3);
  const std::string header = generate_software_interface(design);
  for (const auto& def : design.regmap.registers()) {
    const std::string macro =
        "#define FILT_" + def.name + " " + std::to_string(def.offset);
    EXPECT_NE(header.find(macro), std::string::npos) << macro;
  }
}

TEST(SwifGenerator, OperatorEncodings) {
  const PEDesign design = sample_design();
  const std::string header = generate_software_interface(design);
  EXPECT_NE(header.find("#define FILT_OP_EQ 1"), std::string::npos);
  EXPECT_NE(header.find("#define FILT_OP_NOP 6"), std::string::npos);
}

TEST(SwifGenerator, FieldSelectorMacros) {
  const std::string header = generate_software_interface(sample_design());
  EXPECT_NE(header.find("#define FILT_FIELD_ID 0"), std::string::npos);
  EXPECT_NE(header.find("#define FILT_FIELD_DELTA 1"), std::string::npos);
  EXPECT_NE(header.find("#define FILT_FIELD_SCORE 2"), std::string::npos);
}

TEST(SwifGenerator, PackedStructMirrors) {
  const std::string header = generate_software_interface(sample_design());
  EXPECT_NE(header.find("__attribute__((packed))"), std::string::npos);
  EXPECT_NE(header.find("uint64_t id;"), std::string::npos);
  EXPECT_NE(header.find("int32_t delta;"), std::string::npos);
  EXPECT_NE(header.find("double score;"), std::string::npos);
  EXPECT_NE(header.find("} Filt_in_t;"), std::string::npos);
  EXPECT_NE(header.find("} Filt_out_t;"), std::string::npos);
}

TEST(SwifGenerator, StringPostfixAsByteArray) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t id; /* @string prefix = 4 */ char s[12]; } "
      "T;"
      "/* @autogen define parser P with input = T, output = T */");
  const std::string header = generate_software_interface(
      build_pe_design(analysis::analyze_parser(module, "P")));
  EXPECT_NE(header.find("uint8_t s_postfix[8];"), std::string::npos);
}

TEST(SwifGenerator, DebugHelpersOptional) {
  SwifOptions options;
  options.debug_helpers = false;
  const std::string without =
      generate_software_interface(sample_design(), options);
  EXPECT_EQ(without.find("print_state"), std::string::npos);
  const std::string with = generate_software_interface(sample_design());
  EXPECT_NE(with.find("filt_print_state"), std::string::npos);
  EXPECT_NE(with.find("filt_print_tuple"), std::string::npos);
}

TEST(SwifGenerator, BaseAddressConfigurable) {
  SwifOptions options;
  options.base_address = 0x7000'0000;
  const std::string header =
      generate_software_interface(sample_design(), options);
  EXPECT_NE(header.find("#define FILT_BASE 0x70000000u"), std::string::npos);
}

TEST(SwifGenerator, BaselineOmitsSizeParameter) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser P with input = T, output = T */");
  TemplateOptions options;
  options.flavor = DesignFlavor::kHandcraftedBaseline;
  const std::string header = generate_software_interface(
      build_pe_design(analysis::analyze_parser(module, "P"), options));
  EXPECT_NE(header.find("p_filter_sync(uint64_t src, uint64_t dst)"),
            std::string::npos);
  EXPECT_EQ(header.find("uint32_t bytes"), std::string::npos);
}

TEST(SwifGenerator, IncludeGuard) {
  const std::string header = generate_software_interface(sample_design());
  EXPECT_NE(header.find("#ifndef FILT_NDP_H"), std::string::npos);
  EXPECT_NE(header.find("#endif /* FILT_NDP_H */"), std::string::npos);
}

TEST(SwifGenerator, HeaderCompilesAsC) {
  // Structural sanity: balanced braces.
  const std::string header = generate_software_interface(sample_design(4));
  long depth = 0;
  for (const char c : header) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace ndpgen::hwgen
