#include "hwgen/verilog_emitter.hpp"

#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include "spec/parser.hpp"

namespace ndpgen::hwgen {
namespace {

PEDesign sample_design(std::uint32_t stages = 2) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t id; uint32_t year; "
      "/* @string prefix = 4 */ char name[12]; } Rec;"
      "typedef struct { uint64_t id; uint32_t year; } Out;"
      "/* @autogen define parser Demo with input = Rec, output = Out, "
      "filters = " +
      std::to_string(stages) + " */");
  return build_pe_design(analysis::analyze_parser(module, "Demo"));
}

TEST(VerilogEmitter, EmitsAllModules) {
  const std::string verilog = emit_verilog(sample_design());
  EXPECT_NE(verilog.find("module ndp_stream_fifo"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_control_regs"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_load_unit"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_store_unit"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_tuple_input_buffer"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_tuple_output_buffer"),
            std::string::npos);
  EXPECT_NE(verilog.find("module Demo_filter_stage_0"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_filter_stage_1"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_transform_unit"), std::string::npos);
  EXPECT_NE(verilog.find("module Demo_top"), std::string::npos);
}

TEST(VerilogEmitter, BalancedModuleEndmodule) {
  // Count at line granularity so prose in comments doesn't interfere.
  const std::string verilog = emit_verilog(sample_design());
  std::size_t modules = 0, ends = 0;
  std::size_t start = 0;
  while (start < verilog.size()) {
    std::size_t eol = verilog.find('\n', start);
    if (eol == std::string::npos) eol = verilog.size();
    const std::string_view line(verilog.data() + start, eol - start);
    if (line.rfind("module ", 0) == 0) ++modules;
    if (line.rfind("endmodule", 0) == 0) ++ends;
    start = eol + 1;
  }
  EXPECT_GT(modules, 0u);
  EXPECT_EQ(modules, ends);
}

TEST(VerilogEmitter, RegisterDecodeMatchesMap) {
  const PEDesign design = sample_design();
  const std::string verilog = emit_verilog(design);
  for (const auto& def : design.regmap.registers()) {
    EXPECT_NE(verilog.find("reg_" + def.name), std::string::npos) << def.name;
  }
}

TEST(VerilogEmitter, CompareUnitHasAllOperators) {
  const PEDesign design = sample_design();
  const std::string verilog = emit_verilog(design);
  // One case entry per operator encoding in each filter stage.
  for (const auto& op : design.operators.ops()) {
    EXPECT_NE(verilog.find("32'd" + std::to_string(op.encoding) +
                           ": predicate ="),
              std::string::npos)
        << op.name;
  }
}

TEST(VerilogEmitter, FieldMuxListsRelevantFieldsOnly) {
  const PEDesign design = sample_design();
  const std::string verilog = emit_verilog(design);
  EXPECT_NE(verilog.find("// id"), std::string::npos);
  EXPECT_NE(verilog.find("// name_prefix"), std::string::npos);
  // Postfix is carried but never muxed into the compare unit: no mux case
  // is annotated with the postfix path.
  EXPECT_EQ(verilog.find("];  // name_postfix\n"), std::string::npos);
}

TEST(VerilogEmitter, TransformWiresComments) {
  const std::string verilog = emit_verilog(sample_design());
  EXPECT_NE(verilog.find("id <= id"), std::string::npos);
  EXPECT_NE(verilog.find("year <= year"), std::string::npos);
}

TEST(VerilogEmitter, StaticLoadUnitForBaseline) {
  const auto module = spec::parse_spec(
      "typedef struct { uint64_t a; } T;"
      "/* @autogen define parser B with input = T, output = T */");
  TemplateOptions options;
  options.flavor = DesignFlavor::kHandcraftedBaseline;
  const PEDesign design =
      build_pe_design(analysis::analyze_parser(module, "B"), options);
  const std::string verilog = emit_verilog(design);
  EXPECT_NE(verilog.find("static full-block"), std::string::npos);
  EXPECT_EQ(verilog.find("load_bytes"), std::string::npos);
}

TEST(VerilogEmitter, ConfigurableLoadUnitForGenerated) {
  const std::string verilog = emit_verilog(sample_design());
  EXPECT_NE(verilog.find("load_bytes"), std::string::npos);
}

TEST(VerilogEmitter, TopListsConnections) {
  const PEDesign design = sample_design();
  const std::string top = emit_verilog_top(design);
  for (const auto& connection : design.connections) {
    EXPECT_NE(top.find(connection.from + "->" + connection.to),
              std::string::npos);
  }
}

TEST(VerilogEmitter, TopInstantiatesEveryModule) {
  const PEDesign design = sample_design();
  const std::string top = emit_verilog_top(design);
  EXPECT_NE(top.find("Demo_control_regs control_regs ("), std::string::npos);
  EXPECT_NE(top.find("Demo_load_unit load_unit ("), std::string::npos);
  EXPECT_NE(top.find("Demo_tuple_input_buffer tuple_in ("),
            std::string::npos);
  EXPECT_NE(top.find("Demo_filter_stage_0 filter_stage_0 ("),
            std::string::npos);
  EXPECT_NE(top.find("Demo_filter_stage_1 filter_stage_1 ("),
            std::string::npos);
  EXPECT_NE(top.find("Demo_transform_unit transform_unit ("),
            std::string::npos);
  EXPECT_NE(top.find("Demo_tuple_output_buffer tuple_out ("),
            std::string::npos);
  EXPECT_NE(top.find("Demo_store_unit store_unit ("), std::string::npos);
  // Register wires connect the control file to the datapath.
  EXPECT_NE(top.find(".compare_value({reg_FILTER_VALUE_HI_1, "
                     "reg_FILTER_VALUE_LO_1})"),
            std::string::npos);
  EXPECT_NE(top.find(".load_bytes(reg_IN_SIZE)"), std::string::npos);
  EXPECT_NE(top.find("assign reg_BUSY"), std::string::npos);
}

TEST(VerilogEmitter, TopChainsStagesInOrder) {
  const PEDesign design = sample_design(3);
  const std::string top = emit_verilog_top(design);
  // t0 feeds stage 0, whose t1 output feeds stage 1, etc.
  EXPECT_LT(top.find(".in_tuple(t0_tuple)"), top.find(".in_tuple(t1_tuple)"));
  EXPECT_LT(top.find(".in_tuple(t1_tuple)"), top.find(".in_tuple(t2_tuple)"));
  // The transform consumes the last stage's output.
  EXPECT_NE(top.find("transform_unit (\n    .clk(clk), .rst_n(rst_n),\n"
                     "    .in_tuple(t3_tuple)"),
            std::string::npos);
}

TEST(VerilogEmitter, HeaderMentionsDesignFacts) {
  const PEDesign design = sample_design(3);
  const std::string verilog = emit_verilog(design);
  EXPECT_NE(verilog.find("Filter stages: 3"), std::string::npos);
  EXPECT_NE(verilog.find("100 MHz"), std::string::npos);
}

}  // namespace
}  // namespace ndpgen::hwgen
