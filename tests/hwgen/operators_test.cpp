#include "hwgen/operators.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace ndpgen::hwgen {
namespace {

CompareOperand unsigned_op(std::uint64_t value, std::uint32_t width = 32) {
  return CompareOperand{value, FieldInterp::kUnsigned, width};
}

CompareOperand signed_op(std::int64_t value, std::uint32_t width = 32) {
  return CompareOperand{static_cast<std::uint64_t>(value) &
                            (width == 64 ? ~0ULL : ((1ULL << width) - 1)),
                        FieldInterp::kSigned, width};
}

CompareOperand float_op(float value) {
  return CompareOperand{std::bit_cast<std::uint32_t>(value),
                        FieldInterp::kFloat, 32};
}

TEST(SignExtend, Basics) {
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
  EXPECT_EQ(sign_extend(5, 64), 5);
  EXPECT_EQ(sign_extend(static_cast<std::uint64_t>(-5), 64), -5);
}

TEST(StandardSet, ContainsPaperOperators) {
  const OperatorSet set = OperatorSet::standard();
  EXPECT_EQ(set.size(), 7u);
  for (const char* name : {"ne", "eq", "gt", "ge", "lt", "le", "nop"}) {
    EXPECT_NE(set.find(name), nullptr) << name;
  }
  EXPECT_EQ(set.find("ne")->encoding, 0u);
  EXPECT_EQ(set.find("nop")->encoding, 6u);
}

TEST(StandardSet, UnsignedSemantics) {
  const OperatorSet set = OperatorSet::standard();
  const auto a = unsigned_op(5);
  const auto b = unsigned_op(7);
  EXPECT_TRUE(set.evaluate(set.find("lt")->encoding, a, b));
  EXPECT_FALSE(set.evaluate(set.find("gt")->encoding, a, b));
  EXPECT_TRUE(set.evaluate(set.find("le")->encoding, a, a));
  EXPECT_TRUE(set.evaluate(set.find("ge")->encoding, a, a));
  EXPECT_TRUE(set.evaluate(set.find("eq")->encoding, a, a));
  EXPECT_TRUE(set.evaluate(set.find("ne")->encoding, a, b));
  EXPECT_TRUE(set.evaluate(set.find("nop")->encoding, a, b));
}

TEST(StandardSet, SignedSemantics) {
  const OperatorSet set = OperatorSet::standard();
  // -1 < 1 as signed, but 0xffffffff > 1 as unsigned.
  EXPECT_TRUE(set.evaluate(set.find("lt")->encoding, signed_op(-1),
                           signed_op(1)));
  EXPECT_FALSE(set.evaluate(set.find("lt")->encoding, unsigned_op(0xffffffff),
                            unsigned_op(1)));
}

TEST(StandardSet, FloatSemantics) {
  const OperatorSet set = OperatorSet::standard();
  EXPECT_TRUE(set.evaluate(set.find("lt")->encoding, float_op(-2.5f),
                           float_op(1.0f)));
  EXPECT_TRUE(set.evaluate(set.find("eq")->encoding, float_op(3.25f),
                           float_op(3.25f)));
}

TEST(StandardSet, FloatNaNSemantics) {
  const OperatorSet set = OperatorSet::standard();
  const auto nan = float_op(std::numeric_limits<float>::quiet_NaN());
  const auto one = float_op(1.0f);
  EXPECT_FALSE(set.evaluate(set.find("eq")->encoding, nan, one));
  EXPECT_FALSE(set.evaluate(set.find("lt")->encoding, nan, one));
  EXPECT_FALSE(set.evaluate(set.find("ge")->encoding, nan, one));
  EXPECT_TRUE(set.evaluate(set.find("ne")->encoding, nan, one));
}

TEST(FromNames, SubsetWithDenseEncodings) {
  const OperatorSet set = OperatorSet::from_names({"eq", "lt"});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.find("eq")->encoding, 0u);
  EXPECT_EQ(set.find("lt")->encoding, 1u);
  EXPECT_EQ(set.find("gt"), nullptr);
  EXPECT_FALSE(set.nop_encoding().has_value());
}

TEST(FromNames, EmptyGivesStandard) {
  EXPECT_EQ(OperatorSet::from_names({}).size(), 7u);
}

TEST(FromNames, UnknownNameFails) {
  EXPECT_THROW(OperatorSet::from_names({"frobnicate"}), ndpgen::Error);
}

TEST(FromNames, DuplicateFails) {
  EXPECT_THROW(OperatorSet::from_names({"eq", "eq"}), ndpgen::Error);
}

TEST(CustomOperators, ExtendTheSet) {
  // §IV-B: "the set of operators can be easily extended in our toolflow."
  const OperatorSet set = OperatorSet::standard().with_custom(
      "divisible_by",
      [](CompareOperand lhs, CompareOperand rhs) {
        return rhs.raw != 0 && lhs.raw % rhs.raw == 0;
      });
  ASSERT_EQ(set.size(), 8u);
  const CompareOp* op = set.find("divisible_by");
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->custom);
  EXPECT_EQ(op->encoding, 7u);
  EXPECT_TRUE(set.evaluate(7, unsigned_op(12), unsigned_op(4)));
  EXPECT_FALSE(set.evaluate(7, unsigned_op(13), unsigned_op(4)));
}

TEST(CustomOperators, DuplicateNameFails) {
  EXPECT_THROW(OperatorSet::standard().with_custom(
                   "eq", [](CompareOperand, CompareOperand) { return true; }),
               ndpgen::Error);
}

TEST(Evaluate, BadEncodingFails) {
  const OperatorSet set = OperatorSet::standard();
  EXPECT_THROW(set.evaluate(99, unsigned_op(1), unsigned_op(2)),
               ndpgen::Error);
}

TEST(FindEncoding, Works) {
  const OperatorSet set = OperatorSet::standard();
  EXPECT_EQ(set.find_encoding(1)->name, "eq");
  EXPECT_EQ(set.find_encoding(42), nullptr);
}

}  // namespace
}  // namespace ndpgen::hwgen
