// Chained-PE pricing: area/latency composition and budget rejection.
//
// The query compiler relies on three properties of price_chain:
//  * area composes monotonically with chain length (stage formulas are
//    additive, no cross-stage discounts);
//  * the pipeline fill latency grows by exactly one PE cycle per chained
//    filter stage (steady state stays one tuple per cycle);
//  * a design that does not fit the slot budget is rejected with the
//    first over-budget stage named, so the compiler can cut there.
#include "hwgen/resource_model.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hwgen/template_builder.hpp"
#include "spec/parser.hpp"

namespace ndpgen::hwgen {
namespace {

constexpr std::string_view kChainSpecTemplate = R"(
typedef struct {
  uint64_t id;
  uint32_t year;
  uint32_t venue_id;
  uint32_t n_refs;
  uint32_t n_cited;
} Rec;

typedef struct {
  uint64_t id;
  uint32_t year;
} RecOut;

/* @autogen define parser ChainScan with chunksize = 32, input = Rec,
   output = RecOut, filters = $N */
)";

PEDesign chain_design(std::uint32_t stages) {
  std::string source(kChainSpecTemplate);
  const auto pos = source.find("$N");
  source.replace(pos, 2, std::to_string(stages));
  const auto module = spec::parse_spec(source);
  const auto analyzed = analysis::analyze_parser(module, "ChainScan");
  TemplateOptions options;
  options.flavor = DesignFlavor::kGenerated;
  return build_pe_design(analyzed, options);
}

ChainBudget generous_budget() {
  ChainBudget budget;
  budget.max_slices = 1e9;
  budget.max_bram36 = 1e9;
  budget.max_stages = 16;
  return budget;
}

ChainPricing priced(const PEDesign& design,
                    SynthesisMode mode = SynthesisMode::kInContext) {
  auto result = price_chain(design, mode, generous_budget());
  return result.value_or_raise();
}

double filter_slices(const ChainPricing& pricing) {
  for (const auto& stage : pricing.stages) {
    if (stage.kind == ModuleKind::kFilterStage) return stage.resources.slices;
  }
  ADD_FAILURE() << "no filter stage in chain";
  return 0.0;
}

TEST(ChainPricing, TwoAndThreeStageAreaComposition) {
  const auto one = priced(chain_design(1));
  const auto two = priced(chain_design(2));
  const auto three = priced(chain_design(3));

  EXPECT_EQ(one.filter_stages, 1u);
  EXPECT_EQ(two.filter_stages, 2u);
  EXPECT_EQ(three.filter_stages, 3u);

  // Additive composition: every extra stage costs the same marginal
  // slices (the filter stage itself plus its slice of the control
  // registers — no cross-stage discounts), so the compiler's
  // longest-prefix cut search is monotone.
  const double first_delta = two.total.slices - one.total.slices;
  const double second_delta = three.total.slices - two.total.slices;
  EXPECT_NEAR(first_delta, second_delta, 1e-6);
  // The filter stage dominates the marginal cost.
  const double per_stage = filter_slices(one);
  EXPECT_GT(per_stage, 0.0);
  EXPECT_GE(first_delta, per_stage);
  EXPECT_LT(first_delta, per_stage * 1.1);
  EXPECT_GT(three.total.slices, two.total.slices);
  EXPECT_GT(two.total.slices, one.total.slices);
}

TEST(ChainPricing, FillLatencyGrowsOneCyclePerStage) {
  const auto one = priced(chain_design(1));
  const auto two = priced(chain_design(2));
  const auto three = priced(chain_design(3));
  EXPECT_EQ(two.pipeline_fill_cycles, one.pipeline_fill_cycles + 1);
  EXPECT_EQ(three.pipeline_fill_cycles, two.pipeline_fill_cycles + 1);
  // Load + input buffer + store + output buffer dominate the fixed part.
  EXPECT_GE(one.pipeline_fill_cycles, 10u);
}

TEST(ChainPricing, OutOfContextPricesHigher) {
  const auto in_ctx = priced(chain_design(2));
  const auto out_ctx =
      priced(chain_design(2), SynthesisMode::kOutOfContext);
  EXPECT_GT(out_ctx.total.slices, in_ctx.total.slices);
  EXPECT_EQ(out_ctx.pipeline_fill_cycles, in_ctx.pipeline_fill_cycles);
}

TEST(ChainPricing, BudgetExceededNamesFirstOverBudgetStage) {
  const auto design = chain_design(3);
  const auto full = priced(design);

  // Afford everything up to (and including) filter_stage_1; the last
  // stage of the chain, filter_stage_2, must be the named culprit.
  double through_stage_1 = full.total.slices;
  for (auto it = full.stages.rbegin(); it != full.stages.rend(); ++it) {
    through_stage_1 -= it->resources.slices;
    if (it->name == "filter_stage_2") break;
  }
  ChainBudget tight = generous_budget();
  tight.max_slices = through_stage_1 + filter_slices(full) * 0.5;

  const auto result = price_chain(design, SynthesisMode::kInContext, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kGeneration);
  EXPECT_NE(result.status().message.find("filter_stage_2"), std::string::npos)
      << result.status().message;
}

TEST(ChainPricing, StageCountCapRejected) {
  ChainBudget budget = generous_budget();
  budget.max_stages = 2;
  const auto result =
      price_chain(chain_design(3), SynthesisMode::kInContext, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kGeneration);
  EXPECT_NE(result.status().message.find("filter stages"), std::string::npos);
}

TEST(ChainPricing, DefaultBudgetAdmitsSixteenStageChain) {
  const auto budget = default_chain_budget(DesignFlavor::kGenerated, 1);
  EXPECT_GT(budget.max_slices, 0.0);
  const auto result =
      price_chain(chain_design(16), SynthesisMode::kInContext, budget);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().filter_stages, 16u);
}

}  // namespace
}  // namespace ndpgen::hwgen
