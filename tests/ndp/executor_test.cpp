#include "ndp/executor.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "support/bytes.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

// Shared scenario: a small publication graph (papers only), HW and SW
// executors over the PaperScan parser.
class ExecutorFixture : public ::testing::Test {
 protected:
  ExecutorFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())),
        generator_(workload::PubGraphConfig{.scale_divisor = 4096}),
        db_(cosmos_, db_config()) {
    loaded_ = workload::load_papers(db_, generator_);
    pe_index_ = framework_.instantiate(compiled_, "PaperScan", cosmos_);
  }

  kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  HybridExecutor make_executor(ExecMode mode) {
    ExecutorConfig config;
    config.mode = mode;
    if (mode == ExecMode::kHardware) config.pe_indices = {pe_index_};
    config.result_key_extractor = workload::paper_result_key;
    const auto& artifacts = compiled_.get("PaperScan");
    return HybridExecutor(db_, artifacts.analyzed,
                          artifacts.design.operators, config);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
  workload::PubGraphGenerator generator_;
  platform::CosmosPlatform cosmos_;
  kv::NKV db_{cosmos_, db_config()};
  std::uint64_t loaded_ = 0;
  std::size_t pe_index_ = 0;

 private:
};

TEST_F(ExecutorFixture, HwAndSwScanAgree) {
  const std::vector<FilterPredicate> predicate = {{"year", "lt", 1990}};
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto hw_stats = hw.scan(predicate);
  const auto sw_stats = sw.scan(predicate);
  EXPECT_EQ(hw_stats.results, sw_stats.results);
  EXPECT_EQ(hw_stats.tuples_scanned, sw_stats.tuples_scanned);
  EXPECT_EQ(hw_stats.tuples_scanned, loaded_);
  EXPECT_GT(hw_stats.results, 0u);
  EXPECT_LT(hw_stats.results, loaded_);
}

TEST_F(ExecutorFixture, ScanSelectivityMatchesGenerator) {
  const std::vector<FilterPredicate> predicate = {{"year", "lt", 1990}};
  auto sw = make_executor(ExecMode::kSoftware);
  const auto stats = sw.scan(predicate);
  const double measured =
      static_cast<double>(stats.results) / static_cast<double>(loaded_);
  EXPECT_NEAR(measured, generator_.year_selectivity(1990), 0.05);
}

TEST_F(ExecutorFixture, HwScanIsFasterThanSw) {
  const std::vector<FilterPredicate> predicate = {{"year", "lt", 1990}};
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto hw_stats = hw.scan(predicate);
  const auto sw_stats = sw.scan(predicate);
  EXPECT_LT(hw_stats.elapsed, sw_stats.elapsed);
}

TEST_F(ExecutorFixture, ScanCollectsTransformedRecords) {
  const std::vector<FilterPredicate> predicate = {{"year", "lt", 1950}};
  auto hw = make_executor(ExecMode::kHardware);
  std::vector<std::vector<std::uint8_t>> results;
  const auto stats = hw.scan(predicate, &results);
  EXPECT_EQ(results.size(), stats.results);
  for (const auto& record : results) {
    // PaperResult is 24 bytes; year (offset 8) must satisfy the predicate.
    ASSERT_EQ(record.size(), 24u);
    EXPECT_LT(support::get_u32(record, 8), 1950u);
  }
}

TEST_F(ExecutorFixture, GetFindsExistingPaper) {
  const kv::Key key{123, 0};
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto hw_stats = hw.get(key);
  const auto sw_stats = sw.get(key);
  EXPECT_TRUE(hw_stats.found);
  EXPECT_TRUE(sw_stats.found);
  EXPECT_EQ(hw_stats.record, sw_stats.record);
  EXPECT_EQ(support::get_u64(hw_stats.record, 0), 123u);
  EXPECT_GT(hw_stats.blocks_fetched, 0u);
}

TEST_F(ExecutorFixture, GetMissesAbsentKey) {
  auto sw = make_executor(ExecMode::kSoftware);
  const auto stats = sw.get(kv::Key{loaded_ + 10, 0});
  EXPECT_FALSE(stats.found);
}

TEST_F(ExecutorFixture, GetTimesAreComparableAcrossModes) {
  // Fig. 7(a): GET "does not profit greatly from hardware support".
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto hw_stats = hw.get(kv::Key{500, 0});
  const auto sw_stats = sw.get(kv::Key{500, 0});
  ASSERT_TRUE(hw_stats.found);
  ASSERT_TRUE(sw_stats.found);
  const double ratio = static_cast<double>(hw_stats.elapsed) /
                       static_cast<double>(sw_stats.elapsed);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(ExecutorFixture, GetSeesMemtableFirst) {
  // Overwrite a paper in C0; GET must return the new version.
  workload::PaperRecord record = generator_.paper(41);  // id 42.
  record.year = 2099;
  db_.put(record.serialize());
  auto sw = make_executor(ExecMode::kSoftware);
  const auto stats = sw.get(kv::Key{42, 0});
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(support::get_u32(stats.record, 8), 2099u);
}

TEST_F(ExecutorFixture, ScanDeduplicatesUpdatedKeys) {
  // Baseline scan before any updates.
  auto sw0 = make_executor(ExecMode::kSoftware);
  const auto before = sw0.scan({{"year", "lt", 1990}});

  // Update 100 papers so they all match, flush to C1: the old versions in
  // C2 still exist on flash, but the scan must count each key once.
  std::uint64_t already_matching = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    workload::PaperRecord record = generator_.paper(i);
    if (record.year < 1990) ++already_matching;
    record.year = 1900;
    db_.put(record.serialize());
  }
  db_.flush();
  auto sw = make_executor(ExecMode::kSoftware);
  const auto stats = sw.scan({{"year", "lt", 1990}});
  EXPECT_EQ(stats.tuples_scanned, loaded_ + 100);
  // Unique matching keys = previous matches + newly matching papers.
  EXPECT_EQ(stats.results, before.results + (100 - already_matching));
  // The superseded duplicates matched but were deduplicated away.
  EXPECT_EQ(stats.tuples_matched, before.tuples_matched + 100);
}

TEST_F(ExecutorFixture, ScanSuppressesDeletedKeys) {
  // Delete papers 1..50 (flushed as tombstones).
  for (std::uint64_t id = 1; id <= 50; ++id) db_.del(kv::Key{id, 0});
  db_.flush();
  auto sw = make_executor(ExecMode::kSoftware);
  std::vector<std::vector<std::uint8_t>> results;
  (void)sw.scan({{"id", "le", 60}}, &results);
  for (const auto& record : results) {
    EXPECT_GT(support::get_u64(record, 0), 50u);
  }
}

TEST_F(ExecutorFixture, HardwareNeedsPeIndices) {
  ExecutorConfig config;
  config.mode = ExecMode::kHardware;
  const auto& artifacts = compiled_.get("PaperScan");
  EXPECT_THROW(HybridExecutor(db_, artifacts.analyzed,
                              artifacts.design.operators, config),
               ndpgen::Error);
}

TEST_F(ExecutorFixture, MultiPeScanAgreesAndIsNotSlower) {
  const std::size_t pe2 = framework_.instantiate(compiled_, "PaperScan",
                                                 cosmos_);
  ExecutorConfig config;
  config.mode = ExecMode::kHardware;
  config.pe_indices = {pe_index_, pe2};
  config.result_key_extractor = workload::paper_result_key;
  const auto& artifacts = compiled_.get("PaperScan");
  HybridExecutor multi(db_, artifacts.analyzed, artifacts.design.operators,
                       config);
  auto single = make_executor(ExecMode::kHardware);
  const auto multi_stats = multi.scan({{"year", "lt", 1990}});
  const auto single_stats = single.scan({{"year", "lt", 1990}});
  EXPECT_EQ(multi_stats.results, single_stats.results);
  EXPECT_LE(multi_stats.elapsed, single_stats.elapsed + single_stats.elapsed / 10);
}

}  // namespace
}  // namespace ndpgen::ndp
