// Edge cases of the hybrid executors.
#include <gtest/gtest.h>

#include <cstring>

#include "core/framework.hpp"
#include "support/error.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

class ExecutorEdgeFixture : public ::testing::Test {
 protected:
  ExecutorEdgeFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())),
        generator_(workload::PubGraphConfig{.scale_divisor = 16384}),
        db_(cosmos_, db_config()) {}

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  HybridExecutor make_sw() {
    ExecutorConfig config;
    config.result_key_extractor = workload::paper_result_key;
    const auto& artifacts = compiled_.get("PaperScan");
    return HybridExecutor(db_, artifacts.analyzed,
                          artifacts.design.operators, config);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
  workload::PubGraphGenerator generator_;
  platform::CosmosPlatform cosmos_;
  kv::NKV db_{cosmos_, db_config()};
};

TEST_F(ExecutorEdgeFixture, ScanOfEmptyStore) {
  auto sw = make_sw();
  const auto stats = sw.scan({{"year", "lt", 1990}});
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_EQ(stats.results, 0u);
  EXPECT_EQ(stats.tuples_scanned, 0u);
}

TEST_F(ExecutorEdgeFixture, GetOnEmptyStore) {
  auto sw = make_sw();
  const auto stats = sw.get(kv::Key{1, 0});
  EXPECT_FALSE(stats.found);
  EXPECT_EQ(stats.blocks_fetched, 0u);
}

TEST_F(ExecutorEdgeFixture, ScanWithoutPredicatesReturnsEverything) {
  workload::load_papers(db_, generator_);
  auto sw = make_sw();
  const auto stats = sw.scan({});
  EXPECT_EQ(stats.results, generator_.paper_count());
  EXPECT_EQ(stats.tuples_matched, stats.tuples_scanned);
}

TEST_F(ExecutorEdgeFixture, ScanWithImpossiblePredicate) {
  workload::load_papers(db_, generator_);
  auto sw = make_sw();
  const auto stats = sw.scan({{"year", "lt", 1800}});
  EXPECT_EQ(stats.results, 0u);
  EXPECT_EQ(stats.tuples_scanned, generator_.paper_count());
  // Time is still dominated by reading the data (full traversal).
  EXPECT_GT(stats.elapsed, 0u);
}

TEST_F(ExecutorEdgeFixture, GetFromMemtableOnlyIsFast) {
  workload::PaperRecord paper = generator_.paper(0);
  db_.put(paper.serialize());
  auto sw = make_sw();
  const auto stats = sw.get(kv::Key{1, 0});
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.blocks_fetched, 0u);
  // Memtable hits avoid flash entirely: well under a block-fetch time.
  EXPECT_LT(stats.elapsed, 400 * platform::kNsPerUs);
}

TEST_F(ExecutorEdgeFixture, GetDeletedInMemtable) {
  workload::load_papers(db_, generator_);
  db_.del(kv::Key{5, 0});
  auto sw = make_sw();
  EXPECT_FALSE(sw.get(kv::Key{5, 0}).found);
  EXPECT_TRUE(sw.get(kv::Key{6, 0}).found);
}

TEST_F(ExecutorEdgeFixture, GetDeletedViaFlushedTombstone) {
  workload::load_papers(db_, generator_);
  db_.del(kv::Key{5, 0});
  db_.flush();
  auto sw = make_sw();
  EXPECT_FALSE(sw.get(kv::Key{5, 0}).found);
}

TEST_F(ExecutorEdgeFixture, PredicateOnStringPrefix) {
  workload::load_papers(db_, generator_);
  auto sw = make_sw();
  // Every title starts with "P%07d" -> prefix bytes "P0000001..." etc.
  // Match papers whose 8-byte prefix equals paper 3's.
  const auto paper = generator_.paper(2);
  std::uint64_t prefix = 0;
  std::memcpy(&prefix, paper.title, 8);
  std::vector<std::vector<std::uint8_t>> results;
  const auto stats = sw.scan({{"title_prefix", "eq", prefix}}, &results);
  EXPECT_EQ(stats.results, 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(support::get_u64(results[0], 0), 3u);
}

TEST_F(ExecutorEdgeFixture, MismatchedPeLayoutRejected) {
  platform::CosmosPlatform cosmos2;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  // Attach a Ref PE but ask the executor to use it for Paper scans.
  cosmos2.attach_pe(compiled.get("RefScan").design);
  kv::NKV db2(cosmos2, db_config());
  ExecutorConfig config;
  config.mode = ExecMode::kHardware;
  config.pe_indices = {0};
  const auto& artifacts = compiled.get("PaperScan");
  EXPECT_THROW(HybridExecutor(db2, artifacts.analyzed,
                              artifacts.design.operators, config),
               ndpgen::Error);
}

TEST_F(ExecutorEdgeFixture, ScanStatsAccounting) {
  workload::load_papers(db_, generator_);
  auto sw = make_sw();
  const auto stats = sw.scan({{"year", "lt", 1990}});
  EXPECT_EQ(stats.tuples_scanned, generator_.paper_count());
  EXPECT_GE(stats.tuples_matched, stats.results);
  EXPECT_EQ(stats.result_bytes, stats.results * 24u);
  EXPECT_GT(stats.bytes_from_flash, 0u);
  EXPECT_LE(stats.flash_done, stats.elapsed);
}

}  // namespace
}  // namespace ndpgen::ndp
