// Tests of the index-pruned key-range scan.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

class RangeScanFixture : public ::testing::Test {
 protected:
  RangeScanFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())),
        generator_(workload::PubGraphConfig{.scale_divisor = 2048}),
        db_(cosmos_, db_config()) {
    loaded_ = workload::load_papers(db_, generator_);
    pe_ = framework_.instantiate(compiled_, "PaperScan", cosmos_);
  }

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  HybridExecutor make_executor(ExecMode mode) {
    ExecutorConfig config;
    config.mode = mode;
    if (mode == ExecMode::kHardware) config.pe_indices = {pe_};
    config.result_key_extractor = workload::paper_result_key;
    const auto& artifacts = compiled_.get("PaperScan");
    return HybridExecutor(db_, artifacts.analyzed,
                          artifacts.design.operators, config);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
  workload::PubGraphGenerator generator_;
  platform::CosmosPlatform cosmos_;
  kv::NKV db_{cosmos_, db_config()};
  std::uint64_t loaded_ = 0;
  std::size_t pe_ = 0;
};

TEST_F(RangeScanFixture, ExactBoundsInclusive) {
  auto sw = make_executor(ExecMode::kSoftware);
  std::vector<std::vector<std::uint8_t>> results;
  const auto stats =
      sw.range_scan(kv::Key{100, 0}, kv::Key{199, 0}, {}, &results);
  EXPECT_EQ(stats.results, 100u);
  for (const auto& record : results) {
    const auto id = support::get_u64(record, 0);
    EXPECT_GE(id, 100u);
    EXPECT_LE(id, 199u);
  }
}

TEST_F(RangeScanFixture, PrunesBlocksViaIndex) {
  auto sw = make_executor(ExecMode::kSoftware);
  const auto full = sw.scan({});
  const auto narrow = sw.range_scan(kv::Key{10, 0}, kv::Key{20, 0}, {});
  // A narrow range touches a tiny fraction of the blocks and finishes
  // much faster than a full traversal (the remaining time is the fixed
  // command overhead plus one block's fetch latency).
  EXPECT_LT(narrow.blocks, full.blocks / 4);
  EXPECT_LT(narrow.elapsed, full.elapsed / 2);
  EXPECT_EQ(narrow.results, 11u);
}

TEST_F(RangeScanFixture, HwAndSwAgreeWithPredicates) {
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const kv::Key lo{50, 0};
  const kv::Key hi{1500, 0};
  const std::vector<FilterPredicate> predicate = {{"year", "lt", 1995}};
  std::vector<std::vector<std::uint8_t>> hw_results, sw_results;
  const auto hw_stats = hw.range_scan(lo, hi, predicate, &hw_results);
  const auto sw_stats = sw.range_scan(lo, hi, predicate, &sw_results);
  EXPECT_EQ(hw_stats.results, sw_stats.results);
  EXPECT_EQ(hw_results, sw_results);
  for (const auto& record : hw_results) {
    EXPECT_LT(support::get_u32(record, 8), 1995u);
  }
}

TEST_F(RangeScanFixture, EmptyRangeInGap) {
  auto sw = make_executor(ExecMode::kSoftware);
  const auto stats = sw.range_scan(kv::Key{loaded_ + 100, 0},
                                   kv::Key{loaded_ + 200, 0}, {});
  EXPECT_EQ(stats.results, 0u);
  EXPECT_EQ(stats.blocks, 0u);
}

TEST_F(RangeScanFixture, SingleKeyRange) {
  auto sw = make_executor(ExecMode::kSoftware);
  std::vector<std::vector<std::uint8_t>> results;
  const auto stats =
      sw.range_scan(kv::Key{7, 0}, kv::Key{7, 0}, {}, &results);
  EXPECT_EQ(stats.results, 1u);
  EXPECT_EQ(support::get_u64(results[0], 0), 7u);
}

TEST_F(RangeScanFixture, SeesNewerVersionsAcrossLevels) {
  // Update a paper inside the range, flush: range scan must return the
  // new version exactly once.
  workload::PaperRecord paper = generator_.paper(59);  // id 60.
  paper.year = 1901;
  db_.put(paper.serialize());
  db_.flush();
  auto sw = make_executor(ExecMode::kSoftware);
  std::vector<std::vector<std::uint8_t>> results;
  const auto stats =
      sw.range_scan(kv::Key{55, 0}, kv::Key{65, 0}, {}, &results);
  EXPECT_EQ(stats.results, 11u);
  std::uint64_t updated_seen = 0;
  for (const auto& record : results) {
    if (support::get_u64(record, 0) == 60) {
      ++updated_seen;
      EXPECT_EQ(support::get_u32(record, 8), 1901u);
    }
  }
  EXPECT_EQ(updated_seen, 1u);
}

TEST(CompositeKeyGet, HardwareGetVerifiesFullKey) {
  // Ref keys are (src, dst): the hardware GET filters on the leading key
  // field (src) only and the identity transform lets the software part
  // verify the full 128-bit key on the survivors — a GET for (src, dst)
  // must not return a different edge of the same src.
  platform::CosmosPlatform cosmos;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("RefScan");

  kv::DBConfig config;
  config.record_bytes = workload::RefRecord::kBytes;
  config.extractor = workload::ref_key;
  kv::NKV db(cosmos, config);
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 16384});
  workload::load_refs(db, generator);
  cosmos.attach_pe(artifacts.design);

  ExecutorConfig hw_config;
  hw_config.mode = ExecMode::kHardware;
  hw_config.pe_indices = {0};
  hw_config.result_key_extractor = workload::ref_key;
  HybridExecutor hw(db, artifacts.analyzed, artifacts.design.operators,
                    hw_config);

  // Pick an edge that exists and a sibling (same src, different dst) that
  // does not.
  const workload::RefRecord edge = generator.ref(10);
  const auto hit = hw.get(kv::Key{edge.src, edge.dst});
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(support::get_u64(hit.record, 0), edge.src);
  EXPECT_EQ(support::get_u64(hit.record, 8), edge.dst);

  // A dst beyond the id space cannot exist for this src.
  const auto miss =
      hw.get(kv::Key{edge.src, generator.paper_count() + 1000});
  EXPECT_FALSE(miss.found);
}

TEST_F(RangeScanFixture, InvalidArgumentsRejected) {
  auto sw = make_executor(ExecMode::kSoftware);
  EXPECT_THROW(sw.range_scan(kv::Key{10, 0}, kv::Key{5, 0}, {}),
               ndpgen::Error);
  ExecutorConfig config;  // No result_key_extractor.
  const auto& artifacts = compiled_.get("PaperScan");
  HybridExecutor keyless(db_, artifacts.analyzed,
                         artifacts.design.operators, config);
  EXPECT_THROW(keyless.range_scan(kv::Key{1, 0}, kv::Key{2, 0}, {}),
               ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::ndp
