#include "ndp/predicate.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::ndp {
namespace {

analysis::AnalyzedParser analyzed(const std::string& source,
                                  const std::string& name = "P") {
  const auto module = spec::parse_spec(source);
  return analysis::analyze_parser(module, name);
}

const std::string kRecSpec =
    "typedef struct { uint64_t id; int32_t delta; float score; "
    "/* @string prefix = 4 */ char tag[8]; } Rec;"
    "/* @autogen define parser P with input = Rec, output = Rec */";

std::vector<std::uint8_t> make_rec(std::uint64_t id, std::int32_t delta,
                                   float score, const char tag[8]) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, id);
  support::put_u32(record, static_cast<std::uint32_t>(delta));
  support::put_u32(record, std::bit_cast<std::uint32_t>(score));
  record.insert(record.end(), tag, tag + 8);
  return record;
}

class PredicateFixture : public ::testing::Test {
 protected:
  PredicateFixture()
      : parser_(analyzed(kRecSpec)),
        operators_(hwgen::OperatorSet::standard()) {}

  analysis::AnalyzedParser parser_;
  hwgen::OperatorSet operators_;
};

TEST_F(PredicateFixture, BindResolvesFieldSelectors) {
  const auto bound =
      bind_predicate(parser_.input, operators_, {"id", "eq", 42});
  EXPECT_EQ(bound.field_select, 0u);
  const auto delta =
      bind_predicate(parser_.input, operators_, {"delta", "lt", 0});
  EXPECT_EQ(delta.field_select, 1u);
  const auto prefix =
      bind_predicate(parser_.input, operators_, {"tag_prefix", "ne", 0});
  EXPECT_EQ(prefix.field_select, 3u);
}

TEST_F(PredicateFixture, BindRejectsUnknownFieldOrOperator) {
  EXPECT_THROW(bind_predicate(parser_.input, operators_, {"nope", "eq", 0}),
               ndpgen::Error);
  EXPECT_THROW(
      bind_predicate(parser_.input, operators_, {"id", "almost_eq", 0}),
      ndpgen::Error);
  // String postfixes are not filterable.
  EXPECT_THROW(
      bind_predicate(parser_.input, operators_, {"tag_postfix", "eq", 0}),
      ndpgen::Error);
}

TEST_F(PredicateFixture, SwEvalUnsigned) {
  const auto record = make_rec(100, 5, 1.0f, "abcdefg");
  const auto bound = bind_predicate(parser_.input, operators_,
                                    {"id", "ge", 100});
  EXPECT_TRUE(eval_predicate_sw(parser_.input, operators_, record, bound));
  const auto bound2 =
      bind_predicate(parser_.input, operators_, {"id", "gt", 100});
  EXPECT_FALSE(eval_predicate_sw(parser_.input, operators_, record, bound2));
}

TEST_F(PredicateFixture, SwEvalSigned) {
  const auto record = make_rec(1, -5, 0.0f, "abcdefg");
  const auto bound = bind_predicate(
      parser_.input, operators_,
      {"delta", "lt", 0});  // -5 < 0 only under signed interpretation.
  EXPECT_TRUE(eval_predicate_sw(parser_.input, operators_, record, bound));
}

TEST_F(PredicateFixture, SwEvalFloat) {
  const auto record = make_rec(1, 0, 2.5f, "abcdefg");
  const auto bound = bind_predicate(
      parser_.input, operators_, {"score", "gt", encode_f32(2.0f)});
  EXPECT_TRUE(eval_predicate_sw(parser_.input, operators_, record, bound));
  const auto bound2 = bind_predicate(
      parser_.input, operators_, {"score", "gt", encode_f32(3.0f)});
  EXPECT_FALSE(eval_predicate_sw(parser_.input, operators_, record, bound2));
}

TEST_F(PredicateFixture, ConjunctionPadsWithNop) {
  const auto bound = bind_conjunction(parser_.input, operators_,
                                      {{"id", "lt", 10}}, 3);
  ASSERT_EQ(bound.size(), 3u);
  EXPECT_EQ(bound[1].op_encoding, *operators_.nop_encoding());
  EXPECT_EQ(bound[2].op_encoding, *operators_.nop_encoding());
}

TEST_F(PredicateFixture, ConjunctionTooManyPredicatesFails) {
  EXPECT_THROW(bind_conjunction(parser_.input, operators_,
                                {{"id", "lt", 10}, {"id", "gt", 1}}, 1),
               ndpgen::Error);
}

TEST_F(PredicateFixture, ConjunctionWithoutNopFails) {
  const auto no_nop = hwgen::OperatorSet::from_names({"eq", "lt"});
  EXPECT_THROW(
      bind_conjunction(parser_.input, no_nop, {{"id", "eq", 1}}, 2),
      ndpgen::Error);
  // Exactly filled: fine without nop.
  EXPECT_NO_THROW(
      bind_conjunction(parser_.input, no_nop,
                       {{"id", "eq", 1}, {"id", "lt", 9}}, 2));
}

TEST_F(PredicateFixture, TransformIdentityPreservesBytes) {
  const auto record = make_rec(7, -1, 4.5f, "abcdefg");
  const auto out = transform_sw(parser_, record);
  EXPECT_EQ(out, record);
}

TEST(TransformSw, ProjectionDropsAndReorders) {
  const auto parser = analyzed(
      "/* @autogen define parser P with input = P3, output = P2, "
      "mapping = { output.x = input.y, output.y = input.z } */"
      "typedef struct { uint32_t x, y, z; } P3;"
      "typedef struct { uint32_t x, y; } P2;");
  std::vector<std::uint8_t> record;
  support::put_u32(record, 1);
  support::put_u32(record, 2);
  support::put_u32(record, 3);
  const auto out = transform_sw(parser, record);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(support::get_u32(out, 0), 2u);
  EXPECT_EQ(support::get_u32(out, 4), 3u);
}

TEST(EncodeHelpers, FloatBitPatterns) {
  EXPECT_EQ(encode_f32(1.0f), 0x3f800000u);
  EXPECT_EQ(encode_f64(1.0), 0x3ff0000000000000ull);
}

TEST_F(PredicateFixture, SwEvalWrongRecordSizeFails) {
  const auto bound = bind_predicate(parser_.input, operators_, {"id", "eq", 1});
  EXPECT_THROW(eval_predicate_sw(parser_.input, operators_,
                                 std::vector<std::uint8_t>(3, 0), bound),
               ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::ndp
