// Executor-level tests of the aggregation extension and the classical
// host path.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

class AggExecutorFixture : public ::testing::Test {
 protected:
  AggExecutorFixture()
      : framework_(agg_options()),
        compiled_(framework_.compile(workload::pubgraph_spec_source())),
        generator_(workload::PubGraphConfig{.scale_divisor = 8192}),
        db_(cosmos_, db_config()) {
    loaded_ = workload::load_papers(db_, generator_);
    cosmos_.attach_pe(compiled_.get("PaperScan").design);
  }

  static core::FrameworkOptions agg_options() {
    core::FrameworkOptions options;
    options.hw.enable_aggregation = true;
    return options;
  }

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  HybridExecutor make_executor(ExecMode mode) {
    ExecutorConfig config;
    config.mode = mode;
    if (mode == ExecMode::kHardware) config.pe_indices = {0};
    config.result_key_extractor = workload::paper_result_key;
    const auto& artifacts = compiled_.get("PaperScan");
    return HybridExecutor(db_, artifacts.analyzed,
                          artifacts.design.operators, config);
  }

  /// Reference aggregate straight from the generator.
  template <typename Fold>
  std::uint64_t reference(std::uint32_t year_cutoff, Fold fold,
                          std::uint64_t init) const {
    std::uint64_t acc = init;
    for (std::uint64_t i = 0; i < loaded_; ++i) {
      const auto paper = generator_.paper(i);
      if (paper.year < year_cutoff) acc = fold(acc, paper);
    }
    return acc;
  }

  core::Framework framework_;
  core::CompileResult compiled_;
  workload::PubGraphGenerator generator_;
  platform::CosmosPlatform cosmos_;
  kv::NKV db_{cosmos_, db_config()};
  std::uint64_t loaded_ = 0;
};

TEST_F(AggExecutorFixture, CountMatchesReference) {
  const auto expected = reference(
      1990, [](std::uint64_t acc, const workload::PaperRecord&) {
        return acc + 1;
      },
      0);
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto hw_stats =
      hw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount, "year");
  const auto sw_stats =
      sw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount, "year");
  EXPECT_EQ(hw_stats.raw_result, expected);
  EXPECT_EQ(sw_stats.raw_result, expected);
  EXPECT_EQ(hw_stats.folded, expected);
}

TEST_F(AggExecutorFixture, SumMatchesReference) {
  const auto expected = reference(
      1990,
      [](std::uint64_t acc, const workload::PaperRecord& paper) {
        return acc + paper.n_cited;
      },
      0);
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  EXPECT_EQ(hw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kSum,
                         "n_cited")
                .raw_result,
            expected);
  EXPECT_EQ(sw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kSum,
                         "n_cited")
                .raw_result,
            expected);
}

TEST_F(AggExecutorFixture, MinMaxMatchReference) {
  auto hw = make_executor(ExecMode::kHardware);
  const auto min_expected = reference(
      2100,
      [](std::uint64_t acc, const workload::PaperRecord& paper) {
        return std::min<std::uint64_t>(acc, paper.year);
      },
      ~std::uint64_t{0});
  const auto max_expected = reference(
      2100,
      [](std::uint64_t acc, const workload::PaperRecord& paper) {
        return std::max<std::uint64_t>(acc, paper.year);
      },
      0);
  EXPECT_EQ(hw.aggregate({}, hwgen::AggOp::kMin, "year").raw_result,
            min_expected);
  EXPECT_EQ(hw.aggregate({}, hwgen::AggOp::kMax, "year").raw_result,
            max_expected);
}

TEST_F(AggExecutorFixture, OnlyRegistersCrossTheLink) {
  auto hw = make_executor(ExecMode::kHardware);
  const auto stats =
      hw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount, "year");
  EXPECT_EQ(stats.result_bytes, 16u);
}

TEST_F(AggExecutorFixture, ScanAfterAggregateResetsUnit) {
  auto hw = make_executor(ExecMode::kHardware);
  (void)hw.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kCount, "year");
  // A scan on the same PE must pass tuples through again.
  const auto scan_stats = hw.scan({{"year", "lt", 1990}});
  EXPECT_GT(scan_stats.results, 0u);
}

TEST_F(AggExecutorFixture, RejectsBadInputs) {
  auto hw = make_executor(ExecMode::kHardware);
  EXPECT_THROW(hw.aggregate({}, hwgen::AggOp::kNone, "year"), ndpgen::Error);
  EXPECT_THROW(hw.aggregate({}, hwgen::AggOp::kSum, "title_postfix"),
               ndpgen::Error);
  EXPECT_THROW(hw.aggregate({}, hwgen::AggOp::kSum, "missing"),
               ndpgen::Error);
}

TEST_F(AggExecutorFixture, MultiPeAggregateAgrees) {
  cosmos_.attach_pe(compiled_.get("PaperScan").design);  // Second PE.
  ExecutorConfig config;
  config.mode = ExecMode::kHardware;
  config.pe_indices = {0, 1};
  const auto& artifacts = compiled_.get("PaperScan");
  HybridExecutor multi(db_, artifacts.analyzed, artifacts.design.operators,
                       config);
  auto single = make_executor(ExecMode::kHardware);
  const auto multi_stats =
      multi.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kSum, "n_cited");
  const auto single_stats =
      single.aggregate({{"year", "lt", 1990}}, hwgen::AggOp::kSum,
                       "n_cited");
  EXPECT_EQ(multi_stats.raw_result, single_stats.raw_result);
  EXPECT_EQ(multi_stats.folded, single_stats.folded);
  EXPECT_LE(multi_stats.elapsed,
            single_stats.elapsed + single_stats.elapsed / 10);
}

// --- Classical host path -------------------------------------------------

TEST_F(AggExecutorFixture, HostClassicScanAgreesAndIsSlower) {
  auto host = make_executor(ExecMode::kHostClassic);
  auto hw = make_executor(ExecMode::kHardware);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto host_stats = host.scan({{"year", "lt", 1990}});
  const auto hw_stats = hw.scan({{"year", "lt", 1990}});
  const auto sw_stats = sw.scan({{"year", "lt", 1990}});
  EXPECT_EQ(host_stats.results, hw_stats.results);
  EXPECT_EQ(host_stats.results, sw_stats.results);
  // The paper's premise: NDP avoids the I/O bottleneck.
  EXPECT_GT(host_stats.elapsed, hw_stats.elapsed);
  EXPECT_GT(host_stats.elapsed, sw_stats.elapsed);
}

TEST_F(AggExecutorFixture, HostClassicGetAgrees) {
  auto host = make_executor(ExecMode::kHostClassic);
  auto sw = make_executor(ExecMode::kSoftware);
  const auto host_stats = host.get(kv::Key{77, 0});
  const auto sw_stats = sw.get(kv::Key{77, 0});
  ASSERT_TRUE(host_stats.found);
  ASSERT_TRUE(sw_stats.found);
  EXPECT_EQ(host_stats.record, sw_stats.record);
  EXPECT_GT(host_stats.elapsed, sw_stats.elapsed);
}

}  // namespace
}  // namespace ndpgen::ndp
