// Exact-vs-fast simulation equivalence at the executor level.
//
// The load-bearing acceptance of the event-driven kernel: for every
// dataset, shard count and fault profile, SimMode::kFast must produce
// byte-identical results, stats and trace bytes to SimMode::kExact —
// fast-forwarding buys wall-clock time only, never visibility.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "hwsim/kernel.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "obs/trace.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

constexpr std::uint64_t kScale = 2048;

struct RunOutput {
  std::vector<std::vector<std::uint8_t>> results;
  ScanStats stats;
  std::string trace_json;
};

class SimModeEquivalenceFixture : public ::testing::Test {
 protected:
  SimModeEquivalenceFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())) {}

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  RunOutput run(hwsim::SimMode sim_mode, std::uint32_t pes,
                const fault::FaultProfile& profile = {}) {
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = profile;
    cosmos_config.sim_mode = sim_mode;
    platform::CosmosPlatform cosmos(cosmos_config);
    obs::TraceSink sink;
    cosmos.observability().trace = &sink;
    kv::NKV db(cosmos, db_config());
    const workload::PubGraphGenerator generator(
        workload::PubGraphConfig{.scale_divisor = kScale});
    workload::load_papers(db, generator);

    ExecutorConfig config;
    config.mode = ExecMode::kHardware;
    config.num_pes = pes;
    config.sim_mode = sim_mode;
    config.result_key_extractor = workload::paper_result_key;
    config.pe_indices = {
        framework_.instantiate(compiled_, "PaperScan", cosmos)};
    const auto& artifacts = compiled_.get("PaperScan");
    HybridExecutor executor(db, artifacts.analyzed,
                            artifacts.design.operators, config);
    RunOutput out;
    out.stats = executor.scan({{"year", "lt", 1990}}, &out.results);
    std::ostringstream trace;
    sink.write_json(trace);
    out.trace_json = trace.str();
    return out;
  }

  static void expect_identical(const RunOutput& exact,
                               const RunOutput& fast) {
    EXPECT_EQ(exact.results, fast.results);
    EXPECT_EQ(exact.trace_json, fast.trace_json);
    EXPECT_EQ(exact.stats.blocks, fast.stats.blocks);
    EXPECT_EQ(exact.stats.tuples_scanned, fast.stats.tuples_scanned);
    EXPECT_EQ(exact.stats.tuples_matched, fast.stats.tuples_matched);
    EXPECT_EQ(exact.stats.results, fast.stats.results);
    EXPECT_EQ(exact.stats.elapsed, fast.stats.elapsed);
    EXPECT_EQ(exact.stats.flash_done, fast.stats.flash_done);
    EXPECT_EQ(exact.stats.pe_phase_cycles, fast.stats.pe_phase_cycles);
    EXPECT_EQ(exact.stats.phases.total(), fast.stats.phases.total());
    EXPECT_EQ(exact.stats.blocks_retried, fast.stats.blocks_retried);
    EXPECT_EQ(exact.stats.blocks_degraded_to_software,
              fast.stats.blocks_degraded_to_software);
    EXPECT_EQ(exact.stats.uncorrectable_blocks,
              fast.stats.uncorrectable_blocks);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
};

TEST_F(SimModeEquivalenceFixture, SinglePeScanIsByteIdentical) {
  expect_identical(run(hwsim::SimMode::kExact, 1),
                   run(hwsim::SimMode::kFast, 1));
}

TEST_F(SimModeEquivalenceFixture, ShardedScanIsByteIdentical) {
  expect_identical(run(hwsim::SimMode::kExact, 4),
                   run(hwsim::SimMode::kFast, 4));
}

TEST_F(SimModeEquivalenceFixture, FaultedScanIsByteIdentical) {
  // Faults force structural-event boundaries (retries, PE hangs caught by
  // the watchdog, firmware degradation to software): the fast kernel must
  // drop back to exact replay at each and still match byte for byte.
  auto parsed = fault::FaultProfile::parse(
      "seed=11,read_ber=4e-4,silent_rate=0.01,pe_fault_rate=0.2");
  const fault::FaultProfile profile = std::move(parsed).value();
  expect_identical(run(hwsim::SimMode::kExact, 2, profile),
                   run(hwsim::SimMode::kFast, 2, profile));
}

}  // namespace
}  // namespace ndpgen::ndp
