// Multi-PE sharded scan engine: determinism matrix and scaling checks.
//
// The hard invariant under test: for a fixed dataset and predicate, the
// RESULT SET is byte-identical for every PE count, and for a fixed PE
// count every stat, trace byte and fault outcome is identical for every
// host thread count (threads only buy wall-clock time, never visibility).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::ndp {
namespace {

constexpr std::uint64_t kScale = 2048;

/// A fault profile that exercises retries, recovery and PE hangs while
/// staying small enough that every block still completes.
fault::FaultProfile seeded_profile() {
  auto parsed = fault::FaultProfile::parse(
      "seed=11,read_ber=4e-4,silent_rate=0.01,pe_fault_rate=0.2");
  return std::move(parsed).value();
}

/// One full run: fresh platform + paper store + PaperScan PE, a scan with
/// the given shard/thread configuration, and every observable captured.
struct RunOutput {
  std::vector<std::vector<std::uint8_t>> results;
  ScanStats stats;
  std::string trace_json;
};

class MultiPeScanFixture : public ::testing::Test {
 protected:
  MultiPeScanFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())) {}

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  RunOutput run(ExecMode mode, std::uint32_t pes, std::uint32_t threads,
                const fault::FaultProfile& profile = {}) {
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = profile;
    platform::CosmosPlatform cosmos(cosmos_config);
    obs::TraceSink sink;
    cosmos.observability().trace = &sink;
    kv::NKV db(cosmos, db_config());
    const workload::PubGraphGenerator generator(
        workload::PubGraphConfig{.scale_divisor = kScale});
    workload::load_papers(db, generator);

    ExecutorConfig config;
    config.mode = mode;
    config.num_pes = pes;
    config.pe_threads = threads;
    config.result_key_extractor = workload::paper_result_key;
    if (mode == ExecMode::kHardware) {
      config.pe_indices = {
          framework_.instantiate(compiled_, "PaperScan", cosmos)};
    }
    const auto& artifacts = compiled_.get("PaperScan");
    HybridExecutor executor(db, artifacts.analyzed,
                            artifacts.design.operators, config);
    RunOutput out;
    out.stats = executor.scan({{"year", "lt", 1990}}, &out.results);
    std::ostringstream trace;
    sink.write_json(trace);
    out.trace_json = trace.str();
    return out;
  }

  static void expect_same_stats(const ScanStats& a, const ScanStats& b) {
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.tuples_scanned, b.tuples_scanned);
    EXPECT_EQ(a.tuples_matched, b.tuples_matched);
    EXPECT_EQ(a.results, b.results);
    EXPECT_EQ(a.result_bytes, b.result_bytes);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.flash_done, b.flash_done);
    EXPECT_EQ(a.shards, b.shards);
    EXPECT_EQ(a.pe_phase_cycles, b.pe_phase_cycles);
    EXPECT_EQ(a.blocks_retried, b.blocks_retried);
    EXPECT_EQ(a.blocks_degraded_to_software, b.blocks_degraded_to_software);
    EXPECT_EQ(a.uncorrectable_blocks, b.uncorrectable_blocks);
    EXPECT_EQ(a.blocks_via_software, b.blocks_via_software);
    EXPECT_EQ(a.phases.ns, b.phases.ns);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
};

TEST_F(MultiPeScanFixture, ResultsByteIdenticalAcrossPeCounts) {
  const RunOutput reference = run(ExecMode::kHardware, 1, 0);
  ASSERT_GT(reference.results.size(), 0u);
  for (const std::uint32_t pes : {2u, 4u}) {
    const RunOutput sharded = run(ExecMode::kHardware, pes, 0);
    EXPECT_EQ(sharded.results, reference.results) << "pes=" << pes;
    EXPECT_EQ(sharded.stats.results, reference.stats.results);
    EXPECT_EQ(sharded.stats.tuples_scanned, reference.stats.tuples_scanned);
    EXPECT_EQ(sharded.stats.tuples_matched, reference.stats.tuples_matched);
    EXPECT_EQ(sharded.stats.shards, pes);
  }
}

TEST_F(MultiPeScanFixture, EverythingIdenticalAcrossThreadCounts) {
  // Same shard count, different host thread counts: results, stats AND
  // trace bytes must match — the thread count is invisible to the model.
  for (const std::uint32_t pes : {2u, 4u}) {
    const RunOutput one = run(ExecMode::kHardware, pes, 1);
    const RunOutput many = run(ExecMode::kHardware, pes, 4);
    EXPECT_EQ(one.results, many.results) << "pes=" << pes;
    expect_same_stats(one.stats, many.stats);
    EXPECT_EQ(one.trace_json, many.trace_json) << "pes=" << pes;
  }
}

TEST_F(MultiPeScanFixture, FaultOutcomesIdenticalAcrossThreadCounts) {
  const auto profile = seeded_profile();
  const RunOutput one = run(ExecMode::kHardware, 4, 1, profile);
  const RunOutput many = run(ExecMode::kHardware, 4, 4, profile);
  expect_same_stats(one.stats, many.stats);
  EXPECT_EQ(one.results, many.results);
  EXPECT_EQ(one.trace_json, many.trace_json);
  // Degraded media still returns exactly the fault-free result set.
  const RunOutput clean = run(ExecMode::kHardware, 4, 0);
  EXPECT_EQ(one.results, clean.results);
}

TEST_F(MultiPeScanFixture, FaultedShardedMatchesFaultedSerialResults) {
  const auto profile = seeded_profile();
  const RunOutput serial = run(ExecMode::kHardware, 1, 0, profile);
  const RunOutput sharded = run(ExecMode::kHardware, 4, 0, profile);
  EXPECT_EQ(sharded.results, serial.results);
  EXPECT_EQ(sharded.stats.results, serial.stats.results);
  // Media faults are drawn on the (shared, serial) flash path, so their
  // counts cannot depend on the shard count; only PE-hang injection moves
  // to per-shard streams.
  EXPECT_EQ(sharded.stats.blocks_retried, serial.stats.blocks_retried);
  EXPECT_EQ(sharded.stats.uncorrectable_blocks,
            serial.stats.uncorrectable_blocks);
}

TEST_F(MultiPeScanFixture, PePhaseCyclesScaleWithShards) {
  const RunOutput serial = run(ExecMode::kHardware, 1, 0);
  const RunOutput sharded = run(ExecMode::kHardware, 4, 0);
  ASSERT_GT(serial.stats.pe_phase_cycles, 0u);
  // Acceptance bar: >= 2.5x lower critical-path PE cycles at 4 shards.
  EXPECT_LE(sharded.stats.pe_phase_cycles * 5,
            serial.stats.pe_phase_cycles * 2)
      << "pes=4 critical path " << sharded.stats.pe_phase_cycles
      << " vs pes=1 " << serial.stats.pe_phase_cycles;
  // And the end-to-end virtual time never regresses.
  EXPECT_LE(sharded.stats.elapsed, serial.stats.elapsed);
}

TEST_F(MultiPeScanFixture, SoftwareModeShardsAgreeToo) {
  // num_pes also shards the ARM-software pipeline; the result contract is
  // the same even though no PE bench is involved.
  const RunOutput serial = run(ExecMode::kSoftware, 1, 0);
  const RunOutput sharded = run(ExecMode::kSoftware, 4, 0);
  EXPECT_EQ(sharded.results, serial.results);
  EXPECT_EQ(sharded.stats.results, serial.stats.results);
  EXPECT_EQ(sharded.stats.shards, 4u);
}

TEST_F(MultiPeScanFixture, PhaseAttributionSumsToElapsedAcrossMatrix) {
  // The executor's device-side attribution must account for EVERY
  // virtual nanosecond of the scan — no overlap, no gap — at any
  // pes/threads combination, and stay byte-stable across thread counts.
  for (const std::uint32_t pes : {1u, 2u, 4u}) {
    const RunOutput one = run(ExecMode::kHardware, pes, 1);
    ASSERT_GT(one.stats.elapsed, 0u);
    EXPECT_EQ(one.stats.phases.total(), one.stats.elapsed) << "pes=" << pes;
    // The device never spends time in host-side queueing.
    EXPECT_EQ(one.stats.phases[obs::RequestPhase::kQueueing], 0u);
    EXPECT_GT(one.stats.phases[obs::RequestPhase::kFlash], 0u);
    const RunOutput many = run(ExecMode::kHardware, pes, 4);
    EXPECT_EQ(one.stats.phases.ns, many.stats.phases.ns) << "pes=" << pes;
  }
}

TEST_F(MultiPeScanFixture, SoftwarePhaseAttributionAlsoSumsToElapsed) {
  const RunOutput sw = run(ExecMode::kSoftware, 2, 0);
  ASSERT_GT(sw.stats.elapsed, 0u);
  EXPECT_EQ(sw.stats.phases.total(), sw.stats.elapsed);
}

TEST_F(MultiPeScanFixture, HostClassicIgnoresNumPes) {
  const RunOutput run_a = run(ExecMode::kHostClassic, 4, 0);
  EXPECT_EQ(run_a.stats.shards, 1u);
  ASSERT_GT(run_a.results.size(), 0u);
}

}  // namespace
}  // namespace ndpgen::ndp
