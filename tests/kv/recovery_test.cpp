// Device-restart recovery: manifest snapshot -> fresh store -> identical
// behavior against the (persistent) flash content.
#include <gtest/gtest.h>

#include "kv/db.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key,
                                      std::uint64_t value) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, value);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

DBConfig config() {
  DBConfig result;
  result.record_bytes = 16;
  result.extractor = extract;
  result.auto_flush = false;
  result.auto_compact = false;
  return result;
}

TEST(Recovery, RestoredStoreServesReadsAndWrites) {
  platform::CosmosPlatform cosmos;
  std::vector<std::uint8_t> manifest;
  {
    NKV db(cosmos, config());
    for (std::uint64_t key = 0; key < 5000; ++key) {
      db.put(make_record(key, key * 2));
    }
    db.flush();
    db.del(Key{100, 0});
    db.flush();
    manifest = db.snapshot_manifest();
  }  // "Power loss": the in-DRAM store object is gone; flash survives.

  NKV restored(cosmos, config());
  restored.restore_manifest(manifest);
  EXPECT_EQ(restored.version().total_records(), 5000u);
  // Reads see the pre-restart state, including the deletion.
  const auto hit = restored.get(Key{4321, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 4321u * 2);
  EXPECT_FALSE(restored.get(Key{100, 0}).has_value());

  // New writes allocate fresh pages (no collision with restored data)
  // and shadow the old versions.
  restored.put(make_record(4321, 999));
  restored.flush();
  const auto updated = restored.get(Key{4321, 0});
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(support::get_u64(*updated, 8), 999u);
  // The pre-restart records remain intact underneath.
  EXPECT_TRUE(restored.get(Key{4999, 0}).has_value());
}

TEST(Recovery, SequenceAndIdCountersResume) {
  platform::CosmosPlatform cosmos;
  std::vector<std::uint8_t> manifest;
  SequenceNumber last_seq = 0;
  {
    NKV db(cosmos, config());
    for (std::uint64_t key = 0; key < 100; ++key) {
      db.put(make_record(key, 1));
    }
    db.flush();
    last_seq = db.last_sequence();
    manifest = db.snapshot_manifest();
  }
  NKV restored(cosmos, config());
  restored.restore_manifest(manifest);
  EXPECT_GE(restored.last_sequence(), last_seq);
  // A post-restart flush must be recognized as NEWER than restored data.
  restored.put(make_record(50, 777));
  restored.flush();
  restored.compact();
  const auto hit = restored.get(Key{50, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 777u);
}

TEST(Recovery, RequiresEmptyMemtable) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, config());
  db.put(make_record(1, 1));
  db.flush();
  const auto manifest = db.snapshot_manifest();
  db.put(make_record(2, 2));  // Unflushed.
  EXPECT_THROW(db.restore_manifest(manifest), ndpgen::Error);
}

TEST(Recovery, RejectsSchemaMismatch) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, config());
  db.put(make_record(1, 1));
  db.flush();
  const auto manifest = db.snapshot_manifest();

  DBConfig other = config();
  other.record_bytes = 32;
  other.extractor = [](std::span<const std::uint8_t> record) {
    return Key{support::get_u64(record, 0), 0};
  };
  NKV wrong(cosmos, other);
  EXPECT_THROW(wrong.restore_manifest(manifest), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::kv
