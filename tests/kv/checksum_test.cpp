#include <gtest/gtest.h>

#include "fault/fault_profile.hpp"
#include "kv/db.hpp"
#include "kv/manifest.hpp"
#include "kv/sst_reader.hpp"
#include "support/bytes.hpp"
#include "support/crc32c.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::kv {
namespace {

kv::DBConfig paper_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

platform::CosmosConfig faulted_config(double silent_rate) {
  fault::FaultProfile profile;
  profile.seed = 7;
  profile.silent_corruption_rate = silent_rate;
  platform::CosmosConfig config;
  config.fault = profile;
  return config;
}

std::shared_ptr<SSTable> first_table(const NKV& db) {
  const auto tables = db.version().recency_ordered();
  EXPECT_FALSE(tables.empty());
  return tables.front();
}

TEST(Checksum, BuilderStampsEveryBlockHandle) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, paper_config());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  workload::load_papers(db, generator);
  const auto table = first_table(db);
  SSTReader reader(*table, cosmos.flash(), workload::paper_key);
  for (std::uint32_t b = 0; b < table->blocks.size(); ++b) {
    ASSERT_NE(table->blocks[b].crc32c, 0u);
    EXPECT_EQ(table->blocks[b].crc32c, support::crc32c(reader.read_block(b)));
  }
}

TEST(Checksum, CheckedReadPassesOnCleanMedia) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, paper_config());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  workload::load_papers(db, generator);
  const auto table = first_table(db);
  SSTReader reader(*table, cosmos.flash(), workload::paper_key);
  const auto checked = reader.read_block_checked(0);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked.value(), reader.read_block(0));
}

TEST(Checksum, SilentCorruptionCaughtAndRecovered) {
  // silent_rate=1 -> every timed page read ECC-miscorrects. The checked
  // assembly must fail the block CRC; the recovery re-read must deliver
  // the clean content.
  platform::CosmosPlatform cosmos(faulted_config(1.0));
  NKV db(cosmos, paper_config());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  workload::load_papers(db, generator);
  const auto table = first_table(db);
  SSTReader reader(*table, cosmos.flash(), workload::paper_key);

  // Timed reads mark the pages as silently corrupted.
  for (const std::uint64_t page : table->blocks[0].flash_pages) {
    cosmos.flash().read_page_checked(
        cosmos.flash().delinearize(page),
        [](const platform::PageReadResult& r) {
          EXPECT_TRUE(r.silent_corruption);
        });
  }
  cosmos.events().run();
  EXPECT_GT(cosmos.flash().silent_corruptions(), 0u);

  const auto checked = reader.read_block_checked(0);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().kind, ErrorKind::kStorage);
  EXPECT_NE(checked.status().message.find("checksum"), std::string::npos);

  const auto recovered = reader.reread_block_recovered(0);
  EXPECT_EQ(support::crc32c(recovered), table->blocks[0].crc32c);
}

TEST(Checksum, CorruptionMarksAreConsumedOnce) {
  platform::CosmosPlatform cosmos(faulted_config(1.0));
  NKV db(cosmos, paper_config());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  workload::load_papers(db, generator);
  const auto table = first_table(db);
  SSTReader reader(*table, cosmos.flash(), workload::paper_key);
  for (const std::uint64_t page : table->blocks[0].flash_pages) {
    cosmos.flash().read_page_checked(cosmos.flash().delinearize(page),
                                     [](const platform::PageReadResult&) {});
  }
  cosmos.events().run();
  ASSERT_FALSE(reader.read_block_checked(0).ok());
  // The failed verification consumed the marks; a second checked read of
  // the same block sees clean content again.
  EXPECT_TRUE(reader.read_block_checked(0).ok());
}

TEST(Checksum, ManifestRoundTripPreservesCrc) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, paper_config());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  workload::load_papers(db, generator);

  const auto encoded = encode_manifest(db.version());
  const Version decoded = decode_manifest(encoded);
  const auto before = db.version().recency_ordered();
  const auto after = decoded.recency_ordered();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t t = 0; t < before.size(); ++t) {
    ASSERT_EQ(before[t]->blocks.size(), after[t]->blocks.size());
    for (std::size_t b = 0; b < before[t]->blocks.size(); ++b) {
      EXPECT_NE(after[t]->blocks[b].crc32c, 0u);
      EXPECT_EQ(before[t]->blocks[b].crc32c, after[t]->blocks[b].crc32c);
    }
  }
}

TEST(Checksum, VersionOneManifestStillDecodes) {
  // A hand-built empty version-1 manifest (magic, version, 7 empty
  // levels). Pre-checksum manifests must stay readable; their handles get
  // crc32c = 0 = "unverified".
  std::vector<std::uint8_t> bytes;
  support::put_u32(bytes, 0x6e4b564d);  // "nKVM"
  support::put_u32(bytes, 1);
  for (std::uint32_t level = 1; level <= kMaxLevels; ++level) {
    support::put_varint(bytes, 0);
  }
  const Version version = decode_manifest(bytes);
  EXPECT_TRUE(version.recency_ordered().empty());
}

TEST(Checksum, FutureManifestVersionRejected) {
  std::vector<std::uint8_t> bytes;
  support::put_u32(bytes, 0x6e4b564d);
  support::put_u32(bytes, 99);
  EXPECT_THROW((void)decode_manifest(bytes), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::kv
