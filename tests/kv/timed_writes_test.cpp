// Tests of the timed write path (flush/compaction flash-I/O accounting).
#include <gtest/gtest.h>

#include "kv/db.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, key);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

DBConfig timed_config() {
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  config.auto_compact = false;
  config.timed_writes = true;
  config.compaction.l1_trigger = 1;
  config.compaction.output_sst_blocks = 4;
  return config;
}

TEST(TimedWrites, FlushChargesProgramTime) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, timed_config());
  for (std::uint64_t key = 0; key < 3000; ++key) db.put(make_record(key));
  const auto t0 = cosmos.events().now();
  db.flush();
  const auto elapsed = cosmos.events().now() - t0;
  // 3000 * 16 B -> 2 data blocks -> 4 pages; at least one tPROG must have
  // been charged, and programs happen on parallel LUNs, so the total is
  // bounded by pages * (transfer + tPROG).
  const auto& timing = cosmos.timing();
  EXPECT_GE(elapsed, timing.flash_program_page_latency);
  EXPECT_LE(elapsed, 4 * (cosmos.flash().page_transfer_time() +
                          timing.flash_program_page_latency));
  EXPECT_EQ(cosmos.flash().pages_programmed(), 4u);
}

TEST(TimedWrites, UntimedFlushIsFree) {
  platform::CosmosPlatform cosmos;
  auto config = timed_config();
  config.timed_writes = false;
  NKV db(cosmos, config);
  for (std::uint64_t key = 0; key < 3000; ++key) db.put(make_record(key));
  const auto t0 = cosmos.events().now();
  db.flush();
  EXPECT_EQ(cosmos.events().now(), t0);
}

TEST(TimedWrites, CompactionChargesReadAndProgram) {
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, timed_config());
  for (std::uint64_t key = 0; key < 3000; ++key) db.put(make_record(key));
  db.flush();
  for (std::uint64_t key = 1500; key < 4500; ++key) db.put(make_record(key));
  db.flush();
  cosmos.flash().reset_stats();
  const auto t0 = cosmos.events().now();
  EXPECT_GT(db.compact(), 0u);
  const auto elapsed = cosmos.events().now() - t0;
  EXPECT_GT(elapsed, cosmos.timing().flash_program_page_latency);
  // All input pages read, all output pages programmed.
  EXPECT_GT(cosmos.flash().pages_read(), 0u);
  EXPECT_GT(cosmos.flash().pages_programmed(), 0u);
  // Content still correct afterwards.
  EXPECT_TRUE(db.get(Key{4499, 0}).has_value());
  EXPECT_TRUE(db.get(Key{0, 0}).has_value());
  EXPECT_EQ(db.version().total_records(), 4500u);
}

TEST(TimedWrites, WriteAmplificationVisible) {
  // Overlapping flushes force the merge to rewrite old data: pages
  // programmed by compaction exceed the new data's page count.
  platform::CosmosPlatform cosmos;
  NKV db(cosmos, timed_config());
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t key = 0; key < 3000; ++key) {
      db.put(make_record(key));  // Same keys every round: full overlap.
    }
    db.flush();
    db.compact();
  }
  // 4 rounds x 2 blocks of fresh data, but compaction rewrote the whole
  // key range every round.
  EXPECT_GT(cosmos.flash().pages_programmed(), 4u * 4u);
}

}  // namespace
}  // namespace ndpgen::kv
