#include "kv/skiplist.hpp"

#include <gtest/gtest.h>

#include <map>

#include "kv/key.hpp"
#include "support/rng.hpp"

namespace ndpgen::kv {
namespace {

TEST(SkipList, EmptyInitially) {
  SkipList<int, int> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.find(1), nullptr);
  EXPECT_FALSE(list.begin().valid());
}

TEST(SkipList, InsertAndFind) {
  SkipList<int, std::string> list;
  list.insert(2, "two");
  list.insert(1, "one");
  list.insert(3, "three");
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.find(2), nullptr);
  EXPECT_EQ(*list.find(2), "two");
  EXPECT_EQ(list.find(4), nullptr);
  EXPECT_TRUE(list.contains(1));
}

TEST(SkipList, InsertOverwrites) {
  SkipList<int, int> list;
  list.insert(1, 10);
  list.insert(1, 20);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(*list.find(1), 20);
}

TEST(SkipList, IterationIsSorted) {
  SkipList<int, int> list;
  for (int value : {5, 3, 9, 1, 7}) list.insert(value, value * 10);
  std::vector<int> keys;
  for (auto it = list.begin(); it.valid(); it.next()) {
    keys.push_back(it.key());
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(SkipList, SeekPositionsAtLowerBound) {
  SkipList<int, int> list;
  for (int value : {10, 20, 30}) list.insert(value, value);
  auto it = list.begin();
  it.seek(&list, 15);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 20);
  it.seek(&list, 30);
  EXPECT_EQ(it.key(), 30);
  it.seek(&list, 31);
  EXPECT_FALSE(it.valid());
}

TEST(SkipList, WorksWithCompositeKeys) {
  SkipList<Key, int> list;
  list.insert(Key{1, 2}, 12);
  list.insert(Key{1, 1}, 11);
  list.insert(Key{0, 9}, 9);
  std::vector<Key> keys;
  for (auto it = list.begin(); it.valid(); it.next()) keys.push_back(it.key());
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (Key{0, 9}));
  EXPECT_EQ(keys[1], (Key{1, 1}));
  EXPECT_EQ(keys[2], (Key{1, 2}));
}

TEST(SkipList, RandomizedAgainstStdMap) {
  SkipList<std::uint64_t, std::uint64_t> list;
  std::map<std::uint64_t, std::uint64_t> reference;
  support::Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.below(1000);
    const std::uint64_t value = rng();
    list.insert(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(list.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(list.find(key), nullptr) << key;
    EXPECT_EQ(*list.find(key), value);
  }
  // Iteration order matches the sorted reference.
  auto it = list.begin();
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(it.key(), key);
    it.next();
  }
  EXPECT_FALSE(it.valid());
}

TEST(SkipList, DeterministicAcrossSeeds) {
  // Level assignment is seeded: same inserts -> same structure queries.
  SkipList<int, int> a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    a.insert(i, i);
    b.insert(i, i);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*a.find(i), *b.find(i));
  }
}

}  // namespace
}  // namespace ndpgen::kv
