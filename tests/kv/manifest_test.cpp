#include "kv/manifest.hpp"

#include <gtest/gtest.h>

#include "kv/db.hpp"
#include "kv/sst_reader.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, key * 5);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

class ManifestFixture : public ::testing::Test {
 protected:
  ManifestFixture() : db_(cosmos_, config()) {
    for (std::uint64_t key = 0; key < 4000; ++key) db_.put(make_record(key));
    db_.flush();
    db_.del(Key{17, 0});
    db_.flush();
  }

  static DBConfig config() {
    DBConfig result;
    result.record_bytes = 16;
    result.extractor = extract;
    result.auto_flush = false;
    result.auto_compact = false;
    return result;
  }

  platform::CosmosPlatform cosmos_;
  NKV db_{cosmos_, config()};
};

TEST_F(ManifestFixture, RoundTripPreservesEverything) {
  const Version& original = db_.version();
  const auto bytes = encode_manifest(original);
  const Version restored = decode_manifest(bytes);

  EXPECT_EQ(restored.total_ssts(), original.total_ssts());
  EXPECT_EQ(restored.total_records(), original.total_records());
  EXPECT_EQ(restored.total_data_bytes(), original.total_data_bytes());
  for (std::uint32_t level = 1; level <= kMaxLevels; ++level) {
    ASSERT_EQ(restored.level(level).size(), original.level(level).size());
    for (std::size_t i = 0; i < original.level(level).size(); ++i) {
      const auto& a = *original.level(level)[i];
      const auto& b = *restored.level(level)[i];
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.min_key, b.min_key);
      EXPECT_EQ(a.max_key, b.max_key);
      EXPECT_EQ(a.min_seq, b.min_seq);
      EXPECT_EQ(a.max_seq, b.max_seq);
      ASSERT_EQ(a.blocks.size(), b.blocks.size());
      for (std::size_t block = 0; block < a.blocks.size(); ++block) {
        EXPECT_EQ(a.blocks[block].flash_pages, b.blocks[block].flash_pages);
        EXPECT_EQ(a.blocks[block].first_key, b.blocks[block].first_key);
        EXPECT_EQ(a.blocks[block].last_key, b.blocks[block].last_key);
        EXPECT_EQ(a.blocks[block].record_count, b.blocks[block].record_count);
      }
      ASSERT_EQ(a.tombstones.size(), b.tombstones.size());
      EXPECT_EQ(a.bloom.words(), b.bloom.words());
    }
  }
}

TEST_F(ManifestFixture, RestoredVersionReadsFlashContent) {
  // "Recovery": a fresh Version decoded from the manifest can serve reads
  // against the same flash device.
  const auto bytes = encode_manifest(db_.version());
  const Version restored = decode_manifest(bytes);
  const auto& table = restored.level(1).front();
  SSTReader reader(*table, cosmos_.flash(), extract);
  const auto hit = reader.get(Key{123, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 123u * 5);
  // Tombstone metadata survived too.
  bool tombstone_found = false;
  for (const auto& restored_table : restored.recency_ordered()) {
    if (restored_table->find_tombstone(Key{17, 0}) != nullptr) {
      tombstone_found = true;
    }
  }
  EXPECT_TRUE(tombstone_found);
}

TEST_F(ManifestFixture, BloomSurvivesRoundTrip) {
  const Version restored = decode_manifest(encode_manifest(db_.version()));
  const auto& table = restored.level(1).front();
  EXPECT_TRUE(table->bloom.may_contain(Key{100, 0}));
}

TEST(Manifest, EmptyVersionRoundTrips) {
  Version empty;
  const Version restored = decode_manifest(encode_manifest(empty));
  EXPECT_EQ(restored.total_ssts(), 0u);
}

TEST(Manifest, RejectsCorruptInput) {
  EXPECT_THROW(decode_manifest(std::vector<std::uint8_t>{1, 2, 3}),
               ndpgen::Error);
  Version empty;
  auto bytes = encode_manifest(empty);
  bytes[0] ^= 0xff;  // Magic.
  EXPECT_THROW(decode_manifest(bytes), ndpgen::Error);
  bytes[0] ^= 0xff;
  bytes.push_back(0);  // Trailing garbage.
  EXPECT_THROW(decode_manifest(bytes), ndpgen::Error);
}

TEST(Manifest, RejectsTruncatedInput) {
  platform::CosmosPlatform cosmos;
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  NKV db(cosmos, config);
  for (std::uint64_t key = 0; key < 100; ++key) db.put(make_record(key));
  db.flush();
  auto bytes = encode_manifest(db.version());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_manifest(bytes), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::kv
