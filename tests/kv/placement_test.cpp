#include "kv/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

platform::FlashTopology small_topology() {
  platform::FlashTopology topology;
  topology.controllers = 2;
  topology.channels_per_controller = 2;
  topology.luns_per_channel = 2;  // 8 LUNs.
  topology.blocks_per_lun = 4;
  topology.pages_per_block = 4;  // 16 pages per LUN.
  return topology;
}

TEST(Placement, LevelsGetDisjointLunGroups) {
  PlacementPolicy policy(small_topology(), 4);
  const auto l1 = policy.luns_of_level(1);
  const auto l2 = policy.luns_of_level(2);
  ASSERT_FALSE(l1.empty());
  for (const auto lun : l1) {
    EXPECT_EQ(std::count(l2.begin(), l2.end(), lun), 0);
  }
  // Level 5 wraps onto level 1's group (4 groups).
  EXPECT_EQ(policy.luns_of_level(5), l1);
}

TEST(Placement, PagesAreUniqueAcrossAllocations) {
  PlacementPolicy policy(small_topology(), 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    for (const auto page : policy.allocate_block_pages(1, 2)) {
      EXPECT_TRUE(seen.insert(page).second);
    }
  }
  EXPECT_EQ(policy.pages_allocated(), 20u);
}

TEST(Placement, BlockPagesStripeOverLuns) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 2);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  const auto pages = policy.allocate_block_pages(1, 2);
  const auto a = flash.delinearize(pages[0]);
  const auto b = flash.delinearize(pages[1]);
  EXPECT_FALSE(a.channel == b.channel && a.lun == b.lun &&
               a.controller == b.controller);
}

TEST(Placement, StaysWithinLevelGroup) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 2);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  const auto group = policy.luns_of_level(3);  // Group 1.
  for (int i = 0; i < 8; ++i) {
    for (const auto page : policy.allocate_block_pages(3, 2)) {
      const auto addr = flash.delinearize(page);
      const std::uint32_t lun =
          (addr.controller * topology.channels_per_controller + addr.channel) *
              topology.luns_per_channel +
          addr.lun;
      EXPECT_NE(std::find(group.begin(), group.end(), lun), group.end());
    }
  }
}

TEST(Placement, ExhaustionThrows) {
  // 4 channels / 4 groups -> 1 channel (2 LUNs x 16 pages) per group.
  PlacementPolicy policy(small_topology(), 4);
  (void)policy.allocate_block_pages(0, 32);
  EXPECT_THROW(policy.allocate_block_pages(0, 1), ndpgen::Error);
  // Other groups unaffected.
  EXPECT_NO_THROW(policy.allocate_block_pages(1, 4));
}

TEST(Placement, GroupsPartitionWholeChannels) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 4);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  // Every LUN of a group must sit on the same set of channels, disjoint
  // from other groups' channels (bus isolation).
  for (std::uint32_t group = 0; group < 4; ++group) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> channels;
    for (const auto lun : policy.luns_of_level(group)) {
      channels.insert({lun / (topology.channels_per_controller *
                              topology.luns_per_channel),
                       (lun / topology.luns_per_channel) %
                           topology.channels_per_controller});
    }
    EXPECT_EQ(channels.size(), 1u) << group;
  }
}

TEST(Placement, InvalidConfigRejected) {
  EXPECT_THROW(PlacementPolicy(small_topology(), 0), ndpgen::Error);
  // More groups than channels (4) is rejected.
  EXPECT_THROW(PlacementPolicy(small_topology(), 5), ndpgen::Error);
  PlacementPolicy policy(small_topology());
  EXPECT_THROW(policy.allocate_block_pages(1, 0), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::kv
