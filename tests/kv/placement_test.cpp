#include "kv/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

platform::FlashTopology small_topology() {
  platform::FlashTopology topology;
  topology.controllers = 2;
  topology.channels_per_controller = 2;
  topology.luns_per_channel = 2;  // 8 LUNs.
  topology.blocks_per_lun = 4;
  topology.pages_per_block = 4;  // 16 pages per LUN.
  return topology;
}

TEST(Placement, LevelsGetDisjointLunGroups) {
  PlacementPolicy policy(small_topology(), 4);
  const auto l1 = policy.luns_of_level(1);
  const auto l2 = policy.luns_of_level(2);
  ASSERT_FALSE(l1.empty());
  for (const auto lun : l1) {
    EXPECT_EQ(std::count(l2.begin(), l2.end(), lun), 0);
  }
  // Level 5 wraps onto level 1's group (4 groups).
  EXPECT_EQ(policy.luns_of_level(5), l1);
}

TEST(Placement, PagesAreUniqueAcrossAllocations) {
  PlacementPolicy policy(small_topology(), 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    for (const auto page : policy.allocate_block_pages(1, 2)) {
      EXPECT_TRUE(seen.insert(page).second);
    }
  }
  EXPECT_EQ(policy.pages_allocated(), 20u);
}

TEST(Placement, BlockPagesStripeOverLuns) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 2);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  const auto pages = policy.allocate_block_pages(1, 2);
  const auto a = flash.delinearize(pages[0]);
  const auto b = flash.delinearize(pages[1]);
  EXPECT_FALSE(a.channel == b.channel && a.lun == b.lun &&
               a.controller == b.controller);
}

TEST(Placement, StaysWithinLevelGroup) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 2);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  const auto group = policy.luns_of_level(3);  // Group 1.
  for (int i = 0; i < 8; ++i) {
    for (const auto page : policy.allocate_block_pages(3, 2)) {
      const auto addr = flash.delinearize(page);
      const std::uint32_t lun =
          (addr.controller * topology.channels_per_controller + addr.channel) *
              topology.luns_per_channel +
          addr.lun;
      EXPECT_NE(std::find(group.begin(), group.end(), lun), group.end());
    }
  }
}

TEST(Placement, ExhaustionThrows) {
  // 4 channels / 4 groups -> 1 channel (2 LUNs x 16 pages) per group.
  PlacementPolicy policy(small_topology(), 4);
  (void)policy.allocate_block_pages(0, 32);
  EXPECT_THROW(policy.allocate_block_pages(0, 1), ndpgen::Error);
  // Other groups unaffected.
  EXPECT_NO_THROW(policy.allocate_block_pages(1, 4));
}

TEST(Placement, GroupsPartitionWholeChannels) {
  const auto topology = small_topology();
  PlacementPolicy policy(topology, 4);
  platform::EventQueue queue;
  platform::TimingConfig timing;
  platform::FlashModel flash(queue, timing, topology);
  // Every LUN of a group must sit on the same set of channels, disjoint
  // from other groups' channels (bus isolation).
  for (std::uint32_t group = 0; group < 4; ++group) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> channels;
    for (const auto lun : policy.luns_of_level(group)) {
      channels.insert({lun / (topology.channels_per_controller *
                              topology.luns_per_channel),
                       (lun / topology.luns_per_channel) %
                           topology.channels_per_controller});
    }
    EXPECT_EQ(channels.size(), 1u) << group;
  }
}

TEST(Placement, InvalidConfigRejected) {
  EXPECT_THROW(PlacementPolicy(small_topology(), 0), ndpgen::Error);
  // More groups than channels (4) is rejected.
  EXPECT_THROW(PlacementPolicy(small_topology(), 5), ndpgen::Error);
  PlacementPolicy policy(small_topology());
  EXPECT_THROW(policy.allocate_block_pages(1, 0), ndpgen::Error);
}

// LUN-major linearization used throughout the repo: page p of LUN l is
// linear p * total_luns + l (small_topology: 8 LUNs, 4 buses, 2 LUNs/bus).
std::uint64_t page_on_lun(std::uint32_t lun, std::uint32_t page = 0) {
  return std::uint64_t{page} * 8 + lun;
}

TEST(Placement, ShardOfPageGroupsContiguousBuses) {
  const auto topology = small_topology();
  // 2 shards over 4 buses: buses {0,1} -> shard 0, buses {2,3} -> shard 1.
  EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(0), 2), 0u);
  EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(3), 2), 0u);
  EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(4), 2), 1u);
  EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(7), 2), 1u);
  // One shard owns everything; zero shards is a caller bug.
  EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(6), 1), 0u);
  EXPECT_THROW(PlacementPolicy::shard_of_page(topology, 0, 0), ndpgen::Error);
}

TEST(Placement, ShardOfPageFallsBackToLunsBeyondBusCount) {
  const auto topology = small_topology();
  // 8 shards exceed the 4 buses, so each of the 8 LUNs gets its own shard.
  for (std::uint32_t lun = 0; lun < 8; ++lun) {
    EXPECT_EQ(PlacementPolicy::shard_of_page(topology, page_on_lun(lun), 8),
              lun);
  }
}

TEST(Placement, ShardBlocksSpreadsBusConfinedStore) {
  const auto topology = small_topology();
  // A level group confined to buses 0-1 (LUNs 0..3), as the default DB
  // placement produces for level 0. Naive whole-topology mapping would put
  // both buses into shard 0; ranking the buses IN USE splits them.
  const std::vector<std::uint64_t> pages = {
      page_on_lun(0), page_on_lun(2), page_on_lun(1), page_on_lun(3),
      page_on_lun(0, 1), page_on_lun(2, 1)};
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 2);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 2, 4}));  // Bus 0.
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{1, 3, 5}));  // Bus 1.
}

TEST(Placement, ShardBlocksRefinesToLunRanks) {
  const auto topology = small_topology();
  // Everything on bus 0 (LUNs 0 and 1): bus diversity 1 < 2 shards, so
  // distinct-LUN ranks take over.
  const std::vector<std::uint64_t> pages = {
      page_on_lun(0), page_on_lun(1), page_on_lun(0, 1), page_on_lun(1, 1)};
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 2);
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 2}));  // LUN 0.
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{1, 3}));  // LUN 1.
}

TEST(Placement, ShardBlocksRoundRobinWhenDiversityExhausted) {
  const auto topology = small_topology();
  // A single LUN cannot feed two shards by affinity; block-index
  // round-robin still balances the compute.
  const std::vector<std::uint64_t> pages = {
      page_on_lun(5), page_on_lun(5, 1), page_on_lun(5, 2), page_on_lun(5, 3)};
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 2);
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{1, 3}));
}

TEST(Placement, ShardBlocksEmptyListYieldsEmptyShards) {
  const auto topology = small_topology();
  // A freshly-created (or fully-compacted-away) level has no blocks; every
  // shard must still exist so the executor's per-shard loop stays uniform.
  for (const std::uint32_t count : {1u, 2u, 8u}) {
    const auto shards =
        PlacementPolicy::shard_blocks(topology, {}, count);
    ASSERT_EQ(shards.size(), count);
    for (const auto& shard : shards) EXPECT_TRUE(shard.empty());
  }
}

TEST(Placement, ShardBlocksMoreShardsThanBlocks) {
  const auto topology = small_topology();
  // 3 blocks, 8 shards: every block lands exactly once, the surplus
  // shards are empty rather than out-of-range, and the assignment is
  // stable across calls.
  const std::vector<std::uint64_t> pages = {
      page_on_lun(0), page_on_lun(4), page_on_lun(7)};
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 8);
  ASSERT_EQ(shards.size(), 8u);
  std::size_t placed = 0;
  std::set<std::size_t> seen;
  for (const auto& shard : shards) {
    placed += shard.size();
    for (const std::size_t block : shard) {
      EXPECT_LT(block, pages.size());
      EXPECT_TRUE(seen.insert(block).second);
    }
  }
  EXPECT_EQ(placed, pages.size());
  EXPECT_EQ(PlacementPolicy::shard_blocks(topology, pages, 8), shards);
}

TEST(Placement, ShardBlocksSingleLunMoreShardsThanBlocks) {
  const auto topology = small_topology();
  // Degenerate on both axes at once: one LUN (no affinity to exploit) AND
  // fewer blocks than shards — the round-robin fallback assigns block i
  // to shard i % count, leaving the tail shards empty.
  const std::vector<std::uint64_t> pages = {page_on_lun(3),
                                            page_on_lun(3, 1)};
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(shards[2].empty());
  EXPECT_TRUE(shards[3].empty());
}

TEST(Placement, ShardBlocksPartitionsAndIsDeterministic) {
  const auto topology = small_topology();
  std::vector<std::uint64_t> pages;
  for (std::uint32_t i = 0; i < 23; ++i) {
    pages.push_back(page_on_lun(i % 8, i / 8));
  }
  const auto shards = PlacementPolicy::shard_blocks(topology, pages, 4);
  std::set<std::size_t> seen;
  for (const auto& shard : shards) {
    for (std::size_t i = 1; i < shard.size(); ++i) {
      EXPECT_LT(shard[i - 1], shard[i]);  // Ascending inside each shard.
    }
    for (const std::size_t block : shard) {
      EXPECT_TRUE(seen.insert(block).second);  // Exactly-once partition.
    }
  }
  EXPECT_EQ(seen.size(), pages.size());
  EXPECT_EQ(PlacementPolicy::shard_blocks(topology, pages, 4), shards);
  // shard_count 1 keeps the serial order untouched.
  const auto single = PlacementPolicy::shard_blocks(topology, pages, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].size(), pages.size());
}

}  // namespace
}  // namespace ndpgen::kv
