#include "kv/db.hpp"

#include <gtest/gtest.h>

#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key,
                                      std::uint64_t value) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, value);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

DBConfig small_config() {
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.memtable_bytes = 4 * 1024;  // Tiny: frequent flushes.
  config.auto_compact = false;
  return config;
}

class DbFixture : public ::testing::Test {
 protected:
  DbFixture() : db_(cosmos_, small_config()) {}
  platform::CosmosPlatform cosmos_;
  NKV db_;
};

TEST_F(DbFixture, PutGetFromMemtable) {
  db_.put(make_record(1, 100));
  const auto hit = db_.get(Key{1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 100u);
  EXPECT_FALSE(db_.get(Key{2, 0}).has_value());
}

TEST_F(DbFixture, GetAfterFlushReadsFlash) {
  for (std::uint64_t i = 0; i < 50; ++i) db_.put(make_record(i, i * 7));
  db_.flush();
  EXPECT_TRUE(db_.memtable().empty());
  EXPECT_EQ(db_.version().sst_count(1), 1u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto hit = db_.get(Key{i, 0});
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(support::get_u64(*hit, 8), i * 7);
  }
}

TEST_F(DbFixture, NewerFlushShadowsOlder) {
  db_.put(make_record(5, 1));
  db_.flush();
  db_.put(make_record(5, 2));
  db_.flush();
  EXPECT_EQ(db_.version().sst_count(1), 2u);
  // No compaction during flush: both versions exist, newest wins.
  const auto hit = db_.get(Key{5, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 2u);
}

TEST_F(DbFixture, MemtableShadowsFlushed) {
  db_.put(make_record(5, 1));
  db_.flush();
  db_.put(make_record(5, 9));
  const auto hit = db_.get(Key{5, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 9u);
}

TEST_F(DbFixture, DeleteInMemtable) {
  db_.put(make_record(7, 1));
  db_.del(Key{7, 0});
  EXPECT_FALSE(db_.get(Key{7, 0}).has_value());
}

TEST_F(DbFixture, TombstoneShadowsFlushedValue) {
  db_.put(make_record(7, 1));
  db_.flush();
  db_.del(Key{7, 0});
  db_.flush();
  EXPECT_FALSE(db_.get(Key{7, 0}).has_value());
}

TEST_F(DbFixture, AutoFlushOnCapacity) {
  for (std::uint64_t i = 0; i < 500; ++i) db_.put(make_record(i, i));
  EXPECT_GT(db_.stats().flushes, 0u);
  EXPECT_GT(db_.version().sst_count(1), 0u);
  // Everything still readable.
  for (std::uint64_t i = 0; i < 500; i += 37) {
    EXPECT_TRUE(db_.get(Key{i, 0}).has_value()) << i;
  }
}

TEST_F(DbFixture, WrongRecordSizeRejected) {
  EXPECT_THROW(db_.put(std::vector<std::uint8_t>(15, 0)), ndpgen::Error);
}

TEST_F(DbFixture, BulkLoadSortedBuildsLevel) {
  std::uint64_t next = 0;
  db_.bulk_load_sorted(
      2,
      [&](std::vector<std::uint8_t>& record) {
        if (next >= 10'000) return false;
        record = make_record(next, next * 3);
        ++next;
        return true;
      },
      4096);
  EXPECT_EQ(db_.version().sst_count(2), 3u);  // ceil(10000/4096).
  EXPECT_EQ(db_.version().total_records(), 10'000u);
  const auto hit = db_.get(Key{9'999, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 8), 9'999u * 3);
}

TEST_F(DbFixture, StatsAccumulate) {
  db_.put(make_record(1, 1));
  db_.del(Key{2, 0});
  (void)db_.get(Key{1, 0});
  EXPECT_EQ(db_.stats().puts, 1u);
  EXPECT_EQ(db_.stats().deletes, 1u);
  EXPECT_EQ(db_.stats().gets, 1u);
}

TEST(Db, ConfigValidation) {
  platform::CosmosPlatform cosmos;
  DBConfig config;
  config.record_bytes = 0;
  config.extractor = extract;
  EXPECT_THROW(NKV(cosmos, config), ndpgen::Error);
  config.record_bytes = 16;
  config.extractor = nullptr;
  EXPECT_THROW(NKV(cosmos, config), ndpgen::Error);
}

TEST(Db, RandomizedAgainstReferenceMap) {
  platform::CosmosPlatform cosmos;
  auto config = small_config();
  config.auto_compact = true;
  NKV db(cosmos, config);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  std::unordered_set<std::uint64_t> deleted;
  support::Xoshiro256 rng(2024);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.below(400);
    if (rng.below(5) == 0) {
      db.del(Key{key, 0});
      reference.erase(key);
      deleted.insert(key);
    } else {
      const std::uint64_t value = rng();
      db.put(make_record(key, value));
      reference[key] = value;
      deleted.erase(key);
    }
  }
  for (std::uint64_t key = 0; key < 400; ++key) {
    const auto hit = db.get(Key{key, 0});
    const auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_FALSE(hit.has_value()) << key;
    } else {
      ASSERT_TRUE(hit.has_value()) << key;
      EXPECT_EQ(support::get_u64(*hit, 8), it->second) << key;
    }
  }
}

}  // namespace
}  // namespace ndpgen::kv
