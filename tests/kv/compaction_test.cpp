#include "kv/compaction.hpp"

#include <gtest/gtest.h>

#include "kv/db.hpp"
#include "kv/sst_reader.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key,
                                      std::uint64_t value) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, value);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

DBConfig config_with(std::uint32_t l1_trigger) {
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.memtable_bytes = 2 * 1024;
  config.auto_flush = false;
  config.auto_compact = false;
  config.compaction.l1_trigger = l1_trigger;
  config.compaction.output_sst_blocks = 2;
  return config;
}

class CompactionFixture : public ::testing::Test {
 protected:
  CompactionFixture() : db_(cosmos_, config_with(2)) {}

  void flush_batch(std::uint64_t lo, std::uint64_t hi, std::uint64_t tag) {
    for (std::uint64_t key = lo; key < hi; ++key) {
      db_.put(make_record(key, tag * 1'000'000 + key));
    }
    db_.flush();
  }

  platform::CosmosPlatform cosmos_;
  NKV db_;
};

TEST_F(CompactionFixture, TriggerFiresAboveThreshold) {
  flush_batch(0, 50, 1);
  flush_batch(25, 75, 2);
  EXPECT_EQ(db_.compact(), 0u);  // 2 SSTs == trigger, not above.
  flush_batch(50, 100, 3);
  EXPECT_GT(db_.compact(), 0u);
  EXPECT_EQ(db_.version().sst_count(1), 0u);
  EXPECT_GT(db_.version().sst_count(2), 0u);
}

TEST_F(CompactionFixture, NewestVersionWinsAfterMerge) {
  flush_batch(0, 50, 1);
  flush_batch(0, 50, 2);
  flush_batch(0, 50, 3);  // Same keys three times.
  db_.compact();
  // All duplicates purged: exactly 50 live records.
  EXPECT_EQ(db_.version().total_records(), 50u);
  for (std::uint64_t key = 0; key < 50; key += 7) {
    const auto hit = db_.get(Key{key, 0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(support::get_u64(*hit, 8), 3'000'000 + key);
  }
  EXPECT_GT(db_.compaction_stats().records_purged, 0u);
}

TEST_F(CompactionFixture, OutputsAreSortedAndSplit) {
  flush_batch(0, 3000, 1);
  flush_batch(3000, 6000, 2);
  flush_batch(6000, 9000, 3);
  db_.compact();
  const auto& level2 = db_.version().level(2);
  ASSERT_GT(level2.size(), 1u);  // Split at 2 blocks per output SST.
  Key previous = Key::min();
  bool first = true;
  for (const auto& table : level2) {
    SSTReader reader(*table, cosmos_.flash(), extract);
    reader.for_each_record([&](std::span<const std::uint8_t> record) {
      const Key key = extract(record);
      if (!first) EXPECT_LT(previous, key);
      first = false;
      previous = key;
    });
  }
}

TEST_F(CompactionFixture, TombstonesDropAtBottom) {
  flush_batch(0, 20, 1);
  for (std::uint64_t key = 0; key < 10; ++key) db_.del(Key{key, 0});
  db_.flush();
  flush_batch(20, 40, 2);
  db_.compact();  // Into empty L2 -> tombstones can drop.
  EXPECT_GT(db_.compaction_stats().tombstones_dropped, 0u);
  EXPECT_EQ(db_.version().total_records(), 30u);
  EXPECT_FALSE(db_.get(Key{5, 0}).has_value());
  EXPECT_TRUE(db_.get(Key{15, 0}).has_value());
}

TEST_F(CompactionFixture, TombstonesKeptWhenDeeperDataExists) {
  // Seed L3 with old data, then delete some of it via L1->L2 compaction.
  std::uint64_t next = 0;
  db_.bulk_load_sorted(
      3,
      [&](std::vector<std::uint8_t>& record) {
        if (next >= 20) return false;
        record = make_record(next, 777);
        ++next;
        return true;
      },
      1000);
  for (std::uint64_t key = 0; key < 5; ++key) db_.del(Key{key, 0});
  db_.flush();
  flush_batch(100, 160, 1);
  flush_batch(160, 220, 1);
  db_.compact();
  // The tombstones must survive in L2 to shadow the L3 values.
  std::size_t tombstones = 0;
  for (const auto& table : db_.version().level(2)) {
    tombstones += table->tombstones.size();
  }
  EXPECT_EQ(tombstones, 5u);
  EXPECT_FALSE(db_.get(Key{2, 0}).has_value());
  EXPECT_TRUE(db_.get(Key{10, 0}).has_value());
}

TEST_F(CompactionFixture, StatsAreConsistent) {
  flush_batch(0, 100, 1);
  flush_batch(50, 150, 2);
  flush_batch(100, 200, 3);
  db_.compact();
  const auto& stats = db_.compaction_stats();
  EXPECT_EQ(stats.records_in,
            stats.records_out + stats.records_purged);
  EXPECT_EQ(stats.records_out, db_.version().total_records());
}

TEST_F(CompactionFixture, SizeTriggerCascades) {
  // Push enough data through L1 that L2 exceeds its 8 MiB base target.
  // Each flushed batch of 3000 records is ~48 KB; use bulk loads instead
  // to reach the size trigger quickly.
  std::uint64_t next = 0;
  const std::uint64_t total = 700'000;  // ~11 MB of 16 B records.
  db_.bulk_load_sorted(
      2,
      [&](std::vector<std::uint8_t>& record) {
        if (next >= total) return false;
        record = make_record(next, next);
        ++next;
        return true;
      },
      100'000);
  EXPECT_GT(db_.compact(), 0u);
  EXPECT_EQ(db_.version().sst_count(2), 0u);
  EXPECT_GT(db_.version().sst_count(3), 0u);
  EXPECT_EQ(db_.version().total_records(), total);
}

}  // namespace
}  // namespace ndpgen::kv
