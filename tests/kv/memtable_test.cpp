#include "kv/memtable.hpp"

#include <gtest/gtest.h>

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> record(std::initializer_list<std::uint8_t> bytes) {
  return std::vector<std::uint8_t>(bytes);
}

TEST(MemTable, PutAndGet) {
  MemTable table;
  const auto data = record({1, 2, 3});
  table.put(Key{1, 0}, 1, data);
  const MemEntry* entry = table.get(Key{1, 0});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, EntryType::kValue);
  EXPECT_EQ(entry->record, data);
  EXPECT_EQ(entry->seq, 1u);
  EXPECT_EQ(table.get(Key{2, 0}), nullptr);
}

TEST(MemTable, LatestWriteWins) {
  MemTable table;
  table.put(Key{1, 0}, 1, record({1}));
  table.put(Key{1, 0}, 2, record({2}));
  EXPECT_EQ(table.entry_count(), 1u);
  EXPECT_EQ(table.get(Key{1, 0})->record, record({2}));
  EXPECT_EQ(table.get(Key{1, 0})->seq, 2u);
}

TEST(MemTable, TombstoneShadowsValue) {
  MemTable table;
  table.put(Key{1, 0}, 1, record({1}));
  table.del(Key{1, 0}, 2);
  const MemEntry* entry = table.get(Key{1, 0});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, EntryType::kTombstone);
  EXPECT_TRUE(entry->record.empty());
}

TEST(MemTable, FlushThresholdTracksBytes) {
  MemTable table(512);
  EXPECT_FALSE(table.should_flush());
  for (std::uint64_t i = 0; i < 10; ++i) {
    table.put(Key{i, 0}, i, std::vector<std::uint8_t>(64, 0));
  }
  EXPECT_TRUE(table.should_flush());
  EXPECT_GT(table.approximate_bytes(), 512u);
}

TEST(MemTable, IterationSortedByKey) {
  MemTable table;
  table.put(Key{3, 0}, 1, record({3}));
  table.put(Key{1, 0}, 2, record({1}));
  table.del(Key{2, 0}, 3);
  std::vector<std::uint64_t> keys;
  for (auto it = table.begin(); it.valid(); it.next()) {
    keys.push_back(it.key().hi);
  }
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace ndpgen::kv
