// Edge cases of the SST layer and version management.
#include <gtest/gtest.h>

#include "kv/sst_builder.hpp"
#include "kv/sst_reader.hpp"
#include "kv/version.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> make_record(std::uint64_t key) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, key * 3);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

class SstEdgeFixture : public ::testing::Test {
 protected:
  SstEdgeFixture() : placement_(cosmos_.flash().topology()) {}
  platform::CosmosPlatform cosmos_;
  PlacementPolicy placement_;
};

TEST_F(SstEdgeFixture, TombstoneOnlySstIsValid) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  builder.add_tombstone(Key{5, 0}, 10);
  builder.add_tombstone(Key{7, 0}, 11);
  const auto table = builder.finish();
  EXPECT_TRUE(table->blocks.empty());
  EXPECT_EQ(table->tombstones.size(), 2u);
  EXPECT_EQ(table->record_count(), 0u);
  EXPECT_EQ(table->find_block(Key{5, 0}), -1);
}

TEST_F(SstEdgeFixture, SingleRecordSst) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  builder.add(make_record(42), 1);
  const auto table = builder.finish();
  EXPECT_EQ(table->min_key, table->max_key);
  SSTReader reader(*table, cosmos_.flash(), extract);
  EXPECT_TRUE(reader.get(Key{42, 0}).has_value());
  EXPECT_FALSE(reader.get(Key{41, 0}).has_value());
  EXPECT_FALSE(reader.get(Key{43, 0}).has_value());
}

TEST_F(SstEdgeFixture, ReaderRejectsBadBlockIndex) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  builder.add(make_record(1), 1);
  const auto table = builder.finish();
  SSTReader reader(*table, cosmos_.flash(), extract);
  EXPECT_THROW(reader.read_block(1), ndpgen::Error);
}

TEST_F(SstEdgeFixture, VersionOverlappingQueries) {
  Version version;
  auto build_range = [&](std::uint64_t id, std::uint64_t lo,
                         std::uint64_t hi) {
    SSTBuilder builder(id, 2, 16, extract, placement_, cosmos_.flash());
    for (std::uint64_t key = lo; key < hi; ++key) {
      builder.add(make_record(key), key);
    }
    return builder.finish();
  };
  version.add(2, build_range(1, 0, 100));
  version.add(2, build_range(2, 200, 300));
  EXPECT_EQ(version.overlapping(2, Key{50, 0}, Key{60, 0}).size(), 1u);
  EXPECT_EQ(version.overlapping(2, Key{150, 0}, Key{160, 0}).size(), 0u);
  EXPECT_EQ(version.overlapping(2, Key{50, 0}, Key{250, 0}).size(), 2u);
  EXPECT_EQ(version.overlapping(2, Key{99, 0}, Key{99, 0}).size(), 1u);
}

TEST_F(SstEdgeFixture, VersionRemoveUnknownIdThrows) {
  Version version;
  SSTBuilder builder(7, 1, 16, extract, placement_, cosmos_.flash());
  builder.add(make_record(1), 1);
  version.add(1, builder.finish());
  EXPECT_THROW(version.remove(1, 99), ndpgen::Error);
  EXPECT_NO_THROW(version.remove(1, 7));
  EXPECT_EQ(version.total_ssts(), 0u);
}

TEST_F(SstEdgeFixture, VersionLevelBoundsChecked) {
  Version version;
  EXPECT_THROW((void)version.level(0), ndpgen::Error);
  EXPECT_THROW((void)version.level(kMaxLevels + 1), ndpgen::Error);
}

TEST_F(SstEdgeFixture, RecencyOrderedPutsNewestC1First) {
  Version version;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    SSTBuilder builder(id, 1, 16, extract, placement_, cosmos_.flash());
    builder.add(make_record(id), id);
    version.add(1, builder.finish());
  }
  {
    SSTBuilder builder(10, 2, 16, extract, placement_, cosmos_.flash());
    builder.add(make_record(100), 100);
    version.add(2, builder.finish());
  }
  const auto ordered = version.recency_ordered();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0]->id, 3u);  // Newest C1 flush first.
  EXPECT_EQ(ordered[1]->id, 2u);
  EXPECT_EQ(ordered[2]->id, 1u);
  EXPECT_EQ(ordered[3]->id, 10u);  // Deeper levels after.
}

TEST_F(SstEdgeFixture, WideKeysUseBothHalves) {
  auto wide_extract = [](std::span<const std::uint8_t> record) {
    return Key{support::get_u64(record, 0), support::get_u64(record, 8)};
  };
  SSTBuilder builder(1, 1, 16, wide_extract, placement_, cosmos_.flash());
  std::vector<std::uint8_t> a, b;
  support::put_u64(a, 1);
  support::put_u64(a, 5);
  support::put_u64(b, 1);
  support::put_u64(b, 9);
  builder.add(a, 1);
  builder.add(b, 2);  // Same hi, larger lo: strictly ascending.
  const auto table = builder.finish();
  SSTReader reader(*table, cosmos_.flash(), wide_extract);
  EXPECT_TRUE(reader.get(Key{1, 5}).has_value());
  EXPECT_TRUE(reader.get(Key{1, 9}).has_value());
  EXPECT_FALSE(reader.get(Key{1, 7}).has_value());
}

}  // namespace
}  // namespace ndpgen::kv
