#include <gtest/gtest.h>

#include "kv/sst_builder.hpp"
#include "kv/sst_reader.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

// 16-byte record: (hi u64, lo u64); key = (hi, lo).
std::vector<std::uint8_t> make_record(std::uint64_t hi, std::uint64_t lo) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, hi);
  support::put_u64(record, lo);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), support::get_u64(record, 8)};
}

class SstFixture : public ::testing::Test {
 protected:
  SstFixture() : placement_(cosmos_.flash().topology()) {}

  std::shared_ptr<SSTable> build(std::uint64_t count,
                                 std::uint64_t stride = 1) {
    SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
    for (std::uint64_t i = 0; i < count; ++i) {
      builder.add(make_record(i * stride, 0), i);
    }
    return builder.finish();
  }

  platform::CosmosPlatform cosmos_;
  PlacementPolicy placement_;
};

TEST_F(SstFixture, MetadataCoversContents) {
  const auto table = build(100);
  EXPECT_EQ(table->record_count(), 100u);
  EXPECT_EQ(table->min_key, (Key{0, 0}));
  EXPECT_EQ(table->max_key, (Key{99, 0}));
  EXPECT_EQ(table->min_seq, 0u);
  EXPECT_EQ(table->max_seq, 99u);
  ASSERT_EQ(table->blocks.size(), 1u);
  EXPECT_EQ(table->blocks[0].record_count, 100u);
  // 32 KiB block = 2 flash pages of 16 KiB.
  EXPECT_EQ(table->blocks[0].flash_pages.size(), 2u);
}

TEST_F(SstFixture, MultipleBlocksSplitSorted) {
  const std::uint64_t per_block = records_per_block(16);
  const auto table = build(per_block + 10);
  ASSERT_EQ(table->blocks.size(), 2u);
  EXPECT_EQ(table->blocks[0].record_count, per_block);
  EXPECT_EQ(table->blocks[1].record_count, 10u);
  EXPECT_LT(table->blocks[0].last_key, table->blocks[1].first_key);
}

TEST_F(SstFixture, OutOfOrderAddFails) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  builder.add(make_record(5, 0), 1);
  EXPECT_THROW(builder.add(make_record(4, 0), 2), ndpgen::Error);
  EXPECT_THROW(builder.add(make_record(5, 0), 3), ndpgen::Error);  // Equal.
}

TEST_F(SstFixture, EmptyTableFails) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  EXPECT_THROW((void)builder.finish(), ndpgen::Error);
}

TEST_F(SstFixture, FindBlockBinarySearch) {
  const auto table = build(5000);  // 3 blocks.
  ASSERT_GE(table->blocks.size(), 2u);
  EXPECT_EQ(table->find_block(Key{0, 0}), 0);
  EXPECT_EQ(table->find_block(table->blocks[1].first_key), 1);
  EXPECT_EQ(table->find_block(Key{4999, 0}),
            static_cast<int>(table->blocks.size()) - 1);
  EXPECT_EQ(table->find_block(Key{5000, 0}), -1);
}

TEST_F(SstFixture, ReaderGetFindsExistingKeys) {
  const auto table = build(3000, 2);  // Keys 0, 2, 4, ...
  SSTReader reader(*table, cosmos_.flash(), extract);
  const auto hit = reader.get(Key{2 * 1234, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(support::get_u64(*hit, 0), 2u * 1234);
  // Keys between records are misses.
  EXPECT_FALSE(reader.get(Key{2 * 1234 + 1, 0}).has_value());
  EXPECT_FALSE(reader.get(Key{6001, 0}).has_value());
}

TEST_F(SstFixture, ReaderIteratesAllRecordsInOrder) {
  const auto table = build(2500);
  SSTReader reader(*table, cosmos_.flash(), extract);
  std::uint64_t expected = 0;
  reader.for_each_record([&](std::span<const std::uint8_t> record) {
    EXPECT_EQ(support::get_u64(record, 0), expected);
    ++expected;
  });
  EXPECT_EQ(expected, 2500u);
}

TEST_F(SstFixture, BlockAssemblyMatchesFormat) {
  const auto table = build(10);
  SSTReader reader(*table, cosmos_.flash(), extract);
  const auto block = reader.read_block(0);
  const auto trailer = read_trailer(block);
  EXPECT_EQ(trailer.record_count, 10u);
  EXPECT_EQ(trailer.record_bytes, 16u);
}

TEST_F(SstFixture, TombstonesSortedAndDeduplicated) {
  SSTBuilder builder(1, 1, 16, extract, placement_, cosmos_.flash());
  builder.add(make_record(1, 0), 1);
  builder.add_tombstone(Key{9, 0}, 5);
  builder.add_tombstone(Key{3, 0}, 4);
  builder.add_tombstone(Key{9, 0}, 7);  // Newer duplicate.
  const auto table = builder.finish();
  ASSERT_EQ(table->tombstones.size(), 2u);
  EXPECT_EQ(table->tombstones[0].key, (Key{3, 0}));
  EXPECT_EQ(table->tombstones[1].key, (Key{9, 0}));
  EXPECT_EQ(table->tombstones[1].seq, 7u);  // Newest kept.
  ASSERT_NE(table->find_tombstone(Key{9, 0}), nullptr);
  EXPECT_EQ(table->find_tombstone(Key{4, 0}), nullptr);
  // Tombstones extend the key range.
  EXPECT_EQ(table->max_key, (Key{9, 0}));
}

TEST_F(SstFixture, BlocksLandOnDistinctLunsWithinStripe) {
  const auto table = build(100);
  const auto& pages = table->blocks[0].flash_pages;
  const auto a = cosmos_.flash().delinearize(pages[0]);
  const auto b = cosmos_.flash().delinearize(pages[1]);
  const bool same_lun =
      a.controller == b.controller && a.channel == b.channel && a.lun == b.lun;
  EXPECT_FALSE(same_lun);
}

}  // namespace
}  // namespace ndpgen::kv
