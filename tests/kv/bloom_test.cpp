#include "kv/bloom.hpp"

#include <gtest/gtest.h>

#include "kv/db.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace ndpgen::kv {
namespace {

TEST(Bloom, EmptyFilterSaysMaybe) {
  BloomFilter filter;
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(filter.may_contain(Key{1, 2}));
}

TEST(Bloom, NoFalseNegatives) {
  BloomFilter filter(10'000);
  support::Xoshiro256 rng(7);
  std::vector<Key> keys;
  for (int i = 0; i < 10'000; ++i) {
    keys.push_back(Key{rng(), rng()});
    filter.insert(keys.back());
  }
  for (const Key& key : keys) {
    ASSERT_TRUE(filter.may_contain(key));
  }
}

TEST(Bloom, FalsePositiveRateNearOnePercent) {
  BloomFilter filter(10'000, 10);
  support::Xoshiro256 rng(11);
  for (int i = 0; i < 10'000; ++i) {
    filter.insert(Key{rng(), rng()});
  }
  int false_positives = 0;
  constexpr int kProbes = 50'000;
  support::Xoshiro256 probe_rng(99);  // Disjoint keys w.h.p.
  for (int i = 0; i < kProbes; ++i) {
    false_positives +=
        filter.may_contain(Key{probe_rng() | (1ull << 63), probe_rng()}) ? 1
                                                                         : 0;
  }
  const double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, 0.03);
}

TEST(Bloom, FewerBitsMoreFalsePositives) {
  support::Xoshiro256 rng(3);
  std::vector<Key> keys;
  for (int i = 0; i < 5'000; ++i) keys.push_back(Key{rng(), rng()});
  auto rate_for = [&](std::uint32_t bits_per_key) {
    BloomFilter filter(keys.size(), bits_per_key);
    for (const Key& key : keys) filter.insert(key);
    int hits = 0;
    support::Xoshiro256 probe_rng(31);
    for (int i = 0; i < 20'000; ++i) {
      hits += filter.may_contain(Key{probe_rng() | (1ull << 62),
                                     probe_rng()});
    }
    return hits;
  };
  EXPECT_GT(rate_for(4), rate_for(16));
}

TEST(Bloom, WordsRoundTrip) {
  BloomFilter filter(100);
  filter.insert(Key{1, 2});
  filter.insert(Key{3, 4});
  const BloomFilter copy = BloomFilter::from_words(filter.words());
  EXPECT_TRUE(copy.may_contain(Key{1, 2}));
  EXPECT_TRUE(copy.may_contain(Key{3, 4}));
}

// --- Integration with the store -------------------------------------

std::vector<std::uint8_t> make_record(std::uint64_t key) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, key);
  return record;
}

Key extract(std::span<const std::uint8_t> record) {
  return Key{support::get_u64(record, 0), 0};
}

TEST(Bloom, BuiltDuringFlushAndUsedByGet) {
  platform::CosmosPlatform cosmos;
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  NKV db(cosmos, config);
  for (std::uint64_t key = 0; key < 100; key += 2) {
    db.put(make_record(key));
  }
  db.flush();
  const auto& table = db.version().level(1).front();
  EXPECT_FALSE(table->bloom.empty());
  EXPECT_TRUE(table->bloom.may_contain(Key{42, 0}));
  // Present and absent keys behave correctly through the store.
  EXPECT_TRUE(db.get(Key{42, 0}).has_value());
  EXPECT_FALSE(db.get(Key{43, 0}).has_value());
}

TEST(Bloom, CutsC1ProbesForGet) {
  // Many overlapping C1 flushes: without Bloom filters every GET would
  // binary-search every table; with them, non-matching tables are skipped
  // after a few DRAM bit tests.
  platform::CosmosPlatform cosmos;
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  config.auto_compact = false;
  NKV db(cosmos, config);
  // 8 flushes with overlapping RANGES but disjoint keys (stride tricks):
  // flush f holds keys where key % 8 == f.
  for (std::uint64_t f = 0; f < 8; ++f) {
    for (std::uint64_t key = f; key < 4000; key += 8) {
      db.put(make_record(key));
    }
    db.flush();
  }
  ASSERT_EQ(db.version().sst_count(1), 8u);
  // Every key is found, despite living in exactly one of 8 range-
  // overlapping tables.
  for (std::uint64_t key = 0; key < 4000; key += 97) {
    ASSERT_TRUE(db.get(Key{key, 0}).has_value()) << key;
  }
  // Each table holds 500 of 4000 keys; a probe of a key belonging to
  // table 7 passes 7 blooms with ~1% fp each — the filters make the
  // store consult ~1 table instead of up to 8. We verify via the flash
  // model: GET reads blocks only from tables whose bloom matched.
  // (Structural check: the bloom of table 0 rejects keys of table 1.)
  const auto& tables = db.version().level(1);
  std::uint64_t rejected = 0;
  for (std::uint64_t key = 1; key < 4000; key += 8) {  // Table 1's keys.
    rejected += tables[0]->bloom.may_contain(Key{key, 0}) ? 0 : 1;
  }
  EXPECT_GT(rejected, 450u);  // ~99% rejected by table 0's filter.
}

TEST(Bloom, CoversTombstones) {
  platform::CosmosPlatform cosmos;
  DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  NKV db(cosmos, config);
  db.put(make_record(1));
  db.del(Key{77, 0});
  db.flush();
  const auto& table = db.version().level(1).front();
  // The tombstone's key must be in the filter, or GET would skip the
  // table and resurrect an older version.
  EXPECT_TRUE(table->bloom.may_contain(Key{77, 0}));
}

}  // namespace
}  // namespace ndpgen::kv
