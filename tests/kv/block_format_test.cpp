#include "kv/block_format.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

std::vector<std::uint8_t> record_of(std::uint32_t bytes, std::uint8_t fill) {
  return std::vector<std::uint8_t>(bytes, fill);
}

TEST(BlockFormat, RecordsPerBlockGeometry) {
  EXPECT_EQ(records_per_block(16), (32u * 1024 - 8) / 16);
  EXPECT_EQ(records_per_block(128), (32u * 1024 - 8) / 128);
  EXPECT_EQ(records_per_block(0), 0u);
}

TEST(BlockFormat, BuildAndDecode) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 0xaa));
  builder.add(record_of(16, 0xbb));
  const auto block = builder.finish();
  ASSERT_EQ(block.size(), kDataBlockBytes);

  const BlockTrailer trailer = read_trailer(block);
  EXPECT_EQ(trailer.record_count, 2u);
  EXPECT_EQ(trailer.record_bytes, 16u);
  EXPECT_EQ(block_payload_bytes(trailer), 32u);
  EXPECT_EQ(block_record(block, trailer, 0)[0], 0xaa);
  EXPECT_EQ(block_record(block, trailer, 1)[0], 0xbb);
}

TEST(BlockFormat, SlackIsZeroed) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 0xff));
  const auto block = builder.finish();
  const BlockTrailer trailer = read_trailer(block);
  // Bytes between the payload and the trailer are zero.
  for (std::size_t i = block_payload_bytes(trailer);
       i < kDataBlockBytes - kBlockTrailerBytes; ++i) {
    ASSERT_EQ(block[i], 0u) << i;
  }
}

TEST(BlockFormat, BuilderResetsAfterFinish) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 1));
  (void)builder.finish();
  EXPECT_TRUE(builder.empty());
  builder.add(record_of(16, 2));
  const auto block = builder.finish();
  EXPECT_EQ(read_trailer(block).record_count, 1u);
  EXPECT_EQ(block_record(block, read_trailer(block), 0)[0], 2u);
}

TEST(BlockFormat, FullBlockRejectsMore) {
  DataBlockBuilder builder(4096);
  const std::uint32_t capacity = records_per_block(4096);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(builder.has_space());
    builder.add(record_of(4096, 1));
  }
  EXPECT_FALSE(builder.has_space());
  EXPECT_THROW(builder.add(record_of(4096, 1)), ndpgen::Error);
}

TEST(BlockFormat, WrongRecordSizeRejected) {
  DataBlockBuilder builder(16);
  EXPECT_THROW(builder.add(record_of(15, 1)), ndpgen::Error);
}

TEST(BlockFormat, InvalidGeometryRejected) {
  EXPECT_THROW(DataBlockBuilder{0}, ndpgen::Error);
  EXPECT_THROW(DataBlockBuilder{kDataBlockBytes}, ndpgen::Error);
}

TEST(BlockFormat, TrailerValidation) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 1));
  auto block = builder.finish();
  // Corrupt the magic.
  block[kDataBlockBytes - 1] ^= 0xff;
  EXPECT_THROW(read_trailer(block), ndpgen::Error);

  // Wrong size.
  std::vector<std::uint8_t> tiny(16, 0);
  EXPECT_THROW(read_trailer(tiny), ndpgen::Error);
}

TEST(BlockFormat, InconsistentCountRejected) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 1));
  auto block = builder.finish();
  // Claim an impossible record count.
  const std::size_t base = kDataBlockBytes - kBlockTrailerBytes;
  block[base] = 0xff;
  block[base + 1] = 0xff;
  EXPECT_THROW(read_trailer(block), ndpgen::Error);
}

TEST(BlockFormat, RecordIndexOutOfRange) {
  DataBlockBuilder builder(16);
  builder.add(record_of(16, 1));
  const auto block = builder.finish();
  const auto trailer = read_trailer(block);
  EXPECT_THROW(block_record(block, trailer, 1), ndpgen::Error);
}

}  // namespace
}  // namespace ndpgen::kv
