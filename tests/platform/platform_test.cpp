// Tests for ArmCoreModel, NvmeLink, MmioBus and CosmosPlatform.
#include <gtest/gtest.h>

#include "hwgen/template_builder.hpp"
#include "platform/cosmos.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace ndpgen::platform {
namespace {

namespace hw = ndpgen::hwgen;

TEST(ArmCore, ChargesAdvanceTime) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  const SimTime t0 = queue.now();
  arm.register_access();
  EXPECT_EQ(queue.now() - t0, timing.firmware(timing.register_access));
  EXPECT_GT(arm.busy_time(), 0u);
}

TEST(ArmCore, SoftwareFilterScalesWithBytes) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  const SimTime small = arm.software_filter_block(1024, 8, 1, 4);
  const SimTime large = arm.software_filter_block(32768, 256, 1, 128);
  EXPECT_GT(large, small);
  EXPECT_GT(large, timing.arm_parse_time(32768));
}

TEST(ArmCore, PredicateStagesAddCost) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  const SimTime one = arm.software_filter_block(32768, 2048, 1, 0);
  const SimTime three = arm.software_filter_block(32768, 2048, 3, 0);
  EXPECT_EQ(three - one, 2u * 2048 * timing.arm_predicate_per_tuple);
}

TEST(ArmCore, IndexProbeIsLogarithmic) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  const SimTime small = arm.index_probe(2);
  const SimTime large = arm.index_probe(1 << 20);
  EXPECT_GT(large, small);
  EXPECT_LT(large, small * 20);
}

TEST(ArmCore, PollUntilWaitsAndCharges) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  arm.poll_until(10 * kNsPerUs);
  EXPECT_GE(queue.now(), 10 * kNsPerUs);
}

TEST(ArmCore, PollRunsPendingEventsWhileWaiting) {
  EventQueue queue;
  TimingConfig timing;
  ArmCoreModel arm(queue, timing);
  bool fired = false;
  queue.schedule_at(5 * kNsPerUs, [&] { fired = true; });
  arm.poll_until(10 * kNsPerUs);
  EXPECT_TRUE(fired);
}

TEST(Nvme, TransferChargesLatencyPlusBandwidth) {
  EventQueue queue;
  TimingConfig timing;
  NvmeLink nvme(queue, timing);
  const SimTime cost = nvme.transfer_to_host(1'400'000);
  // ~1 ms at 1400 MB/s plus command latency.
  EXPECT_NEAR(static_cast<double>(cost), 1e6 + 18e3, 1e4);
  EXPECT_EQ(nvme.bytes_to_host(), 1'400'000u);
  EXPECT_EQ(nvme.commands(), 1u);
}

TEST(Cosmos, FetchPagesToDramMovesContent) {
  CosmosPlatform cosmos;
  const std::vector<std::uint8_t> data(16 * 1024, 0x99);
  const FlashAddr addr = cosmos.flash().delinearize(5);
  cosmos.flash().write_page_immediate(addr, data);
  cosmos.fetch_pages_to_dram_sync({5}, 4096);
  EXPECT_EQ(cosmos.dram().memory().read_bytes(4096, 1)[0], 0x99);
  EXPECT_GT(cosmos.events().now(), 0u);
}

TEST(Cosmos, DramAllocatorAlignsAndExhausts) {
  CosmosConfig config;
  config.dram_bytes = 4096;
  CosmosPlatform cosmos(config);
  const auto a = cosmos.dram().allocate(100, 64);
  const auto b = cosmos.dram().allocate(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_THROW(cosmos.dram().allocate(8192), ndpgen::Error);
}

hw::PEDesign point_design() {
  const auto module = spec::parse_spec(
      "typedef struct { uint32_t x, y, z; } P3;"
      "typedef struct { uint32_t x, y; } P2;"
      "/* @autogen define parser Pt with input = P3, output = P2, "
      "mapping = { output.x = input.y, output.y = input.z } */");
  return hw::build_pe_design(analysis::analyze_parser(module, "Pt"));
}

TEST(Cosmos, AttachAndRunPeThroughMmio) {
  CosmosPlatform cosmos;
  const std::uint64_t base = cosmos.attach_pe(point_design());
  EXPECT_EQ(base, MmioBus::kDefaultBase);
  ASSERT_EQ(cosmos.pe_count(), 1u);

  std::vector<std::uint8_t> points;
  for (std::uint32_t i = 0; i < 10; ++i) {
    support::put_u32(points, i);
    support::put_u32(points, i + 100);
    support::put_u32(points, i + 200);
  }
  const auto src = cosmos.dram().allocate(points.size());
  const auto dst = cosmos.dram().allocate(4096);
  cosmos.dram().memory().write_bytes(src, points);

  // Configure "y > 104" through the firmware path (charges ARM time).
  cosmos.configure_pe_filter(0, 0, 1, 2 /* gt */, 104);
  const SimTime before = cosmos.events().now();
  const auto stats = cosmos.run_pe_chunk(
      0, src, dst, static_cast<std::uint32_t>(points.size()));
  EXPECT_EQ(stats.tuples_in, 10u);
  EXPECT_EQ(stats.tuples_out, 5u);
  // Firmware + PE execution advanced the virtual clock.
  EXPECT_GT(cosmos.events().now(), before);
  // Results are in DRAM.
  EXPECT_EQ(support::get_u32(cosmos.dram().memory().read_bytes(dst, 4), 0),
            105u);
}

TEST(Cosmos, MmioChargesArmTime) {
  CosmosPlatform cosmos;
  cosmos.attach_pe(point_design());
  const SimTime t0 = cosmos.events().now();
  cosmos.mmio().write(MmioBus::kDefaultBase + 8, 123);
  EXPECT_GT(cosmos.events().now(), t0);
  EXPECT_EQ(cosmos.mmio().read(MmioBus::kDefaultBase + 8), 123u);
}

TEST(Cosmos, MmioDecodeRejectsBadAddresses) {
  CosmosPlatform cosmos;
  cosmos.attach_pe(point_design());
  EXPECT_THROW(cosmos.mmio().write(0x1000, 1), ndpgen::Error);
  EXPECT_THROW(
      cosmos.mmio().write(MmioBus::kDefaultBase + MmioBus::kWindowSize, 1),
      ndpgen::Error);
}

TEST(Cosmos, MultiplePesGetDistinctWindows) {
  CosmosPlatform cosmos;
  const auto base0 = cosmos.attach_pe(point_design());
  const auto base1 = cosmos.attach_pe(point_design());
  EXPECT_EQ(base1 - base0, MmioBus::kWindowSize);
  EXPECT_EQ(cosmos.pe_count(), 2u);
}

TEST(Cosmos, RawRunDoesNotAdvanceDes) {
  CosmosPlatform cosmos;
  cosmos.attach_pe(point_design());
  std::vector<std::uint8_t> points(120, 0);
  const auto src = cosmos.dram().allocate(points.size());
  const auto dst = cosmos.dram().allocate(4096);
  cosmos.dram().memory().write_bytes(src, points);
  const SimTime t0 = cosmos.events().now();
  const auto stats = cosmos.run_pe_chunk_raw(
      0, src, dst, static_cast<std::uint32_t>(points.size()));
  EXPECT_EQ(cosmos.events().now(), t0);
  EXPECT_EQ(stats.tuples_in, 10u);
}

}  // namespace
}  // namespace ndpgen::platform
