#include "platform/flash.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::platform {
namespace {

class FlashFixture : public ::testing::Test {
 protected:
  FlashFixture() : flash_(queue_, timing_) {}

  EventQueue queue_;
  TimingConfig timing_;
  FlashModel flash_;
};

TEST_F(FlashFixture, TopologyDefaults) {
  const auto& topology = flash_.topology();
  EXPECT_EQ(topology.controllers, 2u);
  EXPECT_EQ(topology.total_luns(), 32u);
  EXPECT_EQ(topology.page_bytes, 16u * 1024);
}

TEST_F(FlashFixture, LinearizeRoundTrip) {
  for (std::uint64_t page : {0ull, 1ull, 31ull, 32ull, 1000ull, 123456ull}) {
    const FlashAddr addr = flash_.delinearize(page);
    EXPECT_EQ(flash_.linearize(addr), page) << page;
  }
}

TEST_F(FlashFixture, ConsecutivePagesInterleaveLuns) {
  // LUN-major interleave: consecutive linear pages land on distinct LUNs.
  const FlashAddr a = flash_.delinearize(0);
  const FlashAddr b = flash_.delinearize(1);
  EXPECT_FALSE(a.controller == b.controller && a.channel == b.channel &&
               a.lun == b.lun);
}

TEST_F(FlashFixture, ContentRoundTrip) {
  const std::vector<std::uint8_t> data(100, 0x42);
  const FlashAddr addr{0, 1, 2, 3, 4};
  EXPECT_FALSE(flash_.page_written(addr));
  flash_.write_page_immediate(addr, data);
  ASSERT_TRUE(flash_.page_written(addr));
  const auto view = flash_.page_data(addr);
  EXPECT_EQ(view.size(), flash_.topology().page_bytes);
  EXPECT_EQ(view[0], 0x42);
  EXPECT_EQ(view[99], 0x42);
  EXPECT_EQ(view[100], 0x00);  // Zero-padded to page size.
}

TEST_F(FlashFixture, ReadingUnwrittenPageThrows) {
  EXPECT_THROW((void)flash_.page_data(FlashAddr{0, 0, 0, 0, 0}),
               ndpgen::Error);
}

TEST_F(FlashFixture, BadAddressThrows) {
  EXPECT_THROW(flash_.linearize(FlashAddr{9, 0, 0, 0, 0}), ndpgen::Error);
  EXPECT_THROW(flash_.delinearize(flash_.topology().total_pages()),
               ndpgen::Error);
}

TEST_F(FlashFixture, SingleReadLatency) {
  SimTime done_at = 0;
  flash_.read_page(FlashAddr{0, 0, 0, 0, 0},
                   [&] { done_at = queue_.now(); });
  queue_.run();
  // tR + one page over the per-channel bus (controller rate / channels).
  const SimTime expected =
      timing_.flash_read_page_latency + flash_.page_transfer_time();
  EXPECT_EQ(done_at, expected);
  EXPECT_EQ(flash_.pages_read(), 1u);
  // Channel bus rate x channels x controllers = the paper's ~200 MB/s.
  const double channel_mbps =
      16.0 * 1024 /
      (static_cast<double>(flash_.page_transfer_time()) / 1e9) / 1e6;
  EXPECT_NEAR(channel_mbps * 4 * 2, 200.0, 5.0);
}

TEST_F(FlashFixture, SameLunReadsSerializeOnSense) {
  SimTime first = 0, second = 0;
  const FlashAddr addr{0, 0, 0, 0, 0};
  const FlashAddr next{0, 0, 0, 0, 1};
  flash_.read_page(addr, [&] { first = queue_.now(); });
  flash_.read_page(next, [&] { second = queue_.now(); });
  queue_.run();
  EXPECT_GT(second, first);
}

TEST_F(FlashFixture, DifferentControllersRunInParallel) {
  SimTime a = 0, b = 0;
  flash_.read_page(FlashAddr{0, 0, 0, 0, 0}, [&] { a = queue_.now(); });
  flash_.read_page(FlashAddr{1, 0, 0, 0, 0}, [&] { b = queue_.now(); });
  queue_.run();
  // Both complete at single-read latency: separate LUNs AND buses.
  EXPECT_EQ(a, b);
}

TEST_F(FlashFixture, ChannelBusSerializesTransfers) {
  // Two reads on different LUNs of the SAME channel: tR overlaps but the
  // channel-bus transfer serializes.
  SimTime a = 0, b = 0;
  flash_.read_page(FlashAddr{0, 0, 0, 0, 0}, [&] { a = queue_.now(); });
  flash_.read_page(FlashAddr{0, 0, 1, 0, 0}, [&] { b = queue_.now(); });
  queue_.run();
  EXPECT_EQ(b - a, flash_.page_transfer_time());
}

TEST_F(FlashFixture, DifferentChannelsRunInParallel) {
  // Same controller, different channels: independent NAND buses.
  SimTime a = 0, b = 0;
  flash_.read_page(FlashAddr{0, 0, 0, 0, 0}, [&] { a = queue_.now(); });
  flash_.read_page(FlashAddr{0, 1, 0, 0, 0}, [&] { b = queue_.now(); });
  queue_.run();
  EXPECT_EQ(a, b);
}

TEST_F(FlashFixture, SustainedBandwidthMatchesPaper) {
  // Stream 256 pages across all LUNs: aggregate ~200 MB/s (2 x Tiger4).
  constexpr int kPages = 256;
  for (int i = 0; i < kPages; ++i) {
    flash_.read_page(flash_.delinearize(static_cast<std::uint64_t>(i)),
                     [] {});
  }
  const SimTime elapsed = queue_.run();
  const double bytes = static_cast<double>(kPages) * 16 * 1024;
  const double mbps = bytes / (static_cast<double>(elapsed) / 1e9) / 1e6;
  EXPECT_NEAR(mbps, 200.0, 20.0);
}

TEST_F(FlashFixture, ProgramPageStoresDataAndTakesLonger) {
  const std::vector<std::uint8_t> data(16, 0x7);
  SimTime done = 0;
  flash_.program_page(FlashAddr{0, 2, 1, 5, 0}, data,
                      [&] { done = queue_.now(); });
  queue_.run();
  EXPECT_GE(done, timing_.flash_program_page_latency);
  EXPECT_EQ(flash_.page_data(FlashAddr{0, 2, 1, 5, 0})[0], 0x7);
  EXPECT_EQ(flash_.pages_programmed(), 1u);
}

TEST_F(FlashFixture, EstimateMatchesSchedule) {
  const FlashAddr addr{0, 3, 2, 1, 0};
  const SimTime estimate = flash_.estimate_read_completion(addr);
  SimTime actual = 0;
  flash_.read_page(addr, [&] { actual = queue_.now(); });
  queue_.run();
  EXPECT_EQ(estimate, actual);
}

TEST_F(FlashFixture, StatsReset) {
  flash_.read_page(FlashAddr{0, 0, 0, 0, 0}, [] {});
  queue_.run();
  EXPECT_EQ(flash_.bytes_read(), 16u * 1024);
  flash_.reset_stats();
  EXPECT_EQ(flash_.pages_read(), 0u);
}

}  // namespace
}  // namespace ndpgen::platform
