// Regression tests of NvmeLink::reserve: deterministic serialization of
// concurrent command submissions on the single shared host link, and
// retry/timeout behaviour under overlapping commands.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_profile.hpp"
#include "platform/event_queue.hpp"
#include "platform/nvme.hpp"
#include "platform/timing.hpp"

namespace ndpgen::platform {
namespace {

TEST(NvmeReserveTest, IdleLinkStartsAtRequestedTime) {
  EventQueue queue;
  const TimingConfig timing;
  NvmeLink nvme(queue, timing);
  const LinkGrant grant = nvme.reserve(500, 0);
  EXPECT_EQ(grant.start, 500u);
  EXPECT_EQ(grant.queued, 0u);
  EXPECT_EQ(grant.penalty, 0u);
  // Zero payload costs the bare command latency.
  EXPECT_EQ(grant.done, 500u + timing.nvme_command_latency);
  EXPECT_EQ(grant.seq, 1u);
  EXPECT_EQ(nvme.commands(), 1u);
  EXPECT_EQ(nvme.bytes_to_host(), 0u);
  // reserve never advances the DES clock — callers own their timeline.
  EXPECT_EQ(queue.now(), 0u);
}

TEST(NvmeReserveTest, EqualTimestampsSerializeInSubmissionOrder) {
  EventQueue queue;
  const TimingConfig timing;
  NvmeLink nvme(queue, timing);
  const LinkGrant first = nvme.reserve(1000, 0);
  const LinkGrant second = nvme.reserve(1000, 0);
  const LinkGrant third = nvme.reserve(1000, 0);
  // Stable FIFO tie-break: same requested instant, strictly increasing
  // sequence, each command starts exactly when the previous one drains.
  EXPECT_LT(first.seq, second.seq);
  EXPECT_LT(second.seq, third.seq);
  EXPECT_EQ(second.start, first.done);
  EXPECT_EQ(third.start, second.done);
  EXPECT_EQ(second.queued, first.done - 1000);
  EXPECT_EQ(third.queued, second.done - 1000);
}

TEST(NvmeReserveTest, OverlappingSubmissionQueuesBehindBusyLink) {
  EventQueue queue;
  const TimingConfig timing;
  NvmeLink nvme(queue, timing);
  const LinkGrant big = nvme.reserve(0, 1'000'000);  // ~714 us transfer.
  ASSERT_GT(big.done, 10'000u);
  const LinkGrant late = nvme.reserve(10'000, 0);
  EXPECT_EQ(late.start, big.done);
  EXPECT_EQ(late.queued, big.done - 10'000);
  // After the backlog drains, a submission past busy_until is immediate.
  const LinkGrant idle = nvme.reserve(late.done + 50, 0);
  EXPECT_EQ(idle.start, late.done + 50);
  EXPECT_EQ(idle.queued, 0u);
  EXPECT_EQ(nvme.busy_until(), idle.done);
}

TEST(NvmeReserveTest, PayloadChargesTransferTime) {
  EventQueue queue;
  const TimingConfig timing;
  NvmeLink nvme(queue, timing);
  const LinkGrant grant = nvme.reserve(0, 1'400'000);
  EXPECT_EQ(grant.done - grant.start,
            timing.nvme_transfer_time(1'400'000));
  EXPECT_EQ(nvme.bytes_to_host(), 1'400'000u);
}

TEST(NvmeReserveTest, MatchesClockAdvancingEntryPoints) {
  // reserve() and transfer_to_host()/command() must price identically —
  // the executors' arithmetic accounting and the host service's doorbells
  // meter the same physical link.
  EventQueue queue_a;
  EventQueue queue_b;
  const TimingConfig timing;
  NvmeLink arithmetic(queue_a, timing);
  NvmeLink advancing(queue_b, timing);
  const LinkGrant transfer = arithmetic.reserve(0, 64 * 1024);
  EXPECT_EQ(transfer.done - transfer.start,
            advancing.transfer_to_host(64 * 1024));
  const LinkGrant command = arithmetic.reserve(transfer.done, 0);
  EXPECT_EQ(command.done - command.start, advancing.command());
  EXPECT_EQ(queue_b.now(), transfer.done + command.done - command.start);
}

TEST(NvmeReserveTest, RetryTimeoutUnderOverlapIsDeterministic) {
  // Two independent links with the same injected-timeout profile must
  // grant an identical schedule for an identical overlapping submission
  // pattern — retries shift later commands, but deterministically.
  fault::FaultProfile profile;
  profile.nvme_timeout_rate = 0.2;
  profile.nvme_max_retries = 3;
  profile.seed = 99;
  const TimingConfig timing;
  auto run = [&](std::vector<LinkGrant>& grants) {
    EventQueue queue;
    fault::FaultInjector injector(profile);
    NvmeLink nvme(queue, timing);
    nvme.set_fault_injector(&injector);
    for (std::uint64_t i = 0; i < 64; ++i) {
      // Bursts of four commands at the same instant, bursts 5 us apart —
      // well inside one command's service time, so everything overlaps.
      grants.push_back(nvme.reserve((i / 4) * 5000, (i % 4) * 512));
    }
  };
  std::vector<LinkGrant> first;
  std::vector<LinkGrant> second;
  run(first);
  run(second);
  ASSERT_EQ(first.size(), second.size());
  std::uint64_t penalties = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].start, second[i].start) << i;
    EXPECT_EQ(first[i].done, second[i].done) << i;
    EXPECT_EQ(first[i].penalty, second[i].penalty) << i;
    EXPECT_EQ(first[i].seq, second[i].seq) << i;
    if (i > 0) {
      // Serialization invariant holds through injected retries.
      EXPECT_GE(first[i].start, first[i - 1].done) << i;
    }
    penalties += first[i].penalty;
  }
  // The profile actually fired: some command paid a timeout penalty and
  // the retry/backoff pushed the whole overlapping schedule back.
  EXPECT_GT(penalties, 0u);
}

}  // namespace
}  // namespace ndpgen::platform
