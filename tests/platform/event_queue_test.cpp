#include "platform/event_queue.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::platform {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(30, [&] { order.push_back(3); });
  queue.schedule_at(10, [&] { order.push_back(1); });
  queue.schedule_at(20, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTimeFifoByScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(5, [&] { order.push_back(1); });
  queue.schedule_at(5, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue queue;
  bool fired = false;
  queue.schedule_at(10, [] {});
  queue.run();
  queue.schedule_in(5, [&] { fired = true; });
  queue.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(queue.now(), 15u);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule_at(10, [&] { fired = true; });
  queue.cancel(id);
  queue.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue queue;
  queue.schedule_at(10, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(5, [] {}), ndpgen::Error);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int count = 0;
  queue.schedule_at(10, [&] { ++count; });
  queue.schedule_at(20, [&] { ++count; });
  queue.run_until(15);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(queue.now(), 15u);
  queue.run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) queue.schedule_in(10, chain);
  };
  queue.schedule_at(0, chain);
  queue.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueue, AdvanceToMovesIdleClock) {
  EventQueue queue;
  queue.advance_to(100);
  EXPECT_EQ(queue.now(), 100u);
  EXPECT_THROW(queue.advance_to(50), ndpgen::Error);
}

TEST(EventQueue, LateEventsNeverMoveTimeBackwards) {
  EventQueue queue;
  SimTime seen = 0;
  queue.schedule_at(10, [&] { seen = queue.now(); });
  queue.advance_to(50);  // A busy CPU ran past the completion time.
  queue.run();
  EXPECT_EQ(seen, 50u);
  EXPECT_EQ(queue.now(), 50u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.schedule_at(1, [] {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
}

TEST(EventQueue, DispatchCountTracksFiredOnly) {
  EventQueue queue;
  const EventId id = queue.schedule_at(1, [] {});
  queue.schedule_at(2, [] {});
  queue.cancel(id);
  queue.run();
  EXPECT_EQ(queue.dispatched(), 1u);
}

}  // namespace
}  // namespace ndpgen::platform
