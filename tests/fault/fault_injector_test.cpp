#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include "fault/fault_profile.hpp"

namespace ndpgen::fault {
namespace {

// --- FaultProfile parsing ---------------------------------------------

TEST(FaultProfile, DefaultIsFaultFree) {
  const FaultProfile profile;
  EXPECT_FALSE(profile.any_enabled());
  EXPECT_EQ(profile.summary(), "faults: none");
}

TEST(FaultProfile, ParsesEveryKey) {
  const auto parsed = FaultProfile::parse(
      "seed=42,read_ber=1e-6,wear_alpha=0.001,retention_alpha=0.01,"
      "ecc_bits=60,retry_factor=0.25,max_retries=3,bad_block_rate=0.02,"
      "silent_rate=1e-4,nvme_timeout_rate=0.05,nvme_max_retries=4,"
      "pe_fault_rate=0.1");
  ASSERT_TRUE(parsed.ok());
  const FaultProfile& p = parsed.value();
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.read_ber, 1e-6);
  EXPECT_DOUBLE_EQ(p.wear_alpha, 0.001);
  EXPECT_DOUBLE_EQ(p.retention_alpha, 0.01);
  EXPECT_EQ(p.ecc_correctable_bits, 60u);
  EXPECT_DOUBLE_EQ(p.retry_error_factor, 0.25);
  EXPECT_EQ(p.max_read_retries, 3u);
  EXPECT_DOUBLE_EQ(p.bad_block_rate, 0.02);
  EXPECT_DOUBLE_EQ(p.silent_corruption_rate, 1e-4);
  EXPECT_DOUBLE_EQ(p.nvme_timeout_rate, 0.05);
  EXPECT_EQ(p.nvme_max_retries, 4u);
  EXPECT_DOUBLE_EQ(p.pe_fault_rate, 0.1);
  EXPECT_TRUE(p.any_enabled());
}

TEST(FaultProfile, RejectsUnknownKey) {
  const auto parsed = FaultProfile::parse("read_ber=1e-6,bogus=1");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().kind, ErrorKind::kInvalidArg);
}

TEST(FaultProfile, RejectsMalformedNumber) {
  EXPECT_FALSE(FaultProfile::parse("read_ber=abc").ok());
  EXPECT_FALSE(FaultProfile::parse("seed=").ok());
  EXPECT_FALSE(FaultProfile::parse("read_ber").ok());
}

TEST(FaultProfile, PresetNamesSelectCannedEnvironments) {
  EXPECT_FALSE(FaultProfile::parse("none").value().any_enabled());
  const FaultProfile aged = FaultProfile::parse("aged").value();
  EXPECT_TRUE(aged.any_enabled());
  EXPECT_GT(aged.read_ber, 0.0);
  EXPECT_GT(aged.bad_block_rate, 0.0);
  EXPECT_EQ(aged.pe_fault_rate, 0.0);
  const FaultProfile degraded = FaultProfile::parse("degraded").value();
  EXPECT_GT(degraded.read_ber, aged.read_ber);
  EXPECT_GT(degraded.silent_corruption_rate, 0.0);
  const FaultProfile stress = FaultProfile::parse("stress").value();
  EXPECT_GT(stress.read_ber, degraded.read_ber);
  EXPECT_GT(stress.pe_fault_rate, 0.0);
}

TEST(FaultProfile, ParsesBitRotKeysAndPreset) {
  const auto parsed = FaultProfile::parse(
      "device_bitrot_blocks=3,device_bitrot_device=1,"
      "device_bitrot_at_frac=0.5,device_bitrot_at_us=250,"
      "device_bitrot_wrong_data=1");
  ASSERT_TRUE(parsed.ok());
  const FaultProfile& p = parsed.value();
  EXPECT_EQ(p.device_bitrot_blocks, 3u);
  EXPECT_EQ(p.device_bitrot_device, 1u);
  EXPECT_DOUBLE_EQ(p.device_bitrot_at_frac, 0.5);
  EXPECT_EQ(p.device_bitrot_at_ns, 250'000u);
  EXPECT_TRUE(p.device_bitrot_wrong_data);
  EXPECT_TRUE(p.device_bitrot_enabled());
  // Bit-rot is a cluster-level fault: the per-device media hooks stay on
  // the fault-free fast path, but the summary must still report it.
  EXPECT_FALSE(p.any_enabled());
  EXPECT_NE(p.summary(), "faults: none");

  const FaultProfile preset = FaultProfile::parse("bit-rot").value();
  EXPECT_TRUE(preset.device_bitrot_enabled());
  EXPECT_EQ(preset.device_bitrot_blocks, 4u);
  EXPECT_EQ(preset.device_bitrot_device, 0u);
  EXPECT_DOUBLE_EQ(preset.device_bitrot_at_frac, 0.25);
  EXPECT_FALSE(preset.device_bitrot_wrong_data);
  // Pure rot: media sampling stays clean so every CRC failure the
  // scrubber reports traces back to the injected damage.
  EXPECT_EQ(preset.read_ber, 0.0);
}

TEST(FaultProfile, PresetComposesWithOverridesInEitherOrder) {
  // Later key=value items override the preset's fields...
  const FaultProfile tweaked =
      FaultProfile::parse("aged,read_ber=9e-3,seed=7").value();
  EXPECT_EQ(tweaked.read_ber, 9e-3);
  EXPECT_EQ(tweaked.seed, 7u);
  EXPECT_GT(tweaked.bad_block_rate, 0.0);
  // ...and a preset never clobbers an already-parsed seed, so the
  // documented "seed=7,aged" spelling works too.
  EXPECT_EQ(FaultProfile::parse("seed=7,aged").value().seed, 7u);
  // "none" resets every rate a preceding preset turned on.
  EXPECT_FALSE(FaultProfile::parse("stress,none").value().any_enabled());
}

TEST(FaultProfile, UnknownPresetListsTheValidNames) {
  const auto parsed = FaultProfile::parse("agedd");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().kind, ErrorKind::kInvalidArg);
  EXPECT_NE(parsed.status().message.find("agedd"), std::string::npos);
  EXPECT_NE(parsed.status().message.find(FaultProfile::preset_names()),
            std::string::npos);
}

TEST(FaultProfile, SeedAloneKeepsFaultsOff) {
  const auto parsed = FaultProfile::parse("seed=99");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().any_enabled());
}

// --- ECC math ----------------------------------------------------------

TEST(FaultInjector, NoRetryWithinEccStrength) {
  bool uncorrectable = true;
  EXPECT_EQ(FaultInjector::retries_needed(40, 40, 0.5, 5, uncorrectable), 0u);
  EXPECT_FALSE(uncorrectable);
  EXPECT_EQ(FaultInjector::retries_needed(0, 40, 0.5, 5, uncorrectable), 0u);
  EXPECT_FALSE(uncorrectable);
}

TEST(FaultInjector, OneRetryHalvesErrors) {
  bool uncorrectable = true;
  // 41 raw errors > 40 ECC bits; one shifted-voltage step keeps 50%:
  // 20 <= 40 -> corrected after one retry.
  EXPECT_EQ(FaultInjector::retries_needed(41, 40, 0.5, 5, uncorrectable), 1u);
  EXPECT_FALSE(uncorrectable);
}

TEST(FaultInjector, UncorrectableWhenRetriesExhausted) {
  bool uncorrectable = false;
  // 1000 -> 500 -> 250, still > 40 with only 2 retries allowed.
  EXPECT_EQ(FaultInjector::retries_needed(1000, 40, 0.5, 2, uncorrectable),
            2u);
  EXPECT_TRUE(uncorrectable);
}

TEST(FaultInjector, RetryBudgetExactlyExhaustedStillCorrects) {
  bool uncorrectable = true;
  // 160 -> 80 -> 40: the very last allowed retry lands exactly ON the
  // ECC strength (residual == ecc_bits is correctable, the comparison is
  // strict), so the page survives with zero margin.
  EXPECT_EQ(FaultInjector::retries_needed(160, 40, 0.5, 2, uncorrectable),
            2u);
  EXPECT_FALSE(uncorrectable);
  // One fewer retry in the budget and the same page is uncorrectable:
  // 160 -> 80, budget spent, 80 > 40.
  EXPECT_EQ(FaultInjector::retries_needed(160, 40, 0.5, 1, uncorrectable),
            1u);
  EXPECT_TRUE(uncorrectable);
  // One more raw error and the exhausted budget is no longer enough:
  // 161 -> 80 -> 40 still corrects (truncation), but 164 -> 82 -> 41
  // leaves a single residual bit past the ECC strength.
  EXPECT_EQ(FaultInjector::retries_needed(164, 40, 0.5, 2, uncorrectable),
            2u);
  EXPECT_TRUE(uncorrectable);
  // A zero-retry budget degenerates to the pure ECC decision at the same
  // strict boundary: 40 corrects, 41 does not, neither draws a retry.
  EXPECT_EQ(FaultInjector::retries_needed(41, 40, 0.5, 0, uncorrectable),
            0u);
  EXPECT_TRUE(uncorrectable);
  EXPECT_EQ(FaultInjector::retries_needed(40, 40, 0.5, 0, uncorrectable),
            0u);
  EXPECT_FALSE(uncorrectable);
}

TEST(FaultInjector, RetryCountScalesWithErrorMagnitude) {
  bool uncorrectable = false;
  // Each doubling of raw errors costs one more halving step to get back
  // under the 40-bit threshold: 81 -> 40; 161 -> 80 -> 40; 321 -> ... -> 40.
  EXPECT_EQ(FaultInjector::retries_needed(81, 40, 0.5, 5, uncorrectable), 1u);
  EXPECT_FALSE(uncorrectable);
  EXPECT_EQ(FaultInjector::retries_needed(161, 40, 0.5, 5, uncorrectable),
            2u);
  EXPECT_FALSE(uncorrectable);
  EXPECT_EQ(FaultInjector::retries_needed(321, 40, 0.5, 5, uncorrectable),
            3u);
  EXPECT_FALSE(uncorrectable);
}

// --- Deterministic draws -----------------------------------------------

FaultProfile media_profile() {
  FaultProfile profile;
  profile.seed = 7;
  profile.read_ber = 4e-4;  // ~52 raw errors on a 16 KiB page.
  profile.silent_corruption_rate = 0.01;
  return profile;
}

TEST(FaultInjector, SameSeedSamePageReadSequence) {
  FaultInjector a(media_profile());
  FaultInjector b(media_profile());
  for (std::uint64_t page = 0; page < 64; ++page) {
    const auto fa = a.on_page_read(page, 16 * 1024 * 8, 1, 1'000'000);
    const auto fb = b.on_page_read(page, 16 * 1024 * 8, 1, 1'000'000);
    EXPECT_EQ(fa.raw_bit_errors, fb.raw_bit_errors);
    EXPECT_EQ(fa.retries, fb.retries);
    EXPECT_EQ(fa.uncorrectable, fb.uncorrectable);
    EXPECT_EQ(fa.silent_corruption, fb.silent_corruption);
  }
  EXPECT_EQ(a.page_reads_decided(), 64u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultProfile other = media_profile();
  other.seed = 8;
  FaultInjector a(media_profile());
  FaultInjector b(other);
  std::uint32_t differing = 0;
  for (std::uint64_t page = 0; page < 64; ++page) {
    const auto fa = a.on_page_read(page, 16 * 1024 * 8, 1, 0);
    const auto fb = b.on_page_read(page, 16 * 1024 * 8, 1, 0);
    differing += fa.raw_bit_errors != fb.raw_bit_errors ? 1 : 0;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, RereadAdvancesPageOrdinal) {
  // Two reads of the same page use different ordinals (read-disturb
  // stream), so a fresh injector replays the same two-draw sequence.
  FaultInjector a(media_profile());
  FaultInjector b(media_profile());
  const auto a1 = a.on_page_read(5, 16 * 1024 * 8, 1, 0);
  const auto a2 = a.on_page_read(5, 16 * 1024 * 8, 1, 0);
  const auto b1 = b.on_page_read(5, 16 * 1024 * 8, 1, 0);
  const auto b2 = b.on_page_read(5, 16 * 1024 * 8, 1, 0);
  EXPECT_EQ(a1.raw_bit_errors, b1.raw_bit_errors);
  EXPECT_EQ(a2.raw_bit_errors, b2.raw_bit_errors);
}

TEST(FaultInjector, WearAndRetentionIncreaseErrorRate) {
  FaultProfile profile;
  profile.seed = 7;
  profile.read_ber = 2e-4;
  profile.wear_alpha = 0.01;
  profile.retention_alpha = 0.1;
  FaultInjector injector(profile);
  std::uint64_t fresh = 0, worn = 0;
  for (std::uint64_t page = 0; page < 256; ++page) {
    fresh += injector.on_page_read(page, 16 * 1024 * 8, 0, 0).raw_bit_errors;
  }
  for (std::uint64_t page = 0; page < 256; ++page) {
    worn += injector
                .on_page_read(page + 10'000, 16 * 1024 * 8, 1'000,
                              3'600'000'000'000ULL)
                .raw_bit_errors;
  }
  EXPECT_GT(worn, fresh);
}

TEST(FaultInjector, BadBlockIsOrderIndependent) {
  FaultProfile profile;
  profile.seed = 7;
  profile.bad_block_rate = 0.1;
  FaultInjector injector(profile);
  std::vector<bool> forward, backward;
  for (std::uint32_t block = 0; block < 512; ++block) {
    forward.push_back(injector.is_bad_block(3, block));
  }
  for (std::uint32_t block = 512; block-- > 0;) {
    backward.push_back(injector.is_bad_block(3, block));
  }
  std::uint32_t bad = 0;
  for (std::uint32_t block = 0; block < 512; ++block) {
    EXPECT_EQ(forward[block], backward[511 - block]);
    bad += forward[block] ? 1 : 0;
  }
  // ~10% of 512 slots; generous deterministic bounds.
  EXPECT_GT(bad, 20u);
  EXPECT_LT(bad, 110u);
}

TEST(FaultInjector, NvmeTimeoutsRespectRetryCap) {
  FaultProfile profile;
  profile.seed = 7;
  profile.nvme_timeout_rate = 0.9;
  profile.nvme_max_retries = 3;
  FaultInjector injector(profile);
  std::uint32_t capped = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t timeouts = injector.next_nvme_timeouts();
    EXPECT_LE(timeouts, 3u);
    capped += timeouts == 3 ? 1 : 0;
  }
  EXPECT_GT(capped, 0u);  // At 90% per-attempt rate the cap must be hit.
}

TEST(FaultInjector, DisabledInjectorDrawsNothing) {
  FaultInjector injector{FaultProfile{}};
  EXPECT_FALSE(injector.enabled());
  const auto fault = injector.on_page_read(0, 16 * 1024 * 8, 100, 100);
  EXPECT_EQ(fault.raw_bit_errors, 0u);
  EXPECT_FALSE(injector.is_bad_block(0, 0));
  EXPECT_EQ(injector.next_nvme_timeouts(), 0u);
  EXPECT_FALSE(injector.next_pe_hang(0));
  EXPECT_EQ(injector.page_reads_decided(), 0u);
}

TEST(FaultInjector, PeHangRateIsPlausible) {
  FaultProfile profile;
  profile.seed = 7;
  profile.pe_fault_rate = 0.5;
  FaultInjector injector(profile);
  std::uint32_t hangs = 0;
  for (int i = 0; i < 200; ++i) hangs += injector.next_pe_hang(0) ? 1 : 0;
  EXPECT_GT(hangs, 60u);
  EXPECT_LT(hangs, 140u);
}

}  // namespace
}  // namespace ndpgen::fault
