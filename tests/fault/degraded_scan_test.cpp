// End-to-end graceful degradation: scans and GETs over faulted media must
// complete without throwing, return exactly the fault-free results, and
// account for every retry/recovery in the new ScanStats/GetStats fields.
#include <gtest/gtest.h>

#include <memory>

#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::fault {
namespace {

constexpr std::uint64_t kScale = 4096;

/// One platform + paper store + PaperScan PE, optionally on faulted media.
struct Scenario {
  explicit Scenario(const core::Framework& framework,
                    const core::CompileResult& compiled,
                    const FaultProfile& profile = FaultProfile())
      : cosmos(make_config(profile)), db(cosmos, db_config()) {
    const workload::PubGraphGenerator generator(
        workload::PubGraphConfig{.scale_divisor = kScale});
    loaded = workload::load_papers(db, generator);
    pe_index = framework.instantiate(compiled, "PaperScan", cosmos);
  }

  static platform::CosmosConfig make_config(const FaultProfile& profile) {
    platform::CosmosConfig config;
    config.fault = profile;
    return config;
  }

  static kv::DBConfig db_config() {
    kv::DBConfig config;
    config.record_bytes = workload::PaperRecord::kBytes;
    config.extractor = workload::paper_key;
    return config;
  }

  ndp::HybridExecutor executor(const core::CompileResult& compiled,
                               ndp::ExecMode mode) {
    ndp::ExecutorConfig config;
    config.mode = mode;
    if (mode == ndp::ExecMode::kHardware) config.pe_indices = {pe_index};
    config.result_key_extractor = workload::paper_result_key;
    const auto& artifacts = compiled.get("PaperScan");
    return ndp::HybridExecutor(db, artifacts.analyzed,
                               artifacts.design.operators, config);
  }

  platform::CosmosPlatform cosmos;
  kv::NKV db;
  std::uint64_t loaded = 0;
  std::size_t pe_index = 0;
};

class DegradedScanFixture : public ::testing::Test {
 protected:
  DegradedScanFixture()
      : compiled_(framework_.compile(workload::pubgraph_spec_source())),
        clean_(framework_, compiled_) {
    reference_ = clean_.executor(compiled_, ndp::ExecMode::kSoftware)
                     .scan(predicate());
  }

  static std::vector<ndp::FilterPredicate> predicate() {
    return {{"year", "lt", 1990}};
  }

  ndp::ScanStats scan_with(const FaultProfile& profile, ndp::ExecMode mode) {
    Scenario faulted(framework_, compiled_, profile);
    return faulted.executor(compiled_, mode).scan(predicate());
  }

  core::Framework framework_;
  core::CompileResult compiled_;
  Scenario clean_;
  ndp::ScanStats reference_;
};

FaultProfile retry_profile() {
  FaultProfile profile;
  profile.seed = 7;
  profile.read_ber = 4e-4;  // ~52 raw errors/page > 40 ECC bits -> retries.
  return profile;
}

FaultProfile uncorrectable_profile() {
  FaultProfile profile;
  profile.seed = 7;
  // ~2600 raw errors/page; five halving retries still leave ~81 > 40, so
  // every page is uncorrectable and every block takes the recovery path.
  profile.read_ber = 2e-2;
  return profile;
}

FaultProfile silent_profile() {
  FaultProfile profile;
  profile.seed = 7;
  profile.silent_corruption_rate = 1.0;
  return profile;
}

FaultProfile pe_hang_profile() {
  FaultProfile profile;
  profile.seed = 7;
  profile.pe_fault_rate = 0.9;
  return profile;
}

TEST_F(DegradedScanFixture, CleanDefaultReportsNoFaults) {
  EXPECT_GT(reference_.results, 0u);
  EXPECT_EQ(reference_.blocks_retried, 0u);
  EXPECT_EQ(reference_.blocks_degraded_to_software, 0u);
  EXPECT_EQ(reference_.uncorrectable_blocks, 0u);
}

TEST_F(DegradedScanFixture, EccRetriesKeepScanCorrect) {
  const auto stats = scan_with(retry_profile(), ndp::ExecMode::kHardware);
  EXPECT_EQ(stats.results, reference_.results);
  EXPECT_EQ(stats.tuples_scanned, reference_.tuples_scanned);
  EXPECT_GT(stats.blocks_retried, 0u);
  EXPECT_EQ(stats.uncorrectable_blocks, 0u);
}

TEST_F(DegradedScanFixture, UncorrectableMediaDegradesToSoftware) {
  const auto stats =
      scan_with(uncorrectable_profile(), ndp::ExecMode::kHardware);
  EXPECT_EQ(stats.results, reference_.results);
  EXPECT_EQ(stats.uncorrectable_blocks, stats.blocks);
  EXPECT_EQ(stats.blocks_degraded_to_software, stats.blocks);
}

TEST_F(DegradedScanFixture, SilentCorruptionCaughtByChecksum) {
  const auto stats = scan_with(silent_profile(), ndp::ExecMode::kHardware);
  EXPECT_EQ(stats.results, reference_.results);
  // Every block fails CRC verification and goes through recovery.
  EXPECT_EQ(stats.uncorrectable_blocks, stats.blocks);
  EXPECT_GT(stats.blocks_degraded_to_software, 0u);
}

TEST_F(DegradedScanFixture, SoftwareScanSurvivesDegradedMedia) {
  const auto stats =
      scan_with(uncorrectable_profile(), ndp::ExecMode::kSoftware);
  EXPECT_EQ(stats.results, reference_.results);
  EXPECT_EQ(stats.uncorrectable_blocks, stats.blocks);
  // Already on the software path: nothing to degrade to.
  EXPECT_EQ(stats.blocks_degraded_to_software, 0u);
}

TEST_F(DegradedScanFixture, PeHangsRerouteBlocksToSoftware) {
  const auto stats = scan_with(pe_hang_profile(), ndp::ExecMode::kHardware);
  EXPECT_EQ(stats.results, reference_.results);
  EXPECT_GT(stats.blocks_degraded_to_software, 0u);
  EXPECT_EQ(stats.uncorrectable_blocks, 0u);
}

TEST_F(DegradedScanFixture, DegradationCostsVirtualTime) {
  const auto degraded =
      scan_with(uncorrectable_profile(), ndp::ExecMode::kHardware);
  const auto clean_hw =
      clean_.executor(compiled_, ndp::ExecMode::kHardware).scan(predicate());
  EXPECT_GT(degraded.elapsed, clean_hw.elapsed);
}

TEST_F(DegradedScanFixture, SameSeedSameDegradationAccounting) {
  const auto a = scan_with(retry_profile(), ndp::ExecMode::kHardware);
  const auto b = scan_with(retry_profile(), ndp::ExecMode::kHardware);
  EXPECT_EQ(a.blocks_retried, b.blocks_retried);
  EXPECT_EQ(a.blocks_degraded_to_software, b.blocks_degraded_to_software);
  EXPECT_EQ(a.uncorrectable_blocks, b.uncorrectable_blocks);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.results, b.results);
}

TEST_F(DegradedScanFixture, BadBlocksAreRemappedAtPlacement) {
  FaultProfile profile;
  profile.seed = 7;
  profile.bad_block_rate = 0.2;
  Scenario faulted(framework_, compiled_, profile);
  EXPECT_GT(faulted.db.placement().blocks_remapped(), 0u);
  const auto stats =
      faulted.executor(compiled_, ndp::ExecMode::kHardware).scan(predicate());
  EXPECT_EQ(stats.results, reference_.results);
}

TEST_F(DegradedScanFixture, GetSurvivesDegradedMedia) {
  const kv::Key key{123, 0};
  const auto reference =
      clean_.executor(compiled_, ndp::ExecMode::kSoftware).get(key);
  ASSERT_TRUE(reference.found);

  Scenario faulted(framework_, compiled_, uncorrectable_profile());
  auto executor = faulted.executor(compiled_, ndp::ExecMode::kHardware);
  const auto stats = executor.get(key);
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.record, reference.record);
  EXPECT_GT(stats.uncorrectable_blocks, 0u);
  EXPECT_GT(stats.blocks_degraded_to_software, 0u);
}

TEST_F(DegradedScanFixture, GetSurvivesPeHangs) {
  const kv::Key key{123, 0};
  const auto reference =
      clean_.executor(compiled_, ndp::ExecMode::kSoftware).get(key);
  ASSERT_TRUE(reference.found);

  FaultProfile profile;
  profile.seed = 7;
  profile.pe_fault_rate = 1.0;  // Every dispatch hangs; watchdog catches.
  Scenario faulted(framework_, compiled_, profile);
  auto executor = faulted.executor(compiled_, ndp::ExecMode::kHardware);
  const auto stats = executor.get(key);
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.record, reference.record);
  EXPECT_GT(stats.blocks_degraded_to_software, 0u);
}

TEST_F(DegradedScanFixture, NvmeTimeoutsDelayButCompleteScan) {
  FaultProfile profile;
  profile.seed = 7;
  profile.nvme_timeout_rate = 0.5;
  const auto stats = scan_with(profile, ndp::ExecMode::kHardware);
  EXPECT_EQ(stats.results, reference_.results);

  Scenario faulted(framework_, compiled_, profile);
  auto executor = faulted.executor(compiled_, ndp::ExecMode::kHardware);
  (void)executor.scan(predicate());
  // Each NDP command draws its own timeout outcome; a handful of GETs
  // guarantees the 50% per-attempt rate fires at least once.
  for (std::uint64_t k = 1; k <= 8; ++k) {
    (void)executor.get(kv::Key{k, 0});
  }
  EXPECT_GT(faulted.cosmos.nvme().timeouts(), 0u);
  EXPECT_GT(faulted.cosmos.nvme().backoff_ns(), 0u);
}

}  // namespace
}  // namespace ndpgen::fault
