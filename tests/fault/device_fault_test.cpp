// Device-level fault oracle: scheduled triggers, crash/brownout/flap
// semantics, and target isolation.
#include "fault/device_fault.hpp"

#include <gtest/gtest.h>

namespace ndpgen::fault {
namespace {

FaultProfile crash_profile() {
  FaultProfile profile;
  profile.device_fault = DeviceFaultKind::kCrash;
  profile.device_fault_device = 1;
  profile.device_fault_at_frac = 0.5;
  return profile;
}

TEST(DeviceFaultInjectorTest, DisabledInjectorIsInert) {
  DeviceFaultInjector injector;
  injector.arm(100);
  injector.on_doorbell(10);
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.fired_at().has_value());
  EXPECT_TRUE(injector.alive_at(0, 1'000'000));
  EXPECT_TRUE(injector.link_up_at(0, 1'000'000));
  EXPECT_EQ(injector.latency_factor_at(0, 1'000'000), 1.0);
}

TEST(DeviceFaultInjectorTest, CrashLatchesAtTheKthDoorbell) {
  DeviceFaultInjector injector(crash_profile());
  injector.arm(10);  // frac 0.5 -> the 5th doorbell.
  for (int i = 1; i <= 4; ++i) {
    injector.on_doorbell(i * 100);
    EXPECT_FALSE(injector.fired_at().has_value()) << i;
    EXPECT_TRUE(injector.alive_at(1, i * 100));
  }
  injector.on_doorbell(500);
  ASSERT_TRUE(injector.fired_at().has_value());
  EXPECT_EQ(*injector.fired_at(), 500);
  // Crash: permanently down from the fire instant, link included.
  EXPECT_TRUE(injector.alive_at(1, 499));
  EXPECT_FALSE(injector.alive_at(1, 500));
  EXPECT_FALSE(injector.alive_at(1, 1'000'000'000));
  EXPECT_FALSE(injector.link_up_at(1, 500));
  // Only the targeted device is affected.
  EXPECT_TRUE(injector.alive_at(0, 1'000'000'000));
  EXPECT_TRUE(injector.link_up_at(2, 1'000'000'000));
}

TEST(DeviceFaultInjectorTest, ZeroBudgetLeavesTheFaultDormant) {
  DeviceFaultInjector injector(crash_profile());
  injector.arm(0);
  for (int i = 0; i < 32; ++i) injector.on_doorbell(i);
  EXPECT_FALSE(injector.fired_at().has_value());
  EXPECT_TRUE(injector.alive_at(1, 1'000'000'000));
}

TEST(DeviceFaultInjectorTest, TinyBudgetStillFires) {
  DeviceFaultInjector injector(crash_profile());
  injector.arm(1);  // round(0.5 * 1) == 0 -> clamped to the 1st doorbell.
  injector.on_doorbell(42);
  ASSERT_TRUE(injector.fired_at().has_value());
  EXPECT_EQ(*injector.fired_at(), 42);
}

TEST(DeviceFaultInjectorTest, AbsoluteTriggerIsKnownFromConstruction) {
  FaultProfile profile = crash_profile();
  profile.device_fault_at_ns = 7'000;
  const DeviceFaultInjector injector(profile);
  ASSERT_TRUE(injector.fired_at().has_value());
  EXPECT_EQ(*injector.fired_at(), 7'000);
  EXPECT_TRUE(injector.alive_at(1, 6'999));
  EXPECT_FALSE(injector.alive_at(1, 7'000));
}

TEST(DeviceFaultInjectorTest, BrownoutMultipliesLatencyInsideTheWindow) {
  FaultProfile profile;
  profile.device_fault = DeviceFaultKind::kBrownout;
  profile.device_fault_device = 0;
  profile.device_fault_at_ns = 1'000'000;
  profile.device_fault_duration_ns = 2'000'000;
  profile.brownout_factor = 8.0;
  const DeviceFaultInjector injector(profile);
  EXPECT_EQ(injector.latency_factor_at(0, 999'999), 1.0);
  EXPECT_EQ(injector.latency_factor_at(0, 1'000'000), 8.0);
  EXPECT_EQ(injector.latency_factor_at(0, 2'999'999), 8.0);
  EXPECT_EQ(injector.latency_factor_at(0, 3'000'000), 1.0);
  // A brownout never takes the device or its link down.
  EXPECT_TRUE(injector.alive_at(0, 2'000'000));
  EXPECT_TRUE(injector.link_up_at(0, 2'000'000));
  EXPECT_EQ(injector.latency_factor_at(1, 2'000'000), 1.0);
}

TEST(DeviceFaultInjectorTest, BitRotFiresIndependentlyOfTheDeviceFault) {
  FaultProfile profile = crash_profile();  // Crash at frac 0.5.
  profile.device_bitrot_blocks = 4;
  profile.device_bitrot_device = 2;
  profile.device_bitrot_at_frac = 0.25;
  DeviceFaultInjector injector(profile);
  injector.arm(8);  // Rot at the 2nd doorbell, crash at the 4th.

  injector.on_doorbell(100);
  EXPECT_FALSE(injector.bitrot_due(100));
  injector.on_doorbell(200);
  ASSERT_TRUE(injector.bitrot_fired_at().has_value());
  EXPECT_EQ(*injector.bitrot_fired_at(), 200);
  EXPECT_TRUE(injector.bitrot_due(200));
  EXPECT_FALSE(injector.bitrot_due(199));
  // The whole-device trigger keeps its own, later schedule.
  EXPECT_FALSE(injector.fired_at().has_value());
  injector.on_doorbell(300);
  injector.on_doorbell(400);
  ASSERT_TRUE(injector.fired_at().has_value());
  EXPECT_EQ(*injector.fired_at(), 400);
  // Rot never touches liveness, link or latency — it damages bytes.
  EXPECT_TRUE(injector.alive_at(2, 1'000'000));
  EXPECT_EQ(injector.bitrot_device(), 2u);
  EXPECT_EQ(injector.bitrot_blocks(), 4u);
  EXPECT_FALSE(injector.bitrot_wrong_data());
}

TEST(DeviceFaultInjectorTest, BitRotAbsoluteTriggerNeedsNoArming) {
  FaultProfile profile;
  profile.device_bitrot_blocks = 1;
  profile.device_bitrot_at_ns = 5'000;
  const DeviceFaultInjector injector(profile);
  ASSERT_TRUE(injector.bitrot_fired_at().has_value());
  EXPECT_EQ(*injector.bitrot_fired_at(), 5'000);
  EXPECT_FALSE(injector.bitrot_due(4'999));
  EXPECT_TRUE(injector.bitrot_due(5'000));
}

TEST(DeviceFaultInjectorTest, DisabledBitRotIsNeverDue) {
  const DeviceFaultInjector injector(crash_profile());
  EXPECT_FALSE(injector.bitrot_enabled());
  EXPECT_FALSE(injector.bitrot_due(1'000'000'000));
}

TEST(DeviceFaultInjectorTest, LinkFlapDropsOnlyTheLinkAndRecovers) {
  FaultProfile profile;
  profile.device_fault = DeviceFaultKind::kLinkFlap;
  profile.device_fault_device = 2;
  profile.device_fault_at_ns = 1'000'000;
  profile.device_fault_duration_ns = 500'000;
  const DeviceFaultInjector injector(profile);
  EXPECT_TRUE(injector.link_up_at(2, 999'999));
  EXPECT_FALSE(injector.link_up_at(2, 1'000'000));
  EXPECT_FALSE(injector.link_up_at(2, 1'499'999));
  EXPECT_TRUE(injector.link_up_at(2, 1'500'000));  // Window over.
  // Data intact, latency untouched.
  EXPECT_TRUE(injector.alive_at(2, 1'200'000));
  EXPECT_EQ(injector.latency_factor_at(2, 1'200'000), 1.0);
}

}  // namespace
}  // namespace ndpgen::fault
