// Background scrubber: budget pacing, cyclic patrol coverage, persistent
// rot detection, and the wrong-data blind spot anti-entropy exists for.
#include "cluster/scrub.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/block_format.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::cluster {
namespace {

constexpr platform::SimTime kMs = 1000 * 1000;

kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

std::unique_ptr<SmartSsdDevice> loaded_device() {
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 2048});
  auto device = std::make_unique<SmartSsdDevice>(
      0, platform::CosmosConfig{}, paper_db_config());
  device->enable_digests(16, [](const kv::Key& key) {
    return static_cast<std::uint32_t>(key.hi % 16);
  });
  std::uint64_t index = 0;
  device->load_sorted(
      /*level=*/2,
      [&](std::vector<std::uint8_t>& record) {
        if (index >= generator.paper_count()) return false;
        record = generator.paper(index++).serialize();
        return true;
      },
      /*records_per_sst=*/64 * 255);
  return device;
}

ScrubConfig default_scrub() {
  ScrubConfig config;
  config.enabled = true;
  return config;  // share 0.1 of 200 MB/s = 0.02 bytes per virtual ns.
}

TEST(DeviceScrubberTest, ValidatesConfiguration) {
  auto device = loaded_device();
  ScrubConfig bad = default_scrub();
  bad.scrub_share = 0.0;
  EXPECT_THROW(DeviceScrubber(*device, bad), Error);
  bad.scrub_share = 1.0;
  EXPECT_THROW(DeviceScrubber(*device, bad), Error);
  bad = default_scrub();
  bad.bandwidth_mbps = 0.0;
  EXPECT_THROW(DeviceScrubber(*device, bad), Error);
}

TEST(DeviceScrubberTest, PacingFollowsTheByteBudget) {
  auto device = loaded_device();
  DeviceScrubber scrubber(*device, default_scrub());
  // 0.02 B/ns x 2 ms covers exactly one 32 KiB block (1.64 ms each).
  scrubber.advance(2 * kMs);
  EXPECT_EQ(scrubber.report().blocks_verified, 1u);
  scrubber.advance(4 * kMs);
  EXPECT_EQ(scrubber.report().blocks_verified, 2u);
  EXPECT_EQ(scrubber.report().bytes_scanned,
            2u * kv::kDataBlockBytes);
  EXPECT_EQ(scrubber.report().crc_failures, 0u);
}

TEST(DeviceScrubberTest, AdvanceGranularityNeverChangesCoverage) {
  auto device = loaded_device();
  DeviceScrubber coarse(*device, default_scrub());
  DeviceScrubber fine(*device, default_scrub());
  // 8 ms stays under a full pass, so the per-advance one-pass cap (see
  // PatrolIsCyclicAndCleanMediaNeverAlarms) never bites for either pace.
  coarse.advance(8 * kMs);
  for (int step = 1; step <= 8; ++step) fine.advance(step * kMs);
  // The patrol is a pure function of (config, now) — how often the
  // coordinator happens to dispatch must not move it.
  EXPECT_EQ(coarse.report().blocks_verified, fine.report().blocks_verified);
  EXPECT_EQ(coarse.report().bytes_scanned, fine.report().bytes_scanned);
  EXPECT_GT(coarse.report().blocks_verified, 2u);
}

TEST(DeviceScrubberTest, PatrolIsCyclicAndCleanMediaNeverAlarms) {
  auto device = loaded_device();
  DeviceScrubber scrubber(*device, default_scrub());
  // Budget per advance is capped at one full pass; two huge advances
  // walk the store at least twice (the cursor wraps, patrol never ends).
  scrubber.advance(platform::SimTime{1} << 40);
  const std::uint64_t one_pass = scrubber.report().blocks_verified;
  ASSERT_GT(one_pass, 0u);
  scrubber.advance(platform::SimTime{1} << 41);
  EXPECT_EQ(scrubber.report().blocks_verified, 2 * one_pass);
  EXPECT_EQ(scrubber.report().crc_failures, 0u);
  EXPECT_EQ(scrubber.report().transient_recovered, 0u);
}

TEST(DeviceScrubberTest, DetectsPersistentRotUntilRepaired) {
  auto device = loaded_device();
  DeviceScrubber scrubber(*device, default_scrub());
  const std::uint64_t rotted = device->corrupt_blocks(2, /*seed=*/7);
  ASSERT_EQ(rotted, 2u);

  // One full pass finds every rotted block; real rot never comes back
  // clean on the recovery re-read, so these are persistent failures.
  const std::uint64_t detected = scrubber.advance(platform::SimTime{1} << 40);
  EXPECT_EQ(detected, 2u);
  EXPECT_EQ(scrubber.report().crc_failures, 2u);
  EXPECT_TRUE(device->has_corruption());

  // After the replica-sourced repair the next pass is quiet again.
  EXPECT_GT(device->repair_corruption(), 0u);
  EXPECT_FALSE(device->has_corruption());
  EXPECT_EQ(scrubber.advance(platform::SimTime{1} << 41), 0u);
  EXPECT_EQ(scrubber.report().crc_failures, 2u);
}

TEST(DeviceScrubberTest, WrongDataRotEvadesEveryCrcCheck) {
  auto device = loaded_device();
  DeviceScrubber scrubber(*device, default_scrub());
  ASSERT_EQ(device->corrupt_blocks(2, /*seed=*/7, /*wrong_data=*/true), 2u);

  // The rewritten index CRC matches the rotten bytes: a full patrol pass
  // sees nothing wrong. This is the structural blind spot that makes
  // cross-replica digest comparison necessary, not optional.
  EXPECT_EQ(scrubber.advance(platform::SimTime{1} << 40), 0u);
  EXPECT_EQ(scrubber.report().crc_failures, 0u);
  EXPECT_GT(scrubber.report().blocks_verified, 0u);

  // The digests do see it.
  const PartitionDigestSet observed = device->observed_digests();
  bool diverged = false;
  for (std::uint32_t p = 0; p < observed.partitions(); ++p) {
    diverged = diverged ||
               observed.digest(p) != device->maintained_digests().digest(p);
  }
  EXPECT_TRUE(diverged);
}

TEST(DeviceScrubberTest, CorruptBlockPickIsSeedDeterministic) {
  auto a = loaded_device();
  auto b = loaded_device();
  ASSERT_EQ(a->corrupt_blocks(3, /*seed=*/99), 3u);
  ASSERT_EQ(b->corrupt_blocks(3, /*seed=*/99), 3u);
  const PartitionDigestSet oa = a->observed_digests();
  const PartitionDigestSet ob = b->observed_digests();
  for (std::uint32_t p = 0; p < oa.partitions(); ++p) {
    EXPECT_EQ(oa.digest(p), ob.digest(p)) << p;
  }
}

}  // namespace
}  // namespace ndpgen::cluster
