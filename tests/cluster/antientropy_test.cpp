// Partition digest trees: order/layout independence, XOR self-inverse,
// divergence localization, and the maintained==observed contract on
// clean devices.
#include "cluster/antientropy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/device.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::cluster {
namespace {

constexpr std::uint32_t kPartitions = 16;

std::uint32_t test_partition_of(const kv::Key& key) {
  return static_cast<std::uint32_t>(key.hi % kPartitions);
}

kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

/// A digest-enabled device bulk-loaded with every generator paper, packed
/// `records_per_sst` to an SST (the layout knob the digests must ignore).
std::unique_ptr<SmartSsdDevice> loaded_device(
    const workload::PubGraphGenerator& generator,
    std::uint64_t records_per_sst) {
  auto device = std::make_unique<SmartSsdDevice>(
      0, platform::CosmosConfig{}, paper_db_config());
  device->enable_digests(kPartitions, test_partition_of);
  std::uint64_t index = 0;
  device->load_sorted(
      /*level=*/2,
      [&](std::vector<std::uint8_t>& record) {
        if (index >= generator.paper_count()) return false;
        record = generator.paper(index++).serialize();
        return true;
      },
      records_per_sst);
  return device;
}

TEST(PartitionDigestTest, RecordHashIsAPureFunctionOfTheBytes) {
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {1, 2, 3, 5};
  EXPECT_EQ(record_digest_hash(a), record_digest_hash(a));
  EXPECT_NE(record_digest_hash(a), record_digest_hash(b));
  EXPECT_NE(record_digest_hash(a), 0u);
}

TEST(PartitionDigestTest, ToggleIsSelfInverse) {
  PartitionDigestSet set(kPartitions);
  const std::uint64_t empty_root = set.root(3);
  set.toggle(3, 0xdeadbeefcafe1234ULL);
  EXPECT_NE(set.root(3), empty_root);
  // The same call removes what it added: add/remove need no separate
  // bookkeeping, which is what lets one kv hook serve both directions.
  set.toggle(3, 0xdeadbeefcafe1234ULL);
  EXPECT_EQ(set.root(3), empty_root);
  EXPECT_EQ(set.digest(3), PartitionDigest{});
}

TEST(PartitionDigestTest, ToggleOrderNeverMatters) {
  PartitionDigestSet forward(kPartitions), reverse(kPartitions);
  const std::uint64_t hashes[] = {11, 0xffULL << 40, 12345, 11 * 997};
  for (const std::uint64_t h : hashes) forward.toggle(5, h);
  for (int i = 3; i >= 0; --i) reverse.toggle(5, hashes[i]);
  EXPECT_EQ(forward.digest(5), reverse.digest(5));
}

TEST(PartitionDigestTest, RootIsPositionSalted) {
  PartitionDigest a, b;
  a.leaves[0] = 0x1111;
  b.leaves[1] = 0x1111;
  // The same leaf value in different buckets must not fold to the same
  // root, or a bucket swap would be invisible.
  EXPECT_NE(a.root(), b.root());
}

TEST(PartitionDigestTest, DivergentLeavesLocalizeTheDifference) {
  PartitionDigest a, b;
  b.leaves[3] ^= 0xabc;
  b.leaves[7] ^= 0xdef;
  const std::vector<std::uint32_t> expected = {3, 7};
  EXPECT_EQ(PartitionDigestSet::divergent_leaves(a, b), expected);
  EXPECT_TRUE(PartitionDigestSet::divergent_leaves(a, a).empty());
}

TEST(PartitionDigestTest, ObservedDigestsIgnoreSstLayout) {
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 2048});
  // Same logical records, very different physical layouts: one fat SST
  // vs many small ones (different block packing, different tables).
  auto fat = loaded_device(generator, 64 * 255);
  auto slim = loaded_device(generator, 50);

  const PartitionDigestSet fat_observed = fat->observed_digests();
  const PartitionDigestSet slim_observed = slim->observed_digests();
  ASSERT_EQ(fat_observed.partitions(), kPartitions);
  bool any_nonempty = false;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(fat_observed.digest(p), slim_observed.digest(p)) << p;
    // Clean flash: what each device holds is what its write-time
    // maintained tree says it should hold.
    EXPECT_EQ(fat_observed.digest(p), fat->maintained_digests().digest(p))
        << p;
    EXPECT_EQ(slim_observed.digest(p), slim->maintained_digests().digest(p))
        << p;
    any_nonempty = any_nonempty || fat_observed.digest(p) != PartitionDigest{};
  }
  EXPECT_TRUE(any_nonempty);
}

TEST(PartitionDigestTest, CorruptionMovesObservedNotMaintained) {
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 2048});
  auto device = loaded_device(generator, 64 * 255);
  const PartitionDigestSet before = device->observed_digests();

  ASSERT_GE(device->corrupt_blocks(1, /*seed=*/42), 1u);
  const PartitionDigestSet rotted = device->observed_digests();
  std::uint32_t divergent = 0;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    if (rotted.digest(p) != before.digest(p)) ++divergent;
    // Write-time trees never see media damage.
    EXPECT_EQ(device->maintained_digests().digest(p), before.digest(p)) << p;
  }
  EXPECT_GE(divergent, 1u);

  device->repair_corruption();
  const PartitionDigestSet repaired = device->observed_digests();
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(repaired.digest(p), before.digest(p)) << p;
  }
}

TEST(PartitionDigestTest, IntegrityErrorsExitTwenty) {
  EXPECT_EQ(exit_code(ErrorKind::kIntegrity), 20);
  EXPECT_EQ(to_string(ErrorKind::kIntegrity), "integrity");
}

}  // namespace
}  // namespace ndpgen::cluster
