// End-to-end cluster tests: scatter-gather equivalence with a single
// device, crash-driven failover + rebuild with zero failed queries,
// hedged reads, typed replica exhaustion, and byte-determinism across
// seeds, PEs and threads.
#include "cluster/coordinator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/pubgraph_cluster.hpp"
#include "core/framework.hpp"
#include "host/service.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::cluster {
namespace {

const std::vector<ndp::FilterPredicate> kPredicates = {
    ndp::FilterPredicate{"year", "lt", 1990}};

struct ClusterParams {
  std::uint32_t devices = 4;
  std::uint32_t replication = 2;
  std::uint32_t spares = 1;
  std::uint64_t scale = 32768;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::uint64_t requests = 48;
  std::uint64_t arrival_rate = 2000;
  fault::FaultProfile device_fault;
  ScrubConfig scrub;
};

struct ClusterRun {
  std::unique_ptr<PubgraphCluster> stack;
  host::ServiceReport report;
  ClusterReport cluster;
  std::string metrics_json;
};

host::ServiceConfig service_config_for(std::uint32_t tenants) {
  host::ServiceConfig config;
  config.tenants = tenants;
  config.result_key = workload::paper_result_key;
  config.predicates = kPredicates;
  return config;
}

host::LoadConfig load_config_for(std::uint32_t tenants,
                                 std::uint64_t requests,
                                 std::uint64_t key_space,
                                 std::uint64_t arrival_rate = 2000) {
  host::LoadConfig config;
  config.tenants = tenants;
  config.requests = requests;
  config.arrival_rate = arrival_rate;
  config.key_space = key_space;
  return config;
}

/// One isolated service run against a fresh cluster.
ClusterRun run_cluster(const ClusterParams& params) {
  ClusterBuildConfig build;
  build.devices = params.devices;
  build.replication = params.replication;
  build.spares = params.spares;
  build.scale_divisor = params.scale;
  build.pes = params.pes;
  build.threads = params.threads;
  build.device_fault = params.device_fault;
  build.scrub = params.scrub;
  ClusterRun out;
  out.stack = build_pubgraph_cluster(build);
  ClusterCoordinator& coord = *out.stack->coordinator;
  coord.arm_faults(params.requests);

  host::QueryService service(coord, service_config_for(2));
  host::LoadGenerator load(load_config_for(2, params.requests,
                                           out.stack->generator.paper_count(),
                                           params.arrival_rate));
  out.report = service.run(load);
  coord.publish_metrics();
  out.cluster = coord.report();
  out.metrics_json = coord.observability().metrics.dump_json();
  return out;
}

void expect_reports_equal(const host::ServiceReport& a,
                          const host::ServiceReport& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
}

TEST(ClusterCoordinatorTest, ScatterGatherMatchesSingleDeviceReference) {
  // Reference: the whole dataset on one device.
  platform::CosmosPlatform cosmos;
  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 32768});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kSoftware;
  exec_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor reference(db, artifacts.analyzed,
                                artifacts.design.operators, exec_config);

  ClusterBuildConfig build;
  build.scale_divisor = 32768;
  build.mode = ndp::ExecMode::kSoftware;
  const auto stack = build_pubgraph_cluster(build);
  ClusterCoordinator& coord = *stack->coordinator;

  const std::uint64_t n = generator.paper_count();
  const std::vector<std::vector<ndp::KeyRange>> cases = {
      {{kv::Key{1, 0}, kv::Key{n, 0}}},
      {{kv::Key{n / 4, 0}, kv::Key{n / 2, 0}}},
      {{kv::Key{1, 0}, kv::Key{5, 0}}, {kv::Key{n - 5, 0}, kv::Key{n, 0}}},
  };
  for (const auto& ranges : cases) {
    std::vector<std::vector<std::uint8_t>> expected, actual;
    const auto ref_stats =
        reference.multi_range_scan(ranges, kPredicates, &expected);
    const auto stats = coord.multi_range_scan(ranges, kPredicates, &actual);
    // Byte-equal result stream in the same global key order: every
    // partition is served exactly once, replicas never duplicate rows.
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(stats.results, ref_stats.results);
    // Phase-sum invariant survives the scatter-gather composition.
    EXPECT_EQ(stats.phases.total(), stats.elapsed);
  }
  EXPECT_EQ(coord.report().queries, cases.size());
  EXPECT_EQ(coord.report().subscan_failures, 0u);
}

TEST(ClusterCoordinatorTest, CrashMidRunCompletesEveryQuery) {
  ClusterParams healthy;
  const ClusterRun baseline = run_cluster(healthy);
  ASSERT_EQ(baseline.report.dropped, 0u);
  ASSERT_EQ(baseline.cluster.failovers, 0u);

  ClusterParams crashed = healthy;
  auto crash_profile = fault::FaultProfile::parse("device-loss");
  crashed.device_fault = crash_profile.value_or_raise();
  const ClusterRun run = run_cluster(crashed);

  // The whole point: a member dies mid-run and no query fails, and the
  // replicas return the exact rows the healthy cluster returned.
  EXPECT_EQ(run.report.completed, 48u);
  EXPECT_EQ(run.report.dropped, 0u);
  EXPECT_EQ(run.report.results, baseline.report.results);
  EXPECT_EQ(run.cluster.failovers, 1u);
  EXPECT_EQ(run.cluster.rebuilds, 1u);
  EXPECT_GE(run.cluster.health_transitions, 2u);  // Alive->Suspect->Dead.
  EXPECT_NE(run.metrics_json.find("\"cluster.failovers\""),
            std::string::npos);

  // The dead member left the ring; its spare took over.
  const ClusterCoordinator& coord = *run.stack->coordinator;
  EXPECT_EQ(coord.health().state(0), DeviceState::kDead);
  EXPECT_FALSE(coord.placement().partitions_of(0).size() > 0);
  EXPECT_GT(coord.placement().partitions_of(4).size(), 0u);
}

TEST(ClusterCoordinatorTest, MatchesSingleDeviceServiceResults) {
  // Same load stream against one device holding everything vs the
  // cluster: identical per-request results.
  platform::CosmosPlatform cosmos;
  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 32768});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kHardware;
  exec_config.result_key_extractor = workload::paper_result_key;
  exec_config.pe_indices = {
      framework.instantiate(compiled, "PaperScan", cosmos)};
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);
  host::QueryService single(executor, cosmos, service_config_for(2));
  host::LoadGenerator load(
      load_config_for(2, 48, generator.paper_count()));
  const host::ServiceReport reference = single.run(load);

  const ClusterRun run = run_cluster(ClusterParams{});
  EXPECT_EQ(run.report.completed, reference.completed);
  EXPECT_EQ(run.report.results, reference.results);
}

TEST(ClusterCoordinatorTest, FailoverRunIsByteDeterministic) {
  ClusterParams params;
  auto profile = fault::FaultProfile::parse("device-loss");
  params.device_fault = profile.value_or_raise();
  const ClusterRun first = run_cluster(params);
  const ClusterRun second = run_cluster(params);
  expect_reports_equal(first.report, second.report);
  EXPECT_EQ(first.cluster.subscans, second.cluster.subscans);
  EXPECT_EQ(first.cluster.failovers, second.cluster.failovers);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(ClusterCoordinatorTest, ThreadCountNeverChangesTheTimeline) {
  ClusterParams params;
  params.pes = 2;
  params.threads = 1;
  auto profile = fault::FaultProfile::parse("device-loss");
  params.device_fault = profile.value_or_raise();
  const ClusterRun serial = run_cluster(params);
  params.threads = 4;
  const ClusterRun threaded = run_cluster(params);
  expect_reports_equal(serial.report, threaded.report);
  EXPECT_EQ(serial.metrics_json, threaded.metrics_json);
}

TEST(ClusterCoordinatorTest, LinkFlapRecoversWithoutFailover) {
  ClusterParams params;
  fault::FaultProfile& fault = params.device_fault;
  fault.device_fault = fault::DeviceFaultKind::kLinkFlap;
  fault.device_fault_device = 1;
  fault.device_fault_at_frac = 0.3;
  fault.device_fault_duration_ns = 1'000'000;  // 1 ms < dead_after (10 ms).
  const ClusterRun run = run_cluster(params);
  EXPECT_EQ(run.report.completed, 48u);
  EXPECT_EQ(run.report.dropped, 0u);
  // A transient flap must never cost us a member or a rebuild.
  EXPECT_EQ(run.cluster.failovers, 0u);
  EXPECT_EQ(run.cluster.rebuilds, 0u);
  EXPECT_NE(run.stack->coordinator->health().state(1), DeviceState::kDead);
}

TEST(ClusterCoordinatorTest, HedgedReadsEngageUnderBrownout) {
  ClusterParams baseline_params;
  baseline_params.requests = 64;
  baseline_params.arrival_rate = 500;
  const ClusterRun baseline = run_cluster(baseline_params);

  ClusterParams params = baseline_params;
  fault::FaultProfile& fault = params.device_fault;
  fault.device_fault = fault::DeviceFaultKind::kBrownout;
  fault.device_fault_device = 2;
  fault.device_fault_at_frac = 0.5;  // Mid-run, after a latency baseline
                                     // has been established...
  fault.device_fault_duration_ns = 1'000'000'000'000;  // ...then for good.
  fault.brownout_factor = 25.0;
  const ClusterRun run = run_cluster(params);
  EXPECT_EQ(run.report.completed, 64u);
  EXPECT_EQ(run.report.dropped, 0u);
  // Once the latency baseline is established, the slow member's sub-scans
  // blow the p99-derived deadline and are raced against second replicas.
  EXPECT_GT(run.cluster.hedges, 0u);
  // Hedging changes timing, never results.
  EXPECT_EQ(run.report.results, baseline.report.results);
}

TEST(ClusterCoordinatorTest, ReplicaExhaustionRaisesTypedError) {
  ClusterBuildConfig build;
  build.devices = 2;
  build.replication = 1;  // No redundancy, no spare: data loss is real.
  build.spares = 0;
  build.scale_divisor = 32768;
  build.mode = ndp::ExecMode::kSoftware;
  fault::FaultProfile& fault = build.device_fault;
  fault.device_fault = fault::DeviceFaultKind::kCrash;
  fault.device_fault_device = 0;
  fault.device_fault_at_ns = 1;
  const auto stack = build_pubgraph_cluster(build);
  ClusterCoordinator& coord = *stack->coordinator;
  coord.advance_device_to(1'000'000);  // Past the crash instant.

  const std::uint64_t n = stack->generator.paper_count();
  const std::vector<ndp::KeyRange> ranges = {{kv::Key{1, 0}, kv::Key{n, 0}}};
  try {
    coord.multi_range_scan(ranges, kPredicates, nullptr);
    FAIL() << "unreplicated partitions on a dead device must not resolve";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kDeviceUnavailable);
    EXPECT_EQ(exit_code(error.kind()), 19);
  }
}

TEST(ClusterCoordinatorTest, BitRotTriggersReadRepairWithByteEqualResults) {
  const ClusterRun baseline = run_cluster(ClusterParams{});
  ASSERT_EQ(baseline.cluster.read_repairs, 0u);

  ClusterParams params;
  auto profile = fault::FaultProfile::parse("bit-rot");
  params.device_fault = profile.value_or_raise();
  const ClusterRun run = run_cluster(params);

  // Flash content really rotted mid-run; the foreground CRC check caught
  // it, the coordinator discarded the rotted sub-scan, re-fetched the
  // partitions from a healthy replica — byte-equal rows — and repaired
  // the bad replica off the critical path.
  EXPECT_GT(run.cluster.bitrot_blocks_injected, 0u);
  EXPECT_GE(run.cluster.integrity_failures, 1u);
  EXPECT_GE(run.cluster.read_repairs, 1u);
  EXPECT_GE(run.cluster.repairs, 1u);
  EXPECT_GT(run.cluster.bytes_repaired, 0u);
  EXPECT_EQ(run.report.completed, 48u);
  EXPECT_EQ(run.report.dropped, 0u);
  EXPECT_EQ(run.report.results, baseline.report.results);
  // The repair actually cleared the ledger: no corruption survives.
  EXPECT_FALSE(run.stack->coordinator->device(0).has_corruption());
  // Rot never costs a member: repair, not failover.
  EXPECT_EQ(run.cluster.failovers, 0u);
  EXPECT_NE(run.metrics_json.find("\"cluster.repair.count\""),
            std::string::npos);
}

TEST(ClusterCoordinatorTest, ScrubDetectsRotBeforeForegroundReads) {
  ClusterParams params;
  auto profile = fault::FaultProfile::parse(
      "bit-rot,device_bitrot_at_us=1");  // Rot before the first request.
  params.device_fault = profile.value_or_raise();
  params.scrub.enabled = true;
  params.arrival_rate = 200;  // Slow arrivals leave the patrol headroom.
  const ClusterRun run = run_cluster(params);

  const ClusterCoordinator& coord = *run.stack->coordinator;
  ASSERT_TRUE(coord.scrubbing());
  std::uint64_t crc_failures = 0;
  std::uint64_t blocks_verified = 0;
  for (std::uint32_t d = 0; d < coord.device_count(); ++d) {
    crc_failures += coord.scrub_report(d).crc_failures;
    blocks_verified += coord.scrub_report(d).blocks_verified;
  }
  EXPECT_GT(blocks_verified, 0u);
  EXPECT_GE(crc_failures, 1u);
  EXPECT_GE(run.cluster.repairs, 1u);
  EXPECT_EQ(run.report.dropped, 0u);
  EXPECT_NE(run.metrics_json.find("\"cluster.scrub.blocks_verified\""),
            std::string::npos);
}

TEST(ClusterCoordinatorTest, AntiEntropyConvergesAfterWrongDataRot) {
  ClusterParams params;
  auto profile =
      fault::FaultProfile::parse("bit-rot,device_bitrot_wrong_data=1");
  params.device_fault = profile.value_or_raise();
  params.scrub.enabled = true;
  const ClusterRun run = run_cluster(params);

  // Wrong-data rot rewrites the index CRC to match the rotten bytes:
  // every CRC check — patrol and foreground — passes by construction.
  const ClusterCoordinator& coord = *run.stack->coordinator;
  std::uint64_t crc_failures = 0;
  for (std::uint32_t d = 0; d < coord.device_count(); ++d) {
    crc_failures += coord.scrub_report(d).crc_failures;
  }
  EXPECT_EQ(crc_failures, 0u);
  EXPECT_EQ(run.cluster.read_repairs, 0u);
  ASSERT_GT(run.cluster.bitrot_blocks_injected, 0u);

  // Only comparing logical digests across replicas finds it.
  ClusterCoordinator& mutable_coord = *run.stack->coordinator;
  const AntiEntropyReport round = mutable_coord.run_anti_entropy();
  EXPECT_GE(round.divergent_partitions, 1u);
  EXPECT_GE(round.divergent_leaves, round.divergent_partitions);
  EXPECT_GE(round.replicas_repaired, 1u);
  EXPECT_GT(round.bytes_repaired, 0u);
  EXPECT_TRUE(round.converged);

  // The next round is quiet: anti-entropy converged, not just patched.
  const AntiEntropyReport quiet = mutable_coord.run_anti_entropy();
  EXPECT_EQ(quiet.divergent_partitions, 0u);
  EXPECT_EQ(quiet.replicas_repaired, 0u);
  EXPECT_TRUE(quiet.converged);
  EXPECT_EQ(mutable_coord.report().antientropy_rounds, 2u);
}

TEST(ClusterCoordinatorTest, ScrubbedRotTimelineIsByteDeterministic) {
  ClusterParams params;
  params.pes = 2;
  params.threads = 1;
  auto profile = fault::FaultProfile::parse("bit-rot");
  params.device_fault = profile.value_or_raise();
  params.scrub.enabled = true;

  ClusterRun first = run_cluster(params);
  const AntiEntropyReport first_ae =
      first.stack->coordinator->run_anti_entropy();
  ClusterRun second = run_cluster(params);
  const AntiEntropyReport second_ae =
      second.stack->coordinator->run_anti_entropy();
  params.threads = 4;
  ClusterRun threaded = run_cluster(params);
  const AntiEntropyReport threaded_ae =
      threaded.stack->coordinator->run_anti_entropy();

  // Scrub pacing, rot injection and repair all live on the host
  // timeline: the whole integrity story replays byte-identically and is
  // invariant in the host thread count.
  expect_reports_equal(first.report, second.report);
  expect_reports_equal(first.report, threaded.report);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.metrics_json, threaded.metrics_json);
  for (const ClusterReport* cluster :
       {&second.cluster, &threaded.cluster}) {
    EXPECT_EQ(first.cluster.bitrot_blocks_injected,
              cluster->bitrot_blocks_injected);
    EXPECT_EQ(first.cluster.integrity_failures, cluster->integrity_failures);
    EXPECT_EQ(first.cluster.read_repairs, cluster->read_repairs);
    EXPECT_EQ(first.cluster.repairs, cluster->repairs);
    EXPECT_EQ(first.cluster.bytes_repaired, cluster->bytes_repaired);
  }
  for (const AntiEntropyReport* ae : {&second_ae, &threaded_ae}) {
    EXPECT_EQ(first_ae.divergent_partitions, ae->divergent_partitions);
    EXPECT_EQ(first_ae.divergent_leaves, ae->divergent_leaves);
    EXPECT_EQ(first_ae.replicas_repaired, ae->replicas_repaired);
    EXPECT_EQ(first_ae.converged, ae->converged);
  }
}

TEST(ClusterCoordinatorTest, UnrepairableRotRaisesTypedIntegrityError) {
  // R=1: the rotted replica is the only copy, so read-repair has no
  // healthy source and the query must fail typed, not return bad bytes.
  ClusterBuildConfig build;
  build.devices = 2;
  build.replication = 1;
  build.spares = 0;
  build.scale_divisor = 32768;
  build.mode = ndp::ExecMode::kSoftware;
  fault::FaultProfile& fault = build.device_fault;
  fault.device_bitrot_blocks = 2;
  fault.device_bitrot_device = 0;
  fault.device_bitrot_at_ns = 1;
  const auto stack = build_pubgraph_cluster(build);
  ClusterCoordinator& coord = *stack->coordinator;
  coord.advance_device_to(1'000'000);  // Past the rot instant.

  const std::uint64_t n = stack->generator.paper_count();
  const std::vector<ndp::KeyRange> ranges = {{kv::Key{1, 0}, kv::Key{n, 0}}};
  try {
    coord.multi_range_scan(ranges, kPredicates, nullptr);
    FAIL() << "a corrupt sole replica must raise kIntegrity, not serve rot";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kIntegrity);
    EXPECT_EQ(exit_code(error.kind()), 20);
  }
}

TEST(ClusterCoordinatorTest, BuilderValidatesTopology) {
  ClusterBuildConfig build;
  build.devices = 2;
  build.replication = 3;  // R > N.
  EXPECT_THROW(build_pubgraph_cluster(build), Error);
}

}  // namespace
}  // namespace ndpgen::cluster
