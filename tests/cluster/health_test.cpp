// Health monitor: flaps recover, crashes escalate, offload errors kill,
// Dead is sticky — and every transition is counted.
#include "cluster/health.hpp"

#include <gtest/gtest.h>

#include "platform/event_queue.hpp"
#include "support/error.hpp"

namespace ndpgen::cluster {
namespace {

constexpr platform::SimTime kMs = 1000 * 1000;

TEST(HealthMonitorTest, MissedBeatSuspectsAndRecoveryRestoresAlive) {
  HealthMonitor monitor(2, HealthConfig{});
  EXPECT_EQ(monitor.state(0), DeviceState::kAlive);

  monitor.record_heartbeat(0, /*reachable=*/false, 1 * kMs);
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
  EXPECT_GT(monitor.error_rate(0), 0.0);

  // The flap ends inside the dead window: the device must come back.
  monitor.record_heartbeat(0, /*reachable=*/true, 2 * kMs);
  EXPECT_EQ(monitor.state(0), DeviceState::kAlive);
  EXPECT_EQ(monitor.transitions(), 2u);
  // The other device never moved.
  EXPECT_EQ(monitor.state(1), DeviceState::kAlive);
}

TEST(HealthMonitorTest, HeartbeatMissesAloneNeverKill) {
  HealthMonitor monitor(1, HealthConfig{});
  // A storm of misses inside the dead window: the EWMA saturates at 1.0,
  // far past the dead threshold, but heartbeats cannot kill — only the
  // stale-Suspect escalation can, and the window has not elapsed.
  for (int i = 0; i < 16; ++i) {
    monitor.record_heartbeat(0, false, (1 + i) * 100 * 1000);
  }
  monitor.refresh(3 * kMs);  // dead_after_ns defaults to 10 ms.
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
}

TEST(HealthMonitorTest, StaleSuspectEscalatesToDeadAndStaysDead) {
  HealthMonitor monitor(1, HealthConfig{});
  monitor.record_heartbeat(0, false, 1 * kMs);
  ASSERT_EQ(monitor.state(0), DeviceState::kSuspect);

  monitor.refresh(5 * kMs);  // Inside the window: still suspect.
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
  monitor.refresh(12 * kMs);  // 11 ms without a good probe.
  EXPECT_EQ(monitor.state(0), DeviceState::kDead);

  // Dead is sticky: later successes change nothing.
  monitor.record_success(0, 13 * kMs);
  monitor.record_heartbeat(0, true, 14 * kMs);
  EXPECT_EQ(monitor.state(0), DeviceState::kDead);
  EXPECT_EQ(monitor.transitions(), 2u);  // Alive->Suspect->Dead.
}

TEST(HealthMonitorTest, OffloadErrorsCanKillDirectly) {
  HealthMonitor monitor(1, HealthConfig{});
  monitor.record_error(0, 1 * kMs);  // EWMA 0.5 -> Suspect.
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
  monitor.record_error(0, 2 * kMs);  // EWMA 0.75 -> Dead.
  monitor.record_error(0, 3 * kMs);
  EXPECT_EQ(monitor.state(0), DeviceState::kDead);
}

TEST(HealthMonitorTest, IntegrityErrorsSuspectButNeverKill) {
  HealthMonitor monitor(2, HealthConfig{});
  monitor.record_integrity_error(0, 1 * kMs);  // EWMA 0.5 -> Suspect.
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
  // A replica that keeps serving rot must be routed around, but it still
  // answers: repair — not failover — is the proportionate response, so
  // integrity errors saturate the EWMA without ever reaching Dead.
  for (int i = 2; i <= 8; ++i) {
    monitor.record_integrity_error(0, i * kMs);
  }
  EXPECT_GT(monitor.error_rate(0), HealthConfig{}.dead_threshold);
  EXPECT_EQ(monitor.state(0), DeviceState::kSuspect);
  EXPECT_EQ(monitor.state(1), DeviceState::kAlive);

  // Once repaired, successes decay the replica back to Alive.
  for (int i = 9; i <= 16; ++i) {
    monitor.record_success(0, i * kMs);
  }
  EXPECT_EQ(monitor.state(0), DeviceState::kAlive);
}

TEST(HealthMonitorTest, SuccessesDecayTheErrorRate) {
  HealthMonitor monitor(1, HealthConfig{});
  monitor.record_error(0, 1 * kMs);
  const double after_error = monitor.error_rate(0);
  monitor.record_success(0, 2 * kMs);
  EXPECT_LT(monitor.error_rate(0), after_error);
  EXPECT_EQ(monitor.state(0), DeviceState::kAlive);
}

TEST(HealthMonitorTest, DeclareDeadIsImmediate) {
  HealthMonitor monitor(2, HealthConfig{});
  monitor.declare_dead(1, 1 * kMs);
  EXPECT_EQ(monitor.state(1), DeviceState::kDead);
  EXPECT_EQ(monitor.state(0), DeviceState::kAlive);
}

TEST(HealthMonitorTest, ValidatesArguments) {
  HealthConfig inverted;
  inverted.suspect_threshold = 0.9;
  inverted.dead_threshold = 0.5;
  EXPECT_THROW(HealthMonitor(1, inverted), Error);
  HealthMonitor monitor(1, HealthConfig{});
  EXPECT_THROW(monitor.state(3), Error);
  EXPECT_THROW(monitor.record_error(3, 0), Error);
}

}  // namespace
}  // namespace ndpgen::cluster
