// Consistent-hash placement: replica invariants, determinism, and the
// replace_device stability guarantee a rebuild relies on.
#include "cluster/placement.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/error.hpp"

namespace ndpgen::cluster {
namespace {

PlacementConfig small_config() {
  PlacementConfig config;
  config.devices = 4;
  config.replication = 2;
  config.partitions = 64;
  config.vnodes = 16;
  return config;
}

TEST(ClusterPlacementTest, EveryPartitionHasRDistinctReplicas) {
  const ClusterPlacement placement(small_config());
  for (std::uint32_t p = 0; p < 64; ++p) {
    const auto& replicas = placement.replicas(p);
    ASSERT_EQ(replicas.size(), 2u) << p;
    const std::set<std::uint32_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size()) << p;
    for (const std::uint32_t d : replicas) {
      EXPECT_LT(d, 4u) << p;
      EXPECT_TRUE(placement.replicates(d, p));
    }
  }
}

TEST(ClusterPlacementTest, PartitionsOfInvertsTheReplicaTable) {
  const ClusterPlacement placement(small_config());
  std::uint64_t assignments = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    for (const std::uint32_t p : placement.partitions_of(d)) {
      EXPECT_TRUE(placement.replicates(d, p));
      ++assignments;
    }
  }
  // Each partition appears in exactly R per-device lists.
  EXPECT_EQ(assignments, 64u * 2u);
}

TEST(ClusterPlacementTest, PureFunctionOfSeed) {
  const ClusterPlacement a(small_config());
  const ClusterPlacement b(small_config());
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_EQ(a.replicas(p), b.replicas(p)) << p;
  }
  PlacementConfig reseeded = small_config();
  reseeded.seed = 7;
  const ClusterPlacement c(reseeded);
  bool any_differs = false;
  for (std::uint32_t p = 0; p < 64 && !any_differs; ++p) {
    any_differs = a.replicas(p) != c.replicas(p);
  }
  EXPECT_TRUE(any_differs);
}

TEST(ClusterPlacementTest, KeyPartitionIsStableAndInRange) {
  const ClusterPlacement a(small_config());
  const ClusterPlacement b(small_config());
  std::set<std::uint32_t> touched;
  for (std::uint64_t id = 1; id <= 512; ++id) {
    const kv::Key key{id, 0};
    const std::uint32_t p = a.partition_of(key);
    EXPECT_LT(p, 64u);
    EXPECT_EQ(p, b.partition_of(key));
    touched.insert(p);
  }
  // 512 dense keys over 64 partitions: the hash must actually spread.
  EXPECT_GT(touched.size(), 32u);
}

TEST(ClusterPlacementTest, ReplaceDeviceMovesOnlyTheDeadPartitions) {
  ClusterPlacement placement(small_config());
  const std::vector<std::uint32_t> lost = placement.partitions_of(1);
  std::vector<std::vector<std::uint32_t>> before(64);
  for (std::uint32_t p = 0; p < 64; ++p) before[p] = placement.replicas(p);

  placement.replace_device(/*dead=*/1, /*spare=*/4);

  // The spare inherits exactly the dead member's partitions; every other
  // assignment is untouched (the property that bounds rebuild traffic).
  EXPECT_EQ(placement.partitions_of(4), lost);
  EXPECT_TRUE(placement.partitions_of(1).empty());
  for (std::uint32_t p = 0; p < 64; ++p) {
    auto expected = before[p];
    for (auto& d : expected) {
      if (d == 1) d = 4;
    }
    EXPECT_EQ(placement.replicas(p), expected) << p;
  }
}

TEST(ClusterPlacementTest, ReplaceDeviceValidates) {
  ClusterPlacement placement(small_config());
  // Spare already on the ring.
  EXPECT_THROW(placement.replace_device(1, 2), Error);
  // Dead id not on the ring.
  EXPECT_THROW(placement.replace_device(9, 4), Error);
  // A retired id can never come back.
  placement.replace_device(1, 4);
  EXPECT_THROW(placement.replace_device(1, 5), Error);
}

TEST(ClusterPlacementTest, FullReplicationStillFailsOver) {
  // R == devices: every partition lives everywhere. The degenerate edge
  // must still place, invert, and hand a dead member's load to a spare.
  PlacementConfig config = small_config();
  config.replication = 4;
  ClusterPlacement placement(config);
  for (std::uint32_t p = 0; p < 64; ++p) {
    ASSERT_EQ(placement.replicas(p).size(), 4u) << p;
  }
  const std::vector<std::uint32_t> lost = placement.partitions_of(2);
  EXPECT_EQ(lost.size(), 64u);
  placement.replace_device(/*dead=*/2, /*spare=*/4);
  EXPECT_EQ(placement.partitions_of(4), lost);
  EXPECT_TRUE(placement.partitions_of(2).empty());
}

TEST(ClusterPlacementTest, SpareChainsSurviveRepeatedFailures) {
  // Spare exhaustion story: member 1 dies -> spare 4 takes over; then
  // spare 4 itself dies -> spare 5 inherits 4's (== 1's) partitions.
  ClusterPlacement placement(small_config());
  const std::vector<std::uint32_t> lost = placement.partitions_of(1);
  placement.replace_device(1, 4);
  ASSERT_EQ(placement.partitions_of(4), lost);

  placement.replace_device(4, 5);
  EXPECT_EQ(placement.partitions_of(5), lost);
  EXPECT_TRUE(placement.partitions_of(4).empty());
  // Both retired ids are gone for good.
  EXPECT_THROW(placement.replace_device(1, 6), Error);
  EXPECT_THROW(placement.replace_device(4, 6), Error);
  // And the twice-moved partitions still resolve to exactly R replicas.
  for (const std::uint32_t p : lost) {
    const auto& replicas = placement.replicas(p);
    EXPECT_EQ(replicas.size(), 2u) << p;
    EXPECT_TRUE(placement.replicates(5, p)) << p;
  }
}

TEST(ClusterPlacementTest, ValidatesConfiguration) {
  PlacementConfig config = small_config();
  config.replication = 5;  // R > devices.
  EXPECT_THROW(ClusterPlacement{config}, Error);
  config = small_config();
  config.partitions = 0;
  EXPECT_THROW(ClusterPlacement{config}, Error);
}

}  // namespace
}  // namespace ndpgen::cluster
