// Unit tests for the durability primitives: the CRC-chained WAL and the
// two-phase ManifestStore, including precise crash-point injection via the
// platform CrashScheduler.
#include <gtest/gtest.h>

#include "kv/manifest_store.hpp"
#include "kv/wal.hpp"
#include "platform/cosmos.hpp"
#include "support/error.hpp"

namespace ndpgen::kv {
namespace {

platform::CosmosConfig crashing_at(std::uint64_t step) {
  platform::CosmosConfig config;
  config.crash.crash_at_step = step;
  return config;
}

std::vector<std::uint8_t> record_of(std::uint8_t fill, std::size_t size) {
  return std::vector<std::uint8_t>(size, fill);
}

TEST(WalTest, RoundTripAcrossPages) {
  platform::CosmosPlatform platform;
  PlacementPolicy placement(platform.flash().topology(), 1);
  WriteAheadLog wal(platform.flash(), placement, 1, /*timed=*/false);

  // Large payloads force page seals mid-stream; the chain must continue
  // across page boundaries.
  const std::size_t big = platform.flash().topology().page_bytes / 2;
  for (std::uint64_t i = 1; i <= 9; ++i) {
    wal.append(i % 3 == 0 ? kWalDelete : kWalPut, i,
               record_of(static_cast<std::uint8_t>(i), i % 3 == 0 ? 16 : big));
    wal.sync();
  }
  EXPECT_EQ(wal.entries_synced(), 9u);

  const WalReplayResult replayed = wal.replay();
  EXPECT_EQ(replayed.torn_pages, 0u);
  ASSERT_EQ(replayed.entries.size(), 9u);
  for (std::uint64_t i = 1; i <= 9; ++i) {
    const WalEntry& entry = replayed.entries[i - 1];
    EXPECT_EQ(entry.seq, i);
    EXPECT_EQ(entry.type, i % 3 == 0 ? kWalDelete : kWalPut);
    EXPECT_EQ(entry.payload,
              record_of(static_cast<std::uint8_t>(i), i % 3 == 0 ? 16 : big));
  }
}

TEST(WalTest, TornTailPageIsDetectedAndCut) {
  // Step 2 = the second WAL page program: entries on page 0 survive, the
  // page-1 program tears mid-write.
  platform::CosmosPlatform platform(crashing_at(2));
  PlacementPolicy placement(platform.flash().topology(), 1);
  WriteAheadLog wal(platform.flash(), placement, 1, /*timed=*/false);

  const std::size_t big = platform.flash().topology().page_bytes / 3;
  wal.append(kWalPut, 1, record_of(0x11, big));
  wal.append(kWalPut, 2, record_of(0x22, big));
  wal.sync();  // Page 0: entries 1+2, fully programmed.
  wal.append(kWalPut, 3, record_of(0x33, big));
  wal.sync();  // Page 1: torn by the crash.
  ASSERT_TRUE(platform.crash_scheduler().crashed());

  platform.flash().set_crash_scheduler(nullptr);
  const WalReplayResult replayed = wal.replay();
  EXPECT_EQ(replayed.torn_pages, 1u);
  EXPECT_EQ(replayed.pages_scanned, 1u);
  ASSERT_EQ(replayed.entries.size(), 2u);
  EXPECT_EQ(replayed.entries[0].seq, 1u);
  EXPECT_EQ(replayed.entries[1].seq, 2u);
}

TEST(WalTest, ResetTruncatesAndRestartsTheChain) {
  platform::CosmosPlatform platform;
  PlacementPolicy placement(platform.flash().topology(), 1);
  WriteAheadLog wal(platform.flash(), placement, 1, /*timed=*/false);
  wal.append(kWalPut, 1, record_of(0xAA, 64));
  wal.sync();
  wal.reset();
  EXPECT_EQ(wal.replay().entries.size(), 0u);
  wal.append(kWalPut, 7, record_of(0xBB, 64));
  wal.sync();
  const WalReplayResult replayed = wal.replay();
  ASSERT_EQ(replayed.entries.size(), 1u);
  EXPECT_EQ(replayed.entries[0].seq, 7u);
}

TEST(WalTest, RaisesWhenBlocksExhausted) {
  platform::CosmosPlatform platform;
  PlacementPolicy placement(platform.flash().topology(), 1);
  WriteAheadLog wal(platform.flash(), placement, 1, /*timed=*/false);
  const std::uint64_t capacity = wal.capacity_pages();
  for (std::uint64_t i = 0; i < capacity; ++i) {
    wal.append(kWalPut, i + 1, record_of(0x01, 32));
    wal.sync();
  }
  wal.append(kWalPut, capacity + 1, record_of(0x02, 32));
  try {
    wal.sync();
    FAIL() << "sync past capacity must throw";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kStorage);
  }
}

ManifestImage image_with(SequenceNumber last_sequence) {
  ManifestImage image;
  image.last_sequence = last_sequence;
  image.next_sst_id = last_sequence + 100;
  return image;
}

TEST(ManifestStoreTest, RecoverReturnsNewestCommit) {
  platform::CosmosPlatform platform;
  auto placement =
      std::make_shared<PlacementPolicy>(platform.flash().topology(), 1);
  ManifestStore store(platform.flash(), *placement, 1, 1, /*timed=*/false);
  store.commit(image_with(10));
  store.commit(image_with(20));
  store.commit(image_with(30));

  // A fresh store over the same flash (recovery reconstructs reservations
  // in the same deterministic order).
  PlacementPolicy fresh(platform.flash().topology(), 1);
  ManifestStore reopened(platform.flash(), fresh, 1, 1, /*timed=*/false);
  const ManifestRecoverResult result = reopened.recover();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.commit_seq, 3u);
  EXPECT_EQ(result.rollbacks, 0u);
  EXPECT_EQ(result.image.last_sequence, 30u);
  EXPECT_EQ(result.image.next_sst_id, 130u);
}

TEST(ManifestStoreTest, TornPointerRollsBackToPreviousCommit) {
  // Commit = erase_slot(1 step) + payload program(1) + pointer program(1).
  // Step 6 is the second commit's pointer-page program — the atomicity
  // point — so commit 2 must roll back to commit 1.
  platform::CosmosPlatform platform(crashing_at(6));
  {
    PlacementPolicy placement(platform.flash().topology(), 1);
    ManifestStore store(platform.flash(), placement, 1, 1, /*timed=*/false);
    store.commit(image_with(10));
    store.commit(image_with(20));  // Pointer page tears here.
  }
  ASSERT_TRUE(platform.crash_scheduler().crashed());
  EXPECT_EQ(platform.crash_scheduler().crashed_step(), 6u);

  platform.flash().set_crash_scheduler(nullptr);
  PlacementPolicy fresh(platform.flash().topology(), 1);
  ManifestStore reopened(platform.flash(), fresh, 1, 1, /*timed=*/false);
  const ManifestRecoverResult result = reopened.recover();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.rollbacks, 1u);
  EXPECT_EQ(result.commit_seq, 1u);
  EXPECT_EQ(result.image.last_sequence, 10u);

  // The store must keep working after the rollback: the next commit lands
  // after the torn pointer and wins.
  reopened.commit(image_with(40));
  PlacementPolicy fresh2(platform.flash().topology(), 1);
  ManifestStore reopened2(platform.flash(), fresh2, 1, 1, /*timed=*/false);
  const ManifestRecoverResult after = reopened2.recover();
  EXPECT_TRUE(after.found);
  EXPECT_EQ(after.image.last_sequence, 40u);
}

TEST(ManifestStoreTest, CrashDuringStageLeavesPreviousCommitIntact) {
  // Step 5 = the second commit's payload program (phase 1): the pointer
  // log never saw commit 2, so recovery finds commit 1 with NO rollback.
  platform::CosmosPlatform platform(crashing_at(5));
  {
    PlacementPolicy placement(platform.flash().topology(), 1);
    ManifestStore store(platform.flash(), placement, 1, 1, /*timed=*/false);
    store.commit(image_with(10));
    store.commit(image_with(20));
  }
  platform.flash().set_crash_scheduler(nullptr);
  PlacementPolicy fresh(platform.flash().topology(), 1);
  ManifestStore reopened(platform.flash(), fresh, 1, 1, /*timed=*/false);
  const ManifestRecoverResult result = reopened.recover();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.rollbacks, 0u);
  EXPECT_EQ(result.image.last_sequence, 10u);
}

TEST(ManifestStoreTest, InterruptedSlotEraseLeavesUnstableBlock) {
  // Step 4 = the second commit's erase_slot: the erase is interrupted and
  // the slot block becomes unstable.
  platform::CosmosPlatform platform(crashing_at(4));
  {
    PlacementPolicy placement(platform.flash().topology(), 1);
    ManifestStore store(platform.flash(), placement, 1, 1, /*timed=*/false);
    store.commit(image_with(10));
    store.commit(image_with(20));
  }
  EXPECT_EQ(platform.flash().interrupted_erases(), 1u);
  EXPECT_EQ(platform.flash().unstable_blocks().size(), 1u);

  platform.flash().set_crash_scheduler(nullptr);
  PlacementPolicy fresh(platform.flash().topology(), 1);
  ManifestStore reopened(platform.flash(), fresh, 1, 1, /*timed=*/false);
  const ManifestRecoverResult result = reopened.recover();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.image.last_sequence, 10u);
}

}  // namespace
}  // namespace ndpgen::kv
