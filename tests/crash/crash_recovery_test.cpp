// Crash-point recovery: the CrashHarness contract (no acknowledged write
// lost, boundary atomicity, no torn state, deterministic recovery) plus
// NDP-level equivalence between a recovered store and a never-crashed
// reference, and executor refusal while recovery is in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "workload/crash_harness.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::workload {
namespace {

CrashHarnessConfig small_config() {
  CrashHarnessConfig config;
  config.ops = 48;
  config.key_space = 24;
  return config;
}

TEST(CrashHarnessTest, CleanRunRecoversEverything) {
  const CrashHarness harness(small_config());
  const CrashRunResult result = harness.run(0);
  EXPECT_FALSE(result.crashed);
  EXPECT_EQ(result.acked_ops, harness.config().ops);
  EXPECT_GT(result.steps_total, harness.config().ops);  // +flush/commit steps.
  EXPECT_EQ(result.report.torn_sst_blocks, 0u);
  EXPECT_EQ(result.report.manifest_rollbacks, 0u);
  EXPECT_EQ(result.report.orphan_pages_discarded, 0u);
  EXPECT_EQ(result.report.wal_torn_pages, 0u);
  EXPECT_GT(result.recovered_records, 0u);
}

TEST(CrashHarnessTest, FirstWalProgramTearsAndLosesNothingAcked) {
  // Step 1 is op 0's WAL page program: nothing was ever acknowledged, so
  // recovery must come back empty-handed but healthy.
  const CrashHarness harness(small_config());
  const CrashRunResult result = harness.run(1);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.acked_ops, 0u);
  EXPECT_EQ(result.report.wal_torn_pages, 1u);
  EXPECT_FALSE(result.report.manifest_found);
}

TEST(CrashHarnessTest, ExhaustiveSweepUpholdsContract) {
  const CrashHarness harness(small_config());
  const std::uint64_t steps = harness.count_steps();
  ASSERT_GT(steps, 40u);

  bool saw_wal_torn = false;
  bool saw_rollback = false;
  bool saw_orphans = false;
  bool saw_unstable = false;
  std::uint64_t sweep_hash = 0xCBF29CE484222325ULL;
  for (std::uint64_t step = 1; step <= steps; ++step) {
    // run() itself throws Error{kSimulation} on any contract violation.
    const CrashRunResult result = harness.run(step);
    EXPECT_TRUE(result.crashed) << "step " << step;
    saw_wal_torn = saw_wal_torn || result.report.wal_torn_pages > 0;
    saw_rollback = saw_rollback || result.report.manifest_rollbacks > 0;
    saw_orphans = saw_orphans || result.report.orphan_pages_discarded > 0;
    saw_unstable =
        saw_unstable || result.report.unstable_blocks_erased > 0;
    sweep_hash ^= result.state_hash + 0x9E3779B97F4A7C15ULL +
                  (sweep_hash << 6) + (sweep_hash >> 2);
  }
  // The sweep must exercise every recovery path at least once.
  EXPECT_TRUE(saw_wal_torn);
  EXPECT_TRUE(saw_rollback);
  EXPECT_TRUE(saw_orphans);
  EXPECT_TRUE(saw_unstable);
  EXPECT_NE(sweep_hash, 0u);
}

TEST(CrashHarnessTest, RecoveryIsDeterministic) {
  const CrashHarness harness(small_config());
  const std::uint64_t steps = harness.count_steps();
  for (const std::uint64_t step :
       {std::uint64_t{3}, steps / 2, steps - 1}) {
    if (step == 0) continue;
    const CrashRunResult first = harness.run(step);
    const CrashRunResult second = harness.run(step);
    EXPECT_EQ(first.state_hash, second.state_hash) << "step " << step;
    EXPECT_EQ(first.acked_ops, second.acked_ops);
    EXPECT_EQ(first.report.wal_entries_replayed,
              second.report.wal_entries_replayed);
    EXPECT_EQ(first.report.orphan_pages_discarded,
              second.report.orphan_pages_discarded);
    EXPECT_EQ(first.report.elapsed, second.report.elapsed);
  }
}

TEST(CrashHarnessTest, RecoveryMetricsArePublished) {
  const CrashHarness harness(small_config());
  const CrashRunResult result = harness.run(harness.count_steps() / 2);
  auto& metrics = result.platform->observability().metrics;
  EXPECT_EQ(metrics.counter_value("kv.recovery.runs"), 1u);
  EXPECT_EQ(metrics.counter_value("kv.recovery.wal_entries_replayed"),
            result.report.wal_entries_replayed);
  EXPECT_EQ(metrics.counter_value("kv.recovery.orphan_pages_discarded"),
            result.report.orphan_pages_discarded);
}

// NDP scan + get over the recovered store must be byte-identical to the
// never-crashed reference store holding the same logical state.
class CrashNdpFixture : public ::testing::Test {
 protected:
  CrashNdpFixture()
      : compiled_(framework_.compile(pubgraph_spec_source())) {}

  ndp::HybridExecutor sw_executor(kv::NKV& db) {
    ndp::ExecutorConfig config;
    config.mode = ndp::ExecMode::kSoftware;
    config.result_key_extractor = paper_result_key;
    const auto& artifacts = compiled_.get("PaperScan");
    return ndp::HybridExecutor(db, artifacts.analyzed,
                               artifacts.design.operators, config);
  }

  core::Framework framework_;
  core::CompileResult compiled_;
};

TEST_F(CrashNdpFixture, RecoveredStoreScanAndGetMatchReference) {
  const CrashHarness harness(small_config());
  const std::uint64_t steps = harness.count_steps();
  for (const std::uint64_t step : {steps / 3, 2 * steps / 3}) {
    if (step == 0) continue;
    const CrashRunResult result = harness.run(step);
    auto recovered = sw_executor(*result.db);
    auto reference = sw_executor(*result.ref_db);

    const std::vector<ndp::FilterPredicate> all = {};
    std::vector<std::vector<std::uint8_t>> got;
    std::vector<std::vector<std::uint8_t>> want;
    recovered.scan(all, &got);
    reference.scan(all, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "scan diverged at crash step " << step;
    EXPECT_EQ(want.size(), result.recovered_records);

    for (std::uint64_t id = 0; id < harness.config().key_space; ++id) {
      const auto got_get = recovered.get(kv::Key{id, 0});
      const auto want_get = reference.get(kv::Key{id, 0});
      EXPECT_EQ(got_get.found, want_get.found) << "id " << id;
      EXPECT_EQ(got_get.record, want_get.record) << "id " << id;
    }
  }
}

TEST_F(CrashNdpFixture, ExecutorRefusesMidRecoveryStore) {
  const CrashHarness harness(small_config());
  // Crash somewhere in the middle, then drive recovery by hand so the
  // probe can poke the executor while recovering() is true.
  platform::CosmosConfig cosmos;
  cosmos.crash.crash_at_step = harness.count_steps() / 2;
  platform::CosmosPlatform platform(cosmos);
  kv::DBConfig db_config;
  db_config.record_bytes = PaperRecord::kBytes;
  db_config.extractor = paper_key;
  db_config.memtable_bytes = 2 * 1024;
  db_config.durability.enabled = true;
  {
    kv::NKV db(platform, db_config);
    PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 65536});
    for (std::uint64_t i = 0;
         i < generator.paper_count() && !platform.crash_scheduler().crashed();
         ++i) {
      db.put(generator.paper(i).serialize());
    }
  }
  ASSERT_TRUE(platform.crash_scheduler().crashed());

  platform.flash().set_crash_scheduler(nullptr);
  kv::NKV recovered(platform, db_config);
  bool probed = false;
  kv::RecoveryOptions options;
  options.mid_recovery_probe = [&] {
    ASSERT_TRUE(recovered.recovering());
    auto executor = sw_executor(recovered);
    try {
      executor.scan({});
      FAIL() << "scan must refuse a mid-recovery store";
    } catch (const Error& error) {
      EXPECT_EQ(error.kind(), ErrorKind::kStorage);
    }
    try {
      (void)executor.get(kv::Key{1, 0});
      FAIL() << "get must refuse a mid-recovery store";
    } catch (const Error& error) {
      EXPECT_EQ(error.kind(), ErrorKind::kStorage);
    }
    probed = true;
  };
  (void)recovered.recover(options);
  EXPECT_TRUE(probed);
  EXPECT_FALSE(recovered.recovering());
  // After recovery the same executor path works again.
  auto executor = sw_executor(recovered);
  recovered.flush();
  EXPECT_NO_THROW(executor.scan({}));
}

}  // namespace
}  // namespace ndpgen::workload
