#include "workload/synth.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::workload {
namespace {

TEST(Synth, FullSpecHasOnly32BitFields) {
  const auto module = spec::parse_spec(synth_spec(256, false));
  const auto analyzed = analysis::analyze_parser(module, "Synth");
  EXPECT_EQ(analyzed.input.storage_bits, 256u);
  EXPECT_EQ(analyzed.input.relevant_count(), 8u);
  EXPECT_EQ(analyzed.input.comparator_width_bits, 32u);
  EXPECT_EQ(analyzed.input.padded_bits, 256u);
}

TEST(Synth, HalfSpecDiscardsHalfViaStringPrefix) {
  // "another PE, where half of the data is discarded using
  // string-prefixes" — half the bits end up as opaque postfix.
  const auto module = spec::parse_spec(synth_spec(256, true));
  const auto analyzed = analysis::analyze_parser(module, "Synth");
  EXPECT_EQ(analyzed.input.storage_bits, 256u);
  std::uint64_t postfix_bits = 0;
  for (const auto& field : analyzed.input.fields) {
    if (!field.relevant) postfix_bits += field.storage_width_bits;
  }
  EXPECT_EQ(postfix_bits, 128u);
  // Relevant: (N/2 - 32)/32 fields + 1 prefix = N/64 = 4.
  EXPECT_EQ(analyzed.input.relevant_count(), 4u);
}

TEST(Synth, AllPaperSweepSizesAnalyze) {
  for (std::uint32_t bits = 64; bits <= 1024; bits *= 2) {
    for (const bool half : {false, true}) {
      const auto module = spec::parse_spec(synth_spec(bits, half));
      const auto analyzed = analysis::analyze_parser(module, "Synth");
      EXPECT_EQ(analyzed.input.storage_bits, bits) << bits << " " << half;
    }
  }
}

TEST(Synth, StagesPropagate) {
  const auto module = spec::parse_spec(synth_spec(256, false, 5));
  EXPECT_EQ(module.find_parser("Synth")->filter_stages, 5u);
}

TEST(Synth, InvalidSizesRejected) {
  EXPECT_THROW(synth_spec(32, false), ndpgen::Error);
  EXPECT_THROW(synth_spec(100, false), ndpgen::Error);
}

TEST(Synth, TupleDataDeterministicAndSized) {
  const auto a = synth_tuples(128, 10, 7);
  const auto b = synth_tuples(128, 10, 7);
  EXPECT_EQ(a.size(), 10u * 16);
  EXPECT_EQ(a, b);
  const auto c = synth_tuples(128, 10, 8);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ndpgen::workload
