#include "workload/pubgraph.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/analyzer.hpp"
#include "kv/db.hpp"
#include "platform/cosmos.hpp"
#include "spec/parser.hpp"
#include "support/bytes.hpp"

namespace ndpgen::workload {
namespace {

TEST(PubGraph, FullScaleCardinalities) {
  EXPECT_EQ(kFullScalePapers, 3'775'161u);
  EXPECT_EQ(kFullScaleRefs, 40'128'663u);
}

TEST(PubGraph, ScaleDividesPopulations) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 1000});
  EXPECT_EQ(generator.paper_count(), kFullScalePapers / 1000);
  EXPECT_EQ(generator.ref_count(), kFullScaleRefs / 1000);
  // The paper:ref ratio is preserved (~1:10.6).
  const double ratio = static_cast<double>(generator.ref_count()) /
                       static_cast<double>(generator.paper_count());
  EXPECT_NEAR(ratio, 10.6, 0.5);
}

TEST(PubGraph, PaperSerializationRoundTrip) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 4096});
  const PaperRecord paper = generator.paper(17);
  const auto bytes = paper.serialize();
  ASSERT_EQ(bytes.size(), PaperRecord::kBytes);
  const PaperRecord copy = PaperRecord::deserialize(bytes);
  EXPECT_EQ(copy.id, paper.id);
  EXPECT_EQ(copy.year, paper.year);
  EXPECT_EQ(copy.venue_id, paper.venue_id);
  EXPECT_EQ(copy.n_refs, paper.n_refs);
  EXPECT_EQ(copy.n_cited, paper.n_cited);
  EXPECT_EQ(std::memcmp(copy.title, paper.title, sizeof(copy.title)), 0);
}

TEST(PubGraph, RefSerializationRoundTrip) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 4096});
  const RefRecord ref = generator.ref(99);
  const auto bytes = ref.serialize();
  ASSERT_EQ(bytes.size(), RefRecord::kBytes);
  const RefRecord copy = RefRecord::deserialize(bytes);
  EXPECT_EQ(copy.src, ref.src);
  EXPECT_EQ(copy.dst, ref.dst);
}

TEST(PubGraph, DeterministicAcrossInstances) {
  PubGraphGenerator a(PubGraphConfig{.scale_divisor = 2048});
  PubGraphGenerator b(PubGraphConfig{.scale_divisor = 2048});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.paper(i).serialize(), b.paper(i).serialize());
    EXPECT_EQ(a.ref(i).serialize(), b.ref(i).serialize());
  }
}

TEST(PubGraph, SeedChangesContent) {
  PubGraphGenerator a(PubGraphConfig{.scale_divisor = 2048, .seed = 1});
  PubGraphGenerator b(PubGraphConfig{.scale_divisor = 2048, .seed = 2});
  int differing = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    differing += a.paper(i).serialize() != b.paper(i).serialize() ? 1 : 0;
  }
  EXPECT_GT(differing, 40);
}

TEST(PubGraph, PaperIdsAreDenseAndSorted) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 4096});
  for (std::uint64_t i = 0; i < generator.paper_count(); ++i) {
    EXPECT_EQ(generator.paper(i).id, i + 1);
  }
}

TEST(PubGraph, YearsInRangeAndSkewedRecent) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 1024});
  std::uint64_t recent = 0;
  const std::uint64_t count = generator.paper_count();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto year = generator.paper(i).year;
    ASSERT_GE(year, 1936u);
    ASSERT_LE(year, 2020u);
    recent += year >= 1990 ? 1 : 0;
  }
  // More than half the papers are from 1990+ (skew toward recent).
  EXPECT_GT(recent, count / 2);
}

TEST(PubGraph, YearSelectivityMatchesEmpirical) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 1024});
  for (const std::uint32_t cutoff : {1950u, 1980u, 2000u}) {
    std::uint64_t matching = 0;
    for (std::uint64_t i = 0; i < generator.paper_count(); ++i) {
      matching += generator.paper(i).year < cutoff ? 1 : 0;
    }
    const double empirical = static_cast<double>(matching) /
                             static_cast<double>(generator.paper_count());
    EXPECT_NEAR(empirical, generator.year_selectivity(cutoff), 0.03)
        << cutoff;
  }
}

TEST(PubGraph, RefsSortedForBulkLoad) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 8192});
  kv::Key previous = kv::Key::min();
  std::uint64_t strictly_ascending = 0;
  for (std::uint64_t i = 0; i < generator.ref_count(); ++i) {
    const RefRecord ref = generator.ref(i);
    EXPECT_GE(ref.src, 1u);
    EXPECT_LE(ref.src, generator.paper_count());
    EXPECT_GE(ref.dst, 1u);
    EXPECT_LE(ref.dst, generator.paper_count());
    const kv::Key key{ref.src, ref.dst};
    if (previous < key) ++strictly_ascending;
    previous = std::max(previous, key);
  }
  // The generator is ascending except for rare jitter collisions (which
  // the loader skips).
  EXPECT_GT(strictly_ascending, generator.ref_count() * 9 / 10);
}

TEST(PubGraph, KeyExtractors) {
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 8192});
  const auto paper = generator.paper(3).serialize();
  EXPECT_EQ(paper_key(paper), (kv::Key{4, 0}));
  const auto ref = generator.ref(5);
  EXPECT_EQ(ref_key(ref.serialize()), (kv::Key{ref.src, ref.dst}));
}

TEST(PubGraph, SpecSourceCompiles) {
  const auto module = spec::parse_spec(pubgraph_spec_source());
  EXPECT_NE(module.find_parser("PaperScan"), nullptr);
  EXPECT_NE(module.find_parser("RefScan"), nullptr);
  const auto analyzed = analysis::analyze_parser(module, "PaperScan");
  EXPECT_EQ(analyzed.input.storage_bytes(), PaperRecord::kBytes);
  EXPECT_EQ(analyzed.output.storage_bytes(), 24u);
  const auto refs = analysis::analyze_parser(module, "RefScan");
  EXPECT_EQ(refs.input.storage_bytes(), RefRecord::kBytes);
  EXPECT_EQ(refs.filter_stages, 2u);
}

TEST(PubGraph, LoadersPopulateStore) {
  platform::CosmosPlatform cosmos;
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 8192});
  kv::DBConfig config;
  config.record_bytes = PaperRecord::kBytes;
  config.extractor = paper_key;
  kv::NKV db(cosmos, config);
  const auto loaded = load_papers(db, generator);
  EXPECT_EQ(loaded, generator.paper_count());
  EXPECT_EQ(db.version().total_records(), loaded);
  const auto hit = db.get(kv::Key{1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(PaperRecord::deserialize(*hit).id, 1u);
}

TEST(PubGraph, RefLoaderSkipsDuplicates) {
  platform::CosmosPlatform cosmos;
  PubGraphGenerator generator(PubGraphConfig{.scale_divisor = 8192});
  kv::DBConfig config;
  config.record_bytes = RefRecord::kBytes;
  config.extractor = ref_key;
  kv::NKV db(cosmos, config);
  const auto loaded = load_refs(db, generator);
  EXPECT_GT(loaded, generator.ref_count() * 8 / 10);
  EXPECT_LE(loaded, generator.ref_count());
  EXPECT_EQ(db.version().total_records(), loaded);
}

}  // namespace
}  // namespace ndpgen::workload
