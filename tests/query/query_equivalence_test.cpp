// Plan <-> reference equivalence: every suite plan, executed through the
// compiled device+tail pipeline, must be byte-identical to the naive
// host-side reference executor — across the determinism matrix
// (pes x threads x sim-mode), under fault profiles, and on reruns.
#include <gtest/gtest.h>

#include "fault/fault_profile.hpp"
#include "query/compiler.hpp"
#include "query/executor.hpp"
#include "query/plan_parser.hpp"
#include "query/plan_suite.hpp"
#include "query/reference_executor.hpp"

namespace ndpgen::query {
namespace {

// Small enough to keep the matrix fast, big enough for non-trivial rows
// (papers: ~460 records / 2 blocks, refs: ~4601 records / 3 blocks).
constexpr std::uint64_t kScale = 8192;

Plan suite_plan(const std::string& name) {
  const NamedPlan* named = find_plan(name);
  EXPECT_NE(named, nullptr) << name;
  auto parsed = parse_plan(named->source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return std::move(parsed).value();
}

std::vector<std::uint8_t> run_compiled(const CompiledPlan& compiled,
                                       const QueryExecOptions& options,
                                       QueryStats* stats = nullptr) {
  return execute_plan(compiled, options, stats).to_bytes();
}

TEST(QueryEquivalence, AllSuitePlansMatchReferenceInBothModes) {
  for (const auto& named : plan_suite()) {
    const Plan plan = suite_plan(named.name);
    const auto reference = reference_execute(plan, kScale).to_bytes();

    QueryExecOptions options;
    options.scale_divisor = kScale;

    auto hw = compile_plan(plan);
    ASSERT_TRUE(hw.ok()) << named.name;
    EXPECT_EQ(run_compiled(hw.value(), options), reference)
        << named.name << " (hw)";

    CompileOptions force_sw;
    force_sw.force_software = true;
    auto sw = compile_plan(plan, force_sw);
    ASSERT_TRUE(sw.ok()) << named.name;
    EXPECT_FALSE(sw.value().any_offloaded()) << named.name;
    EXPECT_EQ(run_compiled(sw.value(), options), reference)
        << named.name << " (sw fallback)";
  }
}

TEST(QueryEquivalence, JoinTopKInvariantAcrossMatrix) {
  // recent_top is the join + group-by + top-k chain: the hardest plan to
  // keep deterministic, because shard merge order and tail hashing could
  // both leak into the result.
  const Plan plan = suite_plan("recent_top");
  const auto reference = reference_execute(plan, kScale).to_bytes();
  auto compiled = compile_plan(plan);
  ASSERT_TRUE(compiled.ok());

  for (const std::uint32_t pes : {1u, 4u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      for (const auto sim : {hwsim::SimMode::kExact, hwsim::SimMode::kFast}) {
        QueryExecOptions options;
        options.scale_divisor = kScale;
        options.pes = pes;
        options.threads = threads;
        options.sim_mode = sim;
        EXPECT_EQ(run_compiled(compiled.value(), options), reference)
            << "pes=" << pes << " threads=" << threads << " sim="
            << (sim == hwsim::SimMode::kExact ? "exact" : "fast");
      }
    }
  }
}

TEST(QueryEquivalence, FaultProfilesPreserveResults) {
  const Plan plan = suite_plan("recent_top");
  const auto reference = reference_execute(plan, kScale).to_bytes();
  auto compiled = compile_plan(plan);
  ASSERT_TRUE(compiled.ok());

  for (const char* profile : {"degraded", "bit-rot"}) {
    auto fault = fault::FaultProfile::parse(profile);
    ASSERT_TRUE(fault.ok()) << profile;
    QueryExecOptions options;
    options.scale_divisor = kScale;
    options.pes = 4;
    options.fault = fault.value();
    QueryStats stats;
    EXPECT_EQ(run_compiled(compiled.value(), options, &stats), reference)
        << profile;
    // Faults may cost retries or per-block SW fallback, never rows.
    ASSERT_FALSE(stats.leaves.empty());
    for (const auto& leaf : stats.leaves) {
      EXPECT_TRUE(leaf.offloaded) << profile;
      EXPECT_EQ(leaf.uncorrectable_blocks, 0u) << profile;
    }
  }
}

TEST(QueryEquivalence, RerunsAreByteStable) {
  const Plan plan = suite_plan("venue_hot");
  auto compiled = compile_plan(plan);
  ASSERT_TRUE(compiled.ok());
  QueryExecOptions options;
  options.scale_divisor = kScale;
  const ResultTable first = execute_plan(compiled.value(), options);
  const ResultTable second = execute_plan(compiled.value(), options);
  EXPECT_EQ(first.to_bytes(), second.to_bytes());
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

TEST(QueryEquivalence, StatsAccountDeviceAndHostTime) {
  const Plan plan = suite_plan("hot_window");
  auto compiled = compile_plan(plan);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(compiled.value().probe.offloaded);
  QueryExecOptions options;
  options.scale_divisor = kScale;
  QueryStats stats;
  const ResultTable table = execute_plan(compiled.value(), options, &stats);
  EXPECT_EQ(stats.rows_out, table.rows.size());
  EXPECT_GT(stats.device_ns, 0u);
  EXPECT_GT(stats.host_ns, 0u);
  EXPECT_EQ(stats.elapsed(), stats.device_ns + stats.host_ns);
  ASSERT_EQ(stats.leaves.size(), 1u);
  EXPECT_TRUE(stats.leaves[0].offloaded);
  EXPECT_GE(stats.leaves[0].hw_filter_stages, 3u);
  EXPECT_GT(stats.leaves[0].tuples_scanned, 0u);
}

}  // namespace
}  // namespace ndpgen::query
