#include "query/optimizer.hpp"

#include <gtest/gtest.h>

#include "query/plan_parser.hpp"

namespace ndpgen::query {
namespace {

OptimizedPlan optimize_text(const std::string& source) {
  auto plan = parse_plan(source);
  EXPECT_TRUE(plan.ok()) << plan.status().to_string();
  auto optimized = optimize(plan.value());
  EXPECT_TRUE(optimized.ok()) << optimized.status().to_string();
  return std::move(optimized).value();
}

TEST(Optimizer, PushesLeadingFilterConjunctions) {
  const auto opt = optimize_text(
      "plan P { scan papers; filter year ge 2000; "
      "filter n_cited gt 5, n_refs gt 1; project id; }");
  ASSERT_EQ(opt.pushdown.size(), 3u);
  EXPECT_EQ(opt.pushdown[0].column, "year");
  EXPECT_EQ(opt.pushdown[1].column, "n_cited");
  EXPECT_EQ(opt.pushdown[2].column, "n_refs");
  // Both leading filters collapsed; only the project remains.
  ASSERT_EQ(opt.tail.size(), 1u);
  EXPECT_EQ(opt.tail[0].kind, OpKind::kProject);
}

TEST(Optimizer, NonLeadingFilterStaysInTail) {
  const auto opt = optimize_text(
      "plan P { scan papers; aggregate sum n_cited group venue_id; "
      "filter sum_n_cited ge 10; }");
  EXPECT_TRUE(opt.pushdown.empty());
  ASSERT_EQ(opt.tail.size(), 2u);
  EXPECT_EQ(opt.tail[0].kind, OpKind::kAggregate);
  EXPECT_EQ(opt.tail[1].kind, OpKind::kFilter);
}

TEST(Optimizer, ProjectionPruningKeepsReferencedColumnsKeyFirst) {
  const auto opt = optimize_text(
      "plan P { scan papers; filter n_refs gt 1; project year, id; }");
  // Pruned to the project set (plus key first): id, year, and the pushed
  // predicate's n_refs is evaluated on-device, not in the output.
  EXPECT_EQ(opt.probe_columns, (std::vector<std::string>{"id", "year"}));
}

TEST(Optimizer, NoNarrowingKeepsFullBaseSchema) {
  const auto opt =
      optimize_text("plan P { scan papers; filter year ge 2000; }");
  EXPECT_EQ(opt.probe_columns,
            (std::vector<std::string>{"id", "year", "venue_id", "n_refs",
                                      "n_cited"}));
}

TEST(Optimizer, AggregatePruningKeepsGroupAndValueColumns) {
  const auto opt = optimize_text(
      "plan P { scan papers; aggregate sum n_cited group venue_id; }");
  EXPECT_EQ(opt.probe_columns,
            (std::vector<std::string>{"id", "venue_id", "n_cited"}));
}

TEST(Optimizer, BuildSidePrunedWhenNarrowedDownstream) {
  const auto opt = optimize_text(
      "plan P { scan papers; filter year ge 2015; "
      "join refs on id eq dst; aggregate count group id; }");
  ASSERT_TRUE(opt.build_dataset.has_value());
  EXPECT_EQ(*opt.build_dataset, Dataset::kRefs);
  // Aggregate narrows right after the join; only the join key is needed,
  // but refs keys come first by policy (src, dst are both key fields).
  EXPECT_EQ(opt.build_columns, (std::vector<std::string>{"src", "dst"}));
}

TEST(Optimizer, BuildSideKeepsAllColumnsWithoutNarrowing) {
  const auto opt = optimize_text(
      "plan P { scan refs; join papers on src eq id; "
      "topk 5 by papers.year; }");
  ASSERT_TRUE(opt.build_dataset.has_value());
  EXPECT_EQ(*opt.build_dataset, Dataset::kPapers);
  // No project/aggregate after the join: validate() appends the full
  // prefixed base schema, so pruning would change the result bytes.
  EXPECT_EQ(opt.build_columns,
            (std::vector<std::string>{"id", "year", "venue_id", "n_refs",
                                      "n_cited"}));
}

TEST(Optimizer, BuildSidePrunesToDottedReferences) {
  const auto opt = optimize_text(
      "plan P { scan refs; join papers on src eq id; "
      "project src, papers.year; }");
  // Narrowing project references papers.year; join key id is forced
  // first.
  EXPECT_EQ(opt.build_columns, (std::vector<std::string>{"id", "year"}));
}

TEST(Optimizer, InvalidPlanPropagatesLocatedStatus) {
  auto plan = parse_plan("plan P { scan papers; project id; }");
  ASSERT_TRUE(plan.ok());
  plan.value().ops[1].columns = {"nope"};
  const auto optimized = optimize(plan.value());
  ASSERT_FALSE(optimized.ok());
  EXPECT_EQ(optimized.status().kind, ErrorKind::kPlanInvalid);
}

}  // namespace
}  // namespace ndpgen::query
