#include "query/plan_parser.hpp"

#include <gtest/gtest.h>

#include "query/plan_suite.hpp"
#include "spec/diagnostics.hpp"

namespace ndpgen::query {
namespace {

TEST(PlanParser, ParsesFullGrammar) {
  const auto result = parse_plan(
      "plan Everything {\n"
      "  scan papers;\n"
      "  filter year ge 2000, n_cited gt 5;\n"
      "  join refs on id eq dst;\n"
      "  aggregate count group id;\n"
      "  topk 10 by count desc;\n"
      "}\n");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const Plan& plan = result.value();
  EXPECT_EQ(plan.name, "Everything");
  ASSERT_EQ(plan.ops.size(), 5u);
  EXPECT_EQ(plan.ops[0].kind, OpKind::kScan);
  EXPECT_EQ(plan.ops[0].dataset, Dataset::kPapers);
  ASSERT_EQ(plan.ops[1].predicates.size(), 2u);
  EXPECT_EQ(plan.ops[1].predicates[0].column, "year");
  EXPECT_EQ(plan.ops[1].predicates[0].op, "ge");
  EXPECT_EQ(plan.ops[1].predicates[0].value, 2000u);
  EXPECT_EQ(plan.ops[2].kind, OpKind::kHashJoin);
  EXPECT_EQ(plan.ops[2].build_dataset, Dataset::kRefs);
  EXPECT_EQ(plan.ops[2].probe_column, "id");
  EXPECT_EQ(plan.ops[2].build_column, "dst");
  EXPECT_EQ(plan.ops[3].kind, OpKind::kAggregate);
  EXPECT_EQ(plan.ops[3].agg_op, hwgen::AggOp::kCount);
  EXPECT_EQ(plan.ops[3].group_column, "id");
  EXPECT_EQ(plan.ops[4].kind, OpKind::kTopK);
  EXPECT_EQ(plan.ops[4].k, 10u);
  EXPECT_TRUE(plan.ops[4].descending);
}

TEST(PlanParser, ProjectAndAscendingTopK) {
  const auto result = parse_plan(
      "plan P { scan papers; project id, year; topk 3 by year asc; }");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().ops[1].columns,
            (std::vector<std::string>{"id", "year"}));
  EXPECT_FALSE(result.value().ops[2].descending);
}

TEST(PlanParser, SyntaxErrorIsLocatedPlanInvalid) {
  const std::string source = "plan Bad {\n  scan papers\n}";  // Missing ';'.
  const auto result = parse_plan(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kPlanInvalid);
  EXPECT_TRUE(result.status().has_location());
  EXPECT_EQ(result.status().line, 3u);  // The '}' where ';' was expected.
}

TEST(PlanParser, LexFailureMapsToPlanInvalid) {
  const auto result = parse_plan("plan Bad { scan papers; filter ` ; }");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kPlanInvalid);
  EXPECT_TRUE(result.status().has_location());
}

TEST(PlanParser, ValidationFailureCarriesPredicateLocation) {
  const std::string source =
      "plan Bad {\n"
      "  scan papers;\n"
      "  filter wat gt 5;\n"
      "}\n";
  const auto result = parse_plan(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kPlanInvalid);
  EXPECT_EQ(result.status().line, 3u);
  EXPECT_NE(result.status().message.find("unknown column 'wat'"),
            std::string::npos);
  // The caret renderer points into the original plan text.
  const std::string rendered = spec::render_caret(result.status(), source);
  EXPECT_NE(rendered.find("filter wat gt 5;"), std::string::npos);
  EXPECT_NE(rendered.find('^'), std::string::npos);
}

TEST(PlanParser, RejectsTitleFilterAndUnknownOperator) {
  auto title = parse_plan("plan T { scan papers; filter title eq 3; }");
  ASSERT_FALSE(title.ok());
  EXPECT_NE(title.status().message.find("title"), std::string::npos);

  auto op = parse_plan("plan T { scan papers; filter year betwen 3; }");
  ASSERT_FALSE(op.ok());
  EXPECT_EQ(op.status().kind, ErrorKind::kPlanInvalid);
  EXPECT_NE(op.status().message.find("betwen"), std::string::npos);
}

TEST(PlanParser, RejectsStructuralMisuse) {
  // Scan not first.
  EXPECT_FALSE(parse_plan("plan P { filter year gt 1; }").ok());
  // Second aggregate.
  EXPECT_FALSE(parse_plan("plan P { scan papers; aggregate count; "
                          "aggregate count; }")
                   .ok());
  // Join after aggregate.
  EXPECT_FALSE(parse_plan("plan P { scan papers; aggregate count; "
                          "join refs on count eq dst; }")
                   .ok());
  // topk 0.
  EXPECT_FALSE(parse_plan("plan P { scan papers; topk 0 by year; }").ok());
}

TEST(PlanParser, DottedColumnsResolveAfterJoin) {
  const auto result = parse_plan(
      "plan P { scan papers; join refs on id eq dst; "
      "project id, refs.src; }");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().ops[2].columns,
            (std::vector<std::string>{"id", "refs.src"}));
}

TEST(PlanParser, SuitePlansAllParse) {
  ASSERT_FALSE(plan_suite().empty());
  for (const auto& named : plan_suite()) {
    const auto result = parse_plan(named.source);
    EXPECT_TRUE(result.ok())
        << named.name << ": " << result.status().to_string();
  }
  EXPECT_NE(find_plan("recent_top"), nullptr);
  EXPECT_EQ(find_plan("nope"), nullptr);
}

TEST(PlanParser, ValidateComputesSchema) {
  const auto result = parse_plan(
      "plan P { scan papers; filter year ge 2000; "
      "aggregate sum n_cited group venue_id; }");
  ASSERT_TRUE(result.ok());
  const auto schema = validate(result.value());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().output_columns,
            (std::vector<std::string>{"venue_id", "sum_n_cited"}));
  EXPECT_EQ(schema.value().aggregate_column, "sum_n_cited");
  EXPECT_TRUE(schema.value().has_aggregate);
}

}  // namespace
}  // namespace ndpgen::query
