// Serving plans through the host QueryService: streamability gate,
// device/tail predicate cut, and the phase-accounting invariant of the
// PlanTarget decorator.
#include "query/serve.hpp"

#include <gtest/gtest.h>

#include "query/plan_parser.hpp"
#include "query/plan_suite.hpp"

namespace ndpgen::query {
namespace {

constexpr std::uint64_t kScale = 8192;

Plan parse_ok(const std::string& source) {
  auto parsed = parse_plan(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return std::move(parsed).value();
}

ServePlanConfig small_config() {
  ServePlanConfig config;
  config.scale_divisor = kScale;
  config.tenants = 2;
  config.requests = 48;
  return config;
}

TEST(ServePlan, StreamableTailsAreServable) {
  EXPECT_FALSE(
      servable(parse_ok("plan P { scan papers; filter year ge 2000; }")));
  EXPECT_FALSE(servable(parse_ok(
      "plan P { scan papers; filter year ge 2000, n_cited ge 50; "
      "project id, year; }")));
  // hot_window is the suite's pure filter+project plan.
  EXPECT_FALSE(servable(parse_ok(find_plan("hot_window")->source)));
}

TEST(ServePlan, StatefulOperatorsAreRejected) {
  const auto join = servable(
      parse_ok("plan P { scan papers; join refs on id eq dst; }"));
  ASSERT_TRUE(join.has_value());
  EXPECT_EQ(join->kind, ErrorKind::kInvalidArg);
  EXPECT_NE(join->message.find("join"), std::string::npos);

  EXPECT_TRUE(
      servable(parse_ok("plan P { scan papers; aggregate count; }")));
  EXPECT_TRUE(
      servable(parse_ok("plan P { scan papers; topk 5 by year; }")));
  // Ref scans are not servable: the service stack is the papers PE.
  EXPECT_TRUE(
      servable(parse_ok("plan P { scan refs; filter src le 10; }")));
}

TEST(ServePlan, ServeRejectsUnservablePlanWithTypedStatus) {
  const auto result =
      serve_plan(parse_ok(find_plan("recent_top")->source), small_config());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind, ErrorKind::kInvalidArg);
}

TEST(ServePlan, FilterProjectPlanServesLoad) {
  const Plan plan = parse_ok(find_plan("hot_window")->source);
  auto result = serve_plan(plan, small_config());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const ServeReport& report = result.value();

  EXPECT_EQ(report.service.completed, 48u);
  EXPECT_EQ(report.service.dropped, 0u);
  // hot_window carries 4 predicates: the stock PE takes exactly one on
  // its single HW filter stage, the rest run as row filters in the tail.
  EXPECT_EQ(report.device_predicates, 1u);
  EXPECT_EQ(report.tail_predicates, 3u);
  EXPECT_TRUE(report.projected);
  // The tail actually filtered something (predicates are selective).
  EXPECT_GT(report.rows_filtered, 0u);
  // PlanTarget folds its tail cost into phases.merge, so the service-wide
  // invariant phases.total() == summed latency must still hold — the
  // QueryService asserts it per request; here we check the merge phase
  // picked up the tail work.
  EXPECT_GT(report.service.phases[obs::RequestPhase::kMerge], 0u);
}

TEST(ServePlan, SingleFilterPlanNeedsNoTail) {
  auto result = serve_plan(
      parse_ok("plan solo { scan papers; filter year ge 1990; }"),
      small_config());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().device_predicates, 1u);
  EXPECT_EQ(result.value().tail_predicates, 0u);
  EXPECT_FALSE(result.value().projected);
  EXPECT_EQ(result.value().rows_filtered, 0u);
  EXPECT_EQ(result.value().service.completed, 48u);
}

TEST(ServePlan, ServeIsDeterministic) {
  const Plan plan = parse_ok(find_plan("hot_window")->source);
  auto first = serve_plan(plan, small_config());
  auto second = serve_plan(plan, small_config());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().service.completed, second.value().service.completed);
  EXPECT_EQ(first.value().rows_filtered, second.value().rows_filtered);
  EXPECT_EQ(first.value().service.makespan_ns,
            second.value().service.makespan_ns);
  EXPECT_EQ(first.value().service.p99_ns, second.value().service.p99_ns);
}

}  // namespace
}  // namespace ndpgen::query
