#include "query/compiler.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "query/plan_parser.hpp"
#include "query/plan_suite.hpp"

namespace ndpgen::query {
namespace {

Plan plan_from_suite(const std::string& name) {
  const NamedPlan* named = find_plan(name);
  EXPECT_NE(named, nullptr) << name;
  auto parsed = parse_plan(named->source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return std::move(parsed).value();
}

TEST(PlanCompiler, HotWindowLowersToMultiStageChain) {
  const auto compiled = compile_plan(plan_from_suite("hot_window"));
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
  const LeafPipeline& leaf = compiled.value().probe;
  ASSERT_TRUE(leaf.offloaded);
  // Acceptance: at least one suite plan compiles to a >=3-stage chained
  // filter pipeline. hot_window pushes 4 predicates onto 4 stages.
  EXPECT_GE(leaf.pricing.filter_stages, 3u);
  EXPECT_EQ(leaf.pushed.size(), 4u);
  EXPECT_TRUE(leaf.residual.empty());
  // Chain pricing composed per stage: total covers every module.
  EXPECT_GT(leaf.pricing.total.slices, 0.0);
  EXPECT_GE(leaf.pricing.stages.size(), leaf.pricing.filter_stages);
  // The synthesized spec reflects the cut.
  EXPECT_NE(leaf.spec_source.find("filters = 4"), std::string::npos);
}

TEST(PlanCompiler, TightBudgetCutsChainAndLeavesResidual) {
  const Plan plan = plan_from_suite("hot_window");
  // Budget sized so the full 4-stage chain does not fit but a shorter
  // prefix does: price the full chain first, then subtract.
  auto full = compile_plan(plan);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full.value().probe.offloaded);
  const double full_slices = full.value().probe.pricing.total.slices;
  const double last_stage =
      full.value().probe.pricing.stages.back().resources.slices;

  CompileOptions options;
  options.budget.max_slices = full_slices - 0.5 * last_stage;
  const auto cut = compile_plan(plan, options);
  ASSERT_TRUE(cut.ok()) << cut.status().to_string();
  const LeafPipeline& leaf = cut.value().probe;
  ASSERT_TRUE(leaf.offloaded);
  EXPECT_LT(leaf.pricing.filter_stages, 4u);
  EXPECT_GE(leaf.pricing.filter_stages, 1u);
  // Cut predicates became SW residuals, in plan order.
  EXPECT_EQ(leaf.pushed.size() + leaf.residual.size(), 4u);
  EXPECT_FALSE(leaf.residual.empty());
  // Residual predicate columns were added to the leaf output so the SW
  // tail can evaluate them.
  for (const auto& pred : leaf.residual) {
    EXPECT_NE(std::find(leaf.columns.begin(), leaf.columns.end(),
                        pred.column),
              leaf.columns.end())
        << pred.column;
  }
}

TEST(PlanCompiler, ImpossibleBudgetFallsBackToSoftware) {
  CompileOptions options;
  options.budget.max_slices = 1.0;  // Nothing fits.
  const auto compiled =
      compile_plan(plan_from_suite("edge_cut"), options);
  ASSERT_TRUE(compiled.ok());
  const LeafPipeline& leaf = compiled.value().probe;
  EXPECT_FALSE(leaf.offloaded);
  EXPECT_FALSE(compiled.value().any_offloaded());
  EXPECT_NE(leaf.fallback_reason.find("budget"), std::string::npos);
  // The host fallback evaluates every predicate in software.
  EXPECT_EQ(leaf.pushed.size(), 2u);
}

TEST(PlanCompiler, ForceSoftwareSkipsLowering) {
  CompileOptions options;
  options.force_software = true;
  const auto compiled =
      compile_plan(plan_from_suite("hot_window"), options);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled.value().any_offloaded());
  EXPECT_EQ(compiled.value().probe.fallback_reason,
            "software execution forced");
}

TEST(PlanCompiler, BareAggregateFoldsOnDevice) {
  const auto compiled = compile_plan(plan_from_suite("early_count"));
  ASSERT_TRUE(compiled.ok());
  const LeafPipeline& leaf = compiled.value().probe;
  ASSERT_TRUE(leaf.offloaded);
  EXPECT_TRUE(leaf.hw_aggregate);
  EXPECT_EQ(leaf.agg_op, hwgen::AggOp::kCount);
  EXPECT_NE(leaf.spec_source.find("aggregate = true"), std::string::npos);
}

TEST(PlanCompiler, JoinPlanCompilesBothLeaves) {
  const auto compiled = compile_plan(plan_from_suite("recent_top"));
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(compiled.value().build.has_value());
  EXPECT_EQ(compiled.value().build->dataset, Dataset::kRefs);
  // Build side has no pushdown: it scans its full (pruned) dataset.
  EXPECT_TRUE(compiled.value().build->pushed.empty());
  const std::string explain = compiled.value().explain();
  EXPECT_NE(explain.find("probe leaf (papers)"), std::string::npos);
  EXPECT_NE(explain.find("build leaf (refs)"), std::string::npos);
}

TEST(PlanCompiler, SynthesizedSpecCompilesStandalone) {
  const auto compiled = compile_plan(plan_from_suite("hot_window"));
  ASSERT_TRUE(compiled.ok());
  // The leaf spec is a complete, self-contained format specification.
  const core::Framework framework;
  const auto artifacts =
      framework.compile(compiled.value().probe.spec_source);
  EXPECT_EQ(artifacts.get("QueryLeaf").design.filter_stage_count(), 4u);
}

}  // namespace
}  // namespace ndpgen::query
