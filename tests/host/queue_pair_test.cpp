// Tests of the per-tenant NVMe submission/completion queue pair.
#include "host/queue_pair.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::host {
namespace {

Request make_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.lo = kv::Key{id, 0};
  request.hi = kv::Key{id + 10, 0};
  return request;
}

TEST(QueuePairTest, SubmitReturnsPostAdmissionDepth) {
  QueuePair qp(0, 4);
  EXPECT_EQ(qp.submit(make_request(1)).value(), 1u);
  EXPECT_EQ(qp.submit(make_request(2)).value(), 2u);
  EXPECT_EQ(qp.sq_depth(), 2u);
  EXPECT_EQ(qp.admitted(), 2u);
}

TEST(QueuePairTest, FullQueueRejectsWithTypedBusy) {
  QueuePair qp(3, 2);
  ASSERT_TRUE(qp.submit(make_request(1)).ok());
  ASSERT_TRUE(qp.submit(make_request(2)).ok());
  EXPECT_TRUE(qp.sq_full());
  const auto rejected = qp.submit(make_request(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().kind, ErrorKind::kBusy);
  // The message names the tenant so service logs stay attributable.
  EXPECT_NE(rejected.status().message.find("tenant 3"), std::string::npos);
  EXPECT_EQ(qp.rejected_busy(), 1u);
  EXPECT_EQ(qp.admitted(), 2u);
  // Rejection never mutates the queue: head is still request 1.
  ASSERT_NE(qp.head(), nullptr);
  EXPECT_EQ(qp.head()->id, 1u);
}

TEST(QueuePairTest, PopIsFifoAndFreesCapacity) {
  QueuePair qp(0, 2);
  ASSERT_TRUE(qp.submit(make_request(1)).ok());
  ASSERT_TRUE(qp.submit(make_request(2)).ok());
  ASSERT_FALSE(qp.submit(make_request(3)).ok());
  EXPECT_EQ(qp.pop()->id, 1u);
  EXPECT_FALSE(qp.sq_full());
  ASSERT_TRUE(qp.submit(make_request(3)).ok());
  EXPECT_EQ(qp.pop()->id, 2u);
  EXPECT_EQ(qp.pop()->id, 3u);
  EXPECT_FALSE(qp.pop().has_value());
  EXPECT_EQ(qp.head(), nullptr);
}

TEST(QueuePairTest, HighWaterTracksDeepestQueue) {
  QueuePair qp(0, 8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(qp.submit(make_request(i)).ok());
  }
  while (qp.pop().has_value()) {
  }
  ASSERT_TRUE(qp.submit(make_request(9)).ok());
  EXPECT_EQ(qp.sq_high_water(), 5u);
}

TEST(QueuePairTest, CompletionsReapInPostingOrder) {
  QueuePair qp(0, 4);
  Completion first;
  first.id = 7;
  first.arrival = 100;
  first.admitted = 150;
  first.dispatched = 200;
  first.completed = 450;
  Completion second;
  second.id = 8;
  qp.post(first);
  qp.post(second);
  EXPECT_EQ(qp.cq_depth(), 2u);
  EXPECT_EQ(qp.completed(), 2u);
  std::vector<Completion> reaped;
  qp.reap(reaped);
  ASSERT_EQ(reaped.size(), 2u);
  EXPECT_EQ(reaped[0].id, 7u);
  EXPECT_EQ(reaped[1].id, 8u);
  EXPECT_EQ(qp.cq_depth(), 0u);
  EXPECT_EQ(reaped[0].latency(), 350u);
  EXPECT_EQ(reaped[0].queue_wait(), 50u);
}

TEST(QueuePairTest, ZeroDepthIsInvalid) {
  EXPECT_THROW(QueuePair(0, 0), Error);
}

TEST(QueuePairTest, BurstAtCapacityAdmitsExactlyDepthRequests) {
  // A burst of 2x depth arriving at one instant: admission must take
  // exactly `depth` requests — not depth-1, not depth+1 — and the Nth
  // rejection must leave the SQ untouched.
  constexpr std::uint32_t kDepth = 4;
  QueuePair qp(1, kDepth);
  for (std::uint64_t i = 0; i < 2 * kDepth; ++i) {
    const auto admitted = qp.submit(make_request(i));
    if (i < kDepth) {
      ASSERT_TRUE(admitted.ok()) << i;
      EXPECT_EQ(admitted.value(), i + 1) << i;
      EXPECT_EQ(qp.sq_full(), i + 1 == kDepth) << i;
    } else {
      ASSERT_FALSE(admitted.ok()) << i;
      EXPECT_EQ(admitted.status().kind, ErrorKind::kBusy) << i;
    }
  }
  EXPECT_EQ(qp.admitted(), kDepth);
  EXPECT_EQ(qp.rejected_busy(), kDepth);
  EXPECT_EQ(qp.sq_depth(), kDepth);
  EXPECT_EQ(qp.sq_high_water(), kDepth);
  // Freeing one slot re-opens admission for exactly one request.
  EXPECT_EQ(qp.pop()->id, 0u);
  ASSERT_TRUE(qp.submit(make_request(100)).ok());
  ASSERT_FALSE(qp.submit(make_request(101)).ok());
}

TEST(QueuePairTest, RetryJitterIsSeededPerRequestAttempt) {
  constexpr platform::SimTime kBackoff = 40'000;
  Request request = make_request(7);
  request.tenant = 3;
  request.attempts = 1;
  const platform::SimTime first = QueuePair::retry_jitter(request, kBackoff);
  // Pure function of (id, tenant, attempt): replays byte-identically, no
  // shared stream to be perturbed by other tenants' retries.
  EXPECT_EQ(QueuePair::retry_jitter(request, kBackoff), first);
  EXPECT_LT(first, kBackoff / 4);

  // Different attempt / tenant / id each re-seed the jitter; a rejected
  // burst must spread instead of re-colliding at the same instant.
  Request next_attempt = request;
  next_attempt.attempts = 2;
  Request other_tenant = request;
  other_tenant.tenant = 4;
  Request other_id = request;
  other_id.id = 8;
  const bool any_differs =
      QueuePair::retry_jitter(next_attempt, kBackoff) != first ||
      QueuePair::retry_jitter(other_tenant, kBackoff) != first ||
      QueuePair::retry_jitter(other_id, kBackoff) != first;
  EXPECT_TRUE(any_differs);

  // Degenerate window: backoff too small to jitter stays exact.
  EXPECT_EQ(QueuePair::retry_jitter(request, 3), 0u);
}

}  // namespace
}  // namespace ndpgen::host
