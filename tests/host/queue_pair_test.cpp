// Tests of the per-tenant NVMe submission/completion queue pair.
#include "host/queue_pair.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ndpgen::host {
namespace {

Request make_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.lo = kv::Key{id, 0};
  request.hi = kv::Key{id + 10, 0};
  return request;
}

TEST(QueuePairTest, SubmitReturnsPostAdmissionDepth) {
  QueuePair qp(0, 4);
  EXPECT_EQ(qp.submit(make_request(1)).value(), 1u);
  EXPECT_EQ(qp.submit(make_request(2)).value(), 2u);
  EXPECT_EQ(qp.sq_depth(), 2u);
  EXPECT_EQ(qp.admitted(), 2u);
}

TEST(QueuePairTest, FullQueueRejectsWithTypedBusy) {
  QueuePair qp(3, 2);
  ASSERT_TRUE(qp.submit(make_request(1)).ok());
  ASSERT_TRUE(qp.submit(make_request(2)).ok());
  EXPECT_TRUE(qp.sq_full());
  const auto rejected = qp.submit(make_request(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().kind, ErrorKind::kBusy);
  // The message names the tenant so service logs stay attributable.
  EXPECT_NE(rejected.status().message.find("tenant 3"), std::string::npos);
  EXPECT_EQ(qp.rejected_busy(), 1u);
  EXPECT_EQ(qp.admitted(), 2u);
  // Rejection never mutates the queue: head is still request 1.
  ASSERT_NE(qp.head(), nullptr);
  EXPECT_EQ(qp.head()->id, 1u);
}

TEST(QueuePairTest, PopIsFifoAndFreesCapacity) {
  QueuePair qp(0, 2);
  ASSERT_TRUE(qp.submit(make_request(1)).ok());
  ASSERT_TRUE(qp.submit(make_request(2)).ok());
  ASSERT_FALSE(qp.submit(make_request(3)).ok());
  EXPECT_EQ(qp.pop()->id, 1u);
  EXPECT_FALSE(qp.sq_full());
  ASSERT_TRUE(qp.submit(make_request(3)).ok());
  EXPECT_EQ(qp.pop()->id, 2u);
  EXPECT_EQ(qp.pop()->id, 3u);
  EXPECT_FALSE(qp.pop().has_value());
  EXPECT_EQ(qp.head(), nullptr);
}

TEST(QueuePairTest, HighWaterTracksDeepestQueue) {
  QueuePair qp(0, 8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(qp.submit(make_request(i)).ok());
  }
  while (qp.pop().has_value()) {
  }
  ASSERT_TRUE(qp.submit(make_request(9)).ok());
  EXPECT_EQ(qp.sq_high_water(), 5u);
}

TEST(QueuePairTest, CompletionsReapInPostingOrder) {
  QueuePair qp(0, 4);
  Completion first;
  first.id = 7;
  first.arrival = 100;
  first.admitted = 150;
  first.dispatched = 200;
  first.completed = 450;
  Completion second;
  second.id = 8;
  qp.post(first);
  qp.post(second);
  EXPECT_EQ(qp.cq_depth(), 2u);
  EXPECT_EQ(qp.completed(), 2u);
  std::vector<Completion> reaped;
  qp.reap(reaped);
  ASSERT_EQ(reaped.size(), 2u);
  EXPECT_EQ(reaped[0].id, 7u);
  EXPECT_EQ(reaped[1].id, 8u);
  EXPECT_EQ(qp.cq_depth(), 0u);
  EXPECT_EQ(reaped[0].latency(), 350u);
  EXPECT_EQ(reaped[0].queue_wait(), 50u);
}

TEST(QueuePairTest, ZeroDepthIsInvalid) {
  EXPECT_THROW(QueuePair(0, 0), Error);
}

}  // namespace
}  // namespace ndpgen::host
