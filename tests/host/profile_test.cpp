// End-to-end tests of the request profiler wired through the host query
// service: exact phase attribution (phases sum to latency, report totals
// sum over completions), deterministic attribution artifacts across host
// thread counts, and causally-consistent request flows in the trace.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "core/framework.hpp"
#include "host/service.hpp"
#include "ndp/executor.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::host {
namespace {

struct ProfileRunParams {
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::uint64_t requests = 24;
  std::uint32_t tenants = 2;
  std::uint64_t seed = 20210521;
};

struct ProfileRunResult {
  ServiceReport report;
  std::string attribution_json;
  std::string profile_report;
  std::string trace_json;
};

/// One isolated service run with profiler and trace sink attached.
ProfileRunResult run_profiled(const ProfileRunParams& params) {
  platform::CosmosPlatform cosmos;
  obs::TraceSink trace;
  obs::RequestProfiler profiler;
  cosmos.observability().trace = &trace;
  cosmos.observability().profiler = &profiler;

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 16384});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);

  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kHardware;
  exec_config.num_pes = params.pes;
  exec_config.pe_threads = params.threads;
  exec_config.result_key_extractor = workload::paper_result_key;
  exec_config.pe_indices = {
      framework.instantiate(compiled, "PaperScan", cosmos)};
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  ServiceConfig service_config;
  service_config.tenants = params.tenants;
  service_config.result_key = workload::paper_result_key;

  LoadConfig load_config;
  load_config.tenants = params.tenants;
  load_config.requests = params.requests;
  load_config.arrival_rate = 2000;
  load_config.key_space = generator.paper_count();
  load_config.seed = params.seed;

  QueryService service(executor, cosmos, service_config);
  LoadGenerator load(load_config);
  ProfileRunResult out;
  out.report = service.run(load);
  std::ostringstream attribution;
  profiler.write_json(attribution);
  out.attribution_json = attribution.str();
  std::ostringstream report;
  profiler.write_report(report);
  out.profile_report = report.str();
  out.trace_json = trace.to_json();
  return out;
}

TEST(RequestProfileTest, EveryCompletionPhaseSumsToItsLatency) {
  // The profiler itself CHECKs phases.total() == latency on record(), so
  // a completed run is already evidence; assert the aggregate identity
  // here: report-level phases sum to the summed per-request latency.
  platform::CosmosPlatform cosmos;
  obs::RequestProfiler profiler;
  cosmos.observability().profiler = &profiler;

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 16384});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);

  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kHardware;
  exec_config.num_pes = 2;
  exec_config.result_key_extractor = workload::paper_result_key;
  exec_config.pe_indices = {
      framework.instantiate(compiled, "PaperScan", cosmos)};
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  ServiceConfig service_config;
  service_config.tenants = 2;
  service_config.result_key = workload::paper_result_key;
  LoadConfig load_config;
  load_config.tenants = 2;
  load_config.requests = 32;
  load_config.arrival_rate = 2000;
  load_config.key_space = generator.paper_count();
  load_config.seed = 7;

  QueryService service(executor, cosmos, service_config);
  LoadGenerator load(load_config);
  const ServiceReport report = service.run(load);

  ASSERT_EQ(profiler.size(), report.completed);
  std::uint64_t latency_sum = 0;
  for (const obs::RequestProfile& r : profiler.requests()) {
    EXPECT_EQ(r.phases.total(), r.latency_ns()) << "request " << r.id;
    latency_sum += r.latency_ns();
  }
  EXPECT_EQ(report.phases.total(), latency_sum);
  EXPECT_EQ(profiler.totals().total(), latency_sum);

  // Per-tenant report phases partition the global phases.
  obs::PhaseBreakdown tenant_sum;
  for (const TenantReport& tenant : report.tenants) {
    tenant_sum += tenant.phases;
  }
  EXPECT_EQ(tenant_sum.total(), report.phases.total());
}

TEST(RequestProfileTest, AttributionIsByteIdenticalAcrossHostThreads) {
  ProfileRunParams single;
  single.pes = 2;
  single.threads = 1;
  ProfileRunParams pooled = single;
  pooled.threads = 4;
  const ProfileRunResult a = run_profiled(single);
  const ProfileRunResult b = run_profiled(pooled);
  EXPECT_EQ(a.report.completed, b.report.completed);
  EXPECT_EQ(a.attribution_json, b.attribution_json);
  EXPECT_EQ(a.profile_report, b.profile_report);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(RequestProfileTest, ReRunIsByteIdentical) {
  const ProfileRunResult a = run_profiled(ProfileRunParams{});
  const ProfileRunResult b = run_profiled(ProfileRunParams{});
  EXPECT_EQ(a.attribution_json, b.attribution_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(RequestProfileTest, TraceCarriesOneFlowPerCompletedRequest) {
  const ProfileRunResult run = run_profiled(ProfileRunParams{});
  ASSERT_GT(run.report.completed, 0u);

  // Count flow begin ("ph":"s") and end ("ph":"f") events per flow id by
  // scanning the rendered JSON; each completed request contributes
  // exactly one of each, under its deterministic id (request id + 1).
  std::map<std::uint64_t, std::pair<int, int>> flows;
  const std::string& json = run.trace_json;
  for (const char phase : {'s', 'f'}) {
    const std::string needle =
        std::string("\"ph\":\"") + phase + "\",\"bp\":\"e\",\"id\":";
    const std::string plain = std::string("\"ph\":\"") + phase + "\",\"id\":";
    for (std::size_t pos = 0; (pos = json.find(plain, pos)) != std::string::npos;
         pos += plain.size()) {
      const std::uint64_t id = std::strtoull(
          json.c_str() + pos + plain.size(), nullptr, 10);
      (phase == 's' ? flows[id].first : flows[id].second)++;
    }
    for (std::size_t pos = 0;
         (pos = json.find(needle, pos)) != std::string::npos;
         pos += needle.size()) {
      const std::uint64_t id = std::strtoull(
          json.c_str() + pos + needle.size(), nullptr, 10);
      (phase == 's' ? flows[id].first : flows[id].second)++;
    }
  }
  EXPECT_EQ(flows.size(), run.report.completed);
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << id;
    EXPECT_EQ(counts.second, 1) << "flow " << id;
    EXPECT_GE(id, 1u);  // Minted ids are request id + 1, never 0.
  }
}

}  // namespace
}  // namespace ndpgen::host
