// End-to-end tests of the host query service: admission, retry/backoff,
// WRR fairness, coalescing, determinism, and typed error propagation.
#include "host/service.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "ndp/executor.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::host {
namespace {

struct RunParams {
  std::uint32_t tenants = 2;
  std::uint32_t queue_depth = 8;
  std::vector<std::uint32_t> weights;
  std::uint32_t batch_limit = 8;
  std::uint32_t max_retries = 8;
  std::uint64_t requests = 48;
  std::uint64_t arrival_rate = 2000;  ///< 0 with clients > 0 = closed loop.
  std::uint32_t closed_loop_clients = 0;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::uint64_t seed = 20210521;
  fault::FaultProfile fault;
};

struct RunResult {
  ServiceReport report;
  std::string metrics_json;
};

/// One fully isolated service run: fresh platform, store, executor.
RunResult run_service(const RunParams& params) {
  platform::CosmosConfig cosmos_config;
  cosmos_config.fault = params.fault;
  platform::CosmosPlatform cosmos(cosmos_config);
  const core::Framework framework;
  const auto compiled =
      framework.compile(workload::pubgraph_spec_source());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 16384});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);

  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kHardware;
  exec_config.num_pes = params.pes;
  exec_config.pe_threads = params.threads;
  exec_config.result_key_extractor = workload::paper_result_key;
  exec_config.pe_indices = {
      framework.instantiate(compiled, "PaperScan", cosmos)};
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  ServiceConfig service_config;
  service_config.tenants = params.tenants;
  service_config.queue_depth = params.queue_depth;
  service_config.weights = params.weights;
  service_config.batch_limit = params.batch_limit;
  service_config.max_retries = params.max_retries;
  service_config.result_key = workload::paper_result_key;

  LoadConfig load_config;
  load_config.tenants = params.tenants;
  load_config.requests = params.requests;
  load_config.arrival_rate = params.arrival_rate;
  load_config.closed_loop_clients = params.closed_loop_clients;
  load_config.key_space = generator.paper_count();
  load_config.seed = params.seed;

  QueryService service(executor, cosmos, service_config);
  LoadGenerator load(load_config);
  RunResult out;
  out.report = service.run(load);
  cosmos.publish_metrics();
  out.metrics_json = cosmos.observability().metrics.dump_json();
  return out;
}

void expect_reports_equal(const ServiceReport& a, const ServiceReport& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejected_busy, b.rejected_busy);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.coalesced, b.coalesced);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.device_busy_ns, b.device_busy_ns);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p95_ns, b.p95_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].completed, b.tenants[t].completed) << t;
    EXPECT_EQ(a.tenants[t].results, b.tenants[t].results) << t;
    EXPECT_EQ(a.tenants[t].p99_ns, b.tenants[t].p99_ns) << t;
  }
}

TEST(QueryServiceTest, OpenLoopCompletesEveryRequest) {
  const auto run = run_service(RunParams{});
  const auto& report = run.report;
  EXPECT_EQ(report.submitted, 48u);
  EXPECT_EQ(report.completed, 48u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GT(report.results, 0u);
  EXPECT_GE(report.batches, 1u);
  // Every request either opened an offload or rode an earlier head's.
  EXPECT_EQ(report.batches + report.coalesced, report.completed);
  EXPECT_GT(report.makespan_ns, 0u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_LE(report.p50_ns, report.p95_ns);
  EXPECT_LE(report.p95_ns, report.p99_ns);
  EXPECT_GT(report.utilization(), 0.0);
  std::uint64_t tenant_completed = 0;
  std::uint64_t tenant_results = 0;
  for (const auto& tenant : report.tenants) {
    tenant_completed += tenant.completed;
    tenant_results += tenant.results;
  }
  EXPECT_EQ(tenant_completed, report.completed);
  EXPECT_EQ(tenant_results, report.results);
}

TEST(QueryServiceTest, AdmissionControlDropsWithoutRetryBudget) {
  RunParams params;
  params.queue_depth = 1;
  params.max_retries = 0;
  params.arrival_rate = 50000;  // Far past the knee.
  params.requests = 32;
  const auto run = run_service(params);
  const auto& report = run.report;
  EXPECT_EQ(report.submitted, 32u);
  EXPECT_GT(report.rejected_busy, 0u);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.retries, 0u);
  // kBusy is accounted, never silently swallowed: every submission ends
  // as exactly one completion or one drop.
  EXPECT_EQ(report.completed + report.dropped, report.submitted);
  // And the obs layer carries the same story.
  EXPECT_NE(run.metrics_json.find("\"host.dropped\""), std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"host.rejected_busy\""),
            std::string::npos);
}

TEST(QueryServiceTest, RetryBackoffEventuallyAdmits) {
  RunParams params;
  params.tenants = 1;
  params.queue_depth = 4;
  params.max_retries = 16;
  params.requests = 32;
  params.closed_loop_clients = 8;  // 8 clients vs SQ depth 4: must retry.
  const auto run = run_service(params);
  const auto& report = run.report;
  EXPECT_GT(report.rejected_busy, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.completed, 32u);
}

TEST(QueryServiceTest, FixedSeedIsByteDeterministic) {
  RunParams params;
  params.requests = 40;
  const auto first = run_service(params);
  const auto second = run_service(params);
  expect_reports_equal(first.report, second.report);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(QueryServiceTest, ThreadCountNeverChangesResults) {
  RunParams params;
  params.requests = 40;
  params.pes = 2;
  params.threads = 1;
  const auto serial = run_service(params);
  params.threads = 4;
  const auto threaded = run_service(params);
  expect_reports_equal(serial.report, threaded.report);
  EXPECT_EQ(serial.metrics_json, threaded.metrics_json);
}

TEST(QueryServiceTest, BatchingCoalescesAndLiftsThroughput) {
  RunParams params;
  params.requests = 64;
  params.closed_loop_clients = 16;
  params.arrival_rate = 0;
  const auto batched = run_service(params);
  params.batch_limit = 1;
  const auto unbatched = run_service(params);
  EXPECT_GT(batched.report.coalesced, 0u);
  EXPECT_GT(batched.report.max_batch, 1u);
  EXPECT_LT(batched.report.batches, unbatched.report.batches);
  EXPECT_GT(batched.report.throughput_rps,
            unbatched.report.throughput_rps);
  EXPECT_EQ(unbatched.report.coalesced, 0u);
  EXPECT_EQ(unbatched.report.max_batch, 1u);
}

TEST(QueryServiceTest, WeightedArbitrationFavorsHeavyTenant) {
  RunParams params;
  params.tenants = 2;
  params.weights = {3, 1};
  params.queue_depth = 4;
  params.requests = 96;
  params.closed_loop_clients = 8;  // 4 clients per tenant, saturating.
  params.arrival_rate = 0;
  // One request per grant: with batching a single grant drains the whole
  // SQ and the work-conserving arbiter just alternates, hiding the ratio.
  params.batch_limit = 1;
  const auto run = run_service(params);
  const auto& report = run.report;
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_GT(report.tenants[1].completed, 0u);  // Never starved.
  // A closed loop completes every request regardless of weights; the 3:1
  // grant ratio instead shows up as service differentiation — the light
  // tenant's requests sit in their SQ through three heavy-tenant grants
  // per rotation, so its median latency is materially worse.
  EXPECT_GE(report.tenants[1].p50_ns,
            report.tenants[0].p50_ns + report.tenants[0].p50_ns / 2);
  EXPECT_GE(report.tenants[1].p99_ns, report.tenants[0].p99_ns);
}

TEST(QueryServiceTest, MidRecoveryStorageErrorPropagates) {
  // Crash a durable store mid-load, then poke the service while recover()
  // is in flight: the executor's typed kStorage refusal must unwind
  // through QueryService::run, not be swallowed as a busy/drop.
  platform::CosmosConfig cosmos_config;
  cosmos_config.crash.crash_at_step = 60;
  platform::CosmosPlatform platform(cosmos_config);
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  db_config.memtable_bytes = 2 * 1024;
  db_config.durability.enabled = true;
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 65536});
  {
    kv::NKV db(platform, db_config);
    for (std::uint64_t i = 0; i < generator.paper_count() &&
                              !platform.crash_scheduler().crashed();
         ++i) {
      db.put(generator.paper(i).serialize());
    }
  }
  ASSERT_TRUE(platform.crash_scheduler().crashed());
  platform.flash().set_crash_scheduler(nullptr);

  kv::NKV recovered(platform, db_config);
  bool probed = false;
  kv::RecoveryOptions options;
  options.mid_recovery_probe = [&] {
    ASSERT_TRUE(recovered.recovering());
    ndp::ExecutorConfig exec_config;
    exec_config.mode = ndp::ExecMode::kSoftware;
    exec_config.result_key_extractor = workload::paper_result_key;
    const core::Framework framework;
    const auto compiled =
        framework.compile(workload::pubgraph_spec_source());
    const auto& artifacts = compiled.get("PaperScan");
    ndp::HybridExecutor executor(recovered, artifacts.analyzed,
                                 artifacts.design.operators, exec_config);
    ServiceConfig service_config;
    service_config.tenants = 1;
    service_config.result_key = workload::paper_result_key;
    LoadConfig load_config;
    load_config.tenants = 1;
    load_config.requests = 1;
    load_config.key_space = generator.paper_count();
    QueryService service(executor, platform, service_config);
    LoadGenerator load(load_config);
    try {
      service.run(load);
      FAIL() << "service must surface the mid-recovery refusal";
    } catch (const Error& error) {
      EXPECT_EQ(error.kind(), ErrorKind::kStorage);
    }
    probed = true;
  };
  (void)recovered.recover(options);
  EXPECT_TRUE(probed);
  EXPECT_FALSE(recovered.recovering());
}

TEST(QueryServiceTest, DegradedMediaRunStillCompletes) {
  RunParams params;
  params.requests = 24;
  params.arrival_rate = 1000;
  auto profile = fault::FaultProfile::parse("aged");
  params.fault = profile.value_or_raise();
  const auto run = run_service(params);
  EXPECT_EQ(run.report.completed, 24u);
  EXPECT_EQ(run.report.dropped, 0u);
}

TEST(QueryServiceTest, ValidatesConfiguration) {
  platform::CosmosPlatform cosmos;
  const core::Framework framework;
  const auto compiled =
      framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 65536});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kSoftware;
  exec_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  ServiceConfig missing_key;
  missing_key.tenants = 1;
  EXPECT_THROW(QueryService(executor, cosmos, missing_key), Error);

  ServiceConfig bad_weights;
  bad_weights.tenants = 2;
  bad_weights.weights = {1};  // One weight for two tenants.
  bad_weights.result_key = workload::paper_result_key;
  EXPECT_THROW(QueryService(executor, cosmos, bad_weights), Error);

  // Tenant mismatch between load and service.
  ServiceConfig ok;
  ok.tenants = 2;
  ok.result_key = workload::paper_result_key;
  QueryService service(executor, cosmos, ok);
  LoadConfig load_config;
  load_config.tenants = 3;
  load_config.requests = 1;
  load_config.key_space = 10;
  LoadGenerator load(load_config);
  EXPECT_THROW(service.run(load), Error);
}

}  // namespace
}  // namespace ndpgen::host
