// Tests of the weighted-round-robin arbiter (pure state machine).
#include "host/arbiter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace ndpgen::host {
namespace {

TEST(WrrArbiterTest, EqualWeightsAlternate) {
  WrrArbiter arbiter({1, 1});
  const std::vector<bool> both = {true, true};
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 1u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 1u);
}

TEST(WrrArbiterTest, WeightsGrantProportionalShares) {
  WrrArbiter arbiter({3, 1});
  const std::vector<bool> both = {true, true};
  std::vector<std::uint32_t> wins(2, 0);
  for (int i = 0; i < 40; ++i) ++wins[*arbiter.pick(both)];
  EXPECT_EQ(wins[0], 30u);
  EXPECT_EQ(wins[1], 10u);
}

TEST(WrrArbiterTest, KeepsGrantUntilWeightSpent) {
  WrrArbiter arbiter({3, 1});
  const std::vector<bool> both = {true, true};
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 1u);
  EXPECT_EQ(arbiter.pick(both), 0u);
}

TEST(WrrArbiterTest, WorkConservingSkipsIdleTenants) {
  WrrArbiter arbiter({3, 1, 2});
  // Only tenant 2 has work: it wins every grant regardless of weights.
  const std::vector<bool> only_last = {false, false, true};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(arbiter.pick(only_last), 2u);
  // Once others wake up the rotation resumes.
  const std::vector<bool> all = {true, true, true};
  EXPECT_TRUE(arbiter.pick(all).has_value());
}

TEST(WrrArbiterTest, NothingPendingYieldsNoGrant) {
  WrrArbiter arbiter({2, 2});
  EXPECT_FALSE(arbiter.pick({false, false}).has_value());
  // And the arbiter still works afterwards.
  EXPECT_TRUE(arbiter.pick({true, false}).has_value());
}

TEST(WrrArbiterTest, DeterministicReplay) {
  WrrArbiter a({2, 1, 1});
  WrrArbiter b({2, 1, 1});
  const std::vector<std::vector<bool>> masks = {
      {true, true, false}, {true, true, true},  {false, true, true},
      {true, false, true}, {false, false, false}, {true, true, true}};
  for (int round = 0; round < 8; ++round) {
    for (const auto& mask : masks) EXPECT_EQ(a.pick(mask), b.pick(mask));
  }
}

TEST(WrrArbiterTest, TenantDrainingMidRoundForfeitsLeftoverCredit) {
  WrrArbiter arbiter({3, 1});
  const std::vector<bool> both = {true, true};
  const std::vector<bool> only_second = {false, true};
  // Tenant 0 spends two of its three credits, then its queue drains.
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  // Work conserving: the grant moves on immediately, every time.
  EXPECT_EQ(arbiter.pick(only_second), 1u);
  EXPECT_EQ(arbiter.pick(only_second), 1u);
  EXPECT_EQ(arbiter.pick(only_second), 1u);
  // When tenant 0 refills it gets a fresh round of exactly weight
  // credits — the credit abandoned at drain time is forfeited, not
  // banked, so a bursty tenant cannot stockpile service.
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 0u);
  EXPECT_EQ(arbiter.pick(both), 1u);
  EXPECT_EQ(arbiter.pick(both), 0u);
}

TEST(WrrArbiterTest, ValidatesWeights) {
  EXPECT_THROW(WrrArbiter({}), Error);
  EXPECT_THROW(WrrArbiter({1, 0, 2}), Error);
  WrrArbiter arbiter({1, 1});
  EXPECT_THROW(arbiter.pick({true}), Error);  // Mask/tenant mismatch.
}

}  // namespace
}  // namespace ndpgen::host
