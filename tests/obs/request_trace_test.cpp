#include "obs/request_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace ndpgen::obs {
namespace {

PhaseBreakdown make_phases(std::uint64_t queueing, std::uint64_t doorbell,
                           std::uint64_t transfer, std::uint64_t flash,
                           std::uint64_t pe, std::uint64_t merge) {
  PhaseBreakdown phases;
  phases[RequestPhase::kQueueing] = queueing;
  phases[RequestPhase::kDoorbell] = doorbell;
  phases[RequestPhase::kTransfer] = transfer;
  phases[RequestPhase::kFlash] = flash;
  phases[RequestPhase::kPe] = pe;
  phases[RequestPhase::kMerge] = merge;
  return phases;
}

TEST(PhaseBreakdownTest, TotalSumsAllPhases) {
  const PhaseBreakdown phases = make_phases(1, 2, 3, 4, 5, 6);
  EXPECT_EQ(phases.total(), 21u);
  EXPECT_EQ(PhaseBreakdown{}.total(), 0u);
}

TEST(PhaseBreakdownTest, DominantBreaksTiesTowardEarliestPhase) {
  EXPECT_EQ(make_phases(0, 0, 0, 9, 2, 1).dominant(), RequestPhase::kFlash);
  // flash and pe tie: the earlier (flash) wins.
  EXPECT_EQ(make_phases(0, 0, 0, 5, 5, 0).dominant(), RequestPhase::kFlash);
  // All zero: queueing, the earliest phase.
  EXPECT_EQ(PhaseBreakdown{}.dominant(), RequestPhase::kQueueing);
}

TEST(PhaseBreakdownTest, AccumulateIsElementwise) {
  PhaseBreakdown sum = make_phases(1, 0, 0, 10, 0, 0);
  sum += make_phases(2, 3, 0, 5, 0, 1);
  EXPECT_EQ(sum[RequestPhase::kQueueing], 3u);
  EXPECT_EQ(sum[RequestPhase::kDoorbell], 3u);
  EXPECT_EQ(sum[RequestPhase::kFlash], 15u);
  EXPECT_EQ(sum[RequestPhase::kMerge], 1u);
}

TEST(PhaseBreakdownTest, JsonListsPhasesInCausalOrder) {
  EXPECT_EQ(make_phases(1, 2, 3, 4, 5, 6).json(),
            "{\"queueing\":1,\"doorbell\":2,\"transfer\":3,\"flash\":4,"
            "\"pe\":5,\"merge\":6}");
}

TEST(PhaseNameTest, NamesAreStableLowercase) {
  EXPECT_EQ(phase_name(RequestPhase::kQueueing), "queueing");
  EXPECT_EQ(phase_name(RequestPhase::kDoorbell), "doorbell");
  EXPECT_EQ(phase_name(RequestPhase::kTransfer), "transfer");
  EXPECT_EQ(phase_name(RequestPhase::kFlash), "flash");
  EXPECT_EQ(phase_name(RequestPhase::kPe), "pe");
  EXPECT_EQ(phase_name(RequestPhase::kMerge), "merge");
}

TEST(RequestContextTest, MintOffsetsByOneSoIdZeroIsActive) {
  EXPECT_FALSE(RequestContext{}.active());
  const RequestContext ctx = RequestContext::mint(0);
  EXPECT_TRUE(ctx.active());
  EXPECT_EQ(ctx.trace_id, 1u);
  EXPECT_EQ(RequestContext::mint(41).trace_id, 42u);
}

TEST(RequestProfilerTest, RecordRejectsPhaseSumMismatch) {
  RequestProfiler profiler;
  RequestProfile profile;
  profile.arrival_ns = 100;
  profile.completed_ns = 200;
  profile.phases = make_phases(50, 0, 0, 49, 0, 0);  // Sums to 99, not 100.
  EXPECT_THROW(profiler.record(profile), Error);
  profile.phases[RequestPhase::kMerge] = 1;
  profiler.record(profile);
  EXPECT_EQ(profiler.size(), 1u);
}

TEST(RequestProfilerTest, RecordRejectsCompletionBeforeArrival) {
  RequestProfiler profiler;
  RequestProfile profile;
  profile.arrival_ns = 10;
  profile.completed_ns = 5;
  EXPECT_THROW(profiler.record(profile), Error);
}

TEST(RequestProfilerTest, TotalsSumOverAllRequests) {
  RequestProfiler profiler;
  profiler.record(
      RequestProfile{0, 0, 0, 10, make_phases(4, 0, 0, 6, 0, 0)});
  profiler.record(
      RequestProfile{1, 1, 5, 25, make_phases(2, 3, 0, 10, 5, 0)});
  const PhaseBreakdown totals = profiler.totals();
  EXPECT_EQ(totals[RequestPhase::kQueueing], 6u);
  EXPECT_EQ(totals[RequestPhase::kFlash], 16u);
  EXPECT_EQ(totals.total(), 30u);
}

TEST(RequestProfilerTest, TenantsUseNearestRankP99WithIdTiebreak) {
  RequestProfiler profiler;
  // Tenant 0: latencies 10, 20, 30 -> rank ceil(0.99*3)=3 -> 30 ns.
  profiler.record(RequestProfile{0, 0, 0, 10, make_phases(10, 0, 0, 0, 0, 0)});
  profiler.record(RequestProfile{2, 0, 0, 20, make_phases(0, 0, 0, 20, 0, 0)});
  profiler.record(RequestProfile{4, 0, 0, 30, make_phases(0, 0, 0, 5, 25, 0)});
  // Tenant 1: two requests with equal latency; rank request is the one
  // with the larger id only if ids order it last — ties break ascending.
  profiler.record(RequestProfile{5, 1, 0, 15, make_phases(0, 0, 0, 15, 0, 0)});
  profiler.record(RequestProfile{1, 1, 0, 15, make_phases(15, 0, 0, 0, 0, 0)});

  const std::vector<TenantAttribution> tenants = profiler.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].tenant, 0u);
  EXPECT_EQ(tenants[0].requests, 3u);
  EXPECT_EQ(tenants[0].p99_latency_ns, 30u);
  EXPECT_EQ(tenants[0].p99_dominant, RequestPhase::kPe);
  EXPECT_EQ(tenants[0].phases.total(), 60u);
  EXPECT_EQ(tenants[1].tenant, 1u);
  EXPECT_EQ(tenants[1].requests, 2u);
  EXPECT_EQ(tenants[1].p99_latency_ns, 15u);
  // Equal latencies sort by ascending id (1 then 5); nearest-rank picks
  // the last -> request 5, dominated by flash.
  EXPECT_EQ(tenants[1].p99_dominant, RequestPhase::kFlash);
}

TEST(RequestProfilerTest, PublishEmitsGlobalAndPerTenantCounters) {
  RequestProfiler profiler;
  profiler.record(RequestProfile{0, 0, 0, 10, make_phases(4, 0, 0, 6, 0, 0)});
  profiler.record(RequestProfile{1, 3, 0, 8, make_phases(0, 0, 0, 8, 0, 0)});
  MetricsRegistry metrics;
  profiler.publish(metrics);
  EXPECT_EQ(metrics.counter_value("host.phase.queueing_ns"), 4u);
  EXPECT_EQ(metrics.counter_value("host.phase.flash_ns"), 14u);
  EXPECT_EQ(metrics.counter_value("host.tenant0.phase.flash_ns"), 6u);
  EXPECT_EQ(metrics.counter_value("host.tenant3.phase.flash_ns"), 8u);
}

TEST(RequestProfilerTest, ReportAndJsonAreOrderInvariant) {
  // The rendered artifacts must not depend on completion interleaving:
  // recording the same profiles in a different order yields identical
  // bytes. This is the contract that makes --threads byte-stable.
  const std::vector<RequestProfile> profiles{
      RequestProfile{3, 1, 0, 40, make_phases(10, 0, 0, 30, 0, 0)},
      RequestProfile{1, 0, 0, 25, make_phases(5, 0, 0, 20, 0, 0)},
      RequestProfile{2, 0, 5, 30, make_phases(0, 0, 0, 25, 0, 0)},
  };
  auto render = [&](const std::vector<std::size_t>& order) {
    RequestProfiler profiler;
    for (const std::size_t i : order) profiler.record(profiles[i]);
    std::ostringstream report;
    profiler.write_report(report, 2);
    std::ostringstream json;
    profiler.write_json(json);
    return report.str() + "\n---\n" + json.str();
  };
  EXPECT_EQ(render({0, 1, 2}), render({2, 0, 1}));
}

TEST(RequestProfilerTest, JsonSortsRequestsByIdAndSumsTotals) {
  RequestProfiler profiler;
  profiler.record(RequestProfile{7, 0, 0, 10, make_phases(0, 0, 0, 10, 0, 0)});
  profiler.record(RequestProfile{2, 0, 0, 4, make_phases(4, 0, 0, 0, 0, 0)});
  std::ostringstream out;
  profiler.write_json(out);
  const std::string json = out.str();
  const std::size_t first = json.find("\"id\":2");
  const std::size_t second = json.find("\"id\":7");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(json.find("\"dominant\":\"flash\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\":{\"queueing\":4,\"doorbell\":0,"
                      "\"transfer\":0,\"flash\":10,\"pe\":0,\"merge\":0}"),
            std::string::npos);
}

}  // namespace
}  // namespace ndpgen::obs
