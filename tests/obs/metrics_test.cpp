#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace ndpgen::obs {
namespace {

TEST(MetricsRegistryTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  const CounterHandle handle = registry.counter("foo.count");
  EXPECT_EQ(registry.counter_value("foo.count"), 0u);
  registry.add(handle);
  registry.add(handle, 41);
  EXPECT_EQ(registry.counter_value("foo.count"), 42u);
}

TEST(MetricsRegistryTest, RegistrationIsGetOrCreate) {
  MetricsRegistry registry;
  const CounterHandle a = registry.counter("same");
  const CounterHandle b = registry.counter("same");
  EXPECT_EQ(a.index, b.index);
  registry.add(a, 1);
  registry.add(b, 2);
  EXPECT_EQ(registry.counter_value("same"), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchOnReRegistrationThrows) {
  MetricsRegistry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), Error);
  EXPECT_THROW(registry.histogram("metric"), Error);
}

TEST(MetricsRegistryTest, EmptyNameThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), Error);
}

TEST(MetricsRegistryTest, UnknownMetricReadThrows) {
  const MetricsRegistry registry;
  EXPECT_THROW(registry.counter_value("nope"), Error);
  EXPECT_THROW(registry.gauge_value("nope"), Error);
  EXPECT_THROW(registry.histogram_count("nope"), Error);
}

TEST(MetricsRegistryTest, GaugeSetTracksHighWater) {
  MetricsRegistry registry;
  const GaugeHandle handle = registry.gauge("depth");
  registry.set(handle, 7);
  registry.set(handle, 3);
  EXPECT_EQ(registry.gauge_value("depth"), 3u);
  EXPECT_EQ(registry.gauge_max("depth"), 7u);
}

TEST(MetricsRegistryTest, GaugeRaiseNeverLowers) {
  MetricsRegistry registry;
  const GaugeHandle handle = registry.gauge("hwm");
  registry.raise(handle, 5);
  registry.raise(handle, 2);
  EXPECT_EQ(registry.gauge_value("hwm"), 5u);
  registry.raise(handle, 9);
  EXPECT_EQ(registry.gauge_value("hwm"), 9u);
  EXPECT_EQ(registry.gauge_max("hwm"), 9u);
}

TEST(MetricsRegistryTest, HistogramTracksCountSumMinMax) {
  MetricsRegistry registry;
  const HistogramHandle handle = registry.histogram("lat");
  registry.observe(handle, 10);
  registry.observe(handle, 4);
  registry.observe(handle, 100);
  EXPECT_EQ(registry.histogram_count("lat"), 3u);
  EXPECT_EQ(registry.histogram_sum("lat"), 114u);
  const std::string dump = registry.dump_json();
  EXPECT_NE(dump.find("\"min\": 4"), std::string::npos);
  EXPECT_NE(dump.find("\"max\": 100"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  MetricsRegistry registry;
  const HistogramHandle handle = registry.histogram("h");
  // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1000 -> bucket 10.
  registry.observe(handle, 0);
  registry.observe(handle, 1);
  registry.observe(handle, 2);
  registry.observe(handle, 3);
  registry.observe(handle, 1000);
  const std::string dump = registry.dump_json();
  EXPECT_NE(dump.find("[0, 1]"), std::string::npos);
  EXPECT_NE(dump.find("[1, 1]"), std::string::npos);
  EXPECT_NE(dump.find("[2, 2]"), std::string::npos);
  EXPECT_NE(dump.find("[10, 1]"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpJsonSortsByName) {
  MetricsRegistry registry;
  registry.add(registry.counter("zzz"), 1);
  registry.add(registry.counter("aaa"), 2);
  registry.add(registry.counter("mmm"), 3);
  const std::string dump = registry.dump_json();
  const auto a = dump.find("\"aaa\"");
  const auto m = dump.find("\"mmm\"");
  const auto z = dump.find("\"zzz\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(MetricsRegistryTest, DumpJsonIsDeterministic) {
  auto populate = [](MetricsRegistry& registry) {
    registry.add(registry.counter("c"), 5);
    registry.set(registry.gauge("g"), 17);
    registry.observe(registry.histogram("h"), 123);
  };
  MetricsRegistry one;
  MetricsRegistry two;
  populate(one);
  populate(two);
  EXPECT_EQ(one.dump_json(), two.dump_json());
}

TEST(MetricsRegistryTest, EmptyRegistryDumpsEmptySections) {
  const MetricsRegistry registry;
  const std::string dump = registry.dump_json();
  EXPECT_NE(dump.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\": {}"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetValuesKeepsHandlesValid) {
  MetricsRegistry registry;
  const CounterHandle counter = registry.counter("c");
  const GaugeHandle gauge = registry.gauge("g");
  const HistogramHandle histogram = registry.histogram("h");
  registry.add(counter, 10);
  registry.raise(gauge, 20);
  registry.observe(histogram, 30);
  registry.reset_values();
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_EQ(registry.gauge_value("g"), 0u);
  EXPECT_EQ(registry.gauge_max("g"), 0u);
  EXPECT_EQ(registry.histogram_count("h"), 0u);
  EXPECT_EQ(registry.histogram_sum("h"), 0u);
  registry.add(counter, 1);
  EXPECT_EQ(registry.counter_value("c"), 1u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, ContainsSeesAllKinds) {
  MetricsRegistry registry;
  registry.counter("c");
  registry.gauge("g");
  registry.histogram("h");
  EXPECT_TRUE(registry.contains("c"));
  EXPECT_TRUE(registry.contains("g"));
  EXPECT_TRUE(registry.contains("h"));
  EXPECT_FALSE(registry.contains("x"));
}

TEST(MetricsRegistryTest, MergeFromAddsCountersAndFoldsGauges) {
  MetricsRegistry target;
  MetricsRegistry shard;
  target.add(target.counter("shared.count"), 10);
  shard.add(shard.counter("shared.count"), 5);
  shard.add(shard.counter("shard.only"), 3);
  shard.set(shard.gauge("depth"), 7);  // value 7, max 7.
  target.set(target.gauge("depth"), 2);

  target.merge_from(shard);
  EXPECT_EQ(target.counter_value("shared.count"), 15u);
  EXPECT_EQ(target.counter_value("shard.only"), 3u);
  // Gauges merge as high-water marks, never lowering.
  EXPECT_EQ(target.gauge_value("depth"), 7u);
  EXPECT_EQ(target.gauge_max("depth"), 7u);
}

TEST(MetricsRegistryTest, MergeFromCombinesHistograms) {
  MetricsRegistry target;
  MetricsRegistry shard;
  target.observe(target.histogram("lat"), 100);
  shard.observe(shard.histogram("lat"), 10);
  shard.observe(shard.histogram("lat"), 1000);

  target.merge_from(shard);
  EXPECT_EQ(target.histogram_count("lat"), 3u);
  EXPECT_EQ(target.histogram_sum("lat"), 1110u);
  EXPECT_EQ(target.histogram_min("lat"), 10u);
  EXPECT_EQ(target.histogram_max("lat"), 1000u);
}

TEST(MetricsRegistryTest, MergeFromSkipsEmptyAndKeepsDumpFormat) {
  MetricsRegistry target;
  target.add(target.counter("a"), 1);
  const std::string before = target.dump_json();
  MetricsRegistry empty_shard;
  empty_shard.counter("zero");       // Registered but never incremented.
  empty_shard.histogram("no.samples");
  target.merge_from(empty_shard);
  // Zero-valued shard counters and empty histograms leave no trace, so a
  // merge of idle shards keeps the dump byte-identical.
  EXPECT_EQ(target.dump_json(), before);
}

TEST(MetricsRegistryTest, MergeOrderIsDeterministicForIdenticalShards) {
  // The registry is neither copyable nor movable (atomics + mutex), so the
  // shard-merge idiom works on registries in place.
  auto populate = [](MetricsRegistry& shard, std::uint64_t base) {
    shard.add(shard.counter("n"), base);
    shard.observe(shard.histogram("h"), base);
  };
  auto merged_dump = [&populate] {
    MetricsRegistry merged;
    for (const std::uint64_t base : {1u, 2u}) {
      MetricsRegistry shard;
      populate(shard, base);
      merged.merge_from(shard);
    }
    return merged.dump_json();
  };
  EXPECT_EQ(merged_dump(), merged_dump());
}

TEST(MetricsRegistryTest, PercentileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  registry.histogram("empty");
  EXPECT_EQ(registry.histogram_percentile("empty", 0.0), 0u);
  EXPECT_EQ(registry.histogram_percentile("empty", 0.5), 0u);
  EXPECT_EQ(registry.histogram_percentile("empty", 1.0), 0u);
}

TEST(MetricsRegistryTest, PercentileOfSingleSampleIsExactForAllP) {
  MetricsRegistry registry;
  const auto histogram = registry.histogram("one");
  registry.observe(histogram, 12345);
  // Min/max clamping makes a one-sample histogram exact regardless of
  // the log2 bucket bound.
  for (const double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(registry.histogram_percentile("one", p), 12345u) << p;
  }
}

TEST(MetricsRegistryTest, PercentileAtOneIsExactMax) {
  MetricsRegistry registry;
  const auto histogram = registry.histogram("h");
  for (std::uint64_t value = 1; value <= 100; ++value) {
    registry.observe(histogram, value);
  }
  EXPECT_EQ(registry.histogram_percentile("h", 1.0), 100u);
}

TEST(MetricsRegistryTest, PercentileReportsBucketUpperBound) {
  MetricsRegistry registry;
  const auto histogram = registry.histogram("h");
  for (std::uint64_t value = 1; value <= 100; ++value) {
    registry.observe(histogram, value);
  }
  // Rank 50 lands in the [32, 64) bucket, whose recorded bound is 63.
  EXPECT_EQ(registry.histogram_percentile("h", 0.5), 63u);
  // Rank 1 is the exact min (bucket bound 1, clamped to min 1).
  EXPECT_EQ(registry.histogram_percentile("h", 0.0), 1u);
}

TEST(MetricsRegistryTest, PercentileAtZeroIsExactMinNotBucketBound) {
  MetricsRegistry registry;
  const auto histogram = registry.histogram("h");
  registry.observe(histogram, 40);
  registry.observe(histogram, 100);
  // The rank-1 bucket of 40 is [32, 64) with bound 63, which clamping
  // alone cannot pull down to the true minimum (min 40 < 63 < max 100):
  // p=0 must short-circuit to the exact observed min.
  EXPECT_EQ(registry.histogram_percentile("h", 0.0), 40u);
  EXPECT_EQ(registry.histogram_percentile("h", 1.0), 100u);
}

TEST(MetricsRegistryTest, PercentileIsMonotoneInP) {
  MetricsRegistry registry;
  const auto histogram = registry.histogram("h");
  for (std::uint64_t value = 0; value < 1000; ++value) {
    registry.observe(histogram, value * value);
  }
  std::uint64_t previous = 0;
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t current = registry.histogram_percentile("h", p);
    EXPECT_GE(current, previous) << p;
    previous = current;
  }
}

TEST(MetricsRegistryTest, PercentileValidatesP) {
  MetricsRegistry registry;
  registry.histogram("h");
  EXPECT_THROW(registry.histogram_percentile("h", -0.1), Error);
  EXPECT_THROW(registry.histogram_percentile("h", 1.1), Error);
  EXPECT_THROW(registry.histogram_percentile("missing", 0.5), Error);
}

TEST(MetricsRegistryTest, ConcurrentAddsNeverLoseIncrements) {
  MetricsRegistry registry;
  const CounterHandle counter = registry.counter("hot");
  const HistogramHandle histogram = registry.histogram("obs");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.add(counter, 1);
        registry.observe(histogram, 16);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("hot"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram_count("obs"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram_min("obs"), 16u);
  EXPECT_EQ(registry.histogram_max("obs"), 16u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  // Shard benches register identical metric names from worker threads;
  // get-or-create must neither crash nor duplicate.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.add(registry.counter("same.name"), 1);
        registry.raise(registry.gauge("same.gauge"), 5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("same.name"),
            static_cast<std::uint64_t>(kThreads) * 200);
  EXPECT_EQ(registry.gauge_value("same.gauge"), 5u);
  EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
}  // namespace ndpgen::obs
