#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace ndpgen::obs {
namespace {

TEST(TraceSinkTest, TrackIsDedupedByNameAndPid) {
  TraceSink sink;
  const TrackId a = sink.track("flash.c0.ch0");
  const TrackId b = sink.track("flash.c0.ch0");
  EXPECT_EQ(a, b);
  // Same name in the other time domain is a distinct track.
  const TrackId c = sink.track("flash.c0.ch0", kPidHwsim);
  EXPECT_NE(a, c);
  EXPECT_EQ(sink.track_count(), 2u);
}

TEST(TraceSinkTest, TrackIdsStartAtOne) {
  TraceSink sink;
  EXPECT_EQ(sink.track("first"), 1u);
  EXPECT_EQ(sink.track("second"), 2u);
}

TEST(TraceSinkTest, CompleteSpanRendersMicroseconds) {
  TraceSink sink;
  const TrackId track = sink.track("nvme");
  sink.complete(track, "command", "platform", 1500, 2500);
  const std::string json = sink.to_json();
  // 1500 ns -> 1.500 us, 2500 ns -> 2.500 us.
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"command\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"platform\""), std::string::npos);
}

TEST(TraceSinkTest, EventsCarryTheTrackPid) {
  TraceSink sink;
  const TrackId hw = sink.track("pe.Scan", kPidHwsim);
  sink.complete(hw, "chunk", "hwsim", 0, 100);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"pid\":2,\"tid\":1"), std::string::npos);
}

TEST(TraceSinkTest, InstantEventIsThreadScoped) {
  TraceSink sink;
  sink.instant(sink.track("kv.sst"), "read_block", "kv", 42,
               "{\"block\":7}");
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\",\"ts\":0.042"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"block\":7}"), std::string::npos);
}

TEST(TraceSinkTest, CounterEventCarriesValue) {
  TraceSink sink;
  sink.counter("queue_depth", 1000, 17);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\",\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":17}"), std::string::npos);
}

TEST(TraceSinkTest, MetadataNamesProcessesAndTracks) {
  TraceSink sink;
  sink.track("alpha");
  sink.track("beta", kPidHwsim);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"platform (DES virtual ns)\""), std::string::npos);
  EXPECT_NE(json.find("\"hwsim (PE cycles @ 10 ns)\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":1,\"args\":{\"name\":\"alpha\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,"
                      "\"tid\":2,\"args\":{\"name\":\"beta\"}}"),
            std::string::npos);
}

TEST(TraceSinkTest, ToJsonIsDeterministic) {
  auto build = [] {
    TraceSink sink;
    const TrackId t = sink.track("worker0");
    sink.complete(t, "block", "ndp", 10, 90, "{\"matched\":3}");
    sink.instant(t, "mark", "ndp", 55);
    sink.counter("depth", 60, 4);
    return sink.to_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(TraceSinkTest, ClearEmptiesEventsAndTracks) {
  TraceSink sink;
  sink.complete(sink.track("t"), "span", "c", 0, 1);
  EXPECT_EQ(sink.event_count(), 1u);
  sink.clear();
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.track_count(), 0u);
}

TEST(TraceSinkTest, EscapesEventNames) {
  TraceSink sink;
  sink.instant(sink.track("t"), "with \"quotes\"", "c", 0);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"name\":\"with \\\"quotes\\\"\""), std::string::npos);
}

TEST(TraceSinkTest, AppendFromPrefixesTrackNames) {
  TraceSink shard;
  const TrackId track = shard.track("pe.Scan", kPidHwsim);
  shard.complete(track, "chunk", "hwsim", 0, 100);

  TraceSink merged;
  merged.track("ndp.shard0");  // Pre-existing track keeps its id.
  merged.append_from(shard, "shard0.");
  const std::string json = merged.to_json();
  EXPECT_NE(json.find("\"name\":\"shard0.pe.Scan\""), std::string::npos);
  // The span survived with its timing and category intact.
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":0.000,\"dur\":0.100"),
            std::string::npos);
  EXPECT_EQ(merged.track_count(), 2u);
}

TEST(TraceSinkTest, AppendFromRemapsTidsAndKeepsPid) {
  // The shard's track id 1 collides with an existing track here; events
  // must follow the remapped id, and hwsim spans stay in the hwsim pid.
  TraceSink shard;
  shard.complete(shard.track("inner", kPidHwsim), "work", "hwsim", 10, 20);

  TraceSink merged;
  merged.track("outer");  // Claims tid 1 in the merged sink.
  merged.append_from(shard, "s3.");
  const std::string json = merged.to_json();
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"work\",\"cat\":\"hwsim\",\"ph\":\"X\","
                      "\"ts\":0.010,\"dur\":0.020,\"pid\":2,\"tid\":1"),
            std::string::npos);
}

TEST(TraceSinkTest, FlowEventsRenderChromeFlowPhases) {
  TraceSink sink;
  const TrackId track = sink.track("host.tenant0");
  sink.flow_begin(track, "request", "request", 1000, 42);
  sink.flow_step(track, "request", "request", 2000, 42);
  sink.flow_end(track, "request", "request", 3000, 42);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":42,\"ts\":1.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\",\"id\":42,\"ts\":2.000"),
            std::string::npos);
  // Flow ends bind to the enclosing slice ("bp":"e" — Chrome drops the
  // arrow without it).
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":42,\"ts\":3.000"),
            std::string::npos);
}

TEST(TraceSinkTest, AppendFromRemapsFlowTracksAndKeepsIds) {
  // A PE shard traces its own flow steps; merging into the parent sink
  // must remap the shard-local track ids but leave the request-derived
  // flow id untouched — that id is the causal link across shards.
  TraceSink shard;
  const TrackId inner = shard.track("pe", kPidHwsim);
  shard.flow_step(inner, "request", "request", 5000, 7);

  TraceSink merged;
  merged.track("outer");  // Claims tid 1 in the merged sink.
  merged.append_from(shard, "s0.");
  const std::string json = merged.to_json();
  // The shard's tid-1 track was remapped past merged's "outer" (tid 1).
  EXPECT_NE(json.find("\"ph\":\"t\",\"id\":7,\"ts\":5.000,\"pid\":2,\"tid\":2"),
            std::string::npos);
  EXPECT_EQ(json.find("\"id\":7,\"ts\":5.000,\"pid\":2,\"tid\":1"),
            std::string::npos);
}

TEST(TraceSinkTest, AppendFromPrefixesCounterNames) {
  TraceSink shard;
  shard.counter("queue_depth", 500, 3);

  TraceSink merged;
  merged.append_from(shard, "shard1.");
  const std::string json = merged.to_json();
  EXPECT_NE(json.find("\"name\":\"shard1.queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos);
}

TEST(TraceSinkTest, AppendFromIsDeterministic) {
  auto build = [] {
    TraceSink shard_a;
    shard_a.complete(shard_a.track("pe", kPidHwsim), "a", "hwsim", 0, 10);
    TraceSink shard_b;
    shard_b.complete(shard_b.track("pe", kPidHwsim), "b", "hwsim", 0, 20);
    TraceSink merged;
    merged.append_from(shard_a, "shard0.");
    merged.append_from(shard_b, "shard1.");
    return merged.to_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonHelpersTest, MicrosPadsFraction) {
  EXPECT_EQ(json_micros(0), "0.000");
  EXPECT_EQ(json_micros(7), "0.007");
  EXPECT_EQ(json_micros(42), "0.042");
  EXPECT_EQ(json_micros(999), "0.999");
  EXPECT_EQ(json_micros(1000), "1.000");
  EXPECT_EQ(json_micros(123456789), "123456.789");
}

TEST(JsonHelpersTest, FixedRendersSixDigits) {
  EXPECT_EQ(json_fixed(0.0), "0.000000");
  EXPECT_EQ(json_fixed(1.5), "1.500000");
  EXPECT_EQ(json_fixed(-2.25), "-2.250000");
  EXPECT_EQ(json_fixed(0.0000005), "0.000001");
}

TEST(JsonHelpersTest, EscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace ndpgen::obs
