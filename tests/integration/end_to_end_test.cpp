// Whole-system integration tests: spec -> generated PE -> simulated
// Cosmos+ -> nKV -> hybrid NDP operations, verifying hardware/software
// agreement and the paper's qualitative performance claims.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "ndp/executor.hpp"
#include "support/bytes.hpp"
#include "workload/pubgraph.hpp"
#include "workload/synth.hpp"

namespace ndpgen {
namespace {

TEST(EndToEnd, RefScanRangePredicateAcrossModes) {
  // Edges workload with the 2-stage RefScan parser: RANGE_SCAN on dst.
  platform::CosmosPlatform cosmos;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 32768});
  kv::DBConfig config;
  config.record_bytes = workload::RefRecord::kBytes;
  config.extractor = workload::ref_key;
  kv::NKV db(cosmos, config);
  const auto loaded = workload::load_refs(db, generator);
  ASSERT_GT(loaded, 100u);

  const std::size_t pe = framework.instantiate(compiled, "RefScan", cosmos);
  const auto& artifacts = compiled.get("RefScan");

  const std::uint64_t lo = generator.paper_count() / 4;
  const std::uint64_t hi = generator.paper_count() / 2;
  const std::vector<ndp::FilterPredicate> range = {
      {"dst", "ge", lo}, {"dst", "lt", hi}};

  ndp::ExecutorConfig hw_config;
  hw_config.mode = ndp::ExecMode::kHardware;
  hw_config.pe_indices = {pe};
  hw_config.result_key_extractor = workload::ref_key;
  ndp::HybridExecutor hw(db, artifacts.analyzed, artifacts.design.operators,
                         hw_config);

  ndp::ExecutorConfig sw_config;
  sw_config.result_key_extractor = workload::ref_key;
  ndp::HybridExecutor sw(db, artifacts.analyzed, artifacts.design.operators,
                         sw_config);

  std::vector<std::vector<std::uint8_t>> hw_results, sw_results;
  const auto hw_stats = hw.scan(range, &hw_results);
  const auto sw_stats = sw.scan(range, &sw_results);
  EXPECT_EQ(hw_stats.results, sw_stats.results);
  EXPECT_EQ(hw_results, sw_results);
  for (const auto& record : hw_results) {
    const auto dst = support::get_u64(record, 8);
    EXPECT_GE(dst, lo);
    EXPECT_LT(dst, hi);
  }
}

TEST(EndToEnd, GeneratedMatchesHandcraftedResults) {
  // The headline claim: generated PEs produce the same results with
  // near-identical runtime as the hand-crafted baseline.
  platform::CosmosPlatform cosmos;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  kv::NKV db(cosmos, config);
  // Load an exact multiple of the block capacity: at full scale partially
  // filled blocks are a <2% effect, but at this test's tiny scale the
  // baseline's software fallback for them would dominate the comparison.
  const std::uint64_t per_block =
      kv::records_per_block(workload::PaperRecord::kBytes);
  const std::uint64_t count =
      generator.paper_count() / per_block * per_block;
  std::uint64_t index = 0;
  db.bulk_load_sorted(
      2,
      [&](std::vector<std::uint8_t>& record) {
        if (index >= count) return false;
        record = generator.paper(index++).serialize();
        return true;
      },
      64 * per_block);

  // Generated PE.
  const std::size_t generated =
      framework.instantiate(compiled, "PaperScan", cosmos);
  // Hand-crafted baseline PE ([1]): static units, single stage.
  hwgen::TemplateOptions baseline_options;
  baseline_options.flavor = hwgen::DesignFlavor::kHandcraftedBaseline;
  baseline_options.static_payload_bytes =
      kv::records_per_block(workload::PaperRecord::kBytes) *
      workload::PaperRecord::kBytes;
  const auto baseline_design =
      hwgen::build_pe_design(artifacts.analyzed, baseline_options);
  cosmos.attach_pe(baseline_design);
  const std::size_t baseline = cosmos.pe_count() - 1;

  const std::vector<ndp::FilterPredicate> predicate = {{"year", "lt", 1990}};
  auto run = [&](std::size_t pe_index) {
    ndp::ExecutorConfig exec_config;
    exec_config.mode = ndp::ExecMode::kHardware;
    exec_config.pe_indices = {pe_index};
    exec_config.result_key_extractor = workload::paper_result_key;
    ndp::HybridExecutor executor(db, artifacts.analyzed,
                                 artifacts.design.operators, exec_config);
    return executor.scan(predicate);
  };
  const auto generated_stats = run(generated);
  const auto baseline_stats = run(baseline);
  EXPECT_EQ(generated_stats.results, baseline_stats.results);
  // Runtimes are "almost identical" (within a few percent).
  const double ratio = static_cast<double>(generated_stats.elapsed) /
                       static_cast<double>(baseline_stats.elapsed);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(EndToEnd, SynthSpecThroughSimulator) {
  // Fig. 8 formats are not just estimated but executable.
  core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(128, true));
  const auto& artifacts = compiled.get("Synth");
  hwsim::PETestBench bench(artifacts.design);
  const auto data = workload::synth_tuples(128, 200, 11);
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, 0, 6 /* nop */, 0);
  const auto stats = bench.run_chunk(
      0, 64 * 1024, static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(stats.tuples_in, 200u);
  EXPECT_EQ(stats.tuples_out, 200u);
  // Identity transform: output bytes equal input bytes.
  const auto out = bench.memory().read_bytes(64 * 1024, data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), out.begin()));
}

TEST(EndToEnd, GeneratedHeaderTextMatchesLiveRegisterMap) {
  // The generated software interface's macros must agree with the MMIO
  // decode of the simulated PE (same RegisterMap on both sides).
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("RefScan");
  for (const auto& def : artifacts.design.regmap.registers()) {
    const std::string macro = "#define REF_SCAN_" + def.name + " " +
                              std::to_string(def.offset);
    EXPECT_NE(artifacts.software_interface.find(macro), std::string::npos)
        << macro;
  }
}

TEST(EndToEnd, ScanAfterUpdatesAndCompaction) {
  platform::CosmosPlatform cosmos;
  core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 8192});
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  config.compaction.l1_trigger = 2;
  kv::NKV db(cosmos, config);
  const auto loaded = workload::load_papers(db, generator, /*level=*/2);

  // Three update rounds -> flushes -> compaction.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 30; ++i) {
      workload::PaperRecord paper = generator.paper(i);
      paper.year = 1900 + static_cast<std::uint32_t>(round);
      db.put(paper.serialize());
    }
    db.flush();
  }
  db.compact();

  ndp::ExecutorConfig sw_config;
  sw_config.result_key_extractor = workload::paper_result_key;
  ndp::HybridExecutor sw(db, artifacts.analyzed, artifacts.design.operators,
                         sw_config);
  std::vector<std::vector<std::uint8_t>> results;
  (void)sw.scan({{"year", "eq", 1902}}, &results);
  // Only the latest round survives for the 30 updated papers.
  EXPECT_EQ(results.size(), 30u);
  (void)loaded;
}

}  // namespace
}  // namespace ndpgen
