#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::core {
namespace {

constexpr const char* kFig4 = R"spec(
/* @autogen define parser Point3DTo2D with
   chunksize = 32, input = Point3D, output = Point2D,
   mapping = { output.x = input.y, output.y = input.z } */
typedef struct { uint32_t x, y, z; } Point3D;
typedef struct { uint32_t x, y; } Point2D;
)spec";

TEST(Framework, CompileProducesAllArtifacts) {
  Framework framework;
  const CompileResult result = framework.compile(kFig4);
  ASSERT_EQ(result.parsers.size(), 1u);
  const ParserArtifacts& artifacts = result.parsers[0];
  EXPECT_EQ(artifacts.analyzed.name, "Point3DTo2D");
  EXPECT_EQ(artifacts.analyzed.input.storage_bits, 96u);
  EXPECT_EQ(artifacts.analyzed.output.storage_bits, 64u);
  EXPECT_FALSE(artifacts.verilog.empty());
  EXPECT_FALSE(artifacts.software_interface.empty());
  EXPECT_GT(artifacts.resources_in_context.total.slices, 0.0);
  EXPECT_GT(artifacts.resources_out_of_context.total.slices,
            artifacts.resources_in_context.total.slices);
  EXPECT_EQ(artifacts.design.name, "Point3DTo2D");
}

TEST(Framework, FindAndGet) {
  Framework framework;
  const CompileResult result = framework.compile(kFig4);
  EXPECT_NE(result.find("Point3DTo2D"), nullptr);
  EXPECT_EQ(result.find("Missing"), nullptr);
  EXPECT_NO_THROW(result.get("Point3DTo2D"));
  EXPECT_THROW(result.get("Missing"), ndpgen::Error);
}

TEST(Framework, CompileErrorsPropagate) {
  Framework framework;
  EXPECT_THROW(framework.compile("typedef struct {"), ndpgen::Error);
  EXPECT_THROW(framework.compile(
                   "/* @autogen define parser P with input = A, output = A */"),
               ndpgen::Error);
}

TEST(Framework, WarningsCollected) {
  Framework framework;
  const CompileResult result = framework.compile(
      "typedef struct { uint32_t a; } Used;"
      "typedef struct { uint32_t b; } Unused;"
      "/* @autogen define parser P with input = Used, output = Used */");
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].message.find("Unused"), std::string::npos);
}

TEST(Framework, CompilesPubgraphSpec) {
  Framework framework;
  const CompileResult result =
      framework.compile(workload::pubgraph_spec_source());
  EXPECT_EQ(result.parsers.size(), 2u);
  EXPECT_EQ(result.get("RefScan").design.filter_stage_count(), 2u);
}

TEST(Framework, InstantiateAttachesPe) {
  Framework framework;
  const CompileResult result = framework.compile(kFig4);
  platform::CosmosPlatform platform;
  const std::size_t index =
      framework.instantiate(result, "Point3DTo2D", platform);
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(platform.pe_count(), 1u);
  EXPECT_EQ(platform.pe(0).design().name, "Point3DTo2D");
}

TEST(Framework, OptionsFlowThrough) {
  FrameworkOptions options;
  options.hw.fifo_depth = 4;
  options.swif.base_address = 0x5000'0000;
  Framework framework(options);
  const CompileResult result = framework.compile(kFig4);
  EXPECT_EQ(result.parsers[0].design.fifo_depth, 4u);
  EXPECT_NE(result.parsers[0].software_interface.find("0x50000000"),
            std::string::npos);
}

TEST(Framework, MultipleParsersIndependent) {
  Framework framework;
  const CompileResult result = framework.compile(
      "typedef struct { uint32_t a; } A;"
      "typedef struct { uint64_t b; uint64_t c; } B;"
      "/* @autogen define parser PA with input = A, output = A */"
      "/* @autogen define parser PB with input = B, output = B, filters = 2 "
      "*/");
  EXPECT_EQ(result.get("PA").design.filter_stage_count(), 1u);
  EXPECT_EQ(result.get("PB").design.filter_stage_count(), 2u);
  EXPECT_NE(result.get("PA").verilog, result.get("PB").verilog);
}

}  // namespace
}  // namespace ndpgen::core
