// Fig. 9: Out-of-context slice utilization (percent of XC7Z045) of
// generated PEs vs number of chained filtering stages, on 256-bit tuples,
// Full and Half (string-prefixed) variants.
//
// Shape targets: near-linear growth in the stage count; the per-stage
// increment is small relative to the fixed template cost (load/store,
// tuple buffers); prefixing (Half) has only minor impact.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "hwgen/resource_model.hpp"
#include "workload/synth.hpp"

using namespace ndpgen;

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 9 — OOC slice utilization vs filter stages (256-bit "
              "tuples)\n");
  std::printf("==============================================================\n\n");

  const core::Framework framework;
  const double device = hwgen::xc7z045().total_slices;
  std::printf("%8s %12s %12s %12s %12s\n", "stages", "Full [sl]", "Full [%]",
              "Half [sl]", "Half [%]");

  bench::JsonResult json("fig9_stages");
  double full[6] = {}, half[6] = {};
  for (std::uint32_t stages = 1; stages <= 5; ++stages) {
    for (const bool is_half : {false, true}) {
      const auto compiled = framework.compile(
          workload::synth_spec(256, is_half, stages));
      const double slices =
          compiled.get("Synth").resources_out_of_context.total.slices;
      (is_half ? half : full)[stages] = slices;
    }
    std::printf("%8u %12.0f %12.2f %12.0f %12.2f\n", stages, full[stages],
                100.0 * full[stages] / device, half[stages],
                100.0 * half[stages] / device);
    json.add("Full", static_cast<std::uint64_t>(stages), full[stages],
             "slices");
    json.add("Half", static_cast<std::uint64_t>(stages), half[stages],
             "slices");
  }
  json.write();

  // Linearity: successive increments agree within 20%.
  bool linear = true;
  const double step0 = full[2] - full[1];
  for (int s = 3; s <= 5; ++s) {
    linear &= std::abs((full[s] - full[s - 1]) - step0) < 0.2 * step0;
  }
  const bool small_step = step0 < 0.25 * full[1];
  const bool half_minor =
      std::abs(half[1] - full[1]) < 0.25 * full[1] &&
      std::abs(half[5] - full[5]) < 0.25 * full[5];

  std::printf("\nshape checks (paper §V, Fig. 9):\n");
  std::printf("  [%c] per-stage growth is linear (first step %.0f slices)\n",
              linear ? 'x' : ' ', step0);
  std::printf("  [%c] per-stage increase small vs fixed template part "
              "(%.1f%% of 1-stage total)\n",
              small_step ? 'x' : ' ', 100.0 * step0 / full[1]);
  std::printf("  [%c] string-prefixing (Half) has only minor impact\n",
              half_minor ? 'x' : ' ');
  std::printf("\n2-staged PEs implement RANGE_SCANs (lo <= x < hi) — see "
              "bench/ablation_stages_latency for their cycle cost.\n");
  return (linear && small_step && half_minor) ? 0 : 1;
}
