// Micro-benchmarks: cycle-level simulator throughput.
#include <benchmark/benchmark.h>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "workload/synth.hpp"

namespace {

using namespace ndpgen;

void BM_KernelTick(benchmark::State& state) {
  const core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(128, false));
  hwsim::PETestBench bench(compiled.get("Synth").design);
  for (auto _ : state) {
    bench.kernel().tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelTick);

void BM_PeChunk(benchmark::State& state) {
  const core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(
      static_cast<std::uint32_t>(state.range(0)), false));
  hwsim::PETestBench bench(compiled.get("Synth").design);
  // Stay within one 32 KiB chunk for every tuple size.
  const std::uint64_t tuples =
      std::min<std::uint64_t>(512, 32'000 / (state.range(0) / 8));
  const auto data = workload::synth_tuples(
      static_cast<std::uint32_t>(state.range(0)), tuples, 5);
  bench.memory().write_bytes(0, data);
  bench.set_filter(0, 0, 6, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.run_chunk(
        0, 1 << 20, static_cast<std::uint32_t>(data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_PeChunk)->Arg(64)->Arg(256)->Arg(1024);

void BM_PadUnpadTuple(benchmark::State& state) {
  const core::Framework framework;
  const auto compiled = framework.compile(workload::synth_spec(256, true));
  const auto& layout = compiled.get("Synth").analyzed.input;
  support::BitVector storage(layout.storage_bits);
  for (std::size_t i = 0; i < layout.storage_bits; i += 7) {
    storage.set_bit(i, true);
  }
  for (auto _ : state) {
    const auto padded = hwsim::pad_tuple(layout, storage);
    benchmark::DoNotOptimize(hwsim::unpad_tuple(layout, padded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PadUnpadTuple);

void BM_AxiContention(benchmark::State& state) {
  hwsim::SimMemory memory(1 << 20);
  hwsim::AxiInterconnect interconnect(
      memory, hwsim::AxiInterconnect::Config{2, 20, 64});
  hwsim::SimKernel kernel;
  kernel.add_module(&interconnect);
  std::vector<hwsim::AxiPort*> ports;
  for (int i = 0; i < 8; ++i) {
    ports.push_back(interconnect.create_port("p" + std::to_string(i)));
  }
  for (auto _ : state) {
    for (auto* port : ports) port->request_read(0, 8);
    while (!interconnect.idle()) {
      kernel.tick();
      for (auto* port : ports) {
        while (port->read_data_available(kernel.now())) {
          benchmark::DoNotOptimize(port->pop_read_data(kernel.now()));
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AxiContention);

}  // namespace
