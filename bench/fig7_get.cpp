// Fig. 7(a): GET runtimes — software NDP vs hardware NDP, generated PEs
// (this work) vs hand-crafted PEs [1].
//
// GET is latency-bound (index traversal + one data-block fetch + block
// filter); it is simulated directly, no scaling. Shape targets from the
// paper: (a) HW does not beat SW ("the configuration-overhead of
// accelerators is too high to make an overall difference"), (b) generated
// PEs perform like hand-crafted ones, (c) both are ~10% slower than [1]'s
// numbers due to the updated (reliability-hardened) firmware — we report
// the firmware factor's effect explicitly.
#include "bench_common.hpp"

#include "hwgen/template_builder.hpp"
#include "kv/block_format.hpp"

using namespace ndpgen;

namespace {

enum class Variant { kSoftware, kHwBaseline, kHwGenerated };

const char* name_of(Variant variant) {
  switch (variant) {
    case Variant::kSoftware: return "SW (software NDP)";
    case Variant::kHwBaseline: return "HW hand-crafted [1]";
    case Variant::kHwGenerated: return "HW generated (ours)";
  }
  return "?";
}

double run_gets(Variant variant, std::uint64_t scale, double firmware_factor,
                std::uint64_t num_gets,
                const fault::FaultProfile& fault_profile,
                bench::FaultCounters& faults, std::uint32_t num_pes = 1) {
  platform::CosmosConfig cosmos_config;
  cosmos_config.timing.firmware_overhead_factor = firmware_factor;
  cosmos_config.fault = fault_profile;
  platform::CosmosPlatform cosmos(cosmos_config);
  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  kv::NKV db(cosmos, bench::paper_db_config());
  workload::load_papers(db, generator);

  ndp::ExecutorConfig config;
  config.result_key_extractor = workload::paper_result_key;
  config.num_pes = num_pes;
  if (variant == Variant::kSoftware) {
    config.mode = ndp::ExecMode::kSoftware;
  } else {
    config.mode = ndp::ExecMode::kHardware;
    hwgen::TemplateOptions options;
    if (variant == Variant::kHwBaseline) {
      options.flavor = hwgen::DesignFlavor::kHandcraftedBaseline;
      options.static_payload_bytes =
          kv::records_per_block(workload::PaperRecord::kBytes) *
          workload::PaperRecord::kBytes;
    }
    cosmos.attach_pe(hwgen::build_pe_design(artifacts.analyzed, options));
    config.pe_indices = {cosmos.pe_count() - 1};
  }
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, config);

  platform::SimTime total = 0;
  std::uint64_t found = 0;
  for (std::uint64_t i = 0; i < num_gets; ++i) {
    const kv::Key key{1 + (i * 2654435761ull) % generator.paper_count(), 0};
    const auto stats = executor.get(key);
    total += stats.elapsed;
    found += stats.found ? 1 : 0;
    faults.accumulate(stats);
  }
  if (found != num_gets) {
    std::fprintf(stderr, "warning: only %llu/%llu GETs found their key\n",
                 static_cast<unsigned long long>(found),
                 static_cast<unsigned long long>(num_gets));
  }
  return bench::to_millis(total) / static_cast<double>(num_gets);
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(512);
  constexpr std::uint64_t kGets = 64;
  bench::print_header(
      "Fig. 7(a) — GET execution times (ms per operation, virtual time)",
      "Weber et al., IPPS'21, Fig. 7(a)");
  std::printf("dataset: publication graph at 1/%llu scale, %llu point "
              "lookups per variant\n\n",
              static_cast<unsigned long long>(scale),
              static_cast<unsigned long long>(kGets));

  const fault::FaultProfile fault_profile = bench::fault_profile_from_env();
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }

  std::printf("%-22s %16s %22s\n", "variant", "updated fw [ms]",
              "original fw [1] [ms]");
  bench::JsonResult json("fig7_get");
  double updated[3] = {}, original[3] = {};
  const Variant variants[] = {Variant::kSoftware, Variant::kHwBaseline,
                              Variant::kHwGenerated};
  for (int v = 0; v < 3; ++v) {
    bench::FaultCounters faults;
    updated[v] = run_gets(variants[v], scale, 1.10, kGets, fault_profile,
                          faults);
    original[v] = run_gets(variants[v], scale, 1.00, kGets, fault_profile,
                           faults);
    std::printf("%-22s %16.3f %22.3f\n", name_of(variants[v]), updated[v],
                original[v]);
    json.add(name_of(variants[v]), "updated_fw", updated[v], "ms");
    json.add(name_of(variants[v]), "original_fw", original[v], "ms");
    if (fault_profile.any_enabled()) {
      bench::add_fault_rows(json, name_of(variants[v]), faults);
    }
  }

  // Multi-PE sweep: a GET touches one data block, so sharding cannot help
  // — the sweep documents that --pes leaves point-lookup latency flat
  // (the Fig. 10 scaling dimension only pays off for scans).
  constexpr std::uint64_t kSweepGets = 16;
  std::printf("\nmulti-PE sweep (HW generated, updated fw, %llu GETs):\n",
              static_cast<unsigned long long>(kSweepGets));
  for (const std::uint32_t pes : {1u, 2u, 4u}) {
    bench::FaultCounters sweep_faults;
    const double ms = run_gets(Variant::kHwGenerated, scale, 1.10,
                               kSweepGets, fault_profile, sweep_faults, pes);
    std::printf("  %u PE%s: %.3f ms/op\n", pes, pes == 1 ? " " : "s", ms);
    json.add("HW generated, " + std::to_string(pes) + " PEs", "updated_fw",
             ms, "ms");
  }
  json.write();

  std::printf("\nshape checks (paper §V):\n");
  const double hw_sw_ratio = updated[2] / updated[0];
  std::printf("  [%c] GET does not profit from HW (HW/SW = %.2f, ~1; the "
              "configuration overhead eats the PE's gain)\n",
              hw_sw_ratio > 0.85 && hw_sw_ratio < 1.35 ? 'x' : ' ',
              hw_sw_ratio);
  const double gen_ratio = updated[2] / updated[1];
  std::printf("  [%c] generated similar to hand-crafted (ratio %.3f; ours "
              "is slightly faster because the configurable Store Unit "
              "skips the 32 KB result write-back)\n",
              gen_ratio > 0.90 && gen_ratio < 1.10 ? 'x' : ' ', gen_ratio);
  const double fw_delta = 100.0 * (updated[2] / original[2] - 1.0);
  std::printf("  [%c] reliability-hardened firmware slows GET (+%.1f%% here; "
              "the paper reports ~10%% on their testbed, where the whole "
              "FTL path runs in firmware)\n",
              fw_delta > 0.5 ? 'x' : ' ', fw_delta);
  return 0;
}
