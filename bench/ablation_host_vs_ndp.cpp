// Ablation (paper §I/§III-B, Fig. 1): Near-Data Processing vs the
// classical host path.
//
// "[1] ... were able to demonstrate speedups of up-to factor 2.7x for
// real-world data analysis" — the comparison the paper builds on (and
// therefore omits from its own evaluation). We reproduce it: a SCAN that
// ships every block through the intermediate layers and the NVMe link to
// the host vs software NDP on the device ARM vs hardware NDP on a
// generated PE.
#include "bench_common.hpp"

using namespace ndpgen;

namespace {

double run(ndp::ExecMode mode, std::uint64_t scale,
           const core::CompileResult& compiled) {
  platform::CosmosPlatform cosmos;
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  kv::NKV db(cosmos, bench::paper_db_config());
  workload::load_papers(db, generator);

  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig config;
  config.mode = mode;
  config.result_key_extractor = workload::paper_result_key;
  if (mode == ndp::ExecMode::kHardware) {
    cosmos.attach_pe(artifacts.design);
    config.pe_indices = {cosmos.pe_count() - 1};
  }
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, config);
  const auto stats = executor.scan({{"year", "lt", 1990}});
  return bench::to_seconds(stats.elapsed) * static_cast<double>(scale);
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(256);
  bench::print_header(
      "Ablation — classical host path vs Near-Data Processing (SCAN)",
      "motivation of Weber et al. IPPS'21 / Vincon et al. [1], Fig. 1");
  std::printf("dataset: papers at 1/%llu scale; full-scale seconds\n\n",
              static_cast<unsigned long long>(scale));

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());

  const double host = run(ndp::ExecMode::kHostClassic, scale, compiled);
  const double sw = run(ndp::ExecMode::kSoftware, scale, compiled);
  const double hw = run(ndp::ExecMode::kHardware, scale, compiled);

  std::printf("%-34s %10s %10s\n", "path", "scan [s]", "vs host");
  std::printf("%-34s %10.3f %10s\n", "classical host (no NDP)", host, "1.00x");
  std::printf("%-34s %10.3f %9.2fx\n", "software NDP (device ARM)", sw,
              host / sw);
  std::printf("%-34s %10.3f %9.2fx\n", "hardware NDP (generated PE)", hw,
              host / hw);
  bench::JsonResult json("ablation_host_vs_ndp");
  json.add("classical host", "scan", host, "s");
  json.add("software NDP", "scan", sw, "s");
  json.add("hardware NDP", "scan", hw, "s");
  json.write();

  std::printf("\nshape checks:\n");
  std::printf("  [%c] NDP beats the classical host path\n",
              hw < host && sw < host ? 'x' : ' ');
  std::printf("  [%c] hardware NDP speedup in the 'up to 2.7x' regime "
              "reported by [1] (measured %.2fx)\n",
              host / hw > 1.5 && host / hw < 4.0 ? 'x' : ' ', host / hw);
  return (hw < host && sw < host) ? 0 : 1;
}
