// Ablation (§IV-B "Memory Interface"): configurable partial-block
// Load/Store units vs the fully static 32 KB units of [1].
//
// "Due to the Data Transformation step ... the output is almost always
// smaller than 32 KByte. As memory contention is a major bottleneck,
// reducing the number of memory accesses will improve the performance."
// We run a projecting scan (Paper -> PaperResult drops the 104-byte title
// payload) and compare bytes moved across the AXI memory interface plus
// the resulting cycle counts under a constrained interconnect.
#include <cstdio>

#include "core/framework.hpp"
#include "hwgen/template_builder.hpp"
#include "hwsim/pe_sim.hpp"
#include "kv/block_format.hpp"
#include "workload/pubgraph.hpp"

using namespace ndpgen;

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — configurable vs static Load/Store units\n");
  std::printf("==============================================================\n\n");

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");

  // One partially-filled data block: 200 of 255 possible Paper records.
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 4096});
  std::vector<std::uint8_t> payload;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto record = generator.paper(i).serialize();
    payload.insert(payload.end(), record.begin(), record.end());
  }

  struct Row {
    const char* name;
    std::uint64_t bytes_read, bytes_written, cycles, tuples;
  };
  Row rows[2];
  for (int variant = 0; variant < 2; ++variant) {
    hwgen::TemplateOptions options;
    if (variant == 1) {
      options.flavor = hwgen::DesignFlavor::kHandcraftedBaseline;
      // Static geometry assumes fully packed blocks; the 200-record block
      // is processed as-is by [1]'s static unit (it always moves 32 KB).
      options.static_payload_bytes =
          static_cast<std::uint32_t>(payload.size());
    }
    const auto design = hwgen::build_pe_design(artifacts.analyzed, options);
    hwsim::PEBenchConfig bench_config;
    bench_config.axi.beats_per_cycle = 1;  // Constrained: contention hurts.
    hwsim::PETestBench bench(design, bench_config);
    bench.memory().write_bytes(0, payload);
    bench.set_filter(0, 1 /* year */, 4 /* lt */, 2100);  // All pass.
    const auto stats = bench.run_chunk(
        0, 128 * 1024, static_cast<std::uint32_t>(payload.size()));
    rows[variant] = Row{variant == 0 ? "configurable (ours)" : "static [1]",
                        stats.bytes_read, stats.bytes_written, stats.cycles,
                        stats.tuples_out};
  }

  std::printf("%-22s %12s %14s %10s %8s\n", "load/store units", "read [B]",
              "written [B]", "cycles", "tuples");
  for (const auto& row : rows) {
    std::printf("%-22s %12llu %14llu %10llu %8llu\n", row.name,
                static_cast<unsigned long long>(row.bytes_read),
                static_cast<unsigned long long>(row.bytes_written),
                static_cast<unsigned long long>(row.cycles),
                static_cast<unsigned long long>(row.tuples));
  }

  const double traffic_saving =
      1.0 - static_cast<double>(rows[0].bytes_read + rows[0].bytes_written) /
                static_cast<double>(rows[1].bytes_read +
                                    rows[1].bytes_written);
  std::printf("\n  [%c] configurable units reduce memory traffic by %.1f%%\n",
              traffic_saving > 0 ? 'x' : ' ', 100.0 * traffic_saving);
  std::printf("  [%c] and finish the block in fewer cycles under "
              "contention (%llu vs %llu)\n",
              rows[0].cycles < rows[1].cycles ? 'x' : ' ',
              static_cast<unsigned long long>(rows[0].cycles),
              static_cast<unsigned long long>(rows[1].cycles));
  return traffic_saving > 0 ? 0 : 1;
}
