// Host query service — saturation throughput, tail latency vs offered
// load, and the batching ablation.
//
// The paper's framework targets smart-storage deployments where many host
// clients share one NDP device; this bench characterizes the host frontend
// (bounded NVMe queue pairs + WRR arbitration + coalescing) the way a
// storage-service evaluation would:
//
//  1. calibrate saturation capacity with a closed loop (clients keep the
//     SQs full; throughput = device capacity, no drops);
//  2. sweep an open-loop arrival rate across fractions of that capacity —
//     throughput tracks offered load below the knee and plateaus above
//     it, while p99 latency grows superlinearly past the knee;
//  3. repeat with batching off (batch limit 1): coalescing adjacent
//     ranges amortizes the per-offload command/firmware overhead, so
//     saturation throughput drops without it;
//  4. replay one sweep point at --pes 1..4: every report field must be
//     byte-identical (the multi-PE determinism contract, now end-to-end
//     through the host service).
//
// All times are virtual, so every row is deterministic for a fixed seed
// and NDPGEN_SCALE; BENCH rows feed the CI regression guard (p99 rows get
// the dedicated --p99-threshold).
#include "bench_common.hpp"

#include <array>
#include <cmath>

#include "host/service.hpp"
#include "hwsim/kernel.hpp"

using namespace ndpgen;

namespace {

struct PointConfig {
  std::uint64_t arrival_rate = 0;  ///< 0 = closed loop.
  std::uint32_t closed_loop_clients = 0;
  std::uint32_t batch_limit = 8;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;  ///< Host threads driving the shards.
  std::uint64_t requests = 192;
};

host::ServiceReport run_point(const core::Framework& framework,
                              const core::CompileResult& compiled,
                              const workload::PubGraphGenerator& generator,
                              const fault::FaultProfile& fault_profile,
                              const PointConfig& point) {
  // Fresh platform + store per point so DES/flash state never leaks
  // between load levels.
  platform::CosmosConfig cosmos_config;
  cosmos_config.fault = fault_profile;
  platform::CosmosPlatform cosmos(cosmos_config);
  kv::NKV db(cosmos, bench::paper_db_config());
  workload::load_papers(db, generator);

  const auto& artifacts = compiled.get("PaperScan");
  ndp::ExecutorConfig exec_config;
  exec_config.mode = ndp::ExecMode::kHardware;
  exec_config.num_pes = point.pes;
  exec_config.pe_threads = point.threads;
  exec_config.result_key_extractor = workload::paper_result_key;
  exec_config.pe_indices = {
      framework.instantiate(compiled, "PaperScan", cosmos)};
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  host::ServiceConfig service_config;
  service_config.tenants = 4;
  service_config.queue_depth = 16;
  service_config.batch_limit = point.batch_limit;
  service_config.result_key = workload::paper_result_key;

  host::LoadConfig load_config;
  load_config.tenants = 4;
  load_config.requests = point.requests;
  load_config.arrival_rate = std::max<std::uint64_t>(1, point.arrival_rate);
  load_config.closed_loop_clients = point.closed_loop_clients;
  load_config.key_space = generator.paper_count();

  host::QueryService service(executor, cosmos, service_config);
  host::LoadGenerator load(load_config);
  return service.run(load);
}

bool reports_equal(const host::ServiceReport& a,
                   const host::ServiceReport& b) {
  return a.submitted == b.submitted && a.retries == b.retries &&
         a.rejected_busy == b.rejected_busy && a.dropped == b.dropped &&
         a.completed == b.completed && a.results == b.results &&
         a.batches == b.batches && a.coalesced == b.coalesced &&
         a.max_batch == b.max_batch && a.makespan_ns == b.makespan_ns &&
         a.device_busy_ns == b.device_busy_ns && a.p50_ns == b.p50_ns &&
         a.p95_ns == b.p95_ns && a.p99_ns == b.p99_ns &&
         a.phases.ns == b.phases.ns;
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(2048);
  bench::print_header(
      "Host query service — saturation, tail latency, batching ablation",
      "multi-tenant frontend for the generated NDP device (this work)");
  std::printf("dataset: papers at 1/%llu scale, 4 tenants, qd 16 "
              "(set NDPGEN_SCALE to change)\n\n",
              static_cast<unsigned long long>(scale));

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  const fault::FaultProfile fault_profile = bench::fault_profile_from_env();
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }
  bench::JsonResult json("fig_host_service");

  // --- 1. closed-loop saturation: device capacity with/without batching.
  // Under the fast-forwarding kernel a full-length saturation run is
  // affordable, so the reduced-request self-calibration workaround is
  // gone: capacity is measured directly. Exact mode keeps the short
  // calibrated pass so a cycle-exact run of this bench stays tractable.
  const hwsim::SimMode sim_mode = hwsim::sim_mode_from_env();
  const bool fast = sim_mode == hwsim::SimMode::kFast;
  std::printf("%s\n\n",
              fast ? "sim-mode fast: direct full-length saturation "
                     "measurement (no calibration pass)"
                   : "sim-mode exact: reduced-request calibration pass");
  PointConfig closed;
  closed.closed_loop_clients = 32;
  closed.requests = fast ? 512 : 128;
  const auto saturated = run_point(framework, compiled, generator,
                                   fault_profile, closed);
  PointConfig closed_nobatch = closed;
  closed_nobatch.batch_limit = 1;
  const auto saturated_nobatch = run_point(framework, compiled, generator,
                                           fault_profile, closed_nobatch);
  const double capacity = saturated.throughput_rps;
  const double capacity_nobatch = saturated_nobatch.throughput_rps;
  const double batching_gain =
      capacity_nobatch > 0 ? capacity / capacity_nobatch : 0.0;
  std::printf("closed-loop capacity: %.0f req/s batched (batch<=8), "
              "%.0f req/s unbatched — coalescing gain %.2fx\n\n",
              capacity, capacity_nobatch, batching_gain);
  json.add("capacity_batch", "closed", capacity, "rps");
  json.add("capacity_nobatch", "closed", capacity_nobatch, "rps");
  json.add("batching_speedup", "saturation", batching_gain, "x");
  // Where did the saturated latency go? Phase attribution summed over
  // every completion (ns rows are informational for the guard).
  std::printf("saturated phase attribution:");
  for (std::size_t p = 0; p < obs::kRequestPhaseCount; ++p) {
    const auto phase = static_cast<obs::RequestPhase>(p);
    std::printf(" %s %.3f ms", std::string(obs::phase_name(phase)).c_str(),
                bench::to_millis(saturated.phases[phase]));
    json.add("phase_ns_closed", std::string(obs::phase_name(phase)),
             static_cast<double>(saturated.phases[phase]), "ns");
  }
  std::printf("\n\n");

  // --- 2.+3. open-loop load sweep at fractions of batched capacity.
  struct Fraction {
    const char* label;
    double value;
  };
  const std::array<Fraction, 6> fractions = {{{"0.125x", 0.125},
                                              {"0.25x", 0.25},
                                              {"0.5x", 0.5},
                                              {"1x", 1.0},
                                              {"1.5x", 1.5},
                                              {"2x", 2.0}}};
  std::printf("open-loop sweep (offered load as fraction of capacity):\n");
  std::printf("%8s %12s | %11s %9s %9s %6s | %11s %9s %6s\n", "load",
              "rate [r/s]", "tput(b) r/s", "p50 [ms]", "p99 [ms]", "drop",
              "tput(1) r/s", "p99 [ms]", "drop");
  std::array<host::ServiceReport, fractions.size()> swept;
  std::array<host::ServiceReport, fractions.size()> swept_nobatch;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    PointConfig point;
    point.arrival_rate = static_cast<std::uint64_t>(
        std::llround(capacity * fractions[i].value));
    swept[i] =
        run_point(framework, compiled, generator, fault_profile, point);
    PointConfig nobatch = point;
    nobatch.batch_limit = 1;
    swept_nobatch[i] = run_point(framework, compiled, generator,
                                 fault_profile, nobatch);
    const auto& b = swept[i];
    const auto& nb = swept_nobatch[i];
    std::printf("%8s %12llu | %11.0f %9.3f %9.3f %6llu | %11.0f %9.3f "
                "%6llu\n",
                fractions[i].label,
                static_cast<unsigned long long>(point.arrival_rate),
                b.throughput_rps, bench::to_millis(b.p50_ns),
                bench::to_millis(b.p99_ns),
                static_cast<unsigned long long>(b.dropped),
                nb.throughput_rps, bench::to_millis(nb.p99_ns),
                static_cast<unsigned long long>(nb.dropped));
    json.add("throughput_batch", fractions[i].label, b.throughput_rps,
             "rps");
    json.add("p50_batch", fractions[i].label, bench::to_millis(b.p50_ns),
             "ms");
    json.add("p99_batch", fractions[i].label, bench::to_millis(b.p99_ns),
             "ms");
    json.add("dropped_batch", fractions[i].label,
             static_cast<double>(b.dropped), "reqs");
    json.add("throughput_nobatch", fractions[i].label, nb.throughput_rps,
             "rps");
    json.add("p99_nobatch", fractions[i].label, bench::to_millis(nb.p99_ns),
             "ms");
  }

  // --- 4. multi-PE determinism: one sub-knee point replayed at 1..4 PEs.
  // The contract (mirroring the executor's): each (seed, pes) combo is
  // byte-reproducible run-to-run and thread-count-invariant; the request
  // outcome set (completions, per-request results, admissions) is
  // invariant across PEs, while device timing may legitimately shift with
  // the PE-phase critical path (that is the multi-PE speedup, not noise).
  std::printf("\nmulti-PE replay (0.5x load):\n");
  bool pes_deterministic = true;
  host::ServiceReport pes_reports[4];
  for (std::uint32_t pes = 1; pes <= 4; ++pes) {
    PointConfig point;
    point.arrival_rate =
        static_cast<std::uint64_t>(std::llround(capacity * 0.5));
    point.pes = pes;
    pes_reports[pes - 1] =
        run_point(framework, compiled, generator, fault_profile, point);
    const auto& report = pes_reports[pes - 1];
    // Re-run the identical point: the full report must be byte-equal.
    const auto rerun =
        run_point(framework, compiled, generator, fault_profile, point);
    const bool reproducible = reports_equal(report, rerun);
    // Thread count never touches virtual time or results.
    PointConfig threaded = point;
    threaded.threads = 4;
    const bool thread_invariant = reports_equal(
        report,
        run_point(framework, compiled, generator, fault_profile, threaded));
    // Outcomes (not timing) must match the 1-PE run.
    const auto& base = pes_reports[0];
    const bool outcomes_invariant =
        report.submitted == base.submitted &&
        report.completed == base.completed &&
        report.results == base.results && report.dropped == base.dropped;
    pes_deterministic = pes_deterministic && reproducible &&
                        thread_invariant && outcomes_invariant;
    std::printf("  %u PE%s: %.0f r/s, p99 %.3f ms — rerun %s, threads 0/4 "
                "%s, outcomes %s\n",
                pes, pes == 1 ? " " : "s", report.throughput_rps,
                bench::to_millis(report.p99_ns),
                reproducible ? "identical" : "DIVERGED",
                thread_invariant ? "identical" : "DIVERGED",
                outcomes_invariant ? "invariant" : "DIVERGED");
    json.add("pes_throughput", pes, report.throughput_rps, "rps");
  }

  json.write();

  // Shape checks: the knee behaviour the queueing model must reproduce.
  const auto& sub = swept[0];     // 0.125x — far below the knee.
  const auto& half = swept[2];    // 0.5x
  const auto& over = swept[5];    // 2x — past the knee.
  const auto& past = swept[4];    // 1.5x
  const bool rises = half.throughput_rps > 1.5 * sub.throughput_rps;
  // Past the knee the service is pinned at device capacity: both
  // overloaded points sit within 10% of the calibrated ceiling and of
  // each other instead of tracking the offered load.
  const bool plateaus = over.throughput_rps < 1.10 * capacity &&
                        past.throughput_rps < 1.10 * capacity &&
                        over.throughput_rps < 1.10 * past.throughput_rps;
  const bool tail_blows_up = over.p99_ns >= 3 * sub.p99_ns;
  const bool batching_wins = batching_gain >= 1.2;
  std::printf("\nshape checks:\n");
  std::printf("  [%c] throughput tracks offered load below the knee "
              "(%.0f r/s at 0.5x vs %.0f at 0.125x)\n",
              rises ? 'x' : ' ', half.throughput_rps, sub.throughput_rps);
  std::printf("  [%c] throughput plateaus past the knee "
              "(%.0f r/s at 1.5x, %.0f at 2x, capacity %.0f)\n",
              plateaus ? 'x' : ' ', past.throughput_rps,
              over.throughput_rps, capacity);
  std::printf("  [%c] p99 grows superlinearly past the knee "
              "(%.3f ms at 2x vs %.3f ms at 0.125x)\n",
              tail_blows_up ? 'x' : ' ', bench::to_millis(over.p99_ns),
              bench::to_millis(sub.p99_ns));
  std::printf("  [%c] batching lifts saturation throughput (%.2fx)\n",
              batching_wins ? 'x' : ' ', batching_gain);
  std::printf("  [%c] sweep deterministic across --pes 1..4 (byte-equal "
              "reruns, thread-invariant, outcome-invariant)\n",
              pes_deterministic ? 'x' : ' ');
  const bool ok = rises && plateaus && tail_blows_up && batching_wins &&
                  pes_deterministic;
  if (!ok) std::printf("\nFAIL: host-service shape checks violated\n");
  return ok ? 0 : 1;
}
