// Query-plan lowering figure: HW-chained vs forced-SW-fallback vs naive
// host reference, over the whole plan suite.
//
// The paper generates one accelerator per format specification; the query
// compiler generalizes that to logical plans, synthesizing a chained-PE
// netlist per scan leaf and cutting to a SW tail where the template has
// no unit. This bench reports, for every suite plan, the end-to-end
// virtual time of (a) the compiled plan with PE offload, (b) the same
// plan with the SW-fallback cut forced (classical host path), and (c)
// the naive host-side reference executor — and byte-checks all three
// against each other, so the figure can never drift from correctness.
#include "bench_common.hpp"
#include "query/compiler.hpp"
#include "query/executor.hpp"
#include "query/plan_parser.hpp"
#include "query/plan_suite.hpp"
#include "query/reference_executor.hpp"

using namespace ndpgen;

namespace {

struct PlanRun {
  double hw_ms = 0.0;
  double sw_ms = 0.0;
  double ref_ms = 0.0;
  std::uint64_t rows = 0;
  std::uint32_t hw_stages = 0;
  bool offloaded = false;
  bool byte_equal = false;
};

PlanRun run_plan(const query::Plan& plan, std::uint64_t scale) {
  PlanRun run;

  query::QueryExecOptions options;
  options.scale_divisor = scale;
  options.fault = bench::fault_profile_from_env();

  auto hw = query::compile_plan(plan);
  hw.value_or_raise();
  query::QueryStats hw_stats;
  const auto hw_table =
      query::execute_plan(hw.value(), options, &hw_stats);
  run.hw_ms = bench::to_millis(hw_stats.elapsed());
  run.rows = hw_stats.rows_out;
  run.offloaded = hw.value().any_offloaded();
  run.hw_stages = hw.value().probe.pricing.filter_stages;

  query::CompileOptions force_sw;
  force_sw.force_software = true;
  auto sw = query::compile_plan(plan, force_sw);
  sw.value_or_raise();
  query::QueryStats sw_stats;
  const auto sw_table =
      query::execute_plan(sw.value(), options, &sw_stats);
  run.sw_ms = bench::to_millis(sw_stats.elapsed());

  query::ReferenceStats ref_stats;
  const auto ref_table = query::reference_execute(plan, scale, &ref_stats);
  run.ref_ms = bench::to_millis(ref_stats.elapsed());

  run.byte_equal = hw_table.to_bytes() == ref_table.to_bytes() &&
                   sw_table.to_bytes() == ref_table.to_bytes();
  return run;
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(2048);
  bench::print_header(
      "Figure — query plans: chained-PE offload vs SW fallback vs reference",
      "generalizes Weber et al. IPPS'21 Fig. 9 (chained stages) to plans");
  std::printf("dataset: pubgraph at 1/%llu scale; virtual milliseconds\n\n",
              static_cast<unsigned long long>(scale));

  bench::JsonResult json("fig_query_plans");
  std::printf("%-12s %7s %10s %10s %10s %8s %6s\n", "plan", "stages",
              "hw [ms]", "sw [ms]", "ref [ms]", "hw/sw", "rows");

  bool all_equal = true;
  bool any_chained = false;
  bool hw_never_slower = true;
  for (const auto& named : query::plan_suite()) {
    auto parsed = query::parse_plan(named.source);
    parsed.value_or_raise();
    const PlanRun run = run_plan(parsed.value(), scale);

    std::printf("%-12s %7u %10.3f %10.3f %10.3f %7.2fx %6llu%s\n",
                named.name.c_str(), run.hw_stages, run.hw_ms, run.sw_ms,
                run.ref_ms, run.sw_ms > 0 ? run.hw_ms / run.sw_ms : 0.0,
                static_cast<unsigned long long>(run.rows),
                run.byte_equal ? "" : "  MISMATCH");

    json.add("query_elapsed_ms", named.name + "_hw", run.hw_ms, "ms");
    json.add("query_elapsed_ms", named.name + "_sw", run.sw_ms, "ms");
    json.add("query_elapsed_ms", named.name + "_ref", run.ref_ms, "ms");

    all_equal = all_equal && run.byte_equal;
    any_chained = any_chained || (run.offloaded && run.hw_stages >= 3);
    hw_never_slower = hw_never_slower && run.hw_ms <= run.sw_ms;
  }
  json.write();

  std::printf("\nshape checks:\n");
  std::printf("  [%c] every plan byte-equal across hw / sw-fallback / "
              "reference\n",
              all_equal ? 'x' : ' ');
  std::printf("  [%c] at least one plan lowers to a >=3-stage chained PE "
              "netlist\n",
              any_chained ? 'x' : ' ');
  std::printf("  [%c] PE offload never slower than the forced SW fallback\n",
              hw_never_slower ? 'x' : ' ');
  return (all_equal && any_chained) ? 0 : 1;
}
