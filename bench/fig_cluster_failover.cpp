// Smart-SSD cluster — tail latency through a device loss and recovery.
//
// The paper's accelerators live inside storage devices; deployments run
// fleets of them, so the robustness question a storage evaluation asks is
// not "does one device compute correctly" but "what happens to the SLO
// when a device dies mid-workload". This bench drives the replicated
// cluster frontend (4 members, R=2, 1 spare) through that story:
//
//  1. calibrate saturation capacity of the healthy cluster with a closed
//     loop, then fix the offered load at 0.5x capacity (below the knee,
//     so every latency shift is failure handling, not queueing);
//  2. run a two-segment timeline on a healthy cluster: segment A and a
//     continuation segment B (the steady-state reference for both the
//     crash window and the recovered tail);
//  3. replay the identical timeline with the "device-loss" fault profile
//     armed: device 0 crashes at the mid-segment-A doorbell, health
//     escalates it Suspect -> Dead, its partitions fail over to the
//     spare, and the rebuild copy contends with foreground scans.
//     Segment B then starts only after the rebuild completes — it
//     measures the *recovered* cluster;
//  4. acceptance (ISSUE): zero dropped queries through the crash, result
//     counts byte-equal to the healthy run, and recovered p99 <= 2x the
//     steady-state p99 of the same segment;
//  5. determinism: the faulted timeline — including the failure timeline
//     itself — replays byte-identically and is --threads-invariant.
//
// All times are virtual; BENCH "failover_p99" rows feed the dedicated
// --failover-p99-threshold CI guard.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/pubgraph_cluster.hpp"
#include "host/service.hpp"

using namespace ndpgen;

namespace {

constexpr std::uint64_t kSegmentRequests = 96;
constexpr std::uint64_t kLoadSeed = 20210521;

struct Timeline {
  host::ServiceReport segment_a;  ///< Crash lands mid-A (faulted runs).
  host::ServiceReport segment_b;  ///< Starts after rebuild completes.
  cluster::ClusterReport cluster;
  platform::SimTime recovered_start = 0;
  bool crash_fired = false;
  bool spare_serving = false;
};

host::ServiceReport run_segment(cluster::ClusterCoordinator& coordinator,
                                std::uint64_t key_space,
                                std::uint64_t arrival_rate,
                                std::uint64_t seed,
                                platform::SimTime start_ns,
                                std::uint32_t closed_loop_clients,
                                std::uint64_t requests) {
  host::ServiceConfig service_config;
  service_config.tenants = 4;
  service_config.queue_depth = 16;
  service_config.result_key = workload::paper_result_key;

  host::LoadConfig load_config;
  load_config.tenants = 4;
  load_config.requests = requests;
  load_config.arrival_rate = std::max<std::uint64_t>(1, arrival_rate);
  load_config.closed_loop_clients = closed_loop_clients;
  load_config.key_space = key_space;
  load_config.seed = seed;
  load_config.start_ns = start_ns;

  host::QueryService service(coordinator, service_config);
  host::LoadGenerator load(load_config);
  return service.run(load);
}

/// Builds a fresh cluster and runs the two-segment timeline against it.
Timeline run_timeline(std::uint64_t scale, std::uint64_t arrival_rate,
                      const fault::FaultProfile& device_fault,
                      std::uint32_t threads) {
  cluster::ClusterBuildConfig build;
  build.scale_divisor = scale;
  build.threads = threads;
  build.device_fault = device_fault;
  const auto cluster = cluster::build_pubgraph_cluster(build);
  auto& coordinator = *cluster->coordinator;
  // Mid-segment-A crash: the device-loss preset triggers at 0.5x the
  // armed budget's doorbells, and below the knee batches stay near 1.
  coordinator.arm_faults(kSegmentRequests);
  const std::uint64_t key_space = cluster->generator.paper_count();

  Timeline timeline;
  timeline.segment_a = run_segment(coordinator, key_space, arrival_rate,
                                   kLoadSeed, 0, 0, kSegmentRequests);
  // Segment B measures the recovered cluster: resume the arrival clock
  // after the device timeline *and* any rebuild copy have finished.
  timeline.recovered_start = coordinator.device_now();
  for (const auto& job : coordinator.rebuild().jobs()) {
    timeline.recovered_start =
        std::max(timeline.recovered_start, job.completes);
  }
  timeline.segment_b = run_segment(coordinator, key_space, arrival_rate,
                                   kLoadSeed + 1, timeline.recovered_start,
                                   0, kSegmentRequests);
  timeline.cluster = coordinator.report();
  timeline.crash_fired = coordinator.injector().fired_at().has_value();
  for (const auto& job : coordinator.rebuild().jobs()) {
    timeline.spare_serving =
        timeline.spare_serving ||
        coordinator.rebuild().spare_ready_at(job.spare,
                                             coordinator.device_now());
  }
  return timeline;
}

bool reports_equal(const host::ServiceReport& a,
                   const host::ServiceReport& b) {
  return a.submitted == b.submitted && a.retries == b.retries &&
         a.rejected_busy == b.rejected_busy && a.dropped == b.dropped &&
         a.completed == b.completed && a.results == b.results &&
         a.batches == b.batches && a.coalesced == b.coalesced &&
         a.max_batch == b.max_batch && a.makespan_ns == b.makespan_ns &&
         a.device_busy_ns == b.device_busy_ns && a.p50_ns == b.p50_ns &&
         a.p95_ns == b.p95_ns && a.p99_ns == b.p99_ns &&
         a.phases.ns == b.phases.ns;
}

bool cluster_reports_equal(const cluster::ClusterReport& a,
                           const cluster::ClusterReport& b) {
  return a.queries == b.queries && a.subscans == b.subscans &&
         a.subscan_failures == b.subscan_failures && a.hedges == b.hedges &&
         a.hedge_wins == b.hedge_wins && a.failovers == b.failovers &&
         a.rebuilds == b.rebuilds &&
         a.health_transitions == b.health_transitions;
}

bool timelines_equal(const Timeline& a, const Timeline& b) {
  return reports_equal(a.segment_a, b.segment_a) &&
         reports_equal(a.segment_b, b.segment_b) &&
         cluster_reports_equal(a.cluster, b.cluster) &&
         a.recovered_start == b.recovered_start &&
         a.crash_fired == b.crash_fired;
}

void print_segment(const char* label, const host::ServiceReport& report) {
  std::printf("%12s | %6llu %6llu %9.0f %9.3f %9.3f %6llu\n", label,
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.results),
              report.throughput_rps, bench::to_millis(report.p50_ns),
              bench::to_millis(report.p99_ns),
              static_cast<unsigned long long>(report.dropped));
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(2048);
  bench::print_header(
      "Smart-SSD cluster — device loss, failover and tail recovery",
      "replicated NDP smart-storage deployment (this work)");
  std::printf("topology: 4 members, R=2, 1 spare; papers at 1/%llu scale "
              "(set NDPGEN_SCALE to change)\n\n",
              static_cast<unsigned long long>(scale));

  auto profile = fault::FaultProfile::parse("device-loss");
  const fault::FaultProfile device_loss = profile.value_or_raise();
  const fault::FaultProfile fault_free;

  // --- 1. closed-loop capacity of the healthy cluster, then 0.5x load.
  cluster::ClusterBuildConfig calibration_build;
  calibration_build.scale_divisor = scale;
  const auto calibration = cluster::build_pubgraph_cluster(calibration_build);
  const auto saturated = run_segment(
      *calibration->coordinator, calibration->generator.paper_count(),
      1000, kLoadSeed, 0, /*closed_loop_clients=*/32, /*requests=*/64);
  const double capacity = saturated.throughput_rps;
  const auto arrival_rate =
      static_cast<std::uint64_t>(std::llround(capacity * 0.5));
  std::printf("closed-loop capacity: %.0f req/s; open-loop timelines run "
              "at 0.5x = %llu req/s\n\n",
              capacity, static_cast<unsigned long long>(arrival_rate));

  // --- 2.+3. healthy reference timeline vs device-loss timeline.
  const Timeline healthy =
      run_timeline(scale, arrival_rate, fault_free, /*threads=*/0);
  const Timeline faulted =
      run_timeline(scale, arrival_rate, device_loss, /*threads=*/0);

  std::printf("%12s | %6s %6s %9s %9s %9s %6s\n", "segment", "done",
              "rows", "tput r/s", "p50 [ms]", "p99 [ms]", "drop");
  print_segment("steady A", healthy.segment_a);
  print_segment("steady B", healthy.segment_b);
  print_segment("crash A", faulted.segment_a);
  print_segment("recovered B", faulted.segment_b);
  std::printf("\nfailure timeline: crash %s, %llu health transitions, "
              "%llu failover(s), %llu rebuild(s), %llu sub-scan failures, "
              "%llu hedges (%llu won), spare %s\n",
              faulted.crash_fired ? "fired" : "DID NOT FIRE",
              static_cast<unsigned long long>(
                  faulted.cluster.health_transitions),
              static_cast<unsigned long long>(faulted.cluster.failovers),
              static_cast<unsigned long long>(faulted.cluster.rebuilds),
              static_cast<unsigned long long>(
                  faulted.cluster.subscan_failures),
              static_cast<unsigned long long>(faulted.cluster.hedges),
              static_cast<unsigned long long>(faulted.cluster.hedge_wins),
              faulted.spare_serving ? "serving" : "NOT SERVING");

  // --- 5. the failure timeline itself is part of the determinism
  // contract: byte-equal replay, --threads-invariant.
  const Timeline rerun =
      run_timeline(scale, arrival_rate, device_loss, /*threads=*/0);
  const Timeline threaded =
      run_timeline(scale, arrival_rate, device_loss, /*threads=*/4);
  const bool reproducible = timelines_equal(faulted, rerun);
  const bool thread_invariant = timelines_equal(faulted, threaded);
  std::printf("determinism: rerun %s, threads 0/4 %s\n",
              reproducible ? "identical" : "DIVERGED",
              thread_invariant ? "identical" : "DIVERGED");

  bench::JsonResult json("fig_cluster_failover");
  json.add("capacity", "closed", capacity, "rps");
  json.add("failover_p99", "steady", bench::to_millis(healthy.segment_b.p99_ns),
           "ms");
  json.add("failover_p99", "crash", bench::to_millis(faulted.segment_a.p99_ns),
           "ms");
  json.add("failover_p99", "recovered",
           bench::to_millis(faulted.segment_b.p99_ns), "ms");
  json.add("throughput", "steady", healthy.segment_b.throughput_rps, "rps");
  json.add("throughput", "crash", faulted.segment_a.throughput_rps, "rps");
  json.add("throughput", "recovered", faulted.segment_b.throughput_rps,
           "rps");
  json.add("cluster", "failovers",
           static_cast<double>(faulted.cluster.failovers));
  json.add("cluster", "rebuilds",
           static_cast<double>(faulted.cluster.rebuilds));
  json.add("cluster", "subscan_failures",
           static_cast<double>(faulted.cluster.subscan_failures));
  json.add("cluster", "hedges", static_cast<double>(faulted.cluster.hedges));
  json.write();

  // Shape checks — the ISSUE acceptance criteria for the failover story.
  const bool failed_over = faulted.crash_fired &&
                           faulted.cluster.failovers == 1 &&
                           faulted.cluster.rebuilds == 1 &&
                           faulted.spare_serving &&
                           healthy.cluster.failovers == 0;
  const bool nothing_dropped =
      healthy.segment_a.dropped == 0 && healthy.segment_b.dropped == 0 &&
      faulted.segment_a.dropped == 0 && faulted.segment_b.dropped == 0 &&
      faulted.segment_a.completed == kSegmentRequests &&
      faulted.segment_b.completed == kSegmentRequests;
  const bool results_match =
      faulted.segment_a.results == healthy.segment_a.results &&
      faulted.segment_b.results == healthy.segment_b.results;
  const double steady_p99 =
      static_cast<double>(healthy.segment_b.p99_ns);
  const double recovered_p99 =
      static_cast<double>(faulted.segment_b.p99_ns);
  const bool recovers =
      steady_p99 > 0 && recovered_p99 <= 2.0 * steady_p99;
  std::printf("\nshape checks:\n");
  std::printf("  [%c] crash fires mid-run and exactly one failover + "
              "rebuild brings the spare into service\n",
              failed_over ? 'x' : ' ');
  std::printf("  [%c] zero queries dropped through the device loss "
              "(%llu+%llu completed)\n",
              nothing_dropped ? 'x' : ' ',
              static_cast<unsigned long long>(faulted.segment_a.completed),
              static_cast<unsigned long long>(faulted.segment_b.completed));
  std::printf("  [%c] result counts equal the healthy run in both "
              "segments (replicas serve the lost partitions)\n",
              results_match ? 'x' : ' ');
  std::printf("  [%c] recovered p99 within 2x steady state "
              "(%.3f ms vs %.3f ms, %.2fx)\n",
              recovers ? 'x' : ' ', bench::to_millis(faulted.segment_b.p99_ns),
              bench::to_millis(healthy.segment_b.p99_ns),
              steady_p99 > 0 ? recovered_p99 / steady_p99 : 0.0);
  std::printf("  [%c] failure timeline byte-deterministic "
              "(rerun + thread invariance)\n",
              (reproducible && thread_invariant) ? 'x' : ' ');
  const bool ok = failed_over && nothing_dropped && results_match &&
                  recovers && reproducible && thread_invariant;
  if (!ok) std::printf("\nFAIL: cluster-failover shape checks violated\n");
  return ok ? 0 : 1;
}
