// Table I: FPGA resource utilization of the PEs of [1] and this work.
//
// "The design contains the complete Cosmos+ OpenSSD platform as well as
// 1 paper-PE and 7 ref-PEs." Utilization comes from the calibrated
// analytic resource model (in-context synthesis mode); the paper's
// published numbers are printed alongside.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "hwgen/resource_model.hpp"
#include "hwgen/template_builder.hpp"
#include "workload/pubgraph.hpp"

using namespace ndpgen;

namespace {

hwgen::PEDesign build(const analysis::AnalyzedParser& parser,
                      hwgen::DesignFlavor flavor) {
  hwgen::TemplateOptions options;
  options.flavor = flavor;
  return hwgen::build_pe_design(parser, options);
}

double slices(const hwgen::PEDesign& design) {
  return hwgen::estimate_pe(design, hwgen::SynthesisMode::kInContext)
      .total.slices;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Table I — FPGA resource utilization (XC7Z045, slices)\n");
  std::printf("Design: Cosmos+ OpenSSD platform + 1 paper-PE + 7 ref-PEs\n");
  std::printf("==============================================================\n\n");

  // Table I compares PEs with "the same filtering and transformation
  // functionality as [1]": single-stage parsers.
  std::string source = workload::pubgraph_spec_source();
  if (const auto pos = source.find("filters = 2"); pos != std::string::npos) {
    source.replace(pos, 11, "filters = 1");
  }
  const core::Framework framework;
  const auto compiled = framework.compile(source);
  const auto& paper_parser = compiled.get("PaperScan").analyzed;
  const auto& ref_parser = compiled.get("RefScan").analyzed;

  const double paper_ours =
      slices(build(paper_parser, hwgen::DesignFlavor::kGenerated));
  const double paper_theirs =
      slices(build(paper_parser, hwgen::DesignFlavor::kHandcraftedBaseline));
  const double ref_ours =
      slices(build(ref_parser, hwgen::DesignFlavor::kGenerated));
  const double ref_theirs =
      slices(build(ref_parser, hwgen::DesignFlavor::kHandcraftedBaseline));
  const double overall_ours =
      hwgen::platform_base_slices(hwgen::DesignFlavor::kGenerated, 8) +
      paper_ours + 7 * ref_ours;
  const double overall_theirs = hwgen::platform_base_slices(
                                    hwgen::DesignFlavor::kHandcraftedBaseline,
                                    8) +
                                paper_theirs + 7 * ref_theirs;
  const double total = hwgen::xc7z045().total_slices;

  std::printf("%-10s | %21s | %21s\n", "", "Slice Util. (abs.)",
              "Slice Util. (%)");
  std::printf("%-10s | %10s %10s | %10s %10s\n", "", "[1]", "Our Work", "[1]",
              "Our Work");
  std::printf("-----------+-----------------------+----------------------\n");
  auto row = [&](const char* name, double theirs, double ours) {
    std::printf("%-10s | %10.0f %10.0f | %10.2f %10.2f\n", name, theirs,
                ours, 100.0 * theirs / total, 100.0 * ours / total);
  };
  row("Overall", overall_theirs, overall_ours);
  row("paper-PE", paper_theirs, paper_ours);
  row("ref-PE", ref_theirs, ref_ours);
  bench::JsonResult json("table1_util");
  json.add("[1]", "Overall", overall_theirs, "slices");
  json.add("Our Work", "Overall", overall_ours, "slices");
  json.add("[1]", "paper-PE", paper_theirs, "slices");
  json.add("Our Work", "paper-PE", paper_ours, "slices");
  json.add("[1]", "ref-PE", ref_theirs, "slices");
  json.add("Our Work", "ref-PE", ref_ours, "slices");
  json.write();
  std::printf("%-10s | %10.0f %10.0f | %10.2f %10.2f\n", "Available", total,
              total, 100.0, 100.0);

  std::printf("\npaper-reported (Table I):\n");
  std::printf("  Overall   |      40821      41934 |      74.70      76.73\n");
  std::printf("  paper-PE  |       9480      14348 |      17.35      26.25\n");
  std::printf("  ref-PE    |       1277       1446 |       1.41       2.65\n");
  std::printf("\nnote: each generated PE maps its buffers onto 1 BRAM36 "
              "(the custom PEs of [1] used none).\n");

  const bool ok =
      std::abs(overall_ours - 41934) / 41934 < 0.02 &&
      std::abs(overall_theirs - 40821) / 40821 < 0.02 &&
      std::abs(paper_ours - 14348) / 14348 < 0.02 &&
      std::abs(ref_ours - 1446) / 1446 < 0.02;
  std::printf("\ncalibration within 2%% of published values: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
