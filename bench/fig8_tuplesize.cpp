// Fig. 8: Out-of-context slice utilization of generated PEs vs tuple size
// (64..1024 bits), Full (all data filterable) vs Half (half the data
// discarded via string-prefixes).
//
// Shape targets from the paper: slices grow with tuple size; for SMALL
// tuples Half costs MORE than Full (fixed prefix/postfix handling), while
// for large tuples the smaller filtering datapath wins — prefixing pays
// off once string data would otherwise need very wide comparators.
#include <cstdio>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "hwgen/resource_model.hpp"
#include "workload/synth.hpp"

using namespace ndpgen;

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 8 — OOC slice utilization vs tuple size (generated PEs)\n");
  std::printf("==============================================================\n\n");

  const core::Framework framework;
  std::printf("%10s %12s %12s %12s\n", "bits", "Full", "Half", "Half-Full");
  bench::JsonResult json("fig8_tuplesize");
  double full_64 = 0, half_64 = 0, full_1024 = 0, half_1024 = 0;
  double previous_full = 0;
  bool monotonic = true;
  for (std::uint32_t bits = 64; bits <= 1024; bits *= 2) {
    double values[2];
    for (const bool half : {false, true}) {
      const auto compiled =
          framework.compile(workload::synth_spec(bits, half));
      values[half ? 1 : 0] =
          compiled.get("Synth").resources_out_of_context.total.slices;
    }
    std::printf("%10u %12.0f %12.0f %+12.0f\n", bits, values[0], values[1],
                values[1] - values[0]);
    json.add("Full", static_cast<std::uint64_t>(bits), values[0], "slices");
    json.add("Half", static_cast<std::uint64_t>(bits), values[1], "slices");
    if (bits == 64) {
      full_64 = values[0];
      half_64 = values[1];
    }
    if (bits == 1024) {
      full_1024 = values[0];
      half_1024 = values[1];
    }
    monotonic &= values[0] > previous_full;
    previous_full = values[0];
  }
  json.write();

  std::printf("\nshape checks (paper §V, Fig. 8):\n");
  std::printf("  [%c] utilization grows with tuple size\n",
              monotonic ? 'x' : ' ');
  std::printf("  [%c] Half > Full for small tuples (64 bit: %.0f vs %.0f)\n",
              half_64 > full_64 ? 'x' : ' ', half_64, full_64);
  std::printf("  [%c] Half < Full for large tuples (1024 bit: %.0f vs "
              "%.0f)\n",
              half_1024 < full_1024 ? 'x' : ' ', half_1024, full_1024);
  return (half_64 > full_64 && half_1024 < full_1024 && monotonic) ? 0 : 1;
}
