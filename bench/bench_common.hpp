// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::bench {

/// Scale divisor for dataset-level benches; override with NDPGEN_SCALE.
/// Virtual times of throughput-bound experiments (SCAN) are multiplied
/// back to full scale (linear in the flash-bound regime); latency-bound
/// experiments (GET) are reported unscaled.
inline std::uint64_t scale_divisor(std::uint64_t fallback = 128) {
  if (const char* env = std::getenv("NDPGEN_SCALE")) {
    const auto value = std::strtoull(env, nullptr, 10);
    if (value >= 1) return value;
  }
  return fallback;
}

/// Fault profile for degraded-media bench runs, parsed from
/// $NDPGEN_FAULT_PROFILE ("key=value,..." — same syntax as the CLI's
/// --fault-profile). Unset or empty keeps the fault-free default, so
/// regular bench output stays byte-identical.
inline fault::FaultProfile fault_profile_from_env() {
  const char* env = std::getenv("NDPGEN_FAULT_PROFILE");
  if (env == nullptr || *env == '\0') return {};
  auto parsed = fault::FaultProfile::parse(env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench: bad NDPGEN_FAULT_PROFILE: %s\n",
                 parsed.status().message.c_str());
    std::exit(exit_code(parsed.status().kind));
  }
  return std::move(parsed).value();
}

/// Reliability counters for JSON rows; ScanStats and GetStats both carry
/// these fields, and per-operation stats accumulate into one total.
struct FaultCounters {
  std::uint64_t blocks_retried = 0;
  std::uint64_t blocks_degraded_to_software = 0;
  std::uint64_t uncorrectable_blocks = 0;

  template <typename Stats>
  void accumulate(const Stats& stats) {
    blocks_retried += stats.blocks_retried;
    blocks_degraded_to_software += stats.blocks_degraded_to_software;
    uncorrectable_blocks += stats.uncorrectable_blocks;
  }
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline double to_seconds(platform::SimTime time) {
  return static_cast<double>(time) / 1e9;
}

inline double to_millis(platform::SimTime time) {
  return static_cast<double>(time) / 1e6;
}

/// Builds a paper store at the given scale; returns records loaded.
inline std::uint64_t load_paper_store(platform::CosmosPlatform& cosmos,
                                      kv::NKV& db,
                                      const workload::PubGraphGenerator& gen) {
  (void)cosmos;
  return workload::load_papers(db, gen);
}

inline kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

inline kv::DBConfig ref_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::RefRecord::kBytes;
  config.extractor = workload::ref_key;
  return config;
}

/// Machine-readable companion to a bench's stdout tables: collects rows of
/// (series, x, value [, unit]) and writes them as BENCH_<name>.json into
/// $NDPGEN_BENCH_JSON_DIR (no file is written when the variable is unset).
/// Values are rendered with obs::json_fixed, so identical runs produce
/// byte-identical files.
class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {}

  void add(std::string series, std::string x, double value,
           std::string unit = {}) {
    rows_.push_back(Row{std::move(series), std::move(x), value,
                        std::move(unit)});
  }
  void add(std::string series, std::uint64_t x, double value,
           std::string unit = {}) {
    add(std::move(series), std::to_string(x), value, std::move(unit));
  }

  /// Writes BENCH_<name>.json; returns the path, or empty when disabled.
  std::string write() const {
    const char* dir = std::getenv("NDPGEN_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return {};
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return {};
    }
    out << "{\"bench\":\"" << obs::json_escape(name_) << "\",\"rows\":[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "{\"series\":\"" << obs::json_escape(row.series)
          << "\",\"x\":\"" << obs::json_escape(row.x)
          << "\",\"value\":" << obs::json_fixed(row.value);
      if (!row.unit.empty()) {
        out << ",\"unit\":\"" << obs::json_escape(row.unit) << "\"";
      }
      out << "}" << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "]}\n";
    std::fprintf(stderr, "bench: wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
    return path;
  }

 private:
  struct Row {
    std::string series;
    std::string x;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Row> rows_;
};

/// Emits the fault counters of one series into a JsonResult. Call only
/// under an enabled fault profile so default BENCH_*.json files keep their
/// pre-reliability shape.
inline void add_fault_rows(JsonResult& json, const std::string& series,
                           const FaultCounters& counters) {
  json.add(series, "blocks_retried",
           static_cast<double>(counters.blocks_retried), "blocks");
  json.add(series, "blocks_degraded_to_software",
           static_cast<double>(counters.blocks_degraded_to_software),
           "blocks");
  json.add(series, "uncorrectable_blocks",
           static_cast<double>(counters.uncorrectable_blocks), "blocks");
}

}  // namespace ndpgen::bench
