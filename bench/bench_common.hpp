// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/framework.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::bench {

/// Scale divisor for dataset-level benches; override with NDPGEN_SCALE.
/// Virtual times of throughput-bound experiments (SCAN) are multiplied
/// back to full scale (linear in the flash-bound regime); latency-bound
/// experiments (GET) are reported unscaled.
inline std::uint64_t scale_divisor(std::uint64_t fallback = 128) {
  if (const char* env = std::getenv("NDPGEN_SCALE")) {
    const auto value = std::strtoull(env, nullptr, 10);
    if (value >= 1) return value;
  }
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline double to_seconds(platform::SimTime time) {
  return static_cast<double>(time) / 1e9;
}

inline double to_millis(platform::SimTime time) {
  return static_cast<double>(time) / 1e6;
}

/// Builds a paper store at the given scale; returns records loaded.
inline std::uint64_t load_paper_store(platform::CosmosPlatform& cosmos,
                                      kv::NKV& db,
                                      const workload::PubGraphGenerator& gen) {
  (void)cosmos;
  return workload::load_papers(db, gen);
}

inline kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

inline kv::DBConfig ref_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::RefRecord::kBytes;
  config.extractor = workload::ref_key;
  return config;
}

}  // namespace ndpgen::bench
