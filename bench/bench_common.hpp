// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "obs/json.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::bench {

/// Scale divisor for dataset-level benches; override with NDPGEN_SCALE.
/// Virtual times of throughput-bound experiments (SCAN) are multiplied
/// back to full scale (linear in the flash-bound regime); latency-bound
/// experiments (GET) are reported unscaled.
inline std::uint64_t scale_divisor(std::uint64_t fallback = 128) {
  if (const char* env = std::getenv("NDPGEN_SCALE")) {
    const auto value = std::strtoull(env, nullptr, 10);
    if (value >= 1) return value;
  }
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline double to_seconds(platform::SimTime time) {
  return static_cast<double>(time) / 1e9;
}

inline double to_millis(platform::SimTime time) {
  return static_cast<double>(time) / 1e6;
}

/// Builds a paper store at the given scale; returns records loaded.
inline std::uint64_t load_paper_store(platform::CosmosPlatform& cosmos,
                                      kv::NKV& db,
                                      const workload::PubGraphGenerator& gen) {
  (void)cosmos;
  return workload::load_papers(db, gen);
}

inline kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

inline kv::DBConfig ref_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::RefRecord::kBytes;
  config.extractor = workload::ref_key;
  return config;
}

/// Machine-readable companion to a bench's stdout tables: collects rows of
/// (series, x, value [, unit]) and writes them as BENCH_<name>.json into
/// $NDPGEN_BENCH_JSON_DIR (no file is written when the variable is unset).
/// Values are rendered with obs::json_fixed, so identical runs produce
/// byte-identical files.
class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {}

  void add(std::string series, std::string x, double value,
           std::string unit = {}) {
    rows_.push_back(Row{std::move(series), std::move(x), value,
                        std::move(unit)});
  }
  void add(std::string series, std::uint64_t x, double value,
           std::string unit = {}) {
    add(std::move(series), std::to_string(x), value, std::move(unit));
  }

  /// Writes BENCH_<name>.json; returns the path, or empty when disabled.
  std::string write() const {
    const char* dir = std::getenv("NDPGEN_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return {};
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return {};
    }
    out << "{\"bench\":\"" << obs::json_escape(name_) << "\",\"rows\":[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "{\"series\":\"" << obs::json_escape(row.series)
          << "\",\"x\":\"" << obs::json_escape(row.x)
          << "\",\"value\":" << obs::json_fixed(row.value);
      if (!row.unit.empty()) {
        out << ",\"unit\":\"" << obs::json_escape(row.unit) << "\"";
      }
      out << "}" << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "]}\n";
    std::fprintf(stderr, "bench: wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
    return path;
  }

 private:
  struct Row {
    std::string series;
    std::string x;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace ndpgen::bench
