// Ablation (§III-B): "keeping the data of different LSM-tree index
// components separated on different Flash chips avoids blocking of the
// entire bus by compaction jobs taking place as part of the LSM-tree
// merge."
//
// Placement is a trade-off: striping a level over ALL channels maximizes
// its stand-alone scan bandwidth, while giving each level its own channel
// group makes it immune to other levels' compaction traffic. The honest
// metric is therefore the SLOWDOWN a compaction-sized background job
// inflicts on a foreground scan, under each placement policy.
#include "bench_common.hpp"

using namespace ndpgen;

namespace {

struct Outcome {
  double alone_ms = 0;
  double contended_ms = 0;
  [[nodiscard]] double slowdown() const { return contended_ms / alone_ms; }
};

Outcome scan_outcome(std::uint32_t level_groups, std::uint64_t scale) {
  Outcome outcome;
  for (const bool background : {false, true}) {
    platform::CosmosPlatform cosmos;
    const workload::PubGraphGenerator generator(
        workload::PubGraphConfig{.scale_divisor = scale});

    auto db_config = bench::paper_db_config();
    db_config.level_groups = level_groups;
    auto placement = std::make_shared<kv::PlacementPolicy>(
        cosmos.flash().topology(), level_groups);
    db_config.shared_placement = placement;
    kv::NKV db(cosmos, db_config);
    workload::load_papers(db, generator, /*level=*/2);

    // Victim data on level 3 (own channel group when level_groups > 1).
    auto victim_config = bench::paper_db_config();
    victim_config.level_groups = level_groups;
    victim_config.shared_placement = placement;
    kv::NKV victim(cosmos, victim_config);
    workload::load_papers(victim, generator, /*level=*/3);

    if (background) {
      // Compaction-sized background I/O: read + rewrite all of level 3.
      for (const auto& table : victim.version().level(3)) {
        for (const auto& handle : table->blocks) {
          for (const auto page : handle.flash_pages) {
            const auto addr = cosmos.flash().delinearize(page);
            cosmos.flash().read_page(addr, [] {});
            cosmos.flash().charge_program(addr, [] {});
          }
        }
      }
    }

    const core::Framework framework;
    const auto compiled =
        framework.compile(workload::pubgraph_spec_source());
    const auto& artifacts = compiled.get("PaperScan");
    cosmos.attach_pe(artifacts.design);
    ndp::ExecutorConfig config;
    config.mode = ndp::ExecMode::kHardware;
    config.pe_indices = {0};
    config.result_key_extractor = workload::paper_result_key;
    ndp::HybridExecutor executor(db, artifacts.analyzed,
                                 artifacts.design.operators, config);
    const auto stats = executor.scan({{"year", "lt", 1990}});
    (background ? outcome.contended_ms : outcome.alone_ms) =
        bench::to_millis(stats.elapsed);
  }
  return outcome;
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(512);
  bench::print_header(
      "Ablation — per-level flash placement vs compaction interference",
      "Weber et al., IPPS'21, SIII-B (nKV placement)");
  std::printf("dataset: papers at 1/%llu scale; compaction-sized "
              "background job on another LSM level\n\n",
              static_cast<unsigned long long>(scale));

  const Outcome shared = scan_outcome(/*level_groups=*/1, scale);
  const Outcome isolated = scan_outcome(/*level_groups=*/4, scale);

  std::printf("%-40s %12s %14s %10s\n", "placement", "alone [ms]",
              "w/ compaction", "slowdown");
  std::printf("%-40s %12.2f %14.2f %9.2fx\n",
              "all levels share every channel", shared.alone_ms,
              shared.contended_ms, shared.slowdown());
  std::printf("%-40s %12.2f %14.2f %9.2fx\n",
              "levels on separate channel groups (nKV)", isolated.alone_ms,
              isolated.contended_ms, isolated.slowdown());

  std::printf("\n  [%c] with shared channels, compaction blocks the scan "
              "(%.2fx slowdown)\n",
              shared.slowdown() > 1.3 ? 'x' : ' ', shared.slowdown());
  std::printf("  [%c] channel-group separation makes the scan immune to "
              "compaction (%.2fx)\n",
              isolated.slowdown() < 1.1 ? 'x' : ' ', isolated.slowdown());
  std::printf("  note: isolation trades stand-alone bandwidth (the level "
              "owns fewer channels) for interference immunity.\n");
  return (shared.slowdown() > isolated.slowdown()) ? 0 : 1;
}
