// Replica integrity — scrub overhead, read-repair, and anti-entropy.
//
// The cluster's replicas only earn their cost if they stay *identical*;
// latent media rot silently breaks that. This bench drives the three
// integrity mechanisms through one story and prices the first:
//
//  1. calibrate saturation capacity of the scrub-free cluster with a
//     closed loop, then fix the offered load at 0.5x capacity (below the
//     knee, so p99 shifts are scrub contention, not queueing);
//  2. sweep the background scrubber's bandwidth share over
//     {off, 5%, 10%, 20%} on a fault-free cluster and measure foreground
//     p99 — the "foreground_p99" rows feed the dedicated
//     --scrub-overhead-threshold CI guard. The sweep runs CLOSED loop:
//     every latency component is then the service time of some inflated
//     sub-scan, so measured end-to-end overhead provably lands in
//     [0, share/(1-share)] (an open loop near the knee amplifies the
//     inflation through backlog growth and the bound does not apply);
//  3. replay the identical timeline with the "bit-rot" fault profile
//     armed, twice: with the patrol scrubber on (detection off the
//     critical path) and off (the foreground CRC check catches it and
//     read-repair re-fetches from a healthy replica). Both runs must
//     return byte-equal result counts to the rot-free baseline;
//  4. inject *wrong-data* rot (content rotted AND the index CRC rewritten
//     to match): every CRC check passes by construction, the patrol finds
//     nothing, and only an anti-entropy round — comparing logical
//     partition digests across replicas — localizes the divergence,
//     repairs the bad replica, and converges;
//  5. determinism: the rot + scrub timeline replays byte-identically,
//     host --threads never change the timeline at fixed --pes, and --pes
//     (which changes the modeled hardware, hence timing) never changes
//     the returned rows.
//
// All times are virtual; rows land in BENCH_fig_scrub_repair.json.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/pubgraph_cluster.hpp"
#include "host/service.hpp"

using namespace ndpgen;

namespace {

constexpr std::uint64_t kRequests = 96;
constexpr std::uint64_t kLoadSeed = 20210521;

struct RunResult {
  host::ServiceReport service;
  cluster::ClusterReport cluster;
  cluster::ScrubReport scrub;  ///< Summed over all members.
  cluster::AntiEntropyReport entropy;
};

RunResult run_cluster(std::uint64_t scale, std::uint64_t arrival_rate,
                      double scrub_share,
                      const fault::FaultProfile& device_fault,
                      std::uint32_t pes, std::uint32_t threads,
                      std::uint32_t closed_loop_clients = 0,
                      std::uint64_t requests = kRequests) {
  cluster::ClusterBuildConfig build;
  build.devices = 3;
  build.replication = 2;
  build.spares = 1;
  build.scale_divisor = scale;
  build.pes = pes;
  build.threads = threads;
  build.device_fault = device_fault;
  if (scrub_share > 0.0) {
    build.scrub.enabled = true;
    build.scrub.scrub_share = scrub_share;
  }
  const auto cluster = cluster::build_pubgraph_cluster(build);
  auto& coordinator = *cluster->coordinator;
  coordinator.arm_faults(requests);

  host::ServiceConfig service_config;
  service_config.tenants = 4;
  service_config.queue_depth = 16;
  service_config.result_key = workload::paper_result_key;

  host::LoadConfig load_config;
  load_config.tenants = 4;
  load_config.requests = requests;
  load_config.arrival_rate = std::max<std::uint64_t>(1, arrival_rate);
  load_config.closed_loop_clients = closed_loop_clients;
  load_config.key_space = cluster->generator.paper_count();
  load_config.seed = kLoadSeed;

  host::QueryService service(coordinator, service_config);
  host::LoadGenerator load(load_config);

  RunResult result;
  result.service = service.run(load);
  result.entropy = coordinator.run_anti_entropy();
  result.cluster = coordinator.report();
  if (coordinator.scrubbing()) {
    for (std::uint32_t d = 0; d < coordinator.device_count(); ++d) {
      const cluster::ScrubReport& r = coordinator.scrub_report(d);
      result.scrub.blocks_verified += r.blocks_verified;
      result.scrub.bytes_scanned += r.bytes_scanned;
      result.scrub.transient_recovered += r.transient_recovered;
      result.scrub.crc_failures += r.crc_failures;
    }
  }
  return result;
}

bool service_reports_equal(const host::ServiceReport& a,
                           const host::ServiceReport& b) {
  return a.submitted == b.submitted && a.retries == b.retries &&
         a.rejected_busy == b.rejected_busy && a.dropped == b.dropped &&
         a.completed == b.completed && a.results == b.results &&
         a.batches == b.batches && a.coalesced == b.coalesced &&
         a.max_batch == b.max_batch && a.makespan_ns == b.makespan_ns &&
         a.device_busy_ns == b.device_busy_ns && a.p50_ns == b.p50_ns &&
         a.p95_ns == b.p95_ns && a.p99_ns == b.p99_ns &&
         a.phases.ns == b.phases.ns;
}

bool cluster_reports_equal(const cluster::ClusterReport& a,
                           const cluster::ClusterReport& b) {
  return a.queries == b.queries && a.subscans == b.subscans &&
         a.subscan_failures == b.subscan_failures &&
         a.bitrot_blocks_injected == b.bitrot_blocks_injected &&
         a.integrity_failures == b.integrity_failures &&
         a.read_repairs == b.read_repairs && a.repairs == b.repairs &&
         a.bytes_repaired == b.bytes_repaired &&
         a.antientropy_rounds == b.antientropy_rounds;
}

bool scrub_reports_equal(const cluster::ScrubReport& a,
                         const cluster::ScrubReport& b) {
  return a.blocks_verified == b.blocks_verified &&
         a.bytes_scanned == b.bytes_scanned &&
         a.transient_recovered == b.transient_recovered &&
         a.crc_failures == b.crc_failures;
}

bool entropy_reports_equal(const cluster::AntiEntropyReport& a,
                           const cluster::AntiEntropyReport& b) {
  return a.partitions_checked == b.partitions_checked &&
         a.divergent_partitions == b.divergent_partitions &&
         a.divergent_leaves == b.divergent_leaves &&
         a.replicas_repaired == b.replicas_repaired &&
         a.bytes_repaired == b.bytes_repaired && a.converged == b.converged;
}

bool runs_equal(const RunResult& a, const RunResult& b) {
  return service_reports_equal(a.service, b.service) &&
         cluster_reports_equal(a.cluster, b.cluster) &&
         scrub_reports_equal(a.scrub, b.scrub) &&
         entropy_reports_equal(a.entropy, b.entropy);
}

void print_run(const char* label, const RunResult& run) {
  std::printf("%16s | %6llu %6llu %9.3f %9.3f %8llu %5llu %5llu\n", label,
              static_cast<unsigned long long>(run.service.completed),
              static_cast<unsigned long long>(run.service.results),
              bench::to_millis(run.service.p50_ns),
              bench::to_millis(run.service.p99_ns),
              static_cast<unsigned long long>(run.scrub.blocks_verified),
              static_cast<unsigned long long>(run.scrub.crc_failures),
              static_cast<unsigned long long>(run.cluster.repairs));
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(2048);
  bench::print_header(
      "Smart-SSD cluster — scrub overhead, read-repair, anti-entropy",
      "replica integrity in the NDP smart-storage deployment (this work)");
  std::printf("topology: 3 members, R=2, 1 spare; papers at 1/%llu scale "
              "(set NDPGEN_SCALE to change)\n\n",
              static_cast<unsigned long long>(scale));

  const fault::FaultProfile fault_free;
  auto rot_parse = fault::FaultProfile::parse("bit-rot");
  const fault::FaultProfile bit_rot = rot_parse.value_or_raise();
  auto wrong_parse =
      fault::FaultProfile::parse("bit-rot,device_bitrot_wrong_data=1");
  const fault::FaultProfile wrong_data = wrong_parse.value_or_raise();

  // --- 1. closed-loop capacity of the scrub-free cluster, then 0.5x.
  const RunResult saturated =
      run_cluster(scale, 1000, 0.0, fault_free, 1, 0,
                  /*closed_loop_clients=*/32, /*requests=*/64);
  const double capacity = saturated.service.throughput_rps;
  const auto arrival_rate =
      static_cast<std::uint64_t>(std::llround(capacity * 0.5));
  std::printf("closed-loop capacity: %.0f req/s; open-loop runs at "
              "0.5x = %llu req/s\n\n",
              capacity, static_cast<unsigned long long>(arrival_rate));

  // --- 2. scrub-share sweep, closed loop (4 clients, one per tenant) so
  // the share/(1-share) overhead bound is a theorem, not a hope.
  const double kShares[] = {0.0, 0.05, 0.10, 0.20};
  RunResult sweep[4];
  for (int i = 0; i < 4; ++i) {
    sweep[i] = run_cluster(scale, arrival_rate, kShares[i], fault_free, 1, 0,
                           /*closed_loop_clients=*/4);
  }
  const RunResult& baseline = sweep[0];

  // --- 3.+4. rot timelines: patrol detection, read-repair, wrong data.
  // The row-count reference is an OPEN-loop rot-free run — a closed loop
  // draws a different key sequence, so the sweep rows are not comparable.
  const RunResult rot_free =
      run_cluster(scale, arrival_rate, 0.0, fault_free, 1, 0);
  const RunResult rot_scrubbed =
      run_cluster(scale, arrival_rate, 0.10, bit_rot, 1, 0);
  const RunResult rot_foreground =
      run_cluster(scale, arrival_rate, 0.0, bit_rot, 1, 0);
  const RunResult rot_wrong_data =
      run_cluster(scale, arrival_rate, 0.10, wrong_data, 1, 0);

  std::printf("%16s | %6s %6s %9s %9s %8s %5s %5s\n", "run", "done", "rows",
              "p50 [ms]", "p99 [ms]", "scrubbed", "crc", "rep");
  print_run("scrub off", sweep[0]);
  print_run("scrub 5%", sweep[1]);
  print_run("scrub 10%", sweep[2]);
  print_run("scrub 20%", sweep[3]);
  print_run("rot-free ref", rot_free);
  print_run("rot+scrub", rot_scrubbed);
  print_run("rot+read-repair", rot_foreground);
  print_run("rot+wrong-data", rot_wrong_data);

  std::printf("\nwrong-data anti-entropy: %llu/%llu partitions divergent "
              "(%llu leaf buckets), %llu replica(s) repaired "
              "(%llu bytes), %s\n",
              static_cast<unsigned long long>(
                  rot_wrong_data.entropy.divergent_partitions),
              static_cast<unsigned long long>(
                  rot_wrong_data.entropy.partitions_checked),
              static_cast<unsigned long long>(
                  rot_wrong_data.entropy.divergent_leaves),
              static_cast<unsigned long long>(
                  rot_wrong_data.entropy.replicas_repaired),
              static_cast<unsigned long long>(
                  rot_wrong_data.entropy.bytes_repaired),
              rot_wrong_data.entropy.converged ? "converged" : "DIVERGED");

  // --- 5. determinism: byte-equal replay; at fixed pes=2 the host thread
  // count never changes the timeline; pes itself (different modeled
  // hardware, different timing) never changes the returned rows.
  const RunResult rerun =
      run_cluster(scale, arrival_rate, 0.10, bit_rot, 1, 0);
  const RunResult sharded =
      run_cluster(scale, arrival_rate, 0.10, bit_rot, 2, 1);
  const RunResult threaded =
      run_cluster(scale, arrival_rate, 0.10, bit_rot, 2, 4);
  const bool reproducible = runs_equal(rot_scrubbed, rerun);
  const bool thread_invariant = runs_equal(sharded, threaded);
  const bool pes_rows_invariant =
      sharded.service.results == rot_scrubbed.service.results &&
      sharded.service.completed == rot_scrubbed.service.completed &&
      entropy_reports_equal(sharded.entropy, rot_scrubbed.entropy);
  std::printf("determinism: rerun %s, threads 1/4 @ pes=2 %s, "
              "pes 1->2 rows %s\n",
              reproducible ? "identical" : "DIVERGED",
              thread_invariant ? "identical" : "DIVERGED",
              pes_rows_invariant ? "identical" : "DIVERGED");

  bench::JsonResult json("fig_scrub_repair");
  json.add("capacity", "closed", capacity, "rps");
  const char* kShareLabels[] = {"off", "0.05", "0.10", "0.20"};
  for (int i = 0; i < 4; ++i) {
    json.add("foreground_p99", kShareLabels[i],
             bench::to_millis(sweep[i].service.p99_ns), "ms");
    json.add("foreground_tput", kShareLabels[i],
             sweep[i].service.throughput_rps, "rps");
    json.add("scrub_blocks", kShareLabels[i],
             static_cast<double>(sweep[i].scrub.blocks_verified), "blocks");
  }
  json.add("repair", "bitrot_blocks",
           static_cast<double>(rot_scrubbed.cluster.bitrot_blocks_injected));
  json.add("repair", "scrub_crc_failures",
           static_cast<double>(rot_scrubbed.scrub.crc_failures));
  json.add("repair", "read_repairs",
           static_cast<double>(rot_foreground.cluster.read_repairs));
  json.add("repair", "wrong_data_divergent",
           static_cast<double>(rot_wrong_data.entropy.divergent_partitions));
  json.add("repair", "wrong_data_leaves",
           static_cast<double>(rot_wrong_data.entropy.divergent_leaves));
  json.write();

  // Shape checks — the ISSUE acceptance criteria for replica integrity.
  bool overhead_bounded = true;
  bool patrol_progresses = true;
  const double base_p99 = static_cast<double>(baseline.service.p99_ns);
  for (int i = 1; i < 4; ++i) {
    const double p99 = static_cast<double>(sweep[i].service.p99_ns);
    const double bound = kShares[i] / (1.0 - kShares[i]);
    // End-to-end overhead must land in [0, share/(1-share)]: the factor
    // only inflates the device sub-scan leg of the critical path.
    overhead_bounded = overhead_bounded && p99 >= base_p99 &&
                       p99 <= base_p99 * (1.0 + bound) + 1.0;
    patrol_progresses = patrol_progresses &&
                        sweep[i].scrub.blocks_verified > 0 &&
                        sweep[i].scrub.crc_failures == 0;
  }
  const bool scrub_detects =
      rot_scrubbed.cluster.bitrot_blocks_injected > 0 &&
      rot_scrubbed.scrub.crc_failures > 0 &&
      rot_scrubbed.cluster.repairs >= 1;
  const bool read_repairs =
      rot_foreground.cluster.bitrot_blocks_injected > 0 &&
      rot_foreground.cluster.read_repairs >= 1 &&
      rot_foreground.cluster.repairs >= 1;
  const bool results_equal =
      rot_scrubbed.service.completed == kRequests &&
      rot_foreground.service.completed == kRequests &&
      rot_scrubbed.service.results == rot_free.service.results &&
      rot_foreground.service.results == rot_free.service.results &&
      rot_wrong_data.service.results == rot_free.service.results &&
      rot_scrubbed.service.dropped == 0 &&
      rot_foreground.service.dropped == 0;
  const bool antientropy_converges =
      rot_wrong_data.scrub.crc_failures == 0 &&
      rot_wrong_data.entropy.divergent_partitions > 0 &&
      rot_wrong_data.entropy.divergent_leaves >=
          rot_wrong_data.entropy.divergent_partitions &&
      rot_wrong_data.entropy.replicas_repaired >= 1 &&
      rot_wrong_data.entropy.converged && baseline.entropy.converged &&
      baseline.entropy.divergent_partitions == 0;

  std::printf("\nshape checks:\n");
  std::printf("  [%c] foreground p99 overhead within the "
              "share/(1-share) model bound at every swept share\n",
              overhead_bounded ? 'x' : ' ');
  std::printf("  [%c] patrol read makes progress at every share and "
              "raises no false CRC alarms on clean media\n",
              patrol_progresses ? 'x' : ' ');
  std::printf("  [%c] background scrub detects injected rot off the "
              "critical path and triggers replica-sourced repair\n",
              scrub_detects ? 'x' : ' ');
  std::printf("  [%c] without scrub, the foreground CRC check triggers "
              "read-repair (%llu read-repair(s))\n",
              read_repairs ? 'x' : ' ',
              static_cast<unsigned long long>(
                  rot_foreground.cluster.read_repairs));
  std::printf("  [%c] every rot run returns byte-equal result counts to "
              "the rot-free baseline, zero drops\n",
              results_equal ? 'x' : ' ');
  std::printf("  [%c] wrong-data rot passes every CRC yet anti-entropy "
              "localizes, repairs and converges\n",
              antientropy_converges ? 'x' : ' ');
  std::printf("  [%c] rot + scrub timeline byte-deterministic "
              "(rerun, thread invariance, pes row invariance)\n",
              (reproducible && thread_invariant && pes_rows_invariant)
                  ? 'x'
                  : ' ');
  const bool ok = overhead_bounded && patrol_progresses && scrub_detects &&
                  read_repairs && results_equal && antientropy_converges &&
                  reproducible && thread_invariant && pes_rows_invariant;
  if (!ok) std::printf("\nFAIL: scrub-repair shape checks violated\n");
  return ok ? 0 : 1;
}
