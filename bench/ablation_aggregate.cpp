// Ablation (paper §VII outlook): on-device aggregation.
//
// "more computational and analytical tasks could also be performed using
// this architecture" — we generate a PaperScan PE with the aggregation
// extension and compare COUNT/SUM/MIN/MAX over a filtered scan:
//   * hardware NDP with the aggregate unit (result = 2 registers),
//   * hardware NDP filter + host-side aggregation of the result set,
//   * software NDP aggregation on the device ARM.
#include "bench_common.hpp"

#include "hwgen/template_builder.hpp"
#include "support/bytes.hpp"

using namespace ndpgen;

int main() {
  const std::uint64_t scale = bench::scale_divisor(512);
  bench::print_header(
      "Ablation — on-device aggregation (framework extension)",
      "Weber et al., IPPS'21, SVII outlook");
  std::printf("dataset: papers at 1/%llu scale; "
              "query: SUM(n_cited) WHERE year < 1990\n\n",
              static_cast<unsigned long long>(scale));

  platform::CosmosPlatform cosmos;
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  kv::NKV db(cosmos, bench::paper_db_config());
  workload::load_papers(db, generator);

  core::FrameworkOptions options;
  options.hw.enable_aggregation = true;
  const core::Framework framework(options);
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");
  cosmos.attach_pe(artifacts.design);
  const std::size_t pe = cosmos.pe_count() - 1;

  const std::vector<ndp::FilterPredicate> predicate = {{"year", "lt", 1990}};

  // 1. Hardware NDP with the aggregate unit.
  ndp::ExecutorConfig hw_config;
  hw_config.mode = ndp::ExecMode::kHardware;
  hw_config.pe_indices = {pe};
  ndp::HybridExecutor hw(db, artifacts.analyzed, artifacts.design.operators,
                         hw_config);
  const auto hw_agg = hw.aggregate(predicate, hwgen::AggOp::kSum, "n_cited");

  // 2. Hardware NDP filter, aggregation at the host (result set crosses
  //    the NVMe link first).
  std::vector<std::vector<std::uint8_t>> results;
  const auto hw_scan = hw.scan(predicate, &results);
  std::uint64_t host_sum = 0;
  for (const auto& record : results) {
    host_sum += support::get_u32(record, 20);  // n_cited in PaperResult.
  }

  // 3. Software NDP aggregation on the ARM core.
  ndp::ExecutorConfig sw_config;
  sw_config.mode = ndp::ExecMode::kSoftware;
  ndp::HybridExecutor sw(db, artifacts.analyzed, artifacts.design.operators,
                         sw_config);
  const auto sw_agg = sw.aggregate(predicate, hwgen::AggOp::kSum, "n_cited");

  std::printf("%-36s %12s %14s %14s\n", "strategy", "time [ms]",
              "NVMe bytes", "SUM(n_cited)");
  std::printf("%-36s %12.3f %14llu %14llu\n", "HW filter + HW aggregate",
              bench::to_millis(hw_agg.elapsed),
              static_cast<unsigned long long>(hw_agg.result_bytes),
              static_cast<unsigned long long>(hw_agg.raw_result));
  std::printf("%-36s %12.3f %14llu %14llu\n", "HW filter + host aggregate",
              bench::to_millis(hw_scan.elapsed),
              static_cast<unsigned long long>(hw_scan.result_bytes),
              static_cast<unsigned long long>(host_sum));
  std::printf("%-36s %12.3f %14llu %14llu\n", "SW filter + SW aggregate",
              bench::to_millis(sw_agg.elapsed),
              static_cast<unsigned long long>(sw_agg.result_bytes),
              static_cast<unsigned long long>(sw_agg.raw_result));

  const bool agree =
      hw_agg.raw_result == host_sum && hw_agg.raw_result == sw_agg.raw_result;
  std::printf("\n  [%c] all three strategies agree on the result\n",
              agree ? 'x' : ' ');
  std::printf("  [%c] on-device aggregation moves only the result "
              "registers across NVMe (%llu vs %llu bytes)\n",
              hw_agg.result_bytes < hw_scan.result_bytes ? 'x' : ' ',
              static_cast<unsigned long long>(hw_agg.result_bytes),
              static_cast<unsigned long long>(hw_scan.result_bytes));
  std::printf("  [%c] and is not slower than collecting the result set\n",
              hw_agg.elapsed <= hw_scan.elapsed ? 'x' : ' ');
  return agree ? 0 : 1;
}
