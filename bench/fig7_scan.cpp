// Fig. 7(b): SCAN runtimes — software NDP vs hardware NDP, generated PEs
// (this work) vs hand-crafted PEs [1].
//
// The paper scans the full publication graph (papers + references) with a
// value predicate. We run a scaled dataset and report full-scale virtual
// time (linear scaling: the hardware scan is flash-bandwidth-bound at
// ~200 MB/s aggregate). Paper-reported anchors: hand-crafted HW 5.512 s,
// generated HW 5.530 s (+0.018 s); software NDP is substantially slower.
#include "bench_common.hpp"

#include <chrono>

#include "hwgen/template_builder.hpp"
#include "hwsim/pe_sim.hpp"
#include "kv/block_format.hpp"

using namespace ndpgen;

namespace {

struct ScanOutcome {
  double papers_s = 0;
  double refs_s = 0;
  [[nodiscard]] double total() const { return papers_s + refs_s; }
};

enum class Variant { kSoftware, kHwBaseline, kHwGenerated };

const char* name_of(Variant variant) {
  switch (variant) {
    case Variant::kSoftware: return "SW (software NDP)";
    case Variant::kHwBaseline: return "HW hand-crafted [1]";
    case Variant::kHwGenerated: return "HW generated (ours)";
  }
  return "?";
}

double run_scan(kv::NKV& db, const core::ParserArtifacts& artifacts,
                Variant variant, platform::CosmosPlatform& cosmos,
                const std::vector<ndp::FilterPredicate>& predicates,
                kv::KeyExtractor result_key, std::uint64_t scale,
                bench::FaultCounters& faults) {
  ndp::ExecutorConfig config;
  config.result_key_extractor = std::move(result_key);
  if (variant == Variant::kSoftware) {
    config.mode = ndp::ExecMode::kSoftware;
  } else {
    config.mode = ndp::ExecMode::kHardware;
    hwgen::TemplateOptions options;
    if (variant == Variant::kHwBaseline) {
      options.flavor = hwgen::DesignFlavor::kHandcraftedBaseline;
      options.static_payload_bytes =
          kv::records_per_block(artifacts.analyzed.input.storage_bytes()) *
          artifacts.analyzed.input.storage_bytes();
    }
    const auto design = hwgen::build_pe_design(artifacts.analyzed, options);
    cosmos.attach_pe(design);
    config.pe_indices = {cosmos.pe_count() - 1};
  }
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, config);
  const auto stats = executor.scan(predicates);
  faults.accumulate(stats);
  return bench::to_seconds(stats.elapsed) * static_cast<double>(scale);
}

}  // namespace

int main() {
  const std::uint64_t scale = bench::scale_divisor(256);
  bench::print_header(
      "Fig. 7(b) — SCAN execution times (full-scale seconds, virtual time)",
      "Weber et al., IPPS'21, Fig. 7(b)");
  std::printf("dataset: publication graph at 1/%llu scale "
              "(set NDPGEN_SCALE to change)\n\n",
              static_cast<unsigned long long>(scale));

  const core::Framework framework;
  const auto compiled = framework.compile(workload::pubgraph_spec_source());
  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  const fault::FaultProfile fault_profile = bench::fault_profile_from_env();
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }

  std::printf("%-22s %12s %12s %12s\n", "variant", "papers [s]", "refs [s]",
              "total [s]");
  bench::JsonResult json("fig7_scan");
  ScanOutcome outcomes[3];
  const Variant variants[] = {Variant::kSoftware, Variant::kHwBaseline,
                              Variant::kHwGenerated};
  for (int v = 0; v < 3; ++v) {
    // Fresh platform per variant so flash/DES state never leaks across.
    // The two stores share the device, so they must share the placement
    // policy (one physical page allocator per flash device).
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = fault_profile;
    platform::CosmosPlatform cosmos(cosmos_config);
    // Evaluation placement: stripe over every channel (group count 1) so
    // the scan sees the full ~200 MB/s aggregate (§III-B parallelism).
    auto placement = std::make_shared<kv::PlacementPolicy>(
        cosmos.flash().topology(), 1);
    auto papers_config = bench::paper_db_config();
    papers_config.shared_placement = placement;
    kv::NKV papers(cosmos, papers_config);
    workload::load_papers(papers, generator);
    auto refs_config = bench::ref_db_config();
    refs_config.shared_placement = placement;
    kv::NKV refs(cosmos, refs_config);
    workload::load_refs(refs, generator);

    bench::FaultCounters faults;
    outcomes[v].papers_s = run_scan(
        papers, compiled.get("PaperScan"), variants[v], cosmos,
        {{"year", "lt", 1990}}, workload::paper_result_key, scale, faults);
    outcomes[v].refs_s = run_scan(
        refs, compiled.get("RefScan"), variants[v], cosmos,
        {{"dst", "ge", generator.paper_count() / 4},
         {"dst", "lt", generator.paper_count() / 2}},
        workload::ref_key, scale, faults);
    std::printf("%-22s %12.3f %12.3f %12.3f\n", name_of(variants[v]),
                outcomes[v].papers_s, outcomes[v].refs_s,
                outcomes[v].total());
    json.add(name_of(variants[v]), "papers", outcomes[v].papers_s, "s");
    json.add(name_of(variants[v]), "refs", outcomes[v].refs_s, "s");
    json.add(name_of(variants[v]), "total", outcomes[v].total(), "s");
    if (fault_profile.any_enabled()) {
      std::printf("%-22s degraded media: %llu retried, %llu uncorrectable, "
                  "%llu degraded to SW\n", "",
                  static_cast<unsigned long long>(faults.blocks_retried),
                  static_cast<unsigned long long>(
                      faults.uncorrectable_blocks),
                  static_cast<unsigned long long>(
                      faults.blocks_degraded_to_software));
      bench::add_fault_rows(json, name_of(variants[v]), faults);
    }
  }

  // Fig. 10 dimension: replicate the generated PE over disjoint flash
  // channel shards (--pes). Flash scheduling stays shared (honest bus
  // serialization); the PE phase combines max-over-shards, so the sweep
  // shows channel-parallel scaling, not a free N-fold speedup.
  std::printf("\nmulti-PE sweep (HW generated, papers scan):\n");
  std::printf("%6s %12s %20s %10s\n", "PEs", "papers [s]", "PE phase [cyc]",
              "speedup");
  std::uint64_t serial_pe_cycles = 0;
  for (const std::uint32_t pes : {1u, 2u, 4u, 8u}) {
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = fault_profile;
    platform::CosmosPlatform cosmos(cosmos_config);
    auto placement = std::make_shared<kv::PlacementPolicy>(
        cosmos.flash().topology(), 1);
    auto papers_config = bench::paper_db_config();
    papers_config.shared_placement = placement;
    kv::NKV papers(cosmos, papers_config);
    workload::load_papers(papers, generator);

    const auto& artifacts = compiled.get("PaperScan");
    ndp::ExecutorConfig config;
    config.result_key_extractor = workload::paper_result_key;
    config.mode = ndp::ExecMode::kHardware;
    config.num_pes = pes;
    cosmos.attach_pe(hwgen::build_pe_design(artifacts.analyzed, {}));
    config.pe_indices = {cosmos.pe_count() - 1};
    ndp::HybridExecutor executor(papers, artifacts.analyzed,
                                 artifacts.design.operators, config);
    const auto stats = executor.scan({{"year", "lt", 1990}});
    if (pes == 1) serial_pe_cycles = stats.pe_phase_cycles;
    const double seconds =
        bench::to_seconds(stats.elapsed) * static_cast<double>(scale);
    const double speedup =
        stats.pe_phase_cycles == 0
            ? 0.0
            : static_cast<double>(serial_pe_cycles) /
                  static_cast<double>(stats.pe_phase_cycles);
    std::printf("%6u %12.3f %20llu %9.2fx\n", pes, seconds,
                static_cast<unsigned long long>(stats.pe_phase_cycles),
                speedup);
    const std::string series =
        "HW generated, " + std::to_string(pes) + " PEs";
    json.add(series, "papers", seconds, "s");
    json.add(series, "pe_phase_cycles",
             static_cast<double>(stats.pe_phase_cycles), "cycles");
    json.add(series, "pe_phase_speedup", speedup, "x");
    // Cycle attribution (ns rows are informational — the regression guard
    // only arms "s"/"ms"/"cycles"/"x" units, so these need no baseline).
    for (std::size_t p = 0; p < obs::kRequestPhaseCount; ++p) {
      const auto phase = static_cast<obs::RequestPhase>(p);
      json.add(series, "phase_" + std::string(obs::phase_name(phase)),
               static_cast<double>(stats.phases[phase]), "ns");
    }
    cosmos.publish_metrics();
    const auto& metrics = cosmos.observability().metrics;
    if (metrics.contains("hwsim.idle_cycle_fraction")) {
      json.add(series, "idle_cycle_fraction",
               static_cast<double>(
                   metrics.gauge_value("hwsim.idle_cycle_fraction")),
               "permille");
    }
  }
  // Simulator throughput: wall-clock PE-kernel cycles simulated per second
  // in exact vs fast mode, same generated PaperScan PE, same chunk
  // sequence. The virtual outcome is mode-independent (checked below);
  // only the wall clock moves. The rows use the "cyc/s" / "ratio" units
  // so the baseline guard never compares them across machines — the
  // dedicated --sim-throughput-threshold guard in check_bench_regression
  // holds the fast/exact ratio within one run instead.
  std::printf("\nsim throughput (HW generated, papers chunks, wall clock):\n");
  {
    const auto& artifacts = compiled.get("PaperScan");
    const auto design = hwgen::build_pe_design(artifacts.analyzed, {});
    const std::uint32_t record_bytes =
        static_cast<std::uint32_t>(artifacts.analyzed.input.storage_bytes());
    const std::uint32_t payload_bytes = (32'000 / record_bytes) * record_bytes;
    constexpr int kChunks = 64;
    double cycles_per_s[2] = {0, 0};
    std::uint64_t virtual_cycles[2] = {0, 0};
    std::uint64_t matched[2] = {0, 0};
    const hwsim::SimMode modes[2] = {hwsim::SimMode::kExact,
                                     hwsim::SimMode::kFast};
    for (int m = 0; m < 2; ++m) {
      hwsim::PETestBench pe_bench(
          design, hwsim::PEBenchConfig{.sim_mode = modes[m]});
      std::vector<std::uint8_t> payload(payload_bytes);
      std::uint64_t lcg = 0x243F6A8885A308D3ull;  // deterministic content
      for (auto& byte : payload) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        byte = static_cast<std::uint8_t>(lcg >> 56);
      }
      pe_bench.memory().write_bytes(0, payload);
      const hwgen::CompareOp* lt = artifacts.design.operators.find("lt");
      for (std::uint32_t s = 0; s < design.filter_stage_count(); ++s) {
        pe_bench.set_filter(s, 0, lt->encoding, 1u << 30);
      }
      // One untimed warm-up chunk per mode (first-touch page faults and
      // lazy allocations would otherwise dominate the fast path, whose
      // whole timed window is a few milliseconds), then best-of-kReps
      // timing: the minimum wall time rejects scheduler noise on shared
      // runners. Virtual cycles per repetition are mode-independent and
      // constant, so cyc/s uses the per-rep virtual delta.
      (void)pe_bench.run_chunk(0, 1 << 20, payload_bytes);
      constexpr int kReps = 3;
      double best_wall = 0.0;
      std::uint64_t rep_cycles = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const std::uint64_t rep_start_cycles = pe_bench.kernel().now();
        const auto wall_start = std::chrono::steady_clock::now();
        for (int c = 0; c < kChunks; ++c) {
          matched[m] +=
              pe_bench.run_chunk(0, 1 << 20, payload_bytes).tuples_out;
        }
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall_start;
        rep_cycles = pe_bench.kernel().now() - rep_start_cycles;
        if (rep == 0 || wall.count() < best_wall) best_wall = wall.count();
      }
      virtual_cycles[m] = rep_cycles;
      cycles_per_s[m] = static_cast<double>(rep_cycles) / best_wall;
    }
    const double speedup = cycles_per_s[0] > 0
                               ? cycles_per_s[1] / cycles_per_s[0]
                               : 0.0;
    std::printf("%8s %16s %16s\n", "mode", "cycles", "cyc/s");
    std::printf("%8s %16llu %16.0f\n", "exact",
                static_cast<unsigned long long>(virtual_cycles[0]),
                cycles_per_s[0]);
    std::printf("%8s %16llu %16.0f\n", "fast",
                static_cast<unsigned long long>(virtual_cycles[1]),
                cycles_per_s[1]);
    std::printf("  fast-forward speedup: %.1fx\n", speedup);
    std::printf("  [%c] virtual results identical across modes "
                "(%llu cycles, %llu matches)\n",
                (virtual_cycles[0] == virtual_cycles[1] &&
                 matched[0] == matched[1])
                    ? 'x'
                    : ' ',
                static_cast<unsigned long long>(virtual_cycles[1]),
                static_cast<unsigned long long>(matched[1]));
    json.add("sim_throughput", "exact", cycles_per_s[0], "cyc/s");
    json.add("sim_throughput", "fast", cycles_per_s[1], "cyc/s");
    json.add("sim_throughput", "speedup", speedup, "ratio");
  }
  json.write();

  std::printf("\npaper-reported anchors (their testbed, absolute):\n");
  std::printf("  HW hand-crafted [1]: 5.512 s   HW generated: 5.530 s "
              "(+0.018 s)\n");
  std::printf("shape checks:\n");
  const double hw_gap =
      outcomes[2].total() - outcomes[1].total();
  std::printf("  [%c] HW scan faster than SW scan (%.3f s vs %.3f s)\n",
              outcomes[2].total() < outcomes[0].total() ? 'x' : ' ',
              outcomes[2].total(), outcomes[0].total());
  std::printf("  [%c] generated ~= hand-crafted (gap %.3f s, %.1f%%; ours "
              "is marginally faster — the configurable Store Unit skips "
              "the static write-back padding)\n",
              std::abs(hw_gap) < 0.03 * outcomes[1].total() ? 'x' : ' ',
              hw_gap, 100.0 * hw_gap / outcomes[1].total());
  return 0;
}
