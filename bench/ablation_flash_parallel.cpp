// Ablation (§III-B): "By distributing data on independent Flash channels
// and LUNs, nKV facilitates parallel access and processing of data."
//
// Sweeps the flash topology (controllers x LUNs) and measures the virtual
// time to stream the same dataset off flash: LUN parallelism hides the
// page-read latency (tR) under the bus transfers, and the second Tiger4
// controller doubles the aggregate bandwidth to the paper's ~200 MB/s.
#include <cstdio>

#include "kv/db.hpp"
#include "platform/cosmos.hpp"
#include "workload/pubgraph.hpp"

using namespace ndpgen;

namespace {

double streaming_mbps(std::uint32_t controllers, std::uint32_t luns) {
  platform::CosmosConfig config;
  config.flash.controllers = controllers;
  config.flash.channels_per_controller = 1;
  config.flash.luns_per_channel = luns;
  platform::CosmosPlatform cosmos(config);

  const workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = 256});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  db_config.level_groups = 1;  // Use every LUN for the one level.
  kv::NKV db(cosmos, db_config);
  workload::load_papers(db, generator);

  std::vector<std::uint64_t> pages;
  for (const auto& table : db.version().recency_ordered()) {
    for (const auto& block : table->blocks) {
      pages.insert(pages.end(), block.flash_pages.begin(),
                   block.flash_pages.end());
    }
  }
  const platform::SimTime t0 = cosmos.events().now();
  for (const auto page : pages) {
    cosmos.flash().read_page(cosmos.flash().delinearize(page), [] {});
  }
  cosmos.events().run();
  const double seconds =
      static_cast<double>(cosmos.events().now() - t0) / 1e9;
  return static_cast<double>(pages.size()) * 16 * 1024 / seconds / 1e6;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — flash controller/LUN parallelism\n");
  std::printf("==============================================================\n\n");

  std::printf("%12s %10s %14s\n", "controllers", "luns/ch", "stream MB/s");
  double previous = 0;
  bool monotone = true;
  double two_ctrl_four_luns = 0;
  for (const auto [controllers, luns] :
       {std::pair{1u, 1u}, {1u, 2u}, {1u, 4u}, {2u, 1u}, {2u, 4u}}) {
    const double mbps = streaming_mbps(controllers, luns);
    std::printf("%12u %10u %14.1f\n", controllers, luns, mbps);
    monotone &= mbps >= previous * 0.95;
    previous = mbps;
    if (controllers == 2 && luns == 4) two_ctrl_four_luns = mbps;
  }

  std::printf("\n  [%c] parallelism scales streaming bandwidth\n",
              monotone ? 'x' : ' ');
  std::printf("  [%c] two Tiger4 controllers with LUN interleaving reach "
              "the paper's ~200 MB/s (%.1f)\n",
              two_ctrl_four_luns > 180 && two_ctrl_four_luns < 220 ? 'x'
                                                                   : ' ',
              two_ctrl_four_luns);
  return monotone ? 0 : 1;
}
