// Ablation (§V text): "due to the use of elastic pipelines, additional
// filtering stages will only add very small increases to the overall
// execution times. Since the filtering stages are able to process a tuple
// per cycle, the increase in latency of additional filtering stages will
// be marginal."
//
// Measures cycle counts of 1..5-stage PEs over the same 256-bit tuple
// stream in the cycle-accurate simulator.
#include <cstdio>

#include "core/framework.hpp"
#include "hwsim/pe_sim.hpp"
#include "workload/synth.hpp"

using namespace ndpgen;

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — pipeline latency of chained filter stages\n");
  std::printf("==============================================================\n\n");

  const core::Framework framework;
  constexpr std::uint64_t kTuples = 500;
  const auto data = workload::synth_tuples(256, kTuples, 3);

  std::printf("%8s %12s %14s %16s\n", "stages", "cycles", "vs 1 stage",
              "cycles/tuple");
  std::uint64_t base_cycles = 0;
  bool marginal = true;
  for (std::uint32_t stages = 1; stages <= 5; ++stages) {
    const auto compiled =
        framework.compile(workload::synth_spec(256, false, stages));
    hwsim::PETestBench bench(compiled.get("Synth").design);
    bench.memory().write_bytes(0, data);
    for (std::uint32_t s = 0; s < stages; ++s) {
      bench.set_filter(s, s % 8, 6 /* nop */, 0);
    }
    const auto stats = bench.run_chunk(
        0, 1 << 20, static_cast<std::uint32_t>(data.size()));
    if (stages == 1) base_cycles = stats.cycles;
    const double delta = 100.0 *
                         (static_cast<double>(stats.cycles) -
                          static_cast<double>(base_cycles)) /
                         static_cast<double>(base_cycles);
    std::printf("%8u %12llu %+13.2f%% %16.2f\n", stages,
                static_cast<unsigned long long>(stats.cycles), delta,
                static_cast<double>(stats.cycles) / kTuples);
    marginal &= stats.cycles < base_cycles + 4 * stages;
  }
  std::printf("\n  [%c] extra stages add only pipeline-fill latency "
              "(1 tuple/cycle/stage)\n",
              marginal ? 'x' : ' ');
  return marginal ? 0 : 1;
}
