// Micro-benchmarks: KV-store substrate (skip list, block codec, store ops).
#include <benchmark/benchmark.h>

#include "kv/block_format.hpp"
#include "kv/db.hpp"
#include "kv/skiplist.hpp"
#include "platform/cosmos.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace {

using namespace ndpgen;

std::vector<std::uint8_t> make_record(std::uint64_t key) {
  std::vector<std::uint8_t> record;
  support::put_u64(record, key);
  support::put_u64(record, key * 31);
  return record;
}

kv::Key extract(std::span<const std::uint8_t> record) {
  return kv::Key{support::get_u64(record, 0), 0};
}

void BM_SkipListInsert(benchmark::State& state) {
  support::Xoshiro256 rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    kv::SkipList<std::uint64_t, std::uint64_t> list;
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      list.insert(rng(), static_cast<std::uint64_t>(i));
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(1024)->Arg(16384);

void BM_SkipListLookup(benchmark::State& state) {
  kv::SkipList<std::uint64_t, std::uint64_t> list;
  support::Xoshiro256 rng(2);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 16384; ++i) {
    keys.push_back(rng());
    list.insert(keys.back(), 1);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.find(keys[cursor++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListLookup);

void BM_BlockEncode(benchmark::State& state) {
  const auto record = make_record(1);
  for (auto _ : state) {
    kv::DataBlockBuilder builder(16);
    while (builder.has_space()) builder.add(record);
    benchmark::DoNotOptimize(builder.finish());
  }
  state.SetBytesProcessed(state.iterations() * 32 * 1024);
}
BENCHMARK(BM_BlockEncode);

void BM_BlockDecode(benchmark::State& state) {
  kv::DataBlockBuilder builder(16);
  while (builder.has_space()) builder.add(make_record(7));
  const auto block = builder.finish();
  for (auto _ : state) {
    const auto trailer = kv::read_trailer(block);
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < trailer.record_count; ++i) {
      sum += kv::block_record(block, trailer, i)[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * 32 * 1024);
}
BENCHMARK(BM_BlockDecode);

void BM_StorePut(benchmark::State& state) {
  platform::CosmosPlatform cosmos;
  kv::DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  kv::NKV db(cosmos, config);
  std::uint64_t key = 0;
  for (auto _ : state) {
    db.put(make_record(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePut);

void BM_TimedFlush(benchmark::State& state) {
  // Virtual cost of a flush under the timed write path, per flushed byte.
  platform::CosmosPlatform cosmos;
  kv::DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  config.timed_writes = true;
  kv::NKV db(cosmos, config);
  std::uint64_t key = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 4000; ++i) db.put(make_record(key++));
    state.ResumeTiming();
    db.flush();
  }
  state.SetBytesProcessed(state.iterations() * 4000 * 16);
  state.counters["virtual_ms"] =
      static_cast<double>(cosmos.events().now()) / 1e6;
}
BENCHMARK(BM_TimedFlush);

void BM_Compaction(benchmark::State& state) {
  // Wall-clock cost of merging `range(0)` overlapping C1 tables.
  for (auto _ : state) {
    state.PauseTiming();
    platform::CosmosPlatform cosmos;
    kv::DBConfig config;
    config.record_bytes = 16;
    config.extractor = extract;
    config.auto_flush = false;
    config.auto_compact = false;
    kv::NKV db(cosmos, config);
    for (std::int64_t f = 0; f < state.range(0); ++f) {
      for (std::uint64_t k = 0; k < 5000; ++k) {
        db.put(make_record(k * static_cast<std::uint64_t>(state.range(0)) +
                           static_cast<std::uint64_t>(f)));
      }
      db.flush();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.compact());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5000);
}
BENCHMARK(BM_Compaction)->Arg(4)->Arg(8);

void BM_StoreGetAfterFlush(benchmark::State& state) {
  platform::CosmosPlatform cosmos;
  kv::DBConfig config;
  config.record_bytes = 16;
  config.extractor = extract;
  config.auto_flush = false;
  kv::NKV db(cosmos, config);
  std::uint64_t next = 0;
  db.bulk_load_sorted(
      2,
      [&](std::vector<std::uint8_t>& record) {
        if (next >= 100'000) return false;
        record = make_record(next++);
        return true;
      },
      50'000);
  support::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.get(kv::Key{rng.below(100'000), 0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreGetAfterFlush);

}  // namespace
