// Micro-benchmarks: specification front-end and generator throughput.
#include <benchmark/benchmark.h>

#include "core/framework.hpp"
#include "hwgen/resource_model.hpp"
#include "hwgen/swif_generator.hpp"
#include "hwgen/template_builder.hpp"
#include "hwgen/verilog_emitter.hpp"
#include "spec/lexer.hpp"
#include "spec/parser.hpp"
#include "workload/pubgraph.hpp"
#include "workload/synth.hpp"

namespace {

using namespace ndpgen;

void BM_Lexer(benchmark::State& state) {
  const std::string& source = workload::pubgraph_spec_source();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::Lexer(source).tokenize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State& state) {
  const std::string& source = workload::pubgraph_spec_source();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::parse_spec(source));
  }
}
BENCHMARK(BM_Parser);

void BM_AnalyzeParser(benchmark::State& state) {
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_parser(module, "PaperScan"));
  }
}
BENCHMARK(BM_AnalyzeParser);

void BM_TemplateElaboration(benchmark::State& state) {
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  const auto analyzed = analysis::analyze_parser(module, "PaperScan");
  for (auto _ : state) {
    benchmark::DoNotOptimize(hwgen::build_pe_design(analyzed));
  }
}
BENCHMARK(BM_TemplateElaboration);

void BM_VerilogEmission(benchmark::State& state) {
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  const auto design =
      hwgen::build_pe_design(analysis::analyze_parser(module, "PaperScan"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hwgen::emit_verilog(design));
  }
}
BENCHMARK(BM_VerilogEmission);

void BM_SwifGeneration(benchmark::State& state) {
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  const auto design =
      hwgen::build_pe_design(analysis::analyze_parser(module, "PaperScan"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hwgen::generate_software_interface(design));
  }
}
BENCHMARK(BM_SwifGeneration);

void BM_FullCompile(benchmark::State& state) {
  const core::Framework framework;
  const auto source = workload::synth_spec(
      static_cast<std::uint32_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(framework.compile(source));
  }
}
BENCHMARK(BM_FullCompile)->Arg(64)->Arg(256)->Arg(1024);

void BM_ResourceEstimate(benchmark::State& state) {
  const auto module = spec::parse_spec(workload::pubgraph_spec_source());
  const auto design =
      hwgen::build_pe_design(analysis::analyze_parser(module, "PaperScan"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hwgen::estimate_pe(design, hwgen::SynthesisMode::kInContext));
  }
}
BENCHMARK(BM_ResourceEstimate);

}  // namespace
