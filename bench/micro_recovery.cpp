// Recovery-time micro-bench: how long (simulated) the device needs to come
// back from a power loss, versus how much committed state it must verify.
//
// Runs the crash harness at three points of a workload (early / middle /
// just-before-the-end), plus a full run with a power cut after the last
// step, and reports the recovery time the DES charged for the pointer-log,
// WAL and SST verification scans. Scales linearly with committed pages —
// the SST CRC scan dominates.
#include "bench_common.hpp"
#include "workload/crash_harness.hpp"

int main() {
  using namespace ndpgen;
  bench::print_header(
      "micro_recovery — crash-recovery time vs committed state",
      "crash-consistency model (DESIGN.md §7); no paper counterpart");

  workload::CrashHarnessConfig config;
  config.ops = 768;
  config.key_space = 256;
  config.memtable_bytes = 4 * 1024;
  const workload::CrashHarness harness(config);
  const std::uint64_t steps = harness.count_steps();
  std::printf("workload: %llu ops, %llu write steps\n\n",
              static_cast<unsigned long long>(config.ops),
              static_cast<unsigned long long>(steps));
  std::printf("%-24s %10s %10s %10s %14s\n", "crash point", "acked ops",
              "tables", "sst pages", "recovery [ms]");

  bench::JsonResult json("micro_recovery");
  const struct {
    const char* label;
    std::uint64_t step;
  } points[] = {
      {"early (step S/8)", steps / 8},
      {"middle (step S/2)", steps / 2},
      {"late (step S-1)", steps - 1},
      {"clean end-of-run", 0},
  };
  for (const auto& point : points) {
    const workload::CrashRunResult result = harness.run(point.step);
    const double millis = bench::to_millis(result.report.elapsed);
    std::printf("%-24s %10llu %10llu %10llu %14.3f\n", point.label,
                static_cast<unsigned long long>(result.acked_ops),
                static_cast<unsigned long long>(
                    result.report.tables_restored),
                static_cast<unsigned long long>(
                    result.report.sst_blocks_verified * 2),
                millis);
    json.add("recovery_ms", point.label, millis, "ms");
  }
  std::printf(
      "\n  note: the verification scan parallelizes across flash channels,\n"
      "  so recovery time grows with the deepest per-channel page queue,\n"
      "  not the raw page count.\n");
  const std::string path = json.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
