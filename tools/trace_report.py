#!/usr/bin/env python3
"""Offline renderer/validator for ndpgen observability artifacts.

Inputs:
  * a Chrome trace_event JSON written by --trace (chrome://tracing format),
  * optionally the request-attribution JSON written by `ndpgen profile
    --attribution` ({"requests":[...],"totals":{...},"tenants":[...]}).

Modes:
  --validate    schema-check the trace (and attribution, when given):
                event fields, flow-event pairing, phase sums. Exit 1 with
                a diagnostic on the first violation; CI runs this against
                the bench-smoke artifacts.
  --structure   print a canonical, timing-free projection of the request
                flows (one line per flow id plus per-context span counts).
                The projection is invariant across --pes/--threads at a
                fixed seed, so diffing two runs' structures checks causal-
                link determinism without requiring byte-equal timings.
  (default)     human-readable report: event census from the trace, and —
                when --attribution is given — the per-phase breakdown,
                top-K slowest requests, and per-tenant p99 attribution.

Only the standard library is used.
"""

import argparse
import collections
import json
import sys

PHASES = ("queueing", "doorbell", "transfer", "flash", "pe", "merge")
COMPLETE_REQUIRED = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
FLOW_REQUIRED = ("name", "cat", "ph", "ts", "id", "pid", "tid")
KNOWN_PHASES = {"X", "i", "C", "M", "s", "t", "f"}


class ValidationError(Exception):
    pass


def fail(message):
    raise ValidationError(message)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{what} '{path}': {error}")


def validate_trace(trace):
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("trace: top level must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("trace: 'traceEvents' must be a list")
    flows = collections.defaultdict(lambda: {"s": [], "t": [], "f": []})
    for index, event in enumerate(events):
        where = f"trace event #{index}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{where}: unknown ph {ph!r}")
        if ph == "M":  # metadata (track names)
            continue
        required = FLOW_REQUIRED if ph in ("s", "t", "f") else (
            COMPLETE_REQUIRED if ph == "X" else ("name", "cat", "ph", "ts"))
        for key in required:
            if key not in event:
                fail(f"{where}: ph {ph!r} missing field {key!r}")
        if ph == "X" and event["dur"] < 0:
            fail(f"{where}: negative dur")
        if ph in ("s", "t", "f"):
            if not isinstance(event["id"], int) or event["id"] <= 0:
                fail(f"{where}: flow id must be a positive integer")
            if ph == "f" and event.get("bp") != "e":
                fail(f"{where}: flow end must carry bp='e'")
            flows[event["id"]][ph].append(event["ts"])
        ctx = event.get("args", {}).get("ctx")
        if ctx is not None and (not isinstance(ctx, int) or ctx <= 0):
            fail(f"{where}: args.ctx must be a positive integer")
    for flow_id in sorted(flows):
        record = flows[flow_id]
        if len(record["s"]) != 1 or len(record["f"]) != 1:
            fail(f"flow {flow_id}: expected exactly one begin and one end, "
                 f"got {len(record['s'])} begin(s), {len(record['f'])} "
                 f"end(s)")
        begin, end = record["s"][0], record["f"][0]
        if begin > end:
            fail(f"flow {flow_id}: begin ts {begin} after end ts {end}")
        for step in record["t"]:
            if not (begin <= step <= end):
                fail(f"flow {flow_id}: step ts {step} outside "
                     f"[{begin}, {end}]")
    return flows


def validate_attribution(attribution):
    for key in ("requests", "totals", "tenants"):
        if key not in attribution:
            fail(f"attribution: missing top-level key {key!r}")
    previous_id = None
    summed = {phase: 0 for phase in PHASES}
    for request in attribution["requests"]:
        rid = request["id"]
        if previous_id is not None and rid <= previous_id:
            fail(f"attribution: requests not sorted by id at id {rid}")
        previous_id = rid
        phases = request["phases"]
        total = 0
        for phase in PHASES:
            if phase not in phases:
                fail(f"attribution request {rid}: missing phase {phase!r}")
            total += phases[phase]
            summed[phase] += phases[phase]
        if total != request["latency_ns"]:
            fail(f"attribution request {rid}: phases sum {total} != "
                 f"latency {request['latency_ns']}")
        if request["completed_ns"] - request["arrival_ns"] != \
                request["latency_ns"]:
            fail(f"attribution request {rid}: latency inconsistent with "
                 f"arrival/completed")
    for phase in PHASES:
        if attribution["totals"].get(phase) != summed[phase]:
            fail(f"attribution totals.{phase}: "
                 f"{attribution['totals'].get(phase)} != per-request sum "
                 f"{summed[phase]}")
    tenant_requests = sum(t["requests"] for t in attribution["tenants"])
    if tenant_requests != len(attribution["requests"]):
        fail(f"attribution tenants: request counts sum to "
             f"{tenant_requests}, expected {len(attribution['requests'])}")
    return summed


def structure_lines(trace, flows):
    """Timing-free projection; byte-stable across --pes/--threads.

    Only pes-invariant facts are projected: the set of completed request
    flows (each with exactly one begin and one end — enforced by
    validate_trace) and the per-cat request-span census. Step counts and
    per-context span counts are deliberately excluded: which request heads
    a coalesced batch depends on device service time, which legitimately
    changes with the PE count.
    """
    del trace  # Flow records already carry everything pes-invariant.
    lines = []
    for flow_id in sorted(flows):
        record = flows[flow_id]
        lines.append(f"flow {flow_id} begin={len(record['s'])} "
                     f"end={len(record['f'])}")
    return lines


def render_report(trace, attribution, top_k):
    census = collections.Counter()
    for event in trace["traceEvents"]:
        if isinstance(event, dict) and "ph" in event:
            census[(event.get("cat", "?"), event.get("name", "?"),
                    event["ph"])] += 1
    print(f"trace: {len(trace['traceEvents'])} events")
    for (cat, name, ph), count in sorted(census.items()):
        print(f"  {cat:10s} {name:12s} ph={ph}  x{count}")
    if attribution is None:
        return
    requests = attribution["requests"]
    totals = attribution["totals"]
    grand = sum(totals[p] for p in PHASES) or 1
    print(f"\nPer-phase latency breakdown ({len(requests)} requests, "
          f"{sum(totals[p] for p in PHASES)} ns attributed):")
    print(f"  {'phase':10s} {'total_ns':>14s} {'share':>8s}")
    for phase in PHASES:
        print(f"  {phase:10s} {totals[phase]:>14d} "
              f"{100.0 * totals[phase] / grand:>7.1f}%")
    slowest = sorted(requests, key=lambda r: (-r["latency_ns"], r["id"]))
    print(f"\nTop-{min(top_k, len(slowest))} slowest requests:")
    for request in slowest[:top_k]:
        print(f"  request {request['id']} tenant {request['tenant']}: "
              f"{request['latency_ns']} ns, dominant phase "
              f"{request['dominant']}")
    print("\nPer-tenant p99 attribution:")
    for tenant in attribution["tenants"]:
        print(f"  tenant {tenant['tenant']}: {tenant['requests']} requests, "
              f"p99 {tenant['p99_latency_ns']} ns, tail dominated by "
              f"{tenant['p99_dominant']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace_event JSON (--trace)")
    parser.add_argument("--attribution",
                        help="attribution JSON (profile --attribution)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check and exit")
    parser.add_argument("--structure", action="store_true",
                        help="print the timing-free structural projection")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest requests to list (default 5)")
    args = parser.parse_args()

    try:
        trace = load_json(args.trace, "trace")
        flows = validate_trace(trace)
        attribution = None
        if args.attribution:
            attribution = load_json(args.attribution, "attribution")
            validate_attribution(attribution)
        if args.validate:
            suffix = (f", attribution {len(attribution['requests'])} "
                      f"requests" if attribution else "")
            print(f"OK: {len(trace['traceEvents'])} events, "
                  f"{len(flows)} request flows{suffix}")
            return 0
        if args.structure:
            for line in structure_lines(trace, flows):
                print(line)
            return 0
        render_report(trace, attribution, args.top)
        return 0
    except ValidationError as error:
        print(f"trace_report: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
