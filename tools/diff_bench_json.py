#!/usr/bin/env python3
"""Diff two BENCH_*.json files row-by-row, optionally ignoring series.

The sim-equivalence CI job runs the same bench once per kernel mode
(NDPGEN_SIM_MODE=exact / fast) and requires every virtual-time row to be
byte-identical between the two runs. Rows measuring *wall-clock* sim
throughput (series "sim_throughput") legitimately differ — that gap is
the whole point of the fast-forwarding kernel — so they are excluded
with --ignore-series.

Usage:
  diff_bench_json.py A.json B.json [--ignore-series sim_throughput ...]

Exit code 0 when all compared rows match exactly, 1 otherwise.
"""

import argparse
import json
import sys


def rows_of(path, ignored):
    with open(path) as fp:
        data = json.load(fp)
    return {
        f"{row['series']}|{row['x']}": (row["value"], row.get("unit", ""))
        for row in data["rows"]
        if row["series"] not in ignored
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument("--ignore-series", nargs="*", default=[],
                        help="series names excluded from the comparison")
    args = parser.parse_args()

    ignored = set(args.ignore_series)
    a = rows_of(args.a, ignored)
    b = rows_of(args.b, ignored)

    failures = []
    for key in sorted(set(a) | set(b)):
        if key not in a:
            failures.append(f"row {key} only in {args.b}")
        elif key not in b:
            failures.append(f"row {key} only in {args.a}")
        elif a[key] != b[key]:
            failures.append(f"row {key}: {a[key]} != {b[key]}")

    if failures:
        print(f"{args.a} vs {args.b}: {len(failures)} mismatch(es):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"{args.a} vs {args.b}: {len(a)} rows identical"
          + (f" (ignored series: {', '.join(sorted(ignored))})"
             if ignored else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
