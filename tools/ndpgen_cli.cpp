// ndpgen — command-line front end of the accelerator-generation toolflow.
//
// This is the developer-facing entry point the paper's §II motivates: a
// database engineer runs the tool on a C-style format specification and
// receives the hardware (Verilog), the HW/SW interface (header-only C
// library) and a resource report, with zero FPGA knowledge required. A
// `simulate` command additionally executes the generated PE on the
// cycle-level simulator for functional validation.
//
//   ndpgen compile <spec-file> [-o <outdir>]
//   ndpgen report  <spec-file>
//   ndpgen simulate <spec-file> <parser> [--tuples N] [--stage s:field,op,value]...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/pubgraph_cluster.hpp"
#include "core/framework.hpp"
#include "fault/fault_profile.hpp"
#include "host/service.hpp"
#include "hwgen/testbench_emitter.hpp"
#include "hwsim/pe_sim.hpp"
#include "hwsim/tuple_buffer.hpp"
#include "ndp/executor.hpp"
#include "ndp/predicate.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/request_trace.hpp"
#include "query/compiler.hpp"
#include "query/executor.hpp"
#include "query/plan_parser.hpp"
#include "query/plan_suite.hpp"
#include "query/reference_executor.hpp"
#include "query/serve.hpp"
#include "spec/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "workload/crash_harness.hpp"
#include "workload/pubgraph.hpp"

namespace {

using namespace ndpgen;

int usage() {
  std::fprintf(stderr,
               "usage: ndpgen <command> [args]\n"
               "  compile <spec-file> [-o <outdir>]   generate .v, _ndp.h "
               "and report\n"
               "  report  <spec-file>                 print layouts and "
               "resource estimates\n"
               "  simulate <spec-file> <parser> [--tuples N]\n"
               "           [--stage s:field,op,value]...\n"
               "                                      run the generated PE "
               "on random tuples\n"
               "  testbench <spec-file> <parser> [--tuples N]\n"
               "           [--stage s:field,op,value]\n"
               "                                      emit a self-checking "
               "Verilog testbench\n"
               "  scan [--dataset papers|refs] [--mode sw|hw|host]\n"
               "       [--scale N] [--predicate field,op,value]...\n"
               "       [--pes N] [--threads N] [--sim-mode exact|fast]\n"
               "       [--trace FILE] [--metrics FILE]\n"
               "       [--fault-profile preset|k=v,...]\n"
               "                                      run an NDP scan on the "
               "built-in pubgraph\n"
               "                                      workload over the full "
               "simulated platform\n"
               "  query --plan <name|file|text> [--mode hw|sw]\n"
               "       [--scale N] [--pes N] [--threads N]\n"
               "       [--sim-mode exact|fast]\n"
               "       [--fault-profile preset|k=v,...]\n"
               "       [--explain] [--no-check] [--rows N] [--serve]\n"
               "       [--list-plans]\n"
               "                                      compile a logical "
               "plan to chained PE\n"
               "                                      netlists + a SW "
               "tail, execute it on the\n"
               "                                      simulated device and "
               "byte-check the result\n"
               "                                      against the naive "
               "reference executor.\n"
               "                                      --mode sw forces the "
               "host fallback cut;\n"
               "                                      --serve streams the "
               "plan through the host\n"
               "                                      query service "
               "(filter/project tails only);\n"
               "                                      --plan also accepts "
               "a suite name (see\n"
               "                                      --list-plans) or "
               "inline plan text\n"
               "  serve [--tenants N] [--qd D] [--arrival-rate R]\n"
               "       [--requests N] [--batch B] [--weights a,b,...]\n"
               "       [--closed-loop C] [--think-us T] [--span K]\n"
               "       [--max-retries N] [--backoff-us T] [--seed S]\n"
               "       [--scale N] [--mode sw|hw|host] [--pes N]\n"
               "       [--threads N] [--predicate field,op,value]...\n"
               "       [--devices N] [--replication R] [--spares S]\n"
               "       [--scrub-share F]\n"
               "       [--trace FILE] [--metrics FILE]\n"
               "       [--sim-mode exact|fast]\n"
               "       [--fault-profile preset|k=v,...]\n"
               "                                      drive the multi-tenant "
               "host query service\n"
               "                                      (NVMe queue pairs, WRR "
               "arbitration, batching)\n"
               "                                      against the NDP "
               "executor; prints per-tenant\n"
               "                                      throughput and "
               "p50/p95/p99 latency.\n"
               "                                      --devices N > 1 serves "
               "from a cluster of N\n"
               "                                      smart SSDs with R-way "
               "replication, health-\n"
               "                                      driven failover, "
               "hedged reads and spare\n"
               "                                      rebuild (see "
               "DESIGN.md §11)\n"
               "  scrub [--devices N] [--replication R] [--spares S]\n"
               "       [--requests N] [--scale N] [--seed S]\n"
               "       [--scrub-share F] [--bandwidth-mbps B]\n"
               "       [--mode sw|hw|host] [--pes N] [--threads N]\n"
               "       [--trace FILE] [--metrics FILE]\n"
               "       [--sim-mode exact|fast]\n"
               "       [--fault-profile preset|k=v,...]\n"
               "                                      replica-integrity "
               "drill: serve a query\n"
               "                                      load over a cluster "
               "with background CRC\n"
               "                                      scrubbing and seeded "
               "bit-rot (default\n"
               "                                      profile: bit-rot), "
               "then run one\n"
               "                                      anti-entropy round "
               "and report scrub /\n"
               "                                      read-repair / "
               "digest-convergence results\n"
               "  profile [--workload scan|serve] [--mode sw|hw|host]\n"
               "       [--scale N] [--pes N] [--threads N] [--top K]\n"
               "       [--tenants N] [--qd D] [--requests N] [--batch B]\n"
               "       [--arrival-rate R] [--span K] [--seed S]\n"
               "       [--predicate field,op,value]...\n"
               "       [--attribution FILE] [--trace FILE] "
               "[--metrics FILE]\n"
               "       [--sim-mode exact|fast] "
               "[--fault-profile preset|k=v,...]\n"
               "                                      run the workload with "
               "the cycle-attribution\n"
               "                                      profiler: per-phase "
               "latency breakdown\n"
               "                                      (queueing/doorbell/"
               "transfer/flash/pe/merge),\n"
               "                                      top-K slowest "
               "requests, per-tenant p99\n"
               "                                      attribution, and the "
               "hwsim idle-cycle\n"
               "                                      fraction, plus an "
               "uninstrumented control run\n"
               "  recover [--ops N] [--crash-at N] [--torn-fraction F]\n"
               "       [--seed S] [--trace FILE] [--metrics FILE]\n"
               "                                      power-fail a durable "
               "store at write step N\n"
               "                                      (0 = end of workload), "
               "recover, verify the\n"
               "                                      crash-consistency "
               "contract and print the\n"
               "                                      recovery report "
               "(kv.recovery.* metrics)\n"
               "\n"
               "  simulate and scan accept --trace FILE (Chrome trace_event "
               "JSON for\n"
               "  chrome://tracing / Perfetto) and --metrics FILE (flat "
               "metrics JSON).\n"
               "  --pes N shards the scan across N parallel PE instances "
               "(multi-PE\n"
               "  scaling; results are byte-identical to --pes 1); "
               "--threads N caps the\n"
               "  host threads driving the shards (0 = one per shard).\n"
               "  --sim-mode picks the PE-kernel fidelity: exact ticks "
               "every cycle,\n"
               "  fast (the default, or NDPGEN_SIM_MODE) fast-forwards "
               "idle gaps and\n"
               "  replays chunks analytically — stats, metrics and traces "
               "are\n"
               "  byte-identical either way.\n"
               "  --fault-profile enables the deterministic storage "
               "reliability model;\n"
               "  presets: none, aged, degraded, stress, device-loss, "
               "bit-rot (bare\n"
               "  token; later k=v items override preset fields, e.g. "
               "\"aged,seed=7\");\n"
               "  keys: seed, read_ber, wear_alpha, retention_alpha, "
               "ecc_bits,\n"
               "  retry_factor, max_retries, bad_block_rate, silent_rate,\n"
               "  nvme_timeout_rate, nvme_max_retries, pe_fault_rate,\n"
               "  device_fault (crash|brownout|linkflap), "
               "device_fault_device,\n"
               "  device_fault_at_frac, device_fault_at_us, "
               "device_fault_duration_us,\n"
               "  brownout_factor, device_bitrot_blocks, "
               "device_bitrot_device,\n"
               "  device_bitrot_at_frac, device_bitrot_at_us, "
               "device_bitrot_wrong_data\n"
               "  (device_* keys act on serve/scrub --devices clusters).\n"
               "\n"
               "  exit codes: 0 ok, 2 usage, 10-20 by error kind "
               "(see README); serve\n"
               "  exits 18 (busy) when sustained overload dropped requests "
               "after retries,\n"
               "  19 (device-unavailable) when no live replica can serve a "
               "partition, and\n"
               "  20 (integrity) when every replica of a partition holds "
               "corrupt data;\n"
               "  query exits 21 (plan-invalid) with a caret diagnostic "
               "when the plan\n"
               "  does not lex, parse or validate.\n");
  return 2;
}

/// Parses --fault-profile's value or exits with the typed diagnostic.
fault::FaultProfile parse_fault_profile(const std::string& text) {
  auto parsed = fault::FaultProfile::parse(text);
  if (!parsed.ok()) {
    throw Error(parsed.status().kind, parsed.status().message);
  }
  return std::move(parsed).value();
}

/// Parses --sim-mode's value and exports NDPGEN_SIM_MODE so every config
/// default constructed later in the process (platform, shard benches,
/// cluster devices) inherits the same PE-kernel fidelity choice.
void set_sim_mode_flag(const std::string& text) {
  hwsim::SimMode mode;
  if (!hwsim::parse_sim_mode(text, &mode)) {
    throw Error(ErrorKind::kInvalidArg,
                "invalid --sim-mode '" + text + "' (expected exact|fast)");
  }
  setenv("NDPGEN_SIM_MODE", text.c_str(), 1);
}

/// Writes the trace and/or metrics files requested via --trace/--metrics.
void write_observability(const obs::Observability& obs,
                         const obs::TraceSink& sink,
                         const std::string& trace_path,
                         const std::string& metrics_path) {
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      throw Error(ErrorKind::kInvalidArg,
                  "cannot write trace file '" + trace_path + "'");
    }
    sink.write_json(out);
    std::fprintf(stderr, "wrote %s (%zu events)\n", trace_path.c_str(),
                 sink.event_count());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      throw Error(ErrorKind::kInvalidArg,
                  "cannot write metrics file '" + metrics_path + "'");
    }
    out << obs.metrics.dump_json();
    std::fprintf(stderr, "wrote %s (%zu metrics)\n", metrics_path.c_str(),
                 obs.metrics.size());
  }
}

/// Runs `body`; if it throws (typed Error or otherwise), invokes `flush`
/// best-effort before rethrowing. Commands wrap their simulation phase in
/// this so a run that dies with exit code 16/18 still leaves the
/// requested --trace/--metrics files behind — the failing run is exactly
/// the one whose trace you want to look at.
template <typename Body, typename Flush>
decltype(auto) with_flush_on_error(Body&& body, Flush&& flush) {
  try {
    return std::forward<Body>(body)();
  } catch (...) {
    try {
      flush();
    } catch (...) {
      // Best-effort only: a failed flush must never mask the original
      // error (and the original exit code).
    }
    throw;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw Error(ErrorKind::kInvalidArg, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void print_report(const core::ParserArtifacts& artifacts) {
  std::printf("parser %s\n", artifacts.analyzed.name.c_str());
  std::printf("  input : %s", artifacts.analyzed.input.dump().c_str());
  std::printf("  output: %s", artifacts.analyzed.output.dump().c_str());
  std::printf("  filter stages: %u, operators: %zu, chunk: %u KiB\n",
              artifacts.design.filter_stage_count(),
              artifacts.design.operators.size(),
              artifacts.analyzed.chunk_size_bytes / 1024);
  const auto& in_ctx = artifacts.resources_in_context;
  const auto& ooc = artifacts.resources_out_of_context;
  std::printf("  resources: %.0f slices in-context (%.2f%% of XC7Z045), "
              "%.0f out-of-context, %.0f BRAM36\n",
              in_ctx.total.slices, in_ctx.slice_percent(), ooc.total.slices,
              in_ctx.total.bram36);
  for (const auto& [name, estimate] : in_ctx.per_module) {
    std::printf("    %-18s %8.0f slices\n", name.c_str(), estimate.slices);
  }
}

int cmd_compile(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string outdir = ".";
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) outdir = args[++i];
  }
  const core::Framework framework;
  const auto compiled = framework.compile(read_file(args[0]));
  for (const auto& warning : compiled.warnings) {
    std::fprintf(stderr, "%s\n", warning.to_string().c_str());
  }
  std::filesystem::create_directories(outdir);
  for (const auto& artifacts : compiled.parsers) {
    const auto base =
        std::filesystem::path(outdir) / artifacts.analyzed.name;
    std::ofstream(base.string() + ".v") << artifacts.verilog;
    std::ofstream(base.string() + "_ndp.h") << artifacts.software_interface;
    std::printf("wrote %s.v (%zu B) and %s_ndp.h (%zu B)\n",
                base.c_str(), artifacts.verilog.size(), base.c_str(),
                artifacts.software_interface.size());
    print_report(artifacts);
  }
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const core::Framework framework;
  const auto compiled = framework.compile(read_file(args[0]));
  for (const auto& artifacts : compiled.parsers) print_report(artifacts);
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  std::uint64_t tuples = 64;
  std::string trace_path;
  std::string metrics_path;
  fault::FaultProfile fault_profile;
  struct StageArg {
    std::uint32_t stage;
    std::string field, op;
    std::uint64_t value;
  };
  std::vector<StageArg> stage_args;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--tuples" && i + 1 < args.size()) {
      tuples = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else if (args[i] == "--stage" && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      const auto colon = spec.find(':');
      if (colon == std::string::npos) return usage();
      const auto pieces = support::split(spec.substr(colon + 1), ',');
      if (pieces.size() != 3) return usage();
      stage_args.push_back(StageArg{
          static_cast<std::uint32_t>(
              std::strtoul(spec.substr(0, colon).c_str(), nullptr, 10)),
          pieces[0], pieces[1],
          std::strtoull(pieces[2].c_str(), nullptr, 0)});
    }
  }

  const core::Framework framework;
  const auto compiled = framework.compile(read_file(args[0]));
  const auto& artifacts = compiled.get(args[1]);
  const auto& layout = artifacts.analyzed.input;

  hwsim::PETestBench bench(artifacts.design);
  obs::TraceSink sink;
  if (!trace_path.empty()) bench.observability().trace = &sink;
  if (fault_profile.any_enabled()) {
    // A faulted simulation arms the ready/valid watchdog so a hung design
    // fails fast with a typed kSimulation error instead of running into
    // the (much larger) deadlock horizon.
    bench.kernel().set_watchdog(platform::TimingConfig{}.pe_watchdog_cycles);
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }
  // Random tuples.
  support::Xoshiro256 rng(1234);
  std::vector<std::uint8_t> data;
  data.reserve(tuples * layout.storage_bytes());
  for (std::uint64_t t = 0; t < tuples * layout.storage_bytes(); ++t) {
    data.push_back(static_cast<std::uint8_t>(rng()));
  }
  bench.memory().write_bytes(0, data);

  // Default stage config: nop everywhere.
  const auto nop = artifacts.design.operators.nop_encoding();
  for (std::uint32_t s = 0; s < artifacts.design.filter_stage_count(); ++s) {
    if (nop) bench.set_filter(s, 0, *nop, 0);
  }
  for (const auto& stage : stage_args) {
    const auto bound = ndp::bind_predicate(
        layout, artifacts.design.operators,
        ndp::FilterPredicate{stage.field, stage.op, stage.value});
    bench.set_filter(stage.stage, bound.field_select, bound.op_encoding,
                     bound.compare_value);
  }

  const auto stats = with_flush_on_error(
      [&] {
        return bench.run_chunk(0, 4 * 1024 * 1024,
                               static_cast<std::uint32_t>(data.size()));
      },
      [&] {
        write_observability(bench.observability(), sink, trace_path,
                            metrics_path);
      });
  std::printf("simulated %s: %llu tuples in, %llu out, %llu cycles "
              "(%.2f cyc/tuple, %.1f MB/s @100 MHz)\n",
              artifacts.analyzed.name.c_str(),
              static_cast<unsigned long long>(stats.tuples_in),
              static_cast<unsigned long long>(stats.tuples_out),
              static_cast<unsigned long long>(stats.cycles),
              static_cast<double>(stats.cycles) /
                  static_cast<double>(std::max<std::uint64_t>(1,
                                                              stats.tuples_in)),
              static_cast<double>(stats.payload_bytes_in) /
                  (static_cast<double>(stats.cycles) * 10e-9) / 1e6);
  for (std::size_t s = 0; s < stats.stage_pass_counts.size(); ++s) {
    std::printf("  stage %zu passed %llu\n", s,
                static_cast<unsigned long long>(stats.stage_pass_counts[s]));
  }
  write_observability(bench.observability(), sink, trace_path, metrics_path);
  return 0;
}

int cmd_scan(const std::vector<std::string>& args) {
  std::string dataset = "papers";
  std::string mode_name = "hw";
  std::uint64_t scale = 32768;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::string trace_path;
  std::string metrics_path;
  fault::FaultProfile fault_profile;
  std::vector<ndp::FilterPredicate> predicates;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--dataset" && i + 1 < args.size()) {
      dataset = args[++i];
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode_name = args[++i];
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--pes" && i + 1 < args.size()) {
      pes = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (pes == 0) return usage();
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--sim-mode" && i + 1 < args.size()) {
      set_sim_mode_flag(args[++i]);
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else if (args[i] == "--predicate" && i + 1 < args.size()) {
      const auto pieces = support::split(args[++i], ',');
      if (pieces.size() != 3) return usage();
      predicates.push_back(ndp::FilterPredicate{
          pieces[0], pieces[1],
          std::strtoull(pieces[2].c_str(), nullptr, 0)});
    } else {
      return usage();
    }
  }
  ndp::ExecMode mode;
  if (mode_name == "sw") {
    mode = ndp::ExecMode::kSoftware;
  } else if (mode_name == "hw") {
    mode = ndp::ExecMode::kHardware;
  } else if (mode_name == "host") {
    mode = ndp::ExecMode::kHostClassic;
  } else {
    return usage();
  }
  const bool papers = dataset == "papers";
  if (!papers && dataset != "refs") return usage();

  platform::CosmosConfig cosmos_config;
  cosmos_config.fault = fault_profile;
  platform::CosmosPlatform cosmos(cosmos_config);
  obs::TraceSink sink;
  if (!trace_path.empty()) cosmos.observability().trace = &sink;
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }

  core::Framework framework;
  const auto compiled =
      framework.compile(workload::pubgraph_spec_source());
  const std::string parser_name = papers ? "PaperScan" : "RefScan";
  const auto& artifacts = compiled.get(parser_name);

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  kv::DBConfig config;
  config.record_bytes =
      papers ? workload::PaperRecord::kBytes : workload::RefRecord::kBytes;
  config.extractor = papers ? workload::paper_key : workload::ref_key;
  kv::NKV db(cosmos, config);
  const std::uint64_t loaded =
      papers ? workload::load_papers(db, generator)
             : workload::load_refs(db, generator);

  if (predicates.empty()) {
    if (papers) {
      predicates.push_back(ndp::FilterPredicate{"year", "lt", 1990});
    } else {
      predicates.push_back(
          ndp::FilterPredicate{"dst", "lt", generator.paper_count() / 2});
    }
  }

  ndp::ExecutorConfig exec_config;
  exec_config.mode = mode;
  exec_config.num_pes = pes;
  exec_config.pe_threads = threads;
  exec_config.result_key_extractor =
      papers ? workload::paper_result_key : workload::ref_key;
  if (mode == ndp::ExecMode::kHardware) {
    exec_config.pe_indices = {
        framework.instantiate(compiled, parser_name, cosmos)};
  }
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);
  const auto stats = with_flush_on_error(
      [&] { return executor.scan(predicates); },
      [&] {
        cosmos.publish_metrics();
        write_observability(cosmos.observability(), sink, trace_path,
                            metrics_path);
      });

  std::printf(
      "scan %s [%s]: %llu records loaded, %llu blocks, %llu scanned, "
      "%llu matched, %llu results, %.3f ms virtual\n",
      dataset.c_str(), std::string(to_string(mode)).c_str(),
      static_cast<unsigned long long>(loaded),
      static_cast<unsigned long long>(stats.blocks),
      static_cast<unsigned long long>(stats.tuples_scanned),
      static_cast<unsigned long long>(stats.tuples_matched),
      static_cast<unsigned long long>(stats.results),
      static_cast<double>(stats.elapsed) / 1e6);
  if (mode == ndp::ExecMode::kHardware) {
    std::printf(
        "  PE phase: %u shard%s, %llu critical-path PE cycles\n",
        stats.shards, stats.shards == 1 ? "" : "s",
        static_cast<unsigned long long>(stats.pe_phase_cycles));
  }
  if (fault_profile.any_enabled()) {
    std::printf(
        "  degraded media: %llu blocks retried, %llu uncorrectable, "
        "%llu degraded to software\n",
        static_cast<unsigned long long>(stats.blocks_retried),
        static_cast<unsigned long long>(stats.uncorrectable_blocks),
        static_cast<unsigned long long>(stats.blocks_degraded_to_software));
  }

  cosmos.publish_metrics();
  write_observability(cosmos.observability(), sink, trace_path,
                      metrics_path);
  return 0;
}

/// The serve report block shared by the single-device and cluster paths.
void print_serve_report(ndp::ExecMode mode, std::uint32_t pes,
                        std::uint64_t loaded,
                        const host::ServiceConfig& service_config,
                        const host::LoadGenerator& load,
                        const host::ServiceReport& report) {
  std::printf(
      "serve [%s, %u PE%s]: %llu records loaded, %llu requests "
      "(%s, %u tenant%s, qd %u)\n",
      std::string(to_string(mode)).c_str(), pes, pes == 1 ? "" : "s",
      static_cast<unsigned long long>(loaded),
      static_cast<unsigned long long>(report.submitted),
      load.open_loop() ? "open loop" : "closed loop",
      service_config.tenants, service_config.tenants == 1 ? "" : "s",
      service_config.queue_depth);
  std::printf(
      "  completed %llu, dropped %llu (%llu kBusy rejections, "
      "%llu retries), %llu results\n",
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.dropped),
      static_cast<unsigned long long>(report.rejected_busy),
      static_cast<unsigned long long>(report.retries),
      static_cast<unsigned long long>(report.results));
  std::printf(
      "  offloads %llu (coalesced %llu, max batch %llu), device "
      "utilization %.1f%%\n",
      static_cast<unsigned long long>(report.batches),
      static_cast<unsigned long long>(report.coalesced),
      static_cast<unsigned long long>(report.max_batch),
      100.0 * report.utilization());
  std::printf(
      "  throughput %.1f req/s over %.3f ms virtual; latency p50 %.3f ms, "
      "p95 %.3f ms, p99 %.3f ms\n",
      report.throughput_rps,
      static_cast<double>(report.makespan_ns) / 1e6,
      static_cast<double>(report.p50_ns) / 1e6,
      static_cast<double>(report.p95_ns) / 1e6,
      static_cast<double>(report.p99_ns) / 1e6);
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const host::TenantReport& tr = report.tenants[t];
    std::printf(
        "  tenant %zu: %llu submitted, %llu completed, %llu dropped, "
        "%.1f req/s, p99 %.3f ms, SQ high-water %zu\n",
        t, static_cast<unsigned long long>(tr.submitted),
        static_cast<unsigned long long>(tr.completed),
        static_cast<unsigned long long>(tr.dropped), tr.throughput_rps,
        static_cast<double>(tr.p99_ns) / 1e6, tr.sq_high_water);
  }
}

/// Overload-drop epilogue shared by both serve paths: a run that dropped
/// requests after exhausting retries exits 18 (busy).
int serve_exit_code(const host::ServiceReport& report) {
  if (report.dropped > 0) {
    std::fprintf(stderr,
                 "ndpgen: serve dropped %llu request(s) after exhausting "
                 "retries — sustained overload (busy)\n",
                 static_cast<unsigned long long>(report.dropped));
    return exit_code(ErrorKind::kBusy);
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  host::ServiceConfig service_config;
  host::LoadConfig load_config;
  std::string mode_name = "hw";
  std::uint64_t scale = 32768;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::uint32_t devices = 1;
  std::uint32_t replication = 2;
  std::uint32_t spares = 1;
  double scrub_share = 0.0;  // 0 = scrubbing off.
  std::string trace_path;
  std::string metrics_path;
  fault::FaultProfile fault_profile;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tenants" && i + 1 < args.size()) {
      const auto tenants = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (tenants == 0) return usage();
      service_config.tenants = tenants;
      load_config.tenants = tenants;
    } else if (args[i] == "--qd" && i + 1 < args.size()) {
      service_config.queue_depth = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--arrival-rate" && i + 1 < args.size()) {
      load_config.arrival_rate =
          std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--requests" && i + 1 < args.size()) {
      load_config.requests = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      service_config.batch_limit = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--weights" && i + 1 < args.size()) {
      service_config.weights.clear();
      for (const auto& piece : support::split(args[++i], ',')) {
        service_config.weights.push_back(static_cast<std::uint32_t>(
            std::strtoul(piece.c_str(), nullptr, 10)));
      }
    } else if (args[i] == "--closed-loop" && i + 1 < args.size()) {
      load_config.closed_loop_clients = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--think-us" && i + 1 < args.size()) {
      load_config.think_time =
          std::strtoull(args[++i].c_str(), nullptr, 10) *
          platform::kNsPerUs;
    } else if (args[i] == "--span" && i + 1 < args.size()) {
      load_config.span_keys = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--max-retries" && i + 1 < args.size()) {
      service_config.max_retries = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--backoff-us" && i + 1 < args.size()) {
      service_config.retry_backoff =
          std::strtoull(args[++i].c_str(), nullptr, 10) *
          platform::kNsPerUs;
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      load_config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode_name = args[++i];
    } else if (args[i] == "--pes" && i + 1 < args.size()) {
      pes = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (pes == 0) return usage();
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--devices" && i + 1 < args.size()) {
      devices = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (devices == 0) return usage();
    } else if (args[i] == "--replication" && i + 1 < args.size()) {
      replication = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (replication == 0) return usage();
    } else if (args[i] == "--spares" && i + 1 < args.size()) {
      spares = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--scrub-share" && i + 1 < args.size()) {
      scrub_share = std::strtod(args[++i].c_str(), nullptr);
      if (scrub_share < 0.0 || scrub_share >= 1.0) return usage();
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--sim-mode" && i + 1 < args.size()) {
      set_sim_mode_flag(args[++i]);
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else if (args[i] == "--predicate" && i + 1 < args.size()) {
      const auto pieces = support::split(args[++i], ',');
      if (pieces.size() != 3) return usage();
      service_config.predicates.push_back(ndp::FilterPredicate{
          pieces[0], pieces[1],
          std::strtoull(pieces[2].c_str(), nullptr, 0)});
    } else {
      return usage();
    }
  }
  ndp::ExecMode mode;
  if (mode_name == "sw") {
    mode = ndp::ExecMode::kSoftware;
  } else if (mode_name == "hw") {
    mode = ndp::ExecMode::kHardware;
  } else if (mode_name == "host") {
    mode = ndp::ExecMode::kHostClassic;
  } else {
    return usage();
  }

  if (devices > 1) {
    // Cluster mode: N member stacks + spares behind one coordinator that
    // implements host::OffloadTarget, so the same QueryService drives it.
    if (replication > devices) {
      std::fprintf(stderr,
                   "ndpgen: --replication %u exceeds --devices %u\n",
                   replication, devices);
      return usage();
    }
    cluster::ClusterBuildConfig build;
    build.devices = devices;
    build.replication = replication;
    build.spares = spares;
    build.scale_divisor = scale;
    build.mode = mode;
    build.pes = pes;
    build.threads = threads;
    build.device_fault = fault_profile;
    build.media_fault = fault_profile;
    if (scrub_share > 0.0) {
      build.scrub.enabled = true;
      build.scrub.scrub_share = scrub_share;
    }
    const auto cluster_stack = cluster::build_pubgraph_cluster(build);
    cluster::ClusterCoordinator& coord = *cluster_stack->coordinator;
    obs::TraceSink sink;
    if (!trace_path.empty()) coord.observability().trace = &sink;
    if (fault_profile.any_enabled() ||
        fault_profile.device_fault_enabled()) {
      std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
    }

    std::uint64_t loaded = 0;
    for (std::uint32_t d = 0; d < devices; ++d) {
      loaded += coord.device(d).records_loaded();
    }
    load_config.key_space = cluster_stack->generator.paper_count();
    service_config.result_key = workload::paper_result_key;
    coord.arm_faults(load_config.requests);

    host::QueryService service(coord, service_config);
    host::LoadGenerator load(load_config);
    const host::ServiceReport report = with_flush_on_error(
        [&] { return service.run(load); },
        [&] {
          coord.publish_metrics();
          write_observability(coord.observability(), sink, trace_path,
                              metrics_path);
        });

    print_serve_report(mode, pes, loaded, service_config, load, report);
    const cluster::ClusterReport& cr = coord.report();
    std::printf(
        "  cluster: %u devices (R=%u, %u spare%s), %llu sub-scans "
        "(%llu timed out), %llu hedges (%llu won)\n",
        devices, replication, spares, spares == 1 ? "" : "s",
        static_cast<unsigned long long>(cr.subscans),
        static_cast<unsigned long long>(cr.subscan_failures),
        static_cast<unsigned long long>(cr.hedges),
        static_cast<unsigned long long>(cr.hedge_wins));
    std::printf(
        "  health: %llu transitions, %llu failover%s, %llu rebuild%s\n",
        static_cast<unsigned long long>(cr.health_transitions),
        static_cast<unsigned long long>(cr.failovers),
        cr.failovers == 1 ? "" : "s",
        static_cast<unsigned long long>(cr.rebuilds),
        cr.rebuilds == 1 ? "" : "s");
    if (coord.scrubbing() || cr.bitrot_blocks_injected > 0) {
      std::uint64_t verified = 0;
      std::uint64_t crc_failures = 0;
      if (coord.scrubbing()) {
        for (std::uint32_t d = 0; d < coord.device_count(); ++d) {
          verified += coord.scrub_report(d).blocks_verified;
          crc_failures += coord.scrub_report(d).crc_failures;
        }
      }
      std::printf(
          "  integrity: %llu bit-rot blocks injected, %llu blocks "
          "scrubbed (%llu CRC failures), %llu read-repair%s, %llu "
          "repair%s (%llu B restored)\n",
          static_cast<unsigned long long>(cr.bitrot_blocks_injected),
          static_cast<unsigned long long>(verified),
          static_cast<unsigned long long>(crc_failures),
          static_cast<unsigned long long>(cr.read_repairs),
          cr.read_repairs == 1 ? "" : "s",
          static_cast<unsigned long long>(cr.repairs),
          cr.repairs == 1 ? "" : "s",
          static_cast<unsigned long long>(cr.bytes_repaired));
    }

    coord.publish_metrics();
    write_observability(coord.observability(), sink, trace_path,
                        metrics_path);
    return serve_exit_code(report);
  }

  platform::CosmosConfig cosmos_config;
  cosmos_config.fault = fault_profile;
  platform::CosmosPlatform cosmos(cosmos_config);
  obs::TraceSink sink;
  if (!trace_path.empty()) cosmos.observability().trace = &sink;
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }

  core::Framework framework;
  const auto compiled =
      framework.compile(workload::pubgraph_spec_source());
  const auto& artifacts = compiled.get("PaperScan");

  workload::PubGraphGenerator generator(
      workload::PubGraphConfig{.scale_divisor = scale});
  kv::DBConfig db_config;
  db_config.record_bytes = workload::PaperRecord::kBytes;
  db_config.extractor = workload::paper_key;
  kv::NKV db(cosmos, db_config);
  const std::uint64_t loaded = workload::load_papers(db, generator);
  load_config.key_space = generator.paper_count();
  service_config.result_key = workload::paper_result_key;

  ndp::ExecutorConfig exec_config;
  exec_config.mode = mode;
  exec_config.num_pes = pes;
  exec_config.pe_threads = threads;
  exec_config.result_key_extractor = workload::paper_result_key;
  if (mode == ndp::ExecMode::kHardware) {
    exec_config.pe_indices = {
        framework.instantiate(compiled, "PaperScan", cosmos)};
  }
  ndp::HybridExecutor executor(db, artifacts.analyzed,
                               artifacts.design.operators, exec_config);

  host::QueryService service(executor, cosmos, service_config);
  host::LoadGenerator load(load_config);
  const host::ServiceReport report = with_flush_on_error(
      [&] { return service.run(load); },
      [&] {
        cosmos.publish_metrics();
        write_observability(cosmos.observability(), sink, trace_path,
                            metrics_path);
      });

  print_serve_report(mode, pes, loaded, service_config, load, report);

  cosmos.publish_metrics();
  write_observability(cosmos.observability(), sink, trace_path,
                      metrics_path);
  return serve_exit_code(report);
}

int cmd_scrub(const std::vector<std::string>& args) {
  cluster::ClusterBuildConfig build;
  build.devices = 3;
  host::ServiceConfig service_config;
  host::LoadConfig load_config;
  load_config.requests = 96;
  std::string mode_name = "hw";
  std::string trace_path;
  std::string metrics_path;
  fault::FaultProfile fault_profile =
      parse_fault_profile("bit-rot");  // Default drill: seeded rot.
  double scrub_share = 0.1;
  double bandwidth_mbps = 200.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--devices" && i + 1 < args.size()) {
      build.devices = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (build.devices == 0) return usage();
    } else if (args[i] == "--replication" && i + 1 < args.size()) {
      build.replication = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (build.replication == 0) return usage();
    } else if (args[i] == "--spares" && i + 1 < args.size()) {
      build.spares = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--requests" && i + 1 < args.size()) {
      load_config.requests = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      build.scale_divisor = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      load_config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--scrub-share" && i + 1 < args.size()) {
      scrub_share = std::strtod(args[++i].c_str(), nullptr);
      if (scrub_share <= 0.0 || scrub_share >= 1.0) return usage();
    } else if (args[i] == "--bandwidth-mbps" && i + 1 < args.size()) {
      bandwidth_mbps = std::strtod(args[++i].c_str(), nullptr);
      if (bandwidth_mbps <= 0.0) return usage();
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode_name = args[++i];
    } else if (args[i] == "--pes" && i + 1 < args.size()) {
      build.pes = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (build.pes == 0) return usage();
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      build.threads = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--sim-mode" && i + 1 < args.size()) {
      set_sim_mode_flag(args[++i]);
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else {
      return usage();
    }
  }
  if (mode_name == "sw") {
    build.mode = ndp::ExecMode::kSoftware;
  } else if (mode_name == "hw") {
    build.mode = ndp::ExecMode::kHardware;
  } else if (mode_name == "host") {
    build.mode = ndp::ExecMode::kHostClassic;
  } else {
    return usage();
  }
  if (build.replication > build.devices) {
    std::fprintf(stderr, "ndpgen: --replication %u exceeds --devices %u\n",
                 build.replication, build.devices);
    return usage();
  }

  build.device_fault = fault_profile;
  build.media_fault = fault_profile;
  build.scrub.enabled = true;
  build.scrub.scrub_share = scrub_share;
  build.scrub.bandwidth_mbps = bandwidth_mbps;
  const auto cluster_stack = cluster::build_pubgraph_cluster(build);
  cluster::ClusterCoordinator& coord = *cluster_stack->coordinator;
  obs::TraceSink sink;
  if (!trace_path.empty()) coord.observability().trace = &sink;
  std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());

  load_config.key_space = cluster_stack->generator.paper_count();
  service_config.result_key = workload::paper_result_key;
  coord.arm_faults(load_config.requests);

  host::QueryService service(coord, service_config);
  host::LoadGenerator load(load_config);
  const auto flush = [&] {
    coord.publish_metrics();
    write_observability(coord.observability(), sink, trace_path,
                        metrics_path);
  };
  const host::ServiceReport report =
      with_flush_on_error([&] { return service.run(load); }, flush);
  // The converging round runs through the same typed-error path: an
  // unrepairable divergence surfaces as kIntegrity, exit 20.
  const cluster::AntiEntropyReport ae =
      with_flush_on_error([&] { return coord.run_anti_entropy(); }, flush);

  const cluster::ClusterReport& cr = coord.report();
  std::uint64_t verified = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t transient = 0;
  std::uint64_t crc_failures = 0;
  for (std::uint32_t d = 0; d < coord.device_count(); ++d) {
    verified += coord.scrub_report(d).blocks_verified;
    bytes_scanned += coord.scrub_report(d).bytes_scanned;
    transient += coord.scrub_report(d).transient_recovered;
    crc_failures += coord.scrub_report(d).crc_failures;
  }
  std::printf(
      "scrub [%u devices, R=%u, share %.2f, %.0f MB/s]: %llu requests "
      "served\n",
      build.devices, build.replication, scrub_share, bandwidth_mbps,
      static_cast<unsigned long long>(report.completed));
  std::printf(
      "  patrol: %llu blocks verified (%llu KiB), %llu transient "
      "recoveries, %llu persistent CRC failures\n",
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(bytes_scanned / 1024),
      static_cast<unsigned long long>(transient),
      static_cast<unsigned long long>(crc_failures));
  std::printf(
      "  rot: %llu blocks injected; %llu read-repair%s, %llu repair%s "
      "(%llu B restored)\n",
      static_cast<unsigned long long>(cr.bitrot_blocks_injected),
      static_cast<unsigned long long>(cr.read_repairs),
      cr.read_repairs == 1 ? "" : "s",
      static_cast<unsigned long long>(cr.repairs),
      cr.repairs == 1 ? "" : "s",
      static_cast<unsigned long long>(cr.bytes_repaired));
  std::printf(
      "  anti-entropy: %llu partitions checked, %llu divergent (%llu "
      "leaf buckets), %llu replica%s repaired; converged: %s\n",
      static_cast<unsigned long long>(ae.partitions_checked),
      static_cast<unsigned long long>(ae.divergent_partitions),
      static_cast<unsigned long long>(ae.divergent_leaves),
      static_cast<unsigned long long>(ae.replicas_repaired),
      ae.replicas_repaired == 1 ? "" : "s",
      ae.converged ? "yes" : "NO");

  flush();
  if (!ae.converged) return exit_code(ErrorKind::kIntegrity);
  return serve_exit_code(report);
}

int cmd_profile(const std::vector<std::string>& args) {
  std::string workload_name = "scan";
  std::string mode_name = "hw";
  std::uint64_t scale = 32768;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  std::size_t top_k = 5;
  std::string trace_path;
  std::string metrics_path;
  std::string attribution_path;
  fault::FaultProfile fault_profile;
  std::vector<ndp::FilterPredicate> predicates;
  host::ServiceConfig service_config;
  host::LoadConfig load_config;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--workload" && i + 1 < args.size()) {
      workload_name = args[++i];
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode_name = args[++i];
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--pes" && i + 1 < args.size()) {
      pes = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (pes == 0) return usage();
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--tenants" && i + 1 < args.size()) {
      const auto tenants = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
      if (tenants == 0) return usage();
      service_config.tenants = tenants;
      load_config.tenants = tenants;
    } else if (args[i] == "--qd" && i + 1 < args.size()) {
      service_config.queue_depth = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--requests" && i + 1 < args.size()) {
      load_config.requests = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--arrival-rate" && i + 1 < args.size()) {
      load_config.arrival_rate =
          std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      service_config.batch_limit = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      load_config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--span" && i + 1 < args.size()) {
      load_config.span_keys = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--attribution" && i + 1 < args.size()) {
      attribution_path = args[++i];
    } else if (args[i] == "--sim-mode" && i + 1 < args.size()) {
      set_sim_mode_flag(args[++i]);
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else if (args[i] == "--predicate" && i + 1 < args.size()) {
      const auto pieces = support::split(args[++i], ',');
      if (pieces.size() != 3) return usage();
      predicates.push_back(ndp::FilterPredicate{
          pieces[0], pieces[1],
          std::strtoull(pieces[2].c_str(), nullptr, 0)});
    } else {
      return usage();
    }
  }
  const bool serve = workload_name == "serve";
  if (!serve && workload_name != "scan") return usage();
  ndp::ExecMode mode;
  if (mode_name == "sw") {
    mode = ndp::ExecMode::kSoftware;
  } else if (mode_name == "hw") {
    mode = ndp::ExecMode::kHardware;
  } else if (mode_name == "host") {
    mode = ndp::ExecMode::kHostClassic;
  } else {
    return usage();
  }

  struct RunResult {
    platform::SimTime elapsed = 0;  ///< Scan elapsed / serve makespan.
    std::uint64_t completed = 0;
    std::uint64_t idle_permille = 0;
    bool have_idle = false;
  };
  // One full build-and-run of the selected workload on a fresh platform.
  // The instrumented run (profiler + sink attached) is the measurement;
  // the uninstrumented control proves the observability hooks do not
  // perturb the simulation: virtual time must come out identical, and CI
  // guards the two BENCH rows against each other.
  auto run_once = [&](obs::RequestProfiler* profiler,
                      obs::TraceSink* sink) -> RunResult {
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = fault_profile;
    platform::CosmosPlatform cosmos(cosmos_config);
    obs::Observability& ob = cosmos.observability();
    if (sink != nullptr) ob.trace = sink;
    if (profiler != nullptr) ob.profiler = profiler;
    const bool instrumented = profiler != nullptr;

    core::Framework framework;
    const auto compiled =
        framework.compile(workload::pubgraph_spec_source());
    const auto& artifacts = compiled.get("PaperScan");
    workload::PubGraphGenerator generator(
        workload::PubGraphConfig{.scale_divisor = scale});
    kv::DBConfig db_config;
    db_config.record_bytes = workload::PaperRecord::kBytes;
    db_config.extractor = workload::paper_key;
    kv::NKV db(cosmos, db_config);
    workload::load_papers(db, generator);

    ndp::ExecutorConfig exec_config;
    exec_config.mode = mode;
    exec_config.num_pes = pes;
    exec_config.pe_threads = threads;
    exec_config.result_key_extractor = workload::paper_result_key;
    if (mode == ndp::ExecMode::kHardware) {
      exec_config.pe_indices = {
          framework.instantiate(compiled, "PaperScan", cosmos)};
    }
    ndp::HybridExecutor executor(db, artifacts.analyzed,
                                 artifacts.design.operators, exec_config);

    RunResult out;
    auto body = [&] {
      if (serve) {
        load_config.key_space = generator.paper_count();
        service_config.result_key = workload::paper_result_key;
        service_config.predicates = predicates;
        host::QueryService service(executor, cosmos, service_config);
        host::LoadGenerator load(load_config);
        const host::ServiceReport report = service.run(load);
        out.elapsed = report.makespan_ns;
        out.completed = report.completed;
      } else {
        auto preds = predicates;
        if (preds.empty()) {
          preds.push_back(ndp::FilterPredicate{"year", "lt", 1990});
        }
        // A standalone scan is profiled as one pseudo-request (id 0,
        // tenant 0): the CLI mints the context the host service would
        // have minted, so the device emits the same ctx-tagged span tree.
        const platform::SimTime t0 = cosmos.events().now();
        ob.request_ctx = obs::RequestContext::mint(0);
        ndp::ScanStats stats;
        try {
          stats = executor.scan(preds);
        } catch (...) {
          ob.request_ctx = obs::RequestContext{};
          throw;
        }
        ob.request_ctx = obs::RequestContext{};
        const platform::SimTime t1 = t0 + stats.elapsed;
        if (ob.tracing()) {
          const obs::TrackId track = ob.trace->track("host.cli");
          const std::uint64_t flow = obs::RequestContext::mint(0).trace_id;
          ob.trace->complete(
              track, "request", "host", t0, stats.elapsed,
              "{\"request\":0,\"results\":" + std::to_string(stats.results) +
                  ",\"dominant\":\"" +
                  std::string(obs::phase_name(stats.phases.dominant())) +
                  "\",\"phases\":" + stats.phases.json() + "}");
          ob.trace->flow_begin(track, "request", "request", t0, flow);
          ob.trace->flow_end(track, "request", "request", t1, flow);
        }
        if (profiler != nullptr) {
          profiler->record(obs::RequestProfile{0, 0, t0, t1, stats.phases});
        }
        out.elapsed = stats.elapsed;
        out.completed = 1;
      }
      if (instrumented) {
        profiler->publish(ob.metrics);
        cosmos.publish_metrics();
        if (ob.metrics.contains("hwsim.idle_cycle_fraction")) {
          out.idle_permille =
              ob.metrics.gauge_value("hwsim.idle_cycle_fraction");
          out.have_idle = true;
        }
        write_observability(ob, *sink, trace_path, metrics_path);
      }
    };
    if (instrumented) {
      with_flush_on_error(body, [&] {
        cosmos.publish_metrics();
        write_observability(ob, *sink, trace_path, metrics_path);
      });
    } else {
      body();
    }
    return out;
  };

  obs::RequestProfiler profiler;
  obs::TraceSink sink;
  const RunResult traced = run_once(&profiler, &sink);
  const RunResult untraced = run_once(nullptr, nullptr);

  std::printf(
      "profile %s [%s, %u PE%s]: %llu request%s profiled, %.3f ms "
      "virtual\n",
      workload_name.c_str(), std::string(to_string(mode)).c_str(), pes,
      pes == 1 ? "" : "s",
      static_cast<unsigned long long>(profiler.size()),
      profiler.size() == 1 ? "" : "s",
      static_cast<double>(traced.elapsed) / 1e6);
  profiler.write_report(std::cout, top_k);
  if (traced.have_idle) {
    std::printf("hwsim idle cycle fraction: %llu permille (%.1f%%)\n",
                static_cast<unsigned long long>(traced.idle_permille),
                static_cast<double>(traced.idle_permille) / 10.0);
  }
  // The control run proves observability is free in virtual time: any
  // drift here means a hook perturbed the simulation.
  const double delta =
      untraced.elapsed == 0
          ? 0.0
          : (static_cast<double>(traced.elapsed) -
             static_cast<double>(untraced.elapsed)) *
                100.0 / static_cast<double>(untraced.elapsed);
  std::printf(
      "control (uninstrumented): %.3f ms virtual, traced/untraced delta "
      "%+.3f%%\n",
      static_cast<double>(untraced.elapsed) / 1e6, delta);

  if (!attribution_path.empty()) {
    std::ofstream out(attribution_path);
    if (!out) {
      throw Error(ErrorKind::kInvalidArg,
                  "cannot write attribution file '" + attribution_path +
                      "'");
    }
    profiler.write_json(out);
    std::fprintf(stderr, "wrote %s (%zu requests)\n",
                 attribution_path.c_str(), profiler.size());
  }

  // Machine-readable companion rows, same schema as the bench binaries
  // (check_bench_regression.py pairs the *_traced/*_untraced elapsed rows
  // for the observability-overhead guard).
  if (const char* dir = std::getenv("NDPGEN_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    const std::string bench_name = "profile_" + workload_name;
    const std::string path =
        std::string(dir) + "/BENCH_" + bench_name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "ndpgen: cannot write %s\n", path.c_str());
    } else {
      const obs::PhaseBreakdown totals = profiler.totals();
      std::vector<std::string> rows;
      for (std::size_t p = 0; p < obs::kRequestPhaseCount; ++p) {
        rows.push_back(
            "{\"series\":\"phase_ns\",\"x\":\"" +
            std::string(obs::phase_name(static_cast<obs::RequestPhase>(p))) +
            "\",\"value\":" + obs::json_fixed(static_cast<double>(totals.ns[p])) +
            ",\"unit\":\"ns\"}");
      }
      rows.push_back("{\"series\":\"elapsed_ms\",\"x\":\"" + workload_name +
                     "_traced\",\"value\":" +
                     obs::json_fixed(static_cast<double>(traced.elapsed) /
                                     1e6) +
                     ",\"unit\":\"ms\"}");
      rows.push_back("{\"series\":\"elapsed_ms\",\"x\":\"" + workload_name +
                     "_untraced\",\"value\":" +
                     obs::json_fixed(static_cast<double>(untraced.elapsed) /
                                     1e6) +
                     ",\"unit\":\"ms\"}");
      if (traced.have_idle) {
        rows.push_back(
            "{\"series\":\"idle_fraction\",\"x\":\"hwsim\",\"value\":" +
            obs::json_fixed(static_cast<double>(traced.idle_permille)) +
            ",\"unit\":\"permille\"}");
      }
      out << "{\"bench\":\"" << obs::json_escape(bench_name)
          << "\",\"rows\":[\n";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        out << rows[i] << (i + 1 < rows.size() ? ",\n" : "\n");
      }
      out << "]}\n";
      std::fprintf(stderr, "ndpgen: wrote %s (%zu rows)\n", path.c_str(),
                   rows.size());
    }
  }
  return 0;
}

int cmd_recover(const std::vector<std::string>& args) {
  workload::CrashHarnessConfig config;
  std::uint64_t crash_at = 0;
  std::string trace_path;
  std::string metrics_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--ops" && i + 1 < args.size()) {
      config.ops = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--crash-at" && i + 1 < args.size()) {
      crash_at = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--torn-fraction" && i + 1 < args.size()) {
      config.torn_fraction = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else {
      return usage();
    }
  }
  obs::TraceSink sink;
  if (!trace_path.empty()) config.trace = &sink;
  const workload::CrashHarness harness(config);
  // run() throws Error{kSimulation} (exit code 14) on any contract
  // violation: lost acknowledged write, half-applied boundary op, torn
  // state visible after recovery.
  // The platform (and its metrics) lives inside the harness, so an error
  // here can only flush the externally-owned trace sink.
  const workload::CrashRunResult result = with_flush_on_error(
      [&] { return harness.run(crash_at); },
      [&] {
        if (!trace_path.empty()) {
          std::ofstream out(trace_path);
          if (out) sink.write_json(out);
        }
      });
  const auto& report = result.report;
  std::printf("crash-at %llu: %s at write step %llu of %llu\n",
              static_cast<unsigned long long>(crash_at),
              result.crashed ? "power lost" : "ran to completion",
              static_cast<unsigned long long>(result.crash_step),
              static_cast<unsigned long long>(result.steps_total));
  std::printf(
      "recovered: %llu/%llu ops acknowledged, %llu records visible, "
      "state hash %016llx\n",
      static_cast<unsigned long long>(result.acked_ops),
      static_cast<unsigned long long>(harness.config().ops),
      static_cast<unsigned long long>(result.recovered_records),
      static_cast<unsigned long long>(result.state_hash));
  std::printf(
      "report: manifest %s (commit %llu, rollbacks %llu), "
      "%llu tables, %llu blocks verified, %llu torn SST blocks\n",
      report.manifest_found ? "found" : "absent",
      static_cast<unsigned long long>(report.manifest_commit_seq),
      static_cast<unsigned long long>(report.manifest_rollbacks),
      static_cast<unsigned long long>(report.tables_restored),
      static_cast<unsigned long long>(report.sst_blocks_verified),
      static_cast<unsigned long long>(report.torn_sst_blocks));
  std::printf(
      "        WAL %llu replayed, %llu skipped, %llu torn pages; "
      "%llu orphan pages GCed (%llu torn), %llu unstable blocks erased\n",
      static_cast<unsigned long long>(report.wal_entries_replayed),
      static_cast<unsigned long long>(report.wal_entries_skipped),
      static_cast<unsigned long long>(report.wal_torn_pages),
      static_cast<unsigned long long>(report.orphan_pages_discarded),
      static_cast<unsigned long long>(report.torn_pages_discarded),
      static_cast<unsigned long long>(report.unstable_blocks_erased));
  std::printf("        recovery took %llu ns simulated\n",
              static_cast<unsigned long long>(report.elapsed));
  result.platform->publish_metrics();
  write_observability(result.platform->observability(), sink, trace_path,
                      metrics_path);
  return 0;
}

int cmd_testbench(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  std::uint64_t tuples = 32;
  std::uint32_t stage = 0, field_sel = 0;
  std::string op = "nop";
  std::string field_path;
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--tuples" && i + 1 < args.size()) {
      tuples = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--stage" && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      const auto colon = spec.find(':');
      const auto pieces = support::split(spec.substr(colon + 1), ',');
      if (colon == std::string::npos || pieces.size() != 3) return usage();
      stage = static_cast<std::uint32_t>(
          std::strtoul(spec.substr(0, colon).c_str(), nullptr, 10));
      field_sel = 0;  // Resolved below via bind_predicate.
      op = pieces[1];
      value = std::strtoull(pieces[2].c_str(), nullptr, 0);
      field_path = pieces[0];
    }
  }

  const core::Framework framework;
  const auto compiled = framework.compile(read_file(args[0]));
  const auto& artifacts = compiled.get(args[1]);
  const auto& layout = artifacts.analyzed.input;

  hwgen::FilterTestbenchSpec spec;
  spec.stage = stage;
  if (!field_path.empty()) {
    const auto bound = ndp::bind_predicate(
        layout, artifacts.design.operators,
        ndp::FilterPredicate{field_path, op, value});
    spec.field_select = bound.field_select;
    spec.operator_select = bound.op_encoding;
    spec.compare_value = bound.compare_value;
  } else {
    spec.field_select = field_sel;
    spec.operator_select = *artifacts.design.operators.nop_encoding();
    spec.compare_value = value;
  }

  // Deterministic random stimulus; expectation from the software-reference
  // semantics (the same contract the cycle simulator is validated against).
  support::Xoshiro256 rng(42);
  const ndp::BoundPredicate predicate{spec.field_select, spec.operator_select,
                                      spec.compare_value};
  for (std::uint64_t t = 0; t < tuples; ++t) {
    std::vector<std::uint8_t> storage(layout.storage_bytes());
    for (auto& byte : storage) byte = static_cast<std::uint8_t>(rng());
    if (ndp::eval_predicate_sw(layout, artifacts.design.operators, storage,
                               predicate)) {
      ++spec.expected_pass_count;
    }
    spec.tuples.push_back(hwsim::pad_tuple(
        layout, support::BitVector::from_bytes(storage)));
  }
  std::fputs(emit_filter_testbench(artifacts.design, spec).c_str(), stdout);
  std::fprintf(stderr,
               "testbench for %s stage %u: %llu tuples, %llu expected to "
               "pass\n",
               artifacts.analyzed.name.c_str(), stage,
               static_cast<unsigned long long>(tuples),
               static_cast<unsigned long long>(spec.expected_pass_count));
  return 0;
}

}  // namespace

/// Resolves --plan's value: suite name, then file path, then inline text.
std::string resolve_plan_source(const std::string& arg) {
  if (const auto* named = query::find_plan(arg)) return named->source;
  if (std::filesystem::exists(arg)) return read_file(arg);
  if (arg.find('{') != std::string::npos) return arg;
  throw Error(ErrorKind::kInvalidArg,
              "--plan '" + arg +
                  "' is neither a suite plan name, a readable file, nor "
                  "inline plan text (see --list-plans)");
}

int cmd_query(const std::vector<std::string>& args) {
  std::string plan_arg;
  std::string mode_name = "hw";
  std::uint64_t scale = 32768;
  std::uint32_t pes = 1;
  std::uint32_t threads = 0;
  bool explain = false;
  bool check = true;
  bool serve = false;
  std::size_t dump_rows = 10;
  fault::FaultProfile fault_profile;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--plan" && i + 1 < args.size()) {
      plan_arg = args[++i];
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode_name = args[++i];
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--pes" && i + 1 < args.size()) {
      pes = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--sim-mode" && i + 1 < args.size()) {
      set_sim_mode_flag(args[++i]);
    } else if (args[i] == "--fault-profile" && i + 1 < args.size()) {
      fault_profile = parse_fault_profile(args[++i]);
    } else if (args[i] == "--rows" && i + 1 < args.size()) {
      dump_rows = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--explain") {
      explain = true;
    } else if (args[i] == "--no-check") {
      check = false;
    } else if (args[i] == "--serve") {
      serve = true;
    } else if (args[i] == "--list-plans") {
      for (const auto& named : query::plan_suite()) {
        std::printf("%s:\n%s\n", named.name.c_str(), named.source.c_str());
      }
      return 0;
    } else {
      return usage();
    }
  }
  if (plan_arg.empty()) return usage();
  if (mode_name != "hw" && mode_name != "sw") return usage();

  const std::string source = resolve_plan_source(plan_arg);
  auto parsed = query::parse_plan(source);
  if (!parsed.ok()) {
    // The located caret diagnostic, then the typed exit code (21).
    std::fprintf(stderr, "ndpgen: %s\n",
                 spec::render_caret(parsed.status(), source).c_str());
    return exit_code(parsed.status().kind);
  }
  const query::Plan& plan = parsed.value();

  if (serve) {
    query::ServePlanConfig serve_config;
    serve_config.scale_divisor = scale;
    serve_config.fault = fault_profile;
    auto served = query::serve_plan(plan, serve_config);
    if (!served.ok()) {
      throw Error(served.status().kind, served.status().message);
    }
    const query::ServeReport& report = served.value();
    std::printf(
        "plan %s served: %llu completed, %llu result rows (%llu dropped "
        "by the streamable tail)\n",
        plan.name.c_str(),
        static_cast<unsigned long long>(report.service.completed),
        static_cast<unsigned long long>(report.service.results),
        static_cast<unsigned long long>(report.rows_filtered));
    std::printf(
        "  cut: %zu predicate(s) on the device HW stage, %zu row-filtered "
        "host-side%s\n",
        report.device_predicates, report.tail_predicates,
        report.projected ? ", projected" : "");
    std::printf("  p50 %.1f us, p95 %.1f us, p99 %.1f us, %.0f req/s\n",
                static_cast<double>(report.service.p50_ns) / 1e3,
                static_cast<double>(report.service.p95_ns) / 1e3,
                static_cast<double>(report.service.p99_ns) / 1e3,
                report.service.throughput_rps);
    return 0;
  }

  query::CompileOptions compile_options;
  compile_options.force_software = mode_name == "sw";
  auto compiled = query::compile_plan(plan, compile_options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "ndpgen: %s\n",
                 spec::render_caret(compiled.status(), source).c_str());
    return exit_code(compiled.status().kind);
  }
  if (explain) {
    std::printf("%s\n", plan.dump().c_str());
    std::printf("%s\n", compiled.value().explain().c_str());
    if (compiled.value().probe.offloaded) {
      std::printf("%s", compiled.value().probe.pricing.dump().c_str());
    }
  }

  query::QueryExecOptions exec_options;
  exec_options.scale_divisor = scale;
  exec_options.pes = pes;
  exec_options.threads = threads;
  exec_options.fault = fault_profile;
  if (fault_profile.any_enabled()) {
    std::fprintf(stderr, "%s\n", fault_profile.summary().c_str());
  }
  query::QueryStats stats;
  const query::ResultTable table =
      query::execute_plan(compiled.value(), exec_options, &stats);

  std::printf("%s\n", table.dump(dump_rows).c_str());
  std::printf(
      "plan %s (%s): %llu rows, fingerprint %08x\n", plan.name.c_str(),
      compiled.value().any_offloaded() ? "HW-offloaded" : "SW fallback",
      static_cast<unsigned long long>(table.rows.size()),
      table.fingerprint());
  for (const auto& leaf : stats.leaves) {
    const std::string leaf_mode =
        leaf.offloaded
            ? std::to_string(leaf.hw_filter_stages) + "-stage HW chain"
            : "SW fallback";
    std::printf(
        "  leaf %s: %s, %llu records, %llu blocks, %llu rows out, "
        "%.2f ms device\n",
        std::string(query::to_string(leaf.dataset)).c_str(),
        leaf_mode.c_str(),
        static_cast<unsigned long long>(leaf.records_loaded),
        static_cast<unsigned long long>(leaf.blocks),
        static_cast<unsigned long long>(leaf.rows_out),
        static_cast<double>(leaf.elapsed) / 1e6);
    if (leaf.blocks_degraded_to_software > 0 ||
        leaf.uncorrectable_blocks > 0) {
      std::printf("    reliability: %llu blocks degraded to SW, %llu "
                  "uncorrectable\n",
                  static_cast<unsigned long long>(
                      leaf.blocks_degraded_to_software),
                  static_cast<unsigned long long>(
                      leaf.uncorrectable_blocks));
    }
  }
  std::printf("  device %.2f ms + host %.2f ms = %.2f ms\n",
              static_cast<double>(stats.device_ns) / 1e6,
              static_cast<double>(stats.host_ns) / 1e6,
              static_cast<double>(stats.elapsed()) / 1e6);

  if (check) {
    query::ReferenceStats ref_stats;
    const query::ResultTable reference =
        query::reference_execute(plan, scale, &ref_stats);
    const bool equal = table.to_bytes() == reference.to_bytes();
    std::printf(
        "  reference: %llu rows, fingerprint %08x, modeled %.2f ms "
        "(host classic) -> %s\n",
        static_cast<unsigned long long>(reference.rows.size()),
        reference.fingerprint(),
        static_cast<double>(ref_stats.elapsed()) / 1e6,
        equal ? "byte-equal" : "MISMATCH");
    if (!equal) {
      throw Error(ErrorKind::kInternal,
                  "compiled execution diverges from the reference "
                  "executor for plan '" + plan.name + "'");
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "compile") {
      return cmd_compile({args.begin() + 1, args.end()});
    }
    if (args[0] == "report") {
      return cmd_report({args.begin() + 1, args.end()});
    }
    if (args[0] == "simulate") {
      return cmd_simulate({args.begin() + 1, args.end()});
    }
    if (args[0] == "testbench") {
      return cmd_testbench({args.begin() + 1, args.end()});
    }
    if (args[0] == "scan") {
      return cmd_scan({args.begin() + 1, args.end()});
    }
    if (args[0] == "query") {
      return cmd_query({args.begin() + 1, args.end()});
    }
    if (args[0] == "serve") {
      return cmd_serve({args.begin() + 1, args.end()});
    }
    if (args[0] == "scrub") {
      return cmd_scrub({args.begin() + 1, args.end()});
    }
    if (args[0] == "profile") {
      return cmd_profile({args.begin() + 1, args.end()});
    }
    if (args[0] == "recover") {
      return cmd_recover({args.begin() + 1, args.end()});
    }
    return usage();
  } catch (const ndpgen::Error& error) {
    // Typed failures carry their kind into the process exit code (10-17,
    // see support/error.hpp) so scripts can distinguish a bad spec from a
    // storage failure without parsing stderr; what() already leads with
    // the kind name.
    std::fprintf(stderr, "ndpgen: %s\n", error.what());
    return ndpgen::exit_code(error.kind());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ndpgen: %s\n", error.what());
    return 1;
  }
}
