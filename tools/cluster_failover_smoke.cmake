# Cluster failover smoke, run as a ctest target:
#
#   cmake -DNDPGEN_BIN=<path to ndpgen> -DWORK_DIR=<scratch dir> \
#         -P cluster_failover_smoke.cmake
#
# Serves an open-loop workload from a 4-member R=2 cluster while the
# "device-loss" preset crashes device 0 mid-run, and checks the ISSUE
# acceptance story end-to-end through the CLI: exit 0 (no query dropped),
# exactly one failover + rebuild in the report, cluster counters in the
# metrics dump, and a byte-identical replay — including a --threads 4
# replay, since the failure timeline is part of the determinism contract.
if(NOT NDPGEN_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DNDPGEN_BIN=... -DWORK_DIR=... -P cluster_failover_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(serve_args serve --devices 4 --replication 2 --spares 1
    --requests 48 --arrival-rate 2000 --scale 65536
    --fault-profile device-loss)

foreach(run 1 2)
  execute_process(
    COMMAND "${NDPGEN_BIN}" ${serve_args}
            --trace "${WORK_DIR}/trace_${run}.json"
            --metrics "${WORK_DIR}/metrics_${run}.json"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "cluster serve run ${run} failed (${status}) — a "
            "device loss under R=2 must not drop queries:\n${stdout}\n${stderr}")
  endif()
  set(stdout_${run} "${stdout}")
endforeach()

# Third run with host threads driving the PE shards: virtual time and
# every artifact must be unchanged.
execute_process(
  COMMAND "${NDPGEN_BIN}" ${serve_args} --threads 4
          --trace "${WORK_DIR}/trace_3.json"
          --metrics "${WORK_DIR}/metrics_3.json"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout_3
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "threaded cluster serve failed (${status}):\n${stdout_3}\n${stderr}")
endif()

foreach(run 2 3)
  foreach(kind trace metrics)
    execute_process(
      COMMAND "${CMAKE_COMMAND}" -E compare_files
              "${WORK_DIR}/${kind}_1.json" "${WORK_DIR}/${kind}_${run}.json"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      message(FATAL_ERROR "${kind} files differ between identical cluster runs (run ${run}) — the failure timeline is nondeterministic")
    endif()
  endforeach()
  if(NOT stdout_${run} STREQUAL stdout_1)
    message(FATAL_ERROR "serve report differs between identical cluster runs (run ${run})")
  endif()
endforeach()

# The report must show the failover actually happened (a dormant injector
# would pass the runs above trivially).
if(NOT stdout_1 MATCHES "1 failover")
  message(FATAL_ERROR "serve report is missing the failover:\n${stdout_1}")
endif()
if(NOT stdout_1 MATCHES "1 rebuild")
  message(FATAL_ERROR "serve report is missing the rebuild:\n${stdout_1}")
endif()

# Cluster counter families land in the metrics dump; the crashed member
# must be off the ring (cluster.dev0.on_ring 0) with the spare serving.
file(READ "${WORK_DIR}/metrics_1.json" metrics)
foreach(needle "cluster.failovers" "cluster.rebuilds" "cluster.dev0.state"
        "cluster.dev4.on_ring")
  string(FIND "${metrics}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "cluster metrics dump is missing '${needle}'")
  endif()
endforeach()

message(STATUS "cluster failover smoke passed")
