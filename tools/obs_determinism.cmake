# Determinism check for the observability layer, run as a ctest target:
#
#   cmake -DNDPGEN_BIN=<path to ndpgen> -DWORK_DIR=<scratch dir> \
#         -P obs_determinism.cmake
#
# Runs the same small hardware scan twice with --trace/--metrics and
# verifies both output pairs are byte-identical. All trace timestamps are
# virtual simulation time, so any difference means nondeterminism crept
# into the pipeline (wall clock, pointer values, unordered iteration...).
if(NOT NDPGEN_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DNDPGEN_BIN=... -DWORK_DIR=... -P obs_determinism.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(run 1 2)
  execute_process(
    COMMAND "${NDPGEN_BIN}" scan --dataset papers --mode hw --scale 65536
            --trace "${WORK_DIR}/trace_${run}.json"
            --metrics "${WORK_DIR}/metrics_${run}.json"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "ndpgen scan run ${run} failed (${status}):\n${stdout}\n${stderr}")
  endif()
endforeach()

foreach(kind trace metrics)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/${kind}_1.json" "${WORK_DIR}/${kind}_2.json"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind} files differ between identical runs — observability output is nondeterministic")
  endif()
endforeach()

# Same contract under a fault profile: the injector draws every fault from
# (seed, stream, stable ids), so a fixed --fault-profile must reproduce the
# exact same degraded run — retries, recoveries, backoff and all.
foreach(run 1 2)
  execute_process(
    COMMAND "${NDPGEN_BIN}" scan --dataset papers --mode hw --scale 65536
            --fault-profile "seed=11,read_ber=4e-4,silent_rate=0.01,pe_fault_rate=0.2,nvme_timeout_rate=0.2"
            --trace "${WORK_DIR}/fault_trace_${run}.json"
            --metrics "${WORK_DIR}/fault_metrics_${run}.json"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "faulted ndpgen scan run ${run} failed (${status}):\n${stdout}\n${stderr}")
  endif()
endforeach()

foreach(kind fault_trace fault_metrics)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/${kind}_1.json" "${WORK_DIR}/${kind}_2.json"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind} files differ between identical faulted runs — fault injection is nondeterministic")
  endif()
endforeach()

# The faulted metrics dump must expose the reliability counter families,
# and the default-profile dump must NOT (zero-cost no-fault contract).
file(READ "${WORK_DIR}/fault_metrics_1.json" fault_metrics)
foreach(needle "platform.fault." "ndp.scan.blocks_retried")
  string(FIND "${fault_metrics}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "faulted metrics file is missing expected metric '${needle}'")
  endif()
endforeach()
file(READ "${WORK_DIR}/metrics_1.json" clean_metrics)
string(FIND "${clean_metrics}" "platform.fault." at)
if(NOT at EQUAL -1)
  message(FATAL_ERROR "default-profile metrics leak fault counters — the no-fault path must stay byte-identical to pre-reliability builds")
endif()

# Cheap structural sanity: the trace must hold events and the metrics dump
# must contain the acceptance-criteria metric families.
file(READ "${WORK_DIR}/trace_1.json" trace)
if(NOT trace MATCHES "traceEvents")
  message(FATAL_ERROR "trace file is missing the traceEvents array")
endif()
file(READ "${WORK_DIR}/metrics_1.json" metrics)
foreach(needle
    "hwsim." "stall_in" "platform.flash.bus_utilization_permille"
    "platform.event_queue.max_pending" "ndp.scan.tuples_matched")
  string(FIND "${metrics}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "metrics file is missing expected metric '${needle}'")
  endif()
endforeach()

message(STATUS "obs determinism check passed")
