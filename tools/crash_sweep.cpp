// crash_sweep — exhaustive crash-point exploration over a seeded workload.
//
// Counts the write steps the full workload performs, then crashes at every
// Nth step (all of them with --every 1), recovers, and lets the harness
// verify the crash-consistency contract at each point. Exits non-zero (the
// typed simulation exit code) on the first violation; on success prints
// which recovery paths the sweep exercised and an aggregate hash over all
// recovered states — byte-stable across repeated runs by the determinism
// contract.
//
//   crash_sweep [--ops N] [--every K] [--seed S] [--torn-fraction F]
//               [--key-space N] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "workload/crash_harness.hpp"

int main(int argc, char** argv) {
  using namespace ndpgen;
  workload::CrashHarnessConfig config;
  std::uint64_t every = 1;
  bool quiet = false;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--ops" && i + 1 < args.size()) {
      config.ops = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--every" && i + 1 < args.size()) {
      every = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--torn-fraction" && i + 1 < args.size()) {
      config.torn_fraction = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--key-space" && i + 1 < args.size()) {
      config.key_space = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: crash_sweep [--ops N] [--every K] [--seed S]\n"
                   "                   [--torn-fraction F] [--key-space N] "
                   "[--quiet]\n");
      return 2;
    }
  }
  if (every == 0) every = 1;

  try {
    const workload::CrashHarness harness(config);
    const std::uint64_t steps = harness.count_steps();
    std::printf("workload: %llu ops -> %llu write steps; sweeping every "
                "%llu%s\n",
                static_cast<unsigned long long>(config.ops),
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(every),
                every == 1 ? " (exhaustive)" : "");

    std::uint64_t runs = 0;
    std::uint64_t wal_torn = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t orphan_runs = 0;
    std::uint64_t unstable_runs = 0;
    std::uint64_t sweep_hash = 0xCBF29CE484222325ULL;
    for (std::uint64_t step = 1; step <= steps; step += every) {
      // run() throws Error{kSimulation} on any contract violation: a lost
      // acknowledged write, a half-applied boundary op, or visible torn
      // state. That propagates to the typed exit code below.
      const workload::CrashRunResult result = harness.run(step);
      ++runs;
      wal_torn += result.report.wal_torn_pages > 0 ? 1 : 0;
      rollbacks += result.report.manifest_rollbacks > 0 ? 1 : 0;
      orphan_runs += result.report.orphan_pages_discarded > 0 ? 1 : 0;
      unstable_runs += result.report.unstable_blocks_erased > 0 ? 1 : 0;
      sweep_hash ^= result.state_hash + 0x9E3779B97F4A7C15ULL +
                    (sweep_hash << 6) + (sweep_hash >> 2);
      if (!quiet) {
        std::printf(
            "  step %4llu: acked %3llu, recovered %3llu records, "
            "wal+%llu/-%llu torn %llu, rollbacks %llu, orphans %llu, "
            "hash %016llx\n",
            static_cast<unsigned long long>(step),
            static_cast<unsigned long long>(result.acked_ops),
            static_cast<unsigned long long>(result.recovered_records),
            static_cast<unsigned long long>(
                result.report.wal_entries_replayed),
            static_cast<unsigned long long>(
                result.report.wal_entries_skipped),
            static_cast<unsigned long long>(result.report.wal_torn_pages),
            static_cast<unsigned long long>(
                result.report.manifest_rollbacks),
            static_cast<unsigned long long>(
                result.report.orphan_pages_discarded),
            static_cast<unsigned long long>(result.state_hash));
      }
    }
    std::printf(
        "sweep ok: %llu crash points, contract held at every one\n"
        "paths exercised: torn WAL %llu, manifest rollback %llu, orphan GC "
        "%llu, unstable-block erase %llu\n"
        "aggregate sweep hash %016llx\n",
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(wal_torn),
        static_cast<unsigned long long>(rollbacks),
        static_cast<unsigned long long>(orphan_runs),
        static_cast<unsigned long long>(unstable_runs),
        static_cast<unsigned long long>(sweep_hash));
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "crash_sweep: %s\n", error.what());
    return exit_code(error.kind());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "crash_sweep: %s\n", error.what());
    return 1;
  }
}
