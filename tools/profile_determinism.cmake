# Determinism check for the request-tracing profiler, run as a ctest
# target:
#
#   cmake -DNDPGEN_BIN=<path to ndpgen> -DWORK_DIR=<scratch dir> \
#         [-DPYTHON=<python3>] [-DTRACE_REPORT=<trace_report.py>] \
#         -P profile_determinism.cmake
#
# Contract under test (DESIGN.md §10):
#  * for a fixed PE count, every profiler artifact (trace, metrics,
#    attribution) is byte-identical for any --threads value and across
#    repeated runs;
#  * across PE counts the request attribution changes only where the
#    hardware legitimately changes (pe/doorbell phases), but the causal
#    structure — the set of completed request flows, each with exactly one
#    begin and one end — is identical (checked via trace_report.py
#    --structure when python3 is available);
#  * a run that dies with a typed error still flushes --trace/--metrics
#    (exit code 16 path).
if(NOT NDPGEN_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DNDPGEN_BIN=... -DWORK_DIR=... -P profile_determinism.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --workload serve --scale 65536 --requests 24 --seed 7)

# Matrix: pes x threads x repeat. Artifacts are keyed pes<p>_t<t>_r<r>.
foreach(pes 1 4)
  foreach(threads 1 4)
    foreach(run 1 2)
      set(tag "pes${pes}_t${threads}_r${run}")
      execute_process(
        COMMAND "${NDPGEN_BIN}" profile ${common}
                --pes ${pes} --threads ${threads}
                --trace "${WORK_DIR}/trace_${tag}.json"
                --metrics "${WORK_DIR}/metrics_${tag}.json"
                --attribution "${WORK_DIR}/attr_${tag}.json"
        RESULT_VARIABLE status
        OUTPUT_VARIABLE stdout
        ERROR_VARIABLE stderr)
      if(NOT status EQUAL 0)
        message(FATAL_ERROR "ndpgen profile ${tag} failed (${status}):\n${stdout}\n${stderr}")
      endif()
    endforeach()
  endforeach()
endforeach()

# Thread- and rerun-invariance: for each pes, all four artifacts triples
# must equal the pes<p>_t1_r1 reference byte-for-byte.
foreach(pes 1 4)
  foreach(tag "pes${pes}_t1_r2" "pes${pes}_t4_r1" "pes${pes}_t4_r2")
    foreach(kind trace metrics attr)
      execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${WORK_DIR}/${kind}_pes${pes}_t1_r1.json"
                "${WORK_DIR}/${kind}_${tag}.json"
        RESULT_VARIABLE same)
      if(NOT same EQUAL 0)
        message(FATAL_ERROR "${kind} differs between pes${pes}_t1_r1 and ${tag} — profiler output depends on host threading or reruns")
      endif()
    endforeach()
  endforeach()
endforeach()

# The attribution must contain every request and the phase vocabulary.
file(READ "${WORK_DIR}/attr_pes1_t1_r1.json" attribution)
foreach(needle "\"requests\":" "\"totals\":" "\"tenants\":"
        "\"queueing\":" "\"doorbell\":" "\"transfer\":" "\"flash\":"
        "\"pe\":" "\"merge\":" "\"dominant\":")
  string(FIND "${attribution}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "attribution file is missing '${needle}'")
  endif()
endforeach()

# The metrics dump must expose the profiler families and the idle-cycle
# rollup the acceptance criteria name.
file(READ "${WORK_DIR}/metrics_pes1_t1_r1.json" metrics)
foreach(needle "host.phase.flash_ns" "host.tenant0.phase.queueing_ns"
        "hwsim.idle_cycle_fraction" "hwsim.cycles_useful")
  string(FIND "${metrics}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "metrics file is missing expected metric '${needle}'")
  endif()
endforeach()

# Cross-pes structural identity, when python3 is around to project it.
find_program(PYTHON3 NAMES python3 python)
if(PYTHON3 AND TRACE_REPORT)
  foreach(pes 1 4)
    execute_process(
      COMMAND "${PYTHON3}" "${TRACE_REPORT}"
              "${WORK_DIR}/trace_pes${pes}_t1_r1.json"
              --attribution "${WORK_DIR}/attr_pes${pes}_t1_r1.json"
              --validate
      RESULT_VARIABLE status
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr)
    if(NOT status EQUAL 0)
      message(FATAL_ERROR "trace_report --validate failed for pes${pes}:\n${stdout}\n${stderr}")
    endif()
    execute_process(
      COMMAND "${PYTHON3}" "${TRACE_REPORT}"
              "${WORK_DIR}/trace_pes${pes}_t1_r1.json" --structure
      RESULT_VARIABLE status
      OUTPUT_VARIABLE structure
      ERROR_VARIABLE stderr)
    if(NOT status EQUAL 0)
      message(FATAL_ERROR "trace_report --structure failed for pes${pes}:\n${stderr}")
    endif()
    file(WRITE "${WORK_DIR}/structure_pes${pes}.txt" "${structure}")
  endforeach()
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/structure_pes1.txt"
            "${WORK_DIR}/structure_pes4.txt"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "request-flow structure differs between pes=1 and pes=4 — causal links are not pes-invariant")
  endif()
else()
  message(STATUS "python3 or TRACE_REPORT unavailable; skipping structural projection")
endif()

# Abnormal-exit flush: a bad predicate field is a typed kInvalidArg (exit
# 16) thrown mid-run; --trace/--metrics must still be written.
execute_process(
  COMMAND "${NDPGEN_BIN}" scan --dataset papers --mode hw --scale 65536
          --predicate "no_such_field,lt,1"
          --trace "${WORK_DIR}/err_trace.json"
          --metrics "${WORK_DIR}/err_metrics.json"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 16)
  message(FATAL_ERROR "bad-predicate scan exited ${status}, expected 16 (kInvalidArg):\n${stdout}\n${stderr}")
endif()
foreach(artifact err_trace.json err_metrics.json)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "typed-error exit did not flush ${artifact} — observability lost exactly when it matters most")
  endif()
endforeach()
# The bad predicate dies at bind time (before any simulated cycle), so
# only the platform gauge families are expected in the flushed dump.
file(READ "${WORK_DIR}/err_metrics.json" err_metrics)
string(FIND "${err_metrics}" "platform." at)
if(at EQUAL -1)
  message(FATAL_ERROR "flushed error metrics are empty of platform gauges")
endif()

message(STATUS "profile determinism check passed")
