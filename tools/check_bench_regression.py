#!/usr/bin/env python3
"""Guard virtual-time bench results against a committed baseline.

The fig7 benches report *simulated* (virtual) time, so their numbers are
deterministic for a fixed NDPGEN_SCALE — any change is a timing-model
change, not machine noise. CI runs the benches with NDPGEN_BENCH_JSON_DIR
set, then calls this script to compare every BENCH_*.json against
bench/baseline.json and fails when scan throughput drops by more than the
threshold (time/cycle rows grow, or speedup rows shrink).

PE-phase critical-path cycles (rows whose x is "pe_phase_cycles") get
their own, usually tighter, threshold via --pe-phase-threshold: these are
pure PE-pipeline cycle counts, independent of flash timing, so they should
barely move. Baselines recorded before the multi-PE work carry no such
rows; the guard then notes the gap and passes instead of failing.

Tail-latency rows (series named "p99*", from fig_host_service) likewise
get a dedicated --p99-threshold: p99 is the host-service SLO, and a small
mean-throughput win that fattens the tail must still fail CI. Same grace
path — a baseline recorded before the host-service bench has no p99 rows,
so the dedicated guard notes the gap and defers to the general one.

Failover-recovery rows (series "failover_p99", from fig_cluster_failover)
get --failover-p99-threshold: the recovered-tail latency is the cluster's
availability SLO, and a change to failover/rebuild/hedging must not
quietly fatten it. Same grace path — a baseline recorded before the
cluster bench has no failover_p99 rows, so the dedicated guard notes the
gap and defers to the general one.

--obs-overhead-threshold arms the observability-overhead guard, which is
self-referential rather than baseline-relative: within the results, any
series carrying both an "<x>_traced" and an "<x>_untraced" row (emitted by
`ndpgen profile`) must agree to within the threshold. Tracing reports
virtual time, so the two should be *identical*; a drift means an
observability hook perturbed the simulation it claims to observe.

--scrub-overhead-threshold arms the scrub-overhead guard, also
self-referential: within the results, any bench carrying a
"foreground_p99|off" row plus "foreground_p99|<share>" rows (emitted by
fig_scrub_repair) must keep each scrubbed p99 within the bandwidth-steal
model bound share/(1-share) of the scrub-off p99, plus the threshold as
slack. Scrubbing is licensed to cost exactly the bandwidth share it
steals; overhead beyond model + slack means a change made background
scrubbing leak into foreground latency some other way.

--query-overhead-threshold arms the query-plan cut guard, also
self-referential: within the results, any series carrying both a
"<plan>_hw" and a "<plan>_sw" row (emitted by fig_query_plans) must keep
the PE-offloaded time within (1 + threshold) of the forced-SW-fallback
time. The compiler picks the HW/SW cut per plan; an offload that costs
more than the fallback it replaced means the cut policy (or the chain
pricing feeding it) regressed. Same grace path — results without paired
_hw/_sw rows make the guard note the gap and pass.

--sim-throughput-threshold arms the fast-forward speedup guard, also
self-referential: any bench carrying both a "sim_throughput|fast" and a
"sim_throughput|exact" row (wall-clock simulated cycles per second, from
fig7_scan) must show fast mode at least `threshold` times the exact-mode
throughput. These are the only wall-clock rows in the bench suite, so they
never enter the baseline comparison; the ratio between the two modes in
the *same* run is machine-independent enough to gate on, and a collapse
means a change quietly forced the fused fast path back to exact ticking.

Usage:
  check_bench_regression.py --baseline bench/baseline.json --results DIR
  check_bench_regression.py --baseline bench/baseline.json --results DIR \
      --update   # regenerate the baseline from the results instead

Baseline format:
  {"scale": 2048, "threshold": 0.15,
   "benches": {"fig7_scan": {"<series>|<x>": {"value": v, "unit": u}, ...}}}
"""

import argparse
import json
import pathlib
import sys

# Lower is better: virtual seconds / milliseconds / PE cycles.
LOWER_BETTER = {"s", "ms", "cycles"}
# Higher is better: speedup ratios.
HIGHER_BETTER = {"x"}


def is_pe_phase_row(key):
    """True for PE-phase critical-path rows ("<series>|pe_phase_cycles")."""
    return key.endswith("|pe_phase_cycles")


def is_p99_row(key):
    """True for tail-latency rows ("p99*|<load point>")."""
    return key.split("|", 1)[0].startswith("p99")


def is_failover_p99_row(key):
    """True for cluster failover-recovery rows ("failover_p99|<segment>")."""
    return key.split("|", 1)[0] == "failover_p99"


def check_obs_overhead(benches, threshold):
    """Pairs *_traced/*_untraced rows within the results; returns
    (pairs_compared, failure_messages)."""
    compared = 0
    failures = []
    for bench, rows in sorted(benches.items()):
        for key in sorted(rows):
            if not key.endswith("_traced"):
                continue
            other = key[:-len("_traced")] + "_untraced"
            if other not in rows:
                continue
            compared += 1
            traced = rows[key]["value"]
            untraced = rows[other]["value"]
            reference = untraced if untraced != 0 else 1.0
            drift = abs(traced - untraced) / abs(reference)
            if drift > threshold:
                failures.append(
                    f"{bench} {key}: traced {traced:.3f} vs untraced "
                    f"{untraced:.3f} (drift {drift:.1%} > "
                    f"{threshold:.0%}) [obs-overhead]")
    return compared, failures


def check_scrub_overhead(benches, slack):
    """Pairs foreground_p99|off with every foreground_p99|<share> row in
    the same bench; returns (pairs_compared, failure_messages).

    The scrubber steals `share` of a member's read bandwidth, so the
    timing model bounds foreground inflation at share/(1-share). The
    guard allows that modeled cost plus `slack` on top — anything more
    means scrubbing cost foreground latency it is not licensed to."""
    compared = 0
    failures = []
    for bench, rows in sorted(benches.items()):
        off = rows.get("foreground_p99|off")
        if off is None or off["value"] <= 0:
            continue
        for key in sorted(rows):
            series, _, x = key.partition("|")
            if series != "foreground_p99" or x == "off":
                continue
            try:
                share = float(x)
            except ValueError:
                continue
            if not 0.0 < share < 1.0:
                continue
            compared += 1
            overhead = rows[key]["value"] / off["value"] - 1.0
            bound = share / (1.0 - share)
            if overhead > bound + slack:
                failures.append(
                    f"{bench} {key}: p99 {rows[key]['value']:.3f} is "
                    f"+{overhead:.1%} over scrub-off {off['value']:.3f} "
                    f"(model bound {bound:.1%} + slack {slack:.0%}) "
                    f"[scrub-overhead]")
    return compared, failures


def check_query_overhead(benches, threshold):
    """Pairs <plan>_hw/<plan>_sw rows within the results; returns
    (pairs_compared, failure_messages).

    Both rows report virtual time, so the comparison is deterministic:
    the compiled offload must never cost more than (1 + threshold) times
    the forced software fallback for the same plan."""
    compared = 0
    failures = []
    for bench, rows in sorted(benches.items()):
        for key in sorted(rows):
            if not key.endswith("_hw"):
                continue
            other = key[:-len("_hw")] + "_sw"
            if other not in rows:
                continue
            compared += 1
            hw = rows[key]["value"]
            sw = rows[other]["value"]
            if sw <= 0:
                failures.append(
                    f"{bench} {other}: non-positive SW-fallback time "
                    f"{sw:.3f} [query-overhead]")
                continue
            if hw > sw * (1.0 + threshold):
                failures.append(
                    f"{bench} {key}: offloaded {hw:.3f} vs SW fallback "
                    f"{sw:.3f} (+{hw / sw - 1.0:.1%} > {threshold:.0%}) "
                    f"[query-overhead]")
    return compared, failures


def check_sim_throughput(benches, floor):
    """Pairs sim_throughput fast/exact rows within the results; returns
    (pairs_compared, failure_messages)."""
    compared = 0
    failures = []
    for bench, rows in sorted(benches.items()):
        fast = rows.get("sim_throughput|fast")
        exact = rows.get("sim_throughput|exact")
        if fast is None or exact is None:
            continue
        compared += 1
        if exact["value"] <= 0:
            failures.append(
                f"{bench} sim_throughput|exact: non-positive throughput "
                f"{exact['value']:.3f} [sim-throughput]")
            continue
        speedup = fast["value"] / exact["value"]
        if speedup < floor:
            failures.append(
                f"{bench} sim_throughput: fast {fast['value']:.0f} cyc/s is "
                f"only {speedup:.1f}x exact {exact['value']:.0f} cyc/s "
                f"(floor {floor:.1f}x) [sim-throughput]")
    return compared, failures


def load_results(results_dir):
    benches = {}
    for path in sorted(pathlib.Path(results_dir).glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        rows = {}
        for row in data["rows"]:
            key = f"{row['series']}|{row['x']}"
            rows[key] = {"value": row["value"], "unit": row.get("unit", "")}
        benches[data["bench"]] = rows
    return benches


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--results", required=True,
                        help="directory holding BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=None,
                        help="max relative throughput drop (default: from "
                             "baseline file, else 0.15)")
    parser.add_argument("--pe-phase-threshold", type=float, default=None,
                        help="max relative growth of PE-phase critical-path "
                             "cycle rows (default: the general threshold); "
                             "noted and skipped when the baseline predates "
                             "PE-phase rows")
    parser.add_argument("--p99-threshold", type=float, default=None,
                        help="max relative growth of p99 tail-latency rows "
                             "(default: the general threshold); noted and "
                             "skipped when the baseline predates the "
                             "host-service bench")
    parser.add_argument("--failover-p99-threshold", type=float, default=None,
                        help="max relative growth of cluster failover_p99 "
                             "rows (default: the general threshold); noted "
                             "and skipped when the baseline predates the "
                             "cluster-failover bench")
    parser.add_argument("--obs-overhead-threshold", type=float, default=None,
                        help="max relative drift between paired *_traced/"
                             "*_untraced rows in the results (virtual time, "
                             "so instrumentation must not move it); guard "
                             "is off when the flag is absent")
    parser.add_argument("--scrub-overhead-threshold", type=float,
                        default=None,
                        help="max foreground p99 overhead of each "
                             "foreground_p99|<share> row over its "
                             "foreground_p99|off pair, beyond the "
                             "share/(1-share) model bound (slack, from "
                             "fig_scrub_repair); guard is off when the "
                             "flag is absent")
    parser.add_argument("--query-overhead-threshold", type=float,
                        default=None,
                        help="max relative excess of each <plan>_hw row "
                             "over its <plan>_sw pair (virtual time, from "
                             "fig_query_plans): the compiler's HW/SW cut "
                             "must never offload at a loss; guard is off "
                             "when the flag is absent")
    parser.add_argument("--sim-throughput-threshold", type=float,
                        default=None,
                        help="minimum sim_throughput|fast over "
                             "sim_throughput|exact speedup within the "
                             "results (wall-clock rows from fig7_scan); "
                             "guard is off when the flag is absent")
    parser.add_argument("--scale", type=int, default=None,
                        help="NDPGEN_SCALE the results were produced at "
                             "(recorded with --update, checked otherwise)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results")
    args = parser.parse_args()

    benches = load_results(args.results)
    if not benches:
        print(f"error: no BENCH_*.json files in {args.results}")
        return 2

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        baseline = {
            "scale": args.scale if args.scale is not None else 2048,
            "threshold": args.threshold if args.threshold is not None
            else 0.15,
            "benches": benches,
        }
        baseline_path.write_text(json.dumps(baseline, indent=1,
                                            sort_keys=True) + "\n")
        rows = sum(len(r) for r in benches.values())
        print(f"wrote {baseline_path} ({len(benches)} benches, {rows} rows)")
        return 0

    baseline = json.loads(baseline_path.read_text())
    threshold = (args.threshold if args.threshold is not None
                 else baseline.get("threshold", 0.15))
    pe_threshold = (args.pe_phase_threshold
                    if args.pe_phase_threshold is not None else threshold)
    p99_threshold = (args.p99_threshold
                     if args.p99_threshold is not None else threshold)
    failover_threshold = (args.failover_p99_threshold
                          if args.failover_p99_threshold is not None
                          else threshold)
    if args.scale is not None and args.scale != baseline.get("scale"):
        print(f"error: results at scale {args.scale} cannot be compared "
              f"against a scale-{baseline.get('scale')} baseline")
        return 2

    failures = []
    compared = 0
    pe_compared = 0
    p99_compared = 0
    failover_compared = 0
    for bench, base_rows in baseline["benches"].items():
        new_rows = benches.get(bench)
        if new_rows is None:
            failures.append(f"{bench}: no BENCH_{bench}.json in results")
            continue
        for key, base in base_rows.items():
            new = new_rows.get(key)
            if new is None:
                # Renamed/removed rows are reported, never fatal — benches
                # may evolve; regenerate the baseline alongside.
                print(f"note: {bench} {key} missing from results")
                continue
            unit = base.get("unit", "")
            base_value, new_value = base["value"], new["value"]
            row_threshold = threshold
            tag = ""
            if is_pe_phase_row(key):
                pe_compared += 1
                row_threshold = pe_threshold
                tag = " [pe-phase]"
            elif is_failover_p99_row(key):
                failover_compared += 1
                row_threshold = failover_threshold
                tag = " [failover-p99]"
            elif is_p99_row(key):
                p99_compared += 1
                row_threshold = p99_threshold
                tag = " [p99]"
            if unit in LOWER_BETTER and base_value > 0:
                # Throughput ~ 1/time: a drop of `threshold` means the
                # time/cycle count grew past base / (1 - threshold).
                compared += 1
                limit = base_value / (1.0 - row_threshold)
                if new_value > limit:
                    drop = 1.0 - base_value / new_value
                    failures.append(
                        f"{bench} {key}: {new_value:.3f} {unit} vs baseline "
                        f"{base_value:.3f} (throughput -{drop:.1%}){tag}")
            elif unit in HIGHER_BETTER and base_value > 0:
                compared += 1
                limit = base_value * (1.0 - row_threshold)
                if new_value < limit:
                    drop = 1.0 - new_value / base_value
                    failures.append(
                        f"{bench} {key}: {new_value:.3f}{unit} vs baseline "
                        f"{base_value:.3f} (-{drop:.1%}){tag}")

    if args.obs_overhead_threshold is not None:
        obs_compared, obs_failures = check_obs_overhead(
            benches, args.obs_overhead_threshold)
        failures.extend(obs_failures)
        if obs_compared == 0:
            print("note: no *_traced/*_untraced row pairs in results; "
                  "obs-overhead guard had nothing to compare")
        else:
            print(f"obs-overhead guard: {obs_compared} traced/untraced "
                  f"pairs (threshold {args.obs_overhead_threshold:.0%})")
    if args.scrub_overhead_threshold is not None:
        scrub_compared, scrub_failures = check_scrub_overhead(
            benches, args.scrub_overhead_threshold)
        failures.extend(scrub_failures)
        if scrub_compared == 0:
            print("note: no foreground_p99 off/share row pairs in results; "
                  "scrub-overhead guard had nothing to compare")
        else:
            print(f"scrub-overhead guard: {scrub_compared} share rows "
                  f"(slack {args.scrub_overhead_threshold:.0%})")
    if args.query_overhead_threshold is not None:
        query_compared, query_failures = check_query_overhead(
            benches, args.query_overhead_threshold)
        failures.extend(query_failures)
        if query_compared == 0:
            print("note: no <plan>_hw/<plan>_sw row pairs in results; "
                  "query-overhead guard had nothing to compare")
        else:
            print(f"query-overhead guard: {query_compared} hw/sw plan "
                  f"pairs (threshold {args.query_overhead_threshold:.0%})")
    if args.sim_throughput_threshold is not None:
        sim_compared, sim_failures = check_sim_throughput(
            benches, args.sim_throughput_threshold)
        failures.extend(sim_failures)
        if sim_compared == 0:
            print("note: no sim_throughput fast/exact row pairs in "
                  "results; sim-throughput guard had nothing to compare")
        else:
            print(f"sim-throughput guard: {sim_compared} fast/exact pairs "
                  f"(floor {args.sim_throughput_threshold:.1f}x)")
    if pe_compared == 0:
        # Grace path: a baseline recorded before the multi-PE benches has
        # no pe_phase_cycles rows. The general guard still ran; the
        # dedicated PE-phase guard just has nothing to hold on to.
        print("note: baseline has no pe_phase_cycles rows; "
              "PE-phase guard skipped (regenerate with --update to arm it)")
    else:
        print(f"pe-phase guard: {pe_compared} critical-path rows "
              f"(threshold {pe_threshold:.0%})")
    if p99_compared == 0:
        # Same grace path for baselines predating the host-service bench.
        print("note: baseline has no p99 rows; tail-latency guard skipped "
              "(regenerate with --update to arm it)")
    else:
        print(f"p99 guard: {p99_compared} tail-latency rows "
              f"(threshold {p99_threshold:.0%})")
    if failover_compared == 0:
        # Same grace path for baselines predating the cluster bench.
        print("note: baseline has no failover_p99 rows; failover-recovery "
              "guard skipped (regenerate with --update to arm it)")
    else:
        print(f"failover-p99 guard: {failover_compared} recovery rows "
              f"(threshold {failover_threshold:.0%})")
    print(f"checked {compared} rows against {baseline_path} "
          f"(threshold {threshold:.0%})")
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
