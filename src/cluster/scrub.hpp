// Background replica scrubbing.
//
// Each cluster member gets a DeviceScrubber that cyclically walks the
// member's SST data blocks verifying the per-block CRC32C — the classic
// patrol read that turns latent media rot into detected (and repairable)
// errors before a foreground query trips over them. The scrubber is
// budget-paced on the cluster's virtual clock: every coordinator dispatch
// advances the scrubber to "now", accrues `scrub_share x bandwidth_mbps`
// worth of byte budget for the elapsed interval, and verifies as many
// whole blocks as the budget covers. Pacing off coordinator dispatch
// times keeps the scrub schedule a pure function of the host timeline, so
// the determinism invariant (byte-reproducible per seed, invariant across
// --pes/--threads) holds with scrubbing enabled.
//
// The foreground cost is modeled the same way rebuild-source inflation
// is: while scrubbing is enabled a member's sub-scan latency is scaled by
// 1 / (1 - scrub_share) — the scrubber steals that share of the device's
// read bandwidth.
//
// A CRC mismatch is first retried through the firmware recovery path
// (reread_block_recovered): transient ECC marks come back clean and only
// count as `transient_recovered`. A block that STILL mismatches holds
// persistent rot; the scrubber reports it so the coordinator can run the
// replica-sourced repair. Wrong-data corruption (content rotted AND index
// CRC rewritten) passes every CRC check by construction — catching that
// is anti-entropy's job (see cluster/antientropy.hpp).
#pragma once

#include <cstdint>

#include "cluster/device.hpp"

namespace ndpgen::cluster {

struct ScrubConfig {
  bool enabled = false;
  /// Fraction of device read bandwidth the scrubber may steal. Foreground
  /// sub-scans on a scrubbing member are inflated by 1/(1-scrub_share).
  double scrub_share = 0.1;
  /// Full-rate patrol-read bandwidth; the paced budget is
  /// scrub_share x bandwidth_mbps.
  double bandwidth_mbps = 200.0;
};

struct ScrubReport {
  std::uint64_t blocks_verified = 0;
  std::uint64_t bytes_scanned = 0;
  /// Mismatches that came back clean on the recovery re-read.
  std::uint64_t transient_recovered = 0;
  /// Persistent CRC failures (real rot) detected.
  std::uint64_t crc_failures = 0;
};

class DeviceScrubber {
 public:
  DeviceScrubber(SmartSsdDevice& device, ScrubConfig config);

  /// Advances the patrol to `now`: accrues byte budget for the elapsed
  /// interval and verifies as many whole blocks as it covers. Returns the
  /// number of persistent CRC failures detected during THIS advance (the
  /// coordinator's repair trigger).
  std::uint64_t advance(platform::SimTime now);

  [[nodiscard]] const ScrubReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const ScrubConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Verifies the block under the cursor; advances the cursor. Returns
  /// true on a persistent CRC failure.
  bool verify_block(const std::shared_ptr<kv::SSTable>& table,
                    std::uint32_t block_index);

  SmartSsdDevice& device_;
  ScrubConfig config_;
  platform::SimTime last_advance_ = 0;
  double budget_bytes_ = 0.0;
  std::uint64_t cursor_ = 0;  ///< Flat block index into the current walk.
  ScrubReport report_;
};

}  // namespace ndpgen::cluster
