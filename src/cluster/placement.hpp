// Consistent-hash data placement for the smart-SSD cluster.
//
// Keys hash into a fixed set of partitions; partitions map onto devices
// through a consistent-hash ring with virtual nodes, R distinct devices
// per partition (R-way replication). The ring — not a modulo table — so
// losing a device moves only that device's partitions, and a spare can
// inherit a dead member's ring positions verbatim (replace_device), which
// keeps every surviving partition->replica assignment stable across a
// rebuild.
//
// Everything is a pure function of (seed, device ids): no RNG stream is
// consumed at lookup time, so placement is byte-deterministic and
// invariant across --pes/--threads.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/key.hpp"
#include "support/error.hpp"

namespace ndpgen::cluster {

struct PlacementConfig {
  std::uint32_t devices = 4;      ///< Initial ring members (ids 0..N-1).
  std::uint32_t replication = 2;  ///< Replicas per partition (<= devices).
  std::uint32_t partitions = 64;  ///< Hash partitions (placement grain).
  std::uint32_t vnodes = 16;      ///< Ring positions per device.
  std::uint64_t seed = 20210521;  ///< Ring/partition hash seed.
};

class ClusterPlacement {
 public:
  explicit ClusterPlacement(PlacementConfig config);

  [[nodiscard]] const PlacementConfig& config() const noexcept {
    return config_;
  }

  /// Partition a key hashes into (0..partitions-1).
  [[nodiscard]] std::uint32_t partition_of(const kv::Key& key) const noexcept;

  /// The R distinct devices replicating `partition`, in ring walk order
  /// (index 0 is the "primary" only by convention; any replica serves).
  [[nodiscard]] const std::vector<std::uint32_t>& replicas(
      std::uint32_t partition) const;

  /// Every partition `device` replicates, ascending.
  [[nodiscard]] std::vector<std::uint32_t> partitions_of(
      std::uint32_t device) const;

  /// True when `device` is one of `partition`'s replicas.
  [[nodiscard]] bool replicates(std::uint32_t device,
                                std::uint32_t partition) const;

  /// Swaps a dead member for a spare: the spare takes over the dead
  /// device's ring positions, so it inherits exactly the dead device's
  /// partitions and no other assignment moves. The dead id leaves the
  /// ring permanently.
  void replace_device(std::uint32_t dead, std::uint32_t spare);

 private:
  struct VNode {
    std::uint64_t hash = 0;
    std::uint32_t device = 0;
  };

  void rebuild_tables();

  PlacementConfig config_;
  std::vector<VNode> ring_;  ///< Sorted by hash (ties: device id).
  /// partition -> replica device list (size == replication).
  std::vector<std::vector<std::uint32_t>> replica_table_;
};

}  // namespace ndpgen::cluster
