// Per-device health tracking for the cluster frontend.
//
// The coordinator probes every active device at each dispatch (the
// heartbeat — in a discrete-event world the probe is free and happens at
// a known virtual time) and reports per-sub-scan outcomes. Health fuses
// two signals:
//
//  * heartbeat staleness — a device whose link was down at probe time
//    misses the beat; miss once -> Suspect, miss past the dead timeout ->
//    Dead;
//  * an error-rate EWMA over sub-scan outcomes — a device that keeps
//    failing offloads goes Suspect above the suspect threshold and Dead
//    above the dead threshold, and decays back to Alive on successes
//    (transient flaps recover, crashes do not).
//
// Transitions are pure functions of the recorded (outcome, time) stream,
// so the failover timeline is byte-deterministic. Dead is sticky: a dead
// device never serves again (its replacement spare does).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "platform/event_queue.hpp"
#include "support/error.hpp"

namespace ndpgen::cluster {

enum class DeviceState : std::uint8_t { kAlive, kSuspect, kDead };

[[nodiscard]] constexpr std::string_view to_string(
    DeviceState state) noexcept {
  switch (state) {
    case DeviceState::kAlive: return "alive";
    case DeviceState::kSuspect: return "suspect";
    case DeviceState::kDead: return "dead";
  }
  return "?";
}

struct HealthConfig {
  /// EWMA smoothing factor for the per-device error rate.
  double ewma_alpha = 0.5;
  /// Error-rate EWMA above this -> Suspect (stop preferring the device).
  double suspect_threshold = 0.4;
  /// Error-rate EWMA above this -> Dead (trigger failover + rebuild).
  double dead_threshold = 0.75;
  /// A Suspect device whose last successful probe is older than this
  /// (virtual ns) escalates to Dead even without further offload errors —
  /// the path that retires a crashed member nobody routes work to. Must
  /// exceed the transient-fault windows (link flaps, brownouts) so those
  /// recover instead of being rebuilt around.
  platform::SimTime dead_after_ns = 10 * 1000 * 1000;  // 10 ms
};

class HealthMonitor {
 public:
  HealthMonitor(std::uint32_t devices, HealthConfig config);

  /// Heartbeat probe result for `device` at virtual time `now`.
  void record_heartbeat(std::uint32_t device, bool reachable,
                        platform::SimTime now);

  /// Outcome of one offloaded sub-scan on `device`.
  void record_success(std::uint32_t device, platform::SimTime now);
  void record_error(std::uint32_t device, platform::SimTime now);

  /// A detected integrity fault (persistent CRC failure or digest
  /// divergence) on `device`. Counts into the same error EWMA — repeated
  /// corruption drives a replica to Suspect so reads route around it —
  /// but never to Dead on its own: the device still answers, and repair
  /// (not failover) is the proportionate response.
  void record_integrity_error(std::uint32_t device, platform::SimTime now);

  /// Escalates stale Suspect devices to Dead; call at each dispatch.
  void refresh(platform::SimTime now);

  /// Marks a device Dead unconditionally (the coordinator's verdict after
  /// replica exhaustion; also used when a spare replaces a member).
  void declare_dead(std::uint32_t device, platform::SimTime now);

  [[nodiscard]] DeviceState state(std::uint32_t device) const;
  [[nodiscard]] double error_rate(std::uint32_t device) const;
  [[nodiscard]] std::uint32_t devices() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  /// State-change count (Alive->Suspect, Suspect->Dead, Suspect->Alive);
  /// feeds the cluster.health.transitions metric.
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

 private:
  struct Entry {
    DeviceState state = DeviceState::kAlive;
    double error_ewma = 0.0;
    platform::SimTime last_ok = 0;       ///< Last reachable probe/success.
    platform::SimTime suspect_since = 0;
    bool ever_missed = false;
  };

  void observe(std::uint32_t device, bool ok, platform::SimTime now,
               bool can_kill);
  void transition(Entry& entry, DeviceState next, platform::SimTime now);

  HealthConfig config_;
  std::vector<Entry> entries_;
  std::uint64_t transitions_ = 0;
};

}  // namespace ndpgen::cluster
