#include "cluster/placement.hpp"

#include <algorithm>

namespace ndpgen::cluster {

namespace {

/// splitmix64 finalizer: the stateless mix used everywhere placement
/// needs a hash, so the ring is a pure function of its inputs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Domain separator so partition anchors never collide with vnode hashes.
constexpr std::uint64_t kPartitionSalt = 0x636c757374657221ULL;  // "cluster!"

}  // namespace

ClusterPlacement::ClusterPlacement(PlacementConfig config)
    : config_(config) {
  NDPGEN_CHECK_ARG(config_.devices >= 1, "cluster needs at least one device");
  NDPGEN_CHECK_ARG(config_.replication >= 1,
                   "replication factor must be at least 1");
  NDPGEN_CHECK_ARG(config_.replication <= config_.devices,
                   "replication factor cannot exceed the device count");
  NDPGEN_CHECK_ARG(config_.partitions >= 1, "need at least one partition");
  NDPGEN_CHECK_ARG(config_.vnodes >= 1, "need at least one vnode per device");
  ring_.reserve(static_cast<std::size_t>(config_.devices) * config_.vnodes);
  for (std::uint32_t d = 0; d < config_.devices; ++d) {
    for (std::uint32_t v = 0; v < config_.vnodes; ++v) {
      const std::uint64_t h =
          mix64(config_.seed ^ (static_cast<std::uint64_t>(d) << 32 | v));
      ring_.push_back(VNode{h, d});
    }
  }
  rebuild_tables();
}

void ClusterPlacement::rebuild_tables() {
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.device < b.device;
  });
  replica_table_.assign(config_.partitions, {});
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    const std::uint64_t h = mix64(config_.seed ^ kPartitionSalt ^ p);
    // First vnode clockwise of the partition anchor, then walk until R
    // distinct devices are collected.
    auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                               [](const VNode& node, std::uint64_t value) {
                                 return node.hash < value;
                               });
    std::vector<std::uint32_t>& replicas = replica_table_[p];
    for (std::size_t step = 0;
         step < ring_.size() && replicas.size() < config_.replication;
         ++step, ++it) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(replicas.begin(), replicas.end(), it->device) ==
          replicas.end()) {
        replicas.push_back(it->device);
      }
    }
    NDPGEN_CHECK(replicas.size() == config_.replication,
                 "ring walk found fewer distinct devices than R");
  }
}

std::uint32_t ClusterPlacement::partition_of(
    const kv::Key& key) const noexcept {
  return static_cast<std::uint32_t>(
      mix64(config_.seed ^ (key.hi * 0x9e3779b97f4a7c15ULL) ^ key.lo) %
      config_.partitions);
}

const std::vector<std::uint32_t>& ClusterPlacement::replicas(
    std::uint32_t partition) const {
  NDPGEN_CHECK_ARG(partition < config_.partitions, "partition out of range");
  return replica_table_[partition];
}

std::vector<std::uint32_t> ClusterPlacement::partitions_of(
    std::uint32_t device) const {
  std::vector<std::uint32_t> owned;
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    if (replicates(device, p)) owned.push_back(p);
  }
  return owned;
}

bool ClusterPlacement::replicates(std::uint32_t device,
                                  std::uint32_t partition) const {
  const std::vector<std::uint32_t>& r = replicas(partition);
  return std::find(r.begin(), r.end(), device) != r.end();
}

void ClusterPlacement::replace_device(std::uint32_t dead,
                                      std::uint32_t spare) {
  NDPGEN_CHECK_ARG(dead != spare, "cannot replace a device with itself");
  bool found = false;
  for (VNode& node : ring_) {
    NDPGEN_CHECK_ARG(node.device != spare,
                     "spare device is already on the ring");
    if (node.device == dead) {
      node.device = spare;
      found = true;
    }
  }
  NDPGEN_CHECK_ARG(found, "dead device is not on the ring");
  for (std::vector<std::uint32_t>& replicas : replica_table_) {
    for (std::uint32_t& device : replicas) {
      if (device == dead) device = spare;
    }
  }
}

}  // namespace ndpgen::cluster
