#include "cluster/pubgraph_cluster.hpp"

namespace ndpgen::cluster {

namespace {

[[nodiscard]] kv::DBConfig paper_db_config() {
  kv::DBConfig config;
  config.record_bytes = workload::PaperRecord::kBytes;
  config.extractor = workload::paper_key;
  return config;
}

/// Streams the generator's papers restricted to `wanted` partitions into
/// a device (members at build time, spares at rebuild time). Partition
/// hashing is ring-independent, so a throwaway placement computes it.
void load_partition_subset(SmartSsdDevice& device,
                           const workload::PubGraphGenerator& generator,
                           const ClusterPlacement& hash,
                           const std::vector<bool>& wanted) {
  std::uint64_t index = 0;
  device.load_sorted(
      /*level=*/2,
      [&](std::vector<std::uint8_t>& record) {
        while (index < generator.paper_count()) {
          std::vector<std::uint8_t> candidate =
              generator.paper(index++).serialize();
          if (wanted[hash.partition_of(workload::paper_key(candidate))]) {
            record = std::move(candidate);
            return true;
          }
        }
        return false;
      },
      /*records_per_sst=*/64 * 255);
}

}  // namespace

std::unique_ptr<PubgraphCluster> build_pubgraph_cluster(
    const ClusterBuildConfig& config) {
  NDPGEN_CHECK_ARG(config.devices >= 1, "cluster needs at least one device");
  auto cluster = std::make_unique<PubgraphCluster>();
  cluster->compiled =
      cluster->framework.compile(workload::pubgraph_spec_source());
  cluster->generator = workload::PubGraphGenerator(
      workload::PubGraphConfig{.scale_divisor = config.scale_divisor,
                               .seed = config.seed});

  PlacementConfig placement_config;
  placement_config.devices = config.devices;
  placement_config.replication = config.replication;
  placement_config.partitions = config.partitions;
  placement_config.vnodes = config.vnodes;
  placement_config.seed = config.seed;
  const ClusterPlacement placement(placement_config);

  const auto& artifacts = cluster->compiled.get("PaperScan");
  std::vector<std::unique_ptr<SmartSsdDevice>> devices;
  const std::uint32_t total = config.devices + config.spares;
  devices.reserve(total);
  for (std::uint32_t d = 0; d < total; ++d) {
    platform::CosmosConfig cosmos_config;
    cosmos_config.fault = config.media_fault;
    // Independent per-member fault streams from one base seed.
    cosmos_config.fault.seed =
        config.media_fault.seed ^ (0x9e3779b97f4a7c15ULL * (d + 1));
    auto device = std::make_unique<SmartSsdDevice>(d, cosmos_config,
                                                   paper_db_config());
    if (config.digests) {
      // Before any load: the maintained trees must see every record the
      // store ever gains. Spares get them too — they load at failover.
      const ClusterPlacement hash(placement_config);
      device->enable_digests(config.partitions, [hash](const kv::Key& key) {
        return hash.partition_of(key);
      });
    }
    if (d < config.devices) {
      std::vector<bool> wanted(config.partitions, false);
      for (const std::uint32_t p : placement.partitions_of(d)) {
        wanted[p] = true;
      }
      load_partition_subset(*device, cluster->generator, placement, wanted);
    }
    ndp::ExecutorConfig exec_config;
    exec_config.mode = config.mode;
    exec_config.num_pes = config.pes;
    exec_config.pe_threads = config.threads;
    exec_config.result_key_extractor = workload::paper_result_key;
    if (config.mode == ndp::ExecMode::kHardware) {
      exec_config.pe_indices = {cluster->framework.instantiate(
          cluster->compiled, "PaperScan", device->platform())};
    }
    device->attach_executor(artifacts.analyzed, artifacts.design.operators,
                            std::move(exec_config));
    devices.push_back(std::move(device));
  }

  CoordinatorConfig coord_config;
  coord_config.placement = placement_config;
  coord_config.health = config.health;
  coord_config.rebuild = config.rebuild;
  coord_config.device_fault = config.device_fault;
  coord_config.result_key = workload::paper_result_key;
  coord_config.hedge_factor = config.hedge_factor;
  coord_config.hedge_floor_ns = config.hedge_floor_ns;
  coord_config.hedge_min_samples = config.hedge_min_samples;
  coord_config.scrub = config.scrub;

  // The rebuild copy is charged by the RebuildManager; this loader is the
  // structural stand-in that materializes the copied partitions on the
  // spare from the same deterministic generator.
  const workload::PubGraphGenerator& generator = cluster->generator;
  const std::uint32_t partitions = config.partitions;
  ClusterCoordinator::SpareLoader loader =
      [&generator, placement_config, partitions](
          SmartSsdDevice& spare,
          const std::vector<std::uint32_t>& lost) {
        const ClusterPlacement hash(placement_config);
        std::vector<bool> wanted(partitions, false);
        for (const std::uint32_t p : lost) wanted[p] = true;
        load_partition_subset(spare, generator, hash, wanted);
      };

  cluster->coordinator = std::make_unique<ClusterCoordinator>(
      coord_config, std::move(devices), std::move(loader));
  return cluster;
}

}  // namespace ndpgen::cluster
