// Builder wiring the paper's pubgraph workload onto a smart-SSD cluster.
//
// Constructs N+S full device stacks (members + spares), compiles the
// PaperScan parser once, attaches one generated PE per device, loads each
// member with exactly the partitions placement assigns it, and returns a
// ClusterCoordinator ready to sit behind host::QueryService. The CLI,
// tests and benches all build clusters through this one path so their
// topologies — and their byte-deterministic timelines — agree.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/coordinator.hpp"
#include "core/framework.hpp"
#include "workload/pubgraph.hpp"

namespace ndpgen::cluster {

struct ClusterBuildConfig {
  std::uint32_t devices = 4;      ///< Ring members.
  std::uint32_t replication = 2;  ///< Replicas per partition.
  std::uint32_t spares = 1;       ///< Standby devices for rebuild.
  std::uint32_t partitions = 64;
  std::uint32_t vnodes = 16;
  std::uint64_t scale_divisor = 2048;  ///< Pubgraph population divisor.
  std::uint64_t seed = 20210521;
  ndp::ExecMode mode = ndp::ExecMode::kHardware;
  std::uint32_t pes = 1;      ///< PE shards per device scan.
  std::uint32_t threads = 0;  ///< Host threads driving the shards.
  /// Device-level fault schedule (crash/brownout/flap; none by default).
  fault::FaultProfile device_fault;
  /// Per-device media profile (bit errors etc.); seeded per device so the
  /// member fault streams are independent.
  fault::FaultProfile media_fault;
  HealthConfig health;
  RebuildConfig rebuild;
  double hedge_factor = 3.0;
  platform::SimTime hedge_floor_ns = 200 * 1000;
  std::uint32_t hedge_min_samples = 16;
  /// Background CRC scrubbing (see cluster/scrub.hpp).
  ScrubConfig scrub;
  /// Maintain per-partition digest trees on every device (required for
  /// anti-entropy; a few extra ns per loaded record when on).
  bool digests = true;
};

/// Owns everything the coordinator's devices borrow (compiled artifacts,
/// the generator) — keep it alive as long as the coordinator runs.
struct PubgraphCluster {
  core::Framework framework;
  core::CompileResult compiled;
  workload::PubGraphGenerator generator;
  std::unique_ptr<ClusterCoordinator> coordinator;
};

[[nodiscard]] std::unique_ptr<PubgraphCluster> build_pubgraph_cluster(
    const ClusterBuildConfig& config);

}  // namespace ndpgen::cluster
