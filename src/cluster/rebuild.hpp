// Catch-up rebuild of lost replicas onto spare devices.
//
// When the health monitor declares a member Dead, the coordinator swaps a
// spare onto the dead device's ring positions and starts a rebuild: the
// surviving replicas of the lost partitions stream their copies to the
// spare. The copy contends with foreground scans, so rebuild bandwidth is
// arbitrated: `rebuild_share` of the source devices' bandwidth goes to
// the copy (setting the rebuild duration) and foreground work dispatched
// on a source inside the window is slowed by 1/(1 - rebuild_share).
//
// The spare starts serving reads only once the copy completes — until
// then its partitions are served by the surviving replicas — so
// durability is restored at `completes` and read capacity shortly before
// that never regresses. All arithmetic is integer/virtual-time, hence
// byte-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/event_queue.hpp"
#include "support/error.hpp"

namespace ndpgen::cluster {

struct RebuildConfig {
  /// Aggregate copy bandwidth of one source device (MB/s, decimal).
  std::uint64_t bandwidth_mbps = 200;
  /// Fraction of source-device bandwidth the copy may take (0, 1).
  double rebuild_share = 0.3;
};

struct RebuildJob {
  std::uint32_t dead = 0;
  std::uint32_t spare = 0;
  std::uint64_t bytes = 0;  ///< Replica payload re-replicated.
  std::vector<std::uint32_t> sources;
  platform::SimTime started = 0;
  platform::SimTime completes = 0;
};

class RebuildManager {
 public:
  explicit RebuildManager(RebuildConfig config);

  /// Schedules the copy of `bytes` from `sources` (read in parallel, so
  /// the duration is the largest per-source share) onto `spare`; returns
  /// the job. `sources` must be non-empty — no source means the data is
  /// gone and the caller must fail the affected partitions instead.
  const RebuildJob& start(std::uint32_t dead, std::uint32_t spare,
                          std::vector<std::uint32_t> sources,
                          std::uint64_t bytes, platform::SimTime now);

  /// True while any job is copying at `t`.
  [[nodiscard]] bool rebuilding_at(platform::SimTime t) const noexcept;

  /// True when `device` is a copy source inside a job window at `t`;
  /// foreground work dispatched on it then pays source_inflation().
  [[nodiscard]] bool device_is_source_at(std::uint32_t device,
                                         platform::SimTime t) const noexcept;

  /// Latency multiplier for foreground work on a copy source.
  [[nodiscard]] double source_inflation() const noexcept {
    return 1.0 / (1.0 - config_.rebuild_share);
  }

  /// True once `spare`'s catch-up copy has completed by `t` (a spare with
  /// no job never serves).
  [[nodiscard]] bool spare_ready_at(std::uint32_t spare,
                                    platform::SimTime t) const noexcept;

  [[nodiscard]] const std::vector<RebuildJob>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] const RebuildConfig& config() const noexcept {
    return config_;
  }

 private:
  RebuildConfig config_;
  std::vector<RebuildJob> jobs_;
};

}  // namespace ndpgen::cluster
