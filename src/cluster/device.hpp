// One simulated smart-SSD cluster member.
//
// Each device is a full independent stack — its own CosmosPlatform (DES,
// flash, NVMe link, PEs, fault injector seeded per device), its own nKV
// store holding only the partitions placement assigned to it, and its own
// HybridExecutor. Nothing is shared between members: device timelines,
// fault streams and flash layouts are isolated, exactly like N physical
// SSDs behind one host frontend. The coordinator talks to members only
// through elapsed virtual time and result bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/antientropy.hpp"
#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "platform/cosmos.hpp"

namespace ndpgen::cluster {

class SmartSsdDevice {
 public:
  /// Builds the platform + store; the executor attaches after the
  /// builder instantiates the device's PEs (attach_executor).
  SmartSsdDevice(std::uint32_t id, platform::CosmosConfig cosmos_config,
                 kv::DBConfig db_config);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] platform::CosmosPlatform& platform() noexcept {
    return *platform_;
  }
  [[nodiscard]] kv::NKV& db() noexcept { return *db_; }

  /// Bulk-loads key-sorted records (this device's partition subset) and
  /// tracks the payload volume for rebuild sizing.
  std::uint64_t load_sorted(
      std::uint32_t level,
      const std::function<bool(std::vector<std::uint8_t>&)>& next_record,
      std::uint64_t records_per_sst);

  /// Attaches the NDP executor over artifacts owned by the caller (the
  /// CompileResult outlives the cluster, as in every bench/test).
  void attach_executor(const analysis::AnalyzedParser& analyzed,
                       const hwgen::OperatorSet& operators,
                       ndp::ExecutorConfig exec_config);

  [[nodiscard]] bool has_executor() const noexcept {
    return executor_ != nullptr;
  }
  [[nodiscard]] ndp::HybridExecutor& executor();

  [[nodiscard]] std::uint64_t records_loaded() const noexcept {
    return records_loaded_;
  }
  [[nodiscard]] std::uint64_t bytes_loaded() const noexcept {
    return bytes_loaded_;
  }

  // --- Replica integrity ------------------------------------------------

  /// Turns on incremental partition digests: installs the store's record
  /// hook so flush / bulk load / compaction keep the MAINTAINED trees
  /// current. Must run before any data is loaded.
  void enable_digests(std::uint32_t partitions, PartitionOfKey partition_of);

  [[nodiscard]] bool digests_enabled() const noexcept {
    return !maintained_.empty();
  }
  /// What this device SHOULD hold (updated at write time, pre-corruption).
  [[nodiscard]] const PartitionDigestSet& maintained_digests() const noexcept {
    return maintained_;
  }
  /// What this device's flash ACTUALLY holds (re-read every call).
  [[nodiscard]] PartitionDigestSet observed_digests();
  [[nodiscard]] const PartitionOfKey& partition_of() const noexcept {
    return partition_of_;
  }

  /// Flips one record byte in `count` deterministically chosen SST blocks
  /// (seeded pick over the current block list). With `wrong_data` the
  /// block's index CRC is rewritten to match the rotted content, so only
  /// digest comparison — not CRC scrubbing — can catch it. Original page
  /// bytes and CRCs go into a repair ledger. Returns blocks corrupted.
  std::uint64_t corrupt_blocks(std::uint32_t count, std::uint64_t seed,
                               bool wrong_data = false);

  /// Restores every ledgered page and CRC (the replica-sourced repair
  /// write, content side; the coordinator charges its time). Returns
  /// flash bytes rewritten.
  std::uint64_t repair_corruption();

  [[nodiscard]] bool has_corruption() const noexcept {
    return !corruption_ledger_.empty();
  }
  [[nodiscard]] std::uint64_t corrupted_block_count() const noexcept {
    return corruption_ledger_.size();
  }

 private:
  /// One corrupted block: enough state to undo the damage byte-exactly.
  struct CorruptionRecord {
    std::shared_ptr<kv::SSTable> table;
    std::uint32_t block_index = 0;
    std::uint32_t original_crc = 0;
    /// (linear page number, original page image) per touched page.
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> pages;
  };

  std::uint32_t id_;
  std::unique_ptr<platform::CosmosPlatform> platform_;
  std::unique_ptr<kv::NKV> db_;
  std::unique_ptr<ndp::HybridExecutor> executor_;
  std::uint64_t records_loaded_ = 0;
  std::uint64_t bytes_loaded_ = 0;
  PartitionDigestSet maintained_;
  PartitionOfKey partition_of_;
  std::vector<CorruptionRecord> corruption_ledger_;
};

}  // namespace ndpgen::cluster
