// One simulated smart-SSD cluster member.
//
// Each device is a full independent stack — its own CosmosPlatform (DES,
// flash, NVMe link, PEs, fault injector seeded per device), its own nKV
// store holding only the partitions placement assigned to it, and its own
// HybridExecutor. Nothing is shared between members: device timelines,
// fault streams and flash layouts are isolated, exactly like N physical
// SSDs behind one host frontend. The coordinator talks to members only
// through elapsed virtual time and result bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kv/db.hpp"
#include "ndp/executor.hpp"
#include "platform/cosmos.hpp"

namespace ndpgen::cluster {

class SmartSsdDevice {
 public:
  /// Builds the platform + store; the executor attaches after the
  /// builder instantiates the device's PEs (attach_executor).
  SmartSsdDevice(std::uint32_t id, platform::CosmosConfig cosmos_config,
                 kv::DBConfig db_config);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] platform::CosmosPlatform& platform() noexcept {
    return *platform_;
  }
  [[nodiscard]] kv::NKV& db() noexcept { return *db_; }

  /// Bulk-loads key-sorted records (this device's partition subset) and
  /// tracks the payload volume for rebuild sizing.
  std::uint64_t load_sorted(
      std::uint32_t level,
      const std::function<bool(std::vector<std::uint8_t>&)>& next_record,
      std::uint64_t records_per_sst);

  /// Attaches the NDP executor over artifacts owned by the caller (the
  /// CompileResult outlives the cluster, as in every bench/test).
  void attach_executor(const analysis::AnalyzedParser& analyzed,
                       const hwgen::OperatorSet& operators,
                       ndp::ExecutorConfig exec_config);

  [[nodiscard]] bool has_executor() const noexcept {
    return executor_ != nullptr;
  }
  [[nodiscard]] ndp::HybridExecutor& executor();

  [[nodiscard]] std::uint64_t records_loaded() const noexcept {
    return records_loaded_;
  }
  [[nodiscard]] std::uint64_t bytes_loaded() const noexcept {
    return bytes_loaded_;
  }

 private:
  std::uint32_t id_;
  std::unique_ptr<platform::CosmosPlatform> platform_;
  std::unique_ptr<kv::NKV> db_;
  std::unique_ptr<ndp::HybridExecutor> executor_;
  std::uint64_t records_loaded_ = 0;
  std::uint64_t bytes_loaded_ = 0;
};

}  // namespace ndpgen::cluster
