// Partition digests for replica anti-entropy.
//
// Replicas of a partition hold the same logical records but pack them
// into independently laid-out SSTs (each member's LSM mixes its whole
// partition subset), so physical block CRCs are NOT comparable across
// replicas. The unit of comparison is therefore a *logical* digest: per
// partition, a small hash tree whose leaves XOR-accumulate an
// order-independent hash of every live record bucketed by record hash.
// Equal record multisets give equal trees regardless of SST layout,
// compaction history or flush order; XOR makes add/remove self-inverse,
// so the tree is maintained incrementally from the kv record hook
// (flush / bulk load / compaction) without ever re-reading flash.
//
// Two trees exist per (device, partition):
//  * maintained — what the device SHOULD hold, updated by the kv hook at
//    write time (before any corruption can touch flash);
//  * observed  — what the device's flash ACTUALLY holds, computed by
//    reading SST content (compute_observed_digests, or incrementally by
//    the scrubber).
// Anti-entropy compares observed trees across replicas; a divergent
// partition descends to its divergent leaves (the O(log n) localization:
// only 1/kDigestLeaves of the records need attention), and the replica
// whose observed tree matches its own maintained tree is the good copy.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "kv/db.hpp"

namespace ndpgen::cluster {

/// Leaf buckets per partition tree. Divergence localizes to buckets, so
/// repair verification touches ~records/kDigestLeaves records per leaf.
inline constexpr std::uint32_t kDigestLeaves = 16;

/// Order-independent per-record hash: CRC32C of the record bytes spread
/// through a 64-bit finalizer so XOR accumulation has full-width entropy.
/// A pure function of the record bytes — identical on every replica.
[[nodiscard]] std::uint64_t record_digest_hash(
    std::span<const std::uint8_t> record) noexcept;

struct PartitionDigest {
  std::array<std::uint64_t, kDigestLeaves> leaves{};

  /// Deterministic fold of the leaves (position-salted so leaf swaps
  /// cannot cancel).
  [[nodiscard]] std::uint64_t root() const noexcept;

  [[nodiscard]] bool operator==(const PartitionDigest&) const noexcept =
      default;
};

/// One digest tree per partition.
class PartitionDigestSet {
 public:
  PartitionDigestSet() = default;
  explicit PartitionDigestSet(std::uint32_t partitions)
      : digests_(partitions) {}

  /// XOR-toggles a record hash in its leaf: the same call adds a record
  /// and removes it again (self-inverse), which is exactly the semantics
  /// the kv record hook needs.
  void toggle(std::uint32_t partition, std::uint64_t record_hash);

  [[nodiscard]] const PartitionDigest& digest(std::uint32_t partition) const;
  [[nodiscard]] std::uint64_t root(std::uint32_t partition) const {
    return digest(partition).root();
  }
  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return static_cast<std::uint32_t>(digests_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return digests_.empty(); }

  /// Leaf indices where the two trees differ (the localized ranges an
  /// anti-entropy round would re-sync).
  [[nodiscard]] static std::vector<std::uint32_t> divergent_leaves(
      const PartitionDigest& a, const PartitionDigest& b);

 private:
  std::vector<PartitionDigest> digests_;
};

/// Maps a record's key to its partition (the cluster placement hash,
/// ring-independent).
using PartitionOfKey = std::function<std::uint32_t(const kv::Key&)>;

/// Reads every live SST record of `db` (actual flash content — sees any
/// rot) and folds it into a fresh digest set. Content access is
/// zero-time; callers charge any scan cost they want to model.
[[nodiscard]] PartitionDigestSet compute_observed_digests(
    kv::NKV& db, const PartitionOfKey& partition_of,
    std::uint32_t partitions);

/// Outcome of one cluster anti-entropy round (coordinator API).
struct AntiEntropyReport {
  std::uint64_t partitions_checked = 0;
  /// Partitions whose replicas' observed roots disagreed.
  std::uint64_t divergent_partitions = 0;
  /// Divergent (partition, leaf) buckets across all divergent partitions —
  /// the localization anti-entropy buys over full re-reads.
  std::uint64_t divergent_leaves = 0;
  std::uint64_t replicas_repaired = 0;
  std::uint64_t bytes_repaired = 0;
  bool converged = false;  ///< All replicas digest-identical afterwards.
};

}  // namespace ndpgen::cluster
