#include "cluster/device.hpp"

#include "kv/sst_reader.hpp"
#include "support/crc32c.hpp"

namespace ndpgen::cluster {

namespace {

/// splitmix64 step: deterministic corruption-site stream per seed.
[[nodiscard]] std::uint64_t next_rand(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SmartSsdDevice::SmartSsdDevice(std::uint32_t id,
                               platform::CosmosConfig cosmos_config,
                               kv::DBConfig db_config)
    : id_(id),
      platform_(std::make_unique<platform::CosmosPlatform>(
          std::move(cosmos_config))),
      db_(std::make_unique<kv::NKV>(*platform_, std::move(db_config))) {}

std::uint64_t SmartSsdDevice::load_sorted(
    std::uint32_t level,
    const std::function<bool(std::vector<std::uint8_t>&)>& next_record,
    std::uint64_t records_per_sst) {
  std::uint64_t loaded = 0;
  std::uint64_t bytes = 0;
  db_->bulk_load_sorted(
      level,
      [&](std::vector<std::uint8_t>& record) {
        if (!next_record(record)) return false;
        ++loaded;
        bytes += record.size();
        return true;
      },
      records_per_sst);
  records_loaded_ += loaded;
  bytes_loaded_ += bytes;
  return loaded;
}

void SmartSsdDevice::attach_executor(
    const analysis::AnalyzedParser& analyzed,
    const hwgen::OperatorSet& operators, ndp::ExecutorConfig exec_config) {
  NDPGEN_CHECK(executor_ == nullptr, "device executor already attached");
  executor_ = std::make_unique<ndp::HybridExecutor>(
      *db_, analyzed, operators, std::move(exec_config));
}

ndp::HybridExecutor& SmartSsdDevice::executor() {
  NDPGEN_CHECK(executor_ != nullptr, "device executor not attached");
  return *executor_;
}

void SmartSsdDevice::enable_digests(std::uint32_t partitions,
                                    PartitionOfKey partition_of) {
  NDPGEN_CHECK(maintained_.empty(), "device digests already enabled");
  NDPGEN_CHECK_ARG(partitions > 0, "digests need at least one partition");
  NDPGEN_CHECK_ARG(static_cast<bool>(partition_of),
                   "digests need a partition function");
  partition_of_ = std::move(partition_of);
  maintained_ = PartitionDigestSet(partitions);
  const kv::KeyExtractor extractor = db_->config().extractor;
  db_->set_record_hook(
      [this, extractor](std::span<const std::uint8_t> record, bool added) {
        // XOR toggling is self-inverse: add and remove are the same call.
        (void)added;
        maintained_.toggle(partition_of_(extractor(record)),
                           record_digest_hash(record));
      });
}

PartitionDigestSet SmartSsdDevice::observed_digests() {
  NDPGEN_CHECK(digests_enabled(), "device digests not enabled");
  return compute_observed_digests(*db_, partition_of_,
                                  maintained_.partitions());
}

std::uint64_t SmartSsdDevice::corrupt_blocks(std::uint32_t count,
                                             std::uint64_t seed,
                                             bool wrong_data) {
  struct Site {
    std::shared_ptr<kv::SSTable> table;
    std::uint32_t block_index;
  };
  std::vector<Site> sites;
  for (const auto& table : db_->version().recency_ordered()) {
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(table->blocks.size()); ++b) {
      sites.push_back(Site{table, b});
    }
  }
  if (sites.empty() || count == 0) return 0;

  auto& flash = platform_->flash();
  std::uint64_t state = seed;
  std::vector<bool> picked(sites.size(), false);
  std::uint64_t corrupted = 0;
  // Bounded rejection sampling keeps the pick deterministic without ever
  // spinning when count approaches the number of blocks.
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64ull * count + 64;
  while (corrupted < count && corrupted < sites.size() &&
         attempts < max_attempts) {
    ++attempts;
    const std::size_t idx = next_rand(state) % sites.size();
    if (picked[idx]) continue;
    picked[idx] = true;
    const Site& site = sites[idx];
    kv::BlockHandle& handle = site.table->blocks[site.block_index];
    if (handle.flash_pages.empty()) continue;

    CorruptionRecord record;
    record.table = site.table;
    record.block_index = site.block_index;
    record.original_crc = handle.crc32c;

    // Rot one byte inside the block's FIRST record so both the CRC and
    // the logical record digest change (padding flips would only trip
    // the CRC). Save the untouched page image first.
    const std::uint64_t page = handle.flash_pages.front();
    const platform::FlashAddr addr = flash.delinearize(page);
    const std::span<const std::uint8_t> before = flash.page_data(addr);
    record.pages.emplace_back(
        page, std::vector<std::uint8_t>(before.begin(), before.end()));
    std::vector<std::uint8_t> rotted(before.begin(), before.end());
    const std::size_t offset =
        next_rand(state) % db_->config().record_bytes;
    rotted[offset] ^= 0xFF;
    flash.write_page_immediate(addr, rotted);

    if (wrong_data) {
      // Firmware-bug flavour: the index CRC is recomputed over the rotted
      // content, so checked reads and the scrubber see a "valid" block.
      // Only cross-replica digest comparison can catch this.
      kv::SSTReader reader(*site.table, flash, db_->config().extractor);
      const std::vector<std::uint8_t> block =
          reader.read_block(site.block_index);
      handle.crc32c = support::crc32c(block);
    }
    corruption_ledger_.push_back(std::move(record));
    ++corrupted;
  }
  return corrupted;
}

std::uint64_t SmartSsdDevice::repair_corruption() {
  auto& flash = platform_->flash();
  std::uint64_t bytes = 0;
  for (const CorruptionRecord& record : corruption_ledger_) {
    for (const auto& [page, image] : record.pages) {
      flash.write_page_immediate(flash.delinearize(page), image);
      bytes += image.size();
    }
    record.table->blocks[record.block_index].crc32c = record.original_crc;
  }
  corruption_ledger_.clear();
  return bytes;
}

}  // namespace ndpgen::cluster
