#include "cluster/device.hpp"

namespace ndpgen::cluster {

SmartSsdDevice::SmartSsdDevice(std::uint32_t id,
                               platform::CosmosConfig cosmos_config,
                               kv::DBConfig db_config)
    : id_(id),
      platform_(std::make_unique<platform::CosmosPlatform>(
          std::move(cosmos_config))),
      db_(std::make_unique<kv::NKV>(*platform_, std::move(db_config))) {}

std::uint64_t SmartSsdDevice::load_sorted(
    std::uint32_t level,
    const std::function<bool(std::vector<std::uint8_t>&)>& next_record,
    std::uint64_t records_per_sst) {
  std::uint64_t loaded = 0;
  std::uint64_t bytes = 0;
  db_->bulk_load_sorted(
      level,
      [&](std::vector<std::uint8_t>& record) {
        if (!next_record(record)) return false;
        ++loaded;
        bytes += record.size();
        return true;
      },
      records_per_sst);
  records_loaded_ += loaded;
  bytes_loaded_ += bytes;
  return loaded;
}

void SmartSsdDevice::attach_executor(
    const analysis::AnalyzedParser& analyzed,
    const hwgen::OperatorSet& operators, ndp::ExecutorConfig exec_config) {
  NDPGEN_CHECK(executor_ == nullptr, "device executor already attached");
  executor_ = std::make_unique<ndp::HybridExecutor>(
      *db_, analyzed, operators, std::move(exec_config));
}

ndp::HybridExecutor& SmartSsdDevice::executor() {
  NDPGEN_CHECK(executor_ != nullptr, "device executor not attached");
  return *executor_;
}

}  // namespace ndpgen::cluster
