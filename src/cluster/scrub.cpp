#include "cluster/scrub.hpp"

#include <algorithm>

#include "kv/block_format.hpp"
#include "kv/sst_reader.hpp"
#include "support/crc32c.hpp"

namespace ndpgen::cluster {

DeviceScrubber::DeviceScrubber(SmartSsdDevice& device, ScrubConfig config)
    : device_(device), config_(config) {
  NDPGEN_CHECK_ARG(config_.scrub_share > 0.0 && config_.scrub_share < 1.0,
                   "scrub_share must be in (0, 1)");
  NDPGEN_CHECK_ARG(config_.bandwidth_mbps > 0.0,
                   "scrub bandwidth must be positive");
}

bool DeviceScrubber::verify_block(const std::shared_ptr<kv::SSTable>& table,
                                  std::uint32_t block_index) {
  kv::SSTReader reader(*table, device_.platform().flash(),
                       device_.db().config().extractor);
  ++report_.blocks_verified;
  report_.bytes_scanned += kv::kDataBlockBytes;
  const auto checked = reader.read_block_checked(block_index);
  if (checked.ok()) return false;
  // First failure goes through the firmware recovery pass: a transient
  // silent-corruption mark is consumed and the re-read is clean.
  const std::vector<std::uint8_t> recovered =
      reader.reread_block_recovered(block_index);
  const kv::BlockHandle& handle = table->blocks[block_index];
  if (handle.crc32c == 0 || support::crc32c(recovered) == handle.crc32c) {
    ++report_.transient_recovered;
    return false;
  }
  ++report_.crc_failures;
  return true;
}

std::uint64_t DeviceScrubber::advance(platform::SimTime now) {
  if (!config_.enabled) return 0;
  if (now > last_advance_) {
    // bytes/ns = share x (mbps x 1e6 bytes/s) / 1e9 ns/s = share x mbps/1000.
    budget_bytes_ += static_cast<double>(now - last_advance_) *
                     config_.scrub_share * config_.bandwidth_mbps / 1000.0;
    last_advance_ = now;
  }

  const auto tables = device_.db().version().recency_ordered();
  std::uint64_t total_blocks = 0;
  for (const auto& table : tables) total_blocks += table->blocks.size();
  if (total_blocks == 0) {
    budget_bytes_ = 0.0;
    return 0;
  }
  // A long idle stretch accrues at most one full pass over the store —
  // re-verifying the same blocks twice in one advance buys nothing.
  budget_bytes_ = std::min(
      budget_bytes_,
      static_cast<double>(total_blocks) * kv::kDataBlockBytes);

  std::uint64_t failures = 0;
  while (budget_bytes_ >= static_cast<double>(kv::kDataBlockBytes)) {
    // Resolve the flat cursor into (table, block); the walk is cyclic
    // over the snapshot taken at this advance.
    std::uint64_t flat = cursor_ % total_blocks;
    std::size_t t = 0;
    while (flat >= tables[t]->blocks.size()) {
      flat -= tables[t]->blocks.size();
      ++t;
    }
    if (verify_block(tables[t], static_cast<std::uint32_t>(flat))) {
      ++failures;
    }
    ++cursor_;
    budget_bytes_ -= static_cast<double>(kv::kDataBlockBytes);
  }
  return failures;
}

}  // namespace ndpgen::cluster
