// Cluster frontend: N smart SSDs behind one host OffloadTarget.
//
// The coordinator implements host::OffloadTarget, so the unchanged
// QueryService (queue pairs, WRR, coalescing, retry/backoff, phase
// accounting) drives a replicated cluster exactly the way it drives one
// device. Each multi_range_scan offload is scattered: every hash
// partition is served by exactly one currently-eligible replica (rotated
// per query for read spreading), each chosen device runs the ranges on
// its own stack, the device results are filtered to the partitions that
// device was assigned (replicas hold the same rows — without the filter
// every row would appear R times) and k-way merged back into global key
// order — byte-equal to a single device holding the whole dataset.
//
// Robustness machinery, all on virtual time and byte-deterministic:
//  * device faults — a DeviceFaultInjector oracle (crash / brownout /
//    link flap scheduled by doorbell count or absolute time);
//  * failure handling — a sub-scan on an unreachable device fails after
//    the NVMe timeout; its partitions are reassigned to surviving
//    replicas and retried, recursively, until served or no replica is
//    left (typed kDeviceUnavailable, exit code 19);
//  * health — heartbeat probes + per-device error EWMAs drive
//    Alive/Suspect/Dead; Suspect devices are routed around, Dead ones
//    trigger failover;
//  * hedged reads — a sub-scan exceeding a p99-derived deadline is
//    re-issued to second replicas; the query takes the faster path;
//  * rebuild — a Dead member's partitions are re-replicated onto a spare
//    (RebuildManager arbitrates copy vs foreground bandwidth); the spare
//    inherits the dead device's ring positions and serves once caught up.
//
// The scatter-gather works in per-device *elapsed* times (each member
// owns its DES), composes the query's critical path arithmetically, and
// reserves the frontend NVMe link for the merged result — so the cluster
// ScanStats keeps the executor invariant: phases (excluding queueing)
// sum exactly to elapsed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/device.hpp"
#include "cluster/health.hpp"
#include "cluster/placement.hpp"
#include "cluster/rebuild.hpp"
#include "cluster/scrub.hpp"
#include "fault/device_fault.hpp"
#include "host/offload_target.hpp"

namespace ndpgen::cluster {

struct CoordinatorConfig {
  PlacementConfig placement;
  HealthConfig health;
  RebuildConfig rebuild;
  /// Frontend host-link timing (doorbells + merged result transfer).
  platform::TimingConfig timing;
  /// Device-level fault schedule (kind/target/trigger; none by default).
  fault::FaultProfile device_fault;
  /// Extracts the key from an output-layout record: partitions device
  /// results and orders the global merge. Required.
  kv::KeyExtractor result_key;
  /// Hedge deadline = max(floor, p99(sub-scan latencies) * factor); a
  /// sub-scan slower than that is raced against a second replica. Only
  /// active once min_samples latencies have been observed.
  double hedge_factor = 3.0;
  platform::SimTime hedge_floor_ns = 200 * 1000;  // 200 us
  std::uint32_t hedge_min_samples = 16;
  /// Background CRC scrubbing (off by default; see cluster/scrub.hpp).
  ScrubConfig scrub;
};

/// Run-level counters the CLI/bench report next to the service report.
struct ClusterReport {
  std::uint64_t queries = 0;
  std::uint64_t subscans = 0;
  std::uint64_t subscan_failures = 0;  ///< Timed-out sub-scans retried.
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t failovers = 0;  ///< Dead members replaced by spares.
  std::uint64_t rebuilds = 0;
  std::uint64_t health_transitions = 0;
  // Replica integrity.
  std::uint64_t bitrot_blocks_injected = 0;
  /// Sub-scans discarded because the answering replica held persistent
  /// rot; their partitions were re-fetched from healthy replicas.
  std::uint64_t integrity_failures = 0;
  std::uint64_t read_repairs = 0;  ///< Repairs triggered by a foreground read.
  std::uint64_t repairs = 0;       ///< Replica repairs executed (all paths).
  std::uint64_t bytes_repaired = 0;
  std::uint64_t antientropy_rounds = 0;
};

class ClusterCoordinator final : public host::OffloadTarget {
 public:
  /// Re-populates a spare with the given partitions at failover time —
  /// the structural stand-in for the replica copy whose *timing* the
  /// RebuildManager charges (the builder regenerates the records from
  /// the deterministic dataset generator; simulating the byte stream
  /// through both DES instances would model the same outcome slower).
  using SpareLoader = std::function<void(
      SmartSsdDevice& spare, const std::vector<std::uint32_t>& partitions)>;

  /// `devices` = ring members (placement.devices of them) followed by
  /// spares; ownership transfers.
  ClusterCoordinator(CoordinatorConfig config,
                     std::vector<std::unique_ptr<SmartSsdDevice>> devices,
                     SpareLoader spare_loader);

  /// Arms the device-fault doorbell trigger (see DeviceFaultInjector).
  void arm_faults(std::uint64_t request_budget);

  // --- host::OffloadTarget --------------------------------------------
  [[nodiscard]] obs::Observability& observability() noexcept override {
    return obs_;
  }
  platform::LinkGrant doorbell(platform::SimTime at) override;
  [[nodiscard]] platform::SimTime device_now() override {
    return queue_.now();
  }
  void advance_device_to(platform::SimTime at) override {
    queue_.advance_to(at);
  }
  [[nodiscard]] platform::SimTime completion_latency() const override {
    return config_.timing.nvme_command_latency;
  }
  ndp::ScanStats multi_range_scan(
      const std::vector<ndp::KeyRange>& ranges,
      const std::vector<ndp::FilterPredicate>& predicates,
      std::vector<std::vector<std::uint8_t>>* records) override;

  /// Recency-correct point lookup through the same placement/health path.
  ndp::GetStats get(const kv::Key& key);

  /// One anti-entropy round: computes every on-ring member's OBSERVED
  /// partition digests from actual flash content, compares them across
  /// the replicas of each partition, localizes divergence to leaf buckets
  /// and repairs bad replicas from a good one (the replica whose observed
  /// tree matches its own maintained tree). Raises kIntegrity (exit 20)
  /// when a divergent partition has no good replica left. Catches what
  /// CRC scrubbing structurally cannot: wrong-data rot whose index CRC
  /// was rewritten to match.
  AntiEntropyReport run_anti_entropy();

  /// Folds per-device health gauges, cluster counters and (summed)
  /// device-stack metrics into the frontend registry; appends device
  /// traces under "devN." prefixes. Call once at the end of a run.
  void publish_metrics();

  [[nodiscard]] const ClusterReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const ClusterPlacement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const HealthMonitor& health() const noexcept {
    return health_;
  }
  [[nodiscard]] const RebuildManager& rebuild() const noexcept {
    return rebuild_;
  }
  [[nodiscard]] const fault::DeviceFaultInjector& injector() const noexcept {
    return injector_;
  }
  [[nodiscard]] std::uint32_t device_count() const noexcept {
    return static_cast<std::uint32_t>(devices_.size());
  }
  [[nodiscard]] SmartSsdDevice& device(std::uint32_t index) {
    return *devices_.at(index);
  }
  /// Per-member scrub counters (devices have a scrubber iff scrubbing is
  /// enabled in the config).
  [[nodiscard]] const ScrubReport& scrub_report(std::uint32_t index) const {
    return scrubbers_.at(index)->report();
  }
  [[nodiscard]] bool scrubbing() const noexcept {
    return !scrubbers_.empty();
  }

 private:
  struct SubScan {
    std::uint32_t device = 0;
    std::vector<std::uint32_t> partitions;
    platform::SimTime start_offset = 0;  ///< Retry-round delay vs dispatch.
    platform::SimTime latency = 0;       ///< Effective (factors applied).
    ndp::ScanStats stats;
    std::vector<std::vector<std::uint8_t>> records;  ///< Partition-filtered.
  };

  [[nodiscard]] bool is_spare(std::uint32_t device) const noexcept {
    return device >= config_.placement.devices;
  }
  /// Oracle truth: device powered and link usable at `t`.
  [[nodiscard]] bool reachable_at(std::uint32_t device,
                                  platform::SimTime t) const;
  /// Serving replica for a partition under current health (rotation by
  /// query seq); devices in `excluded` (this query's failed set) are
  /// skipped. Throws kDeviceUnavailable when no replica can serve.
  [[nodiscard]] std::uint32_t serving_replica(
      std::uint32_t partition, const std::vector<bool>& excluded) const;
  /// Latency multiplier at dispatch: brownout factor x rebuild-source
  /// inflation.
  [[nodiscard]] double latency_factor(std::uint32_t device,
                                      platform::SimTime t) const;
  /// Runs `ranges` on one device, filters the results to `partitions`,
  /// applies latency factors; records the latency sample.
  SubScan run_subscan(std::uint32_t device,
                      std::vector<std::uint32_t> partitions,
                      platform::SimTime start_offset,
                      const std::vector<ndp::KeyRange>& ranges,
                      const std::vector<ndp::FilterPredicate>& predicates,
                      platform::SimTime now);
  /// Current hedge deadline (nullopt until min_samples observed).
  [[nodiscard]] std::optional<platform::SimTime> hedge_deadline() const;
  void record_latency_sample(platform::SimTime latency);
  /// Probes every ring member, escalates stale suspects, and fails over
  /// newly-Dead members onto spares (placement swap + rebuild start).
  void refresh_cluster_state(platform::SimTime now);
  void fail_over(std::uint32_t dead, platform::SimTime now);
  /// One-shot bit-rot application once the injector's trigger fires: the
  /// armed device's flash content is really mutated (see
  /// SmartSsdDevice::corrupt_blocks).
  void apply_bitrot(platform::SimTime now);
  /// Executes the replica-sourced repair of `device`'s ledgered rot:
  /// restores content + CRCs, counts bytes, publishes metrics/trace.
  void repair_device(std::uint32_t device, platform::SimTime now,
                     const char* source);
  /// Proportionally rescales `phases` to sum to `target` (residual lands
  /// in kFlash), preserving the phase-sum invariant under latency factors.
  [[nodiscard]] static obs::PhaseBreakdown scale_phases(
      const obs::PhaseBreakdown& phases, platform::SimTime target);

  CoordinatorConfig config_;
  std::vector<std::unique_ptr<SmartSsdDevice>> devices_;
  SpareLoader spare_loader_;
  ClusterPlacement placement_;
  HealthMonitor health_;
  RebuildManager rebuild_;
  fault::DeviceFaultInjector injector_;

  // Frontend timeline: the host-side DES the QueryService aligns against.
  platform::EventQueue queue_;
  platform::NvmeLink link_;
  obs::Observability obs_;

  std::vector<std::unique_ptr<DeviceScrubber>> scrubbers_;
  bool bitrot_applied_ = false;
  std::vector<bool> on_ring_;         ///< Device currently a ring member.
  std::vector<std::uint32_t> spare_pool_;  ///< Unused spares, ascending.
  std::vector<platform::SimTime> latency_samples_;  ///< Sorted ascending.
  std::uint64_t query_seq_ = 0;
  ClusterReport report_;
};

}  // namespace ndpgen::cluster
