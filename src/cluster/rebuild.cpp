#include "cluster/rebuild.hpp"

namespace ndpgen::cluster {

RebuildManager::RebuildManager(RebuildConfig config) : config_(config) {
  NDPGEN_CHECK_ARG(config_.bandwidth_mbps >= 1,
                   "rebuild bandwidth must be at least 1 MB/s");
  NDPGEN_CHECK_ARG(
      config_.rebuild_share > 0.0 && config_.rebuild_share < 1.0,
      "rebuild share must be in (0, 1): the copy and foreground "
      "work both need bandwidth");
}

const RebuildJob& RebuildManager::start(std::uint32_t dead,
                                        std::uint32_t spare,
                                        std::vector<std::uint32_t> sources,
                                        std::uint64_t bytes,
                                        platform::SimTime now) {
  NDPGEN_CHECK_ARG(!sources.empty(),
                   "rebuild needs at least one surviving source replica");
  RebuildJob job;
  job.dead = dead;
  job.spare = spare;
  job.bytes = bytes;
  job.sources = std::move(sources);
  job.started = now;
  // Sources stream disjoint shares in parallel; each contributes
  // rebuild_share of its bandwidth, so the window is the per-source share
  // at the arbitrated rate. Integer ns: bytes * 1000 / (MB/s) = ns for
  // decimal megabytes.
  const std::uint64_t per_source =
      (bytes + job.sources.size() - 1) / job.sources.size();
  const double rate_bytes_per_ns =
      static_cast<double>(config_.bandwidth_mbps) * 1e6 / 1e9 *
      config_.rebuild_share;
  const auto duration = static_cast<platform::SimTime>(
      static_cast<double>(per_source) / rate_bytes_per_ns);
  job.completes = now + duration;
  jobs_.push_back(std::move(job));
  return jobs_.back();
}

bool RebuildManager::rebuilding_at(platform::SimTime t) const noexcept {
  for (const RebuildJob& job : jobs_) {
    if (t >= job.started && t < job.completes) return true;
  }
  return false;
}

bool RebuildManager::device_is_source_at(
    std::uint32_t device, platform::SimTime t) const noexcept {
  for (const RebuildJob& job : jobs_) {
    if (t < job.started || t >= job.completes) continue;
    for (const std::uint32_t source : job.sources) {
      if (source == device) return true;
    }
  }
  return false;
}

bool RebuildManager::spare_ready_at(std::uint32_t spare,
                                    platform::SimTime t) const noexcept {
  for (const RebuildJob& job : jobs_) {
    if (job.spare == spare && t >= job.completes) return true;
  }
  return false;
}

}  // namespace ndpgen::cluster
