#include "cluster/antientropy.hpp"

#include "kv/sst_reader.hpp"
#include "support/crc32c.hpp"

namespace ndpgen::cluster {

namespace {

/// splitmix64 finalizer (same stateless mix the placement ring uses).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t record_digest_hash(
    std::span<const std::uint8_t> record) noexcept {
  const std::uint64_t crc = support::crc32c(record);
  return mix64(crc ^ (static_cast<std::uint64_t>(record.size()) << 32));
}

std::uint64_t PartitionDigest::root() const noexcept {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    h = mix64(h ^ leaves[i] ^ (static_cast<std::uint64_t>(i) << 56));
  }
  return h;
}

void PartitionDigestSet::toggle(std::uint32_t partition,
                                std::uint64_t record_hash) {
  NDPGEN_CHECK_ARG(partition < digests_.size(),
                   "digest partition out of range");
  digests_[partition].leaves[record_hash % kDigestLeaves] ^= record_hash;
}

const PartitionDigest& PartitionDigestSet::digest(
    std::uint32_t partition) const {
  NDPGEN_CHECK_ARG(partition < digests_.size(),
                   "digest partition out of range");
  return digests_[partition];
}

std::vector<std::uint32_t> PartitionDigestSet::divergent_leaves(
    const PartitionDigest& a, const PartitionDigest& b) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t leaf = 0; leaf < kDigestLeaves; ++leaf) {
    if (a.leaves[leaf] != b.leaves[leaf]) out.push_back(leaf);
  }
  return out;
}

PartitionDigestSet compute_observed_digests(kv::NKV& db,
                                            const PartitionOfKey& partition_of,
                                            std::uint32_t partitions) {
  NDPGEN_CHECK_ARG(static_cast<bool>(partition_of),
                   "observed digests need a partition function");
  PartitionDigestSet observed(partitions);
  const kv::KeyExtractor& extractor = db.config().extractor;
  for (const auto& table : db.version().recency_ordered()) {
    kv::SSTReader reader(*table, db.platform().flash(), extractor);
    reader.for_each_record([&](std::span<const std::uint8_t> record) {
      observed.toggle(partition_of(extractor(record)),
                      record_digest_hash(record));
    });
  }
  return observed;
}

}  // namespace ndpgen::cluster
