#include "cluster/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace ndpgen::cluster {

namespace {

/// Per-result cost of the frontend's global k-way merge — the same
/// per-record finalization rate the executor charges for its PE-shard
/// merge (kFinalizePerResult in ndp/executor.cpp), so cluster merge time
/// scales exactly like the device-side machinery it reuses.
constexpr platform::SimTime kMergePerResult = 35;  // ns

}  // namespace

ClusterCoordinator::ClusterCoordinator(
    CoordinatorConfig config,
    std::vector<std::unique_ptr<SmartSsdDevice>> devices,
    SpareLoader spare_loader)
    : config_(std::move(config)),
      devices_(std::move(devices)),
      spare_loader_(std::move(spare_loader)),
      placement_(config_.placement),
      health_(static_cast<std::uint32_t>(devices_.size()), config_.health),
      rebuild_(config_.rebuild),
      injector_(config_.device_fault),
      link_(queue_, config_.timing) {
  NDPGEN_CHECK_ARG(devices_.size() >= config_.placement.devices,
                   "fewer device stacks than ring members");
  NDPGEN_CHECK_ARG(static_cast<bool>(config_.result_key),
                   "cluster coordinator requires result_key for partition "
                   "filtering and the global merge");
  NDPGEN_CHECK_ARG(config_.hedge_factor >= 1.0,
                   "hedge factor must be at least 1");
  link_.set_observability(&obs_);
  if (config_.scrub.enabled) {
    // Every device (spares included — they scrub once on the ring) gets a
    // patrol walker over its own store.
    scrubbers_.reserve(devices_.size());
    for (auto& device : devices_) {
      scrubbers_.push_back(
          std::make_unique<DeviceScrubber>(*device, config_.scrub));
    }
  }
  on_ring_.assign(devices_.size(), false);
  for (std::uint32_t d = 0; d < config_.placement.devices; ++d) {
    on_ring_[d] = true;
  }
  for (std::uint32_t d = config_.placement.devices; d < devices_.size();
       ++d) {
    spare_pool_.push_back(d);
  }
}

void ClusterCoordinator::arm_faults(std::uint64_t request_budget) {
  injector_.arm(request_budget);
}

platform::LinkGrant ClusterCoordinator::doorbell(platform::SimTime at) {
  // The doorbell stream is a host-timeline property (invariant across
  // --pes/--threads), so it doubles as the fault trigger clock.
  injector_.on_doorbell(at);
  return link_.reserve(at, 0);
}

bool ClusterCoordinator::reachable_at(std::uint32_t device,
                                      platform::SimTime t) const {
  return injector_.alive_at(device, t) && injector_.link_up_at(device, t);
}

double ClusterCoordinator::latency_factor(std::uint32_t device,
                                          platform::SimTime t) const {
  double factor = injector_.latency_factor_at(device, t);
  if (rebuild_.device_is_source_at(device, t)) {
    factor *= rebuild_.source_inflation();
  }
  if (!scrubbers_.empty() && on_ring_[device]) {
    // The patrol read steals scrub_share of the member's read bandwidth —
    // same discipline as rebuild-source inflation.
    factor *= 1.0 / (1.0 - config_.scrub.scrub_share);
  }
  return factor;
}

std::uint32_t ClusterCoordinator::serving_replica(
    std::uint32_t partition, const std::vector<bool>& excluded) const {
  const std::vector<std::uint32_t>& replicas =
      placement_.replicas(partition);
  std::vector<std::uint32_t> eligible;
  std::vector<std::uint32_t> alive;
  const platform::SimTime now = queue_.now();
  for (const std::uint32_t d : replicas) {
    if (excluded[d]) continue;
    if (health_.state(d) == DeviceState::kDead) continue;
    if (is_spare(d) && !rebuild_.spare_ready_at(d, now)) continue;
    eligible.push_back(d);
    if (health_.state(d) == DeviceState::kAlive) alive.push_back(d);
  }
  const std::vector<std::uint32_t>& pool = alive.empty() ? eligible : alive;
  if (pool.empty()) {
    raise(ErrorKind::kDeviceUnavailable,
          "no live replica for partition " + std::to_string(partition) +
              " (replication " +
              std::to_string(config_.placement.replication) + ")");
  }
  // Rotate reads across replicas per query; the rotation is a pure
  // function of (query seq, partition), so it is byte-deterministic.
  return pool[(query_seq_ + partition) % pool.size()];
}

std::optional<platform::SimTime> ClusterCoordinator::hedge_deadline() const {
  if (latency_samples_.size() < config_.hedge_min_samples) {
    return std::nullopt;
  }
  // Nearest-rank p99 over the sorted sample window (same convention as
  // the obs histogram percentiles).
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(latency_samples_.size())));
  const std::size_t index =
      std::min(latency_samples_.size() - 1, rank == 0 ? 0 : rank - 1);
  const platform::SimTime p99 = latency_samples_[index];
  const auto deadline = static_cast<platform::SimTime>(
      std::llround(static_cast<double>(p99) * config_.hedge_factor));
  return std::max(config_.hedge_floor_ns, deadline);
}

void ClusterCoordinator::record_latency_sample(platform::SimTime latency) {
  latency_samples_.insert(
      std::upper_bound(latency_samples_.begin(), latency_samples_.end(),
                       latency),
      latency);
}

obs::PhaseBreakdown ClusterCoordinator::scale_phases(
    const obs::PhaseBreakdown& phases, platform::SimTime target) {
  obs::PhaseBreakdown out;
  const std::uint64_t total = phases.total();
  if (total == 0) {
    out[obs::RequestPhase::kFlash] = target;
    return out;
  }
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < phases.ns.size(); ++i) {
    // 128-bit intermediate: phase and target are both nanosecond counts
    // that can individually exceed 2^32.
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(phases.ns[i]) * target / total);
    out.ns[i] = scaled;
    assigned += scaled;
  }
  // Rounding residual lands in the flash bucket (the dominant device
  // phase), preserving sum == target exactly.
  out[obs::RequestPhase::kFlash] += target - assigned;
  return out;
}

ClusterCoordinator::SubScan ClusterCoordinator::run_subscan(
    std::uint32_t device, std::vector<std::uint32_t> partitions,
    platform::SimTime start_offset,
    const std::vector<ndp::KeyRange>& ranges,
    const std::vector<ndp::FilterPredicate>& predicates,
    platform::SimTime now) {
  SubScan sub;
  sub.device = device;
  sub.partitions = std::move(partitions);
  sub.start_offset = start_offset;

  std::vector<std::vector<std::uint8_t>> raw;
  sub.stats = devices_[device]->executor().multi_range_scan(ranges,
                                                            predicates,
                                                            &raw);
  const double factor = latency_factor(device, now + start_offset);
  sub.latency = static_cast<platform::SimTime>(std::llround(
      static_cast<double>(sub.stats.elapsed) * factor));

  // Replicas hold identical rows; keep only the partitions this device
  // was assigned so every row is produced exactly once cluster-wide.
  std::vector<bool> assigned(config_.placement.partitions, false);
  for (const std::uint32_t p : sub.partitions) assigned[p] = true;
  sub.records.reserve(raw.size());
  for (auto& record : raw) {
    const std::uint32_t p =
        placement_.partition_of(config_.result_key(record));
    if (assigned[p]) sub.records.push_back(std::move(record));
  }

  ++report_.subscans;
  return sub;
}

void ClusterCoordinator::fail_over(std::uint32_t dead,
                                   platform::SimTime now) {
  on_ring_[dead] = false;
  ++report_.failovers;
  obs_.metrics.add(obs_.metrics.counter("cluster.failovers"), 1);
  if (obs_.tracing()) {
    obs_.trace->instant(obs_.trace->track("cluster"), "failover", "cluster",
                        now,
                        "{\"dead\":" + std::to_string(dead) + "}");
  }
  if (spare_pool_.empty()) return;  // Degraded: survivors carry R-1.

  const std::uint32_t spare = spare_pool_.front();
  spare_pool_.erase(spare_pool_.begin());
  placement_.replace_device(dead, spare);
  on_ring_[spare] = true;

  // The spare inherits exactly the dead member's partitions. Copy sources
  // are the surviving replicas of those partitions.
  const std::vector<std::uint32_t> lost = placement_.partitions_of(spare);
  std::vector<std::uint32_t> sources;
  for (const std::uint32_t p : lost) {
    for (const std::uint32_t d : placement_.replicas(p)) {
      if (d == spare) continue;
      if (health_.state(d) == DeviceState::kDead) continue;
      if (std::find(sources.begin(), sources.end(), d) == sources.end()) {
        sources.push_back(d);
      }
    }
  }
  if (sources.empty()) return;  // Data lost with the member; partitions
                                // fail with kDeviceUnavailable on access.
  std::sort(sources.begin(), sources.end());

  if (spare_loader_) spare_loader_(*devices_[spare], lost);
  const RebuildJob& job = rebuild_.start(
      dead, spare, sources, devices_[spare]->bytes_loaded(), now);
  ++report_.rebuilds;
  obs_.metrics.add(obs_.metrics.counter("cluster.rebuilds"), 1);
  if (obs_.tracing()) {
    obs_.trace->complete(
        obs_.trace->track("cluster"), "rebuild", "cluster", job.started,
        job.completes - job.started,
        "{\"dead\":" + std::to_string(dead) +
            ",\"spare\":" + std::to_string(spare) +
            ",\"bytes\":" + std::to_string(job.bytes) + "}");
  }
}

void ClusterCoordinator::apply_bitrot(platform::SimTime now) {
  if (bitrot_applied_ || !injector_.bitrot_due(now)) return;
  bitrot_applied_ = true;
  const std::uint32_t target = injector_.bitrot_device();
  if (target >= devices_.size()) return;
  const std::uint64_t rotted = devices_[target]->corrupt_blocks(
      injector_.bitrot_blocks(), injector_.bitrot_seed(),
      injector_.bitrot_wrong_data());
  report_.bitrot_blocks_injected += rotted;
  obs_.metrics.add(obs_.metrics.counter("cluster.bitrot.blocks_injected"),
                   rotted);
  if (obs_.tracing()) {
    obs_.trace->instant(
        obs_.trace->track("cluster"), "bitrot", "cluster", now,
        "{\"device\":" + std::to_string(target) +
            ",\"blocks\":" + std::to_string(rotted) +
            ",\"wrong_data\":" +
            (injector_.bitrot_wrong_data() ? "true" : "false") + "}");
  }
}

void ClusterCoordinator::repair_device(std::uint32_t device,
                                       platform::SimTime now,
                                       const char* source) {
  const std::uint64_t bytes = devices_[device]->repair_corruption();
  if (bytes == 0) return;
  ++report_.repairs;
  report_.bytes_repaired += bytes;
  obs::MetricsRegistry& m = obs_.metrics;
  m.add(m.counter("cluster.repair.count"), 1);
  m.add(m.counter("cluster.repair.bytes"), bytes);
  // Charge the modeled background-write duration of the replica-sourced
  // copy (full scrub-read bandwidth; the write happens off the query's
  // critical path, so it is accounting, not critical-path time).
  const auto repair_ns = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * 1000.0 / config_.scrub.bandwidth_mbps);
  m.add(m.counter("cluster.repair.ns"), repair_ns);
  if (obs_.tracing()) {
    obs_.trace->complete(
        obs_.trace->track("cluster"), "repair", "cluster", now, repair_ns,
        "{\"device\":" + std::to_string(device) + ",\"bytes\":" +
            std::to_string(bytes) + ",\"source\":\"" + source + "\"}");
  }
}

void ClusterCoordinator::refresh_cluster_state(platform::SimTime now) {
  // Heartbeats: probe every ring member at this dispatch instant. In a
  // DES the probe itself is free; what matters is the deterministic
  // (reachable, time) stream it feeds the monitor.
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (!on_ring_[d]) continue;
    health_.record_heartbeat(d, reachable_at(d, now), now);
  }
  health_.refresh(now);
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (on_ring_[d] && health_.state(d) == DeviceState::kDead) {
      fail_over(d, now);
    }
  }
  report_.health_transitions = health_.transitions();

  // Latent-fault machinery, all on the same deterministic dispatch clock:
  // the armed bit-rot lands first, then the patrol scrubbers advance and
  // repair whatever CRC-visible rot they catch.
  apply_bitrot(now);
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (scrubbers_.empty() || !on_ring_[d]) continue;
    if (!reachable_at(d, now)) continue;
    const std::uint64_t failures = scrubbers_[d]->advance(now);
    if (failures == 0) continue;
    obs_.metrics.add(obs_.metrics.counter("cluster.scrub.detections"),
                     failures);
    health_.record_integrity_error(d, now);
    if (obs_.tracing()) {
      obs_.trace->instant(
          obs_.trace->track("cluster"), "scrub-detect", "cluster", now,
          "{\"device\":" + std::to_string(d) +
              ",\"blocks\":" + std::to_string(failures) + "}");
    }
    repair_device(d, now, "scrub");
  }
}

ndp::ScanStats ClusterCoordinator::multi_range_scan(
    const std::vector<ndp::KeyRange>& ranges,
    const std::vector<ndp::FilterPredicate>& predicates,
    std::vector<std::vector<std::uint8_t>>* records) {
  const platform::SimTime now = queue_.now();
  ++query_seq_;
  ++report_.queries;
  refresh_cluster_state(now);

  // Hedge deadline is derived from samples observed BEFORE this query, so
  // sub-scan evaluation order cannot feed back into its own deadline.
  const std::optional<platform::SimTime> deadline = hedge_deadline();

  // --- Scatter: every partition to one serving replica. ----------------
  std::vector<bool> excluded(devices_.size(), false);
  std::vector<bool> integrity_excluded(devices_.size(), false);
  std::vector<std::vector<std::uint32_t>> assigned(devices_.size());
  for (std::uint32_t p = 0; p < config_.placement.partitions; ++p) {
    assigned[serving_replica(p, excluded)].push_back(p);
  }

  std::vector<SubScan> done;
  platform::SimTime round_offset = 0;
  while (true) {
    std::vector<std::uint32_t> failed_partitions;
    bool any_failure = false;
    platform::SimTime next_offset = round_offset;
    for (std::uint32_t d = 0; d < devices_.size(); ++d) {
      if (assigned[d].empty()) continue;
      if (!reachable_at(d, now + round_offset)) {
        // The sub-scan never completes; the frontend detects it at the
        // NVMe timeout, marks the device and re-scatters its partitions.
        ++report_.subscan_failures;
        obs_.metrics.add(obs_.metrics.counter("cluster.subscan_failures"),
                         1);
        health_.record_error(d, now + round_offset);
        excluded[d] = true;
        any_failure = true;
        // Unreachable members are detected in parallel at the NVMe
        // timeout; the retry round starts one detection window later.
        next_offset =
            std::max(next_offset, round_offset + config_.timing.nvme_timeout);
        failed_partitions.insert(failed_partitions.end(),
                                 assigned[d].begin(), assigned[d].end());
        if (obs_.tracing()) {
          obs_.trace->instant(
              obs_.trace->track("cluster"), "subscan-timeout", "cluster",
              now + round_offset,
              "{\"device\":" + std::to_string(d) +
                  ",\"partitions\":" + std::to_string(assigned[d].size()) +
                  "}");
        }
        continue;
      }
      SubScan sub = run_subscan(d, std::move(assigned[d]), round_offset,
                                ranges, predicates, now);

      // Online read-repair: the replica answered, but some of its blocks
      // held persistent rot (CRC still bad after the recovery re-read).
      // Its rows cannot be trusted — discard the whole sub-scan, re-fetch
      // the partitions from healthy replicas (so the query's result bytes
      // equal the uncorrupted run's) and repair the bad member off the
      // critical path. Detection time is the sub-scan's own completion,
      // not the NVMe timeout.
      if (sub.stats.integrity_blocks > 0) {
        ++report_.integrity_failures;
        ++report_.read_repairs;
        obs_.metrics.add(obs_.metrics.counter("cluster.integrity_failures"),
                         1);
        health_.record_integrity_error(d, now + round_offset);
        excluded[d] = true;
        integrity_excluded[d] = true;
        any_failure = true;
        next_offset = std::max(next_offset, round_offset + sub.latency);
        // Repair needs a healthy source: every partition this sub-scan
        // served must have some other replica with clean flash. If a
        // partition's copies are ALL rotted, the divergence is
        // unrepairable — the typed kIntegrity failure (exit 20).
        for (const std::uint32_t p : sub.partitions) {
          bool source = false;
          for (const std::uint32_t r : placement_.replicas(p)) {
            if (r == d || health_.state(r) == DeviceState::kDead) continue;
            if (!devices_[r]->has_corruption()) {
              source = true;
              break;
            }
          }
          if (!source) {
            raise(ErrorKind::kIntegrity,
                  "unrepairable divergence: every replica of partition " +
                      std::to_string(p) + " holds corrupt data");
          }
        }
        failed_partitions.insert(failed_partitions.end(),
                                 sub.partitions.begin(),
                                 sub.partitions.end());
        if (obs_.tracing()) {
          obs_.trace->instant(
              obs_.trace->track("cluster"), "read-repair", "cluster",
              now + round_offset,
              "{\"device\":" + std::to_string(d) + ",\"bad_blocks\":" +
                  std::to_string(sub.stats.integrity_blocks) +
                  ",\"partitions\":" +
                  std::to_string(sub.partitions.size()) + "}");
        }
        repair_device(d, now + round_offset + sub.latency, "read-repair");
        continue;
      }
      health_.record_success(d, now + round_offset);

      // Hedged read: race a second replica when the primary blows the
      // p99-derived deadline. Replicas hold identical rows, so the result
      // bytes are invariant; only the latency (and the work accounting)
      // changes.
      if (deadline.has_value() && sub.latency > *deadline) {
        ++report_.hedges;
        obs_.metrics.add(obs_.metrics.counter("cluster.hedges"), 1);
        std::vector<std::vector<std::uint32_t>> alt(devices_.size());
        bool full_cover = true;
        for (const std::uint32_t p : sub.partitions) {
          const std::vector<std::uint32_t>& replicas =
              placement_.replicas(p);
          bool covered = false;
          for (const std::uint32_t r : replicas) {
            if (r == d || excluded[r]) continue;
            if (health_.state(r) == DeviceState::kDead) continue;
            if (is_spare(r) && !rebuild_.spare_ready_at(r, now)) continue;
            if (!reachable_at(r, now + round_offset)) continue;
            alt[r].push_back(p);
            covered = true;
            break;
          }
          full_cover = full_cover && covered;
        }
        if (full_cover) {
          platform::SimTime hedge_latency = 0;
          for (std::uint32_t r = 0; r < devices_.size(); ++r) {
            if (alt[r].empty()) continue;
            SubScan hedge = run_subscan(r, std::move(alt[r]), round_offset,
                                        ranges, predicates, now);
            hedge_latency = std::max(hedge_latency, hedge.latency);
            // Fold the hedge's device work into the primary's stats; its
            // records are byte-identical to the primary's and dropped.
            sub.stats.blocks += hedge.stats.blocks;
            sub.stats.tuples_scanned += hedge.stats.tuples_scanned;
            sub.stats.bytes_from_flash += hedge.stats.bytes_from_flash;
          }
          const platform::SimTime hedged_path = *deadline + hedge_latency;
          if (hedged_path < sub.latency) {
            ++report_.hedge_wins;
            obs_.metrics.add(obs_.metrics.counter("cluster.hedge_wins"), 1);
            if (obs_.tracing()) {
              obs_.trace->instant(
                  obs_.trace->track("cluster"), "hedge-win", "cluster",
                  now + round_offset,
                  "{\"device\":" + std::to_string(d) + ",\"saved_ns\":" +
                      std::to_string(sub.latency - hedged_path) + "}");
            }
            sub.latency = hedged_path;
          }
        }
      }
      // Record the *effective* (post-hedge) latency: feeding raw slow
      // latencies back into the window would drag the p99-derived
      // deadline up to the slow device's own level and disable hedging
      // against a persistently degraded member.
      record_latency_sample(sub.latency);
      done.push_back(std::move(sub));
    }
    if (!any_failure) break;
    // The retry round starts at the latest detection instant of this
    // round (timeout window for unreachable members, sub-scan completion
    // for integrity discards).
    round_offset = next_offset;
    assigned.assign(devices_.size(), {});
    for (const std::uint32_t p : failed_partitions) {
      assigned[serving_replica(p, excluded)].push_back(p);
    }
  }

  // --- Gather: k-way merge by key into global order — byte-equal to one
  // device scanning the whole dataset (each bulk-loaded member returns
  // its rows key-ascending, and every partition was served exactly once).
  ndp::ScanStats stats;
  platform::SimTime critical = 0;
  std::size_t critical_sub = 0;
  for (std::size_t i = 0; i < done.size(); ++i) {
    const SubScan& sub = done[i];
    stats.blocks += sub.stats.blocks;
    stats.tuples_scanned += sub.stats.tuples_scanned;
    stats.tuples_matched += sub.stats.tuples_matched;
    stats.bytes_from_flash += sub.stats.bytes_from_flash;
    stats.blocks_via_software += sub.stats.blocks_via_software;
    stats.blocks_retried += sub.stats.blocks_retried;
    stats.blocks_degraded_to_software +=
        sub.stats.blocks_degraded_to_software;
    stats.uncorrectable_blocks += sub.stats.uncorrectable_blocks;
    stats.integrity_blocks += sub.stats.integrity_blocks;
    stats.shards = std::max(stats.shards, sub.stats.shards);
    stats.pe_phase_cycles =
        std::max(stats.pe_phase_cycles, sub.stats.pe_phase_cycles);
    const platform::SimTime completes = sub.start_offset + sub.latency;
    if (completes > critical) {
      critical = completes;
      critical_sub = i;
    }
  }

  std::vector<std::size_t> cursor(done.size(), 0);
  while (true) {
    std::size_t best = done.size();
    kv::Key best_key{};
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (cursor[i] >= done[i].records.size()) continue;
      const kv::Key key = config_.result_key(done[i].records[cursor[i]]);
      if (best == done.size() || key < best_key) {
        best = i;
        best_key = key;
      }
    }
    if (best == done.size()) break;
    std::vector<std::uint8_t>& record = done[best].records[cursor[best]++];
    ++stats.results;
    stats.result_bytes += record.size();
    if (records != nullptr) records->push_back(std::move(record));
  }

  // --- Timing composition (arithmetic; phases sum exactly to elapsed):
  // critical sub-scan path, then the global merge, then the merged result
  // crosses the frontend host link.
  const platform::SimTime merge_ns = stats.results * kMergePerResult;
  const platform::LinkGrant grant =
      link_.reserve(now + critical + merge_ns, stats.result_bytes);
  const platform::SimTime end = grant.done;
  queue_.advance_to(end);
  stats.elapsed = end - now;
  stats.flash_done = critical;

  if (!done.empty()) {
    const SubScan& crit = done[critical_sub];
    stats.phases = scale_phases(crit.stats.phases, crit.latency);
    // Timeout-detection rounds are command-path time; the critical
    // sub-scan attains `critical`, so start_offset + latency == critical.
    stats.phases[obs::RequestPhase::kDoorbell] += crit.start_offset;
  } else {
    stats.phases[obs::RequestPhase::kDoorbell] = critical;
  }
  // += not =: the scaled critical sub-scan already carries the device's
  // own merge/transfer share inside crit.latency; the frontend merge and
  // host-link crossing stack on top of it.
  stats.phases[obs::RequestPhase::kMerge] += merge_ns;
  stats.phases[obs::RequestPhase::kDoorbell] += grant.penalty;
  stats.phases[obs::RequestPhase::kTransfer] +=
      (end - (now + critical + merge_ns)) - grant.penalty;

  if (obs_.tracing()) {
    obs_.trace->complete(
        obs_.trace->track("cluster"), "scatter-gather", "cluster", now,
        stats.elapsed,
        "{\"subscans\":" + std::to_string(done.size()) +
            ",\"results\":" + std::to_string(stats.results) +
            ",\"critical_device\":" +
            std::to_string(done.empty() ? 0 : done[critical_sub].device) +
            "}");
  }
  obs_.metrics.add(obs_.metrics.counter("cluster.queries"), 1);
  obs_.metrics.add(obs_.metrics.counter("cluster.subscans"), done.size());
  return stats;
}

ndp::GetStats ClusterCoordinator::get(const kv::Key& key) {
  const platform::SimTime now = queue_.now();
  ++query_seq_;
  refresh_cluster_state(now);
  const std::uint32_t partition = placement_.partition_of(key);
  std::vector<bool> excluded(devices_.size(), false);
  for (;;) {
    const std::uint32_t d = serving_replica(partition, excluded);
    if (!reachable_at(d, now)) {
      health_.record_error(d, now);
      excluded[d] = true;
      continue;
    }
    ndp::GetStats stats = devices_[d]->executor().get(key);
    health_.record_success(d, now);
    return stats;
  }
}

AntiEntropyReport ClusterCoordinator::run_anti_entropy() {
  const platform::SimTime start = queue_.now();
  refresh_cluster_state(start);
  AntiEntropyReport rep;
  ++report_.antientropy_rounds;

  // Observed digests: what each on-ring member's flash ACTUALLY holds.
  std::vector<std::optional<PartitionDigestSet>> observed(devices_.size());
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (!on_ring_[d] || !devices_[d]->digests_enabled()) continue;
    observed[d] = devices_[d]->observed_digests();
  }

  std::vector<bool> needs_repair(devices_.size(), false);
  for (std::uint32_t p = 0; p < config_.placement.partitions; ++p) {
    std::vector<std::uint32_t> members;
    for (const std::uint32_t d : placement_.replicas(p)) {
      if (observed[d].has_value()) members.push_back(d);
    }
    if (members.size() < 2) continue;  // Nothing to compare against.
    ++rep.partitions_checked;
    bool divergent = false;
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (observed[members[i]]->digest(p) !=
          observed[members[0]]->digest(p)) {
        divergent = true;
        break;
      }
    }
    if (!divergent) continue;
    ++rep.divergent_partitions;

    // The good copy is the replica whose observed tree matches what its
    // own write path says it should hold.
    std::uint32_t good = devices_.size();
    for (const std::uint32_t d : members) {
      if (observed[d]->digest(p) ==
          devices_[d]->maintained_digests().digest(p)) {
        good = d;
        break;
      }
    }
    if (good == devices_.size()) {
      raise(ErrorKind::kIntegrity,
            "unrepairable divergence: no replica of partition " +
                std::to_string(p) + " matches its maintained digest");
    }
    for (const std::uint32_t d : members) {
      if (d == good) continue;
      if (observed[d]->digest(p) == observed[good]->digest(p)) continue;
      // Localization: only these leaf buckets need re-syncing.
      rep.divergent_leaves += PartitionDigestSet::divergent_leaves(
                                  observed[d]->digest(p),
                                  observed[good]->digest(p))
                                  .size();
      needs_repair[d] = true;
      health_.record_integrity_error(d, start);
    }
  }

  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (!needs_repair[d]) continue;
    const std::uint64_t before = report_.bytes_repaired;
    repair_device(d, start, "anti-entropy");
    if (report_.bytes_repaired > before) {
      ++rep.replicas_repaired;
      rep.bytes_repaired += report_.bytes_repaired - before;
    }
    observed[d] = devices_[d]->observed_digests();
  }

  // Convergence: after repair every partition's replicas must agree.
  rep.converged = true;
  for (std::uint32_t p = 0; p < config_.placement.partitions; ++p) {
    std::uint32_t first = devices_.size();
    for (const std::uint32_t d : placement_.replicas(p)) {
      if (!observed[d].has_value()) continue;
      if (first == devices_.size()) {
        first = d;
      } else if (!(observed[d]->digest(p) == observed[first]->digest(p))) {
        rep.converged = false;
      }
    }
  }

  obs::MetricsRegistry& m = obs_.metrics;
  m.add(m.counter("cluster.antientropy.rounds"), 1);
  m.add(m.counter("cluster.antientropy.divergent_partitions"),
        rep.divergent_partitions);
  m.add(m.counter("cluster.antientropy.divergent_leaves"),
        rep.divergent_leaves);
  m.add(m.counter("cluster.antientropy.replicas_repaired"),
        rep.replicas_repaired);
  if (obs_.tracing()) {
    obs_.trace->complete(
        obs_.trace->track("cluster"), "anti-entropy", "cluster", start,
        queue_.now() - start,
        "{\"checked\":" + std::to_string(rep.partitions_checked) +
            ",\"divergent\":" + std::to_string(rep.divergent_partitions) +
            ",\"repaired\":" + std::to_string(rep.replicas_repaired) +
            ",\"converged\":" + (rep.converged ? std::string("true")
                                               : std::string("false")) +
            "}");
  }
  return rep;
}

void ClusterCoordinator::publish_metrics() {
  obs::MetricsRegistry& m = obs_.metrics;
  m.set(m.gauge("cluster.devices"), devices_.size());
  m.set(m.gauge("cluster.replication"), config_.placement.replication);
  m.set(m.gauge("cluster.health.transitions"), health_.transitions());
  report_.health_transitions = health_.transitions();
  if (!scrubbers_.empty()) {
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t transient = 0;
    std::uint64_t failures = 0;
    for (const auto& scrubber : scrubbers_) {
      blocks += scrubber->report().blocks_verified;
      bytes += scrubber->report().bytes_scanned;
      transient += scrubber->report().transient_recovered;
      failures += scrubber->report().crc_failures;
    }
    m.set(m.gauge("cluster.scrub.share_milli"),
          static_cast<std::uint64_t>(
              std::llround(config_.scrub.scrub_share * 1000.0)));
    m.set(m.gauge("cluster.scrub.blocks_verified"), blocks);
    m.set(m.gauge("cluster.scrub.bytes_scanned"), bytes);
    m.set(m.gauge("cluster.scrub.transient_recovered"), transient);
    m.set(m.gauge("cluster.scrub.crc_failures"), failures);
  }
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    const std::string prefix = "cluster.dev" + std::to_string(d) + ".";
    m.set(m.gauge(prefix + "state"),
          static_cast<std::uint64_t>(health_.state(d)));
    m.set(m.gauge(prefix + "error_ewma_milli"),
          static_cast<std::uint64_t>(
              std::llround(health_.error_rate(d) * 1000.0)));
    m.set(m.gauge(prefix + "on_ring"), on_ring_[d] ? 1 : 0);
    m.set(m.gauge(prefix + "records"), devices_[d]->records_loaded());
    // Fold the member's device-stack counters in as cluster-wide totals
    // (counters add; gauges high-water), then its trace lanes under a
    // stable devN. prefix.
    devices_[d]->platform().publish_metrics();
    m.merge_from(devices_[d]->platform().observability().metrics);
    if (obs_.tracing() &&
        devices_[d]->platform().observability().tracing()) {
      obs_.trace->append_from(
          *devices_[d]->platform().observability().trace, prefix);
    }
  }
}

}  // namespace ndpgen::cluster
