#include "cluster/health.hpp"

namespace ndpgen::cluster {

HealthMonitor::HealthMonitor(std::uint32_t devices, HealthConfig config)
    : config_(config), entries_(devices) {
  NDPGEN_CHECK_ARG(devices >= 1, "health monitor needs at least one device");
  NDPGEN_CHECK_ARG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                   "EWMA alpha must be in (0, 1]");
  NDPGEN_CHECK_ARG(config_.suspect_threshold < config_.dead_threshold,
                   "suspect threshold must be below the dead threshold");
}

void HealthMonitor::transition(Entry& entry, DeviceState next,
                               platform::SimTime now) {
  if (entry.state == next) return;
  if (entry.state == DeviceState::kDead) return;  // Dead is sticky.
  entry.state = next;
  if (next == DeviceState::kSuspect) entry.suspect_since = now;
  ++transitions_;
}

void HealthMonitor::observe(std::uint32_t device, bool ok,
                            platform::SimTime now, bool can_kill) {
  NDPGEN_CHECK_ARG(device < entries_.size(), "device out of range");
  Entry& entry = entries_[device];
  if (entry.state == DeviceState::kDead) return;
  entry.error_ewma = config_.ewma_alpha * (ok ? 0.0 : 1.0) +
                     (1.0 - config_.ewma_alpha) * entry.error_ewma;
  if (ok) entry.last_ok = now;
  if (entry.error_ewma >= config_.dead_threshold && can_kill) {
    transition(entry, DeviceState::kDead, now);
  } else if (entry.error_ewma >= config_.suspect_threshold) {
    transition(entry, DeviceState::kSuspect, now);
  } else if (ok) {
    transition(entry, DeviceState::kAlive, now);
  }
}

void HealthMonitor::record_heartbeat(std::uint32_t device, bool reachable,
                                     platform::SimTime now) {
  // A missed beat alone never kills — flaps must be able to recover; the
  // stale-Suspect escalation in refresh() handles devices that stay gone.
  if (!reachable) entries_.at(device).ever_missed = true;
  observe(device, reachable, now, /*can_kill=*/false);
}

void HealthMonitor::record_success(std::uint32_t device,
                                   platform::SimTime now) {
  observe(device, true, now, /*can_kill=*/false);
}

void HealthMonitor::record_error(std::uint32_t device,
                                 platform::SimTime now) {
  observe(device, false, now, /*can_kill=*/true);
}

void HealthMonitor::record_integrity_error(std::uint32_t device,
                                           platform::SimTime now) {
  // can_kill=false: corruption earns Suspect (route around, repair), never
  // Dead — the member still answers and failover would be the wrong tool.
  observe(device, false, now, /*can_kill=*/false);
}

void HealthMonitor::refresh(platform::SimTime now) {
  for (Entry& entry : entries_) {
    if (entry.state == DeviceState::kSuspect && entry.ever_missed &&
        now >= entry.last_ok &&
        now - entry.last_ok >= config_.dead_after_ns) {
      transition(entry, DeviceState::kDead, now);
    }
  }
}

void HealthMonitor::declare_dead(std::uint32_t device,
                                 platform::SimTime now) {
  NDPGEN_CHECK_ARG(device < entries_.size(), "device out of range");
  transition(entries_[device], DeviceState::kDead, now);
}

DeviceState HealthMonitor::state(std::uint32_t device) const {
  NDPGEN_CHECK_ARG(device < entries_.size(), "device out of range");
  return entries_[device].state;
}

double HealthMonitor::error_rate(std::uint32_t device) const {
  NDPGEN_CHECK_ARG(device < entries_.size(), "device out of range");
  return entries_[device].error_ewma;
}

}  // namespace ndpgen::cluster
