#include "core/framework.hpp"

#include "spec/parser.hpp"
#include "support/error.hpp"

namespace ndpgen::core {

const ParserArtifacts* CompileResult::find(std::string_view name) const
    noexcept {
  for (const auto& artifacts : parsers) {
    if (artifacts.analyzed.name == name) return &artifacts;
  }
  return nullptr;
}

const ParserArtifacts& CompileResult::get(std::string_view name) const {
  const ParserArtifacts* artifacts = find(name);
  if (artifacts == nullptr) {
    ndpgen::raise(ErrorKind::kInvalidArg,
                  "no parser named '" + std::string(name) +
                      "' in this compilation");
  }
  return *artifacts;
}

Framework::Framework(FrameworkOptions options)
    : options_(std::move(options)) {}

CompileResult Framework::compile(std::string_view spec_source) const {
  CompileResult result;
  spec::DiagnosticSink sink;
  result.module = spec::parse_spec(spec_source, &sink);
  result.warnings = sink.diagnostics();

  for (const auto& parser_spec : result.module.parsers) {
    ParserArtifacts artifacts{
        analysis::analyze_parser(result.module, parser_spec),
        hwgen::PEDesign{},
        {},
        {},
        {},
        {}};
    artifacts.design = hwgen::build_pe_design(artifacts.analyzed, options_.hw);
    artifacts.verilog = hwgen::emit_verilog(artifacts.design);
    artifacts.software_interface =
        hwgen::generate_software_interface(artifacts.design, options_.swif);
    artifacts.resources_in_context =
        hwgen::estimate_pe(artifacts.design, hwgen::SynthesisMode::kInContext);
    artifacts.resources_out_of_context = hwgen::estimate_pe(
        artifacts.design, hwgen::SynthesisMode::kOutOfContext);
    result.parsers.push_back(std::move(artifacts));
  }
  return result;
}

std::size_t Framework::instantiate(const CompileResult& compiled,
                                   std::string_view parser_name,
                                   platform::CosmosPlatform& platform) const {
  const ParserArtifacts& artifacts = compiled.get(parser_name);
  platform.attach_pe(artifacts.design);
  return platform.pe_count() - 1;
}

}  // namespace ndpgen::core
