// The ndpgen framework facade: the public entry point a database engineer
// uses (paper §II: "the proposed framework is usable without any knowledge
// about hardware development or HDLs").
//
// One call compiles a C-style format specification into the full artifact
// bundle per @autogen parser: analyzed layouts, the elaborated PE design,
// the Verilog source, the header-only C software interface, and resource
// estimates — plus helpers to instantiate the PE on a simulated Cosmos+
// platform for execution.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "hwgen/pe_design.hpp"
#include "hwgen/resource_model.hpp"
#include "hwgen/swif_generator.hpp"
#include "hwgen/template_builder.hpp"
#include "hwgen/verilog_emitter.hpp"
#include "platform/cosmos.hpp"
#include "spec/ast.hpp"
#include "spec/diagnostics.hpp"

namespace ndpgen::core {

/// Everything generated for one @autogen parser definition.
struct ParserArtifacts {
  analysis::AnalyzedParser analyzed;
  hwgen::PEDesign design;
  std::string verilog;
  std::string software_interface;
  hwgen::PEResourceReport resources_in_context;
  hwgen::PEResourceReport resources_out_of_context;
};

/// Result of compiling one specification module.
struct CompileResult {
  spec::SpecModule module;
  std::vector<ParserArtifacts> parsers;
  std::vector<spec::Diagnostic> warnings;

  [[nodiscard]] const ParserArtifacts* find(std::string_view name) const
      noexcept;
  [[nodiscard]] const ParserArtifacts& get(std::string_view name) const;
};

struct FrameworkOptions {
  hwgen::TemplateOptions hw{};
  hwgen::SwifOptions swif{};
};

class Framework {
 public:
  explicit Framework(FrameworkOptions options = FrameworkOptions());

  /// Compiles a specification: parse -> contextual analysis -> template
  /// elaboration -> code generation -> resource estimation.
  /// Throws ndpgen::Error on any stage failure.
  [[nodiscard]] CompileResult compile(std::string_view spec_source) const;

  /// Convenience: compiles and attaches the named parser's PE to a
  /// platform; returns the PE index.
  std::size_t instantiate(const CompileResult& compiled,
                          std::string_view parser_name,
                          platform::CosmosPlatform& platform) const;

  [[nodiscard]] const FrameworkOptions& options() const noexcept {
    return options_;
  }

 private:
  FrameworkOptions options_;
};

}  // namespace ndpgen::core
