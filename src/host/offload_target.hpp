// Device-side contract the host QueryService drives.
//
// PR 5 wired the service straight to one (HybridExecutor, CosmosPlatform)
// pair. The cluster frontend needs the same host machinery — queue pairs,
// WRR arbitration, coalescing, retry/backoff, phase accounting — on top
// of N devices with replication and failover, so the device side is
// abstracted into this narrow interface. The service's event loop only
// ever needs five things from "the device": an observability context for
// its host.* metrics, a doorbell on the shared host link, a device
// timeline to align dispatches against, the CQ interrupt cost, and the
// coalesced multi_range_scan offload itself.
//
// SingleDeviceTarget is the original topology, a pass-through adapter
// whose call sequence is exactly what QueryService used to do inline —
// single-device runs stay byte-identical. cluster::ClusterCoordinator is
// the N-device implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "ndp/executor.hpp"
#include "obs/obs.hpp"
#include "platform/cosmos.hpp"

namespace ndpgen::host {

class OffloadTarget {
 public:
  virtual ~OffloadTarget();

  /// Observability context the service's host.* metrics, traces and
  /// request profiles land in.
  [[nodiscard]] virtual obs::Observability& observability() noexcept = 0;

  /// Zero-payload command reservation on the shared host link at virtual
  /// time `at` (the SQ doorbell). Serialized against every other
  /// submission and result transfer; never advances a clock.
  virtual platform::LinkGrant doorbell(platform::SimTime at) = 0;

  /// Device timeline the offloads execute on.
  [[nodiscard]] virtual platform::SimTime device_now() = 0;
  virtual void advance_device_to(platform::SimTime at) = 0;

  /// CQ interrupt cost charged once per offload after it drains.
  [[nodiscard]] virtual platform::SimTime completion_latency() const = 0;

  /// One coalesced offload; advances the device timeline by the scan's
  /// elapsed time. Stats phases (excluding queueing) must sum exactly to
  /// stats.elapsed — the service's end-to-end attribution builds on it.
  virtual ndp::ScanStats multi_range_scan(
      const std::vector<ndp::KeyRange>& ranges,
      const std::vector<ndp::FilterPredicate>& predicates,
      std::vector<std::vector<std::uint8_t>>* records) = 0;
};

/// The PR-5 topology: one HybridExecutor on one CosmosPlatform.
class SingleDeviceTarget final : public OffloadTarget {
 public:
  SingleDeviceTarget(ndp::HybridExecutor& executor,
                     platform::CosmosPlatform& platform)
      : executor_(executor), platform_(platform) {}

  [[nodiscard]] obs::Observability& observability() noexcept override {
    return platform_.observability();
  }
  platform::LinkGrant doorbell(platform::SimTime at) override {
    return platform_.nvme().reserve(at, 0);
  }
  [[nodiscard]] platform::SimTime device_now() override {
    return platform_.events().now();
  }
  void advance_device_to(platform::SimTime at) override {
    platform_.events().advance_to(at);
  }
  [[nodiscard]] platform::SimTime completion_latency() const override {
    return platform_.timing().nvme_command_latency;
  }
  ndp::ScanStats multi_range_scan(
      const std::vector<ndp::KeyRange>& ranges,
      const std::vector<ndp::FilterPredicate>& predicates,
      std::vector<std::vector<std::uint8_t>>* records) override {
    return executor_.multi_range_scan(ranges, predicates, records);
  }

 private:
  ndp::HybridExecutor& executor_;
  platform::CosmosPlatform& platform_;
};

}  // namespace ndpgen::host
