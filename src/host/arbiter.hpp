// Weighted round-robin arbiter across per-tenant submission queues.
//
// Classic WRR with per-tenant credits: the cursor tenant keeps winning
// grants until its weight is spent or its queue runs empty, then the
// cursor advances and the next tenant's credits refill. Over any window
// where all queues stay backlogged, tenant t therefore receives
// weight[t] / sum(weights) of the grants; an idle tenant costs nothing
// (work-conserving). The arbiter is a pure state machine over explicit
// inputs — no clocks, no randomness — so a grant sequence is a
// deterministic function of the pick/pending history.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/error.hpp"

namespace ndpgen::host {

class WrrArbiter {
 public:
  /// One weight (>= 1) per tenant; at least one tenant.
  explicit WrrArbiter(std::vector<std::uint32_t> weights);

  /// Grants the next tenant among those with `pending[t] == true`, or
  /// nullopt when none is pending. `pending` must have one entry per
  /// tenant. Consumes one credit of the granted tenant.
  std::optional<std::uint32_t> pick(const std::vector<bool>& pending);

  [[nodiscard]] std::uint32_t tenants() const noexcept {
    return static_cast<std::uint32_t>(weights_.size());
  }
  [[nodiscard]] std::uint32_t weight(std::uint32_t tenant) const {
    NDPGEN_CHECK_ARG(tenant < weights_.size(), "tenant out of range");
    return weights_[tenant];
  }

 private:
  std::vector<std::uint32_t> weights_;
  std::uint32_t cursor_ = 0;
  std::uint32_t credits_ = 0;
};

}  // namespace ndpgen::host
