// Host query service: multi-tenant NVMe queue-pair frontend for the
// hybrid NDP executor.
//
// The service is a discrete-event simulation of the host submission path
// that sits between concurrent clients and the single device command
// stream (OpenCXD-style; the existing executor is the device):
//
//   clients -> per-tenant QueuePair (bounded SQ, kBusy admission)
//           -> WRR arbiter -> head-of-line coalescing (<= batch_limit
//              FIFO entries, adjacent ranges merge) -> ONE
//              HybridExecutor::multi_range_scan offload -> CQ posting.
//
// Invariants (DESIGN.md §9):
//  * one offload in flight — the device serves one NDP command at a time,
//    so host concurrency shows up as queueing delay, not device magic;
//  * per-tenant FIFO — batching takes a prefix of one tenant's SQ, never
//    reorders within a tenant, never mixes tenants in one offload;
//  * admission before the doorbell — a full SQ rejects host-side with a
//    typed kBusy and the NVMe link is not touched;
//  * every host decision is a function of (event time, submission seq),
//    so a fixed seed replays byte-identically for any --pes/--threads.
//
// Timing: doorbells reserve the shared NvmeLink (zero-payload command,
// serialized with the executor's result transfers), the offload advances
// the platform DES by the executor's elapsed time, and CQ posting charges
// one more nvme_command_latency. Executor errors (e.g. the typed kStorage
// refusal while the store is mid-recovery) propagate out of run() —
// never swallowed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "host/arbiter.hpp"
#include "host/load_generator.hpp"
#include "host/offload_target.hpp"
#include "host/queue_pair.hpp"
#include "ndp/executor.hpp"
#include "platform/cosmos.hpp"

namespace ndpgen::host {

struct ServiceConfig {
  std::uint32_t tenants = 4;
  /// Per-tenant submission queue bound (admission control).
  std::uint32_t queue_depth = 16;
  /// WRR weights, one per tenant; empty = equal weights.
  std::vector<std::uint32_t> weights;
  /// Max head-of-line requests coalesced into one offload; 1 = batching
  /// off.
  std::uint32_t batch_limit = 8;
  /// Client resubmissions after a kBusy rejection before the request is
  /// dropped.
  std::uint32_t max_retries = 8;
  /// First retry backoff; doubles per failed attempt.
  platform::SimTime retry_backoff = 50 * platform::kNsPerUs;
  /// Filter conjunction applied by every offload.
  std::vector<ndp::FilterPredicate> predicates;
  /// Maps output-layout records to keys for per-request result
  /// accounting. Required.
  kv::KeyExtractor result_key;
};

struct TenantReport {
  std::uint64_t submitted = 0;      ///< Distinct requests first submitted.
  std::uint64_t retries = 0;        ///< Resubmissions after kBusy.
  std::uint64_t rejected_busy = 0;  ///< kBusy rejections (incl. retries).
  std::uint64_t dropped = 0;        ///< Requests that exhausted retries.
  std::uint64_t completed = 0;
  std::uint64_t results = 0;
  std::size_t sq_high_water = 0;
  /// Latency percentiles from the obs histogram (histogram_percentile).
  platform::SimTime p50_ns = 0;
  platform::SimTime p95_ns = 0;
  platform::SimTime p99_ns = 0;
  double throughput_rps = 0.0;  ///< completed / makespan.
  /// Summed per-request phase attribution (queueing/doorbell/transfer/
  /// flash/pe/merge) over this tenant's completions.
  obs::PhaseBreakdown phases;
};

struct ServiceReport {
  std::vector<TenantReport> tenants;
  std::uint64_t submitted = 0;
  std::uint64_t retries = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t results = 0;
  std::uint64_t batches = 0;    ///< Offloads dispatched.
  std::uint64_t coalesced = 0;  ///< Requests that rode an earlier head's
                                ///< offload (sum of batch_size - 1).
  std::uint64_t max_batch = 0;
  platform::SimTime makespan_ns = 0;     ///< First arrival -> last CQ post.
  platform::SimTime device_busy_ns = 0;  ///< Sum of offload service times.
  platform::SimTime p50_ns = 0;
  platform::SimTime p95_ns = 0;
  platform::SimTime p99_ns = 0;
  double throughput_rps = 0.0;
  /// Summed per-request phase attribution over every completion. Each
  /// request's phases sum to its latency, so phases.total() equals the
  /// summed completion latency (test-enforced).
  obs::PhaseBreakdown phases;

  [[nodiscard]] double utilization() const noexcept {
    return makespan_ns == 0
               ? 0.0
               : static_cast<double>(device_busy_ns) /
                     static_cast<double>(makespan_ns);
  }
};

class QueryService {
 public:
  /// Serves offloads from an arbitrary device-side target (single device
  /// or a cluster frontend).
  QueryService(OffloadTarget& target, ServiceConfig config);

  /// Convenience for the original topology: wraps (executor, platform) in
  /// an owned SingleDeviceTarget. Behavior is byte-identical to driving
  /// the pair directly.
  QueryService(ndp::HybridExecutor& executor,
               platform::CosmosPlatform& platform, ServiceConfig config);

  /// Drives the load to exhaustion (all issued requests completed or
  /// dropped) and returns the report. Throws the executor's typed errors
  /// (kStorage mid-recovery) and config errors (kInvalidArg); admission
  /// kBusy is handled by retry/backoff and reported, not thrown.
  ServiceReport run(LoadGenerator& load);

  /// Test access to a tenant's queue pair.
  [[nodiscard]] QueuePair& queue_pair(std::uint32_t tenant);

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Delegation target for both public ctors: exactly one of `owned` /
  /// `target` is set, so a throwing config check can never leak the
  /// adapter (the unique_ptr member is constructed first).
  QueryService(std::unique_ptr<OffloadTarget> owned, OffloadTarget* target,
               ServiceConfig config);

  enum class EventKind : std::uint8_t { kArrival, kRetry, kCompletion };

  struct Event {
    platform::SimTime at = 0;
    std::uint64_t seq = 0;  ///< Tie-break: equal times fire in push order.
    EventKind kind = EventKind::kArrival;
    Request request;  ///< Unused for kCompletion.
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// The in-flight offload (at most one; the device serves serially).
  struct Batch {
    std::uint32_t tenant = 0;
    std::vector<Request> requests;
    std::vector<std::uint64_t> results_per_request;
    platform::SimTime dispatched = 0;
    platform::SimTime service_ns = 0;    ///< Executor elapsed (device time).
    obs::PhaseBreakdown device_phases;   ///< Executor phase attribution.
  };

  void push_event(platform::SimTime at, EventKind kind,
                  const Request& request);
  void handle_submit(Request request, LoadGenerator& load);
  void try_dispatch();
  void complete_batch(LoadGenerator& load);
  void seed_closed_loop(LoadGenerator& load);
  void pull_open_arrival(LoadGenerator& load);
  void resolve_metric_handles();

  std::unique_ptr<OffloadTarget> owned_target_;  ///< Legacy-ctor adapter.
  OffloadTarget* target_;  ///< Never null; the device side being driven.
  ServiceConfig config_;
  WrrArbiter arbiter_;
  std::vector<QueuePair> queues_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t event_seq_ = 0;
  platform::SimTime now_ = 0;
  std::optional<Batch> in_flight_;

  // Run-scoped accounting (reset by run()).
  ServiceReport report_;
  platform::SimTime first_arrival_ = 0;
  platform::SimTime last_completion_ = 0;
  bool saw_arrival_ = false;

  // Pre-resolved metric handles (per tenant + global).
  struct TenantMetrics {
    obs::CounterHandle submitted, retries, rejected, dropped, completed,
        results;
    obs::GaugeHandle sq_depth;
    obs::HistogramHandle latency;
  };
  std::vector<TenantMetrics> tenant_metrics_;
  obs::CounterHandle m_submitted_, m_retries_, m_rejected_, m_dropped_,
      m_completed_, m_results_, m_batches_, m_coalesced_;
  obs::HistogramHandle m_latency_, m_service_, m_batch_size_, m_queue_wait_;
};

}  // namespace ndpgen::host
