#include "host/service.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace ndpgen::host {

namespace {

std::vector<std::uint32_t> normalized_weights(const ServiceConfig& config) {
  NDPGEN_CHECK_ARG(config.tenants >= 1, "service needs at least one tenant");
  if (config.weights.empty()) {
    return std::vector<std::uint32_t>(config.tenants, 1);
  }
  NDPGEN_CHECK_ARG(config.weights.size() == config.tenants,
                   "need exactly one WRR weight per tenant");
  return config.weights;
}

}  // namespace

QueryService::QueryService(OffloadTarget& target, ServiceConfig config)
    : QueryService(nullptr, &target, std::move(config)) {}

QueryService::QueryService(ndp::HybridExecutor& executor,
                           platform::CosmosPlatform& platform,
                           ServiceConfig config)
    : QueryService(
          std::make_unique<SingleDeviceTarget>(executor, platform), nullptr,
          std::move(config)) {}

QueryService::QueryService(std::unique_ptr<OffloadTarget> owned,
                           OffloadTarget* target, ServiceConfig config)
    : owned_target_(std::move(owned)),
      target_(target != nullptr ? target : owned_target_.get()),
      config_(std::move(config)),
      arbiter_(normalized_weights(config_)) {
  NDPGEN_CHECK_ARG(config_.batch_limit >= 1,
                   "batch limit must be at least 1 (1 = batching off)");
  NDPGEN_CHECK_ARG(static_cast<bool>(config_.result_key),
                   "service requires result_key for per-request result "
                   "accounting");
  queues_.reserve(config_.tenants);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    queues_.emplace_back(t, config_.queue_depth);
  }
  resolve_metric_handles();
}

void QueryService::resolve_metric_handles() {
  // Handles are resolved once here so event handling never allocates and
  // metric registration order is a function of the config alone.
  obs::MetricsRegistry& m = target_->observability().metrics;
  m_submitted_ = m.counter("host.submitted");
  m_retries_ = m.counter("host.retries");
  m_rejected_ = m.counter("host.rejected_busy");
  m_dropped_ = m.counter("host.dropped");
  m_completed_ = m.counter("host.completed");
  m_results_ = m.counter("host.results");
  m_batches_ = m.counter("host.batches");
  m_coalesced_ = m.counter("host.coalesced");
  m_latency_ = m.histogram("host.latency_ns");
  m_service_ = m.histogram("host.service_ns");
  m_batch_size_ = m.histogram("host.batch_size");
  m_queue_wait_ = m.histogram("host.queue_wait_ns");
  tenant_metrics_.reserve(config_.tenants);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    const std::string prefix = "host.tenant" + std::to_string(t) + ".";
    tenant_metrics_.push_back(TenantMetrics{
        m.counter(prefix + "submitted"), m.counter(prefix + "retries"),
        m.counter(prefix + "rejected_busy"), m.counter(prefix + "dropped"),
        m.counter(prefix + "completed"), m.counter(prefix + "results"),
        m.gauge(prefix + "sq_depth"), m.histogram(prefix + "latency_ns")});
  }
}

QueuePair& QueryService::queue_pair(std::uint32_t tenant) {
  NDPGEN_CHECK_ARG(tenant < queues_.size(), "tenant out of range");
  return queues_[tenant];
}

void QueryService::push_event(platform::SimTime at, EventKind kind,
                              const Request& request) {
  events_.push(Event{at, ++event_seq_, kind, request});
}

void QueryService::pull_open_arrival(LoadGenerator& load) {
  if (auto request = load.next_arrival()) {
    push_event(request->arrival, EventKind::kArrival, *request);
  }
}

void QueryService::seed_closed_loop(LoadGenerator& load) {
  // Clients start staggered by 1 us so the initial burst still has a
  // defined submission order under the (at, seq) event ordering.
  for (std::uint32_t c = 0; c < load.config().closed_loop_clients; ++c) {
    if (auto request = load.next_for_client(c, c * platform::kNsPerUs)) {
      push_event(request->arrival, EventKind::kArrival, *request);
    }
  }
}

void QueryService::handle_submit(Request request, LoadGenerator& load) {
  obs::Observability& obs = target_->observability();
  obs::MetricsRegistry& m = obs.metrics;
  TenantMetrics& tm = tenant_metrics_[request.tenant];
  TenantReport& tr = report_.tenants[request.tenant];
  if (request.attempts == 0) {
    ++report_.submitted;
    ++tr.submitted;
    m.add(m_submitted_);
    m.add(tm.submitted);
  } else {
    ++report_.retries;
    ++tr.retries;
    m.add(m_retries_);
    m.add(tm.retries);
  }
  ++request.attempts;

  QueuePair& qp = queues_[request.tenant];
  Request attempt = request;
  if (!qp.sq_full()) {
    // Doorbell: a zero-payload command on the shared host link, serialized
    // against every other submission and result transfer. The SQ entry is
    // live (dispatchable) once the grant drains. The grant's span of the
    // link is this request's host-side doorbell phase.
    const platform::LinkGrant grant = target_->doorbell(now_);
    attempt.admitted = grant.done;
    attempt.doorbell_ns = grant.done - now_;
  }
  auto admitted = qp.submit(attempt);
  if (!admitted.ok()) {
    // Typed kBusy from admission control: account it, then either back
    // off and resubmit or drop after the retry budget.
    ++report_.rejected_busy;
    ++tr.rejected_busy;
    m.add(m_rejected_);
    m.add(tm.rejected);
    if (obs.tracing()) {
      obs.trace->instant(
          obs.trace->track("host.tenant" + std::to_string(request.tenant)),
          "busy", "host", now_,
          "{\"request\":" + std::to_string(request.id) +
              ",\"attempt\":" + std::to_string(request.attempts) + "}");
    }
    if (request.attempts <= config_.max_retries) {
      // Exponential client backoff: 1st retry after retry_backoff, then
      // doubling — the knob that turns sustained overload into drops
      // instead of an unbounded retry storm. Jitter is seeded per request
      // (id + tenant + attempt), never from a shared stream, so the retry
      // timeline is a pure function of the request and byte-identical
      // under --threads variation.
      const platform::SimTime backoff = config_.retry_backoff
                                        << (request.attempts - 1);
      const platform::SimTime jitter =
          QueuePair::retry_jitter(request, backoff);
      push_event(now_ + backoff + jitter, EventKind::kRetry, request);
    } else {
      ++report_.dropped;
      ++tr.dropped;
      m.add(m_dropped_);
      m.add(tm.dropped);
      if (!load.open_loop()) {
        // The closed-loop client gives up on this request and moves on.
        if (auto next = load.next_for_client(
                request.client, now_ + load.config().think_time)) {
          push_event(next->arrival, EventKind::kArrival, *next);
        }
      }
    }
    return;
  }
  m.raise(tm.sq_depth, qp.sq_depth());
}

void QueryService::try_dispatch() {
  if (in_flight_.has_value()) return;  // One offload in flight at a time.
  std::vector<bool> pending(queues_.size());
  bool any = false;
  for (std::size_t t = 0; t < queues_.size(); ++t) {
    pending[t] = !queues_[t].sq_empty();
    any = any || pending[t];
  }
  if (!any) return;
  const auto grant = arbiter_.pick(pending);
  if (!grant.has_value()) return;

  QueuePair& qp = queues_[*grant];
  Batch batch;
  batch.tenant = *grant;
  platform::SimTime ready = now_;
  while (batch.requests.size() < config_.batch_limit) {
    auto next = qp.pop();
    if (!next.has_value()) break;
    ready = std::max(ready, next->admitted);
    batch.requests.push_back(*next);
  }

  if (ready > target_->device_now()) target_->advance_device_to(ready);
  const platform::SimTime start = target_->device_now();

  std::vector<ndp::KeyRange> ranges;
  ranges.reserve(batch.requests.size());
  for (const Request& request : batch.requests) {
    ranges.push_back(ndp::KeyRange{request.lo, request.hi});
  }
  std::vector<std::vector<std::uint8_t>> records;
  // One coalesced offload; executor errors (typed kStorage while the
  // store recovers) unwind through run() to the caller. The request
  // context is minted from the batch head's id (head-of-line requests are
  // issued in generator order, so the id — and every span tagged with it —
  // is invariant across pes/threads) and cleared before control returns
  // to the event loop.
  obs::Observability& obs = target_->observability();
  obs.request_ctx = obs::RequestContext::mint(batch.requests.front().id);
  ndp::ScanStats stats;
  try {
    stats = target_->multi_range_scan(ranges, config_.predicates, &records);
  } catch (...) {
    obs.request_ctx = obs::RequestContext{};
    throw;
  }
  obs.request_ctx = obs::RequestContext{};

  batch.dispatched = start;
  batch.service_ns = stats.elapsed;
  batch.device_phases = stats.phases;
  batch.results_per_request.assign(batch.requests.size(), 0);
  for (const auto& record : records) {
    const kv::Key key = config_.result_key(record);
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
      const Request& request = batch.requests[i];
      if (!(key < request.lo) && !(request.hi < key)) {
        ++batch.results_per_request[i];
      }
    }
  }

  obs::MetricsRegistry& m = obs.metrics;
  ++report_.batches;
  report_.coalesced += batch.requests.size() - 1;
  report_.max_batch = std::max<std::uint64_t>(report_.max_batch,
                                              batch.requests.size());
  report_.device_busy_ns += stats.elapsed;
  m.add(m_batches_);
  m.add(m_coalesced_, batch.requests.size() - 1);
  m.observe(m_batch_size_, batch.requests.size());
  m.observe(m_service_, stats.elapsed);
  for (const Request& request : batch.requests) {
    m.observe(m_queue_wait_, start - std::min(start, request.admitted));
  }
  if (obs.tracing()) {
    const obs::TrackId device = obs.trace->track("host.device");
    obs.trace->complete(
        device, "offload", "host", start, stats.elapsed,
        "{\"tenant\":" + std::to_string(batch.tenant) +
            ",\"requests\":" + std::to_string(batch.requests.size()) +
            ",\"results\":" + std::to_string(stats.results) +
            ",\"head\":" + std::to_string(batch.requests.front().id) + "}");
    // One flow step per coalesced request, binding every rider's request
    // flow to the offload slice it travelled in.
    for (const Request& request : batch.requests) {
      obs.trace->flow_step(device, "request", "request", start,
                           obs::RequestContext::mint(request.id).trace_id);
    }
  }

  // CQ posting: completion interrupt one command latency after the
  // offload (whose elapsed already covers the result transfer) drains.
  const platform::SimTime completed_at =
      target_->device_now() + target_->completion_latency();
  in_flight_ = std::move(batch);
  push_event(completed_at, EventKind::kCompletion, Request{});
}

void QueryService::complete_batch(LoadGenerator& load) {
  NDPGEN_CHECK(in_flight_.has_value(),
               "completion event without an in-flight offload");
  Batch batch = std::move(*in_flight_);
  in_flight_.reset();
  obs::Observability& obs = target_->observability();
  obs::MetricsRegistry& m = obs.metrics;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& request = batch.requests[i];
    Completion completion;
    completion.id = request.id;
    completion.tenant = request.tenant;
    completion.results = batch.results_per_request[i];
    completion.batch_requests =
        static_cast<std::uint32_t>(batch.requests.size());
    completion.arrival = request.arrival;
    completion.admitted = request.admitted;
    completion.dispatched = batch.dispatched;
    completion.completed = now_;
    // End-to-end phase attribution. Every nanosecond of the request's
    // latency lands in exactly one bucket, so phases.total() == latency():
    //  * queueing  — arrival -> dispatch, minus the winning doorbell;
    //    covers SQ wait, kBusy backoff, and batch head-of-line delay;
    //  * doorbell  — host link reservation + device command/retry phase;
    //  * transfer  — device result DMA + the host-side completion
    //    residual (CQ interrupt latency and any device-queue skew);
    //  * flash/pe/merge — taken verbatim from the offload's breakdown.
    // Riders inherit the shared offload's device phases: the device
    // genuinely spent those cycles on the coalesced command they rode in.
    using obs::RequestPhase;
    const platform::SimTime pre_dispatch =
        completion.dispatched - completion.arrival;
    NDPGEN_CHECK(pre_dispatch >= request.doorbell_ns,
                 "dispatch precedes the admitting doorbell");
    const platform::SimTime post_dispatch =
        completion.completed - completion.dispatched;
    NDPGEN_CHECK(post_dispatch >= batch.service_ns,
                 "completion precedes the offload's service time");
    completion.phases[RequestPhase::kQueueing] =
        pre_dispatch - request.doorbell_ns;
    completion.phases[RequestPhase::kDoorbell] =
        request.doorbell_ns + batch.device_phases[RequestPhase::kDoorbell];
    completion.phases[RequestPhase::kTransfer] =
        batch.device_phases[RequestPhase::kTransfer] +
        (post_dispatch - batch.service_ns);
    completion.phases[RequestPhase::kFlash] =
        batch.device_phases[RequestPhase::kFlash];
    completion.phases[RequestPhase::kPe] =
        batch.device_phases[RequestPhase::kPe];
    completion.phases[RequestPhase::kMerge] =
        batch.device_phases[RequestPhase::kMerge];
    queues_[request.tenant].post(completion);

    TenantMetrics& tm = tenant_metrics_[request.tenant];
    TenantReport& tr = report_.tenants[request.tenant];
    ++report_.completed;
    ++tr.completed;
    report_.results += completion.results;
    tr.results += completion.results;
    m.add(m_completed_);
    m.add(tm.completed);
    m.add(m_results_, completion.results);
    m.add(tm.results, completion.results);
    m.observe(m_latency_, completion.latency());
    m.observe(tm.latency, completion.latency());
    report_.phases += completion.phases;
    tr.phases += completion.phases;
    last_completion_ = now_;

    if (obs.tracing()) {
      const obs::TrackId track = obs.trace->track(
          "host.tenant" + std::to_string(request.tenant));
      const std::uint64_t flow =
          obs::RequestContext::mint(request.id).trace_id;
      obs.trace->complete(
          track, "request", "host", completion.arrival,
          completion.latency(),
          "{\"request\":" + std::to_string(request.id) +
              ",\"results\":" + std::to_string(completion.results) +
              ",\"batch\":" + std::to_string(completion.batch_requests) +
              ",\"dominant\":\"" +
              std::string(obs::phase_name(completion.phases.dominant())) +
              "\",\"phases\":" + completion.phases.json() + "}");
      // Causal chain: request span (begin) -> offload slice (step) ->
      // device scan span (step, emitted by the executor) -> completion
      // (end), all keyed by the request-derived flow id.
      obs.trace->flow_begin(track, "request", "request", completion.arrival,
                            flow);
      obs.trace->flow_end(track, "request", "request", completion.completed,
                          flow);
    }
    if (obs.profiling()) {
      obs.profiler->record(obs::RequestProfile{
          completion.id, completion.tenant, completion.arrival,
          completion.completed, completion.phases});
    }

    if (!load.open_loop()) {
      if (auto next = load.next_for_client(
              request.client, now_ + load.config().think_time)) {
        push_event(next->arrival, EventKind::kArrival, *next);
      }
    }
  }
}

ServiceReport QueryService::run(LoadGenerator& load) {
  NDPGEN_CHECK_ARG(event_seq_ == 0,
                   "QueryService::run is single-use; build a fresh service "
                   "per run so reports and histograms stay per-run");
  NDPGEN_CHECK_ARG(load.config().tenants == config_.tenants,
                   "load and service disagree on the tenant count");
  report_ = ServiceReport{};
  report_.tenants.assign(config_.tenants, TenantReport{});

  if (load.open_loop()) {
    pull_open_arrival(load);
  } else {
    seed_closed_loop(load);
  }
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    now_ = event.at;
    if (event.kind == EventKind::kArrival && !saw_arrival_) {
      saw_arrival_ = true;
      first_arrival_ = event.at;
    }
    switch (event.kind) {
      case EventKind::kArrival:
        // Keep exactly one future open-loop arrival queued: arrivals are
        // nondecreasing, so pulling on consumption preserves order.
        if (load.open_loop()) pull_open_arrival(load);
        handle_submit(event.request, load);
        break;
      case EventKind::kRetry:
        handle_submit(event.request, load);
        break;
      case EventKind::kCompletion:
        complete_batch(load);
        break;
    }
    try_dispatch();
  }

  obs::MetricsRegistry& m = target_->observability().metrics;
  if (last_completion_ > first_arrival_) {
    report_.makespan_ns = last_completion_ - first_arrival_;
  }
  if (report_.makespan_ns > 0) {
    report_.throughput_rps = static_cast<double>(report_.completed) *
                             1e9 /
                             static_cast<double>(report_.makespan_ns);
  }
  report_.p50_ns = m.histogram_percentile("host.latency_ns", 0.50);
  report_.p95_ns = m.histogram_percentile("host.latency_ns", 0.95);
  report_.p99_ns = m.histogram_percentile("host.latency_ns", 0.99);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    TenantReport& tr = report_.tenants[t];
    const std::string name =
        "host.tenant" + std::to_string(t) + ".latency_ns";
    tr.p50_ns = m.histogram_percentile(name, 0.50);
    tr.p95_ns = m.histogram_percentile(name, 0.95);
    tr.p99_ns = m.histogram_percentile(name, 0.99);
    tr.sq_high_water = queues_[t].sq_high_water();
    if (report_.makespan_ns > 0) {
      tr.throughput_rps = static_cast<double>(tr.completed) * 1e9 /
                          static_cast<double>(report_.makespan_ns);
    }
  }
  return report_;
}

}  // namespace ndpgen::host
