#include "host/arbiter.hpp"

namespace ndpgen::host {

WrrArbiter::WrrArbiter(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)) {
  NDPGEN_CHECK_ARG(!weights_.empty(), "arbiter needs at least one tenant");
  for (const std::uint32_t weight : weights_) {
    NDPGEN_CHECK_ARG(weight >= 1, "tenant weights must be at least 1");
  }
  credits_ = weights_[0];
}

std::optional<std::uint32_t> WrrArbiter::pick(
    const std::vector<bool>& pending) {
  NDPGEN_CHECK_ARG(pending.size() == weights_.size(),
                   "pending mask must cover every tenant");
  const std::uint32_t n = tenants();
  // At most one full rotation past every tenant plus the cursor's own
  // retry with refilled credits; beyond that nothing is pending.
  for (std::uint32_t scanned = 0; scanned <= n; ++scanned) {
    if (credits_ > 0 && pending[cursor_]) {
      --credits_;
      return cursor_;
    }
    cursor_ = (cursor_ + 1) % n;
    credits_ = weights_[cursor_];
  }
  return std::nullopt;
}

}  // namespace ndpgen::host
