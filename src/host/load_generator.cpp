#include "host/load_generator.hpp"

#include <algorithm>

namespace ndpgen::host {

LoadGenerator::LoadGenerator(LoadConfig config)
    : config_(config), rng_(config.seed), clock_(config.start_ns) {
  NDPGEN_CHECK_ARG(config_.tenants >= 1, "load needs at least one tenant");
  NDPGEN_CHECK_ARG(config_.key_space >= 1,
                   "load needs a non-empty key space");
  NDPGEN_CHECK_ARG(config_.span_keys >= 1,
                   "request ranges must cover at least one key");
  NDPGEN_CHECK_ARG(config_.closed_loop_clients > 0 ||
                       config_.arrival_rate >= 1,
                   "open loop needs a positive arrival rate");
  // Spread tenant walk starts over the key space so tenants touch
  // different blocks until their walks wrap.
  positions_.resize(config_.tenants);
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    positions_[t] = 1 + (config_.key_space * t) / config_.tenants;
  }
}

Request LoadGenerator::make_request(std::uint32_t tenant,
                                    std::uint32_t client,
                                    platform::SimTime at) {
  std::uint64_t& position = positions_[tenant];
  if (config_.jump_one_in != 0 && rng_.below(config_.jump_one_in) == 0) {
    position = 1 + rng_.below(config_.key_space);
  }
  const std::uint64_t lo = position;
  const std::uint64_t hi =
      std::min(config_.key_space, lo + config_.span_keys - 1);
  position = hi >= config_.key_space ? 1 : hi + 1;

  Request request;
  request.id = ++issued_;
  request.tenant = tenant;
  request.client = client;
  request.lo = kv::Key{lo, 0};
  request.hi = kv::Key{hi, 0};
  request.arrival = at;
  return request;
}

std::optional<Request> LoadGenerator::next_arrival() {
  NDPGEN_CHECK_ARG(open_loop(),
                   "next_arrival is the open-loop driver; closed loops "
                   "issue via next_for_client");
  if (issued_ >= config_.requests) return std::nullopt;
  // Seeded renewal process with integer jitter: gaps are uniform in
  // [base/2, 3*base/2), mean = base = 1s / rate. Integer-only so the
  // schedule is byte-reproducible across platforms.
  const platform::SimTime base =
      std::max<platform::SimTime>(1, platform::kNsPerSec /
                                         config_.arrival_rate);
  clock_ += base / 2 + rng_.below(std::max<std::uint64_t>(1, base));
  const auto tenant =
      static_cast<std::uint32_t>(rng_.below(config_.tenants));
  return make_request(tenant, tenant, clock_);
}

std::optional<Request> LoadGenerator::next_for_client(std::uint32_t client,
                                                      platform::SimTime at) {
  NDPGEN_CHECK_ARG(!open_loop(),
                   "next_for_client is the closed-loop driver");
  NDPGEN_CHECK_ARG(client < config_.closed_loop_clients,
                   "client index out of range");
  if (issued_ >= config_.requests) return std::nullopt;
  return make_request(client % config_.tenants, client, at);
}

}  // namespace ndpgen::host
