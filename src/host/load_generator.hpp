// Seeded, deterministic workload driver for the host query service.
//
// Two driving disciplines (both integer-only, so a fixed seed reproduces
// the exact byte sequence on every platform):
//  * open loop  — arrivals follow a seeded renewal process at a configured
//    mean rate, independent of service completions (the discipline that
//    exposes saturation: offered load keeps coming when the device falls
//    behind);
//  * closed loop — a fixed population of clients each keeps exactly one
//    request outstanding, issuing the next one `think_time` after the
//    previous completion (self-throttling; measures capacity, not tail
//    blow-up).
//
// Requests are range scans over per-tenant key windows that mostly walk
// forward (adjacent ranges — what the service's coalescing exploits) and
// occasionally jump to a random position (1-in-`jump_one_in`), breaking
// batches the way independent clients would.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "host/queue_pair.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ndpgen::host {

struct LoadConfig {
  std::uint32_t tenants = 4;
  /// Total request budget across all tenants/clients.
  std::uint64_t requests = 256;
  /// Open loop: mean offered load in requests per virtual second.
  std::uint64_t arrival_rate = 1000;
  /// > 0 switches to closed loop with this many clients.
  std::uint32_t closed_loop_clients = 0;
  /// Closed loop: per-client pause between completion and next issue.
  platform::SimTime think_time = 0;
  /// Open-loop arrival-clock origin. Lets a second load segment continue
  /// a timeline whose device clock has already advanced (e.g. measuring a
  /// cluster after failover): arrivals start here instead of at 0, so
  /// completion latencies stay arrival-relative, not epoch-relative.
  platform::SimTime start_ns = 0;
  /// Record ids span [1, key_space]; keys are (id, 0). Required.
  std::uint64_t key_space = 0;
  /// Ids covered per request range.
  std::uint64_t span_keys = 48;
  /// Locality break: each request jumps to a random window with
  /// probability 1/N (0 = pure sequential walk).
  std::uint64_t jump_one_in = 8;
  std::uint64_t seed = 20210521;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadConfig config);

  [[nodiscard]] const LoadConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool open_loop() const noexcept {
    return config_.closed_loop_clients == 0;
  }

  /// Open loop: the next arrival, with nondecreasing arrival times;
  /// nullopt once the request budget is spent.
  std::optional<Request> next_arrival();

  /// Closed loop: the request client `client` issues at time `at`;
  /// nullopt once the request budget is spent. Clients map to tenants
  /// round-robin (client % tenants).
  std::optional<Request> next_for_client(std::uint32_t client,
                                         platform::SimTime at);

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  Request make_request(std::uint32_t tenant, std::uint32_t client,
                       platform::SimTime at);

  LoadConfig config_;
  support::Xoshiro256 rng_;
  std::vector<std::uint64_t> positions_;  ///< Per-tenant walk position.
  platform::SimTime clock_ = 0;           ///< Open-loop arrival clock.
  std::uint64_t issued_ = 0;
};

}  // namespace ndpgen::host
