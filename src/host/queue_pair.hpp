// NVMe submission/completion queue pair for one tenant.
//
// The host query service models the NVMe driver view: each tenant owns a
// bounded submission queue (SQ) and a completion queue (CQ). Admission
// control is enforced here — a submit against a full SQ fails with a
// typed Status{kBusy}, never silently drops — and the service layers the
// retry/backoff policy on top. The SQ is strictly FIFO per tenant:
// arbitration and batching pick how many head-of-line entries leave per
// offload, but never reorder a tenant's own requests.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "kv/key.hpp"
#include "obs/request_trace.hpp"
#include "platform/event_queue.hpp"
#include "support/error.hpp"

namespace ndpgen::host {

/// One client scan request over the inclusive key range [lo, hi].
struct Request {
  std::uint64_t id = 0;       ///< Unique, in generator issue order.
  std::uint32_t tenant = 0;   ///< Queue pair the request targets.
  std::uint32_t client = 0;   ///< Issuing closed-loop client (== tenant
                              ///< stream index in open loop).
  kv::Key lo;
  kv::Key hi;
  platform::SimTime arrival = 0;   ///< First submission attempt.
  platform::SimTime admitted = 0;  ///< Doorbell completion (SQ entry live).
  /// Host-side doorbell cost of the winning attempt (admitted - submit
  /// time): the zero-payload reservation on the shared NVMe link.
  platform::SimTime doorbell_ns = 0;
  std::uint32_t attempts = 0;      ///< Submission attempts so far.
};

/// CQ entry: per-request outcome with the full latency breakdown.
struct Completion {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint64_t results = 0;         ///< Records inside this request's range.
  std::uint32_t batch_requests = 0;  ///< Size of the offload it rode in.
  platform::SimTime arrival = 0;
  platform::SimTime admitted = 0;
  platform::SimTime dispatched = 0;
  platform::SimTime completed = 0;
  /// End-to-end attribution; phases.total() == latency() (test-enforced).
  obs::PhaseBreakdown phases;

  [[nodiscard]] platform::SimTime latency() const noexcept {
    return completed - arrival;
  }
  [[nodiscard]] platform::SimTime queue_wait() const noexcept {
    return dispatched - admitted;
  }
};

class QueuePair {
 public:
  QueuePair(std::uint32_t tenant, std::uint32_t depth);

  /// Deterministic retry-backoff jitter for one rejected attempt,
  /// uniform-ish in [0, backoff/4). Seeded per request from (id, tenant,
  /// attempt) — NOT from a shared RNG stream — so the retry timeline of
  /// every request is a pure function of the request itself and stays
  /// byte-identical under --threads/--pes variation and any interleaving
  /// of other tenants' retries. Jitter breaks the retry convoys that a
  /// bare exponential schedule forms when a burst is rejected at the same
  /// instant.
  [[nodiscard]] static platform::SimTime retry_jitter(
      const Request& request, platform::SimTime backoff) noexcept;

  /// Admission control: enqueues into the SQ, or fails with Status{kBusy}
  /// when the queue already holds `depth()` entries. Returns the
  /// post-admission SQ depth on success. Never throws — the service's
  /// event loop runs through here and rejection is an expected outcome.
  ndpgen::Result<std::uint32_t> submit(const Request& request);

  /// Head-of-line entry; nullptr when the SQ is empty.
  [[nodiscard]] const Request* head() const noexcept;
  /// Pops the head-of-line entry (device fetch at dispatch).
  std::optional<Request> pop();

  /// Posts a completion to the CQ.
  void post(const Completion& completion);
  /// Drains the CQ into `out` (client reap), preserving posting order.
  void reap(std::vector<Completion>& out);

  [[nodiscard]] std::uint32_t tenant() const noexcept { return tenant_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t sq_depth() const noexcept { return sq_.size(); }
  [[nodiscard]] bool sq_empty() const noexcept { return sq_.empty(); }
  [[nodiscard]] bool sq_full() const noexcept { return sq_.size() >= depth_; }
  [[nodiscard]] std::size_t cq_depth() const noexcept { return cq_.size(); }

  // --- Stats (monotone counters over the pair's lifetime) ---------------
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected_busy() const noexcept {
    return rejected_busy_;
  }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::size_t sq_high_water() const noexcept {
    return sq_high_water_;
  }

 private:
  std::uint32_t tenant_;
  std::uint32_t depth_;
  std::deque<Request> sq_;
  std::deque<Completion> cq_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_busy_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t sq_high_water_ = 0;
};

}  // namespace ndpgen::host
