#include "host/offload_target.hpp"

namespace ndpgen::host {

// Out-of-line key function anchoring the vtable.
OffloadTarget::~OffloadTarget() = default;

}  // namespace ndpgen::host
