#include "host/queue_pair.hpp"

#include <algorithm>

namespace ndpgen::host {

QueuePair::QueuePair(std::uint32_t tenant, std::uint32_t depth)
    : tenant_(tenant), depth_(depth) {
  NDPGEN_CHECK_ARG(depth > 0, "queue pair depth must be at least 1");
}

ndpgen::Result<std::uint32_t> QueuePair::submit(const Request& request) {
  if (sq_full()) {
    ++rejected_busy_;
    return ndpgen::Result<std::uint32_t>::failure(
        ErrorKind::kBusy,
        "tenant " + std::to_string(tenant_) + " submission queue full (" +
            std::to_string(depth_) + " entries)");
  }
  sq_.push_back(request);
  ++admitted_;
  sq_high_water_ = std::max(sq_high_water_, sq_.size());
  return static_cast<std::uint32_t>(sq_.size());
}

const Request* QueuePair::head() const noexcept {
  return sq_.empty() ? nullptr : &sq_.front();
}

std::optional<Request> QueuePair::pop() {
  if (sq_.empty()) return std::nullopt;
  Request request = sq_.front();
  sq_.pop_front();
  return request;
}

void QueuePair::post(const Completion& completion) {
  cq_.push_back(completion);
  ++completed_;
}

void QueuePair::reap(std::vector<Completion>& out) {
  for (const Completion& completion : cq_) out.push_back(completion);
  cq_.clear();
}

}  // namespace ndpgen::host
