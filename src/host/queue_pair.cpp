#include "host/queue_pair.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace ndpgen::host {

QueuePair::QueuePair(std::uint32_t tenant, std::uint32_t depth)
    : tenant_(tenant), depth_(depth) {
  NDPGEN_CHECK_ARG(depth > 0, "queue pair depth must be at least 1");
}

platform::SimTime QueuePair::retry_jitter(const Request& request,
                                          platform::SimTime backoff) noexcept {
  const platform::SimTime window = backoff / 4;
  if (window == 0) return 0;
  // One SplitMix64 step over a (id, tenant, attempt) composite: cheap,
  // stateless, and collision-free enough that concurrent rejects spread
  // across the window instead of re-colliding at the same instant.
  support::SplitMix64 mixer(request.id * 0x9e3779b97f4a7c15ULL ^
                            (static_cast<std::uint64_t>(request.tenant) << 32) ^
                            request.attempts);
  return static_cast<platform::SimTime>(mixer.next() % window);
}

ndpgen::Result<std::uint32_t> QueuePair::submit(const Request& request) {
  if (sq_full()) {
    ++rejected_busy_;
    return ndpgen::Result<std::uint32_t>::failure(
        ErrorKind::kBusy,
        "tenant " + std::to_string(tenant_) + " submission queue full (" +
            std::to_string(depth_) + " entries)");
  }
  sq_.push_back(request);
  ++admitted_;
  sq_high_water_ = std::max(sq_high_water_, sq_.size());
  return static_cast<std::uint32_t>(sq_.size());
}

const Request* QueuePair::head() const noexcept {
  return sq_.empty() ? nullptr : &sq_.front();
}

std::optional<Request> QueuePair::pop() {
  if (sq_.empty()) return std::nullopt;
  Request request = sq_.front();
  sq_.pop_front();
  return request;
}

void QueuePair::post(const Completion& completion) {
  cq_.push_back(completion);
  ++completed_;
}

void QueuePair::reap(std::vector<Completion>& out) {
  for (const Completion& completion : cq_) out.push_back(completion);
  cq_.clear();
}

}  // namespace ndpgen::host
