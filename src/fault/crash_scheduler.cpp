#include "fault/crash_scheduler.hpp"

#include "support/rng.hpp"

namespace ndpgen::fault {

namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  support::SplitMix64 mixer(x);
  return mixer.next();
}

/// Garbage stream id, disjoint from the fault_injector streams.
constexpr std::uint64_t kStreamTornGarbage = 0x746f726eULL;  // "torn"

}  // namespace

CrashAction CrashScheduler::on_write_step(WriteStepKind kind,
                                          std::uint64_t target) noexcept {
  if (crashed_) return CrashAction::kDrop;
  ++steps_;
  if (plan_.crash_at_step != 0 && steps_ == plan_.crash_at_step) {
    crashed_ = true;
    crashed_kind_ = kind;
    crashed_target_ = target;
    return CrashAction::kInterrupt;
  }
  return CrashAction::kProceed;
}

std::uint8_t CrashScheduler::garbage_byte(std::uint64_t linear_page,
                                          std::uint64_t index) const noexcept {
  std::uint64_t h =
      mix64(plan_.seed ^ (kStreamTornGarbage * 0xA24BAED4963EE407ULL));
  h = mix64(h ^ (linear_page * 0x9E3779B97F4A7C15ULL));
  h = mix64(h ^ (index * 0xC2B2AE3D27D4EB4FULL));
  return static_cast<std::uint8_t>(h);
}

}  // namespace ndpgen::fault
