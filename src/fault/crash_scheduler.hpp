// CrashScheduler: deterministic power-loss injection for the write path.
//
// The Cosmos+ OpenSSD has no power-loss protection, so a crash can strike
// in the middle of any NAND page program or block erase. The scheduler
// models exactly that: every durable write-path operation (page program,
// block erase) is one *step*; a CrashPlan names the 1-based step at which
// power is lost. The operation in flight at that step is interrupted —
// FlashModel turns an interrupted program into a *torn page* (a prefix of
// the real data followed by deterministic garbage, so any CRC over the
// page fails) and an interrupted erase into an *unstable block* — and
// every later step is silently dropped (the device is off).
//
// Determinism contract (same as fault/fault_injector.hpp): the step
// counter advances in operation order, which the single-threaded DES makes
// a pure function of the workload, and the garbage bytes are a SplitMix64
// hash of (plan seed, linear page, byte offset). Two runs with the same
// plan and workload therefore tear the exact same bytes — the property the
// crash-sweep harness's repeated-run hash check relies on.
#pragma once

#include <cstdint>

namespace ndpgen::fault {

/// What FlashModel should do with the write-path operation it just
/// reported to the scheduler.
enum class CrashAction : std::uint8_t {
  kProceed,    ///< Power is up: complete the operation normally.
  kInterrupt,  ///< Power fails DURING this operation: tear it.
  kDrop,       ///< Power already failed: the operation never reaches NAND.
};

enum class WriteStepKind : std::uint8_t { kPageProgram, kBlockErase };

struct CrashPlan {
  /// 1-based write step (program or erase) at which power is lost;
  /// 0 disables the scheduler (counting runs use this to learn the total
  /// step count of a workload).
  std::uint64_t crash_at_step = 0;
  /// Fraction of the page image that completes before an interrupted
  /// program loses power (the rest becomes garbage).
  double torn_fraction = 0.5;
  /// Seed for the deterministic garbage bytes of torn pages.
  std::uint64_t seed = 0xc4a5c4a5ULL;
};

class CrashScheduler {
 public:
  explicit CrashScheduler(CrashPlan plan = CrashPlan()) : plan_(plan) {}

  /// Reports one write-path operation (`target` is the linear page for
  /// programs, the global block id for erases — recorded for diagnostics)
  /// and returns what should happen to it. Advances the step counter.
  CrashAction on_write_step(WriteStepKind kind, std::uint64_t target) noexcept;

  [[nodiscard]] const CrashPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  /// Write steps observed so far (counting runs read this to size sweeps).
  [[nodiscard]] std::uint64_t steps_observed() const noexcept {
    return steps_;
  }
  /// The step that actually crashed (0 = none yet).
  [[nodiscard]] std::uint64_t crashed_step() const noexcept {
    return crashed_ ? plan_.crash_at_step : 0;
  }
  [[nodiscard]] WriteStepKind crashed_kind() const noexcept {
    return crashed_kind_;
  }
  [[nodiscard]] std::uint64_t crashed_target() const noexcept {
    return crashed_target_;
  }

  /// Re-arms the scheduler with a fresh plan (step counter restarts).
  void reset(CrashPlan plan) noexcept {
    plan_ = plan;
    steps_ = 0;
    crashed_ = false;
  }

  /// Deterministic garbage byte `index` of torn page `linear_page`.
  [[nodiscard]] std::uint8_t garbage_byte(std::uint64_t linear_page,
                                          std::uint64_t index) const noexcept;

 private:
  CrashPlan plan_;
  std::uint64_t steps_ = 0;
  bool crashed_ = false;
  WriteStepKind crashed_kind_ = WriteStepKind::kPageProgram;
  std::uint64_t crashed_target_ = 0;
};

}  // namespace ndpgen::fault
