// FaultInjector: deterministic, seed-driven fault decisions.
//
// Every decision is a pure function of (profile seed, fault stream,
// stable identifiers such as the linear page number, and a per-entity
// ordinal), hashed through SplitMix64. Two runs with the same profile and
// the same operation sequence therefore draw the exact same faults —
// which is what keeps --trace/--metrics output byte-identical under a
// fixed fault seed (the obs_determinism contract).
//
// The injector only *decides*; the device models (FlashModel, NvmeLink,
// HardwareNdp, PlacementPolicy) apply the latency/behaviour consequences
// and publish the metrics.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "fault/fault_profile.hpp"

namespace ndpgen::fault {

/// Outcome of the NAND reliability model for one timed page read.
struct PageReadFault {
  std::uint32_t raw_bit_errors = 0;  ///< Before any retry.
  std::uint32_t retries = 0;         ///< Read-retry steps taken.
  bool corrected = false;        ///< ECC fixed a nonzero error count.
  bool uncorrectable = false;    ///< Still beyond ECC after max retries.
  bool silent_corruption = false;  ///< ECC miscorrected (CRC's job now).
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile = FaultProfile());

  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }
  /// False = every query below is a near-free early return.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // --- NAND ------------------------------------------------------------
  /// Reliability outcome for the next read of `linear_page`. `page_bits`
  /// is the page size in bits; `pe_cycles` the block's program/erase
  /// count; `retention_ns` the virtual time since the page was programmed.
  /// Each call advances the page's read ordinal (read-disturb ordering).
  [[nodiscard]] PageReadFault on_page_read(std::uint64_t linear_page,
                                           std::uint64_t page_bits,
                                           std::uint64_t pe_cycles,
                                           std::uint64_t retention_ns);

  /// True when (lun, block) is a grown bad block. Stateless hash — the
  /// same (seed, lun, block) always answers the same, independent of
  /// query order.
  [[nodiscard]] bool is_bad_block(std::uint32_t lun,
                                  std::uint32_t block) const noexcept;

  // --- NVMe ------------------------------------------------------------
  /// Number of attempts of the next NVMe command that time out before one
  /// succeeds, capped at profile().nvme_max_retries (the cap models the
  /// controller-reset escalation; the command still completes).
  [[nodiscard]] std::uint32_t next_nvme_timeouts();

  // --- NDP --------------------------------------------------------------
  /// True when the next dispatch on PE `pe_index` hangs (no ready/valid
  /// progress until the watchdog fires).
  [[nodiscard]] bool next_pe_hang(std::size_t pe_index);

  /// Per-shard variant for the multi-PE scan engine: the decision stream
  /// is keyed by the stable shard id (not the platform PE index), on a
  /// stream distinct from next_pe_hang, so shard outcomes depend only on
  /// (seed, shard id, dispatch ordinal) — never on thread interleaving or
  /// on how shards happen to map onto platform PEs. Draw serially, in
  /// block order, before fanning work out to threads.
  [[nodiscard]] bool next_shard_pe_hang(std::uint64_t shard_id);

  // --- Introspection (tests) --------------------------------------------
  [[nodiscard]] std::uint64_t page_reads_decided() const noexcept {
    return page_reads_decided_;
  }

  /// Pure ECC math shared with the unit tests: retry count needed to
  /// bring `raw_errors` within `ecc_bits` given the per-step attenuation,
  /// capped at `max_retries` (uncorrectable when the cap is hit and the
  /// residual still exceeds the threshold).
  [[nodiscard]] static std::uint32_t retries_needed(
      std::uint32_t raw_errors, std::uint32_t ecc_bits, double retry_factor,
      std::uint32_t max_retries, bool& uncorrectable) noexcept;

 private:
  /// Deterministic uniform draw in [0,1) for (stream, a, b).
  [[nodiscard]] double u01(std::uint64_t stream, std::uint64_t a,
                           std::uint64_t b) const noexcept;
  /// Deterministic Poisson sample with mean `lambda` from uniform `u`.
  [[nodiscard]] static std::uint32_t poisson(double lambda,
                                             double u) noexcept;

  FaultProfile profile_;
  bool enabled_ = false;

  /// Per-page read ordinals (read-disturb stream positions).
  std::unordered_map<std::uint64_t, std::uint32_t> page_read_seq_;
  /// Per-PE dispatch ordinals.
  std::unordered_map<std::size_t, std::uint64_t> pe_dispatch_seq_;
  /// Per-shard dispatch ordinals (multi-PE scan engine).
  std::unordered_map<std::uint64_t, std::uint64_t> shard_dispatch_seq_;
  std::uint64_t nvme_command_seq_ = 0;
  std::uint64_t page_reads_decided_ = 0;
};

}  // namespace ndpgen::fault
