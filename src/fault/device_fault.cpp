#include "fault/device_fault.hpp"

#include <cmath>

namespace ndpgen::fault {

DeviceFaultInjector::DeviceFaultInjector(const FaultProfile& profile)
    : profile_(profile) {
  if (enabled() && profile_.device_fault_at_ns > 0) {
    fire_ = static_cast<platform::SimTime>(profile_.device_fault_at_ns);
  }
  if (bitrot_enabled() && profile_.device_bitrot_at_ns > 0) {
    rot_fire_ = static_cast<platform::SimTime>(profile_.device_bitrot_at_ns);
  }
}

void DeviceFaultInjector::arm(std::uint64_t request_budget) {
  if (request_budget == 0) return;
  const auto frac_index = [request_budget](double frac) {
    const auto index = static_cast<std::uint64_t>(
        std::llround(frac * static_cast<double>(request_budget)));
    return index == 0 ? std::uint64_t{1} : index;
  };
  if (enabled() && !fire_.has_value()) {
    trigger_index_ = frac_index(profile_.device_fault_at_frac);
  }
  if (bitrot_enabled() && !rot_fire_.has_value()) {
    rot_trigger_index_ = frac_index(profile_.device_bitrot_at_frac);
  }
}

void DeviceFaultInjector::on_doorbell(platform::SimTime now) {
  ++doorbells_;
  if (trigger_index_ != 0 && !fire_.has_value() &&
      doorbells_ == trigger_index_) {
    fire_ = now;
  }
  if (rot_trigger_index_ != 0 && !rot_fire_.has_value() &&
      doorbells_ == rot_trigger_index_) {
    rot_fire_ = now;
  }
}

bool DeviceFaultInjector::in_window(platform::SimTime t) const noexcept {
  return fire_.has_value() && t >= *fire_ && t < *fire_ + duration();
}

bool DeviceFaultInjector::alive_at(std::uint32_t device,
                                   platform::SimTime t) const noexcept {
  if (!enabled() || device != profile_.device_fault_device) return true;
  if (kind() != DeviceFaultKind::kCrash) return true;
  return !(fire_.has_value() && t >= *fire_);
}

bool DeviceFaultInjector::link_up_at(std::uint32_t device,
                                     platform::SimTime t) const noexcept {
  if (!enabled() || device != profile_.device_fault_device) return true;
  switch (kind()) {
    case DeviceFaultKind::kCrash:
      return !(fire_.has_value() && t >= *fire_);
    case DeviceFaultKind::kLinkFlap:
      return !in_window(t);
    default:
      return true;
  }
}

double DeviceFaultInjector::latency_factor_at(
    std::uint32_t device, platform::SimTime t) const noexcept {
  if (!enabled() || device != profile_.device_fault_device) return 1.0;
  if (kind() != DeviceFaultKind::kBrownout) return 1.0;
  return in_window(t) ? profile_.brownout_factor : 1.0;
}

}  // namespace ndpgen::fault
