#include "fault/fault_injector.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace ndpgen::fault {

namespace {

/// Fault stream identifiers: independent hash streams so e.g. adding an
/// NVMe command never shifts the flash-error sequence.
enum Stream : std::uint64_t {
  kStreamFlashErrors = 0x66616c73ULL,   // "fals"
  kStreamSilent = 0x73696c74ULL,        // "silt"
  kStreamBadBlock = 0x62616462ULL,      // "badb"
  kStreamNvme = 0x6e766d65ULL,          // "nvme"
  kStreamPeHang = 0x70656861ULL,        // "peha"
  kStreamShardPeHang = 0x73686864ULL,   // "shhd"
};

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  support::SplitMix64 mixer(x);
  return mixer.next();
}

}  // namespace

FaultInjector::FaultInjector(FaultProfile profile)
    : profile_(profile), enabled_(profile.any_enabled()) {}

double FaultInjector::u01(std::uint64_t stream, std::uint64_t a,
                          std::uint64_t b) const noexcept {
  std::uint64_t h = mix64(profile_.seed ^ (stream * 0xA24BAED4963EE407ULL));
  h = mix64(h ^ (a * 0x9E3779B97F4A7C15ULL));
  h = mix64(h ^ (b * 0xC2B2AE3D27D4EB4FULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint32_t FaultInjector::poisson(double lambda, double u) noexcept {
  if (lambda <= 0.0) return 0;
  // Inversion by sequential search; exact and deterministic for the small
  // means the reliability model produces (lambda ~ BER * page_bits).
  double p = std::exp(-lambda);
  if (p <= 0.0) {
    // Mean too large for inversion: degenerate to the mean itself (still
    // deterministic; profiles this hot are test-only).
    return static_cast<std::uint32_t>(lambda);
  }
  double cdf = p;
  std::uint32_t k = 0;
  while (u >= cdf && k < 4096) {
    ++k;
    p *= lambda / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

std::uint32_t FaultInjector::retries_needed(std::uint32_t raw_errors,
                                            std::uint32_t ecc_bits,
                                            double retry_factor,
                                            std::uint32_t max_retries,
                                            bool& uncorrectable) noexcept {
  std::uint32_t residual = raw_errors;
  std::uint32_t retries = 0;
  while (residual > ecc_bits && retries < max_retries) {
    ++retries;
    residual = static_cast<std::uint32_t>(
        static_cast<double>(residual) * retry_factor);
  }
  uncorrectable = residual > ecc_bits;
  return retries;
}

PageReadFault FaultInjector::on_page_read(std::uint64_t linear_page,
                                          std::uint64_t page_bits,
                                          std::uint64_t pe_cycles,
                                          std::uint64_t retention_ns) {
  PageReadFault fault;
  if (!enabled_) return fault;
  const std::uint32_t ordinal = page_read_seq_[linear_page]++;
  ++page_reads_decided_;
  if (profile_.read_ber > 0.0) {
    const double wear = 1.0 + profile_.wear_alpha *
                                  static_cast<double>(pe_cycles);
    const double retention =
        1.0 + profile_.retention_alpha *
                  (static_cast<double>(retention_ns) * 1e-9);
    const double lambda = profile_.read_ber *
                          static_cast<double>(page_bits) * wear * retention;
    fault.raw_bit_errors =
        poisson(lambda, u01(kStreamFlashErrors, linear_page, ordinal));
    if (fault.raw_bit_errors > 0) {
      bool uncorrectable = false;
      fault.retries = retries_needed(
          fault.raw_bit_errors, profile_.ecc_correctable_bits,
          profile_.retry_error_factor, profile_.max_read_retries,
          uncorrectable);
      fault.uncorrectable = uncorrectable;
      fault.corrected = !uncorrectable;
    }
  }
  if (!fault.uncorrectable && profile_.silent_corruption_rate > 0.0 &&
      u01(kStreamSilent, linear_page, ordinal) <
          profile_.silent_corruption_rate) {
    fault.silent_corruption = true;
  }
  return fault;
}

bool FaultInjector::is_bad_block(std::uint32_t lun,
                                 std::uint32_t block) const noexcept {
  if (!enabled_ || profile_.bad_block_rate <= 0.0) return false;
  return u01(kStreamBadBlock, lun, block) < profile_.bad_block_rate;
}

std::uint32_t FaultInjector::next_nvme_timeouts() {
  if (!enabled_ || profile_.nvme_timeout_rate <= 0.0) return 0;
  const std::uint64_t ordinal = nvme_command_seq_++;
  std::uint32_t timeouts = 0;
  while (timeouts < profile_.nvme_max_retries &&
         u01(kStreamNvme, ordinal, timeouts) < profile_.nvme_timeout_rate) {
    ++timeouts;
  }
  return timeouts;
}

bool FaultInjector::next_pe_hang(std::size_t pe_index) {
  if (!enabled_ || profile_.pe_fault_rate <= 0.0) return false;
  const std::uint64_t ordinal = pe_dispatch_seq_[pe_index]++;
  return u01(kStreamPeHang, pe_index, ordinal) < profile_.pe_fault_rate;
}

bool FaultInjector::next_shard_pe_hang(std::uint64_t shard_id) {
  if (!enabled_ || profile_.pe_fault_rate <= 0.0) return false;
  const std::uint64_t ordinal = shard_dispatch_seq_[shard_id]++;
  return u01(kStreamShardPeHang, shard_id, ordinal) <
         profile_.pe_fault_rate;
}

}  // namespace ndpgen::fault
