#include "fault/fault_profile.hpp"

#include <cstdlib>
#include <sstream>

#include "support/strings.hpp"

namespace ndpgen::fault {

namespace {

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && out >= 0.0;
}

[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 0);
  return end != nullptr && *end == '\0' && !text.empty();
}

// Named presets: a bare token in the profile string selects one of these
// as the starting point; later key=value items override individual fields.
// Rates are chosen so each preset lands in a distinct regime of the
// degraded-read machinery (ECC only / read-retry / retry + remap + SW
// fallback), matching the CI smoke profiles.
[[nodiscard]] bool apply_preset(const std::string& name,
                                FaultProfile& profile) {
  const std::uint64_t seed = profile.seed;
  if (name == "none") {
    profile = FaultProfile{};
  } else if (name == "aged") {
    // End-of-warranty media: ECC corrects nearly everything, wear and
    // retention start to matter, the occasional grown bad block.
    profile = FaultProfile{};
    profile.read_ber = 5e-5;
    profile.wear_alpha = 1e-4;
    profile.retention_alpha = 1e-3;
    profile.bad_block_rate = 0.005;
  } else if (name == "degraded") {
    // Read-retry territory plus rare ECC miscorrections and NVMe
    // timeouts: the checksummed read path earns its keep here.
    profile = FaultProfile{};
    profile.read_ber = 2e-4;
    profile.wear_alpha = 5e-4;
    profile.retention_alpha = 5e-3;
    profile.bad_block_rate = 0.02;
    profile.silent_corruption_rate = 0.002;
    profile.nvme_timeout_rate = 0.01;
  } else if (name == "stress") {
    // Everything at once, including hung PEs; exercises every fallback.
    profile = FaultProfile{};
    profile.read_ber = 4e-4;
    profile.wear_alpha = 1e-3;
    profile.retention_alpha = 1e-2;
    profile.bad_block_rate = 0.05;
    profile.silent_corruption_rate = 0.01;
    profile.nvme_timeout_rate = 0.05;
    profile.pe_fault_rate = 0.2;
  } else if (name == "device-loss") {
    // Cluster robustness drill: healthy media on every member, but one
    // whole device crashes halfway through the run's request budget. The
    // single-device stacks stay on the fault-free fast path; the cluster
    // frontend's DeviceFaultInjector owns the crash.
    profile = FaultProfile{};
    profile.device_fault = DeviceFaultKind::kCrash;
    profile.device_fault_device = 0;
    profile.device_fault_at_frac = 0.5;
  } else if (name == "bit-rot") {
    // Replica-integrity drill: healthy media, but a handful of SST blocks
    // on one member rot a quarter of the way through the request budget.
    // The coordinator's scrub/read-repair/anti-entropy loop owns it.
    profile = FaultProfile{};
    profile.device_bitrot_blocks = 4;
    profile.device_bitrot_device = 0;
    profile.device_bitrot_at_frac = 0.25;
  } else {
    return false;
  }
  profile.seed = seed;
  return true;
}

[[nodiscard]] bool parse_device_fault_kind(const std::string& value,
                                           DeviceFaultKind& out) {
  if (value == "none") {
    out = DeviceFaultKind::kNone;
  } else if (value == "crash") {
    out = DeviceFaultKind::kCrash;
  } else if (value == "brownout") {
    out = DeviceFaultKind::kBrownout;
  } else if (value == "flap") {
    out = DeviceFaultKind::kLinkFlap;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FaultProfile::preset_names() {
  return "none, aged, degraded, stress, device-loss, bit-rot";
}

Result<FaultProfile> FaultProfile::parse(std::string_view text) {
  FaultProfile profile;
  for (const std::string& item : support::split(text, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      if (!apply_preset(item, profile)) {
        return Result<FaultProfile>::failure(
            ErrorKind::kInvalidArg,
            "unknown fault profile preset '" + item +
                "' (valid presets: " + preset_names() + ")");
      }
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "seed") {
      ok = parse_u64(value, profile.seed);
    } else if (key == "read_ber") {
      ok = parse_double(value, profile.read_ber);
    } else if (key == "wear_alpha") {
      ok = parse_double(value, profile.wear_alpha);
    } else if (key == "retention_alpha") {
      ok = parse_double(value, profile.retention_alpha);
    } else if (key == "ecc_bits") {
      ok = parse_u64(value, u) && u <= 0xFFFFFFFFull;
      profile.ecc_correctable_bits = static_cast<std::uint32_t>(u);
    } else if (key == "retry_factor") {
      ok = parse_double(value, profile.retry_error_factor) &&
           profile.retry_error_factor < 1.0;
    } else if (key == "max_retries") {
      ok = parse_u64(value, u) && u <= 64;
      profile.max_read_retries = static_cast<std::uint32_t>(u);
    } else if (key == "bad_block_rate") {
      ok = parse_double(value, profile.bad_block_rate) &&
           profile.bad_block_rate < 1.0;
    } else if (key == "silent_rate") {
      ok = parse_double(value, profile.silent_corruption_rate) &&
           profile.silent_corruption_rate <= 1.0;
    } else if (key == "nvme_timeout_rate") {
      ok = parse_double(value, profile.nvme_timeout_rate) &&
           profile.nvme_timeout_rate <= 1.0;
    } else if (key == "nvme_max_retries") {
      ok = parse_u64(value, u) && u <= 16;
      profile.nvme_max_retries = static_cast<std::uint32_t>(u);
    } else if (key == "pe_fault_rate") {
      ok = parse_double(value, profile.pe_fault_rate) &&
           profile.pe_fault_rate <= 1.0;
    } else if (key == "device_fault") {
      ok = parse_device_fault_kind(value, profile.device_fault);
    } else if (key == "device_fault_device") {
      ok = parse_u64(value, u) && u <= 0xFFFFFFFFull;
      profile.device_fault_device = static_cast<std::uint32_t>(u);
    } else if (key == "device_fault_at_frac") {
      ok = parse_double(value, profile.device_fault_at_frac) &&
           profile.device_fault_at_frac <= 1.0;
    } else if (key == "device_fault_at_us") {
      ok = parse_u64(value, u);
      profile.device_fault_at_ns = u * 1000ull;
    } else if (key == "device_fault_duration_us") {
      ok = parse_u64(value, u);
      profile.device_fault_duration_ns = u * 1000ull;
    } else if (key == "brownout_factor") {
      ok = parse_double(value, profile.brownout_factor) &&
           profile.brownout_factor >= 1.0;
    } else if (key == "device_bitrot_blocks") {
      ok = parse_u64(value, u) && u <= 0xFFFFFFFFull;
      profile.device_bitrot_blocks = static_cast<std::uint32_t>(u);
    } else if (key == "device_bitrot_device") {
      ok = parse_u64(value, u) && u <= 0xFFFFFFFFull;
      profile.device_bitrot_device = static_cast<std::uint32_t>(u);
    } else if (key == "device_bitrot_at_frac") {
      ok = parse_double(value, profile.device_bitrot_at_frac) &&
           profile.device_bitrot_at_frac <= 1.0;
    } else if (key == "device_bitrot_at_us") {
      ok = parse_u64(value, u);
      profile.device_bitrot_at_ns = u * 1000ull;
    } else if (key == "device_bitrot_wrong_data") {
      ok = parse_u64(value, u) && u <= 1;
      profile.device_bitrot_wrong_data = u != 0;
    } else {
      return Result<FaultProfile>::failure(
          ErrorKind::kInvalidArg, "unknown fault profile key '" + key + "'");
    }
    if (!ok) {
      return Result<FaultProfile>::failure(
          ErrorKind::kInvalidArg,
          "bad value '" + value + "' for fault profile key '" + key + "'");
    }
  }
  return profile;
}

std::string FaultProfile::summary() const {
  if (!any_enabled() && !device_fault_enabled() && !device_bitrot_enabled()) {
    return "faults: none";
  }
  std::ostringstream out;
  if (!any_enabled()) {
    out << "faults:";
    if (device_fault_enabled()) {
      out << " device_fault=" << to_string(device_fault)
          << " device=" << device_fault_device;
    }
    if (device_bitrot_enabled()) {
      out << " bitrot_blocks=" << device_bitrot_blocks
          << " bitrot_device=" << device_bitrot_device
          << (device_bitrot_wrong_data ? " wrong_data" : "");
    }
    return out.str();
  }
  out << "faults: seed=" << seed;
  if (device_fault_enabled()) {
    out << " device_fault=" << to_string(device_fault)
        << " device=" << device_fault_device;
  }
  if (device_bitrot_enabled()) {
    out << " bitrot_blocks=" << device_bitrot_blocks
        << " bitrot_device=" << device_bitrot_device
        << (device_bitrot_wrong_data ? " wrong_data" : "");
  }
  if (read_ber > 0.0) {
    out << " read_ber=" << read_ber << " ecc_bits=" << ecc_correctable_bits
        << " max_retries=" << max_read_retries;
  }
  if (bad_block_rate > 0.0) out << " bad_block_rate=" << bad_block_rate;
  if (silent_corruption_rate > 0.0) {
    out << " silent_rate=" << silent_corruption_rate;
  }
  if (nvme_timeout_rate > 0.0) {
    out << " nvme_timeout_rate=" << nvme_timeout_rate;
  }
  if (pe_fault_rate > 0.0) out << " pe_fault_rate=" << pe_fault_rate;
  return out.str();
}

}  // namespace ndpgen::fault
