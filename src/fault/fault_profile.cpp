#include "fault/fault_profile.hpp"

#include <cstdlib>
#include <sstream>

#include "support/strings.hpp"

namespace ndpgen::fault {

namespace {

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && out >= 0.0;
}

[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 0);
  return end != nullptr && *end == '\0' && !text.empty();
}

}  // namespace

Result<FaultProfile> FaultProfile::parse(std::string_view text) {
  FaultProfile profile;
  for (const std::string& item : support::split(text, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return Result<FaultProfile>::failure(
          ErrorKind::kInvalidArg,
          "fault profile item '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "seed") {
      ok = parse_u64(value, profile.seed);
    } else if (key == "read_ber") {
      ok = parse_double(value, profile.read_ber);
    } else if (key == "wear_alpha") {
      ok = parse_double(value, profile.wear_alpha);
    } else if (key == "retention_alpha") {
      ok = parse_double(value, profile.retention_alpha);
    } else if (key == "ecc_bits") {
      ok = parse_u64(value, u) && u <= 0xFFFFFFFFull;
      profile.ecc_correctable_bits = static_cast<std::uint32_t>(u);
    } else if (key == "retry_factor") {
      ok = parse_double(value, profile.retry_error_factor) &&
           profile.retry_error_factor < 1.0;
    } else if (key == "max_retries") {
      ok = parse_u64(value, u) && u <= 64;
      profile.max_read_retries = static_cast<std::uint32_t>(u);
    } else if (key == "bad_block_rate") {
      ok = parse_double(value, profile.bad_block_rate) &&
           profile.bad_block_rate < 1.0;
    } else if (key == "silent_rate") {
      ok = parse_double(value, profile.silent_corruption_rate) &&
           profile.silent_corruption_rate <= 1.0;
    } else if (key == "nvme_timeout_rate") {
      ok = parse_double(value, profile.nvme_timeout_rate) &&
           profile.nvme_timeout_rate <= 1.0;
    } else if (key == "nvme_max_retries") {
      ok = parse_u64(value, u) && u <= 16;
      profile.nvme_max_retries = static_cast<std::uint32_t>(u);
    } else if (key == "pe_fault_rate") {
      ok = parse_double(value, profile.pe_fault_rate) &&
           profile.pe_fault_rate <= 1.0;
    } else {
      return Result<FaultProfile>::failure(
          ErrorKind::kInvalidArg, "unknown fault profile key '" + key + "'");
    }
    if (!ok) {
      return Result<FaultProfile>::failure(
          ErrorKind::kInvalidArg,
          "bad value '" + value + "' for fault profile key '" + key + "'");
    }
  }
  return profile;
}

std::string FaultProfile::summary() const {
  if (!any_enabled()) return "faults: none";
  std::ostringstream out;
  out << "faults: seed=" << seed;
  if (read_ber > 0.0) {
    out << " read_ber=" << read_ber << " ecc_bits=" << ecc_correctable_bits
        << " max_retries=" << max_read_retries;
  }
  if (bad_block_rate > 0.0) out << " bad_block_rate=" << bad_block_rate;
  if (silent_corruption_rate > 0.0) {
    out << " silent_rate=" << silent_corruption_rate;
  }
  if (nvme_timeout_rate > 0.0) {
    out << " nvme_timeout_rate=" << nvme_timeout_rate;
  }
  if (pe_fault_rate > 0.0) out << " pe_fault_rate=" << pe_fault_rate;
  return out.str();
}

}  // namespace ndpgen::fault
