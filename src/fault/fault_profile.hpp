// FaultProfile: declarative description of the fault environment.
//
// The simulated Cosmos+ platform is fault-free by default; a FaultProfile
// turns on individual fault classes with explicit rates, all driven by one
// seed so every run is exactly reproducible (same contract as
// support/rng.hpp). Profiles are parsed from "key=value,key=value" strings
// so the CLI (`--fault-profile`) and the benches (NDPGEN_FAULT_PROFILE)
// share one syntax.
//
// Fault classes and the layer that injects them:
//  * NAND raw bit errors  — FlashModel timed reads (ECC + read-retry).
//  * grown bad blocks     — PlacementPolicy allocation (remapped around).
//  * silent corruption    — ECC-missed bytes; caught by the SST block
//                           CRC32C and routed into the degraded-read path.
//  * NVMe command timeout — NvmeLink (bounded retry, exponential backoff).
//  * PE hang              — HardwareNdp dispatch (watchdog detection,
//                           block degraded to the software NDP path).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace ndpgen::fault {

/// Whole-device fault classes injected by the cluster frontend's
/// DeviceFaultInjector (src/fault/device_fault.hpp). A single-device
/// stack ignores these fields — they describe what happens to one member
/// of a cluster, not to the media inside it.
enum class DeviceFaultKind : std::uint8_t {
  kNone,      ///< No device-level fault scheduled.
  kCrash,     ///< Device dies permanently at the trigger point.
  kBrownout,  ///< Device latency is multiplied by brownout_factor for
              ///< device_fault_duration.
  kLinkFlap,  ///< NVMe link drops for device_fault_duration, then returns.
};

[[nodiscard]] constexpr std::string_view to_string(
    DeviceFaultKind kind) noexcept {
  switch (kind) {
    case DeviceFaultKind::kNone: return "none";
    case DeviceFaultKind::kCrash: return "crash";
    case DeviceFaultKind::kBrownout: return "brownout";
    case DeviceFaultKind::kLinkFlap: return "flap";
  }
  return "?";
}

struct FaultProfile {
  std::uint64_t seed = 0x5eedfa17ULL;

  // --- NAND reliability --------------------------------------------------
  /// Raw bit-error probability per stored bit per read (fresh media).
  double read_ber = 0.0;
  /// BER multiplier per program/erase cycle of the block (wear-out).
  double wear_alpha = 0.0;
  /// BER multiplier per second of retention (time since program).
  double retention_alpha = 0.0;
  /// ECC correction strength: raw bit errors per page the engine corrects.
  std::uint32_t ecc_correctable_bits = 40;
  /// Each read-retry step (shifted read voltages) keeps this fraction of
  /// the raw errors; a step costs TimingConfig::flash_read_retry_latency.
  double retry_error_factor = 0.5;
  /// Read-retry steps before the page is declared uncorrectable.
  std::uint32_t max_read_retries = 5;
  /// Probability that a grown bad block occupies a (LUN, block) slot.
  double bad_block_rate = 0.0;
  /// Probability per page read that ECC miscorrects: the read "succeeds"
  /// but delivers corrupt bytes. Caught by the SST block checksum.
  double silent_corruption_rate = 0.0;

  // --- NVMe / platform ---------------------------------------------------
  /// Probability that one NVMe command attempt times out.
  double nvme_timeout_rate = 0.0;
  /// Retry attempts before the controller escalates to a reset.
  std::uint32_t nvme_max_retries = 3;

  // --- NDP ---------------------------------------------------------------
  /// Probability that a PE dispatch hangs (no ready/valid progress); the
  /// firmware watchdog detects it and the executor degrades the block to
  /// the software path.
  double pe_fault_rate = 0.0;

  // --- Device-level (cluster) --------------------------------------------
  /// Scheduled whole-device fault; consumed by the cluster frontend's
  /// DeviceFaultInjector, ignored by a single-device stack.
  DeviceFaultKind device_fault = DeviceFaultKind::kNone;
  /// Device index the fault targets.
  std::uint32_t device_fault_device = 0;
  /// Trigger point as a fraction of the run's request budget (the K-th
  /// doorbell, K = round(frac * requests)); used when device_fault_at_ns
  /// is 0. The device-loss preset sets 0.5 ("mid-run").
  double device_fault_at_frac = 0.5;
  /// Absolute virtual trigger time in ns; 0 = use device_fault_at_frac.
  std::uint64_t device_fault_at_ns = 0;
  /// Brownout / link-flap window length in ns.
  std::uint64_t device_fault_duration_ns = 5'000'000;  // 5 ms virtual.
  /// Brownout latency multiplier (kBrownout only).
  double brownout_factor = 4.0;

  // --- Latent bit-rot (cluster replica integrity) ------------------------
  /// SST data blocks whose flash content rots on one member once the
  /// trigger fires (0 = disabled). Unlike silent_rate — a per-read ECC
  /// miscorrection that clears on the recovery re-read — bit-rot damages
  /// the stored bytes, so only a repair write restores the replica.
  std::uint32_t device_bitrot_blocks = 0;
  /// Device index the rot lands on.
  std::uint32_t device_bitrot_device = 0;
  /// Trigger as a fraction of the run's request budget (K-th doorbell),
  /// used when device_bitrot_at_ns is 0. Independent of the whole-device
  /// fault trigger, so a profile can schedule both.
  double device_bitrot_at_frac = 0.25;
  /// Absolute virtual trigger time in ns; 0 = use device_bitrot_at_frac.
  std::uint64_t device_bitrot_at_ns = 0;
  /// Wrong-data variant: the corruption also rewrites the block's index
  /// CRC32C to match the rotten bytes, so per-block checksums (scrubber,
  /// checked reads) pass and only cross-replica digests catch it.
  bool device_bitrot_wrong_data = false;

  [[nodiscard]] bool device_fault_enabled() const noexcept {
    return device_fault != DeviceFaultKind::kNone;
  }

  [[nodiscard]] bool device_bitrot_enabled() const noexcept {
    return device_bitrot_blocks > 0;
  }

  /// True when any media/link fault class can fire; false keeps every hook
  /// on its zero-cost default path. Device-level faults are deliberately
  /// excluded: they live in the cluster frontend, not the per-device
  /// stack, so a device-loss profile keeps each member platform on the
  /// fault-free fast path.
  [[nodiscard]] bool any_enabled() const noexcept {
    return read_ber > 0.0 || bad_block_rate > 0.0 ||
           silent_corruption_rate > 0.0 || nvme_timeout_rate > 0.0 ||
           pe_fault_rate > 0.0;
  }

  /// Parses "seed=7,read_ber=1e-6,bad_block_rate=0.01" (any subset of the
  /// documented keys, in any order). A bare token without '=' names a
  /// preset ("none", "aged", "degraded", "stress", "device-loss") whose
  /// values later key=value items override, so "aged,seed=7" is a seeded
  /// aged device and "device-loss,device_fault_device=2" crashes device 2.
  /// Unknown keys, unknown preset names and malformed numbers fail with
  /// kInvalidArg; the preset error lists the valid names.
  [[nodiscard]] static Result<FaultProfile> parse(std::string_view text);

  /// Comma-separated list of the preset names parse() accepts.
  [[nodiscard]] static std::string preset_names();

  /// One-line human summary ("faults: read_ber=1e-06 ..." or
  /// "faults: none").
  [[nodiscard]] std::string summary() const;
};

}  // namespace ndpgen::fault
