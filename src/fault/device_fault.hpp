// Whole-device fault injection for the smart-SSD cluster frontend.
//
// The per-device FaultInjector models what goes wrong *inside* one device
// (bit errors, bad blocks, command timeouts). This layer models losing a
// whole cluster member: a crash (permanent death), a brownout (latency
// multiplied for a window) or an NVMe link flap (link down for a window,
// device data intact). Faults are scheduled, not sampled: the trigger is
// either an absolute virtual time or "the K-th host doorbell", so the
// failure timeline is byte-reproducible for a fixed seed and invariant
// across --pes/--threads (doorbell order is a host-timeline property).
//
// The injector is a pure oracle: the cluster coordinator asks
// alive_at/link_up_at/latency_factor_at with explicit timestamps and owns
// every consequence (failover, health transitions, rebuild). Nothing here
// advances a clock or mutates device state.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault_profile.hpp"
#include "platform/event_queue.hpp"

namespace ndpgen::fault {

class DeviceFaultInjector {
 public:
  DeviceFaultInjector() = default;
  explicit DeviceFaultInjector(const FaultProfile& profile);

  /// Arms the request-count trigger: with no absolute trigger time the
  /// fault latches at the K-th doorbell, K = max(1, round(frac * budget)).
  /// A zero budget leaves the fault dormant.
  void arm(std::uint64_t request_budget);

  /// Counts one host doorbell at virtual time `now`; the K-th call latches
  /// the fault's fire time to `now`.
  void on_doorbell(platform::SimTime now);

  [[nodiscard]] bool enabled() const noexcept {
    return profile_.device_fault_enabled();
  }
  [[nodiscard]] DeviceFaultKind kind() const noexcept {
    return profile_.device_fault;
  }
  [[nodiscard]] std::uint32_t device() const noexcept {
    return profile_.device_fault_device;
  }
  /// Window length for brownout/flap faults.
  [[nodiscard]] platform::SimTime duration() const noexcept {
    return profile_.device_fault_duration_ns;
  }

  /// The latched fire time; nullopt until the trigger has fired (absolute
  /// triggers know it from construction).
  [[nodiscard]] std::optional<platform::SimTime> fired_at() const noexcept {
    return fire_;
  }

  // --- Latent bit-rot (independent trigger, same doorbell clock) --------
  [[nodiscard]] bool bitrot_enabled() const noexcept {
    return profile_.device_bitrot_enabled();
  }
  [[nodiscard]] std::uint32_t bitrot_device() const noexcept {
    return profile_.device_bitrot_device;
  }
  [[nodiscard]] std::uint32_t bitrot_blocks() const noexcept {
    return profile_.device_bitrot_blocks;
  }
  [[nodiscard]] bool bitrot_wrong_data() const noexcept {
    return profile_.device_bitrot_wrong_data;
  }
  [[nodiscard]] std::optional<platform::SimTime> bitrot_fired_at()
      const noexcept {
    return rot_fire_;
  }
  /// True once the rot trigger has fired by `t`. The caller (the cluster
  /// coordinator) owns the one-shot application of the corruption; the
  /// injector stays a pure oracle.
  [[nodiscard]] bool bitrot_due(platform::SimTime t) const noexcept {
    return bitrot_enabled() && rot_fire_.has_value() && t >= *rot_fire_;
  }
  /// Deterministic seed for picking the rotten blocks.
  [[nodiscard]] std::uint64_t bitrot_seed() const noexcept {
    return profile_.seed;
  }

  /// False once a crash-faulted device's fire time has passed.
  [[nodiscard]] bool alive_at(std::uint32_t device,
                              platform::SimTime t) const noexcept;
  /// False while the device's NVMe link is unusable: permanently after a
  /// crash, during the flap window for kLinkFlap.
  [[nodiscard]] bool link_up_at(std::uint32_t device,
                                platform::SimTime t) const noexcept;
  /// Latency multiplier for work dispatched at `t` (> 1 only inside a
  /// brownout window).
  [[nodiscard]] double latency_factor_at(std::uint32_t device,
                                         platform::SimTime t) const noexcept;

 private:
  [[nodiscard]] bool in_window(platform::SimTime t) const noexcept;

  FaultProfile profile_{};
  std::uint64_t trigger_index_ = 0;  ///< 0 = no count trigger armed.
  std::uint64_t rot_trigger_index_ = 0;
  std::uint64_t doorbells_ = 0;
  std::optional<platform::SimTime> fire_;
  std::optional<platform::SimTime> rot_fire_;
};

}  // namespace ndpgen::fault
