#include "query/optimizer.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ndpgen::query {

namespace {

bool contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

/// Collects the base columns of `dataset` that `tail` can still observe:
/// every column an operator references, up to and including the first
/// schema-narrowing operator (project or aggregate) — columns surviving
/// past that point were necessarily referenced by it. Without a narrowing
/// operator the whole base schema reaches the output.
std::vector<std::string> needed_base_columns(
    Dataset dataset, const std::vector<PlanOp>& tail) {
  const std::vector<std::string>& base = dataset_columns(dataset);
  std::set<std::string> needed;
  bool narrowed = false;
  for (const auto& op : tail) {
    if (narrowed) break;
    switch (op.kind) {
      case OpKind::kScan:
        break;
      case OpKind::kFilter:
        for (const auto& pred : op.predicates) needed.insert(pred.column);
        break;
      case OpKind::kProject:
        for (const auto& name : op.columns) needed.insert(name);
        narrowed = true;
        break;
      case OpKind::kAggregate:
        if (!op.agg_column.empty()) needed.insert(op.agg_column);
        if (!op.group_column.empty()) needed.insert(op.group_column);
        narrowed = true;
        break;
      case OpKind::kTopK:
        needed.insert(op.order_column);
        break;
      case OpKind::kHashJoin:
        needed.insert(op.probe_column);
        break;
    }
  }
  if (!narrowed) return base;

  // Keep base declaration order; key columns are forced below anyway.
  std::vector<std::string> kept;
  for (const auto& name : base) {
    if (needed.contains(name)) kept.push_back(name);
  }
  return kept;
}

/// Key fields first, then the pruned remainder in declaration order.
std::vector<std::string> with_key_columns_first(
    Dataset dataset, std::vector<std::string> pruned) {
  std::vector<std::string> keys =
      dataset == Dataset::kPapers ? std::vector<std::string>{"id"}
                                  : std::vector<std::string>{"src", "dst"};
  std::vector<std::string> out = keys;
  for (const auto& name : pruned) {
    if (!contains(out, name)) out.push_back(name);
  }
  return out;
}

}  // namespace

Result<OptimizedPlan> optimize(const Plan& plan) {
  auto schema = validate(plan);
  if (!schema.ok()) return Result<OptimizedPlan>(schema.status());

  OptimizedPlan optimized;
  optimized.plan = plan;
  optimized.schema = schema.value();

  // Predicate pushdown: every leading filter conjunction collapses into
  // the leaf (the schema is still the base schema there, so each
  // predicate names a scannable field).
  std::size_t cut = 1;
  while (cut < plan.ops.size() && plan.ops[cut].kind == OpKind::kFilter) {
    for (const auto& pred : plan.ops[cut].predicates) {
      optimized.pushdown.push_back(pred);
    }
    ++cut;
  }
  optimized.tail.assign(plan.ops.begin() + static_cast<std::ptrdiff_t>(cut),
                        plan.ops.end());

  const Dataset probe = plan.scan().dataset;
  optimized.probe_columns = with_key_columns_first(
      probe, needed_base_columns(probe, optimized.tail));

  for (const auto& op : optimized.tail) {
    if (op.kind != OpKind::kHashJoin) continue;
    optimized.build_dataset = op.build_dataset;
    // The build side observes: its join key plus every dotted reference
    // downstream of the join, plus undotted build columns never occur
    // (dotting is how the schema disambiguates them).
    const std::string prefix(to_string(op.build_dataset));
    std::set<std::string> needed = {op.build_column};
    bool after_join = false;
    bool narrowed = false;
    for (const auto& tail_op : optimized.tail) {
      if (&tail_op == &op) {
        after_join = true;
        continue;
      }
      if (!after_join || narrowed) continue;
      auto note = [&](const std::string& name) {
        if (name.rfind(prefix + ".", 0) == 0) {
          needed.insert(name.substr(prefix.size() + 1));
        }
      };
      for (const auto& pred : tail_op.predicates) note(pred.column);
      for (const auto& name : tail_op.columns) note(name);
      if (!tail_op.agg_column.empty()) note(tail_op.agg_column);
      if (!tail_op.group_column.empty()) note(tail_op.group_column);
      if (!tail_op.order_column.empty()) note(tail_op.order_column);
      if (tail_op.kind == OpKind::kProject ||
          tail_op.kind == OpKind::kAggregate) {
        narrowed = true;
      }
    }
    // Without a narrowing operator downstream every build column reaches
    // the output (validate() appends the full prefixed base schema), so
    // pruning would change the result bytes.
    std::vector<std::string> pruned;
    for (const auto& name : dataset_columns(op.build_dataset)) {
      if (!narrowed || needed.contains(name)) pruned.push_back(name);
    }
    optimized.build_columns =
        with_key_columns_first(op.build_dataset, std::move(pruned));
  }
  return optimized;
}

std::string OptimizedPlan::describe() const {
  std::ostringstream out;
  out << "optimized " << plan.name << ": pushdown=[";
  for (std::size_t i = 0; i < pushdown.size(); ++i) {
    out << (i == 0 ? "" : ", ") << pushdown[i].column << " " << pushdown[i].op
        << " " << pushdown[i].value;
  }
  out << "] probe_columns=[";
  for (std::size_t i = 0; i < probe_columns.size(); ++i) {
    out << (i == 0 ? "" : ", ") << probe_columns[i];
  }
  out << "]";
  if (build_dataset) {
    out << " build=" << to_string(*build_dataset) << " build_columns=[";
    for (std::size_t i = 0; i < build_columns.size(); ++i) {
      out << (i == 0 ? "" : ", ") << build_columns[i];
    }
    out << "]";
  }
  out << " tail_ops=" << tail.size();
  return out.str();
}

}  // namespace ndpgen::query
